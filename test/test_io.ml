(* Tests for the design-file readers/writers: exact round trips and
   error reporting with line numbers. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let libraries = [ Cell_lib.ecl_default ]

let netlists_equal a b =
  Netlist.n_instances a = Netlist.n_instances b
  && Netlist.n_ports a = Netlist.n_ports b
  && Netlist.n_nets a = Netlist.n_nets b
  && Array.for_all2 (fun (x : Netlist.net) y -> x = y) (Netlist.nets a) (Netlist.nets b)
  && Array.for_all2
       (fun (x : Netlist.instance) (y : Netlist.instance) ->
         x.Netlist.inst_name = y.Netlist.inst_name
         && x.Netlist.master.Cell.name = y.Netlist.master.Cell.name)
       (Netlist.instances a) (Netlist.instances b)
  && Array.for_all2 (fun (x : Netlist.port) y -> x = y) (Netlist.ports a) (Netlist.ports b)

let test_netlist_roundtrip () =
  let netlist, constraints = Circuit_gen.generate Circuit_gen.default_params in
  ignore constraints;
  let text = Netlist_io.to_string netlist in
  let back = Netlist_io.of_string ~libraries text in
  check_bool "netlist survives the round trip" true (netlists_equal netlist back);
  (* And idempotently: serializing the reread netlist is identical. *)
  Alcotest.(check string) "stable text" text (Netlist_io.to_string back)

let expect_parse_error ?line name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Parse_error" name
  | exception Lineio.Parse_error { line = got; _ } ->
    (match line with None -> () | Some l -> check_int (name ^ " line") l got)

let test_netlist_errors () =
  expect_parse_error "missing library" ~line:1 (fun () ->
      Netlist_io.of_string ~libraries "inst x INV1\n");
  expect_parse_error "unknown library" ~line:1 (fun () ->
      Netlist_io.of_string ~libraries "library tacos\n");
  expect_parse_error "unknown master" ~line:2 (fun () ->
      Netlist_io.of_string ~libraries "library ecl_default\ninst x NAND97\n");
  expect_parse_error "unknown instance in net" ~line:3 (fun () ->
      Netlist_io.of_string ~libraries "library ecl_default\ninst x INV1\nnet n drive y.Z sink x.A\n");
  expect_parse_error "bad endpoint" ~line:3 (fun () ->
      Netlist_io.of_string ~libraries "library ecl_default\ninst x INV1\nnet n drive bogus sink x.A\n");
  expect_parse_error "bad side" ~line:2 (fun () ->
      Netlist_io.of_string ~libraries "library ecl_default\nport P east\n");
  expect_parse_error "unknown directive" ~line:2 (fun () ->
      Netlist_io.of_string ~libraries "library ecl_default\nfrobnicate\n")

let test_crlf_tolerated () =
  let text = "library ecl_default\r\nport IN south\r\nport OUT north\r\ninst a INV1\r\nnet n0 drive port:IN sink a.A\r\nnet n1 drive a.Z sink port:OUT\r\n" in
  let netlist = Netlist_io.of_string ~libraries text in
  check_int "CRLF endings parse" 2 (Netlist.n_nets netlist)

let test_netlist_comments_and_whitespace () =
  let text =
    "# a comment\n\nlibrary ecl_default   # trailing comment\n\
     port IN south\n\tport OUT north\ninst a INV1\n\
     net n0 drive port:IN sink a.A\nnet n1 drive a.Z sink port:OUT\n"
  in
  let netlist = Netlist_io.of_string ~libraries text in
  check_int "two nets" 2 (Netlist.n_nets netlist);
  check_int "tab-indented port parsed" 2 (Netlist.n_ports netlist)

let small_routed_design () =
  let case = Suite.mini () in
  let input = case.Suite.input in
  let fp = Flow.floorplan_of_input input in
  (input.Flow.netlist, fp, input.Flow.constraints)

let test_placement_roundtrip () =
  let netlist, fp, _ = small_routed_design () in
  let text = Layout_io.to_string fp in
  let back = Layout_io.of_string ~netlist ~dims:Dims.default text in
  check_int "rows" (Floorplan.n_rows fp) (Floorplan.n_rows back);
  check_int "width" (Floorplan.width fp) (Floorplan.width back);
  check_int "slots" (Floorplan.n_slots fp) (Floorplan.n_slots back);
  for r = 0 to Floorplan.n_rows fp - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "row %d cells" r)
      true
      (Floorplan.row_cells fp r = Floorplan.row_cells back r)
  done;
  Alcotest.(check string) "stable text" text (Layout_io.to_string back)

let test_placement_errors () =
  let netlist, _, _ = small_routed_design () in
  expect_parse_error "missing rows" (fun () ->
      Layout_io.of_string ~netlist ~dims:Dims.default "width 10\n");
  expect_parse_error "unknown instance" ~line:3 (fun () ->
      Layout_io.of_string ~netlist ~dims:Dims.default "rows 1\nwidth 10\ncell nosuch 0 0\n");
  expect_parse_error "bad integer" ~line:2 (fun () ->
      Layout_io.of_string ~netlist ~dims:Dims.default "rows 1\nwidth ten\n")

let test_constraints_roundtrip () =
  let netlist, _, constraints = small_routed_design () in
  let text = Constraint_io.to_string netlist constraints in
  let back = Constraint_io.of_string ~netlist text in
  check_int "constraint count" (List.length constraints) (List.length back);
  List.iter2
    (fun (a : Path_constraint.t) (b : Path_constraint.t) ->
      Alcotest.(check string) "name" a.Path_constraint.cname b.Path_constraint.cname;
      Alcotest.(check (float 1e-6)) "limit" a.Path_constraint.limit_ps b.Path_constraint.limit_ps;
      check_bool "sources" true (a.Path_constraint.sources = b.Path_constraint.sources);
      check_bool "sinks" true (a.Path_constraint.sinks = b.Path_constraint.sinks))
    constraints back;
  (* The reread constraints drive the same analysis. *)
  let dg = Delay_graph.build netlist in
  let sta_a = Sta.create dg constraints and sta_b = Sta.create dg back in
  for ci = 0 to Sta.n_constraints sta_a - 1 do
    Alcotest.(check (float 1e-9)) "same critical delay" (Sta.critical_delay sta_a ci)
      (Sta.critical_delay sta_b ci)
  done

let test_constraints_errors () =
  let netlist, _, _ = small_routed_design () in
  expect_parse_error "source before constraint" ~line:1 (fun () ->
      Constraint_io.of_string ~netlist "source ff0.Q\n");
  expect_parse_error "unknown instance" (fun () ->
      Constraint_io.of_string ~netlist "constraint P limit 10\nsource nobody.Q\nsink ff0.D\n");
  expect_parse_error "source must be an output" (fun () ->
      Constraint_io.of_string ~netlist "constraint P limit 10\nsource ff0.D\nsink ff0.D\n");
  expect_parse_error "sink must be sequential" (fun () ->
      Constraint_io.of_string ~netlist "constraint P limit 10\nsource ff0.Q\nsink g0.A\n")

let test_bundle_roundtrip () =
  let netlist, fp, constraints = small_routed_design () in
  let text = Design_io.to_string ~floorplan:fp ~constraints netlist in
  let bundle = Design_io.of_string text in
  check_bool "netlist back" true (netlists_equal netlist bundle.Design_io.d_netlist);
  check_bool "placement back" true (bundle.Design_io.d_floorplan <> None);
  check_int "constraints back" (List.length constraints)
    (List.length bundle.Design_io.d_constraints);
  (* The bundle routes end-to-end exactly like the original input. *)
  let input = Design_io.to_flow_input bundle in
  let a = Flow.run input in
  let case = Suite.mini () in
  let b = Flow.run case.Suite.input in
  Alcotest.(check (float 1e-6)) "same routed delay" b.Flow.o_measurement.Flow.m_delay_ps
    a.Flow.o_measurement.Flow.m_delay_ps;
  Alcotest.(check (float 1e-9)) "same area" b.Flow.o_measurement.Flow.m_area_mm2
    a.Flow.o_measurement.Flow.m_area_mm2

let test_bundle_file_io () =
  let netlist, fp, constraints = small_routed_design () in
  let path = Filename.temp_file "bgr_design" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Design_io.write ~floorplan:fp ~constraints netlist ~path;
      let bundle = Design_io.read path in
      check_bool "file round trip" true (netlists_equal netlist bundle.Design_io.d_netlist))

let test_bundle_errors () =
  expect_parse_error "no netlist section" (fun () -> Design_io.of_string "[placement]\nrows 1\n");
  expect_parse_error "garbage before sections" (fun () -> Design_io.of_string "hello\n[netlist]\n");
  check_bool "to_flow_input without placement" true
    (let netlist, _, _ = small_routed_design () in
     let bundle = Design_io.of_string (Design_io.to_string netlist) in
     match Design_io.to_flow_input bundle with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_library_roundtrip () =
  let lib = Cell_lib.ecl_default in
  let text = Cell_lib_io.to_string lib in
  let back = Cell_lib_io.of_string text in
  Alcotest.(check string) "name" (Cell_lib.name lib) (Cell_lib.name back);
  check_int "master count" (List.length (Cell_lib.cells lib)) (List.length (Cell_lib.cells back));
  List.iter2
    (fun (a : Cell.t) (b : Cell.t) ->
      Alcotest.(check string) "cell name" a.Cell.name b.Cell.name;
      check_bool "kind" true (a.Cell.kind = b.Cell.kind);
      check_int "width" a.Cell.width b.Cell.width;
      check_bool "terminals equal" true (a.Cell.terminals = b.Cell.terminals);
      check_bool "arcs equal" true (a.Cell.arcs = b.Cell.arcs);
      check_bool "seq inputs equal" true (a.Cell.sequential_inputs = b.Cell.sequential_inputs))
    (Cell_lib.cells lib) (Cell_lib.cells back);
  Alcotest.(check string) "stable text" text (Cell_lib_io.to_string back)

let test_library_errors () =
  expect_parse_error "missing name" (fun () -> Cell_lib_io.of_string "cell X comb width 1\n");
  expect_parse_error "terminal before cell" ~line:2 (fun () ->
      Cell_lib_io.of_string "name l\nin A fanin 1 offset 0 access both\n");
  expect_parse_error "bad kind" ~line:2 (fun () ->
      Cell_lib_io.of_string "name l\ncell X analog width 1\n");
  expect_parse_error "bad access" ~line:3 (fun () ->
      Cell_lib_io.of_string "name l\ncell X comb width 2\nin A fanin 1 offset 0 access east\n");
  check_bool "malformed master surfaces" true
    (match
       Cell_lib_io.of_string
         "name l\ncell X comb width 1\nin A fanin 1 offset 5 access both\n"
     with
    | exception Cell.Malformed _ -> true
    | _ -> false)

let test_bundle_embedded_library () =
  let netlist, fp, constraints = small_routed_design () in
  let text = Design_io.to_string ~embed_library:true ~floorplan:fp ~constraints netlist in
  (* Read back with NO known libraries: only the embedded one. *)
  let bundle = Design_io.of_string ~libraries:[] text in
  check_bool "netlist from embedded library" true (netlists_equal netlist bundle.Design_io.d_netlist);
  let outcome = Flow.run (Design_io.to_flow_input bundle) in
  check_bool "routes from the embedded library" true (Router.is_routed outcome.Flow.o_router)

let test_route_export_roundtrip () =
  let case = Suite.mini () in
  let outcome = Flow.run case.Suite.input in
  let router = outcome.Flow.o_router in
  let text = Route_io.to_string router in
  let parsed = Route_io.parse ~netlist:case.Suite.input.Flow.netlist text in
  check_bool "export matches the live trees" true (Route_io.matches_router router parsed);
  (* Corrupt one descriptor: the match must fail. *)
  let corrupted =
    match parsed with
    | (net, Route_io.Trunk { channel; x_lo; x_hi } :: rest) :: more ->
      (net, Route_io.Trunk { channel; x_lo = x_lo + 1; x_hi } :: rest) :: more
    | (net, d :: rest) :: more -> (net, rest @ [ d; d ]) :: more
    | other -> other
  in
  check_bool "corruption detected" false (Route_io.matches_router router corrupted)

let test_route_export_errors () =
  let case = Suite.mini () in
  let netlist = case.Suite.input.Flow.netlist in
  expect_parse_error "unknown net" (fun () ->
      Route_io.parse ~netlist "net nosuch trunk 0 1 2\n");
  expect_parse_error "bad directive" (fun () -> Route_io.parse ~netlist "wire n1 0 1 2\n")

let suite =
  [ Alcotest.test_case "netlist round trip" `Quick test_netlist_roundtrip;
    Alcotest.test_case "route export round trip" `Quick test_route_export_roundtrip;
    Alcotest.test_case "route export errors" `Quick test_route_export_errors;
    Alcotest.test_case "cell library round trip" `Quick test_library_roundtrip;
    Alcotest.test_case "cell library parse errors" `Quick test_library_errors;
    Alcotest.test_case "bundle with embedded library" `Quick test_bundle_embedded_library;
    Alcotest.test_case "netlist parse errors" `Quick test_netlist_errors;
    Alcotest.test_case "comments and whitespace" `Quick test_netlist_comments_and_whitespace;
    Alcotest.test_case "crlf endings" `Quick test_crlf_tolerated;
    Alcotest.test_case "placement round trip" `Quick test_placement_roundtrip;
    Alcotest.test_case "placement parse errors" `Quick test_placement_errors;
    Alcotest.test_case "constraints round trip" `Quick test_constraints_roundtrip;
    Alcotest.test_case "constraints parse errors" `Quick test_constraints_errors;
    Alcotest.test_case "bundle round trip routes identically" `Quick test_bundle_roundtrip;
    Alcotest.test_case "bundle file io" `Quick test_bundle_file_io;
    Alcotest.test_case "bundle errors" `Quick test_bundle_errors ]

let () = Alcotest.run "io" [ ("io", suite) ]
