(* Corner cases across modules that the themed suites do not pin
   down. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let test_interval_order_and_pp () =
  let open Interval in
  check_bool "empty sorts first" true (compare empty (point 0) < 0);
  check_bool "lo orders" true (compare (span 1 5) (span 2 3) < 0);
  check_bool "hi breaks ties" true (compare (span 1 3) (span 1 5) < 0);
  check_int "equal" 0 (compare (span 2 4) (make 2 3));
  check_string "pp span" "[2,5)" (Format.asprintf "%a" pp (span 2 5));
  check_string "pp empty" "(empty)" (Format.asprintf "%a" pp empty)

let test_heap_bookkeeping () =
  let h = Heap.create () in
  check_bool "fresh empty" true (Heap.is_empty h);
  check_int "size 0" 0 (Heap.size h);
  Heap.push h 1.0 1;
  Heap.push h 2.0 2;
  check_int "size 2" 2 (Heap.size h);
  ignore (Heap.pop h);
  check_int "size 1" 1 (Heap.size h);
  check_bool "pop empty" true (let h2 = Heap.create () in Heap.pop h2 = None)

let test_ugraph_edge_accounting () =
  let g = Ugraph.create () in
  let a = Ugraph.add_vertex g and b = Ugraph.add_vertex g in
  let e1 = Ugraph.add_edge g ~u:a ~v:b ~weight:1.0 in
  let e2 = Ugraph.add_edge g ~u:a ~v:b ~weight:2.0 in
  check_int "total ids" 2 (Ugraph.n_edges_total g);
  Ugraph.delete_edge g e1;
  check_int "total ids stable after delete" 2 (Ugraph.n_edges_total g);
  check_int "live" 1 (Ugraph.n_edges_live g);
  (match Ugraph.live_edges g with
  | [ e ] -> check_int "live id" e2 e.Ugraph.id
  | _ -> Alcotest.fail "expected one live edge");
  check_bool "edge record readable after death" true ((Ugraph.edge g e1).Ugraph.weight = 1.0);
  check_bool "unknown edge rejected" true
    (match Ugraph.edge g 99 with exception Bgr_error.Error _ -> true | _ -> false);
  check_bool "unknown vertex rejected" true
    (match Ugraph.add_edge g ~u:0 ~v:7 ~weight:1.0 with
    | exception Bgr_error.Error _ -> true
    | _ -> false)

let test_dag_misc () =
  let d = Dag.create () in
  let a = Dag.add_vertex d and b = Dag.add_vertex d in
  let e = Dag.add_edge d ~src:a ~dst:b ~weight:3.0 in
  check_int "n_edges" 1 (Dag.n_edges d);
  check_bool "endpoints" true (Dag.endpoints d e = (a, b));
  let seen = ref [] in
  Dag.iter_edges d (fun ~edge_id ~src ~dst ~weight ->
      seen := (edge_id, src, dst, weight) :: !seen);
  check_bool "iter_edges" true (!seen = [ (e, a, b, 3.0) ]);
  check_bool "no path -> None" true (Dag.longest_path d ~sources:[ (b, 0.0) ] ~sinks:[ a ] = None)

let test_density_empty_channel_semantics () =
  (* On an untouched channel the maximum is 0 and every column attains
     it: NC_M equals the width.  Documented, if slightly surprising. *)
  let d = Density.create ~n_channels:1 ~width:7 in
  check_int "C_M of empty" 0 (Density.cM d ~channel:0);
  check_int "NC_M of empty" 7 (Density.ncM d ~channel:0);
  check_bool "unknown channel rejected" true
    (match Density.cM d ~channel:3 with exception Bgr_error.Error _ -> true | _ -> false)

let test_cell_and_netlist_printing () =
  let inv = Cell_lib.find Cell_lib.ecl_default "INV1" in
  let s = Format.asprintf "%a" Cell.pp inv in
  check_bool "cell pp mentions name" true (String.length s > 4 && String.sub s 0 4 = "INV1");
  let netlist, invs = Util.chain_netlist 2 in
  let s =
    Format.asprintf "%a" (Netlist.pp_endpoint netlist) (Netlist.Pin { Netlist.inst = invs.(0); term = "Z" })
  in
  check_string "pin endpoint" "i0.Z" s;
  let s = Format.asprintf "%a" (Netlist.pp_endpoint netlist) (Netlist.Port 0) in
  check_string "port endpoint" "port:IN" s

let test_feedthrough_failure_printing () =
  let f = { Feedthrough.f_net = 3; f_row = 1; f_width = 2 } in
  check_string "failure text" "net 3: no 2-wide feedthrough in row 1"
    (Format.asprintf "%a" Feedthrough.pp_failure f)

let test_lineio_field_errors () =
  check_bool "int error carries line" true
    (match Lineio.int_field ~line:42 ~what:"x" "seven" with
    | exception Lineio.Parse_error { line = 42; _ } -> true
    | _ -> false);
  check_bool "float error" true
    (match Lineio.float_field ~line:7 ~what:"x" "?" with
    | exception Lineio.Parse_error { line = 7; _ } -> true
    | _ -> false);
  check_int "tokenize numbers lines from 1" 1
    (match Lineio.tokenize "a b" with (line, _) :: _ -> line | [] -> 0)

let test_placement_extreme_utilization () =
  let netlist, _ = Util.chain_netlist 6 in
  let full = Placement.place ~utilization:1.0 ~netlist ~n_rows:2 Placement.P1 in
  (* Full utilization leaves no feed slots. *)
  check_int "no slots at 100%" 0 (List.length full.Placement.r_slots);
  let loose = Placement.place ~utilization:0.5 ~netlist ~n_rows:2 Placement.P1 in
  check_bool "half utilization leaves about half the columns" true
    (List.length loose.Placement.r_slots >= full.Placement.r_width)

let test_dsu_self_union () =
  let d = Dsu.create 3 in
  check_bool "self union is false" false (Dsu.union d 1 1);
  check_int "distinct unaffected" 3 (Dsu.count_distinct d [ 0; 1; 2 ])

let test_greedy_overhang_constant () =
  check_bool "bounded overhang" true (Greedy_router.overhang_columns > 0)

let test_rect_equal () =
  let a = Rect.of_point ~x:1 ~y:2 in
  check_bool "reflexive" true (Rect.equal a a);
  check_bool "distinct" false (Rect.equal a (Rect.of_point ~x:1 ~y:3))

let suite =
  [ Alcotest.test_case "interval order and printing" `Quick test_interval_order_and_pp;
    Alcotest.test_case "heap bookkeeping" `Quick test_heap_bookkeeping;
    Alcotest.test_case "ugraph edge accounting" `Quick test_ugraph_edge_accounting;
    Alcotest.test_case "dag misc" `Quick test_dag_misc;
    Alcotest.test_case "density empty-channel semantics" `Quick test_density_empty_channel_semantics;
    Alcotest.test_case "cell and netlist printing" `Quick test_cell_and_netlist_printing;
    Alcotest.test_case "feedthrough failure printing" `Quick test_feedthrough_failure_printing;
    Alcotest.test_case "lineio field errors" `Quick test_lineio_field_errors;
    Alcotest.test_case "placement extreme utilization" `Quick test_placement_extreme_utilization;
    Alcotest.test_case "dsu self union" `Quick test_dsu_self_union;
    Alcotest.test_case "greedy overhang constant" `Quick test_greedy_overhang_constant;
    Alcotest.test_case "rect equality" `Quick test_rect_equal ]

let () = Alcotest.run "misc" [ ("misc", suite) ]
