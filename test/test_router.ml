(* Tests for the edge-deletion router: invariants after initial routing,
   density-chart consistency, differential mirroring, improvement
   phases, determinism. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mini_input () = (Suite.mini ()).Suite.input

let build_router ?(timing = true) ?(options = Router.default_options) input =
  let fp0 = Flow.floorplan_of_input input in
  let dg = Delay_graph.build input.Flow.netlist in
  let order =
    if timing then Sta.static_net_order dg input.Flow.constraints
    else List.init (Netlist.n_nets input.Flow.netlist) Fun.id
  in
  let fp, assignment, _ = Feed_insert.assign_with_insertion fp0 ~order in
  let sta = if timing then Some (Sta.create dg input.Flow.constraints) else None in
  (Router.create ~options fp assignment sta, fp)

let test_initial_route_invariants () =
  let input = mini_input () in
  let router, fp = build_router input in
  check_bool "not routed before" false (Router.is_routed router);
  Router.initial_route router;
  check_bool "routed after" true (Router.is_routed router);
  let netlist = input.Flow.netlist in
  for net = 0 to Netlist.n_nets netlist - 1 do
    let rg = Router.routing_graph router net in
    let g = rg.Routing_graph.graph in
    (* Every net's live graph is a tree over its terminals... *)
    check_bool
      (Printf.sprintf "net %d terminals connected" net)
      true
      (Ugraph.connected_within g rg.Routing_graph.terminals);
    check_int
      (Printf.sprintf "net %d: no deletable edge left" net)
      0
      (List.length (Bridges.non_bridge_ids g));
    (* ... with no dangling non-terminal leaf. *)
    for v = 0 to Ugraph.n_vertices g - 1 do
      let is_terminal =
        match rg.Routing_graph.vkind.(v) with
        | Routing_graph.Terminal _ -> true
        | Routing_graph.Position _ -> false
      in
      if (not is_terminal) && Ugraph.degree g v > 0 then
        check_bool (Printf.sprintf "net %d vertex %d not dangling" net v) true
          (Ugraph.degree g v >= 2)
    done;
    (* The tentative tree equals the whole live graph now. *)
    check_int
      (Printf.sprintf "net %d tree covers the graph" net)
      (Ugraph.n_edges_live g)
      (List.length (Router.tree_edges router net))
  done;
  ignore fp

let test_density_consistency () =
  let input = mini_input () in
  let router, fp = build_router input in
  Router.initial_route router;
  let recounted = Util.recount_density router fp in
  check_bool "incremental density equals recount after initial routing" true
    (Util.densities_equal (Router.density router) recounted
       ~n_channels:(Floorplan.n_channels fp) ~width:(Floorplan.width fp));
  (* And still after the improvement phases. *)
  ignore (Router.recover_violations router);
  ignore (Router.improve_delay router);
  ignore (Router.improve_area router);
  let recounted = Util.recount_density router fp in
  check_bool "density consistent after improvements" true
    (Util.densities_equal (Router.density router) recounted
       ~n_channels:(Floorplan.n_channels fp) ~width:(Floorplan.width fp))

let test_caps_match_trees () =
  let input = mini_input () in
  let router, _ = build_router input in
  ignore (Router.run router);
  let caps = Router.wire_caps router in
  let netlist = input.Flow.netlist in
  for net = 0 to Netlist.n_nets netlist - 1 do
    let rg = Router.routing_graph router net in
    let expected = Routing_graph.tree_capacitance rg ~edge_ids:(Router.tree_edges router net) in
    Alcotest.(check (float 1e-6)) (Printf.sprintf "net %d cap" net) expected caps.(net)
  done

let test_determinism () =
  let measure () =
    let outcome = Flow.run (mini_input ()) in
    let m = outcome.Flow.o_measurement in
    (m.Flow.m_delay_ps, m.Flow.m_length_mm, m.Flow.m_deletions, m.Flow.m_area_mm2)
  in
  let a = measure () and b = measure () in
  check_bool "bit-identical reruns" true (a = b)

let test_differential_mirroring () =
  let input = mini_input () in
  let router, _ = build_router input in
  check_int "pair recognized before routing" 1 (Router.n_recognized_pairs router);
  ignore (Router.run router);
  (* Find the pair and compare tree shapes. *)
  let netlist = input.Flow.netlist in
  let pair = ref None in
  for net = 0 to Netlist.n_nets netlist - 1 do
    match (Netlist.net netlist net).Netlist.diff_partner with
    | Some p when p > net -> pair := Some (net, p)
    | Some _ | None -> ()
  done;
  match !pair with
  | None -> Alcotest.fail "mini suite should contain a pair"
  | Some (a, b) ->
    let shape net =
      let rg = Router.routing_graph router net in
      Router.tree_edges router net
      |> List.filter_map (fun eid ->
             match Routing_graph.edge_kind rg eid with
             | Routing_graph.Trunk { channel; span } ->
               Some (`Trunk (channel, Interval.length span))
             | Routing_graph.Branch { row; _ } -> Some (`Branch row)
             | Routing_graph.Correspondence _ -> None)
      |> List.sort compare
    in
    (* If recognition survived the whole flow, shapes coincide; the
       trees differ only by the column offset. *)
    if Router.n_recognized_pairs router = 1 then
      check_bool "mirrored trees have identical shape" true (shape a = shape b)

let test_improvement_reports () =
  let input = mini_input () in
  let router, _ = build_router input in
  Router.initial_route router;
  let r = Router.recover_violations router in
  check_bool "recover passes bounded" true
    (r.Router.passes <= (Router.options router).Router.max_recover_passes);
  let r = Router.improve_delay router in
  check_bool "delay passes bounded" true
    (r.Router.passes <= (Router.options router).Router.max_delay_passes);
  let before = Array.fold_left ( + ) 0 (Density.tracks_estimate (Router.density router)) in
  let r = Router.improve_area router in
  check_bool "area passes bounded" true
    (r.Router.passes <= (Router.options router).Router.max_area_passes);
  let after = Array.fold_left ( + ) 0 (Density.tracks_estimate (Router.density router)) in
  check_bool "area phase never worsens total tracks" true (after <= before)

let test_reroute_net_preserves_invariants () =
  let input = mini_input () in
  let router, fp = build_router input in
  Router.initial_route router;
  (* Reroute a handful of nets explicitly. *)
  for net = 0 to min 9 (Netlist.n_nets input.Flow.netlist - 1) do
    Router.reroute_net router net
  done;
  check_bool "still routed" true (Router.is_routed router);
  let recounted = Util.recount_density router fp in
  check_bool "density still consistent" true
    (Util.densities_equal (Router.density router) recounted
       ~n_channels:(Floorplan.n_channels fp) ~width:(Floorplan.width fp))

let test_unconstrained_mode () =
  let input = mini_input () in
  let router, _ = build_router ~timing:false input in
  check_bool "no sta attached" true (Router.sta router = None);
  ignore (Router.run router);
  check_bool "area-only routing completes" true (Router.is_routed router)

let test_star_estimator () =
  let input = mini_input () in
  let options = { Router.default_options with Router.cl_estimator = Router.Star_bbox } in
  let router, fp = build_router ~options input in
  Router.initial_route router;
  check_bool "routed with star estimator" true (Router.is_routed router);
  (* Star caps equal the HPWL estimate, independent of the tree. *)
  let caps = Router.wire_caps router in
  for net = 0 to Netlist.n_nets input.Flow.netlist - 1 do
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "net %d star cap" net)
      (Lower_bound.hpwl_cap fp net) caps.(net)
  done

let test_channel_nets_cover_trees () =
  let input = mini_input () in
  let router, fp = build_router input in
  ignore (Router.run router);
  (* Every tree trunk must appear in its channel's segment list. *)
  for channel = 0 to Floorplan.n_channels fp - 1 do
    let segs = Router.channel_nets router ~channel in
    let by_net = Hashtbl.create 16 in
    List.iter (fun (cn : Router.chan_net) -> Hashtbl.replace by_net cn.Router.cn_net cn) segs;
    for net = 0 to Netlist.n_nets input.Flow.netlist - 1 do
      let rg = Router.routing_graph router net in
      List.iter
        (fun eid ->
          match Routing_graph.edge_kind rg eid with
          | Routing_graph.Trunk { channel = c; span } when c = channel ->
            (match Hashtbl.find_opt by_net net with
            | None -> Alcotest.failf "net %d trunk missing from channel %d" net channel
            | Some cn ->
              check_bool "span within segment bounds" true
                (cn.Router.cn_lo <= Interval.lo span && Interval.hi span <= cn.Router.cn_hi))
          | Routing_graph.Trunk _ | Routing_graph.Branch _ | Routing_graph.Correspondence _ -> ())
        (Router.tree_edges router net)
    done
  done

let test_sequential_baseline () =
  let input = mini_input () in
  let router, fp = build_router input in
  Router.route_sequential router;
  check_bool "sequential run routes everything" true (Router.is_routed router);
  (* Same structural invariants as the concurrent scheme. *)
  let netlist = input.Flow.netlist in
  for net = 0 to Netlist.n_nets netlist - 1 do
    let rg = Router.routing_graph router net in
    check_bool
      (Printf.sprintf "net %d terminals connected" net)
      true
      (Ugraph.connected_within rg.Routing_graph.graph rg.Routing_graph.terminals)
  done;
  let recounted = Util.recount_density router fp in
  check_bool "density consistent after sequential routing" true
    (Util.densities_equal (Router.density router) recounted
       ~n_channels:(Floorplan.n_channels fp) ~width:(Floorplan.width fp));
  (* Mirrored pairs survive sequential routing too. *)
  check_int "pair still recognized" 1 (Router.n_recognized_pairs router)

let test_sequential_order_dependence () =
  (* The defining weakness of the baseline: results depend on the net
     ordering (the paper's initial routing is order-independent). *)
  let input = mini_input () in
  let total_tracks order =
    let router, _ = build_router input in
    Router.route_sequential ?order router;
    Array.fold_left ( + ) 0 (Density.tracks_estimate (Router.density router))
  in
  let forward = total_tracks None in
  let n = Netlist.n_nets input.Flow.netlist in
  let backward = total_tracks (Some (List.rev (List.init n Fun.id))) in
  (* Not an equality assertion — just that both route and report. *)
  check_bool "both orders route" true (forward > 0 && backward > 0)

let test_penalty_function () =
  let check_float = Alcotest.(check (float 1e-12)) in
  (* Eq. 4: pen(x,P) = 1 - x/tau for x >= 0, exp(-x/tau) below. *)
  check_float "zero slack" 1.0 (Router.penalty 0.0 100.0);
  check_float "full slack" 0.0 (Router.penalty 100.0 100.0);
  check_float "half slack" 0.5 (Router.penalty 50.0 100.0);
  check_float "violation grows exponentially" (exp 1.0) (Router.penalty (-100.0) 100.0);
  check_float "deep violation clamped, finite" (exp 50.0) (Router.penalty (-1.0e9) 100.0);
  (* Monotone decreasing in x across the boundary. *)
  let xs = [ -200.0; -50.0; -1.0; 0.0; 1.0; 50.0; 200.0 ] in
  let rec mono = function
    | a :: (b :: _ as rest) -> Router.penalty a 100.0 >= Router.penalty b 100.0 && mono rest
    | _ -> true
  in
  check_bool "monotone" true (mono xs)

let test_eco_recovery () =
  (* Tighten a constraint after routing: set_limit flips it into
     violation and the recovery phases must claw it back when the
     tightened budget is demonstrably achievable. *)
  let input = mini_input () in
  let router, _ = build_router input in
  ignore (Router.run router);
  match Router.sta router with
  | None -> Alcotest.fail "expected sta"
  | Some sta ->
    let ci, margin = Option.get (Sta.worst sta) in
    check_bool "initially met" true (margin > 0.0);
    (* Consume half the worst margin: achievable by construction. *)
    let old_limit = (Sta.constraint_ sta ci).Path_constraint.limit_ps in
    Sta.set_limit sta ci (old_limit -. (margin /. 2.0));
    check_bool "still met at half margin (routing unchanged)" true (Sta.margin sta ci > 0.0);
    (* Now overshoot past the full margin: a real violation appears... *)
    Sta.set_limit sta ci (old_limit -. (margin *. 1.5));
    check_bool "violated" true (Sta.margin sta ci < 0.0);
    (* ... recovery runs and is bounded; it may or may not succeed, but
       must never leave the state worse or inconsistent. *)
    let before = Sta.margin sta ci in
    ignore (Router.recover_violations router);
    ignore (Router.improve_delay router);
    check_bool "margin not degraded" true (Sta.margin sta ci >= before -. 1e-6);
    check_bool "still fully routed" true (Router.is_routed router);
    check_bool "verifier still signs off" true (Verify.ok (Verify.routed router))

let suite =
  [ Alcotest.test_case "initial routing invariants" `Quick test_initial_route_invariants;
    Alcotest.test_case "ECO recovery" `Quick test_eco_recovery;
    Alcotest.test_case "Eq.4 penalty function" `Quick test_penalty_function;
    Alcotest.test_case "sequential baseline invariants" `Quick test_sequential_baseline;
    Alcotest.test_case "sequential order dependence" `Quick test_sequential_order_dependence;
    Alcotest.test_case "density chart consistency" `Quick test_density_consistency;
    Alcotest.test_case "caps match final trees" `Quick test_caps_match_trees;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "differential mirroring" `Quick test_differential_mirroring;
    Alcotest.test_case "improvement phase bounds" `Quick test_improvement_reports;
    Alcotest.test_case "reroute_net invariants" `Quick test_reroute_net_preserves_invariants;
    Alcotest.test_case "unconstrained mode" `Quick test_unconstrained_mode;
    Alcotest.test_case "star estimator" `Quick test_star_estimator;
    Alcotest.test_case "channel segments cover trees" `Quick test_channel_nets_cover_trees ]

let () = Alcotest.run "router" [ ("router", suite) ]
