(* Unit and property tests for bgr_geom: Interval, Rect, Dims. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* --- Interval -------------------------------------------------------- *)

let test_interval_make () =
  let i = Interval.make 3 7 in
  check_int "lo" 3 (Interval.lo i);
  check_int "hi (exclusive, both endpoints covered)" 8 (Interval.hi i);
  check_int "length" 5 (Interval.length i);
  let r = Interval.make 7 3 in
  check_bool "make is order-insensitive" true (Interval.equal i r)

let test_interval_point () =
  let p = Interval.point 4 in
  check_int "single column" 1 (Interval.length p);
  check_bool "mem" true (Interval.mem 4 p);
  check_bool "not mem left" false (Interval.mem 3 p);
  check_bool "not mem right" false (Interval.mem 5 p)

let test_interval_span () =
  check_int "span length" 4 (Interval.length (Interval.span 2 6));
  check_bool "span right end exclusive" false (Interval.mem 6 (Interval.span 2 6));
  check_bool "empty when hi<=lo" true (Interval.is_empty (Interval.span 5 5));
  check_bool "empty when inverted" true (Interval.is_empty (Interval.span 7 3))

let test_interval_empty () =
  check_bool "empty is empty" true (Interval.is_empty Interval.empty);
  check_int "empty length" 0 (Interval.length Interval.empty);
  check_bool "nothing in empty" false (Interval.mem 0 Interval.empty);
  check_bool "hull neutral left" true
    (Interval.equal (Interval.make 1 2) (Interval.hull Interval.empty (Interval.make 1 2)));
  check_bool "hull neutral right" true
    (Interval.equal (Interval.make 1 2) (Interval.hull (Interval.make 1 2) Interval.empty));
  check_bool "contains empty" true (Interval.contains (Interval.make 1 2) Interval.empty)

let test_interval_set_ops () =
  let a = Interval.span 0 5 and b = Interval.span 3 9 in
  check_bool "overlaps" true (Interval.overlaps a b);
  check_bool "inter" true (Interval.equal (Interval.span 3 5) (Interval.inter a b));
  check_bool "hull" true (Interval.equal (Interval.span 0 9) (Interval.hull a b));
  let c = Interval.span 5 7 in
  check_bool "adjacent half-open spans do not overlap" false (Interval.overlaps a c);
  check_bool "disjoint inter empty" true (Interval.is_empty (Interval.inter a c))

let test_interval_iter_fold () =
  let xs = ref [] in
  Interval.iter (fun x -> xs := x :: !xs) (Interval.span 2 6);
  Alcotest.(check (list int)) "iter ascending" [ 2; 3; 4; 5 ] (List.rev !xs);
  check_int "fold sums" 14 (Interval.fold ( + ) 0 (Interval.span 2 6))

let test_interval_shift () =
  check_bool "shift" true (Interval.equal (Interval.span 5 8) (Interval.shift 3 (Interval.span 2 5)));
  check_bool "shift empty" true (Interval.is_empty (Interval.shift 3 Interval.empty))

(* Properties. *)
let interval_gen =
  QCheck.Gen.(
    map2 (fun a b -> Interval.span (min a b) (max a b)) (int_range (-20) 20) (int_range (-20) 20))

let arb_interval = QCheck.make ~print:(Format.asprintf "%a" Interval.pp) interval_gen

let prop_hull_contains =
  QCheck.Test.make ~name:"interval: hull contains both operands" ~count:500
    (QCheck.pair arb_interval arb_interval)
    (fun (a, b) ->
      let h = Interval.hull a b in
      Interval.contains h a && Interval.contains h b)

let prop_inter_subset =
  QCheck.Test.make ~name:"interval: intersection inside both" ~count:500
    (QCheck.pair arb_interval arb_interval)
    (fun (a, b) ->
      let i = Interval.inter a b in
      Interval.contains a i && Interval.contains b i)

let prop_length_consistent =
  QCheck.Test.make ~name:"interval: length = #covered columns" ~count:500 arb_interval
    (fun a -> Interval.length a = Interval.fold (fun n _ -> n + 1) 0 a)

let prop_overlap_symmetric =
  QCheck.Test.make ~name:"interval: overlap is symmetric and matches mem" ~count:500
    (QCheck.pair arb_interval arb_interval)
    (fun (a, b) ->
      let by_mem = Interval.fold (fun acc x -> acc || Interval.mem x b) false a in
      Interval.overlaps a b = by_mem && Interval.overlaps b a = Interval.overlaps a b)

(* --- Rect ------------------------------------------------------------ *)

let test_rect_bbox () =
  match Rect.of_points [ (2, 5); (7, 1); (4, 4) ] with
  | None -> Alcotest.fail "expected a box"
  | Some r ->
    check_int "width" 5 (Rect.width r);
    check_int "height" 4 (Rect.height r);
    check_int "half perimeter" 9 (Rect.half_perimeter r);
    check_bool "mem inside" true (Rect.mem r ~x:4 ~y:3);
    check_bool "mem outside" false (Rect.mem r ~x:8 ~y:3)

let test_rect_empty () =
  check_bool "of_points []" true (Rect.of_points [] = None)

let test_rect_degenerate () =
  let r = Rect.of_point ~x:3 ~y:3 in
  check_int "degenerate half perimeter" 0 (Rect.half_perimeter r);
  let r = Rect.add_point r ~x:3 ~y:9 in
  check_int "vertical-only" 6 (Rect.half_perimeter r)

let prop_rect_union =
  let point = QCheck.(pair (int_range (-50) 50) (int_range (-50) 50)) in
  QCheck.Test.make ~name:"rect: union contains all points of both lists" ~count:300
    (QCheck.pair (QCheck.list_of_size (QCheck.Gen.int_range 1 8) point)
       (QCheck.list_of_size (QCheck.Gen.int_range 1 8) point))
    (fun (ps, qs) ->
      match (Rect.of_points ps, Rect.of_points qs) with
      | Some a, Some b ->
        let u = Rect.union a b in
        List.for_all (fun (x, y) -> Rect.mem u ~x ~y) (ps @ qs)
      | _ -> false)

(* --- Dims ------------------------------------------------------------ *)

let test_dims () =
  let d = Dims.default in
  check_float "h_um" (10.0 *. d.Dims.pitch_um) (Dims.h_um d 10);
  check_float "v_um" (3.0 *. d.Dims.row_height_um) (Dims.v_um d ~rows:3);
  check_float "wire cap" (100.0 *. d.Dims.cap_per_um) (Dims.wire_cap d ~um:100.0);
  check_float "mm" 1.5 (Dims.mm_of_um 1500.0);
  check_float "mm2" 2.0 (Dims.mm2_of_um2 2.0e6)

let suite =
  [ Alcotest.test_case "interval make" `Quick test_interval_make;
    Alcotest.test_case "interval point" `Quick test_interval_point;
    Alcotest.test_case "interval span" `Quick test_interval_span;
    Alcotest.test_case "interval empty" `Quick test_interval_empty;
    Alcotest.test_case "interval set ops" `Quick test_interval_set_ops;
    Alcotest.test_case "interval iter/fold" `Quick test_interval_iter_fold;
    Alcotest.test_case "interval shift" `Quick test_interval_shift;
    QCheck_alcotest.to_alcotest prop_hull_contains;
    QCheck_alcotest.to_alcotest prop_inter_subset;
    QCheck_alcotest.to_alcotest prop_length_consistent;
    QCheck_alcotest.to_alcotest prop_overlap_symmetric;
    Alcotest.test_case "rect bbox" `Quick test_rect_bbox;
    Alcotest.test_case "rect empty" `Quick test_rect_empty;
    Alcotest.test_case "rect degenerate" `Quick test_rect_degenerate;
    QCheck_alcotest.to_alcotest prop_rect_union;
    Alcotest.test_case "dims conversions" `Quick test_dims ]

let () = Alcotest.run "geom" [ ("geom", suite) ]
