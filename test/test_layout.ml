(* Tests for bgr_layout: Floorplan, Feedthrough assignment, Feed_insert. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Floorplan --------------------------------------------------------- *)

let test_floorplan_geometry () =
  let fp, _, invs = Util.small_floorplan () in
  check_int "rows" 2 (Floorplan.n_rows fp);
  check_int "channels" 3 (Floorplan.n_channels fp);
  check_int "width" 12 (Floorplan.width fp);
  check_int "slots" 4 (Floorplan.n_slots fp);
  (* INV1: input A at offset 0, output Z at offset 1. *)
  check_int "terminal column of i1.A" 6
    (Floorplan.terminal_column fp { Netlist.inst = invs.(1); term = "A" });
  check_int "terminal column of i1.Z" 7
    (Floorplan.terminal_column fp { Netlist.inst = invs.(1); term = "Z" });
  check_int "row of i2" 1 (Floorplan.terminal_row fp { Netlist.inst = invs.(2); term = "A" });
  Alcotest.(check (list int))
    "both-sides access of a row-1 cell" [ 1; 2 ]
    (Floorplan.terminal_channels fp { Netlist.inst = invs.(2); term = "A" })

let test_floorplan_ports () =
  let fp, netlist, _ = Util.small_floorplan () in
  let find name =
    let found = ref (-1) in
    Array.iter
      (fun (p : Netlist.port) -> if p.Netlist.port_name = name then found := p.Netlist.port_id)
      (Netlist.ports netlist);
    !found
  in
  let p_in = find "IN" and p_out = find "OUT" in
  check_int "south port channel" 0 (Floorplan.port_channel fp p_in);
  check_int "north port channel" 2 (Floorplan.port_channel fp p_out);
  check_bool "port candidates inside chip" true
    (List.for_all (fun x -> x >= 0 && x < 12) (Floorplan.port_candidates fp p_in));
  check_bool "several candidates" true (List.length (Floorplan.port_candidates fp p_in) >= 2)

let test_floorplan_rejects () =
  let netlist, invs = Util.chain_netlist 2 in
  let expect name cells slots width =
    match Floorplan.make ~netlist ~dims:Dims.default ~n_rows:1 ~width ~cells ~slots () with
    | (_ : Floorplan.t) -> Alcotest.failf "%s: expected Overlap" name
    | exception Floorplan.Overlap _ -> ()
  in
  let c0 = { Floorplan.inst = invs.(0); row = 0; x = 0 } in
  let c1 = { Floorplan.inst = invs.(1); row = 0; x = 1 } in
  expect "overlapping cells" [ c0; c1 ] [] 10;
  expect "cell beyond chip" [ c0; { c1 with Floorplan.x = 9 } ] [] 10;
  expect "slot inside a cell" [ c0; { c1 with Floorplan.x = 5 } ] [ (0, 1, 0) ] 10;
  expect "missing instance" [ c0 ] [] 10;
  expect "duplicate slot column" [ c0; { c1 with Floorplan.x = 5 } ] [ (0, 3, 0); (0, 3, 0) ] 10

let test_net_bbox () =
  let fp, netlist, invs = Util.small_floorplan () in
  (* Net i1.Z -> i2.A spans row 0 to row 1. *)
  let net = Option.get (Netlist.net_of_pin netlist { Netlist.inst = invs.(1); term = "Z" }) in
  let bbox = Floorplan.net_bbox fp net in
  check_int "bbox width" 7 (Rect.width bbox) (* columns 0..7 *);
  check_bool "bbox vertical extent > 0" true (Rect.height bbox >= 1)

let test_chip_metrics () =
  let fp, _, _ = Util.small_floorplan () in
  let tracks = [| 2; 4; 2 |] in
  let d = Dims.default in
  let expected_h = (2.0 *. d.Dims.row_height_um) +. (8.0 *. d.Dims.track_um) in
  Alcotest.(check (float 1e-6)) "height" expected_h (Floorplan.chip_height_um fp ~channel_tracks:tracks);
  let mid0 = Floorplan.channel_mid_y_um fp ~channel_tracks:tracks 0 in
  Alcotest.(check (float 1e-6)) "channel 0 midpoint" (1.0 *. d.Dims.track_um) mid0;
  let mid1 = Floorplan.channel_mid_y_um fp ~channel_tracks:tracks 1 in
  Alcotest.(check (float 1e-6))
    "channel 1 midpoint" ((2.0 *. d.Dims.track_um) +. d.Dims.row_height_um +. (2.0 *. d.Dims.track_um))
    mid1;
  check_bool "area positive" true (Floorplan.chip_area_mm2 fp ~channel_tracks:tracks > 0.0)

(* --- Feedthrough assignment -------------------------------------------- *)

let test_demands () =
  let fp, netlist, invs = Util.small_floorplan () in
  (* Same-row net: no demand.  Cross-row net: exactly row 0 or 1? The
     chain net i1.Z (row 0) -> i2.A (row 1) shares channel 1, so no
     crossing is required either. *)
  let net_cross = Option.get (Netlist.net_of_pin netlist { Netlist.inst = invs.(1); term = "Z" }) in
  check_bool "adjacent rows share a channel: no demand" true
    (Feedthrough.demand_of_net fp net_cross = None);
  ignore (Feedthrough.demands fp)

let three_row_netlist () =
  (* driver in row 0, sink in row 2: must cross row 1. *)
  let b = Netlist.builder ~library:Cell_lib.ecl_default in
  let p = Netlist.add_port b ~name:"IN" ~side:Netlist.South () in
  let d = Netlist.add_instance b ~name:"d" ~cell:"BUF2" in
  let s = Netlist.add_instance b ~name:"s" ~cell:"INV1" in
  let q = Netlist.add_port b ~name:"OUT" ~side:Netlist.North () in
  let _ = Netlist.add_net b ~name:"n0" ~driver:(Netlist.Port p) ~sinks:[ Util.pin d "A" ] () in
  let far = Netlist.add_net b ~name:"far" ~driver:(Util.pin d "Z") ~sinks:[ Util.pin s "A" ] () in
  let _ = Netlist.add_net b ~name:"n1" ~driver:(Util.pin s "Z") ~sinks:[ Netlist.Port q ] () in
  (Netlist.freeze b, d, s, far)

let three_row_fp ?(slots = [ (1, 4, 0) ]) () =
  let netlist, d, s, far = three_row_netlist () in
  let cells =
    [ { Floorplan.inst = d; row = 0; x = 0 }; { Floorplan.inst = s; row = 2; x = 0 } ]
  in
  (Floorplan.make ~netlist ~dims:Dims.default ~n_rows:3 ~width:10 ~cells ~slots (), netlist, far)

let test_demand_rows () =
  let fp, _, far = three_row_fp () in
  match Feedthrough.demand_of_net fp far with
  | None -> Alcotest.fail "expected a crossing demand"
  | Some d ->
    Alcotest.(check (list int)) "crosses row 1 only" [ 1 ] d.Feedthrough.d_rows;
    check_int "width 1" 1 d.Feedthrough.d_width

let test_assign_success_and_occupancy () =
  let fp, netlist, far = three_row_fp () in
  let assignment, failures = Feedthrough.assign fp ~order:(Util.id_order netlist) in
  check_bool "no failures" true (failures = []);
  check_bool "complete" true (Feedthrough.is_complete assignment);
  (match Feedthrough.slots_of_net assignment far with
  | [ (1, [ slot ]) ] ->
    check_int "granted the row-1 slot" 4 slot.Floorplan.slot_x;
    check_bool "occupied by the net" true (Feedthrough.slot_user assignment slot.Floorplan.slot_id = Some far)
  | _ -> Alcotest.fail "expected one granted row")

let test_assign_failure () =
  let fp, netlist, far = three_row_fp ~slots:[] () in
  let _, failures = Feedthrough.assign fp ~order:(Util.id_order netlist) in
  (match failures with
  | [ f ] ->
    check_int "failing net" far f.Feedthrough.f_net;
    check_int "failing row" 1 f.Feedthrough.f_row
  | _ -> Alcotest.fail "expected exactly one failure")

let test_assign_center_preference () =
  (* Slots at columns 1 and 8; terminals near column 1: the closer slot
     wins. *)
  let fp, netlist, far = three_row_fp ~slots:[ (1, 8, 0); (1, 1, 0) ] () in
  let assignment, _ = Feedthrough.assign fp ~order:(Util.id_order netlist) in
  match Feedthrough.slots_of_net assignment far with
  | [ (1, [ slot ]) ] -> check_int "center-out search picks x=1" 1 slot.Floorplan.slot_x
  | _ -> Alcotest.fail "expected a grant"

let test_width_flag_compatibility () =
  (* The only slot is flagged for 2-pitch nets: a 1-pitch net must not
     take it. *)
  let fp, netlist, _ = three_row_fp ~slots:[ (1, 4, 2) ] () in
  let _, failures = Feedthrough.assign fp ~order:(Util.id_order netlist) in
  check_int "flagged slot refused" 1 (List.length failures)

(* --- Feed-cell insertion ------------------------------------------------ *)

let test_insert_noop () =
  let fp, _, _ = Util.small_floorplan () in
  let fp' = Feed_insert.insert fp ~failures:[] in
  check_bool "no failures -> same floorplan" true (fp' == fp)

let test_insert_widens_and_succeeds () =
  let fp, netlist, far = three_row_fp ~slots:[] () in
  check_int "no slots initially" 0 (Floorplan.n_slots fp);
  let fp', assignment, rounds = Feed_insert.assign_with_insertion fp ~order:(Util.id_order netlist) in
  check_bool "some insertion happened" true (rounds >= 1);
  check_bool "wider chip" true (Floorplan.width fp' > Floorplan.width fp);
  check_bool "complete after insertion" true (Feedthrough.is_complete assignment);
  check_bool "net served" true (Feedthrough.slots_of_net assignment far <> []);
  (* Every row widened by the same amount. *)
  let widened = Floorplan.width fp' - Floorplan.width fp in
  for r = 0 to Floorplan.n_rows fp' - 1 do
    let slots_in_row = Array.length (Floorplan.row_slots fp' r) in
    let before = Array.length (Floorplan.row_slots fp r) in
    check_int (Printf.sprintf "row %d gains exactly the widening" r) widened (slots_in_row - before)
  done

let test_insert_flags_multipitch () =
  (* A 2-pitch net with no adjacent free slots triggers a flagged group. *)
  let b = Netlist.builder ~library:Cell_lib.ecl_default in
  let p = Netlist.add_port b ~name:"IN" ~side:Netlist.South () in
  let d = Netlist.add_instance b ~name:"d" ~cell:"CLKBUF" in
  let s = Netlist.add_instance b ~name:"s" ~cell:"DFF" in
  let _ = Netlist.add_net b ~name:"n0" ~driver:(Netlist.Port p) ~sinks:[ Util.pin d "A" ] () in
  let wide =
    Netlist.add_net b ~name:"wide" ~pitch:2 ~driver:(Util.pin d "Z") ~sinks:[ Util.pin s "CK" ] ()
  in
  let p2 = Netlist.add_port b ~name:"D2" ~side:Netlist.North () in
  let _ = Netlist.add_net b ~name:"nd" ~driver:(Netlist.Port p2) ~sinks:[ Util.pin s "D" ] () in
  let netlist = Netlist.freeze b in
  let cells =
    [ { Floorplan.inst = d; row = 0; x = 0 }; { Floorplan.inst = s; row = 2; x = 0 } ]
  in
  let fp = Floorplan.make ~netlist ~dims:Dims.default ~n_rows:3 ~width:10 ~cells ~slots:[ (1, 8, 0) ] () in
  let fp', assignment, _ = Feed_insert.assign_with_insertion fp ~order:(Util.id_order netlist) in
  let flagged =
    Array.to_list (Floorplan.slots fp')
    |> List.filter (fun (s : Floorplan.slot) -> s.Floorplan.width_flag = 2)
  in
  check_bool "2-flagged group inserted" true (List.length flagged >= 2);
  (match Feedthrough.slots_of_net assignment wide with
  | [ (1, granted) ] ->
    check_int "two adjacent columns granted" 2 (List.length granted);
    (match granted with
    | [ a; b ] -> check_int "adjacency" (a.Floorplan.slot_x + 1) b.Floorplan.slot_x
    | _ -> Alcotest.fail "expected two slots")
  | _ -> Alcotest.fail "expected a row-1 grant")

(* Property: however nets are ordered, the assignment never
   double-books a slot, grants only compatible flags, and serves
   whole demands with column-adjacent groups. *)
let prop_assignment_sound =
  let case = lazy (Suite.mini ()) in
  QCheck.Test.make ~name:"feedthrough: random orders never double-book" ~count:30
    QCheck.(make Gen.(int_range 0 1000000))
    (fun salt ->
      let case = Lazy.force case in
      let input = case.Suite.input in
      let fp = Flow.floorplan_of_input input in
      let netlist = input.Flow.netlist in
      let n = Netlist.n_nets netlist in
      (* a deterministic pseudo-shuffle of the net order *)
      let order = Array.init n Fun.id in
      let rng = Prng.create ~seed:(Int64.of_int (salt + 7)) in
      Prng.shuffle rng order;
      let assignment, _failures = Feedthrough.assign fp ~order:(Array.to_list order) in
      let seen = Hashtbl.create 64 in
      let sound = ref true in
      for net = 0 to n - 1 do
        List.iter
          (fun (_, slots) ->
            (* adjacency of the granted group *)
            let xs = List.map (fun (s : Floorplan.slot) -> s.Floorplan.slot_x) slots in
            (match xs with
            | first :: _ ->
              List.iteri (fun i x -> if x <> first + i then sound := false) xs
            | [] -> sound := false);
            List.iter
              (fun (s : Floorplan.slot) ->
                if Hashtbl.mem seen s.Floorplan.slot_id then sound := false;
                Hashtbl.replace seen s.Floorplan.slot_id ();
                (* occupancy table agrees *)
                if Feedthrough.slot_user assignment s.Floorplan.slot_id = None then sound := false;
                (* flag compatibility *)
                let net' = Option.get (Feedthrough.slot_user assignment s.Floorplan.slot_id) in
                let pitch = (Netlist.net netlist net').Netlist.pitch in
                let flag = s.Floorplan.width_flag in
                let paired = (Netlist.net netlist net').Netlist.diff_partner <> None in
                let demand_width = if paired then 2 * pitch else pitch in
                if flag <> 0 && flag <> demand_width then sound := false)
              slots)
          (Feedthrough.slots_of_net assignment net)
      done;
      !sound)

let test_insertion_stuck () =
  (* Failure injection: zero insertion rounds with unmet demands must
     raise Stuck rather than return an incomplete assignment. *)
  let fp, netlist, _ = three_row_fp ~slots:[] () in
  check_bool "stuck raised" true
    (match Feed_insert.assign_with_insertion ~max_rounds:0 fp ~order:(Util.id_order netlist) with
    | exception Feed_insert.Stuck _ -> true
    | _ -> false)

let suite =
  [ Alcotest.test_case "floorplan geometry" `Quick test_floorplan_geometry;
    Alcotest.test_case "insertion stuck failure" `Quick test_insertion_stuck;
    QCheck_alcotest.to_alcotest prop_assignment_sound;
    Alcotest.test_case "floorplan ports" `Quick test_floorplan_ports;
    Alcotest.test_case "floorplan validation" `Quick test_floorplan_rejects;
    Alcotest.test_case "net bounding box" `Quick test_net_bbox;
    Alcotest.test_case "chip metrics" `Quick test_chip_metrics;
    Alcotest.test_case "feedthrough demands" `Quick test_demands;
    Alcotest.test_case "demand rows" `Quick test_demand_rows;
    Alcotest.test_case "assignment success/occupancy" `Quick test_assign_success_and_occupancy;
    Alcotest.test_case "assignment failure" `Quick test_assign_failure;
    Alcotest.test_case "center-out search" `Quick test_assign_center_preference;
    Alcotest.test_case "width-flag compatibility" `Quick test_width_flag_compatibility;
    Alcotest.test_case "insertion no-op" `Quick test_insert_noop;
    Alcotest.test_case "insertion widens and succeeds" `Quick test_insert_widens_and_succeeds;
    Alcotest.test_case "insertion flags multi-pitch groups" `Quick test_insert_flags_multipitch ]

let () = Alcotest.run "layout" [ ("layout", suite) ]
