(* Randomized end-to-end properties: generate small circuits from
   random seeds, run the whole flow, and audit every invariant the
   pipeline promises.  This is the failure-injection net under the
   deterministic suite. *)

let params_of seed ~n_comb ~n_ff ~n_levels ~n_diff_pairs =
  { Circuit_gen.default_params with
    Circuit_gen.seed;
    n_comb;
    n_ff;
    n_inputs = 4;
    n_outputs = 4;
    n_levels;
    n_diff_pairs;
    n_constraints = 3 }

let gen_params =
  QCheck.Gen.(
    let* seed = int_range 1 100000 in
    let* n_comb = int_range 15 60 in
    let* n_ff = int_range 3 10 in
    let* n_levels = int_range 2 5 in
    let* n_diff_pairs = int_range 0 3 in
    return (params_of (Int64.of_int seed) ~n_comb ~n_ff ~n_levels ~n_diff_pairs))

let arb_params =
  QCheck.make
    ~print:(fun p -> Printf.sprintf "seed=%Ld comb=%d ff=%d" p.Circuit_gen.seed p.Circuit_gen.n_comb p.Circuit_gen.n_ff)
    gen_params

let flow_input p =
  let netlist, constraints = Circuit_gen.generate p in
  let placed = Placement.place ~netlist ~n_rows:3 Placement.P1 in
  Placement.to_flow_input ~netlist ~dims:Dims.default ~constraints placed

let audit_outcome input (outcome : Flow.outcome) =
  let router = outcome.Flow.o_router in
  let fp = outcome.Flow.o_floorplan in
  let netlist = input.Flow.netlist in
  (* 0. the independent verifier signs off *)
  Verify.ok (Verify.routed router)
  (* 1. fully routed, every net a connected tree *)
  && Router.is_routed router
  && (let ok = ref true in
      for net = 0 to Netlist.n_nets netlist - 1 do
        let rg = Router.routing_graph router net in
        if not (Ugraph.connected_within rg.Routing_graph.graph rg.Routing_graph.terminals) then
          ok := false;
        if Bridges.non_bridge_ids rg.Routing_graph.graph <> [] then ok := false
      done;
      !ok)
  (* 2. incremental densities match a recount *)
  && Util.densities_equal (Router.density router)
       (Util.recount_density router fp)
       ~n_channels:(Floorplan.n_channels fp) ~width:(Floorplan.width fp)
  (* 3. every channel's detailed routing audits clean *)
  && Array.for_all Fun.id
       (Array.mapi
          (fun channel (r : Channel_router.result) ->
            let segs =
              List.map
                (fun (cn : Router.chan_net) ->
                  { Channel_router.seg_net = cn.Router.cn_net;
                    seg_lo = cn.Router.cn_lo;
                    seg_hi = cn.Router.cn_hi;
                    seg_pins =
                      List.map
                        (fun (p : Router.chan_pin) ->
                          { Channel_router.pin_x = p.Router.cp_x;
                            pin_from_top = p.Router.cp_from_top })
                        cn.Router.cn_pins;
                    seg_width = cn.Router.cn_pitch })
                (Router.channel_nets router ~channel)
            in
            match Channel_router.check segs r with Ok _ -> true | Error _ -> false)
          outcome.Flow.o_channels)
  (* 4. sane measurement *)
  && outcome.Flow.o_measurement.Flow.m_area_mm2 > 0.0
  && outcome.Flow.o_measurement.Flow.m_length_mm > 0.0

let prop_random_flow =
  QCheck.Test.make ~name:"e2e: random circuits route with all invariants" ~count:10 arb_params
    (fun p ->
      let input = flow_input p in
      audit_outcome input (Flow.run input))

let prop_random_flow_unconstrained =
  QCheck.Test.make ~name:"e2e: random circuits route area-only too" ~count:6 arb_params
    (fun p ->
      let input = flow_input p in
      audit_outcome input (Flow.run ~timing_driven:false input))

let prop_random_sequential =
  QCheck.Test.make ~name:"e2e: random circuits route sequentially" ~count:6 arb_params
    (fun p ->
      let input = flow_input p in
      audit_outcome input (Flow.run ~algorithm:Flow.Sequential_net_at_a_time input))

let prop_random_io_roundtrip =
  QCheck.Test.make ~name:"e2e: random designs survive the bundle format" ~count:6 arb_params
    (fun p ->
      let input = flow_input p in
      let fp = Flow.floorplan_of_input input in
      let text = Design_io.to_string ~floorplan:fp ~constraints:input.Flow.constraints input.Flow.netlist in
      let bundle = Design_io.of_string text in
      let input' = Design_io.to_flow_input bundle in
      let a = (Flow.run input).Flow.o_measurement in
      let b = (Flow.run input').Flow.o_measurement in
      a.Flow.m_delay_ps = b.Flow.m_delay_ps && a.Flow.m_area_mm2 = b.Flow.m_area_mm2)

let suite =
  [ QCheck_alcotest.to_alcotest prop_random_flow;
    QCheck_alcotest.to_alcotest prop_random_flow_unconstrained;
    QCheck_alcotest.to_alcotest prop_random_sequential;
    QCheck_alcotest.to_alcotest prop_random_io_roundtrip ]

let () = Alcotest.run "random-e2e" [ ("random-e2e", suite) ]
