(* Solution-quality telemetry: .bgrq framing round trip and salvage
   discipline, the summarizer and its quality.json round trip, the A/B
   diff verdicts, an end-to-end recorded route whose final sample
   matches the signoff margin, and the headline determinism property —
   recording quality telemetry leaves the deletion hash byte-identical,
   sequentially and on four domains. *)

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)

(* dune runtest runs in test/; dune exec from the repo root. *)
let corpus_dir = if Sys.file_exists "corpus" then "corpus" else "test/corpus"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Bitwise float equality that treats nan = nan (telemetry carries nan
   for "no timing data"). *)
let same_float a b = Int64.bits_of_float a = Int64.bits_of_float b

let sample ?(kind = Router.Q_cadence) ?(phase = "initial_route") ?(pass = 0) ?(deletions = 0)
    ?(worst = -12.5) ?(worst_c = 2) ?(total_neg = -40.25) ?(violations = 3)
    ?(ep = (-33.5, 210.0)) ?(density = [| 4; 7; 2 |]) ?(criteria = [ ("delay", 5); ("density", 2) ])
    ?(margins = [||]) () =
  { Router.qs_kind = kind;
    qs_phase = phase;
    qs_pass = pass;
    qs_deletions = deletions;
    qs_worst_margin_ps = worst;
    qs_worst_constraint = worst_c;
    qs_total_negative_ps = total_neg;
    qs_violations = violations;
    qs_ep_slack_min_ps = fst ep;
    qs_ep_slack_max_ps = snd ep;
    qs_density = density;
    qs_criteria = criteria;
    qs_margins = margins }

let same_sample (a : Router.quality_sample) (b : Router.quality_sample) =
  a.Router.qs_kind = b.Router.qs_kind
  && a.qs_phase = b.qs_phase
  && a.qs_pass = b.qs_pass
  && a.qs_deletions = b.qs_deletions
  && same_float a.qs_worst_margin_ps b.qs_worst_margin_ps
  && a.qs_worst_constraint = b.qs_worst_constraint
  && same_float a.qs_total_negative_ps b.qs_total_negative_ps
  && a.qs_violations = b.qs_violations
  && same_float a.qs_ep_slack_min_ps b.qs_ep_slack_min_ps
  && same_float a.qs_ep_slack_max_ps b.qs_ep_slack_max_ps
  && a.qs_density = b.qs_density
  && a.qs_criteria = b.qs_criteria
  && Array.length a.qs_margins = Array.length b.qs_margins
  && Array.for_all2 same_float a.qs_margins b.qs_margins

let fixture_samples () =
  [ sample ~deletions:64 ();
    sample ~kind:Router.Q_pass ~phase:"recover_violations" ~pass:2 ~deletions:130
      ~criteria:[ ("delay_count", 1) ] ();
    (* nan/infinity fields and a no-constraint shape must survive framing *)
    sample ~kind:Router.Q_phase ~phase:"improve_area" ~deletions:200 ~worst:infinity
      ~worst_c:(-1) ~total_neg:0.0 ~violations:0 ~ep:(nan, nan) ~criteria:[]
      ~margins:[| 10.0; nan; -3.5 |] () ]

(* ---- framing round trip -------------------------------------------- *)

let test_qlog_roundtrip () =
  let path = Filename.temp_file "bgr_qlog" ".bgrq" in
  let w = Qlog.create ~path in
  let samples = fixture_samples () in
  List.iter (fun s -> ignore (Qlog.append w s)) samples;
  check_int "writer counts appends" (List.length samples) (Qlog.appended w);
  Qlog.close w;
  Qlog.close w;
  (* idempotent *)
  (match Qlog.read ~path with
  | Error e -> Alcotest.failf "read: %s" (Bgr_error.to_string e)
  | Ok r ->
    check_bool "no torn tail" false r.Qlog.torn;
    check_bool "no warnings" true (r.Qlog.warnings = []);
    check_int "all records back" (List.length samples) (List.length r.Qlog.records);
    List.iter2
      (fun s (got : Qlog.record) ->
        check_bool "sample round-trips bit-exactly" true (same_sample s got.Qlog.q_sample);
        check_bool "timestamp is non-negative" true (got.Qlog.q_t_s >= 0.0))
      samples r.Qlog.records);
  Sys.remove path

let test_qlog_torn_tail () =
  let path = Filename.temp_file "bgr_qlog" ".bgrq" in
  let w = Qlog.create ~path in
  List.iter (fun s -> ignore (Qlog.append w s)) (fixture_samples ());
  Qlog.close w;
  let whole = read_file path in
  (* chop bytes off the tail: every cut inside the final frame must
     salvage the first two records with a warning, never error *)
  List.iter
    (fun cut ->
      write_file path (String.sub whole 0 (String.length whole - cut));
      match Qlog.read ~path with
      | Error e -> Alcotest.failf "cut %d: %s" cut (Bgr_error.to_string e)
      | Ok r ->
        check_bool (Printf.sprintf "cut %d: torn" cut) true r.Qlog.torn;
        check_int (Printf.sprintf "cut %d: first records salvaged" cut) 2
          (List.length r.Qlog.records);
        check_bool (Printf.sprintf "cut %d: warning recorded" cut) true (r.Qlog.warnings <> []))
    [ 1; 4; 40 ];
  Sys.remove path

let test_qlog_corrupt_middle () =
  let path = Filename.temp_file "bgr_qlog" ".bgrq" in
  let w = Qlog.create ~path in
  List.iter (fun s -> ignore (Qlog.append w s)) (fixture_samples ());
  Qlog.close w;
  let whole = Bytes.of_string (read_file path) in
  (* flip a payload byte of the FIRST record: damage before the final
     frame is corruption, not a torn tail *)
  let off = String.length Qlog.magic + 8 in
  Bytes.set whole off (Char.chr (Char.code (Bytes.get whole off) lxor 0xFF));
  write_file path (Bytes.to_string whole);
  (match Qlog.read ~path with
  | Ok _ -> Alcotest.fail "corrupt middle record must not be salvaged"
  | Error e ->
    check_bool "structured parse error" true (e.Bgr_error.code = Bgr_error.Parse));
  (* a non-log file is rejected up front *)
  write_file path "not a log at all";
  (match Qlog.read ~path with
  | Ok _ -> Alcotest.fail "bad magic must be rejected"
  | Error e -> check_bool "bad magic is a parse error" true (e.Bgr_error.code = Bgr_error.Parse));
  Sys.remove path

(* ---- summarize + json ---------------------------------------------- *)

let summary_fixture () =
  let r t s = { Qlog.q_t_s = t; q_sample = s } in
  Quality.summarize
    [ r 0.1 (sample ~deletions:64 ());
      r 0.2 (sample ~deletions:128 ~criteria:[ ("density", 4) ] ());
      r 0.3
        (sample ~kind:Router.Q_phase ~phase:"initial_route" ~deletions:150
           ~criteria:[ ("length", 1) ] ());
      r 0.5
        (sample ~kind:Router.Q_pass ~phase:"recover_violations" ~pass:1 ~deletions:160
           ~criteria:[ ("delay_count", 2) ] ());
      r 0.9
        (sample ~kind:Router.Q_phase ~phase:"recover_violations" ~pass:0 ~deletions:161
           ~worst:(-5.0) ~violations:1 ~density:[| 9; 3; 1 |] ~criteria:[]
           ~margins:[| -5.0; 40.0 |] ()) ]

let test_summarize () =
  let s = summary_fixture () in
  check_int "samples" 5 s.Quality.sm_samples;
  (match s.Quality.sm_phases with
  | [ p1; p2 ] ->
    check_string "phase 1" "initial_route" p1.Quality.ph_phase;
    check_int "phase 1 deletions" 150 p1.Quality.ph_deletions;
    check_bool "phase 1 criteria merged" true
      (p1.Quality.ph_criteria = [ ("delay", 5); ("density", 6); ("length", 1) ]);
    check_string "phase 2" "recover_violations" p2.Quality.ph_phase;
    check_int "phase 2 passes" 1 p2.Quality.ph_passes;
    check_bool "phase 2 wall from deltas" true (Float.abs (p2.Quality.ph_wall_s -. 0.6) < 1e-9);
    check_int "phase 2 peak density" 9 p2.Quality.ph_peak_density;
    check_bool "phase 2 criteria" true (p2.Quality.ph_criteria = [ ("delay_count", 2) ])
  | ps -> Alcotest.failf "expected 2 phase stats, got %d" (List.length ps));
  check_bool "final worst margin" true (same_float s.Quality.sm_final_worst_margin_ps (-5.0));
  check_int "final violations" 1 s.Quality.sm_final_violations;
  check_int "final peak density" 9 s.Quality.sm_final_peak_density;
  check_int "final deletions" 161 s.Quality.sm_final_deletions;
  check_bool "margins kept from last phase record" true
    (s.Quality.sm_margins = [| -5.0; 40.0 |]);
  check_bool "run-total criteria" true
    (s.Quality.sm_criteria
    = [ ("delay", 5); ("delay_count", 2); ("density", 6); ("length", 1) ]);
  (* empty stream: all-zero summary, and the renderers still produce
     well-formed documents *)
  let e = Quality.summarize [] in
  check_int "empty: no samples" 0 e.Quality.sm_samples;
  check_bool "empty: convergence svg renders" true
    (String.length (Qsvg.convergence []) > 0);
  check_bool "empty: waterfall svg renders" true
    (String.length (Qsvg.slack_waterfall e) > 0)

let test_json_roundtrip () =
  let s = summary_fixture () in
  let text = Quality.to_json s in
  match Quality.of_json_string text with
  | Error e -> Alcotest.failf "parse back: %s" (Bgr_error.to_string e)
  | Ok got ->
    check_string "schema" Quality.schema got.Quality.sm_schema;
    check_int "samples" s.Quality.sm_samples got.Quality.sm_samples;
    check_bool "worst margin" true
      (same_float s.Quality.sm_final_worst_margin_ps got.Quality.sm_final_worst_margin_ps);
    check_int "violations" s.Quality.sm_final_violations got.Quality.sm_final_violations;
    check_int "peak density" s.Quality.sm_final_peak_density got.Quality.sm_final_peak_density;
    check_bool "criteria" true (s.Quality.sm_criteria = got.Quality.sm_criteria);
    check_int "phases" (List.length s.Quality.sm_phases) (List.length got.Quality.sm_phases);
    check_bool "phase fields" true
      (List.for_all2
         (fun (a : Quality.phase_stat) (b : Quality.phase_stat) ->
           a.Quality.ph_phase = b.Quality.ph_phase
           && a.Quality.ph_passes = b.Quality.ph_passes
           && a.Quality.ph_deletions = b.Quality.ph_deletions
           && a.Quality.ph_criteria = b.Quality.ph_criteria)
         s.Quality.sm_phases got.Quality.sm_phases);
    check_bool "margins survive (nan-aware)" true
      (Array.for_all2 same_float s.Quality.sm_margins got.Quality.sm_margins);
    (* non-finite floats rendered as null must read back as nan *)
    let inf_s =
      Quality.summarize
        [ { Qlog.q_t_s = 0.0;
            q_sample =
              sample ~kind:Router.Q_phase ~worst:infinity ~ep:(nan, nan) ~margins:[| nan |] ()
          } ]
    in
    (match Quality.of_json_string (Quality.to_json inf_s) with
    | Error e -> Alcotest.failf "infinity roundtrip: %s" (Bgr_error.to_string e)
    | Ok got ->
      check_bool "infinity reads back as nan (null)" true
        (Float.is_nan got.Quality.sm_final_worst_margin_ps));
    (* mandatory keys: dropping "final" must fail *)
    (match Quality.of_json_string "{\"schema\":\"bgr-quality-1\",\"wall_s\":1,\"phases\":[]}" with
    | Ok _ -> Alcotest.fail "missing final section must be rejected"
    | Error e -> check_bool "missing key is a parse error" true (e.Bgr_error.code = Bgr_error.Parse))

(* ---- the A/B diff --------------------------------------------------- *)

let test_diff_verdicts () =
  let s = summary_fixture () in
  let self = Quality.diff s s in
  check_bool "self diff passes" false (Quality.regressed self);
  (* worse margin and an extra violation: both must trip *)
  let worse =
    { s with
      Quality.sm_final_worst_margin_ps = s.Quality.sm_final_worst_margin_ps -. 100.0;
      sm_final_violations = s.Quality.sm_final_violations + 1 }
  in
  let checks = Quality.diff s worse in
  check_bool "perturbed run regresses" true (Quality.regressed checks);
  let verdict_of metric =
    match List.find_opt (fun (c : Quality.check) -> c.Quality.ck_metric = metric) checks with
    | Some c -> c.Quality.ck_verdict
    | None -> Alcotest.failf "no %s check" metric
  in
  check_bool "margin check regressed" true (verdict_of "worst margin (ps)" = Quality.Regressed);
  check_bool "violations check regressed" true (verdict_of "violations" = Quality.Regressed);
  check_bool "density check unchanged" true
    (verdict_of "peak density (tracks)" = Quality.Pass);
  (* an improvement is not a regression *)
  let better =
    { s with Quality.sm_final_worst_margin_ps = s.Quality.sm_final_worst_margin_ps +. 50.0 }
  in
  check_bool "improvement passes" false (Quality.regressed (Quality.diff s better));
  (* wall-clock: only beyond factor + floor *)
  let slow = { s with Quality.sm_wall_s = (s.Quality.sm_wall_s *. 1.4) +. 0.5 } in
  check_bool "mild slowdown within floor passes" false
    (Quality.regressed (Quality.diff s slow));
  let crawl = { s with Quality.sm_wall_s = (s.Quality.sm_wall_s *. 10.0) +. 100.0 } in
  check_bool "big slowdown regresses" true (Quality.regressed (Quality.diff s crawl));
  (* a run without timing data never regresses on margin *)
  let no_sta = { s with Quality.sm_final_worst_margin_ps = nan } in
  check_bool "nan margin is skipped, not regressed" false
    (Quality.regressed (Quality.diff s { no_sta with Quality.sm_final_violations = s.Quality.sm_final_violations }))

(* ---- end-to-end: a recorded route ----------------------------------- *)

let load_corpus name =
  let path = Filename.concat corpus_dir name in
  match
    Result.bind (Design_io.read_result path) Design_check.validate
    |> Result.map_error (Bgr_error.with_file path)
  with
  | Ok bundle -> Design_io.to_flow_input bundle
  | Error e -> Alcotest.failf "%s: %s" name (Bgr_error.to_string e)

let test_recorded_route () =
  let input = load_corpus "valid_mini.bgr" in
  let path = Filename.temp_file "bgr_qlog_e2e" ".bgrq" in
  let w = Qlog.create ~path in
  let outcome = Flow.run ~on_quality:(fun s -> ignore (Qlog.append w s)) input in
  Qlog.close w;
  let records =
    match Qlog.read ~path with
    | Ok r ->
      check_bool "e2e log is clean" true ((not r.Qlog.torn) && r.Qlog.warnings = []);
      r.Qlog.records
    | Error e -> Alcotest.failf "e2e read: %s" (Bgr_error.to_string e)
  in
  check_bool "samples were recorded" true (records <> []);
  let s = Quality.summarize records in
  let last = List.nth records (List.length records - 1) in
  check_string "last sample is the post-metrology probe" "metrology"
    last.Qlog.q_sample.Router.qs_phase;
  (* the acceptance criterion: the log's final worst margin is the
     signoff margin of the finished route *)
  check_bool "final worst margin equals the measured margin" true
    (same_float s.Quality.sm_final_worst_margin_ps outcome.Flow.o_measurement.Flow.m_margin_ps);
  check_int "final violations match the measurement"
    outcome.Flow.o_measurement.Flow.m_violations s.Quality.sm_final_violations;
  check_int "final deletions match the measurement"
    outcome.Flow.o_measurement.Flow.m_deletions s.Quality.sm_final_deletions;
  check_bool "phase stats cover the routing phases" true
    (List.exists
       (fun (p : Quality.phase_stat) -> p.Quality.ph_phase = "initial_route")
       s.Quality.sm_phases);
  check_bool "criterion attribution is non-empty" true
    (List.fold_left (fun acc (_, c) -> acc + c) 0 s.Quality.sm_criteria > 0);
  (* the explorers render well-formed-looking documents from real data *)
  let svg = Qsvg.convergence records in
  check_bool "convergence svg has the xml namespace" true
    (String.length svg > 64 && String.sub svg 0 4 = "<svg");
  check_bool "heatmap renders" true (String.length (Qsvg.density_heatmap records) > 0);
  check_bool "waterfall renders" true (String.length (Qsvg.slack_waterfall s) > 0);
  (* self-diff of a real run passes *)
  check_bool "run diffed against itself passes" false
    (Quality.regressed (Quality.diff s s));
  Sys.remove path

(* ---- determinism: recording never changes the routing --------------- *)

(* Exact fingerprint: floats as hex so the comparison is bitwise, plus
   the order-sensitive deletion hash (same idiom as test_obs). *)
let fingerprint (outcome : Flow.outcome) =
  let m = outcome.Flow.o_measurement in
  Printf.sprintf "delay=%h area=%h len=%h viol=%d del=%d tracks=[%s] hash=%d"
    m.Flow.m_delay_ps m.Flow.m_area_mm2 m.Flow.m_length_mm m.Flow.m_violations
    m.Flow.m_deletions
    (String.concat ";" (Array.to_list (Array.map string_of_int m.Flow.m_tracks)))
    (Router.deletion_hash outcome.Flow.o_router)

let test_bit_identity () =
  List.iter
    (fun (name, domains) ->
      let input = load_corpus name in
      let options = { Router.default_options with Router.domains } in
      let plain = fingerprint (Flow.run ~options input) in
      let path = Filename.temp_file "bgr_qlog_id" ".bgrq" in
      let w = Qlog.create ~path in
      let n = ref 0 in
      let recorded =
        fingerprint
          (Flow.run ~options
             ~on_quality:(fun s ->
               incr n;
               ignore (Qlog.append w s))
             input)
      in
      Qlog.close w;
      check_bool (name ^ ": the recorded run actually sampled") true (!n > 0);
      Sys.remove path;
      check_string
        (Printf.sprintf "%s, %d domain(s): recording on = recording off" name domains)
        plain recorded)
    [ ("valid_mini.bgr", 1); ("valid_mini.bgr", 4); ("valid_gen.bgr", 1); ("valid_gen.bgr", 4) ]

(* ---- crash forensics ------------------------------------------------ *)

let pm_counter = ref 0

let pm_dir () =
  incr pm_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bgrpm%d-%d" (Unix.getpid ()) !pm_counter)
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

(* Synthesize a flight dump by actually recording and dumping — the
   same code path a dying process takes. *)
let bake_flight dir ?(name = Flight.default_filename) ~reason events =
  Flight.reset_for_tests ();
  Flight.set_clock_for_tests (Some (fun () -> 1.0));
  List.iter (fun (k, a, b, c, d) -> Flight.record k ~a ~b ~c ~d) events;
  let ok = Flight.dump_file ~reason (Filename.concat dir name) in
  Flight.set_clock_for_tests None;
  Flight.reset_for_tests ();
  check_bool "fixture dump written" true ok

let analyze_ok dir =
  match Postmortem.analyze ~dir with
  | Ok r -> r
  | Error e -> Alcotest.failf "analyze: %s" (Bgr_error.to_string e)

let test_postmortem_inputs () =
  (match Postmortem.analyze ~dir:"/nonexistent/bgr-postmortem" with
  | Error e -> check_bool "missing dir is Validate" true (e.Bgr_error.code = Bgr_error.Validate)
  | Ok _ -> Alcotest.fail "a missing directory must be an error");
  let dir = pm_dir () in
  let r = analyze_ok dir in
  check_string "empty dir is inconclusive" "inconclusive" r.Postmortem.p_verdict;
  check_bool "absences are findings" true (r.Postmortem.p_findings <> []);
  check_bool "timeline renders a placeholder" true
    (let svg = Postmortem.timeline_svg r in
     String.length svg > 0 && String.sub svg 0 4 = "<svg")

let test_postmortem_crash_verdict () =
  let dir = pm_dir () in
  bake_flight dir ~reason:"error:fault"
    [ (Flight.k_phase, Flight.phase_code "improve_delay", 0, 0, 30);
      (Flight.k_deletion, Flight.phase_code "improve_delay",
       Flight.criterion_code "delay", 7, 41);
      (Flight.k_error, 6, 0, 0, 0) ];
  let r = analyze_ok dir in
  check_string "crash names the last commit" "crash-after-commit-42" r.Postmortem.p_verdict;
  check_string "phase recovered from the flight record" "improve_delay"
    r.Postmortem.p_last_phase;
  check_int "deletions from the packed wide argument" 42 r.Postmortem.p_deletions

let test_postmortem_hang_prefers_latest_attempt () =
  let dir = pm_dir () in
  write_file (Filename.concat dir "JOB")
    "bgr-job 1\nid forensic\ntiming_driven true\ndeadline_ms 0\nattempts 2\nkills 1\n\
     last_kill hang\nkill_history hang\n";
  (* an older daemon-side dump AND the killed attempt's dump: the
     attempt dump must win *)
  bake_flight dir ~reason:"stale" [ (Flight.k_phase, 0, 0, 0, 0) ];
  bake_flight dir ~name:"flight-a1.bgrf" ~reason:"sigquit"
    [ (Flight.k_phase, Flight.phase_code "improve_area", 0, 0, 100) ];
  let r = analyze_ok dir in
  check_string "verdict blames the hang" "hang-in-improve_area" r.Postmortem.p_verdict;
  check_string "the attempt dump is correlated" "flight-a1.bgrf" r.Postmortem.p_flight_file;
  (match r.Postmortem.p_job with
  | Some j ->
    check_int "kills parsed" 1 j.Postmortem.j_kills;
    check_string "history parsed" "hang" (String.concat "," j.Postmortem.j_kill_history)
  | None -> Alcotest.fail "JOB manifest not parsed");
  (* the bundle is machine-checkable *)
  (match Qjson.parse (Qjson.to_string (Postmortem.to_json r)) with
  | Ok j ->
    check_bool "json carries the verdict" true
      (Option.bind (Qjson.member "verdict" j) Qjson.to_str = Some "hang-in-improve_area")
  | Error m -> Alcotest.failf "postmortem.json: %s" m);
  let svg = Postmortem.timeline_svg ~window_s:5.0 r in
  check_bool "timeline is an svg" true (String.sub svg 0 4 = "<svg");
  check_bool "timeline names the verdict" true
    (let sub = "hang-in-improve_area" in
     let sl = String.length sub and tl = String.length svg in
     let rec scan i = i + sl <= tl && (String.sub svg i sl = sub || scan (i + 1)) in
     scan 0)

let test_postmortem_deadline_and_torn_journal () =
  (* a k_stop deadline event outranks a torn journal *)
  let dir = pm_dir () in
  bake_flight dir ~reason:"stop:deadline during recover_violations"
    [ (Flight.k_stop, Flight.phase_code "recover_violations", 1, 0, 0) ];
  check_string "deadline stop classified" "deadline-stop-in-recover_violations"
    (analyze_ok dir).Postmortem.p_verdict;
  (* a torn journal alone is its own verdict *)
  let dir = pm_dir () in
  let jpath = Filename.concat dir "journal.bgrj" in
  let w = Journal.create ~path:jpath in
  Journal.append w
    { Journal.r_phase = "improve_delay"; r_area_mode = false; r_net = 1; r_edge = 2;
      r_deletions_before = 8; r_hash_before = 99 };
  Journal.close w;
  let whole = read_file jpath in
  write_file jpath (String.sub whole 0 (String.length whole - 3));
  let r = analyze_ok dir in
  check_string "torn journal classified" "torn-journal" r.Postmortem.p_verdict;
  check_bool "salvage noted in findings" true (r.Postmortem.p_findings <> [])

let test_postmortem_clean_run () =
  let dir = pm_dir () in
  let w = Qlog.create ~path:(Filename.concat dir Qlog.default_filename) in
  ignore (Qlog.append w (sample ~deletions:64 ()));
  ignore (Qlog.append w (sample ~kind:Router.Q_phase ~phase:"metrology" ~deletions:576 ()));
  Qlog.close w;
  let r = analyze_ok dir in
  check_string "metrology tail reads as clean" "clean" r.Postmortem.p_verdict;
  check_int "deletions from the quality tail" 576 r.Postmortem.p_deletions

let () =
  Alcotest.run "analyze"
    [ ( "qlog",
        [ Alcotest.test_case "framing round trip" `Quick test_qlog_roundtrip;
          Alcotest.test_case "torn tail salvage" `Quick test_qlog_torn_tail;
          Alcotest.test_case "mid-file corruption rejected" `Quick test_qlog_corrupt_middle ] );
      ( "quality",
        [ Alcotest.test_case "summarize phases and criteria" `Quick test_summarize;
          Alcotest.test_case "quality.json round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "diff verdicts" `Quick test_diff_verdicts ] );
      ( "postmortem",
        [ Alcotest.test_case "inputs: missing and empty dirs" `Quick test_postmortem_inputs;
          Alcotest.test_case "crash names the last commit" `Quick
            test_postmortem_crash_verdict;
          Alcotest.test_case "hang verdict prefers the attempt dump" `Quick
            test_postmortem_hang_prefers_latest_attempt;
          Alcotest.test_case "deadline stop and torn journal" `Quick
            test_postmortem_deadline_and_torn_journal;
          Alcotest.test_case "clean run stays clean" `Quick test_postmortem_clean_run ] );
      ( "end-to-end",
        [ Alcotest.test_case "recorded route matches signoff" `Slow test_recorded_route ] );
      ( "determinism",
        [ Alcotest.test_case "deletion hash identical with recording on" `Slow
            test_bit_identity ] ) ]
