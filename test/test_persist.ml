(* Crash-safe persistence: the journal binary format (QCheck round
   trips with torn-tail truncation and CRC detection), snapshot
   atomicity, kill/resume bit-identity across fault sites and domain
   counts, and the state auditor detecting — and where possible
   repairing — deliberately corrupted routing states. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- scratch run directories ----------------------------------------- *)

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bgr_persist_%d_%d" (Unix.getpid ()) !dir_counter)
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let plan s =
  match Fault.parse_plan s with
  | Ok p -> p
  | Error m -> Alcotest.failf "parse_plan %S: %s" s m

(* --- the example designs --------------------------------------------- *)

type design = {
  d_name : string;
  d_input : Flow.input;
  d_text : string;
  d_hash : int Lazy.t;  (** deletion hash of an uninterrupted run *)
}

let design_of_input d_name (d_input : Flow.input) =
  let fp = Flow.floorplan_of_input d_input in
  let d_text =
    Design_io.to_string ~floorplan:fp ~constraints:d_input.Flow.constraints
      d_input.Flow.netlist
  in
  let d_hash =
    lazy (Flow.run d_input).Flow.o_measurement.Flow.m_deletion_hash
  in
  { d_name; d_input; d_text; d_hash }

let gen_input seed =
  let params =
    { Circuit_gen.default_params with
      Circuit_gen.seed = Int64.of_int seed;
      n_comb = 36;
      n_ff = 6;
      n_inputs = 5;
      n_outputs = 5;
      n_levels = 3;
      n_diff_pairs = 2;
      n_constraints = 4 }
  in
  let netlist, constraints = Circuit_gen.generate params in
  let placed = Placement.place ~netlist ~n_rows:4 Placement.P1 in
  Placement.to_flow_input ~netlist ~dims:Dims.default ~constraints placed

let designs =
  lazy
    [ design_of_input "mini" (Suite.mini ()).Suite.input;
      design_of_input "gen11" (gen_input 11);
      design_of_input "gen23" (gen_input 23) ]

(* --- persistent route == plain flow ----------------------------------- *)

let test_route_matches_flow () =
  List.iter
    (fun d ->
      let dir = fresh_dir () in
      let outcome = Persist.route ~dir ~design_text:d.d_text d.d_input in
      check_int
        (d.d_name ^ ": hooked run deletes identically to the plain flow")
        (Lazy.force d.d_hash)
        outcome.Flow.o_measurement.Flow.m_deletion_hash;
      check_bool (d.d_name ^ ": snapshot written") true
        (Sys.file_exists (Filename.concat dir Persist.snapshot_file));
      check_bool (d.d_name ^ ": journal written") true
        (Sys.file_exists (Filename.concat dir Persist.journal_file)))
    (Lazy.force designs)

(* --- kill/resume bit-identity ----------------------------------------- *)

(* Route under a fault plan; if the injected fault killed the run,
   resume it and demand the uninterrupted deletion hash, a complete
   routing and a clean audit.  Plans that never fire (the design was
   too small to reach the site's count) degrade to a completed run,
   which we simply check directly. *)
let kill_and_resume ~plan_str ~domains d =
  let dir = fresh_dir () in
  let killed =
    match
      Fault.with_plan (plan plan_str) (fun () ->
          Persist.route ~dir ~design_text:d.d_text d.d_input)
    with
    | (_ : Flow.outcome) -> false
    | exception Bgr_error.Error e when e.Bgr_error.code = Bgr_error.Fault -> true
  in
  (match Persist.resume ~domains ~dir () with
  | Error e -> Alcotest.failf "%s [%s]: resume failed: %s" d.d_name plan_str (Bgr_error.to_string e)
  | Ok r ->
    let router = r.Persist.rr_outcome.Flow.o_router in
    check_int
      (Printf.sprintf "%s [%s, domains=%d]: resumed hash is bit-identical" d.d_name plan_str
         domains)
      (Lazy.force d.d_hash) (Router.deletion_hash router);
    check_bool (d.d_name ^ ": resumed state is fully routed") true (Router.is_routed router);
    check_bool
      (d.d_name ^ ": resumed state audits clean")
      true
      (Verify.audit_ok (Verify.audit ~measured_caps:true router)));
  killed

let test_kill_at_append () =
  List.iter
    (fun d ->
      let killed = kill_and_resume ~plan_str:"persist.append:n=10" ~domains:1 d in
      check_bool (d.d_name ^ ": the 10th append fault fired") true killed)
    (Lazy.force designs)

let test_kill_at_snapshot () =
  List.iter
    (fun d ->
      let killed = kill_and_resume ~plan_str:"persist.snapshot:n=1" ~domains:1 d in
      check_bool (d.d_name ^ ": the snapshot fault fired") true killed)
    (Lazy.force designs)

let test_kill_late_and_at_fsync () =
  let d = List.hd (Lazy.force designs) in
  ignore (kill_and_resume ~plan_str:"persist.append:n=45" ~domains:1 d : bool);
  ignore (kill_and_resume ~plan_str:"persist.fsync:n=1" ~domains:1 d : bool)

let test_resume_on_four_domains () =
  let d = List.hd (Lazy.force designs) in
  let killed = kill_and_resume ~plan_str:"persist.append:n=25" ~domains:4 d in
  check_bool "the kill fired before the 4-domain resume" true killed

(* A resume can itself be killed and resumed: the journal and snapshot
   keep accumulating across generations of the same run directory. *)
let test_double_kill () =
  let d = List.hd (Lazy.force designs) in
  let dir = fresh_dir () in
  (match
     Fault.with_plan
       (plan "persist.append:n=20")
       (fun () -> Persist.route ~dir ~design_text:d.d_text d.d_input)
   with
  | (_ : Flow.outcome) -> Alcotest.fail "first kill did not fire"
  | exception Bgr_error.Error e when e.Bgr_error.code = Bgr_error.Fault -> ());
  (match
     Fault.with_plan (plan "persist.append:n=20") (fun () -> Persist.resume ~domains:1 ~dir ())
   with
  | Ok _ -> Alcotest.fail "second kill did not fire"
  (* resume runs behind the protect boundary, so the injected fault
     surfaces as a structured Error, not an exception *)
  | Error e when e.Bgr_error.code = Bgr_error.Fault -> ()
  | Error e -> Alcotest.failf "resume failed structurally: %s" (Bgr_error.to_string e));
  match Persist.resume ~domains:1 ~dir () with
  | Error e -> Alcotest.failf "final resume failed: %s" (Bgr_error.to_string e)
  | Ok r ->
    check_int "twice-killed run still lands on the uninterrupted hash" (Lazy.force d.d_hash)
      r.Persist.rr_outcome.Flow.o_measurement.Flow.m_deletion_hash

(* --- torn tails and corruption on disk -------------------------------- *)

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_bytes path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let killed_dir d =
  let dir = fresh_dir () in
  (match
     Fault.with_plan
       (plan "persist.append:n=20")
       (fun () -> Persist.route ~dir ~design_text:d.d_text d.d_input)
   with
  | (_ : Flow.outcome) -> Alcotest.fail "kill did not fire"
  | exception Bgr_error.Error e when e.Bgr_error.code = Bgr_error.Fault -> ());
  dir

let test_torn_tail_resumes () =
  let d = List.hd (Lazy.force designs) in
  let dir = killed_dir d in
  let jpath = Filename.concat dir Persist.journal_file in
  let bytes = read_bytes jpath in
  (* Chop into the middle of the final record: the kill-during-append
     disk state. *)
  write_bytes jpath (String.sub bytes 0 (String.length bytes - 13));
  match Persist.resume ~domains:1 ~dir () with
  | Error e -> Alcotest.failf "torn tail should resume: %s" (Bgr_error.to_string e)
  | Ok r ->
    check_bool "the truncation left a warning" true
      (List.exists
         (fun w ->
           let has_sub sub =
             let n = String.length sub and m = String.length w in
             let rec go i = i + n <= m && (String.sub w i n = sub || go (i + 1)) in
             go 0
           in
           has_sub "truncated")
         r.Persist.rr_warnings);
    check_int "torn tail still lands on the uninterrupted hash" (Lazy.force d.d_hash)
      r.Persist.rr_outcome.Flow.o_measurement.Flow.m_deletion_hash

let flip_byte path off =
  let bytes = Bytes.of_string (read_bytes path) in
  Bytes.set bytes off (Char.chr (Char.code (Bytes.get bytes off) lxor 0x5A));
  write_bytes path (Bytes.to_string bytes)

let test_midfile_corruption_is_structural () =
  let d = List.hd (Lazy.force designs) in
  let dir = killed_dir d in
  let jpath = Filename.concat dir Persist.journal_file in
  (* Flip a payload byte of the FIRST record: corruption before the
     final record is a parse error, not a silent truncation. *)
  flip_byte jpath (Journal.header_bytes + 10);
  match Persist.resume ~domains:1 ~dir () with
  | Ok _ -> Alcotest.fail "mid-file corruption must not resume"
  | Error e -> check_bool "code is Parse" true (e.Bgr_error.code = Bgr_error.Parse)

let test_snapshot_corruption_is_structural () =
  let d = List.hd (Lazy.force designs) in
  let dir = fresh_dir () in
  ignore (Persist.route ~dir ~design_text:d.d_text d.d_input : Flow.outcome);
  let spath = Filename.concat dir Persist.snapshot_file in
  flip_byte spath (String.length (read_bytes spath) / 2);
  match Persist.resume ~domains:1 ~dir () with
  | Ok _ -> Alcotest.fail "a corrupt snapshot must not resume"
  | Error e -> check_bool "code is Parse" true (e.Bgr_error.code = Bgr_error.Parse)

(* --- snapshot -> load -> audit clean ----------------------------------- *)

let test_snapshot_load_audit_clean () =
  let d = List.hd (Lazy.force designs) in
  let dir = fresh_dir () in
  ignore (Persist.route ~dir ~design_text:d.d_text d.d_input : Flow.outcome);
  match Snapshot.load ~path:(Filename.concat dir Persist.snapshot_file) with
  | Error e -> Alcotest.failf "snapshot load: %s" (Bgr_error.to_string e)
  | Ok s ->
    let _prep, router = Flow.prepare d.d_input in
    Router.restore router (Snapshot.to_checkpoint s);
    let a = Verify.audit router in
    check_bool
      (Format.asprintf "restored snapshot audits clean (%a)" Verify.pp_audit a)
      true (Verify.audit_ok a);
    check_int "restored hash equals the recorded one" s.Snapshot.s_del_hash
      (Router.deletion_hash router)

(* --- QCheck: journal format ------------------------------------------- *)

let phases =
  [ "initial_route";
    "recover_violations";
    "improve_delay";
    "improve_area";
    "final_recovery";
    "final_delay" ]

let gen_record =
  QCheck.Gen.(
    map
      (fun (phase, area, net, edge, dels, hash) ->
        { Journal.r_phase = phase;
          r_area_mode = area;
          r_net = net;
          r_edge = edge;
          r_deletions_before = dels;
          r_hash_before = hash })
      (tup6 (oneofl phases) bool (int_bound 0x3FFFFFFF) (int_bound 0x3FFFFFFF)
         (int_bound max_int) (int_bound max_int)))

let print_record (r : Journal.record) =
  Printf.sprintf "{%s %b net=%d edge=%d dels=%d hash=%d}" r.Journal.r_phase r.r_area_mode
    r.r_net r.r_edge r.r_deletions_before r.r_hash_before

let arb_records =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map print_record l))
    QCheck.Gen.(list_size (int_range 1 20) gen_record)

let journal_bytes records =
  Journal.magic ^ String.concat "" (List.map Journal.encode_frame records)

let prop_roundtrip =
  QCheck.Test.make ~name:"journal records round-trip" ~count:100 arb_records (fun records ->
      match Journal.read_string (journal_bytes records) with
      | Error e -> QCheck.Test.fail_reportf "read: %s" (Bgr_error.to_string e)
      | Ok r ->
        (not r.Journal.torn)
        && r.Journal.warnings = []
        && List.map fst r.Journal.records = records)

let prop_torn_tail =
  let arb =
    QCheck.make
      ~print:(fun (l, cut) -> Printf.sprintf "%d records, cut=%d" (List.length l) cut)
      QCheck.Gen.(
        pair (list_size (int_range 1 12) gen_record) (int_bound 10000))
  in
  QCheck.Test.make ~name:"any tail truncation yields a clean prefix" ~count:200 arb
    (fun (records, cut) ->
      let bytes = journal_bytes records in
      let cut = Journal.header_bytes + (cut mod (String.length bytes - Journal.header_bytes + 1)) in
      match Journal.read_string (String.sub bytes 0 cut) with
      | Error e -> QCheck.Test.fail_reportf "truncation must not be fatal: %s" (Bgr_error.to_string e)
      | Ok r ->
        let got = List.map fst r.Journal.records in
        let k = List.length got in
        k <= List.length records
        && got = List.filteri (fun i _ -> i < k) records
        && (r.Journal.torn = (cut <> Journal.header_bytes + (34 * k)))
        && (r.Journal.torn || r.Journal.warnings = []))

let prop_midfile_flip_detected =
  let arb =
    QCheck.make
      ~print:(fun (l, off) -> Printf.sprintf "%d records, flip@%d" (List.length l) off)
      QCheck.Gen.(pair (list_size (int_range 2 8) gen_record) (int_bound Journal.payload_len))
  in
  QCheck.Test.make ~name:"payload corruption before the final record is an error" ~count:100 arb
    (fun (records, off) ->
      let off = Journal.header_bytes + 4 + (off mod Journal.payload_len) in
      let b = Bytes.of_string (journal_bytes records) in
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x01));
      match Journal.read_string (Bytes.to_string b) with
      | Error e -> e.Bgr_error.code = Bgr_error.Parse
      | Ok _ -> false)

(* --- QCheck: snapshot format ------------------------------------------ *)

let gen_snapshot =
  QCheck.Gen.(
    map
      (fun (phases, dels, hash, live, dens) ->
        { Snapshot.s_phases = phases;
          s_deletions = dels;
          s_del_hash = hash;
          s_live = Array.of_list live;
          s_densities =
            Array.of_list (List.map (fun ch -> Array.of_list ch) dens) })
      (tup5
         (list_size (int_bound 6) (oneofl phases))
         (int_bound 100000) (int_bound max_int)
         (list_size (int_bound 8) (list_size (int_bound 10) (int_bound 10000)))
         (list_size (int_bound 4)
            (list_size (int_bound 12) (pair (int_bound 50) (int_bound 50))))))

let arb_snapshot = QCheck.make ~print:Snapshot.to_string gen_snapshot

let prop_snapshot_roundtrip =
  QCheck.Test.make ~name:"snapshots round-trip through the text format" ~count:200 arb_snapshot
    (fun s ->
      match Snapshot.of_string (Snapshot.to_string s) with
      | Error e -> QCheck.Test.fail_reportf "reject: %s" (Bgr_error.to_string e)
      | Ok s' -> s = s')

let prop_snapshot_flip_detected =
  let arb =
    QCheck.make
      ~print:(fun (s, off) -> Printf.sprintf "flip@%d of %s" off (Snapshot.to_string s))
      QCheck.Gen.(pair gen_snapshot (int_bound 100000))
  in
  QCheck.Test.make ~name:"any single-byte snapshot flip is caught" ~count:200 arb
    (fun (s, off) ->
      let b = Bytes.of_string (Snapshot.to_string s) in
      let off = off mod Bytes.length b in
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x04));
      match Snapshot.of_string (Bytes.to_string b) with
      | Error _ -> true
      | Ok s' -> s' = s (* a flip inside ignored whitespace may survive *))

(* --- the auditor on deliberately corrupted states ---------------------- *)

let routed_router input =
  let _prep, router = Flow.prepare input in
  ignore (Router.run router : Router.run_report);
  router

let test_audit_detects_density_damage () =
  let d = List.hd (Lazy.force designs) in
  let router = routed_router d.d_input in
  Density.add_trunk (Router.density router) ~channel:0 ~span:(Interval.make 2 6) ~w:1
    ~bridge:false;
  let a = Verify.audit router in
  check_bool "phantom trunk detected" false (Verify.audit_ok a);
  let repaired = Verify.audit ~repair:true router in
  check_bool "density damage repaired" true (Verify.audit_ok repaired);
  check_bool "repair recorded" true (repaired.Verify.repairs <> [])

let test_audit_detects_dead_tree_edge () =
  let d = List.hd (Lazy.force designs) in
  let router = routed_router d.d_input in
  let rg = Router.routing_graph router 0 in
  (match Router.tree_edges router 0 with
  | e :: _ -> Ugraph.delete_edge rg.Routing_graph.graph e
  | [] -> Alcotest.fail "net 0 has no tree");
  let a = Verify.audit router in
  check_bool "severed tree edge detected" false (Verify.audit_ok a);
  (* Primal damage: the net is genuinely disconnected, so even a
     repair pass must keep reporting it. *)
  let repaired = Verify.audit ~repair:true router in
  check_bool "disconnection survives repair" false (Verify.audit_ok repaired)

let test_audit_detects_broken_mirror () =
  let d = List.nth (Lazy.force designs) 1 in
  let router = routed_router d.d_input in
  check_bool "gen design recognizes pairs" true (Router.n_recognized_pairs router > 0);
  let n_nets = Netlist.n_nets d.d_input.Flow.netlist in
  let mirrored = ref None in
  for n = n_nets - 1 downto 0 do
    if Router.mirrored router n then mirrored := Some n
  done;
  (match !mirrored with
  | None -> Alcotest.fail "no mirrored net found"
  | Some n -> (
    let rg = Router.routing_graph router n in
    match Router.tree_edges router n with
    | e :: _ -> Ugraph.delete_edge rg.Routing_graph.graph e
    | [] -> Alcotest.fail "mirrored net has no tree"));
  let a = Verify.audit router in
  check_bool "broken mirroring detected" false (Verify.audit_ok a);
  let repaired = Verify.audit ~repair:true router in
  check_bool "repair dropped the pair recognition" true
    (List.exists
       (fun r ->
         let n = String.length "pair" and m = String.length r in
         let rec go i = i + n <= m && (String.sub r i n = "pair" || go (i + 1)) in
         go 0)
       repaired.Verify.repairs)

let test_audit_detects_stale_timing () =
  let d = List.hd (Lazy.force designs) in
  let router = routed_router d.d_input in
  (match Router.sta router with
  | None -> Alcotest.fail "mini has constraints"
  | Some sta ->
    let dg = Sta.delay_graph sta in
    let cap = Delay_graph.net_cap dg 0 in
    Delay_graph.set_net_cap dg ~net:0 ~cap_ff:(cap +. 250.0));
  let a = Verify.audit router in
  check_bool "tampered lumped cap detected" false (Verify.audit_ok a);
  let repaired = Verify.audit ~repair:true router in
  check_bool "timing damage repaired" true (Verify.audit_ok repaired)

let test_audit_clean_on_fresh_route () =
  let d = List.hd (Lazy.force designs) in
  let router = routed_router d.d_input in
  let a = Verify.audit router in
  check_bool
    (Format.asprintf "untouched state audits clean (%a)" Verify.pp_audit a)
    true (Verify.audit_ok a);
  check_int "audited every net" (Netlist.n_nets d.d_input.Flow.netlist) a.Verify.audited_nets

let () =
  Alcotest.run "persist"
    [ ( "route",
        [ Alcotest.test_case "persistent route == plain flow" `Slow test_route_matches_flow ] );
      ( "kill/resume",
        [ Alcotest.test_case "kill at persist.append" `Slow test_kill_at_append;
          Alcotest.test_case "kill at persist.snapshot" `Slow test_kill_at_snapshot;
          Alcotest.test_case "late append + fsync kills" `Slow test_kill_late_and_at_fsync;
          Alcotest.test_case "resume on 4 domains" `Slow test_resume_on_four_domains;
          Alcotest.test_case "kill the resume too" `Slow test_double_kill ] );
      ( "disk damage",
        [ Alcotest.test_case "torn tail resumes with a warning" `Slow test_torn_tail_resumes;
          Alcotest.test_case "mid-file corruption is structural" `Slow
            test_midfile_corruption_is_structural;
          Alcotest.test_case "snapshot corruption is structural" `Slow
            test_snapshot_corruption_is_structural ] );
      ( "snapshot",
        [ Alcotest.test_case "snapshot -> load -> audit clean" `Slow
            test_snapshot_load_audit_clean ] );
      ( "journal properties",
        [ QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_torn_tail;
          QCheck_alcotest.to_alcotest prop_midfile_flip_detected ] );
      ( "snapshot properties",
        [ QCheck_alcotest.to_alcotest prop_snapshot_roundtrip;
          QCheck_alcotest.to_alcotest prop_snapshot_flip_detected ] );
      ( "audit",
        [ Alcotest.test_case "clean state audits clean" `Slow test_audit_clean_on_fresh_route;
          Alcotest.test_case "density damage" `Slow test_audit_detects_density_damage;
          Alcotest.test_case "severed tree edge" `Slow test_audit_detects_dead_tree_edge;
          Alcotest.test_case "broken pair mirroring" `Slow test_audit_detects_broken_mirror;
          Alcotest.test_case "stale timing caps" `Slow test_audit_detects_stale_timing ] ) ]
