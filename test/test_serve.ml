(* The daemon: wire protocol, retry policy, spool, admission control,
   supervision, drain.  Real sockets, in-process server (the event loop
   runs in a spawned domain; jobs route with domains=1). *)

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- scratch dirs ------------------------------------------------------ *)

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  (* Keep the path short: the socket lives inside and sun_path is
     capped around 100 bytes. *)
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bgrsv%d-%d" (Unix.getpid ()) !dir_counter)
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let plan_of s =
  match Fault.parse_plan s with
  | Ok p -> p
  | Error m -> Alcotest.failf "parse_plan %S: %s" s m

(* --- the example design ------------------------------------------------ *)

let mini_input = lazy (Suite.mini ()).Suite.input

let mini_text =
  lazy
    (let input = Lazy.force mini_input in
     let fp = Flow.floorplan_of_input input in
     Design_io.to_string ~floorplan:fp ~constraints:input.Flow.constraints input.Flow.netlist)

let mini_hash =
  lazy
    (let options = { Router.default_options with Router.domains = 1 } in
     (Flow.run ~options (Lazy.force mini_input)).Flow.o_measurement.Flow.m_deletion_hash)

(* --- wire round trips -------------------------------------------------- *)

let roundtrip_request r =
  let f = Wire.encode_request r in
  match Wire.extract_frame f ~pos:0 with
  | Wire.Frame (payload, used) ->
    checki "whole frame" (String.length f) used;
    (match Wire.decode_request payload with
    | Ok r' -> checkb "request round trip" true (r = r')
    | Error e -> Alcotest.failf "decode: %s" e.Bgr_error.message)
  | _ -> Alcotest.fail "frame extraction"

let roundtrip_reply r =
  let f = Wire.encode_reply r in
  match Wire.extract_frame f ~pos:0 with
  | Wire.Frame (payload, _) -> (
    match Wire.decode_reply payload with
    | Ok r' -> checkb "reply round trip" true (r = r')
    | Error e -> Alcotest.failf "decode: %s" e.Bgr_error.message)
  | _ -> Alcotest.fail "frame extraction"

let test_wire_roundtrip () =
  List.iter roundtrip_request
    [ Wire.Route
        { wait = true;
          timing_driven = false;
          deadline_ms = Some 1500;
          name = Some "j1";
          design = "rows 4\n" };
      Wire.Route
        { wait = false; timing_driven = true; deadline_ms = None; name = None; design = "" };
      Wire.Resume { wait = true; job = "job-000007" };
      Wire.Analyze { job = "a.b-c_d" };
      Wire.Status { job = None };
      Wire.Status { job = Some "x" };
      Wire.Shutdown ];
  List.iter roundtrip_reply
    [ Wire.Accepted { job = "job-000001" };
      Wire.Result { job = "j"; ok = true; json = "{\"ok\":true}" };
      Wire.Result { job = "j"; ok = false; json = "{}" };
      Wire.Rerror { code = "parse"; message = "bad frame" };
      Wire.Overloaded { reason = "queue full"; depth = 16; cap = 16 };
      Wire.Info { json = "{}" } ]

let test_wire_malformed () =
  (* trailing bytes after a well-formed body *)
  let f = Wire.encode_request Wire.Shutdown in
  (match Wire.extract_frame f ~pos:0 with
  | Wire.Frame (payload, _) -> (
    match Wire.decode_request (payload ^ "x") with
    | Error e ->
      checkb "crc fails first on appended garbage... decode rejects trailing" true
        (e.Bgr_error.code = Bgr_error.Parse)
    | Ok _ -> Alcotest.fail "trailing bytes accepted")
  | _ -> Alcotest.fail "frame");
  (* unknown opcodes, both directions *)
  (match Wire.decode_request "\x7fjunk" with
  | Error e -> checkb "unknown request opcode is Parse" true (e.Bgr_error.code = Bgr_error.Parse)
  | Ok _ -> Alcotest.fail "opcode 0x7f accepted");
  (match Wire.decode_reply "\x10" with
  | Error e -> checkb "unknown reply opcode is Parse" true (e.Bgr_error.code = Bgr_error.Parse)
  | Ok _ -> Alcotest.fail "reply opcode 0x10 accepted");
  (* truncated bodies *)
  match Wire.decode_request "\x01\x00" with
  | Error e -> checkb "truncated route body is Parse" true (e.Bgr_error.code = Bgr_error.Parse)
  | Ok _ -> Alcotest.fail "truncated body accepted"

let test_extract_frame () =
  let f = Wire.encode_request (Wire.Status { job = None }) in
  (* byte-at-a-time: Need until the last byte *)
  for i = 0 to String.length f - 1 do
    match Wire.extract_frame (String.sub f 0 i) ~pos:0 with
    | Wire.Need n -> checkb "need is positive" true (n > 0)
    | _ -> Alcotest.failf "prefix %d should be Need" i
  done;
  (match Wire.extract_frame (f ^ f) ~pos:0 with
  | Wire.Frame (_, used) -> (
    match Wire.extract_frame (f ^ f) ~pos:used with
    | Wire.Frame (_, used') -> checki "second frame" (String.length f) used'
    | _ -> Alcotest.fail "second frame")
  | _ -> Alcotest.fail "first frame");
  (* CRC damage *)
  let damaged = Bytes.of_string f in
  Bytes.set damaged (Bytes.length damaged - 1)
    (Char.chr (Char.code (Bytes.get damaged (Bytes.length damaged - 1)) lxor 0xFF));
  (match Wire.extract_frame (Bytes.to_string damaged) ~pos:0 with
  | Wire.Bad e -> checkb "crc damage is Parse" true (e.Bgr_error.code = Bgr_error.Parse)
  | _ -> Alcotest.fail "damaged CRC accepted");
  (* oversized declared length rejected before the body arrives *)
  let oversized = "\x20\x00\x00\x00" in
  match Wire.extract_frame oversized ~pos:0 with
  | Wire.Bad e -> checkb "oversized is Parse" true (e.Bgr_error.code = Bgr_error.Parse)
  | _ -> Alcotest.fail "oversized length accepted"

let test_job_ids () =
  List.iter
    (fun id -> checkb id true (Wire.valid_job_id id))
    [ "job-000001"; "a"; "X9"; "_x"; "a.b-c_d"; String.make 64 'a' ];
  List.iter
    (fun id -> checkb ("bad " ^ id) false (Wire.valid_job_id id))
    [ ""; "-x"; ".x"; "a b"; "a/b"; "../etc"; String.make 65 'a' ]

(* --- retry policy (injected sleep: the schedule must be exact) --------- *)

let test_retry_schedule () =
  let slept = ref [] in
  let sleep ms = slept := ms :: !slept in
  let fail_always ~attempt:_ =
    Error (Bgr_error.make Bgr_error.Io_error "disk hiccup")
  in
  let o = Retry.run ~max_attempts:4 ~base_ms:100.0 ~sleep_ms:sleep fail_always in
  checki "four attempts" 4 o.Retry.attempts;
  checkb "still failed" true (Result.is_error o.Retry.result);
  check
    Alcotest.(list (float 0.0))
    "deterministic doubling" [ 100.0; 200.0; 400.0 ] o.Retry.slept_ms;
  check Alcotest.(list (float 0.0)) "recorder agrees" [ 400.0; 200.0; 100.0 ] !slept;
  (* second run: identical schedule (no jitter) *)
  let o2 = Retry.run ~max_attempts:4 ~base_ms:100.0 ~sleep_ms:ignore fail_always in
  check Alcotest.(list (float 0.0)) "reproducible" o.Retry.slept_ms o2.Retry.slept_ms

let test_retry_success_and_default () =
  let succeed_on n ~attempt =
    if attempt >= n then Ok attempt else Error (Bgr_error.make Bgr_error.Fault "injected")
  in
  let o = Retry.run ~base_ms:250.0 ~sleep_ms:ignore (succeed_on 2) in
  checki "default is one bounded retry" 2 o.Retry.attempts;
  checkb "succeeded" true (o.Retry.result = Ok 2);
  check Alcotest.(list (float 0.0)) "one backoff" [ 250.0 ] o.Retry.slept_ms;
  (* default budget refuses a third attempt *)
  let o = Retry.run ~sleep_ms:ignore (succeed_on 3) in
  checki "capped at two" 2 o.Retry.attempts;
  checkb "failed" true (Result.is_error o.Retry.result)

let test_retry_non_retryable () =
  List.iter
    (fun code ->
      let o =
        Retry.run ~max_attempts:5 ~sleep_ms:(fun _ -> Alcotest.fail "must not sleep")
          (fun ~attempt:_ -> Error (Bgr_error.make code "hopeless"))
      in
      checki (Bgr_error.code_name code ^ " gets one attempt") 1 o.Retry.attempts;
      check Alcotest.(list (float 0.0)) "no backoff" [] o.Retry.slept_ms)
    [ Bgr_error.Parse; Bgr_error.Validate; Bgr_error.Geometry; Bgr_error.Unroutable;
      Bgr_error.Deadline; Bgr_error.Internal ];
  checkb "fault is retryable" true (Retry.retryable Bgr_error.Fault);
  checkb "io is retryable" true (Retry.retryable Bgr_error.Io_error);
  Alcotest.check (Alcotest.float 0.0) "backoff formula" 2000.0
    (Retry.backoff_ms ~base_ms:250.0 ~attempt:4)

(* --- spool ------------------------------------------------------------- *)

let test_spool_lifecycle () =
  let root = Filename.concat (fresh_dir ()) "spool" in
  let sp = Spool.open_root root in
  check Alcotest.string "first id" "job-000001" (Spool.fresh_id sp);
  let job =
    { Spool.j_id = "job-000001"; j_timing_driven = true; j_deadline_ms = Some 900; j_attempts = 0 }
  in
  Spool.accept sp job ~design_text:"rows 1\n";
  checkb "exists" true (Spool.exists sp "job-000001");
  check Alcotest.string "next id skips it" "job-000002" (Spool.fresh_id sp);
  (match Spool.load_job sp "job-000001" with
  | Ok j -> checkb "manifest round trip" true (j = job)
  | Error e -> Alcotest.failf "load: %s" e.Bgr_error.message);
  (match Spool.scan sp with
  | [ j ] -> check Alcotest.string "scan finds it" "job-000001" j.Spool.j_id
  | l -> Alcotest.failf "scan found %d jobs" (List.length l));
  let job = Spool.record_attempt sp job in
  checki "attempt recorded" 1 job.Spool.j_attempts;
  checkb "attempt persisted" true
    ((Result.get_ok (Spool.load_job sp "job-000001")).Spool.j_attempts = 1);
  Spool.mark_done sp "job-000001" ~json:"{\"ok\":true}";
  (match Spool.state_of sp "job-000001" with
  | Some (Spool.Done json) -> check Alcotest.string "result json" "{\"ok\":true}" json
  | _ -> Alcotest.fail "not done");
  checki "done jobs drop out of scan" 0 (List.length (Spool.scan sp));
  (* a second job goes to the dead-letter dir and comes back *)
  let j2 = { job with Spool.j_id = "job-000002"; j_attempts = 2 } in
  Spool.accept sp j2 ~design_text:"rows 2\n";
  Spool.retire sp "job-000002" ~json:"{\"ok\":false}";
  (match Spool.state_of sp "job-000002" with
  | Some (Spool.Dead json) -> check Alcotest.string "error json" "{\"ok\":false}" json
  | _ -> Alcotest.fail "not dead");
  checkb "dead id still taken" true (Spool.exists sp "job-000002");
  (* attempts stay readable after retirement *)
  checki "dead manifest readable" 2
    ((Result.get_ok (Spool.load_job sp "job-000002")).Spool.j_attempts);
  (match Spool.revive sp "job-000002" with
  | Ok j -> checki "revive resets attempts" 0 j.Spool.j_attempts
  | Error e -> Alcotest.failf "revive: %s" e.Bgr_error.message);
  (match Spool.state_of sp "job-000002" with
  | Some (Spool.Pending _) -> ()
  | _ -> Alcotest.fail "revived job not pending");
  (* corrupt manifests are skipped with a warning, not a crash *)
  let oc = open_out (Filename.concat (Spool.job_dir sp "job-000002") Spool.job_file) in
  output_string oc "not a manifest\n";
  close_out oc;
  checki "corrupt manifest skipped" 0 (List.length (Spool.scan sp));
  checki "with a warning" 1 (List.length (Spool.scan_warnings sp))

(* --- in-process servers ------------------------------------------------ *)

type server = { cfg : Serve.config; domain : (Serve.stats, exn) result Domain.t }

let start_server ?(cap = 8) ?(max_attempts = 2) ?(backoff_ms = 30.0) root =
  let cfg =
    { (Serve.default_config
         ~socket_path:(Filename.concat root "s.sock")
         ~spool_root:(Filename.concat root "spool"))
      with
      Serve.queue_cap = cap;
      max_attempts;
      backoff_base_ms = backoff_ms;
      job_domains = 1 }
  in
  let domain =
    Domain.spawn (fun () -> match Serve.run cfg with s -> Ok s | exception e -> Error e)
  in
  (* wait for the socket to appear *)
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (Sys.file_exists cfg.Serve.socket_path)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  { cfg; domain }

let stop_server srv =
  (match Serve_client.connect srv.cfg.Serve.socket_path with
  | Ok c ->
    ignore (Serve_client.request ~timeout_s:10.0 c Wire.Shutdown);
    Serve_client.close c
  | Error _ -> ());
  match Domain.join srv.domain with
  | Ok stats -> stats
  | Error e -> Alcotest.failf "server died: %s" (Printexc.to_string e)

let client srv =
  match Serve_client.connect srv.cfg.Serve.socket_path with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" e.Bgr_error.message

let rq ?(timeout_s = 60.0) c req =
  match Serve_client.request ~timeout_s c req with
  | Ok r -> r
  | Error e -> Alcotest.failf "request: %s" e.Bgr_error.message

let submit_mini ?name ?(wait = false) () =
  Wire.Route
    { wait;
      timing_driven = true;
      deadline_ms = None;
      name;
      design = Lazy.force mini_text }

let json_field json name =
  match Qjson.parse json with
  | Error m -> Alcotest.failf "bad json %s: %s" json m
  | Ok j -> Qjson.member name j

let hash_of_json json =
  match Option.bind (json_field json "deletion_hash") Qjson.to_str with
  | Some s -> int_of_string s
  | None -> Alcotest.failf "no deletion_hash in %s" json

(* --- end to end -------------------------------------------------------- *)

let test_end_to_end () =
  let root = fresh_dir () in
  let srv = start_server root in
  let c = client srv in
  (* route, wait, compare against the uninterrupted in-process hash *)
  (match rq c (submit_mini ~name:"mini" ~wait:true ()) with
  | Wire.Accepted { job } -> (
    check Alcotest.string "named job" "mini" job;
    match Serve_client.next_reply ~timeout_s:120.0 c with
    | Ok (Wire.Result { ok; json; _ }) ->
      checkb "routed" true ok;
      checki "daemon hash = direct-run hash" (Lazy.force mini_hash) (hash_of_json json)
    | other -> Alcotest.failf "no result: %s" (match other with Error e -> e.Bgr_error.message | _ -> "wrong reply"))
  | _ -> Alcotest.fail "not accepted");
  (* duplicate name refused *)
  (match rq c (submit_mini ~name:"mini" ()) with
  | Wire.Rerror { code; _ } -> check Alcotest.string "duplicate id" "validate" code
  | _ -> Alcotest.fail "duplicate name accepted");
  (* malformed design rejected at admission, nothing spooled *)
  (match
     rq c
       (Wire.Route
          { wait = false;
            timing_driven = true;
            deadline_ms = None;
            name = Some "broken";
            design = "rows ???\n" })
   with
  | Wire.Rerror { code; _ } -> check Alcotest.string "parse reject" "parse" code
  | _ -> Alcotest.fail "garbage design accepted");
  checkb "nothing spooled for it" false
    (Sys.file_exists (Filename.concat srv.cfg.Serve.spool_root "jobs/broken"));
  (* job status, daemon status, analyze *)
  (match rq c (Wire.Status { job = Some "mini" }) with
  | Wire.Info { json } -> (
    match Option.bind (json_field json "state") Qjson.to_str with
    | Some s -> check Alcotest.string "state" "done" s
    | None -> Alcotest.fail "no state")
  | _ -> Alcotest.fail "status");
  (match rq c (Wire.Status { job = None }) with
  | Wire.Info { json } ->
    checkb "daemon status has depth" true (json_field json "queue_depth" <> None)
  | _ -> Alcotest.fail "daemon status");
  (match rq c (Wire.Analyze { job = "mini" }) with
  | Wire.Info { json } -> (
    match Option.bind (json_field json "schema") Qjson.to_str with
    | Some s -> check Alcotest.string "quality schema" Quality.schema s
    | None -> Alcotest.fail "no schema")
  | _ -> Alcotest.fail "analyze");
  (* waiting on a finished job returns its stored result immediately *)
  (match rq c (Wire.Resume { wait = true; job = "mini" }) with
  | Wire.Result { ok; json; _ } ->
    checkb "stored ok" true ok;
    checki "stored hash" (Lazy.force mini_hash) (hash_of_json json)
  | _ -> Alcotest.fail "resume of done job");
  (* unknown job *)
  (match rq c (Wire.Status { job = Some "nope" }) with
  | Wire.Rerror { code; _ } -> check Alcotest.string "unknown job" "validate" code
  | _ -> Alcotest.fail "unknown job accepted");
  Serve_client.close c;
  let stats = stop_server srv in
  checki "accepted" 1 stats.Serve.s_accepted;
  checki "completed" 1 stats.Serve.s_completed;
  checki "no failures" 0 stats.Serve.s_failed

(* --- admission control + retry under a transient fault ----------------- *)

let test_overload_and_retry () =
  let root = fresh_dir () in
  Fault.with_plan (plan_of "seed=3;serve.job:n=1") @@ fun () ->
  let srv = start_server ~cap:1 ~backoff_ms:500.0 root in
  let c = client srv in
  (* job A: first attempt trips the fault, the retry succeeds *)
  (match rq c (submit_mini ~name:"a" ~wait:true ()) with
  | Wire.Accepted _ -> ()
  | _ -> Alcotest.fail "A not accepted");
  (* while A retries (500 ms backoff), the queue is full: B is shed *)
  let c2 = client srv in
  (match rq c2 (submit_mini ~name:"b" ()) with
  | Wire.Overloaded { reason; depth; cap } ->
    check Alcotest.string "reason" "queue full" reason;
    checki "cap" 1 cap;
    checkb "depth at cap" true (depth >= 1)
  | _ -> Alcotest.fail "B was not shed");
  Serve_client.close c2;
  (match Serve_client.next_reply ~timeout_s:120.0 c with
  | Ok (Wire.Result { ok; json; _ }) ->
    checkb "A routed on retry" true ok;
    checki "hash still right" (Lazy.force mini_hash) (hash_of_json json);
    (match Option.bind (json_field json "attempts") Qjson.to_int with
    | Some a -> checki "two attempts" 2 a
    | None -> Alcotest.fail "no attempts field")
  | _ -> Alcotest.fail "A never finished");
  Serve_client.close c;
  let stats = stop_server srv in
  checki "one retry" 1 stats.Serve.s_retried;
  checki "one rejection" 1 stats.Serve.s_rejected;
  checki "completed" 1 stats.Serve.s_completed

(* --- dead-letter + revive ---------------------------------------------- *)

let test_dead_letter_and_revive () =
  let root = fresh_dir () in
  (* life 1: every snapshot faults mid-route, so both attempts fail
     AFTER the journal exists — the retirement must keep it *)
  (Fault.with_plan (plan_of "persist.snapshot:always") @@ fun () ->
   let srv = start_server ~backoff_ms:10.0 root in
   let c = client srv in
   (match rq c (submit_mini ~name:"doomed" ~wait:true ()) with
   | Wire.Accepted _ -> (
     match Serve_client.next_reply ~timeout_s:60.0 c with
     | Ok (Wire.Result { ok; json; _ }) ->
       checkb "failed" false ok;
       (match Option.bind (json_field json "code") Qjson.to_str with
       | Some code -> check Alcotest.string "fault class" "fault" code
       | None -> Alcotest.fail "no code");
       (match Option.bind (json_field json "attempts") Qjson.to_int with
       | Some a -> checki "both attempts burned" 2 a
       | None -> Alcotest.fail "no attempts")
     | _ -> Alcotest.fail "no failure result")
   | _ -> Alcotest.fail "not accepted");
   Serve_client.close c;
   let stats = stop_server srv in
   checki "dead-lettered" 1 stats.Serve.s_failed;
   checki "retried once" 1 stats.Serve.s_retried);
  let dead = Filename.concat root "spool/dead/doomed" in
  checkb "dead dir" true (Sys.file_exists dead);
  checkb "ERROR recorded" true (Sys.file_exists (Filename.concat dead Spool.error_file));
  checkb "journal kept for post-mortem" true
    (Sys.file_exists (Filename.concat dead Persist.journal_file));
  (* life 2: no faults; resume revives it and it completes *)
  let srv = start_server root in
  let c = client srv in
  (match rq c (Wire.Resume { wait = true; job = "doomed" }) with
  | Wire.Accepted _ -> (
    match Serve_client.next_reply ~timeout_s:120.0 c with
    | Ok (Wire.Result { ok; json; _ }) ->
      checkb "revived and routed" true ok;
      checki "hash right after revival" (Lazy.force mini_hash) (hash_of_json json)
    | _ -> Alcotest.fail "no result")
  | _ -> Alcotest.fail "revive refused");
  Serve_client.close c;
  ignore (stop_server srv)

(* --- supervisor requeue ------------------------------------------------ *)

let test_supervisor_requeue () =
  let root = fresh_dir () in
  (* an accepted job from a previous life: spooled, never run *)
  let sp = Spool.open_root (Filename.concat root "spool") in
  Spool.accept sp
    { Spool.j_id = "leftover"; j_timing_driven = true; j_deadline_ms = None; j_attempts = 0 }
    ~design_text:(Lazy.force mini_text);
  let srv = start_server root in
  let c = client srv in
  (match rq ~timeout_s:120.0 c (Wire.Resume { wait = true; job = "leftover" }) with
  | Wire.Accepted _ -> (
    match Serve_client.next_reply ~timeout_s:120.0 c with
    | Ok (Wire.Result { ok; json; _ }) ->
      checkb "leftover completed" true ok;
      checki "hash" (Lazy.force mini_hash) (hash_of_json json)
    | _ -> Alcotest.fail "no result")
  | Wire.Result { ok; json; _ } ->
    (* the supervisor may already have finished it *)
    checkb "leftover completed" true ok;
    checki "hash" (Lazy.force mini_hash) (hash_of_json json)
  | _ -> Alcotest.fail "leftover unknown to the daemon");
  Serve_client.close c;
  let stats = stop_server srv in
  checki "requeued by the supervisor" 1 stats.Serve.s_requeued;
  checki "completed" 1 stats.Serve.s_completed

(* --- graceful drain ---------------------------------------------------- *)

let test_drain_keeps_queued_jobs () =
  let root = fresh_dir () in
  let stats =
    Fault.with_plan (plan_of "serve.job:n=1") @@ fun () ->
    (* the fault makes job A retry with a long backoff, holding the
       executor busy while B and C queue behind it *)
    let srv = start_server ~cap:8 ~backoff_ms:1500.0 root in
    let c = client srv in
    (match rq c (submit_mini ~name:"a" ~wait:true ()) with
    | Wire.Accepted _ -> ()
    | _ -> Alcotest.fail "A not accepted");
    let cb = client srv in
    (match rq cb (submit_mini ~name:"b" ~wait:true ()) with
    | Wire.Accepted _ -> ()
    | _ -> Alcotest.fail "B not accepted");
    (match rq cb (submit_mini ~name:"c" ()) with
    | Wire.Accepted _ -> ()
    | _ -> Alcotest.fail "C not accepted");
    (* drain: A (running) finishes; B and C stay spooled; B's waiter
       is told so *)
    let cs = client srv in
    (match rq cs Wire.Shutdown with
    | Wire.Info _ -> ()
    | _ -> Alcotest.fail "shutdown refused");
    (* submissions during a drain are shed, not spooled *)
    (match rq cs (submit_mini ~name:"late" ()) with
    | Wire.Overloaded { reason; _ } -> check Alcotest.string "late is shed" "draining" reason
    | _ -> Alcotest.fail "late submission accepted during drain");
    Serve_client.close cs;
    (match Serve_client.next_reply ~timeout_s:120.0 c with
    | Ok (Wire.Result { ok; _ }) -> checkb "A completed during drain" true ok
    | _ -> Alcotest.fail "A lost");
    (match Serve_client.next_reply ~timeout_s:30.0 cb with
    | Ok (Wire.Rerror { code; _ }) -> check Alcotest.string "B's waiter told" "draining" code
    | _ -> Alcotest.fail "B's waiter not notified");
    Serve_client.close c;
    Serve_client.close cb;
    match Domain.join srv.domain with
    | Ok stats -> stats
    | Error e -> Alcotest.failf "server died: %s" (Printexc.to_string e)
  in
  checki "only A completed" 1 stats.Serve.s_completed;
  checki "nothing dead-lettered" 0 stats.Serve.s_failed;
  (* B and C survive on disk for the next daemon, which finishes them *)
  let sp = Spool.open_root (Filename.concat root "spool") in
  checki "two jobs still spooled" 2 (List.length (Spool.scan sp));
  let srv = start_server root in
  let c = client srv in
  (match rq c (Wire.Resume { wait = true; job = "b" }) with
  | Wire.Accepted _ -> (
    match Serve_client.next_reply ~timeout_s:120.0 c with
    | Ok (Wire.Result { ok; _ }) -> checkb "B finished in life 2" true ok
    | _ -> Alcotest.fail "B lost in life 2")
  | Wire.Result { ok; _ } -> checkb "B finished in life 2" true ok
  | _ -> Alcotest.fail "B unknown in life 2");
  Serve_client.close c;
  let stats = stop_server srv in
  checki "life 2 requeued both" 2 stats.Serve.s_requeued

(* --- protocol robustness: the malformed-request corpus ----------------- *)

let corpus_dir = if Sys.file_exists "corpus/serve" then "corpus/serve" else "test/corpus/serve"

let raw_connect srv =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX srv.cfg.Serve.socket_path);
  (* greet properly so only the corpus payload is on trial *)
  ignore (Unix.write_substring fd Wire.magic 0 (String.length Wire.magic));
  let banner = Bytes.create (String.length Wire.magic) in
  let got = Unix.read fd banner 0 (Bytes.length banner) in
  checkb "server banner" true (got > 0);
  fd

(* Read one framed reply off a raw fd (blocking, bounded). *)
let raw_reply fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
  let buf = Bytes.create 65536 in
  let acc = ref "" in
  let rec go () =
    match Wire.extract_frame !acc ~pos:0 with
    | Wire.Frame (payload, _) -> Some (Wire.decode_reply payload)
    | Wire.Bad _ -> None
    | Wire.Need _ -> (
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> None
      | n ->
        acc := !acc ^ Bytes.sub_string buf 0 n;
        go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> None)
  in
  go ()

let test_malformed_corpus () =
  let files = Sys.readdir corpus_dir |> Array.to_list |> List.sort compare in
  checkb "corpus present" true (List.length files >= 4);
  let root = fresh_dir () in
  let srv = start_server root in
  List.iter
    (fun file ->
      let bytes =
        let ic = open_in_bin (Filename.concat corpus_dir file) in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      let fd = raw_connect srv in
      ignore (Unix.write_substring fd bytes 0 (String.length bytes));
      (match raw_reply fd with
      | Some (Ok (Wire.Rerror { code; message })) ->
        check Alcotest.string (file ^ " error class") "parse" code;
        checkb (file ^ " has a message") true (String.length message > 0)
      | Some (Ok _) -> Alcotest.failf "%s: daemon accepted garbage" file
      | Some (Error e) -> Alcotest.failf "%s: unparseable reply: %s" file e.Bgr_error.message
      | None ->
        (* a truncated frame draws no reply: the daemon just waits;
           dropping the connection must not hurt it either *)
        checkb (file ^ " tolerated silently") true
          (Filename.check_suffix file "truncated_frame.bin"));
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (* the daemon survived: a fresh client still gets status *)
      let c = client srv in
      (match rq c (Wire.Status { job = None }) with
      | Wire.Info _ -> ()
      | _ -> Alcotest.failf "%s: daemon unhealthy afterwards" file);
      Serve_client.close c)
    files;
  (* bad magic greeting is also answered, then the connection closed *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX srv.cfg.Serve.socket_path);
  ignore (Unix.write_substring fd "NOTBGR" 0 6);
  (* swallow the server banner; the error frame follows it *)
  let banner = Bytes.create (String.length Wire.magic) in
  ignore (Unix.read fd banner 0 (Bytes.length banner));
  (match raw_reply fd with
  | Some (Ok (Wire.Rerror { code; _ })) -> check Alcotest.string "bad magic" "parse" code
  | _ -> Alcotest.fail "bad magic not answered");
  (try Unix.close fd with Unix.Unix_error _ -> ());
  let stats = stop_server srv in
  checkb "protocol errors counted" true (stats.Serve.s_protocol_errors >= 4);
  checki "no jobs harmed" 0 stats.Serve.s_failed

(* --- serve.accept fault: refused connection, healthy daemon ------------ *)

let test_accept_fault () =
  let root = fresh_dir () in
  Fault.with_plan (plan_of "serve.accept:n=1") @@ fun () ->
  let srv = start_server root in
  (* first dial is swallowed by the fault: the daemon accepts and
     immediately closes; the client sees EOF during the greeting *)
  (match Serve_client.connect srv.cfg.Serve.socket_path with
  | Error _ -> ()
  | Ok c ->
    (* the close can also surface on first use *)
    (match Serve_client.request ~timeout_s:10.0 c (Wire.Status { job = None }) with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "faulted connection served");
    Serve_client.close c);
  (* the daemon itself survived *)
  let c = client srv in
  (match rq c (Wire.Status { job = None }) with
  | Wire.Info _ -> ()
  | _ -> Alcotest.fail "daemon unhealthy after accept fault");
  Serve_client.close c;
  ignore (stop_server srv)

let () =
  Alcotest.run "serve"
    [ ( "wire",
        [ Alcotest.test_case "round trips" `Quick test_wire_roundtrip;
          Alcotest.test_case "malformed payloads" `Quick test_wire_malformed;
          Alcotest.test_case "incremental frames" `Quick test_extract_frame;
          Alcotest.test_case "job ids" `Quick test_job_ids ] );
      ( "retry",
        [ Alcotest.test_case "deterministic schedule" `Quick test_retry_schedule;
          Alcotest.test_case "success and default cap" `Quick test_retry_success_and_default;
          Alcotest.test_case "non-retryable goes straight through" `Quick
            test_retry_non_retryable ] );
      ("spool", [ Alcotest.test_case "lifecycle" `Quick test_spool_lifecycle ]);
      ( "daemon",
        [ Alcotest.test_case "end to end" `Slow test_end_to_end;
          Alcotest.test_case "overload + retry" `Slow test_overload_and_retry;
          Alcotest.test_case "dead-letter + revive" `Slow test_dead_letter_and_revive;
          Alcotest.test_case "supervisor requeue" `Slow test_supervisor_requeue;
          Alcotest.test_case "drain keeps queued jobs" `Slow test_drain_keeps_queued_jobs ] );
      ( "protocol",
        [ Alcotest.test_case "malformed corpus" `Slow test_malformed_corpus;
          Alcotest.test_case "accept fault" `Quick test_accept_fault ] ) ]
