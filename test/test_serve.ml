(* The daemon: wire protocol, retry policy, spool, admission control,
   supervision, drain.  Real sockets, in-process server (the event loop
   runs in a spawned domain; jobs route with domains=1). *)

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- scratch dirs ------------------------------------------------------ *)

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  (* Keep the path short: the socket lives inside and sun_path is
     capped around 100 bytes. *)
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bgrsv%d-%d" (Unix.getpid ()) !dir_counter)
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let plan_of s =
  match Fault.parse_plan s with
  | Ok p -> p
  | Error m -> Alcotest.failf "parse_plan %S: %s" s m

(* --- the example design ------------------------------------------------ *)

let mini_input = lazy (Suite.mini ()).Suite.input

let mini_text =
  lazy
    (let input = Lazy.force mini_input in
     let fp = Flow.floorplan_of_input input in
     Design_io.to_string ~floorplan:fp ~constraints:input.Flow.constraints input.Flow.netlist)

let mini_hash =
  lazy
    (let options = { Router.default_options with Router.domains = 1 } in
     (Flow.run ~options (Lazy.force mini_input)).Flow.o_measurement.Flow.m_deletion_hash)

(* --- wire round trips -------------------------------------------------- *)

let roundtrip_request r =
  let f = Wire.encode_request r in
  match Wire.extract_frame f ~pos:0 with
  | Wire.Frame (payload, used) ->
    checki "whole frame" (String.length f) used;
    (match Wire.decode_request payload with
    | Ok r' -> checkb "request round trip" true (r = r')
    | Error e -> Alcotest.failf "decode: %s" e.Bgr_error.message)
  | _ -> Alcotest.fail "frame extraction"

let roundtrip_reply r =
  let f = Wire.encode_reply r in
  match Wire.extract_frame f ~pos:0 with
  | Wire.Frame (payload, _) -> (
    match Wire.decode_reply payload with
    | Ok r' -> checkb "reply round trip" true (r = r')
    | Error e -> Alcotest.failf "decode: %s" e.Bgr_error.message)
  | _ -> Alcotest.fail "frame extraction"

let test_wire_roundtrip () =
  List.iter roundtrip_request
    [ Wire.Route
        { wait = true;
          progress = false;
          timing_driven = false;
          deadline_ms = Some 1500;
          name = Some "j1";
          design = "rows 4\n" };
      Wire.Route
        { wait = true;
          progress = true;
          timing_driven = true;
          deadline_ms = None;
          name = None;
          design = "" };
      Wire.Resume { wait = true; progress = false; job = "job-000007" };
      Wire.Resume { wait = true; progress = true; job = "job-000008" };
      Wire.Analyze { job = "a.b-c_d" };
      Wire.Status { job = None };
      Wire.Status { job = Some "x" };
      Wire.Shutdown;
      Wire.Cancel { job = "job-000009" };
      Wire.Revive { wait = true; force = false; job = "doomed" };
      Wire.Revive { wait = false; force = true; job = "poison" };
      Wire.Watch { job = "job-000010" };
      Wire.Stats { prom = false };
      Wire.Stats { prom = true } ];
  List.iter roundtrip_reply
    [ Wire.Accepted { job = "job-000001" };
      Wire.Result { job = "j"; ok = true; json = "{\"ok\":true}" };
      Wire.Result { job = "j"; ok = false; json = "{}" };
      Wire.Rerror { code = "parse"; message = "bad frame" };
      Wire.Overloaded { reason = "queue full"; depth = 16; cap = 16 };
      Wire.Info { json = "{}" };
      Wire.Progress { job = "j"; seq = 1; json = "{\"phase\":\"route\"}" };
      Wire.Progress { job = "j"; seq = 0xFFFFFF; json = "" };
      Wire.Rstats { prom = true; body = "# TYPE x counter\nx 1\n" };
      Wire.Rstats { prom = false; body = "{}" } ]

let test_wire_malformed () =
  (* trailing bytes after a well-formed body *)
  let f = Wire.encode_request Wire.Shutdown in
  (match Wire.extract_frame f ~pos:0 with
  | Wire.Frame (payload, _) -> (
    match Wire.decode_request (payload ^ "x") with
    | Error e ->
      checkb "crc fails first on appended garbage... decode rejects trailing" true
        (e.Bgr_error.code = Bgr_error.Parse)
    | Ok _ -> Alcotest.fail "trailing bytes accepted")
  | _ -> Alcotest.fail "frame");
  (* unknown opcodes, both directions *)
  (match Wire.decode_request "\x7fjunk" with
  | Error e -> checkb "unknown request opcode is Parse" true (e.Bgr_error.code = Bgr_error.Parse)
  | Ok _ -> Alcotest.fail "opcode 0x7f accepted");
  (match Wire.decode_reply "\x10" with
  | Error e -> checkb "unknown reply opcode is Parse" true (e.Bgr_error.code = Bgr_error.Parse)
  | Ok _ -> Alcotest.fail "reply opcode 0x10 accepted");
  (* truncated bodies *)
  (match Wire.decode_request "\x01\x00" with
  | Error e -> checkb "truncated route body is Parse" true (e.Bgr_error.code = Bgr_error.Parse)
  | Ok _ -> Alcotest.fail "truncated body accepted");
  (* watch with a job length that overruns the payload *)
  (match Wire.decode_request "\x08\x00\x00\x00\x10abc" with
  | Error e -> checkb "truncated watch is Parse" true (e.Bgr_error.code = Bgr_error.Parse)
  | Ok _ -> Alcotest.fail "truncated watch accepted");
  (* stats with a missing flag byte, and with trailing bytes *)
  (match Wire.decode_request "\x09" with
  | Error e -> checkb "flagless stats is Parse" true (e.Bgr_error.code = Bgr_error.Parse)
  | Ok _ -> Alcotest.fail "flagless stats accepted");
  (match Wire.decode_request "\x09\x01zzz" with
  | Error e -> checkb "stats trailing bytes is Parse" true (e.Bgr_error.code = Bgr_error.Parse)
  | Ok _ -> Alcotest.fail "stats trailing bytes accepted");
  (* a truncated progress frame on the reply side: the seq/json are cut *)
  (match Wire.decode_reply "\x86\x00\x00\x00\x01j\x00\x00" with
  | Error e -> checkb "truncated progress is Parse" true (e.Bgr_error.code = Bgr_error.Parse)
  | Ok _ -> Alcotest.fail "truncated progress accepted");
  (* rstats with the body length overrunning the payload *)
  match Wire.decode_reply "\x87\x01\x00\x00\x00\x40x" with
  | Error e -> checkb "truncated rstats is Parse" true (e.Bgr_error.code = Bgr_error.Parse)
  | Ok _ -> Alcotest.fail "truncated rstats accepted"

let test_extract_frame () =
  let f = Wire.encode_request (Wire.Status { job = None }) in
  (* byte-at-a-time: Need until the last byte *)
  for i = 0 to String.length f - 1 do
    match Wire.extract_frame (String.sub f 0 i) ~pos:0 with
    | Wire.Need n -> checkb "need is positive" true (n > 0)
    | _ -> Alcotest.failf "prefix %d should be Need" i
  done;
  (match Wire.extract_frame (f ^ f) ~pos:0 with
  | Wire.Frame (_, used) -> (
    match Wire.extract_frame (f ^ f) ~pos:used with
    | Wire.Frame (_, used') -> checki "second frame" (String.length f) used'
    | _ -> Alcotest.fail "second frame")
  | _ -> Alcotest.fail "first frame");
  (* CRC damage *)
  let damaged = Bytes.of_string f in
  Bytes.set damaged (Bytes.length damaged - 1)
    (Char.chr (Char.code (Bytes.get damaged (Bytes.length damaged - 1)) lxor 0xFF));
  (match Wire.extract_frame (Bytes.to_string damaged) ~pos:0 with
  | Wire.Bad e -> checkb "crc damage is Parse" true (e.Bgr_error.code = Bgr_error.Parse)
  | _ -> Alcotest.fail "damaged CRC accepted");
  (* oversized declared length rejected before the body arrives *)
  let oversized = "\x20\x00\x00\x00" in
  match Wire.extract_frame oversized ~pos:0 with
  | Wire.Bad e -> checkb "oversized is Parse" true (e.Bgr_error.code = Bgr_error.Parse)
  | _ -> Alcotest.fail "oversized length accepted"

(* QCheck: encode/decode is the identity over generated messages (the
   generators emit only normalized values — no [Some ""] name, no
   [Some 0] deadline — because decoding normalizes those). *)

let gen_small_string = QCheck.Gen.(string_size ~gen:printable (int_range 0 24))

let gen_id =
  QCheck.Gen.(
    string_size ~gen:(oneofl [ 'a'; 'z'; 'A'; '0'; '9'; '_'; '-'; '.' ]) (int_range 1 12))

let gen_request =
  QCheck.Gen.(
    oneof
      [ (fun st ->
          let wait = bool st and timing_driven = bool st in
          let deadline_ms = (oneof [ return None; map Option.some (int_range 1 1_000_000) ]) st in
          let name = (oneof [ return None; map Option.some gen_id ]) st in
          let design = gen_small_string st in
          let progress = wait && bool st in
          Wire.Route { wait; progress; timing_driven; deadline_ms; name; design });
        (fun st ->
          let wait = bool st in
          Wire.Resume { wait; progress = (wait && bool st); job = gen_id st });
        (fun st -> Wire.Analyze { job = gen_id st });
        (fun st ->
          Wire.Status { job = (oneof [ return None; map Option.some gen_id ]) st });
        return Wire.Shutdown;
        (fun st -> Wire.Cancel { job = gen_id st });
        (fun st -> Wire.Revive { wait = bool st; force = bool st; job = gen_id st });
        (fun st -> Wire.Watch { job = gen_id st });
        (fun st -> Wire.Stats { prom = bool st }) ])

let gen_reply =
  QCheck.Gen.(
    oneof
      [ (fun st -> Wire.Accepted { job = gen_id st });
        (fun st -> Wire.Result { job = gen_id st; ok = bool st; json = gen_small_string st });
        (fun st -> Wire.Rerror { code = gen_id st; message = gen_small_string st });
        (fun st ->
          Wire.Overloaded
            { reason = gen_small_string st;
              depth = int_range 0 0xFFFFFF st;
              cap = int_range 0 0xFFFFFF st });
        (fun st -> Wire.Info { json = gen_small_string st });
        (fun st ->
          Wire.Progress
            { job = gen_id st; seq = int_range 0 0xFFFFFF st; json = gen_small_string st });
        (fun st -> Wire.Rstats { prom = bool st; body = gen_small_string st }) ])

let gen_margin =
  QCheck.Gen.(
    oneofl [ 0.0; -12.5; 3.25; 1e9; -1e9; Float.nan; Float.infinity; Float.neg_infinity ])

let gen_event =
  QCheck.Gen.(
    oneof
      [ (fun st ->
          Worker.Heartbeat
            { phase = gen_small_string st;
              pass = int_range 0 0xFFFFFF st;
              deletions = int_range 0 0xFFFFFF st;
              worst_margin_ps = gen_margin st });
        (fun st -> Worker.Done { json = gen_small_string st });
        (fun st -> Worker.Fail { code = gen_id st; message = gen_small_string st });
        (fun st -> Worker.Obs_summary { json = gen_small_string st }) ])

(* Structural [=] is wrong for events carrying a float (nan <> nan);
   compare margins by bit pattern instead. *)
let event_eq a b =
  match (a, b) with
  | ( Worker.Heartbeat { phase; pass; deletions; worst_margin_ps },
      Worker.Heartbeat
        { phase = phase'; pass = pass'; deletions = deletions'; worst_margin_ps = m' } ) ->
    phase = phase' && pass = pass' && deletions = deletions'
    && Int64.equal (Int64.bits_of_float worst_margin_ps) (Int64.bits_of_float m')
  | a, b -> a = b

let frame_roundtrip_with ~eq encode extract_decode v =
  let f = encode v in
  match Wire.extract_frame f ~pos:0 with
  | Wire.Frame (payload, used) -> (
    used = String.length f
    && match extract_decode payload with Ok v' -> eq v v' | Error _ -> false)
  | _ -> false

let frame_roundtrip_ok encode extract_decode v =
  frame_roundtrip_with ~eq:( = ) encode extract_decode v

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request encode/decode round trip" ~count:500
    (QCheck.make gen_request)
    (frame_roundtrip_ok Wire.encode_request (fun p ->
         Result.map_error (fun _ -> ()) (Wire.decode_request p)))

let prop_reply_roundtrip =
  QCheck.Test.make ~name:"reply encode/decode round trip" ~count:500 (QCheck.make gen_reply)
    (frame_roundtrip_ok Wire.encode_reply (fun p ->
         Result.map_error (fun _ -> ()) (Wire.decode_reply p)))

let prop_event_roundtrip =
  QCheck.Test.make ~name:"worker event encode/decode round trip" ~count:500
    (QCheck.make gen_event)
    (frame_roundtrip_with ~eq:event_eq Worker.encode_event (fun p ->
         Result.map_error (fun _ -> ()) (Worker.decode_event p)))

(* worker pipe frames: fixed cases plus defensive decoding *)

let test_worker_event_cases () =
  List.iter
    (fun ev ->
      let f = Worker.encode_event ev in
      match Wire.extract_frame f ~pos:0 with
      | Wire.Frame (payload, used) ->
        checki "whole frame" (String.length f) used;
        (match Worker.decode_event payload with
        | Ok ev' -> checkb "event round trip" true (event_eq ev ev')
        | Error e -> Alcotest.failf "decode: %s" e.Bgr_error.message)
      | _ -> Alcotest.fail "frame extraction")
    [ Worker.Heartbeat { phase = ""; pass = 0; deletions = 0; worst_margin_ps = 0.0 };
      Worker.Heartbeat
        { phase = "reroute"; pass = 12; deletions = 123456; worst_margin_ps = -42.75 };
      Worker.Heartbeat
        { phase = "route"; pass = 1; deletions = 0; worst_margin_ps = Float.nan };
      Worker.Obs_summary { json = "{\"spans\":[]}" };
      Worker.Done { json = "{}" };
      Worker.Done { json = String.make 4096 'x' };
      Worker.Fail { code = "oom"; message = "worker ran out of memory" };
      Worker.Fail { code = ""; message = "" } ];
  (match Worker.decode_event "" with
  | Error e -> checkb "empty event is Parse" true (e.Bgr_error.code = Bgr_error.Parse)
  | Ok _ -> Alcotest.fail "empty event accepted");
  (match Worker.decode_event "\x7f" with
  | Error e -> checkb "unknown event opcode is Parse" true (e.Bgr_error.code = Bgr_error.Parse)
  | Ok _ -> Alcotest.fail "unknown event opcode accepted");
  match Worker.decode_event "\xc2\x00\x00\x00" with
  | Error e -> checkb "truncated event is Parse" true (e.Bgr_error.code = Bgr_error.Parse)
  | Ok _ -> Alcotest.fail "truncated event accepted"

(* frame length cap: exactly-at-cap accepted, one past rejected *)

let be32 v =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((v lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (v land 0xFF));
  Bytes.to_string b

let test_frame_cap_edges () =
  (* a header declaring exactly the cap asks for more bytes... *)
  (match Wire.extract_frame (be32 Wire.max_payload) ~pos:0 with
  | Wire.Need n -> checki "needs payload + crc" (Wire.max_payload + 4) n
  | _ -> Alcotest.fail "at-cap header rejected");
  (* ...and the complete at-cap frame decodes *)
  let payload = String.make Wire.max_payload 'a' in
  let frame = be32 Wire.max_payload ^ payload ^ be32 (Crc32.string payload) in
  (match Wire.extract_frame frame ~pos:0 with
  | Wire.Frame (p, used) ->
    checki "used the whole frame" (String.length frame) used;
    checki "payload intact" Wire.max_payload (String.length p)
  | _ -> Alcotest.fail "at-cap frame rejected");
  (* one byte past the cap is refused from the header alone *)
  (match Wire.extract_frame (be32 (Wire.max_payload + 1)) ~pos:0 with
  | Wire.Bad e -> checkb "over-cap is Parse" true (e.Bgr_error.code = Bgr_error.Parse)
  | _ -> Alcotest.fail "over-cap header accepted");
  (* the zero-length payload is a frame, not a protocol error... *)
  match Wire.extract_frame (be32 0 ^ be32 (Crc32.string "")) ~pos:0 with
  | Wire.Frame (p, used) ->
    checki "empty frame used" 8 used;
    checki "empty payload" 0 (String.length p);
    (* ...and the decoder refuses the empty body downstream *)
    (match Wire.decode_request p with
    | Error e -> checkb "empty body is Parse" true (e.Bgr_error.code = Bgr_error.Parse)
    | Ok _ -> Alcotest.fail "empty request body accepted")
  | _ -> Alcotest.fail "empty frame rejected"

let test_job_ids () =
  List.iter
    (fun id -> checkb id true (Wire.valid_job_id id))
    [ "job-000001"; "a"; "X9"; "_x"; "a.b-c_d"; String.make 64 'a' ];
  List.iter
    (fun id -> checkb ("bad " ^ id) false (Wire.valid_job_id id))
    [ ""; "-x"; ".x"; "a b"; "a/b"; "../etc"; String.make 65 'a' ]

(* --- retry policy (injected sleep: the schedule must be exact) --------- *)

let test_retry_schedule () =
  let slept = ref [] in
  let sleep ms = slept := ms :: !slept in
  let fail_always ~attempt:_ =
    Error (Bgr_error.make Bgr_error.Io_error "disk hiccup")
  in
  let o = Retry.run ~max_attempts:4 ~base_ms:100.0 ~sleep_ms:sleep fail_always in
  checki "four attempts" 4 o.Retry.attempts;
  checkb "still failed" true (Result.is_error o.Retry.result);
  check
    Alcotest.(list (float 0.0))
    "deterministic doubling" [ 100.0; 200.0; 400.0 ] o.Retry.slept_ms;
  check Alcotest.(list (float 0.0)) "recorder agrees" [ 400.0; 200.0; 100.0 ] !slept;
  (* second run: identical schedule (no jitter) *)
  let o2 = Retry.run ~max_attempts:4 ~base_ms:100.0 ~sleep_ms:ignore fail_always in
  check Alcotest.(list (float 0.0)) "reproducible" o.Retry.slept_ms o2.Retry.slept_ms

let test_retry_success_and_default () =
  let succeed_on n ~attempt =
    if attempt >= n then Ok attempt else Error (Bgr_error.make Bgr_error.Fault "injected")
  in
  let o = Retry.run ~base_ms:250.0 ~sleep_ms:ignore (succeed_on 2) in
  checki "default is one bounded retry" 2 o.Retry.attempts;
  checkb "succeeded" true (o.Retry.result = Ok 2);
  check Alcotest.(list (float 0.0)) "one backoff" [ 250.0 ] o.Retry.slept_ms;
  (* default budget refuses a third attempt *)
  let o = Retry.run ~sleep_ms:ignore (succeed_on 3) in
  checki "capped at two" 2 o.Retry.attempts;
  checkb "failed" true (Result.is_error o.Retry.result)

let test_retry_non_retryable () =
  List.iter
    (fun code ->
      let o =
        Retry.run ~max_attempts:5 ~sleep_ms:(fun _ -> Alcotest.fail "must not sleep")
          (fun ~attempt:_ -> Error (Bgr_error.make code "hopeless"))
      in
      checki (Bgr_error.code_name code ^ " gets one attempt") 1 o.Retry.attempts;
      check Alcotest.(list (float 0.0)) "no backoff" [] o.Retry.slept_ms)
    [ Bgr_error.Parse; Bgr_error.Validate; Bgr_error.Geometry; Bgr_error.Unroutable;
      Bgr_error.Deadline; Bgr_error.Internal ];
  checkb "fault is retryable" true (Retry.retryable Bgr_error.Fault);
  checkb "io is retryable" true (Retry.retryable Bgr_error.Io_error);
  Alcotest.check (Alcotest.float 0.0) "backoff formula" 2000.0
    (Retry.backoff_ms ~base_ms:250.0 ~attempt:4 ())

let test_retry_cap_and_jitter () =
  Alcotest.check (Alcotest.float 0.0) "cap bounds the doubling" 500.0
    (Retry.backoff_ms ~max_ms:500.0 ~base_ms:250.0 ~attempt:4 ());
  Alcotest.check (Alcotest.float 0.0) "cap leaves small backoffs alone" 250.0
    (Retry.backoff_ms ~max_ms:30_000.0 ~base_ms:250.0 ~attempt:1 ());
  let j = Retry.backoff_ms ~jitter_seed:42 ~base_ms:100.0 ~attempt:1 () in
  Alcotest.check (Alcotest.float 0.0) "jitter is deterministic" j
    (Retry.backoff_ms ~jitter_seed:42 ~base_ms:100.0 ~attempt:1 ());
  checkb "jitter within [base, 1.25*base)" true (j >= 100.0 && j < 125.0);
  Alcotest.check (Alcotest.float 0.0) "cap applies after jitter" 100.0
    (Retry.backoff_ms ~max_ms:100.0 ~jitter_seed:42 ~base_ms:100.0 ~attempt:1 ());
  let js =
    List.init 16 (fun s -> Retry.backoff_ms ~jitter_seed:s ~base_ms:100.0 ~attempt:1 ())
  in
  checkb "distinct seeds decorrelate" true (List.length (List.sort_uniq compare js) > 1)

let test_retry_giveup () =
  let fail ~attempt:_ = Error (Bgr_error.make Bgr_error.Fault "injected") in
  (* giveup lands during the backoff sleep: no further attempt *)
  let checks = ref 0 in
  let giveup () =
    incr checks;
    !checks >= 2
  in
  let o = Retry.run ~max_attempts:3 ~sleep_ms:ignore ~giveup fail in
  checki "stopped after the first backoff" 1 o.Retry.attempts;
  checkb "flagged as given up" true o.Retry.gave_up;
  checkb "still failed" true (Result.is_error o.Retry.result);
  (* giveup already pending before any retry *)
  let o = Retry.run ~max_attempts:3 ~sleep_ms:ignore ~giveup:(fun () -> true) fail in
  checki "one attempt" 1 o.Retry.attempts;
  checkb "gave up without sleeping" true o.Retry.gave_up;
  (* a success never reports gave_up, even with giveup pending *)
  let o = Retry.run ~max_attempts:3 ~sleep_ms:ignore ~giveup:(fun () -> true) (fun ~attempt -> Ok attempt) in
  checkb "success is success" true (o.Retry.result = Ok 1 && not o.Retry.gave_up);
  (* the default sleep is interruptible: giveup bounds a 60 s backoff *)
  let t0 = Unix.gettimeofday () in
  let giveup () = Unix.gettimeofday () -. t0 > 0.15 in
  let o = Retry.run ~max_attempts:2 ~base_ms:60_000.0 ~giveup fail in
  checkb "interrupted the 60 s backoff" true (Unix.gettimeofday () -. t0 < 10.0);
  checkb "gave up" true o.Retry.gave_up

(* --- spool ------------------------------------------------------------- *)

let test_spool_lifecycle () =
  let root = Filename.concat (fresh_dir ()) "spool" in
  let sp = Spool.open_root root in
  check Alcotest.string "first id" "job-000001" (Spool.fresh_id sp);
  let job =
    { Spool.j_id = "job-000001"; j_timing_driven = true; j_deadline_ms = Some 900;
      j_attempts = 0; j_kills = 0; j_last_kill = ""; j_kill_history = [] }
  in
  Spool.accept sp job ~design_text:"rows 1\n";
  checkb "exists" true (Spool.exists sp "job-000001");
  check Alcotest.string "next id skips it" "job-000002" (Spool.fresh_id sp);
  (match Spool.load_job sp "job-000001" with
  | Ok j -> checkb "manifest round trip" true (j = job)
  | Error e -> Alcotest.failf "load: %s" e.Bgr_error.message);
  (match Spool.scan sp with
  | [ j ] -> check Alcotest.string "scan finds it" "job-000001" j.Spool.j_id
  | l -> Alcotest.failf "scan found %d jobs" (List.length l));
  let job = Spool.record_attempt sp job in
  checki "attempt recorded" 1 job.Spool.j_attempts;
  checkb "attempt persisted" true
    ((Result.get_ok (Spool.load_job sp "job-000001")).Spool.j_attempts = 1);
  Spool.mark_done sp "job-000001" ~json:"{\"ok\":true}";
  (match Spool.state_of sp "job-000001" with
  | Some (Spool.Done json) -> check Alcotest.string "result json" "{\"ok\":true}" json
  | _ -> Alcotest.fail "not done");
  checki "done jobs drop out of scan" 0 (List.length (Spool.scan sp));
  (* a second job goes to the dead-letter dir and comes back *)
  let j2 = { job with Spool.j_id = "job-000002"; j_attempts = 2 } in
  Spool.accept sp j2 ~design_text:"rows 2\n";
  Spool.retire sp "job-000002" ~json:"{\"ok\":false}";
  (match Spool.state_of sp "job-000002" with
  | Some (Spool.Dead json) -> check Alcotest.string "error json" "{\"ok\":false}" json
  | _ -> Alcotest.fail "not dead");
  checkb "dead id still taken" true (Spool.exists sp "job-000002");
  (* attempts stay readable after retirement *)
  checki "dead manifest readable" 2
    ((Result.get_ok (Spool.load_job sp "job-000002")).Spool.j_attempts);
  (match Spool.revive sp "job-000002" with
  | Ok j -> checki "revive resets attempts" 0 j.Spool.j_attempts
  | Error e -> Alcotest.failf "revive: %s" e.Bgr_error.message);
  (match Spool.state_of sp "job-000002" with
  | Some (Spool.Pending _) -> ()
  | _ -> Alcotest.fail "revived job not pending");
  (* corrupt manifests are skipped with a warning, not a crash *)
  let oc = open_out (Filename.concat (Spool.job_dir sp "job-000002") Spool.job_file) in
  output_string oc "not a manifest\n";
  close_out oc;
  checki "corrupt manifest skipped" 0 (List.length (Spool.scan sp));
  checki "with a warning" 1 (List.length (Spool.scan_warnings sp))

let test_spool_kills_and_quarantine () =
  let root = Filename.concat (fresh_dir ()) "spool" in
  let sp = Spool.open_root root in
  let job =
    { Spool.j_id = "victim"; j_timing_driven = true; j_deadline_ms = None; j_attempts = 1;
      j_kills = 0; j_last_kill = ""; j_kill_history = [] }
  in
  Spool.accept sp job ~design_text:"rows 1\n";
  let job = Spool.record_kill sp job ~reason:"hang" in
  checki "kill counted" 1 job.Spool.j_kills;
  check Alcotest.string "reason kept" "hang" job.Spool.j_last_kill;
  (match Spool.load_job sp "victim" with
  | Ok j -> checkb "kill persisted" true (j.Spool.j_kills = 1 && j.Spool.j_last_kill = "hang")
  | Error e -> Alcotest.failf "load: %s" e.Bgr_error.message);
  let job = Spool.record_kill sp job ~reason:"signal-9" in
  checki "kills accumulate" 2 job.Spool.j_kills;
  checkb "kill history in order" true (job.Spool.j_kill_history = [ "hang"; "signal-9" ]);
  (match Spool.load_job sp "victim" with
  | Ok j ->
    checkb "kill history persisted" true (j.Spool.j_kill_history = [ "hang"; "signal-9" ])
  | Error e -> Alcotest.failf "load: %s" e.Bgr_error.message);
  Spool.quarantine sp "victim" ~json:"{\"code\":\"quarantined\"}";
  (match Spool.state_of sp "victim" with
  | Some (Spool.Quarantined json) ->
    check Alcotest.string "error json" "{\"code\":\"quarantined\"}" json
  | _ -> Alcotest.fail "not quarantined");
  checkb "id still taken" true (Spool.exists sp "victim");
  checki "the startup scan never requeues it" 0 (List.length (Spool.scan sp));
  (match Spool.load_job sp "victim" with
  | Ok j -> checkb "manifest readable from quarantine/" true (j.Spool.j_kills = 2)
  | Error e -> Alcotest.failf "load from quarantine: %s" e.Bgr_error.message);
  (match Spool.revive sp "victim" with
  | Error e ->
    checkb "unforced revive is Validate" true (e.Bgr_error.code = Bgr_error.Validate);
    checkb "and names the quarantine" true (contains e.Bgr_error.message "quarantine")
  | Ok _ -> Alcotest.fail "unforced revive of a quarantined job accepted");
  (match Spool.revive ~force:true sp "victim" with
  | Ok j ->
    checkb "forced revive resets all counters" true
      (j.Spool.j_attempts = 0 && j.Spool.j_kills = 0 && j.Spool.j_last_kill = ""
      && j.Spool.j_kill_history = [])
  | Error e -> Alcotest.failf "forced revive: %s" e.Bgr_error.message);
  match Spool.state_of sp "victim" with
  | Some (Spool.Pending _) -> ()
  | _ -> Alcotest.fail "revived job not pending"

let test_spool_manifest_compat () =
  (* a manifest from before the kill counters existed still parses... *)
  let dir = fresh_dir () in
  let oc = open_out (Filename.concat dir "JOB") in
  output_string oc "bgr-job 1\nid old\ntiming_driven true\ndeadline_ms 0\nattempts 1\n";
  close_out oc;
  (match Spool.read_manifest dir with
  | Ok j ->
    checki "attempts read" 1 j.Spool.j_attempts;
    checki "kills default to zero" 0 j.Spool.j_kills;
    check Alcotest.string "no last kill" "" j.Spool.j_last_kill
  | Error e -> Alcotest.failf "old manifest rejected: %s" e.Bgr_error.message);
  (* ...and a job that was never killed writes that identical old shape
     back, so a downgraded daemon can still read the spool *)
  let sp = Spool.open_root (Filename.concat dir "spool") in
  Spool.accept sp
    { Spool.j_id = "clean"; j_timing_driven = true; j_deadline_ms = None; j_attempts = 0;
      j_kills = 0; j_last_kill = ""; j_kill_history = [] }
    ~design_text:"rows 1\n";
  let text =
    let ic = open_in (Filename.concat (Spool.job_dir sp "clean") Spool.job_file) in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  checkb "clean manifest has no kill lines" false (contains text "kills")

(* --- in-process servers ------------------------------------------------ *)

type server = { cfg : Serve.config; domain : (Serve.stats, exn) result Domain.t }

let start_server ?(cap = 8) ?(max_attempts = 2) ?(backoff_ms = 30.0) ?isolation
    ?heartbeat_timeout_ms ?(quarantine_kills = 3) ?(log = ignore) ?(tweak = Fun.id) root =
  let base =
    Serve.default_config
      ~socket_path:(Filename.concat root "s.sock")
      ~spool_root:(Filename.concat root "spool")
  in
  let cfg =
    { base with
      Serve.queue_cap = cap;
      max_attempts;
      backoff_base_ms = backoff_ms;
      job_domains = 1;
      isolation = Option.value isolation ~default:base.Serve.isolation;
      heartbeat_timeout_ms =
        Option.value heartbeat_timeout_ms ~default:base.Serve.heartbeat_timeout_ms;
      quarantine_kills;
      log }
  in
  let cfg = tweak cfg in
  let domain =
    Domain.spawn (fun () -> match Serve.run cfg with s -> Ok s | exception e -> Error e)
  in
  (* wait for the socket to appear *)
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (Sys.file_exists cfg.Serve.socket_path)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  { cfg; domain }

let stop_server srv =
  (match Serve_client.connect srv.cfg.Serve.socket_path with
  | Ok c ->
    ignore (Serve_client.request ~timeout_s:10.0 c Wire.Shutdown);
    Serve_client.close c
  | Error _ -> ());
  match Domain.join srv.domain with
  | Ok stats -> stats
  | Error e -> Alcotest.failf "server died: %s" (Printexc.to_string e)

let client srv =
  (* the socket file appears at bind, a hair before listen: retry the
     refused-connection window instead of racing it *)
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    match Serve_client.connect srv.cfg.Serve.socket_path with
    | Ok c -> c
    | Error e when Unix.gettimeofday () < deadline ->
      ignore e;
      Unix.sleepf 0.02;
      go ()
    | Error e -> Alcotest.failf "connect: %s" e.Bgr_error.message
  in
  go ()

let rq ?(timeout_s = 60.0) c req =
  match Serve_client.request ~timeout_s c req with
  | Ok r -> r
  | Error e -> Alcotest.failf "request: %s" e.Bgr_error.message

let submit_mini ?name ?(wait = false) ?(progress = false) () =
  Wire.Route
    { wait;
      progress;
      timing_driven = true;
      deadline_ms = None;
      name;
      design = Lazy.force mini_text }

(* --- worker isolation plumbing ----------------------------------------- *)

let serve_exe =
  lazy
    (let candidates =
       [ "../bin/bgr_serve.exe"; "_build/default/bin/bgr_serve.exe"; "bin/bgr_serve.exe" ]
     in
     match List.find_opt Sys.file_exists candidates with
     | Some p -> if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p
     | None -> Alcotest.fail "bgr_serve.exe not found (build bin/ first)")

let workers_isolation () = Serve.Workers [| Lazy.force serve_exe; "worker" |]

(* Chaos plans reach worker subprocesses through the environment (each
   is a fresh process that loads BGR_FAULT_PLAN on first use).  The
   test process pins its own env-plan load first — [Fault.active]
   forces it — so only the workers see the plan. *)
let with_worker_fault_plan plan f =
  ignore (Fault.active ());
  Unix.putenv "BGR_FAULT_PLAN" plan;
  Fun.protect ~finally:(fun () -> Unix.putenv "BGR_FAULT_PLAN" "") f

let json_field json name =
  match Qjson.parse json with
  | Error m -> Alcotest.failf "bad json %s: %s" json m
  | Ok j -> Qjson.member name j

let hash_of_json json =
  match Option.bind (json_field json "deletion_hash") Qjson.to_str with
  | Some s -> int_of_string s
  | None -> Alcotest.failf "no deletion_hash in %s" json

(* --- end to end -------------------------------------------------------- *)

let test_end_to_end () =
  let root = fresh_dir () in
  let srv = start_server root in
  let c = client srv in
  (* route, wait, compare against the uninterrupted in-process hash *)
  (match rq c (submit_mini ~name:"mini" ~wait:true ()) with
  | Wire.Accepted { job } -> (
    check Alcotest.string "named job" "mini" job;
    match Serve_client.next_reply ~timeout_s:120.0 c with
    | Ok (Wire.Result { ok; json; _ }) ->
      checkb "routed" true ok;
      checki "daemon hash = direct-run hash" (Lazy.force mini_hash) (hash_of_json json)
    | other -> Alcotest.failf "no result: %s" (match other with Error e -> e.Bgr_error.message | _ -> "wrong reply"))
  | _ -> Alcotest.fail "not accepted");
  (* duplicate name refused *)
  (match rq c (submit_mini ~name:"mini" ()) with
  | Wire.Rerror { code; _ } -> check Alcotest.string "duplicate id" "validate" code
  | _ -> Alcotest.fail "duplicate name accepted");
  (* malformed design rejected at admission, nothing spooled *)
  (match
     rq c
       (Wire.Route
          { wait = false;
            progress = false;
            timing_driven = true;
            deadline_ms = None;
            name = Some "broken";
            design = "rows ???\n" })
   with
  | Wire.Rerror { code; _ } -> check Alcotest.string "parse reject" "parse" code
  | _ -> Alcotest.fail "garbage design accepted");
  checkb "nothing spooled for it" false
    (Sys.file_exists (Filename.concat srv.cfg.Serve.spool_root "jobs/broken"));
  (* job status, daemon status, analyze *)
  (match rq c (Wire.Status { job = Some "mini" }) with
  | Wire.Info { json } -> (
    match Option.bind (json_field json "state") Qjson.to_str with
    | Some s -> check Alcotest.string "state" "done" s
    | None -> Alcotest.fail "no state")
  | _ -> Alcotest.fail "status");
  (match rq c (Wire.Status { job = None }) with
  | Wire.Info { json } ->
    checkb "daemon status has depth" true (json_field json "queue_depth" <> None);
    checkb "daemon status counts worker kills" true (json_field json "worker_kills" <> None);
    checkb "daemon status carries obs warnings" true
      (match json_field json "obs_warnings" with Some (Qjson.Arr _) -> true | _ -> false)
  | _ -> Alcotest.fail "daemon status");
  (match rq c (Wire.Analyze { job = "mini" }) with
  | Wire.Info { json } -> (
    match Option.bind (json_field json "schema") Qjson.to_str with
    | Some s -> check Alcotest.string "quality schema" Quality.schema s
    | None -> Alcotest.fail "no schema")
  | _ -> Alcotest.fail "analyze");
  (* waiting on a finished job returns its stored result immediately *)
  (match rq c (Wire.Resume { wait = true; progress = false; job = "mini" }) with
  | Wire.Result { ok; json; _ } ->
    checkb "stored ok" true ok;
    checki "stored hash" (Lazy.force mini_hash) (hash_of_json json)
  | _ -> Alcotest.fail "resume of done job");
  (* unknown job *)
  (match rq c (Wire.Status { job = Some "nope" }) with
  | Wire.Rerror { code; _ } -> check Alcotest.string "unknown job" "validate" code
  | _ -> Alcotest.fail "unknown job accepted");
  Serve_client.close c;
  let stats = stop_server srv in
  checki "accepted" 1 stats.Serve.s_accepted;
  checki "completed" 1 stats.Serve.s_completed;
  checki "no failures" 0 stats.Serve.s_failed

(* --- admission control + retry under a transient fault ----------------- *)

let test_overload_and_retry () =
  let root = fresh_dir () in
  Fault.with_plan (plan_of "seed=3;serve.job:n=1") @@ fun () ->
  let srv = start_server ~cap:1 ~backoff_ms:500.0 root in
  let c = client srv in
  (* job A: first attempt trips the fault, the retry succeeds *)
  (match rq c (submit_mini ~name:"a" ~wait:true ()) with
  | Wire.Accepted _ -> ()
  | _ -> Alcotest.fail "A not accepted");
  (* while A retries (500 ms backoff), the queue is full: B is shed *)
  let c2 = client srv in
  (match rq c2 (submit_mini ~name:"b" ()) with
  | Wire.Overloaded { reason; depth; cap } ->
    check Alcotest.string "reason" "queue full" reason;
    checki "cap" 1 cap;
    checkb "depth at cap" true (depth >= 1)
  | _ -> Alcotest.fail "B was not shed");
  Serve_client.close c2;
  (match Serve_client.next_reply ~timeout_s:120.0 c with
  | Ok (Wire.Result { ok; json; _ }) ->
    checkb "A routed on retry" true ok;
    checki "hash still right" (Lazy.force mini_hash) (hash_of_json json);
    (match Option.bind (json_field json "attempts") Qjson.to_int with
    | Some a -> checki "two attempts" 2 a
    | None -> Alcotest.fail "no attempts field")
  | _ -> Alcotest.fail "A never finished");
  Serve_client.close c;
  let stats = stop_server srv in
  checki "one retry" 1 stats.Serve.s_retried;
  checki "one rejection" 1 stats.Serve.s_rejected;
  checki "completed" 1 stats.Serve.s_completed

(* --- dead-letter + revive ---------------------------------------------- *)

let test_dead_letter_and_revive () =
  let root = fresh_dir () in
  (* life 1: every snapshot faults mid-route, so both attempts fail
     AFTER the journal exists — the retirement must keep it *)
  (Fault.with_plan (plan_of "persist.snapshot:always") @@ fun () ->
   let srv = start_server ~backoff_ms:10.0 root in
   let c = client srv in
   (match rq c (submit_mini ~name:"doomed" ~wait:true ()) with
   | Wire.Accepted _ -> (
     match Serve_client.next_reply ~timeout_s:60.0 c with
     | Ok (Wire.Result { ok; json; _ }) ->
       checkb "failed" false ok;
       (match Option.bind (json_field json "code") Qjson.to_str with
       | Some code -> check Alcotest.string "fault class" "fault" code
       | None -> Alcotest.fail "no code");
       (match Option.bind (json_field json "attempts") Qjson.to_int with
       | Some a -> checki "both attempts burned" 2 a
       | None -> Alcotest.fail "no attempts")
     | _ -> Alcotest.fail "no failure result")
   | _ -> Alcotest.fail "not accepted");
   Serve_client.close c;
   let stats = stop_server srv in
   checki "dead-lettered" 1 stats.Serve.s_failed;
   checki "retried once" 1 stats.Serve.s_retried);
  let dead = Filename.concat root "spool/dead/doomed" in
  checkb "dead dir" true (Sys.file_exists dead);
  checkb "ERROR recorded" true (Sys.file_exists (Filename.concat dead Spool.error_file));
  checkb "journal kept for post-mortem" true
    (Sys.file_exists (Filename.concat dead Persist.journal_file));
  (* life 2: no faults; resume revives it and it completes *)
  let srv = start_server root in
  let c = client srv in
  (match rq c (Wire.Resume { wait = true; progress = false; job = "doomed" }) with
  | Wire.Accepted _ -> (
    match Serve_client.next_reply ~timeout_s:120.0 c with
    | Ok (Wire.Result { ok; json; _ }) ->
      checkb "revived and routed" true ok;
      checki "hash right after revival" (Lazy.force mini_hash) (hash_of_json json)
    | _ -> Alcotest.fail "no result")
  | _ -> Alcotest.fail "revive refused");
  Serve_client.close c;
  ignore (stop_server srv)

(* --- supervisor requeue ------------------------------------------------ *)

let test_supervisor_requeue () =
  let root = fresh_dir () in
  (* an accepted job from a previous life: spooled, never run *)
  let sp = Spool.open_root (Filename.concat root "spool") in
  Spool.accept sp
    { Spool.j_id = "leftover"; j_timing_driven = true; j_deadline_ms = None; j_attempts = 0;
      j_kills = 0; j_last_kill = ""; j_kill_history = [] }
    ~design_text:(Lazy.force mini_text);
  let srv = start_server root in
  let c = client srv in
  (match rq ~timeout_s:120.0 c (Wire.Resume { wait = true; progress = false; job = "leftover" }) with
  | Wire.Accepted _ -> (
    match Serve_client.next_reply ~timeout_s:120.0 c with
    | Ok (Wire.Result { ok; json; _ }) ->
      checkb "leftover completed" true ok;
      checki "hash" (Lazy.force mini_hash) (hash_of_json json)
    | _ -> Alcotest.fail "no result")
  | Wire.Result { ok; json; _ } ->
    (* the supervisor may already have finished it *)
    checkb "leftover completed" true ok;
    checki "hash" (Lazy.force mini_hash) (hash_of_json json)
  | _ -> Alcotest.fail "leftover unknown to the daemon");
  Serve_client.close c;
  let stats = stop_server srv in
  checki "requeued by the supervisor" 1 stats.Serve.s_requeued;
  checki "completed" 1 stats.Serve.s_completed

(* --- graceful drain ---------------------------------------------------- *)

let test_drain_keeps_queued_jobs () =
  let root = fresh_dir () in
  let stats =
    Fault.with_plan (plan_of "serve.job:n=1") @@ fun () ->
    (* the fault makes job A retry with a long backoff, holding the
       executor busy while B and C queue behind it *)
    let srv = start_server ~cap:8 ~backoff_ms:1500.0 root in
    let c = client srv in
    (match rq c (submit_mini ~name:"a" ~wait:true ()) with
    | Wire.Accepted _ -> ()
    | _ -> Alcotest.fail "A not accepted");
    let cb = client srv in
    (match rq cb (submit_mini ~name:"b" ~wait:true ()) with
    | Wire.Accepted _ -> ()
    | _ -> Alcotest.fail "B not accepted");
    (match rq cb (submit_mini ~name:"c" ()) with
    | Wire.Accepted _ -> ()
    | _ -> Alcotest.fail "C not accepted");
    (* drain: A is mid-backoff, so the drain interrupts the sleep and
       A stays spooled alongside B and C; both waiters are told so *)
    let cs = client srv in
    (match rq cs Wire.Shutdown with
    | Wire.Info _ -> ()
    | _ -> Alcotest.fail "shutdown refused");
    (* submissions during a drain are shed, not spooled *)
    (match rq cs (submit_mini ~name:"late" ()) with
    | Wire.Overloaded { reason; _ } -> check Alcotest.string "late is shed" "draining" reason
    | _ -> Alcotest.fail "late submission accepted during drain");
    Serve_client.close cs;
    (match Serve_client.next_reply ~timeout_s:120.0 c with
    | Ok (Wire.Rerror { code; _ }) -> check Alcotest.string "A's waiter told" "draining" code
    | _ -> Alcotest.fail "A's waiter not notified");
    (match Serve_client.next_reply ~timeout_s:30.0 cb with
    | Ok (Wire.Rerror { code; _ }) -> check Alcotest.string "B's waiter told" "draining" code
    | _ -> Alcotest.fail "B's waiter not notified");
    Serve_client.close c;
    Serve_client.close cb;
    match Domain.join srv.domain with
    | Ok stats -> stats
    | Error e -> Alcotest.failf "server died: %s" (Printexc.to_string e)
  in
  checki "nothing completed during drain" 0 stats.Serve.s_completed;
  checki "nothing dead-lettered" 0 stats.Serve.s_failed;
  (* all three survive on disk for the next daemon, which finishes them *)
  let sp = Spool.open_root (Filename.concat root "spool") in
  checki "three jobs still spooled" 3 (List.length (Spool.scan sp));
  let srv = start_server root in
  let c = client srv in
  (match rq c (Wire.Resume { wait = true; progress = false; job = "b" }) with
  | Wire.Accepted _ -> (
    match Serve_client.next_reply ~timeout_s:120.0 c with
    | Ok (Wire.Result { ok; _ }) -> checkb "B finished in life 2" true ok
    | _ -> Alcotest.fail "B lost in life 2")
  | Wire.Result { ok; _ } -> checkb "B finished in life 2" true ok
  | _ -> Alcotest.fail "B unknown in life 2");
  Serve_client.close c;
  let stats = stop_server srv in
  checki "life 2 requeued all three" 3 stats.Serve.s_requeued

(* --- the worker supervisor, against scripted fake workers -------------- *)

let write_feed dir name events =
  let path = Filename.concat dir name in
  let oc = open_out_bin path in
  output_string oc Worker.magic;
  List.iter (fun e -> output_string oc (Worker.encode_event e)) events;
  close_out oc;
  Filename.quote path

let sh script = [| "/bin/sh"; "-c"; script |]

let test_supervise_well_behaved () =
  let dir = fresh_dir () in
  let feed =
    write_feed dir "ok"
      [ Worker.Heartbeat { phase = "route"; pass = 1; deletions = 7; worst_margin_ps = -3.5 };
        Worker.Done { json = "{\"ok\":true}" } ]
  in
  let beats = ref [] in
  let summary = ref None in
  (match
     Worker.supervise ~log:ignore
       ~on_progress:(fun p -> beats := p :: !beats)
       ~on_obs:(fun j -> summary := Some j)
       ~argv:(sh ("cat " ^ feed)) ()
   with
  | Ok json -> check Alcotest.string "done json" "{\"ok\":true}" json
  | Error _ -> Alcotest.fail "well-behaved worker misclassified");
  (match !beats with
  | [ p ] ->
    check Alcotest.string "phase" "route" p.Worker.p_phase;
    checki "pass" 1 p.Worker.p_pass;
    checki "deletions" 7 p.Worker.p_deletions;
    checkb "margin carried" true (p.Worker.p_worst_margin_ps = -3.5)
  | l -> Alcotest.failf "saw %d heartbeats" (List.length l));
  checkb "no obs summary from a plain worker" true (!summary = None);
  (* an obs summary frame reaches the supervisor's callback *)
  let feed =
    write_feed dir "obs"
      [ Worker.Obs_summary { json = "{\"spans\":[]}" }; Worker.Done { json = "{}" } ]
  in
  (match
     Worker.supervise ~log:ignore ~on_obs:(fun j -> summary := Some j)
       ~argv:(sh ("cat " ^ feed)) ()
   with
  | Ok _ -> check Alcotest.string "summary delivered" "{\"spans\":[]}"
              (Option.value !summary ~default:"<none>")
  | Error _ -> Alcotest.fail "obs-reporting worker misclassified");
  (* structured failure passes through verbatim *)
  let feed = write_feed dir "fail" [ Worker.Fail { code = "unroutable"; message = "no tracks" } ] in
  match Worker.supervise ~log:ignore ~argv:(sh ("cat " ^ feed)) () with
  | Error (Worker.Failed { code; message }) ->
    check Alcotest.string "code" "unroutable" code;
    check Alcotest.string "message" "no tracks" message
  | _ -> Alcotest.fail "structured failure misclassified"

let test_supervise_kills_and_exits () =
  let dir = fresh_dir () in
  let greeting = write_feed dir "greet" [] in
  (* exit without a result *)
  (match Worker.supervise ~log:ignore ~argv:(sh ("cat " ^ greeting ^ "; exit 3")) () with
  | Error (Worker.Failed { code; message }) ->
    check Alcotest.string "internal" "internal" code;
    checkb "names the exit code" true (contains message "code 3")
  | _ -> Alcotest.fail "silent exit misclassified");
  (* the OOM exit code classifies as an OOM kill even with no frame *)
  (match
     Worker.supervise ~log:ignore
       ~argv:(sh (Printf.sprintf "cat %s; exit %d" greeting Worker.oom_exit_code))
       ()
   with
  | Error (Worker.Killed { reason = Worker.Oom; _ }) -> ()
  | _ -> Alcotest.fail "oom exit misclassified");
  (* ...as does a reported oom frame *)
  let oom = write_feed dir "oom" [ Worker.Fail { code = "oom"; message = "out of memory" } ] in
  (match Worker.supervise ~log:ignore ~argv:(sh ("cat " ^ oom)) () with
  | Error (Worker.Killed { reason = Worker.Oom; _ }) -> ()
  | _ -> Alcotest.fail "oom frame misclassified");
  (* death by external signal *)
  (match Worker.supervise ~log:ignore ~argv:(sh ("cat " ^ greeting ^ "; kill -KILL $$")) () with
  | Error (Worker.Killed { reason = Worker.Signaled s; _ }) ->
    check Alcotest.string "posix signal number" "signal-9"
      (Worker.kill_reason_string (Worker.Signaled s))
  | _ -> Alcotest.fail "signal death misclassified");
  (* heartbeat silence: the watchdog kills within its timeout *)
  let t0 = Unix.gettimeofday () in
  (match
     Worker.supervise ~heartbeat_timeout_ms:300.0 ~log:ignore
       ~argv:(sh ("cat " ^ greeting ^ "; sleep 60")) ()
   with
  | Error (Worker.Killed { reason = Worker.Hang; _ }) ->
    checkb "killed promptly, not after 60 s" true (Unix.gettimeofday () -. t0 < 30.0)
  | _ -> Alcotest.fail "hang misclassified");
  (* hard wall deadline, heartbeats notwithstanding *)
  (match
     Worker.supervise ~heartbeat_timeout_ms:600_000.0 ~hard_deadline_ms:300.0 ~log:ignore
       ~argv:(sh ("cat " ^ greeting ^ "; sleep 60")) ()
   with
  | Error (Worker.Killed { reason = Worker.Hard_deadline; _ }) -> ()
  | _ -> Alcotest.fail "hard deadline misclassified");
  (* cancel request *)
  (match
     Worker.supervise ~canceled:(fun () -> true) ~log:ignore
       ~argv:(sh ("cat " ^ greeting ^ "; sleep 60")) ()
   with
  | Error (Worker.Killed { reason = Worker.Canceled; _ }) -> ()
  | _ -> Alcotest.fail "cancel misclassified");
  (* protocol garbage: killed, surfaced as an internal failure *)
  (match Worker.supervise ~log:ignore ~argv:(sh "printf 'GARBAGE!'; sleep 60") () with
  | Error (Worker.Failed { code; message }) ->
    check Alcotest.string "internal" "internal" code;
    checkb "says protocol" true (contains message "protocol")
  | _ -> Alcotest.fail "protocol garbage misclassified");
  (* a spawn fault surfaces as Spawn_error, not an exception *)
  Fault.with_plan (plan_of "serve.worker.spawn:always") @@ fun () ->
  match Worker.supervise ~log:ignore ~argv:(sh "true") () with
  | Error (Worker.Spawn_error _) -> ()
  | _ -> Alcotest.fail "spawn fault misclassified"

(* --- worker isolation, end to end -------------------------------------- *)

let test_worker_isolation_e2e () =
  let root = fresh_dir () in
  let srv = start_server ~isolation:(workers_isolation ()) root in
  let c = client srv in
  (match rq c (submit_mini ~name:"w" ~wait:true ()) with
  | Wire.Accepted _ -> (
    match Serve_client.next_reply ~timeout_s:120.0 c with
    | Ok (Wire.Result { ok; json; _ }) ->
      checkb "routed in a worker" true ok;
      checki "worker hash = in-process hash" (Lazy.force mini_hash) (hash_of_json json);
      (match Option.bind (json_field json "attempts") Qjson.to_int with
      | Some a -> checki "one attempt" 1 a
      | None -> Alcotest.fail "no attempts field")
    | _ -> Alcotest.fail "no result")
  | _ -> Alcotest.fail "not accepted");
  Serve_client.close c;
  let stats = stop_server srv in
  checki "no kills" 0 stats.Serve.s_killed;
  checki "completed" 1 stats.Serve.s_completed

let test_worker_hang_watchdog () =
  let root = fresh_dir () in
  with_worker_fault_plan "serve.worker.hang:n=1" @@ fun () ->
  let srv =
    start_server ~isolation:(workers_isolation ()) ~heartbeat_timeout_ms:1000.0 root
  in
  let c = client srv in
  (match rq c (submit_mini ~name:"hangs" ~wait:true ()) with
  | Wire.Accepted _ -> (
    match Serve_client.next_reply ~timeout_s:120.0 c with
    | Ok (Wire.Result { ok; json; _ }) ->
      checkb "routed after the watchdog kill" true ok;
      checki "kill + resume left the hash alone" (Lazy.force mini_hash) (hash_of_json json);
      (match Option.bind (json_field json "attempts") Qjson.to_int with
      | Some a -> checki "the second attempt won" 2 a
      | None -> Alcotest.fail "no attempts field")
    | _ -> Alcotest.fail "no result")
  | _ -> Alcotest.fail "not accepted");
  (* the kill is on the job's record *)
  (match rq c (Wire.Status { job = Some "hangs" }) with
  | Wire.Info { json } ->
    (match Option.bind (json_field json "kills") Qjson.to_int with
    | Some k -> checki "one kill recorded" 1 k
    | None -> Alcotest.fail "no kills field");
    (match Option.bind (json_field json "last_kill") Qjson.to_str with
    | Some r -> check Alcotest.string "reason" "hang" r
    | None -> Alcotest.fail "no last_kill field");
    (match json_field json "kill_history" with
    | Some (Qjson.Arr [ Qjson.Str r ]) -> check Alcotest.string "history entry" "hang" r
    | _ -> Alcotest.fail "no kill_history field")
  | _ -> Alcotest.fail "status");
  Serve_client.close c;
  let stats = stop_server srv in
  checki "one worker killed" 1 stats.Serve.s_killed;
  checki "one retry" 1 stats.Serve.s_retried;
  checki "completed anyway" 1 stats.Serve.s_completed

let test_worker_external_kill () =
  let root = fresh_dir () in
  with_worker_fault_plan "serve.worker.hang:n=1" @@ fun () ->
  (* the worker hangs (600 s watchdog): we kill -9 it from outside,
     like the OOM killer or an operator would *)
  let pid_box = ref None in
  let pid_mutex = Mutex.create () in
  let prefix = "job ext: worker pid " in
  let log line =
    if String.length line > String.length prefix
       && String.sub line 0 (String.length prefix) = prefix
    then begin
      let pid =
        int_of_string
          (String.sub line (String.length prefix) (String.length line - String.length prefix))
      in
      Mutex.lock pid_mutex;
      if !pid_box = None then pid_box := Some pid;
      Mutex.unlock pid_mutex
    end
  in
  let srv =
    start_server ~isolation:(workers_isolation ()) ~heartbeat_timeout_ms:600_000.0 ~log root
  in
  let c = client srv in
  (match rq c (submit_mini ~name:"ext" ~wait:true ()) with
  | Wire.Accepted _ -> ()
  | _ -> Alcotest.fail "not accepted");
  let rec get_pid n =
    if n = 0 then Alcotest.fail "no worker pid logged";
    Mutex.lock pid_mutex;
    let p = !pid_box in
    Mutex.unlock pid_mutex;
    match p with
    | Some pid -> pid
    | None ->
      Unix.sleepf 0.05;
      get_pid (n - 1)
  in
  Unix.kill (get_pid 400) Sys.sigkill;
  (match Serve_client.next_reply ~timeout_s:120.0 c with
  | Ok (Wire.Result { ok; json; _ }) ->
    checkb "survived the murder" true ok;
    checki "hash intact" (Lazy.force mini_hash) (hash_of_json json);
    (match Option.bind (json_field json "attempts") Qjson.to_int with
    | Some a -> checki "second attempt" 2 a
    | None -> Alcotest.fail "no attempts field")
  | _ -> Alcotest.fail "no result");
  (match rq c (Wire.Status { job = Some "ext" }) with
  | Wire.Info { json } -> (
    match Option.bind (json_field json "last_kill") Qjson.to_str with
    | Some r -> check Alcotest.string "kill reason" "signal-9" r
    | None -> Alcotest.fail "no last_kill field")
  | _ -> Alcotest.fail "status");
  Serve_client.close c;
  let stats = stop_server srv in
  checki "one kill" 1 stats.Serve.s_killed;
  checki "completed" 1 stats.Serve.s_completed

(* A watchdog kill is preceded by a SIGQUIT dump request: the hung
   worker must leave its flight record in the job directory and the
   whole bundle must classify under bgr_analyze's postmortem. *)
let test_worker_flight_dump_on_kill () =
  let root = fresh_dir () in
  with_worker_fault_plan "serve.worker.hang:n=1" @@ fun () ->
  let lines = ref [] in
  let log_mutex = Mutex.create () in
  let log line =
    Mutex.lock log_mutex;
    lines := line :: !lines;
    Mutex.unlock log_mutex
  in
  let srv =
    start_server ~isolation:(workers_isolation ()) ~heartbeat_timeout_ms:1000.0 ~log root
  in
  let c = client srv in
  (match rq c (submit_mini ~name:"forensic" ~wait:true ()) with
  | Wire.Accepted _ -> (
    match Serve_client.next_reply ~timeout_s:120.0 c with
    | Ok (Wire.Result { ok; json; _ }) ->
      checkb "retried to success after the kill" true ok;
      checki "kill + dump left the hash alone" (Lazy.force mini_hash) (hash_of_json json)
    | _ -> Alcotest.fail "no result")
  | _ -> Alcotest.fail "not accepted");
  let dir = Filename.concat srv.cfg.Serve.spool_root "jobs/forensic" in
  let flight = Filename.concat dir "flight-a1.bgrf" in
  checkb "the killed attempt dumped its flight record" true (Sys.file_exists flight);
  (match Flight.read ~path:flight with
  | Ok d ->
    check Alcotest.string "dump reason is the supervisor's SIGQUIT" "sigquit"
      d.Flight.f_reason;
    checkb "the dump names the worker pid, not the daemon's" true
      (d.Flight.f_pid <> Unix.getpid ())
  | Error e -> Alcotest.failf "flight dump unreadable: %s" (Bgr_error.to_string e));
  Mutex.lock log_mutex;
  let saw_dump = List.exists (fun l -> contains l "dumped its flight record") !lines in
  Mutex.unlock log_mutex;
  checkb "supervisor observed the worker's dump frame" true saw_dump;
  (* the postmortem pipeline classifies the bundle *)
  (match Postmortem.analyze ~dir with
  | Error e -> Alcotest.failf "postmortem: %s" (Bgr_error.to_string e)
  | Ok r ->
    checkb
      (Printf.sprintf "verdict %S blames the hang" r.Postmortem.p_verdict)
      true
      (String.length r.Postmortem.p_verdict >= 8
      && String.sub r.Postmortem.p_verdict 0 8 = "hang-in-");
    checkb "headline notes the recovery" true
      (contains r.Postmortem.p_headline "recovered");
    checkb "the flight dump is the correlated artifact" true
      (r.Postmortem.p_flight_file = "flight-a1.bgrf");
    (* postmortem.json must be valid Qjson *)
    match Qjson.parse (Qjson.to_string (Postmortem.to_json r)) with
    | Ok _ -> ()
    | Error m -> Alcotest.failf "postmortem.json does not parse: %s" m);
  Serve_client.close c;
  let stats = stop_server srv in
  checki "one kill" 1 stats.Serve.s_killed;
  checki "completed" 1 stats.Serve.s_completed

(* The dump opcode: an on-demand flight snapshot of the live daemon,
   no distress required. *)
let test_dump_opcode () =
  let root = fresh_dir () in
  let srv = start_server root in
  let c = client srv in
  (match rq c Wire.Dump with
  | Wire.Info { json } ->
    checkb "daemon reports the dump" true (json_field json "dumped" = Some (Qjson.Bool true));
    checkb "no worker to signal" true
      (json_field json "worker_signaled" = Some (Qjson.Bool false));
    let path =
      Option.value (Option.bind (json_field json "path") Qjson.to_str) ~default:""
    in
    checkb "reply names the dump path" true (path <> "");
    (match Flight.read ~path with
    | Ok d -> check Alcotest.string "reason" "opcode" d.Flight.f_reason
    | Error e -> Alcotest.failf "dump unreadable: %s" (Bgr_error.to_string e))
  | _ -> Alcotest.fail "dump refused");
  Serve_client.close c;
  ignore (stop_server srv)

let test_worker_quarantine () =
  let root = fresh_dir () in
  let stats =
    with_worker_fault_plan "serve.worker.kill:always" @@ fun () ->
    let srv =
      start_server ~isolation:(workers_isolation ()) ~max_attempts:5 ~quarantine_kills:2 root
    in
    let c = client srv in
    (match rq c (submit_mini ~name:"poison" ~wait:true ()) with
    | Wire.Accepted _ -> (
      match Serve_client.next_reply ~timeout_s:120.0 c with
      | Ok (Wire.Rerror { code; _ }) ->
        check Alcotest.string "waiter told quarantined" "quarantined" code
      | _ -> Alcotest.fail "no quarantine notice")
    | _ -> Alcotest.fail "not accepted");
    (match rq c (Wire.Status { job = Some "poison" }) with
    | Wire.Info { json } -> (
      match Option.bind (json_field json "state") Qjson.to_str with
      | Some s -> check Alcotest.string "state" "quarantined" s
      | None -> Alcotest.fail "no state")
    | _ -> Alcotest.fail "status");
    (* resume refuses; an unforced revive refuses *)
    (match rq c (Wire.Resume { wait = false; progress = false; job = "poison" }) with
    | Wire.Rerror { code; message } ->
      check Alcotest.string "resume refused" "validate" code;
      checkb "points at revive" true (contains message "revive")
    | _ -> Alcotest.fail "resume of a quarantined job accepted");
    (match rq c (Wire.Revive { wait = false; force = false; job = "poison" }) with
    | Wire.Rerror { code; _ } -> check Alcotest.string "unforced revive refused" "validate" code
    | _ -> Alcotest.fail "unforced revive accepted");
    Serve_client.close c;
    stop_server srv
  in
  checki "quarantined" 1 stats.Serve.s_quarantined;
  checki "two worker kills" 2 stats.Serve.s_killed;
  checki "not counted as dead-lettered" 0 stats.Serve.s_failed;
  (* life 2, chaos gone: the quarantined job is NOT auto-requeued, and
     a forced revive completes it with the reference hash *)
  let srv = start_server ~isolation:(workers_isolation ()) root in
  let c = client srv in
  (match rq c (Wire.Revive { wait = true; force = true; job = "poison" }) with
  | Wire.Accepted _ -> (
    match Serve_client.next_reply ~timeout_s:120.0 c with
    | Ok (Wire.Result { ok; json; _ }) ->
      checkb "revived and routed" true ok;
      checki "hash" (Lazy.force mini_hash) (hash_of_json json)
    | _ -> Alcotest.fail "no result")
  | _ -> Alcotest.fail "forced revive refused");
  Serve_client.close c;
  let stats2 = stop_server srv in
  checki "quarantine excluded from the supervisor requeue" 0 stats2.Serve.s_requeued;
  checki "completed on forced revive" 1 stats2.Serve.s_completed

(* --- cancellation ------------------------------------------------------ *)

let test_cancel_running_worker () =
  let root = fresh_dir () in
  with_worker_fault_plan "serve.worker.hang:always" @@ fun () ->
  let srv =
    start_server ~isolation:(workers_isolation ()) ~heartbeat_timeout_ms:600_000.0 root
  in
  let c = client srv in
  (match rq c (submit_mini ~name:"stuck" ~wait:true ()) with
  | Wire.Accepted _ -> ()
  | _ -> Alcotest.fail "not accepted");
  let c2 = client srv in
  let rec wait_running n =
    if n = 0 then Alcotest.fail "job never started running";
    match rq c2 (Wire.Status { job = Some "stuck" }) with
    | Wire.Info { json }
      when Option.bind (json_field json "state") Qjson.to_str = Some "running" ->
      ()
    | _ ->
      Unix.sleepf 0.05;
      wait_running (n - 1)
  in
  wait_running 400;
  (match rq c2 (Wire.Cancel { job = "stuck" }) with
  | Wire.Info { json } ->
    checkb "cancel acknowledged" true (json_field json "cancel_requested" = Some (Qjson.Bool true))
  | _ -> Alcotest.fail "cancel refused");
  (match Serve_client.next_reply ~timeout_s:60.0 c with
  | Ok (Wire.Rerror { code; _ }) -> check Alcotest.string "waiter told canceled" "canceled" code
  | _ -> Alcotest.fail "waiter not told");
  (* the canceled job is retired with a structured canceled json *)
  (match rq c2 (Wire.Status { job = Some "stuck" }) with
  | Wire.Info { json } -> (
    match Option.bind (json_field json "state") Qjson.to_str with
    | Some s -> check Alcotest.string "retired" "dead" s
    | None -> Alcotest.fail "no state")
  | _ -> Alcotest.fail "status after cancel");
  (match rq c2 (Wire.Cancel { job = "nope" }) with
  | Wire.Rerror { code; _ } -> check Alcotest.string "unknown job" "validate" code
  | _ -> Alcotest.fail "cancel of unknown job accepted");
  Serve_client.close c;
  Serve_client.close c2;
  let stats = stop_server srv in
  checki "one canceled" 1 stats.Serve.s_canceled;
  checki "not a failure" 0 stats.Serve.s_failed

let test_cancel_queued_job () =
  let root = fresh_dir () in
  Fault.with_plan (plan_of "serve.job:n=1") @@ fun () ->
  (* A's first attempt faults; during its 2 s backoff B sits queued *)
  let srv = start_server ~cap:8 ~backoff_ms:2000.0 root in
  let c = client srv in
  (match rq c (submit_mini ~name:"a" ~wait:true ()) with
  | Wire.Accepted _ -> ()
  | _ -> Alcotest.fail "A not accepted");
  (* B's waiter sits on its own connection: the cancel ack and the
     waiter's notice are separate replies, possibly interleaved when
     they share a socket *)
  let cw = client srv in
  (match rq cw (submit_mini ~name:"b" ~wait:true ()) with
  | Wire.Accepted _ -> ()
  | _ -> Alcotest.fail "B not accepted");
  let cb = client srv in
  (match rq cb (Wire.Cancel { job = "b" }) with
  | Wire.Info { json } ->
    checkb "B canceled from the queue" true (json_field json "canceled" = Some (Qjson.Bool true))
  | Wire.Rerror { message; _ } -> Alcotest.failf "cancel refused: %s" message
  | _ -> Alcotest.fail "cancel reply");
  (match Serve_client.next_reply ~timeout_s:30.0 cw with
  | Ok (Wire.Rerror { code; _ }) -> check Alcotest.string "B's waiter told" "canceled" code
  | _ -> Alcotest.fail "B's waiter not told");
  Serve_client.close cw;
  (* the running in-process job cannot be canceled — only workers can *)
  (match rq cb (Wire.Cancel { job = "a" }) with
  | Wire.Rerror { code; message } ->
    check Alcotest.string "in-process cancel refused" "validate" code;
    checkb "blames the isolation mode" true (contains message "isolation")
  | _ -> Alcotest.fail "running in-process cancel accepted");
  (match Serve_client.next_reply ~timeout_s:120.0 c with
  | Ok (Wire.Result { ok; _ }) -> checkb "A completed" true ok
  | _ -> Alcotest.fail "A lost");
  (* canceling a completed job is refused *)
  (match rq cb (Wire.Cancel { job = "a" }) with
  | Wire.Rerror { code; _ } -> check Alcotest.string "done cancel refused" "validate" code
  | _ -> Alcotest.fail "cancel of a done job accepted");
  Serve_client.close c;
  Serve_client.close cb;
  let stats = stop_server srv in
  checki "one canceled" 1 stats.Serve.s_canceled;
  checki "B was not dead-lettered" 0 stats.Serve.s_failed;
  checki "A completed" 1 stats.Serve.s_completed

(* --- the watchdog's pure clock ----------------------------------------- *)

let test_watchdog_verdict () =
  let v ?(canceled = false) ?(hb = 1000.0) ?(hard = infinity) ~now ~beat () =
    Worker.watchdog_verdict ~now_s:now ~started_s:0.0 ~last_beat_s:beat
      ~heartbeat_timeout_ms:hb ~hard_deadline_ms:hard ~canceled
  in
  (* a fresh beat: alive *)
  (match v ~now:10.0 ~beat:9.5 () with
  | Worker.V_ok -> ()
  | Worker.V_kill _ -> Alcotest.fail "fresh beat killed");
  (* exactly at the silence threshold: still alive (strictly greater) *)
  (match v ~now:10.0 ~beat:9.0 () with
  | Worker.V_ok -> ()
  | Worker.V_kill _ -> Alcotest.fail "at-threshold beat killed");
  (* silence past the threshold: a hang, and the detail says how long *)
  (match v ~now:10.0 ~beat:8.9 () with
  | Worker.V_kill (Worker.Hang, d) -> checkb "names the silence" true (contains d "no heartbeat")
  | _ -> Alcotest.fail "silent worker not killed");
  (* slow but alive: sparse beats inside the timeout, hours into the
     run, are never killed before the hard deadline *)
  (match v ~now:7200.0 ~beat:7199.2 () with
  | Worker.V_ok -> ()
  | Worker.V_kill _ -> Alcotest.fail "slow-but-alive worker killed");
  (* the hard wall deadline kills despite a perfectly fresh beat *)
  (match v ~now:10.0 ~beat:9.9 ~hard:5000.0 () with
  | Worker.V_kill (Worker.Hard_deadline, _) -> ()
  | _ -> Alcotest.fail "hard deadline ignored");
  (* cancel outranks both kill causes *)
  match v ~canceled:true ~now:10.0 ~beat:0.0 ~hard:5000.0 () with
  | Worker.V_kill (Worker.Canceled, _) -> ()
  | _ -> Alcotest.fail "cancel not prioritized"

(* --- heartbeat cadence: one supervisor callback per beat, in order ----- *)

let test_heartbeat_cadence () =
  let dir = fresh_dir () in
  let script =
    [ ("improve", 1, 12, -5.0); ("improve", 2, 40, 3.5); ("metrology", 2, 44, Float.nan) ]
  in
  let feed =
    write_feed dir "cadence"
      (List.map
         (fun (phase, pass, deletions, worst_margin_ps) ->
           Worker.Heartbeat { phase; pass; deletions; worst_margin_ps })
         script
      @ [ Worker.Done { json = "{}" } ])
  in
  let seen = ref [] in
  (match
     Worker.supervise ~log:ignore
       ~on_progress:(fun p -> seen := p :: !seen)
       ~argv:(sh ("cat " ^ feed)) ()
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "cadenced worker misclassified");
  let got = List.rev !seen in
  checki "one progress callback per heartbeat" (List.length script) (List.length got);
  List.iter2
    (fun (phase, pass, deletions, margin) p ->
      check Alcotest.string "phase in order" phase p.Worker.p_phase;
      checki "pass in order" pass p.Worker.p_pass;
      checki "deletions in order" deletions p.Worker.p_deletions;
      checkb "margin carried bit-exactly (nan included)" true
        (Int64.equal (Int64.bits_of_float margin)
           (Int64.bits_of_float p.Worker.p_worst_margin_ps)))
    script got

(* --- watch: streamed job progress -------------------------------------- *)

(* Drain a watching connection: Progress* then the final Result. *)
let drain_watch c ~job =
  let rec go acc =
    match Serve_client.next_reply ~timeout_s:120.0 c with
    | Ok (Wire.Progress { job = j; seq; json }) ->
      check Alcotest.string "frames name the job" job j;
      go ((seq, json) :: acc)
    | Ok (Wire.Result { ok; json; _ }) -> (List.rev acc, ok, json)
    | Ok _ -> Alcotest.fail "unexpected reply while watching"
    | Error e -> Alcotest.failf "watch read: %s" e.Bgr_error.message
  in
  go []

let check_progress_frames frames ~at_least =
  checkb
    (Printf.sprintf "at least %d progress frames (got %d)" at_least (List.length frames))
    true
    (List.length frames >= at_least);
  ignore
    (List.fold_left
       (fun prev (seq, json) ->
         checkb "seq strictly increasing" true (seq > prev);
         checkb "frame json has a phase" true
           (Option.bind (json_field json "phase") Qjson.to_str <> None);
         checkb "frame json has deletions" true (json_field json "deletions" <> None);
         seq)
       0 frames)

let test_watch_streams_progress () =
  let root = fresh_dir () in
  let srv = start_server ~isolation:(workers_isolation ()) root in
  let c = client srv in
  (* two jobs: A occupies the single executor while we subscribe to B,
     so B's whole stream is observed *)
  (match rq c (submit_mini ~name:"a" ()) with
  | Wire.Accepted _ -> ()
  | _ -> Alcotest.fail "A not accepted");
  (match rq c (submit_mini ~name:"b" ()) with
  | Wire.Accepted _ -> ()
  | _ -> Alcotest.fail "B not accepted");
  let cw = client srv in
  (match rq cw (Wire.Watch { job = "b" }) with
  | Wire.Info { json } ->
    checkb "subscribed" true (json_field json "watching" = Some (Qjson.Bool true))
  | _ -> Alcotest.fail "watch refused");
  let frames, ok, json = drain_watch cw ~job:"b" in
  checkb "B routed" true ok;
  checki "watching left the hash alone" (Lazy.force mini_hash) (hash_of_json json);
  check_progress_frames frames ~at_least:2;
  Serve_client.close cw;
  (* a watch of a finished job returns its stored result immediately *)
  (match rq c (Wire.Watch { job = "b" }) with
  | Wire.Result { ok; _ } -> checkb "stored result" true ok
  | _ -> Alcotest.fail "watch of a done job");
  (* watch of an unknown job: validate *)
  (match rq c (Wire.Watch { job = "nope" }) with
  | Wire.Rerror { code; _ } -> check Alcotest.string "unknown watch" "validate" code
  | _ -> Alcotest.fail "unknown watch accepted");
  Serve_client.close c;
  ignore (stop_server srv)

(* A watch of a job that will never progress must say so in a
   structured reply, not hold the connection open in silence. *)
let test_watch_edge_cases () =
  let root = fresh_dir () in
  (* pre-bake a dead-lettered and a quarantined job in the spool *)
  let sp = Spool.open_root (Filename.concat root "spool") in
  let bake id =
    Spool.accept sp
      { Spool.j_id = id; j_timing_driven = true; j_deadline_ms = None; j_attempts = 1;
        j_kills = 0; j_last_kill = ""; j_kill_history = [] }
      ~design_text:(Lazy.force mini_text)
  in
  bake "gone";
  Spool.retire sp "gone" ~json:"{\"code\":\"fault\",\"message\":\"injected\"}";
  bake "poison";
  Spool.quarantine sp "poison" ~json:"{\"code\":\"quarantined\",\"message\":\"kill loop\"}";
  let srv = start_server root in
  let c = client srv in
  (match rq c (Wire.Watch { job = "gone" }) with
  | Wire.Rerror { code; message } ->
    check Alcotest.string "dead-lettered watch code" "dead-lettered" code;
    checkb "message names the job" true (contains message "gone");
    checkb "message says how to proceed" true (contains message "resume")
  | _ -> Alcotest.fail "watch of a dead-lettered job must be a structured error");
  (match rq c (Wire.Watch { job = "poison" }) with
  | Wire.Rerror { code; message } ->
    check Alcotest.string "quarantined watch code" "quarantined" code;
    checkb "message says revive with force" true (contains message "force")
  | _ -> Alcotest.fail "watch of a quarantined job must be a structured error");
  (match rq c (Wire.Watch { job = "never-heard-of" }) with
  | Wire.Rerror { code; _ } -> check Alcotest.string "unknown watch code" "validate" code
  | _ -> Alcotest.fail "watch of an unknown job must be a structured error");
  Serve_client.close c;
  ignore (stop_server srv)

(* nan is a legal worst margin (no timing state yet); it must survive
   the progress-frame JSON as null, not poison the stream. *)
let test_watch_nan_margin_roundtrip () =
  let json = Serve.progress_json "j" 3
      { Worker.p_phase = "initial_route"; p_pass = 0; p_deletions = 0;
        p_worst_margin_ps = Float.nan }
  in
  (match Qjson.parse json with
  | Error m -> Alcotest.failf "progress frame does not parse: %s" m
  | Ok j ->
    checkb "nan margin renders as null" true (Qjson.member "worst_margin_ps" j = Some Qjson.Null);
    (match Option.bind (Qjson.member "worst_margin_ps" j) Qjson.to_float with
    | Some v -> checkb "null reads back as nan" true (Float.is_nan v)
    | None -> Alcotest.fail "margin member must read as a float");
    check Alcotest.string "phase intact" "initial_route"
      (Option.value (Option.bind (Qjson.member "phase" j) Qjson.to_str) ~default:""));
  (* and a finite margin stays a number *)
  let json = Serve.progress_json "j" 4
      { Worker.p_phase = "improve_delay"; p_pass = 2; p_deletions = 41;
        p_worst_margin_ps = -12.5 }
  in
  match Qjson.parse json with
  | Error m -> Alcotest.failf "finite frame does not parse: %s" m
  | Ok j ->
    checkb "finite margin is numeric" true
      (Option.bind (Qjson.member "worst_margin_ps" j) Qjson.to_float = Some (-12.5))

let test_submit_progress_flag () =
  let root = fresh_dir () in
  (* in-process at 4 domains: frames come from quality samples, and the
     hash must still match the 1-domain un-watched reference *)
  let srv = start_server ~tweak:(fun cfg -> { cfg with Serve.job_domains = 4 }) root in
  let c = client srv in
  (match rq c (submit_mini ~name:"p" ~wait:true ~progress:true ()) with
  | Wire.Accepted _ -> ()
  | _ -> Alcotest.fail "not accepted");
  let frames, ok, json = drain_watch c ~job:"p" in
  checkb "routed" true ok;
  checki "progress + 4 domains left the hash alone" (Lazy.force mini_hash)
    (hash_of_json json);
  check_progress_frames frames ~at_least:1;
  Serve_client.close c;
  ignore (stop_server srv)

(* --- stats: the scrapeable registry ------------------------------------ *)

let test_stats_opcode () =
  let root = fresh_dir () in
  let srv = start_server root in
  let c = client srv in
  (match rq c (submit_mini ~name:"s" ~wait:true ()) with
  | Wire.Accepted _ -> (
    match Serve_client.next_reply ~timeout_s:120.0 c with
    | Ok (Wire.Result { ok; _ }) -> checkb "routed" true ok
    | _ -> Alcotest.fail "no result")
  | _ -> Alcotest.fail "not accepted");
  (match rq c (Wire.Stats { prom = false }) with
  | Wire.Rstats { prom; body } ->
    checkb "json flag echoed" false prom;
    (match Qjson.parse body with
    | Ok _ -> ()
    | Error m -> Alcotest.failf "stats json does not parse: %s" m)
  | _ -> Alcotest.fail "stats json refused");
  (match rq c (Wire.Stats { prom = true }) with
  | Wire.Rstats { prom; body } ->
    checkb "prom flag echoed" true prom;
    checkb "text exposition shape" true
      (String.length body > 0 && body.[0] = '#' && contains body "# TYPE")
  | _ -> Alcotest.fail "stats prom refused");
  Serve_client.close c;
  ignore (stop_server srv)

(* --- cross-process trace stitching ------------------------------------- *)

let test_worker_stitching () =
  let root = fresh_dir () in
  Obs.set_clock_for_tests None;
  Obs.enable ();
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
  @@ fun () ->
  let srv =
    start_server ~isolation:(workers_isolation ())
      ~tweak:(fun cfg -> { cfg with Serve.stitch_workers = true })
      root
  in
  let c = client srv in
  (match rq c (submit_mini ~name:"st" ~wait:true ()) with
  | Wire.Accepted _ -> (
    match Serve_client.next_reply ~timeout_s:120.0 c with
    | Ok (Wire.Result { ok; json; _ }) ->
      checkb "routed" true ok;
      checki "stitching left the hash alone" (Lazy.force mini_hash) (hash_of_json json)
    | _ -> Alcotest.fail "no result")
  | _ -> Alcotest.fail "not accepted");
  (* the stats opcode serves the very registry the drain would write *)
  (match rq c (Wire.Stats { prom = true }) with
  | Wire.Rstats { body; _ } ->
    let serve_lines s =
      String.split_on_char '\n' s
      |> List.filter (fun l -> String.length l > 6 && String.sub l 0 6 = "serve_")
    in
    check
      Alcotest.(list string)
      "socket stats = registry render"
      (serve_lines (Obs.Metrics.render_prometheus ()))
      (serve_lines body)
  | _ -> Alcotest.fail "stats refused");
  Serve_client.close c;
  ignore (stop_server srv);
  (* the worker left its per-attempt artifacts in the job's spool dir *)
  let jdir = Filename.concat root "spool/jobs/st" in
  List.iter
    (fun f ->
      checkb (f ^ " written") true (Sys.file_exists (Filename.concat jdir f)))
    [ "trace-a1.json"; "trace-a1.jsonl"; "metrics-a1.bgrm"; "obs-a1.json" ];
  (* one merged timeline: the daemon's serve.job/serve.worker spans plus
     the worker's own spans, different pids, one trace id *)
  let spans = Obs.Trace.completed () in
  let by_name n = List.filter (fun s -> s.Obs.Trace.sp_name = n) spans in
  let job_spans = by_name "serve.job" and sup_spans = by_name "serve.worker" in
  checki "one serve.job span" 1 (List.length job_spans);
  checki "one serve.worker span" 1 (List.length sup_spans);
  let tid s = List.assoc_opt "trace_id" s.Obs.Trace.sp_attrs in
  checkb "serve.job carries the per-job trace id" true
    (tid (List.hd job_spans) = Some (Obs.Trace.Str "job-st"));
  let worker_spans = List.filter (fun s -> s.Obs.Trace.sp_pid <> 1) spans in
  checkb "worker spans merged into the daemon timeline" true (worker_spans <> []);
  (match by_name "worker.attempt" with
  | [ att ] ->
    checkb "worker root recorded with the worker's pid" true (att.Obs.Trace.sp_pid <> 1);
    checki "worker root hangs off the daemon's serve.worker span"
      (List.hd sup_spans).Obs.Trace.sp_id att.Obs.Trace.sp_parent;
    checkb "worker carries the job's trace id" true
      (tid att = Some (Obs.Trace.Str "job-st"))
  | l -> Alcotest.failf "expected 1 worker.attempt span, got %d" (List.length l));
  checkb "the worker's inner phase spans came along" true
    (List.exists
       (fun s ->
         let n = s.Obs.Trace.sp_name in
         String.length n > 5 && (String.sub n 0 5 = "pass:" || String.sub n 0 5 = "flow:"))
       worker_spans)

(* --- protocol robustness: the malformed-request corpus ----------------- *)

let corpus_dir = if Sys.file_exists "corpus/serve" then "corpus/serve" else "test/corpus/serve"

let raw_connect srv =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX srv.cfg.Serve.socket_path);
  (* greet properly so only the corpus payload is on trial *)
  ignore (Unix.write_substring fd Wire.magic 0 (String.length Wire.magic));
  let banner = Bytes.create (String.length Wire.magic) in
  let got = Unix.read fd banner 0 (Bytes.length banner) in
  checkb "server banner" true (got > 0);
  fd

(* Read one framed reply off a raw fd (blocking, bounded). *)
let raw_reply fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
  let buf = Bytes.create 65536 in
  let acc = ref "" in
  let rec go () =
    match Wire.extract_frame !acc ~pos:0 with
    | Wire.Frame (payload, _) -> Some (Wire.decode_reply payload)
    | Wire.Bad _ -> None
    | Wire.Need _ -> (
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> None
      | n ->
        acc := !acc ^ Bytes.sub_string buf 0 n;
        go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> None)
  in
  go ()

let test_malformed_corpus () =
  let files = Sys.readdir corpus_dir |> Array.to_list |> List.sort compare in
  checkb "corpus present" true (List.length files >= 9);
  let root = fresh_dir () in
  let srv = start_server root in
  List.iter
    (fun file ->
      let bytes =
        let ic = open_in_bin (Filename.concat corpus_dir file) in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      let fd = raw_connect srv in
      ignore (Unix.write_substring fd bytes 0 (String.length bytes));
      (match raw_reply fd with
      | Some (Ok (Wire.Rerror { code; message })) ->
        check Alcotest.string (file ^ " error class") "parse" code;
        checkb (file ^ " has a message") true (String.length message > 0)
      | Some (Ok _) -> Alcotest.failf "%s: daemon accepted garbage" file
      | Some (Error e) -> Alcotest.failf "%s: unparseable reply: %s" file e.Bgr_error.message
      | None ->
        (* an incomplete frame draws no reply: the daemon just waits
           (truncated_frame is short a few bytes; at_cap_length
           declares a legal 16 MiB payload that never arrives);
           dropping the connection must not hurt it either *)
        checkb (file ^ " tolerated silently") true
          (List.mem file [ "truncated_frame.bin"; "at_cap_length.bin" ]));
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (* the daemon survived: a fresh client still gets status *)
      let c = client srv in
      (match rq c (Wire.Status { job = None }) with
      | Wire.Info _ -> ()
      | _ -> Alcotest.failf "%s: daemon unhealthy afterwards" file);
      Serve_client.close c)
    files;
  (* bad magic greeting is also answered, then the connection closed *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX srv.cfg.Serve.socket_path);
  ignore (Unix.write_substring fd "NOTBGR" 0 6);
  (* swallow the server banner; the error frame follows it *)
  let banner = Bytes.create (String.length Wire.magic) in
  ignore (Unix.read fd banner 0 (Bytes.length banner));
  (match raw_reply fd with
  | Some (Ok (Wire.Rerror { code; _ })) -> check Alcotest.string "bad magic" "parse" code
  | _ -> Alcotest.fail "bad magic not answered");
  (try Unix.close fd with Unix.Unix_error _ -> ());
  let stats = stop_server srv in
  checkb "protocol errors counted" true (stats.Serve.s_protocol_errors >= 4);
  checki "no jobs harmed" 0 stats.Serve.s_failed

(* --- serve.accept fault: refused connection, healthy daemon ------------ *)

let test_accept_fault () =
  let root = fresh_dir () in
  Fault.with_plan (plan_of "serve.accept:n=1") @@ fun () ->
  let srv = start_server root in
  (* first dial is swallowed by the fault: the daemon accepts and
     immediately closes; the client sees EOF during the greeting *)
  (match Serve_client.connect srv.cfg.Serve.socket_path with
  | Error _ -> ()
  | Ok c ->
    (* the close can also surface on first use *)
    (match Serve_client.request ~timeout_s:10.0 c (Wire.Status { job = None }) with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "faulted connection served");
    Serve_client.close c);
  (* the daemon itself survived *)
  let c = client srv in
  (match rq c (Wire.Status { job = None }) with
  | Wire.Info _ -> ()
  | _ -> Alcotest.fail "daemon unhealthy after accept fault");
  Serve_client.close c;
  ignore (stop_server srv)

let () =
  Alcotest.run "serve"
    [ ( "wire",
        [ Alcotest.test_case "round trips" `Quick test_wire_roundtrip;
          Alcotest.test_case "malformed payloads" `Quick test_wire_malformed;
          Alcotest.test_case "incremental frames" `Quick test_extract_frame;
          Alcotest.test_case "frame cap edges" `Quick test_frame_cap_edges;
          Alcotest.test_case "worker event frames" `Quick test_worker_event_cases;
          QCheck_alcotest.to_alcotest prop_request_roundtrip;
          QCheck_alcotest.to_alcotest prop_reply_roundtrip;
          QCheck_alcotest.to_alcotest prop_event_roundtrip;
          Alcotest.test_case "job ids" `Quick test_job_ids ] );
      ( "retry",
        [ Alcotest.test_case "deterministic schedule" `Quick test_retry_schedule;
          Alcotest.test_case "success and default cap" `Quick test_retry_success_and_default;
          Alcotest.test_case "non-retryable goes straight through" `Quick
            test_retry_non_retryable;
          Alcotest.test_case "backoff cap and jitter" `Quick test_retry_cap_and_jitter;
          Alcotest.test_case "giveup interrupts" `Quick test_retry_giveup ] );
      ( "spool",
        [ Alcotest.test_case "lifecycle" `Quick test_spool_lifecycle;
          Alcotest.test_case "kills + quarantine" `Quick test_spool_kills_and_quarantine;
          Alcotest.test_case "manifest compatibility" `Quick test_spool_manifest_compat ] );
      ( "worker",
        [ Alcotest.test_case "supervises a well-behaved worker" `Quick
            test_supervise_well_behaved;
          Alcotest.test_case "classifies kills and exits" `Slow test_supervise_kills_and_exits;
          Alcotest.test_case "watchdog verdict under an injected clock" `Quick
            test_watchdog_verdict;
          Alcotest.test_case "heartbeat cadence" `Quick test_heartbeat_cadence ] );
      ( "daemon",
        [ Alcotest.test_case "end to end" `Slow test_end_to_end;
          Alcotest.test_case "overload + retry" `Slow test_overload_and_retry;
          Alcotest.test_case "dead-letter + revive" `Slow test_dead_letter_and_revive;
          Alcotest.test_case "supervisor requeue" `Slow test_supervisor_requeue;
          Alcotest.test_case "drain keeps queued jobs" `Slow test_drain_keeps_queued_jobs ] );
      ( "isolation",
        [ Alcotest.test_case "worker end to end" `Slow test_worker_isolation_e2e;
          Alcotest.test_case "hang watchdog + resume" `Slow test_worker_hang_watchdog;
          Alcotest.test_case "external kill -9 + resume" `Slow test_worker_external_kill;
          Alcotest.test_case "crash loop quarantine" `Slow test_worker_quarantine;
          Alcotest.test_case "watchdog kill dumps the flight record" `Slow
            test_worker_flight_dump_on_kill;
          Alcotest.test_case "cancel a running worker" `Slow test_cancel_running_worker;
          Alcotest.test_case "cancel a queued job" `Slow test_cancel_queued_job ] );
      ( "observability",
        [ Alcotest.test_case "watch streams worker progress" `Slow
            test_watch_streams_progress;
          Alcotest.test_case "watch of dead/quarantined jobs errors" `Slow
            test_watch_edge_cases;
          Alcotest.test_case "nan margin through a progress frame" `Quick
            test_watch_nan_margin_roundtrip;
          Alcotest.test_case "dump opcode snapshots the daemon" `Slow test_dump_opcode;
          Alcotest.test_case "submit --progress piggybacks on wait" `Slow
            test_submit_progress_flag;
          Alcotest.test_case "stats opcode" `Slow test_stats_opcode;
          Alcotest.test_case "cross-process trace stitching" `Slow test_worker_stitching ] );
      ( "protocol",
        [ Alcotest.test_case "malformed corpus" `Slow test_malformed_corpus;
          Alcotest.test_case "accept fault" `Quick test_accept_fault ] ) ]
