(* Tests for the report-layer extras: ASCII layout views and
   route-quality statistics. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let routed_mini () =
  let case = Suite.mini () in
  Flow.run case.Suite.input

let test_floorplan_view_shape () =
  let outcome = routed_mini () in
  let fp = outcome.Flow.o_floorplan in
  let s = Layout_view.floorplan fp in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  (* One line per row plus one per channel. *)
  check_int "line count" ((2 * Floorplan.n_rows fp) + 1) (List.length lines);
  (* Every row line is exactly prefix + width wide. *)
  List.iter
    (fun l ->
      if String.length l >= 3 && String.sub l 0 3 = "row" then
        check_int "row line width" (5 + Floorplan.width fp) (String.length l))
    lines;
  (* Feed slots appear as '+'. *)
  check_bool "feed slots rendered" true (String.contains s '+')

let test_floorplan_view_tracks () =
  let outcome = routed_mini () in
  let s =
    Layout_view.floorplan ~channel_tracks:outcome.Flow.o_measurement.Flow.m_tracks
      outcome.Flow.o_floorplan
  in
  check_bool "track annotations present" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 6 && String.contains l '('))

let test_channel_view () =
  let outcome = routed_mini () in
  let worst = Experiments.fig4_worst_channel outcome in
  let r = outcome.Flow.o_channels.(worst) in
  let s = Layout_view.channel_tracks r ~width:(Floorplan.width outcome.Flow.o_floorplan) in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  check_int "one line per track" r.Channel_router.tracks (List.length lines)

let test_route_stats () =
  let outcome = routed_mini () in
  let stats = Route_stats.of_router outcome.Flow.o_router in
  check_bool "nets counted" true (stats.Route_stats.n_nets > 0);
  check_bool "mean detour sane" true
    (stats.Route_stats.mean_detour > 0.3 && stats.Route_stats.mean_detour < 3.0);
  check_bool "p95 >= mean is typical" true
    (stats.Route_stats.p95_detour +. 1e-9 >= stats.Route_stats.mean_detour *. 0.5);
  check_bool "max is the max" true (stats.Route_stats.max_detour >= stats.Route_stats.p95_detour);
  let histogram_total =
    List.fold_left (fun acc (_, _, c) -> acc + c) 0 stats.Route_stats.histogram
  in
  check_int "histogram covers all nets" stats.Route_stats.n_nets histogram_total;
  check_bool "lengths positive" true
    (stats.Route_stats.total_trunk_mm > 0.0 && stats.Route_stats.total_hpwl_mm > 0.0);
  let rendered = Route_stats.render stats in
  check_bool "render has the histogram" true (String.length rendered > 100)

let test_slack_profile () =
  let outcome = routed_mini () in
  match outcome.Flow.o_sta with
  | None -> Alcotest.fail "expected sta"
  | Some sta ->
    let p = Slack_profile.of_sta sta in
    check_bool "endpoints counted" true (p.Slack_profile.n_endpoints > 0);
    let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 p.Slack_profile.buckets in
    check_int "histogram covers all endpoints" p.Slack_profile.n_endpoints total;
    check_bool "violating count consistent" true
      ((p.Slack_profile.n_violating = 0) = (p.Slack_profile.total_negative_ps = 0.0));
    check_bool "worst is finite" true (Float.is_finite p.Slack_profile.worst_ps);
    check_bool "renders" true (String.length (Slack_profile.render p) > 50)

let test_signoff () =
  let outcome = routed_mini () in
  let s = Signoff.report outcome in
  check_bool "summary present" true (String.length s > 500);
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle -> check_bool (needle ^ " section present") true (contains needle))
    [ "Sign-off summary"; "verify:"; "route quality"; "slack profile" ]

let suite =
  [ Alcotest.test_case "floorplan view shape" `Quick test_floorplan_view_shape;
    Alcotest.test_case "sign-off report" `Quick test_signoff;
    Alcotest.test_case "slack profile" `Quick test_slack_profile;
    Alcotest.test_case "floorplan view with tracks" `Quick test_floorplan_view_tracks;
    Alcotest.test_case "channel view" `Quick test_channel_view;
    Alcotest.test_case "route statistics" `Quick test_route_stats ]

let () = Alcotest.run "report" [ ("report", suite) ]
