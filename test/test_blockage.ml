(* Tests for routing blockages — the "blockages on the routing layers"
   input of the paper's problem formulation. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A same-row net that would naturally route through channel 1; a
   blockage there must push it into channel 0 or 2. *)
let blocked_floorplan ~blockages =
  let netlist, invs = Util.chain_netlist 4 in
  let cells =
    [ { Floorplan.inst = invs.(0); row = 0; x = 0 };
      { Floorplan.inst = invs.(1); row = 0; x = 6 };
      { Floorplan.inst = invs.(2); row = 1; x = 0 };
      { Floorplan.inst = invs.(3); row = 1; x = 6 } ]
  in
  let slots = [ (0, 4, 0); (0, 9, 0); (1, 4, 0); (1, 9, 0) ] in
  let fp =
    Floorplan.make ~netlist ~dims:Dims.default ~n_rows:2 ~width:12 ~cells ~slots ~blockages ()
  in
  (fp, netlist, invs)

let test_accessors () =
  let fp, _, _ = blocked_floorplan ~blockages:[ (1, 3, 5) ] in
  check_int "one blockage in channel 1" 1 (List.length (Floorplan.channel_blockages fp 1));
  check_int "none in channel 0" 0 (List.length (Floorplan.channel_blockages fp 0));
  check_bool "trunk across is blocked" true (Floorplan.trunk_blocked fp ~channel:1 ~x1:0 ~x2:7);
  check_bool "trunk touching the edge is blocked" true
    (Floorplan.trunk_blocked fp ~channel:1 ~x1:5 ~x2:8);
  check_bool "trunk clear of it is fine" false (Floorplan.trunk_blocked fp ~channel:1 ~x1:6 ~x2:9);
  check_bool "other channel unaffected" false (Floorplan.trunk_blocked fp ~channel:0 ~x1:0 ~x2:7);
  Alcotest.(check (list (triple int int int)))
    "triples round-trip" [ (1, 3, 5) ] (Floorplan.blockage_triples fp)

let test_validation () =
  let expect blockages =
    match blocked_floorplan ~blockages with
    | _ -> Alcotest.fail "expected Overlap"
    | exception Floorplan.Overlap _ -> ()
  in
  expect [ (7, 0, 1) ] (* unknown channel *);
  expect [ (1, -1, 3) ] (* off chip left *);
  expect [ (1, 5, 20) ] (* off chip right *);
  expect [ (1, 5, 3) ] (* inverted *)

let route_net fp netlist invs =
  let net = Option.get (Netlist.net_of_pin netlist { Netlist.inst = invs.(0); term = "Z" }) in
  let assignment, failures = Feedthrough.assign fp ~order:(Util.id_order netlist) in
  Alcotest.(check bool) "assignable" true (failures = []);
  (Routing_graph.build fp assignment ~net, net)

let test_routing_detours () =
  (* Net i0.Z (col 1) -> i1.A (col 6), row 0: channels 0 and 1 both
     offer trunks normally.  Block channel 0 between them: only the
     channel-1 trunk survives and the tree must use it. *)
  let fp, netlist, invs = blocked_floorplan ~blockages:[ (0, 2, 4) ] in
  let rg, _ = route_net fp netlist invs in
  let trunk_channels = ref [] in
  Ugraph.iter_edges rg.Routing_graph.graph (fun e ->
      match Routing_graph.edge_kind rg e.Ugraph.id with
      | Routing_graph.Trunk { channel; _ } -> trunk_channels := channel :: !trunk_channels
      | Routing_graph.Branch _ | Routing_graph.Correspondence _ -> ());
  check_bool "no trunk in the blocked channel" true (not (List.mem 0 !trunk_channels));
  check_bool "channel 1 trunk exists" true (List.mem 1 !trunk_channels);
  let tree = Option.get (Routing_graph.tentative_tree rg) in
  check_bool "tree routes through channel 1" true
    (List.exists
       (fun eid ->
         match Routing_graph.edge_kind rg eid with
         | Routing_graph.Trunk { channel = 1; _ } -> true
         | Routing_graph.Trunk _ | Routing_graph.Branch _ | Routing_graph.Correspondence _ -> false)
       tree)

let test_unroutable_when_fully_blocked () =
  (* Block both channels the net could use: construction must fail
     loudly rather than produce a disconnected candidate graph. *)
  let fp, netlist, invs = blocked_floorplan ~blockages:[ (0, 2, 4); (1, 2, 4) ] in
  check_bool "unroutable raised" true
    (match route_net fp netlist invs with
    | exception Routing_graph.Unroutable _ -> true
    | _ -> false)

let test_full_flow_with_blockage () =
  (* End-to-end: with a blockage in a middle channel the flow either
     routes everything around it, or — when the blockage strands a net
     whose only candidates cross it (one feedthrough per net per row
     cannot detour inside a channel) — fails loudly with Unroutable.
     At least one probed position must route fully, and routed results
     must never cross the blockage. *)
  let case = Suite.mini () in
  let base = case.Suite.input in
  let fp0 = Flow.floorplan_of_input base in
  let width = Floorplan.width fp0 in
  let blocked_channel = 2 in
  let routed_somewhere = ref false in
  List.iter
    (fun x ->
      if x >= 0 && x + 1 < width then begin
        let input = { base with Flow.blockages = [ (blocked_channel, x, x + 1) ] } in
        match Flow.run input with
        | exception Routing_graph.Unroutable _ -> () (* documented outcome *)
        | outcome ->
          routed_somewhere := true;
          check_bool "routed" true (Router.is_routed outcome.Flow.o_router);
          let router = outcome.Flow.o_router in
          let netlist = input.Flow.netlist in
          let fp = outcome.Flow.o_floorplan in
          for net = 0 to Netlist.n_nets netlist - 1 do
            let rg = Router.routing_graph router net in
            List.iter
              (fun eid ->
                match Routing_graph.edge_kind rg eid with
                | Routing_graph.Trunk { channel; span } when channel = blocked_channel ->
                  check_bool
                    (Printf.sprintf "net %d avoids the blockage" net)
                    false
                    (Floorplan.trunk_blocked fp ~channel ~x1:(Interval.lo span)
                       ~x2:(Interval.hi span - 1))
                | Routing_graph.Trunk _ | Routing_graph.Branch _ | Routing_graph.Correspondence _ ->
                  ())
              (Router.tree_edges router net)
          done
      end)
    [ 1; width / 4; width / 2; (3 * width) / 4; width - 3 ];
  check_bool "at least one blockage position routes fully" true !routed_somewhere

let test_io_roundtrip () =
  let fp, netlist, _ = blocked_floorplan ~blockages:[ (1, 3, 5); (2, 0, 2) ] in
  let text = Layout_io.to_string fp in
  let back = Layout_io.of_string ~netlist ~dims:Dims.default text in
  Alcotest.(check (list (triple int int int)))
    "blockages serialize" (Floorplan.blockage_triples fp) (Floorplan.blockage_triples back)

let test_view_marks_blockage () =
  let fp, _, _ = blocked_floorplan ~blockages:[ (1, 3, 5) ] in
  let s = Layout_view.floorplan fp in
  check_bool "blockage rendered as X" true
    (String.split_on_char '\n' s
    |> List.exists (fun l -> String.length l > 4 && String.sub l 0 4 = "ch1 " && String.contains l 'X'))

let suite =
  [ Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "routing detours around blockage" `Quick test_routing_detours;
    Alcotest.test_case "unroutable when fully blocked" `Quick test_unroutable_when_fully_blocked;
    Alcotest.test_case "full flow with blockage" `Quick test_full_flow_with_blockage;
    Alcotest.test_case "blockage io round trip" `Quick test_io_roundtrip;
    Alcotest.test_case "view marks blockage" `Quick test_view_marks_blockage ]

let () = Alcotest.run "blockage" [ ("blockage", suite) ]
