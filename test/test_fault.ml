(* Fault injection and pool hardening: plan parsing, worker death and
   respawn, spawn failure degrading to sequential, and the io.parse
   site surfacing as a structured Error rather than an exception. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Synthetic sites the plan-machinery tests fire; real code never
   calls them, so they must be declared for parse_plan to accept
   them. *)
let () = List.iter Fault.declare_site [ "site.a"; "site.b"; "site.x" ]

let plan s =
  match Fault.parse_plan s with
  | Ok p -> p
  | Error m -> Alcotest.failf "parse_plan %S: %s" s m

let test_parse_plan () =
  (match Fault.parse_plan "" with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "empty plan should parse: %s" m);
  ignore (plan "seed=42; par.worker:n=1; io.parse:p=0.5; router.improve:always");
  ignore (plan "par.worker:n=3,par.spawn:always");
  List.iter
    (fun bad ->
      match Fault.parse_plan bad with
      | Ok _ -> Alcotest.failf "plan %S should be rejected" bad
      | Error _ -> ())
    [ "par.worker";
      "par.worker:n=x";
      "par.worker:p=2.5";
      "whatever:";
      ":n=1";
      "seed=";
      (* Duplicate clauses for one site are ambiguous (which rule
         wins?) and always a typo in practice — rejected outright. *)
      "par.worker:n=1, par.worker:always";
      "seed=7;persist.append:n=3;io.parse:p=0.5;persist.append:always" ]

(* A site outside the registry would silently never fire; the plan is
   rejected instead — with a message that names the known sites. *)
let test_unknown_site_rejected () =
  List.iter
    (fun bad ->
      match Fault.parse_plan bad with
      | Ok _ -> Alcotest.failf "plan %S names an unknown site and should be rejected" bad
      | Error m ->
        check_bool "message says unknown site" true
          (String.length m >= 12 && String.sub m 12 7 = "unknown"))
    [ "serve.acept:n=1"; "router.impro:always"; "nosuch.site:p=0.5" ];
  (* the four serving sites are registered *)
  ignore (plan "serve.accept:n=1;serve.read:always;serve.write:p=0.5;serve.job:n=2");
  (* declared synthetic sites are accepted *)
  Fault.declare_site "site.declared";
  ignore (plan "site.declared:always");
  check_bool "known_site sees builtins" true (Fault.known_site "serve.job");
  check_bool "known_site rejects typos" false (Fault.known_site "serve.jobs")

(* declare_site is documented idempotent: registering the same site
   twice (or shadowing a builtin) must not corrupt the registry, flip
   known_site, or change how plans naming it parse and fire. *)
let test_declare_site_idempotent () =
  Fault.declare_site "site.twice";
  Fault.declare_site "site.twice";
  check_bool "still known after re-registration" true (Fault.known_site "site.twice");
  ignore (plan "site.twice:n=1");
  Fault.declare_site "persist.append";
  Fault.declare_site "persist.append";
  check_bool "re-declared builtin stays known" true (Fault.known_site "persist.append");
  ignore (plan "persist.append:n=2");
  (* the duplicate-clause rejection is about plans, not the registry —
     re-declaration must not relax it *)
  (match Fault.parse_plan "site.twice:n=1, site.twice:always" with
  | Ok _ -> Alcotest.fail "duplicate clauses must stay rejected"
  | Error _ -> ());
  Fault.with_plan (plan "site.twice:n=1") (fun () ->
      check_bool "fires once" true (Fault.trip "site.twice");
      check_bool "then stays quiet" false (Fault.trip "site.twice"))

let test_trip_counts () =
  Fault.with_plan (plan "site.a:n=2") (fun () ->
      check_bool "hit 1 does not fire" false (Fault.trip "site.a");
      check_bool "hit 2 fires" true (Fault.trip "site.a");
      check_bool "hit 3 does not fire" false (Fault.trip "site.a");
      check_bool "other site never fires" false (Fault.trip "site.b");
      check_int "fired count" 1 (Fault.fired "site.a"));
  (* Outside with_plan only an environment plan (the CI fault job) may
     be active. *)
  if Sys.getenv_opt "BGR_FAULT_PLAN" = None then
    check_bool "no plan installed outside with_plan" false (Fault.active ())

let test_always_and_check () =
  Fault.with_plan (plan "site.x:always") (fun () ->
      check_bool "always fires" true (Fault.trip "site.x");
      check_bool "always fires again" true (Fault.trip "site.x");
      match Fault.check ~phase:"demo" "site.x" with
      | () -> Alcotest.fail "check should raise"
      | exception Bgr_error.Error e ->
        check_bool "code is Fault" true (e.Bgr_error.code = Bgr_error.Fault))

let sum_with_pool pool n =
  let acc = Atomic.make 0 in
  Par.parallel_iter pool (fun i -> ignore (Atomic.fetch_and_add acc i)) n;
  Atomic.get acc

let expected_sum n = n * (n - 1) / 2

(* One worker dies mid-run: no chunk may be lost, and the pool heals
   itself (respawn) with a recorded warning. *)
let test_worker_death_recovers () =
  Fault.with_plan (plan "par.worker:n=1") (fun () ->
      let pool = Par.create ~domains:4 () in
      Fun.protect
        ~finally:(fun () -> Par.shutdown pool)
        (fun () ->
          let n = 5000 in
          check_int "no work lost on worker death" (expected_sum n) (sum_with_pool pool n);
          check_int "later rounds also complete" (expected_sum n) (sum_with_pool pool n);
          check_bool "the death left a warning" true (Par.warnings pool <> [])))

(* Every worker dies on every pickup: after each slot's one respawn is
   spent the pool is degraded — and still computes everything. *)
let test_all_workers_die_degrades () =
  Fault.with_plan (plan "par.worker:always") (fun () ->
      let pool = Par.create ~domains:4 () in
      Fun.protect
        ~finally:(fun () -> Par.shutdown pool)
        (fun () ->
          let n = 2000 in
          for _ = 1 to 4 do
            check_int "sequential fallback still sums" (expected_sum n) (sum_with_pool pool n)
          done;
          check_bool "pool reports degraded" true (Par.degraded pool)))

let test_spawn_failure_degrades () =
  Fault.with_plan (plan "par.spawn:always") (fun () ->
      let pool = Par.create ~domains:4 () in
      Fun.protect
        ~finally:(fun () -> Par.shutdown pool)
        (fun () ->
          let n = 1000 in
          check_int "spawn-less pool still sums" (expected_sum n) (sum_with_pool pool n);
          check_bool "degraded from birth" true (Par.degraded pool);
          check_bool "spawn failure recorded" true (Par.warnings pool <> [])))

(* The io.parse site turns into a structured Error on the Result path,
   never an exception. *)
let test_io_parse_fault () =
  Fault.with_plan (plan "io.parse:always") (fun () ->
      match Design_io.of_string_result ~file:"demo.bgr" "[netlist]\nlibrary ecl_default\n" with
      | Ok _ -> Alcotest.fail "expected the injected fault to surface"
      | Error e ->
        check_bool "code is Fault" true (e.Bgr_error.code = Bgr_error.Fault);
        check_bool "file stamped" true (e.Bgr_error.file = Some "demo.bgr")
      | exception e ->
        Alcotest.failf "exception escaped the Result path: %s" (Printexc.to_string e))

(* Routing under a worker-death plan must still match the clean
   sequential result: deaths cost parallelism, never correctness. *)
let test_routing_survives_worker_death () =
  let route ~domains =
    let case = Suite.mini () in
    let outcome =
      Flow.run
        ~options:{ Router.default_options with Router.domains }
        ~timing_driven:true case.Suite.input
    in
    Printf.sprintf "del=%d hash=%d" outcome.Flow.o_measurement.Flow.m_deletions
      (Router.deletion_hash outcome.Flow.o_router)
  in
  let clean = route ~domains:1 in
  let faulty = Fault.with_plan (plan "par.worker:n=2") (fun () -> route ~domains:4) in
  Alcotest.(check string) "worker death does not change the routing" clean faulty

let suite =
  [ Alcotest.test_case "parse_plan grammar" `Quick test_parse_plan;
    Alcotest.test_case "unknown sites rejected" `Quick test_unknown_site_rejected;
    Alcotest.test_case "declare_site double registration" `Quick test_declare_site_idempotent;
    Alcotest.test_case "n=K counting" `Quick test_trip_counts;
    Alcotest.test_case "always + check" `Quick test_always_and_check;
    Alcotest.test_case "worker death recovers" `Quick test_worker_death_recovers;
    Alcotest.test_case "all workers die -> degraded" `Quick test_all_workers_die_degrades;
    Alcotest.test_case "spawn failure -> degraded" `Quick test_spawn_failure_degrades;
    Alcotest.test_case "io.parse fault is structured" `Quick test_io_parse_fault;
    Alcotest.test_case "routing unaffected by worker death" `Quick
      test_routing_survives_worker_death ]

let () = Alcotest.run "fault" [ ("fault", suite) ]
