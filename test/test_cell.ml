(* Tests for bgr_cell: master validation and the built-in ECL library. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let simple_inv ?(width = 2) ?(arcs = [ { Cell.from_input = "A"; to_output = "Z"; intrinsic_ps = 50.0 } ])
    () =
  Cell.make ~name:"X" ~kind:Cell.Combinational ~width
    ~terminals:
      [ Cell.input_t ~name:"A" ~fanin_ff:1.0 ~offset:0;
        Cell.output_t ~name:"Z" ~tf:5.0 ~td:1.0 ~offset:1 ]
    ~arcs ()

let test_make_valid () =
  let c = simple_inv () in
  check_int "width" 2 c.Cell.width;
  check_int "terminal count" 2 (Array.length c.Cell.terminals);
  check_bool "has A" true (Cell.has_terminal c "A");
  check_bool "no B" false (Cell.has_terminal c "B");
  check_int "inputs" 1 (List.length (Cell.inputs c));
  check_int "outputs" 1 (List.length (Cell.outputs c));
  check_float "arc intrinsic" 50.0
    (match Cell.arcs_to c ~output:"Z" with [ a ] -> a.Cell.intrinsic_ps | _ -> nan)

let expect_malformed name f =
  match f () with
  | (_ : Cell.t) -> Alcotest.failf "%s: expected Cell.Malformed" name
  | exception Cell.Malformed _ -> ()

let test_make_invalid () =
  expect_malformed "zero width" (fun () ->
      Cell.make ~name:"X" ~kind:Cell.Combinational ~width:0 ~terminals:[] ~arcs:[] ());
  expect_malformed "offset outside cell" (fun () ->
      Cell.make ~name:"X" ~kind:Cell.Combinational ~width:2
        ~terminals:[ Cell.input_t ~name:"A" ~fanin_ff:1.0 ~offset:2;
                     Cell.output_t ~name:"Z" ~tf:1.0 ~td:1.0 ~offset:1 ]
        ~arcs:[] ());
  expect_malformed "duplicate terminal" (fun () ->
      Cell.make ~name:"X" ~kind:Cell.Combinational ~width:2
        ~terminals:
          [ Cell.input_t ~name:"A" ~fanin_ff:1.0 ~offset:0;
            Cell.input_t ~name:"A" ~fanin_ff:1.0 ~offset:1 ]
        ~arcs:[] ());
  expect_malformed "arc to unknown terminal" (fun () ->
      simple_inv ~arcs:[ { Cell.from_input = "A"; to_output = "Q"; intrinsic_ps = 1.0 } ] ());
  expect_malformed "arc source is output" (fun () ->
      simple_inv ~arcs:[ { Cell.from_input = "Z"; to_output = "Z"; intrinsic_ps = 1.0 } ] ());
  expect_malformed "negative intrinsic" (fun () ->
      simple_inv ~arcs:[ { Cell.from_input = "A"; to_output = "Z"; intrinsic_ps = -1.0 } ] ());
  expect_malformed "zero fanin input" (fun () ->
      Cell.make ~name:"X" ~kind:Cell.Combinational ~width:2
        ~terminals:[ Cell.input_t ~name:"A" ~fanin_ff:0.0 ~offset:0 ]
        ~arcs:[] ());
  expect_malformed "feed cell with terminals" (fun () ->
      Cell.make ~name:"X" ~kind:Cell.Feed_through ~width:1
        ~terminals:[ Cell.input_t ~name:"A" ~fanin_ff:1.0 ~offset:0 ]
        ~arcs:[] ());
  expect_malformed "flip-flop without sequential inputs" (fun () ->
      Cell.make ~name:"X" ~kind:Cell.Flipflop ~width:2
        ~terminals:[ Cell.input_t ~name:"D" ~fanin_ff:1.0 ~offset:0 ]
        ~arcs:[] ());
  expect_malformed "combinational with sequential inputs" (fun () ->
      Cell.make ~name:"X" ~kind:Cell.Combinational ~width:2
        ~terminals:[ Cell.input_t ~name:"A" ~fanin_ff:1.0 ~offset:0 ]
        ~arcs:[] ~sequential_inputs:[ "A" ] ())

let test_sequential_inputs () =
  let lib = Cell_lib.ecl_default in
  let dff = Cell_lib.find lib "DFF" in
  check_bool "D is sequential" true (Cell.is_sequential_input dff "D");
  check_bool "CK is sequential" true (Cell.is_sequential_input dff "CK");
  let inv = Cell_lib.find lib "INV1" in
  check_bool "INV1.A is not" false (Cell.is_sequential_input inv "A")

let test_library_lookup () =
  let lib = Cell_lib.ecl_default in
  check_bool "find INV1" true (Cell_lib.find_opt lib "INV1" <> None);
  check_bool "no such cell" true (Cell_lib.find_opt lib "NAND97" = None);
  check_bool "find raises" true
    (match Cell_lib.find lib "NAND97" with exception Not_found -> true | _ -> false);
  let feed = Cell_lib.feed_cell lib in
  check_bool "feed master" true (feed.Cell.kind = Cell.Feed_through);
  check_int "feed width 1" 1 feed.Cell.width

let test_library_well_formed () =
  (* Every master validates, every combinational input has an arc to
     some output, and outputs carry drive factors. *)
  let lib = Cell_lib.ecl_default in
  List.iter
    (fun (c : Cell.t) ->
      (match c.Cell.kind with
      | Cell.Combinational ->
        List.iter
          (fun (term : Cell.terminal) ->
            let has_arc =
              List.exists (fun (a : Cell.arc) -> a.Cell.from_input = term.Cell.t_name) c.Cell.arcs
            in
            Alcotest.(check bool)
              (Printf.sprintf "%s.%s drives an arc" c.Cell.name term.Cell.t_name)
              true has_arc)
          (Cell.inputs c)
      | Cell.Flipflop | Cell.Feed_through -> ());
      List.iter
        (fun (term : Cell.terminal) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s.%s has drive" c.Cell.name term.Cell.t_name)
            true
            (term.Cell.tf_ps_per_ff > 0.0 && term.Cell.td_ps_per_ff > 0.0))
        (Cell.outputs c))
    (Cell_lib.cells lib)

let test_library_duplicate () =
  let inv = simple_inv () in
  check_bool "duplicate master rejected" true
    (match Cell_lib.make ~name:"l" ~cells:[ inv; inv ] with
    | exception Cell.Malformed _ -> true
    | _ -> false)

let test_differential_master () =
  let ddrv = Cell_lib.find Cell_lib.ecl_default "DDRV" in
  check_int "two complementary outputs" 2 (List.length (Cell.outputs ddrv));
  check_int "arcs reach both" 2 (List.length ddrv.Cell.arcs)

let suite =
  [ Alcotest.test_case "make valid master" `Quick test_make_valid;
    Alcotest.test_case "make rejects malformed masters" `Quick test_make_invalid;
    Alcotest.test_case "sequential inputs" `Quick test_sequential_inputs;
    Alcotest.test_case "library lookup" `Quick test_library_lookup;
    Alcotest.test_case "ecl library well-formed" `Quick test_library_well_formed;
    Alcotest.test_case "library duplicate rejected" `Quick test_library_duplicate;
    Alcotest.test_case "differential master" `Quick test_differential_master ]

let () = Alcotest.run "cell" [ ("cell", suite) ]
