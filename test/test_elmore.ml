(* Tests for the Elmore RC extension (Sec. 2.1). *)

let check_bool = Alcotest.(check bool)

let routed_mini () =
  let case = Suite.mini () in
  let outcome = Flow.run case.Suite.input in
  (outcome.Flow.o_router, outcome.Flow.o_floorplan)

let test_zero_resistance_equals_lumped () =
  (* With r = 0 the Elmore delay collapses to Td * (wire capacitance),
     i.e. the paper's lumped model. *)
  let router, fp = routed_mini () in
  let netlist = Floorplan.netlist fp in
  let dims = { (Floorplan.dims fp) with Dims.res_ohm_per_um = 0.0 } in
  for net = 0 to Netlist.n_nets netlist - 1 do
    let rg = Router.routing_graph router net in
    let tree = Router.tree_edges router net in
    let r = Elmore.analyze ~dims ~netlist ~rg ~tree () in
    let lumped =
      Routing_graph.tree_capacitance rg ~edge_ids:tree *. Elmore.driver_td netlist rg
    in
    List.iter
      (fun (_, ps) ->
        Alcotest.(check (float 1e-6)) (Printf.sprintf "net %d sink delay" net) lumped ps)
      r.Elmore.delay_ps
  done

let test_rc_above_lumped () =
  (* With positive resistance every sink delay is at least the lumped
     delay (extra positive RC terms), and in the bipolar regime only
     slightly so. *)
  let router, fp = routed_mini () in
  let netlist = Floorplan.netlist fp in
  let dims = Floorplan.dims fp in
  for net = 0 to Netlist.n_nets netlist - 1 do
    let rg = Router.routing_graph router net in
    let tree = Router.tree_edges router net in
    let r = Elmore.analyze ~dims ~netlist ~rg ~tree () in
    let lumped =
      Routing_graph.tree_capacitance rg ~edge_ids:tree *. Elmore.driver_td netlist rg
    in
    List.iter
      (fun (_, ps) ->
        check_bool (Printf.sprintf "net %d rc >= lumped" net) true (ps >= lumped -. 1e-9);
        if lumped > 1.0 then
          check_bool
            (Printf.sprintf "net %d rc within 30%% of lumped (wide wires)" net)
            true
            (ps <= lumped *. 1.3))
      r.Elmore.delay_ps
  done

let test_sink_count () =
  let router, fp = routed_mini () in
  let netlist = Floorplan.netlist fp in
  let dims = Floorplan.dims fp in
  for net = 0 to Netlist.n_nets netlist - 1 do
    let rg = Router.routing_graph router net in
    let r = Elmore.analyze ~dims ~netlist ~rg ~tree:(Router.tree_edges router net) () in
    Alcotest.(check int)
      (Printf.sprintf "net %d: one delay per sink" net)
      (Netlist.fanout netlist net)
      (List.length r.Elmore.delay_ps);
    check_bool "worst is the max" true
      (List.for_all (fun (_, ps) -> ps <= r.Elmore.worst_ps +. 1e-9) r.Elmore.delay_ps)
  done

let test_monotone_in_resistance () =
  let router, fp = routed_mini () in
  let netlist = Floorplan.netlist fp in
  let base = Floorplan.dims fp in
  let rg = Router.routing_graph router 0 in
  let tree = Router.tree_edges router 0 in
  let worst r = (Elmore.analyze ~dims:r ~netlist ~rg ~tree ()).Elmore.worst_ps in
  let low = worst { base with Dims.res_ohm_per_um = 0.01 } in
  let high = worst { base with Dims.res_ohm_per_um = 0.1 } in
  check_bool "delay grows with resistance" true (high >= low)

let test_router_under_elmore () =
  (* The whole flow runs under the RC model and still routes; the
     selection heuristics are unchanged, as the paper promises. *)
  let case = Suite.mini () in
  let options = { Router.default_options with Router.delay_model = Router.Elmore_rc } in
  let outcome = Flow.run ~options case.Suite.input in
  check_bool "routed" true (Router.is_routed outcome.Flow.o_router);
  let m = outcome.Flow.o_measurement in
  check_bool "measured" true (m.Flow.m_delay_ps > 0.0);
  (* Compare with the lumped run: same circuit, similar outcome. *)
  let lumped = Flow.run case.Suite.input in
  let lm = lumped.Flow.o_measurement in
  check_bool "delay within 10% of the lumped run" true
    (abs_float (m.Flow.m_delay_ps -. lm.Flow.m_delay_ps) <= 0.10 *. lm.Flow.m_delay_ps)

let test_set_net_sink_delays () =
  let netlist, _ = Util.chain_netlist 3 in
  let dg = Delay_graph.build netlist in
  let dag = Delay_graph.dag dg in
  let net = 1 (* i0.Z -> i1.A *) in
  let base = List.map (Dag.weight dag) (Delay_graph.edges_of_net dg net) in
  Delay_graph.set_net_sink_delays dg ~net ~delay_of:(fun _ -> 42.0);
  let after = List.map (Dag.weight dag) (Delay_graph.edges_of_net dg net) in
  List.iter2
    (fun b a -> Alcotest.(check (float 1e-9)) "static + 42" (b +. 42.0) a)
    base after;
  check_bool "lumped cap now unknown" true (Float.is_nan (Delay_graph.net_cap dg net));
  (* sink_of_edge resolves. *)
  List.iter
    (fun e ->
      match Delay_graph.sink_of_edge dg e with
      | Netlist.Pin _ | Netlist.Port _ -> ())
    (Delay_graph.edges_of_net dg net);
  Delay_graph.set_net_cap dg ~net ~cap_ff:0.0;
  let restored = List.map (Dag.weight dag) (Delay_graph.edges_of_net dg net) in
  List.iter2 (fun b r -> Alcotest.(check (float 1e-9)) "restored" b r) base restored

let test_hand_computed_two_pin () =
  (* A single-trunk two-terminal net whose Elmore delay we can compute
     on paper:
       delay(sink) = Td * C_wire + R_wire * (C_wire/2 + F_in(sink)). *)
  let fp, netlist, invs = Util.small_floorplan () in
  let order = Util.id_order netlist in
  let assignment, failures = Feedthrough.assign fp ~order in
  Alcotest.(check bool) "assigned" true (failures = []);
  let net = Option.get (Netlist.net_of_pin netlist { Netlist.inst = invs.(0); term = "Z" }) in
  let rg = Routing_graph.build fp assignment ~net in
  let tree = Option.get (Routing_graph.tentative_tree rg) in
  let dims = Floorplan.dims fp in
  let r = Elmore.analyze ~dims ~netlist ~rg ~tree () in
  let um = Routing_graph.geometric_length_um rg ~edge_ids:tree in
  let c_wire = um *. Dims.cap_per_um_at dims ~width:1.0 in
  let r_wire = um *. Dims.res_kohm_per_um_at dims ~width:1.0 in
  let inv = Cell_lib.find Cell_lib.ecl_default "INV1" in
  let td = (Cell.terminal inv "Z").Cell.td_ps_per_ff in
  let f_in = (Cell.terminal inv "A").Cell.fanin_ff in
  let expected = (td *. c_wire) +. (r_wire *. ((c_wire /. 2.0) +. f_in)) in
  (match r.Elmore.delay_ps with
  | [ (_, ps) ] -> Alcotest.(check (float 1e-9)) "hand Elmore" expected ps
  | _ -> Alcotest.fail "expected exactly one sink");
  Alcotest.(check (float 1e-9)) "total cap = wire + load" (c_wire +. f_in) r.Elmore.total_cap_ff

let test_bound_probe_under_elmore () =
  (* Regression: probing the lower bound while per-sink delays are
     installed must restore the exact weights (a capacitance snapshot
     would re-inject NaN). *)
  let case = Suite.mini () in
  let options = { Router.default_options with Router.delay_model = Router.Elmore_rc } in
  let outcome = Flow.run ~options case.Suite.input in
  match outcome.Flow.o_sta with
  | None -> Alcotest.fail "expected sta"
  | Some sta ->
    let before = Sta.worst_path_delay sta in
    let bound = Lower_bound.critical_delay sta outcome.Flow.o_floorplan in
    check_bool "bound finite" true (Float.is_finite bound);
    Alcotest.(check (float 1e-9)) "weights restored" before (Sta.worst_path_delay sta);
    check_bool "no NaN smuggled in" true (Float.is_finite (Sta.worst_path_delay sta))

let suite =
  [ Alcotest.test_case "zero resistance equals lumped" `Quick test_zero_resistance_equals_lumped;
    Alcotest.test_case "bound probe under Elmore restores weights" `Quick test_bound_probe_under_elmore;
    Alcotest.test_case "hand-computed two-pin Elmore" `Quick test_hand_computed_two_pin;
    Alcotest.test_case "rc above lumped, slightly" `Quick test_rc_above_lumped;
    Alcotest.test_case "one delay per sink" `Quick test_sink_count;
    Alcotest.test_case "monotone in resistance" `Quick test_monotone_in_resistance;
    Alcotest.test_case "full flow under Elmore" `Quick test_router_under_elmore;
    Alcotest.test_case "per-sink delay graph update" `Quick test_set_net_sink_delays ]

let () = Alcotest.run "elmore" [ ("elmore", suite) ]
