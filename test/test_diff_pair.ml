(* Tests for differential-pair homology recognition (Sec. 4.1). *)

let check_bool = Alcotest.(check bool)

let pin = Util.pin

(* A pair circuit with [sep] columns between the receivers' inputs; the
   pair's routing graphs are homologous when the geometry lines up. *)
let pair_floorplan () =
  let b = Netlist.builder ~library:Cell_lib.ecl_default in
  let a = Netlist.add_port b ~name:"A" ~side:Netlist.South () in
  let drv = Netlist.add_instance b ~name:"drv" ~cell:"DDRV" in
  let r1 = Netlist.add_instance b ~name:"r1" ~cell:"OR2" in
  let _ = Netlist.add_net b ~name:"n0" ~driver:(Netlist.Port a) ~sinks:[ pin drv "A" ] () in
  let z = Netlist.add_net b ~name:"z" ~driver:(pin drv "Z") ~sinks:[ pin r1 "A" ] () in
  let zn = Netlist.add_net b ~name:"zn" ~driver:(pin drv "ZN") ~sinks:[ pin r1 "B" ] () in
  Netlist.pair_differential b z zn;
  let q = Netlist.add_port b ~name:"Q" ~side:Netlist.North () in
  let _ = Netlist.add_net b ~name:"n1" ~driver:(pin r1 "Z") ~sinks:[ Netlist.Port q ] () in
  let netlist = Netlist.freeze b in
  let cells =
    [ { Floorplan.inst = drv; row = 0; x = 0 }; { Floorplan.inst = r1; row = 2; x = 0 } ]
  in
  let slots = [ (1, 3, 0); (1, 4, 0); (1, 7, 0) ] in
  let fp = Floorplan.make ~netlist ~dims:Dims.default ~n_rows:3 ~width:12 ~cells ~slots () in
  let assignment, failures = Feedthrough.assign fp ~order:(Util.id_order netlist) in
  Alcotest.(check bool) "assigned" true (failures = []);
  (fp, assignment, z, zn)

let test_recognize_homologous () =
  let fp, assignment, z, zn = pair_floorplan () in
  let rga = Routing_graph.build fp assignment ~net:z in
  let rgb = Routing_graph.build fp assignment ~net:zn in
  match Diff_pair.recognize rga rgb with
  | None -> Alcotest.fail "expected homology"
  | Some emap ->
    (* The map covers every live edge bijectively with matching kinds. *)
    let seen = Hashtbl.create 16 in
    Ugraph.iter_edges rga.Routing_graph.graph (fun e ->
        let img = emap.(e.Ugraph.id) in
        check_bool "mapped" true (img >= 0);
        check_bool "image live" true (Ugraph.is_live rgb.Routing_graph.graph img);
        check_bool "injective" true (not (Hashtbl.mem seen img));
        Hashtbl.replace seen img ();
        let kind_tag rg eid =
          match Routing_graph.edge_kind rg eid with
          | Routing_graph.Trunk { channel; _ } -> (0, channel)
          | Routing_graph.Branch { row; _ } -> (1, row)
          | Routing_graph.Correspondence p -> (2, p.Routing_graph.channel)
        in
        check_bool "kinds and channels match" true (kind_tag rga e.Ugraph.id = kind_tag rgb img))

let test_recognize_rejects_mismatch () =
  let fp, assignment, z, zn = pair_floorplan () in
  let rga = Routing_graph.build fp assignment ~net:z in
  let rgb = Routing_graph.build fp assignment ~net:zn in
  (* Break homology: delete one edge from one graph only. *)
  let doomed = ref (-1) in
  Ugraph.iter_edges rgb.Routing_graph.graph (fun e -> if !doomed = -1 then doomed := e.Ugraph.id);
  Ugraph.delete_edge rgb.Routing_graph.graph !doomed;
  check_bool "asymmetric graphs rejected" true (Diff_pair.recognize rga rgb = None)

let test_mirrored_deletion_preserves_homology () =
  let fp, assignment, z, zn = pair_floorplan () in
  let rga = Routing_graph.build fp assignment ~net:z in
  let rgb = Routing_graph.build fp assignment ~net:zn in
  match Diff_pair.recognize rga rgb with
  | None -> Alcotest.fail "expected homology"
  | Some emap ->
    (* Delete a non-bridge in a and its image in b: still homologous. *)
    (match Bridges.non_bridge_ids rga.Routing_graph.graph with
    | [] -> () (* nothing deletable: trivially fine *)
    | eid :: _ ->
      Ugraph.delete_edge rga.Routing_graph.graph eid;
      Routing_graph.prune_dangling rga ~on_delete:(fun _ -> ());
      Ugraph.delete_edge rgb.Routing_graph.graph emap.(eid);
      Routing_graph.prune_dangling rgb ~on_delete:(fun _ -> ());
      check_bool "homology preserved by mirrored deletion" true
        (Diff_pair.recognize rga rgb <> None))

let suite =
  [ Alcotest.test_case "recognize homologous pair" `Quick test_recognize_homologous;
    Alcotest.test_case "reject mismatched graphs" `Quick test_recognize_rejects_mismatch;
    Alcotest.test_case "mirrored deletion keeps homology" `Quick test_mirrored_deletion_preserves_homology ]

let () = Alcotest.run "diff-pair" [ ("diff-pair", suite) ]
