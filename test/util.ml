(* Shared fixtures for the layout / timing / routing test suites. *)

let pin inst term = Netlist.Pin { Netlist.inst; term }

(* Inverter chain through [n] rows: IN (south) -> i0 -> ... -> OUT
   (north); instance [k] is meant for row [k mod rows]. *)
let chain_netlist n =
  let b = Netlist.builder ~library:Cell_lib.ecl_default in
  let p_in = Netlist.add_port b ~name:"IN" ~side:Netlist.South () in
  let p_out = Netlist.add_port b ~name:"OUT" ~side:Netlist.North () in
  let invs = List.init n (fun i -> Netlist.add_instance b ~name:(Printf.sprintf "i%d" i) ~cell:"INV1") in
  let arr = Array.of_list invs in
  let _ = Netlist.add_net b ~name:"n_in" ~driver:(Netlist.Port p_in) ~sinks:[ pin arr.(0) "A" ] () in
  for k = 0 to n - 2 do
    ignore
      (Netlist.add_net b ~name:(Printf.sprintf "n%d" k) ~driver:(pin arr.(k) "Z")
         ~sinks:[ pin arr.(k + 1) "A" ] ())
  done;
  let _ =
    Netlist.add_net b ~name:"n_out" ~driver:(pin arr.(n - 1) "Z") ~sinks:[ Netlist.Port p_out ] ()
  in
  (Netlist.freeze b, arr)

(* A 2x2 floorplan of the 4-inverter chain with feed slots sprinkled
   between the cells. *)
let small_floorplan ?(slots = [ (0, 4, 0); (0, 9, 0); (1, 4, 0); (1, 9, 0) ]) () =
  let netlist, invs = chain_netlist 4 in
  let cells =
    [ { Floorplan.inst = invs.(0); row = 0; x = 0 };
      { Floorplan.inst = invs.(1); row = 0; x = 6 };
      { Floorplan.inst = invs.(2); row = 1; x = 0 };
      { Floorplan.inst = invs.(3); row = 1; x = 6 } ]
  in
  let fp = Floorplan.make ~netlist ~dims:Dims.default ~n_rows:2 ~width:12 ~cells ~slots () in
  (fp, netlist, invs)

(* All-sources/all-sinks constraint over a netlist's delay graph. *)
let blanket_constraint ?(limit_ps = 1.0e6) dg =
  let node v = Delay_graph.node dg v in
  Path_constraint.make ~name:"all"
    ~sources:(List.map node (Delay_graph.natural_sources dg))
    ~sinks:(List.map node (Delay_graph.natural_sinks dg))
    ~limit_ps

(* Identity net order. *)
let id_order netlist = List.init (Netlist.n_nets netlist) Fun.id

(* Recompute a Density.t from scratch out of the router's live trunks;
   used to audit the incrementally maintained charts. *)
let recount_density router fp =
  let dens = Density.create ~n_channels:(Floorplan.n_channels fp) ~width:(Floorplan.width fp) in
  let netlist = Floorplan.netlist fp in
  for net = 0 to Netlist.n_nets netlist - 1 do
    let rg = Router.routing_graph router net in
    let bridge = Bridges.bridges rg.Routing_graph.graph in
    Ugraph.iter_edges rg.Routing_graph.graph (fun e ->
        match Routing_graph.edge_kind rg e.Ugraph.id with
        | Routing_graph.Trunk { channel; span } ->
          Density.add_trunk dens ~channel ~span ~w:rg.Routing_graph.pitch
            ~bridge:bridge.(e.Ugraph.id)
        | Routing_graph.Branch _ | Routing_graph.Correspondence _ -> ())
  done;
  dens

let densities_equal a b ~n_channels ~width =
  let ok = ref true in
  for c = 0 to n_channels - 1 do
    for x = 0 to width - 1 do
      if Density.dM_at a ~channel:c ~x <> Density.dM_at b ~channel:c ~x then ok := false;
      if Density.dm_at a ~channel:c ~x <> Density.dm_at b ~channel:c ~x then ok := false
    done
  done;
  !ok
