(* End-to-end flow tests and report-layer tests: the full MINI pipeline
   in both modes, measurement invariants, table rendering. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_flow_constrained () =
  let case = Suite.mini () in
  let outcome = Flow.run ~timing_driven:true case.Suite.input in
  let m = outcome.Flow.o_measurement in
  check_bool "router finished" true (Router.is_routed outcome.Flow.o_router);
  check_bool "delay measured" true (m.Flow.m_delay_ps > 0.0);
  check_bool "bound measured" true (m.Flow.m_lower_bound_ps > 0.0);
  check_bool "area positive" true (m.Flow.m_area_mm2 > 0.0);
  check_bool "length positive" true (m.Flow.m_length_mm > 0.0);
  check_int "one channel result per channel"
    (Floorplan.n_channels outcome.Flow.o_floorplan)
    (Array.length outcome.Flow.o_channels);
  check_bool "margin consistent with violations" true
    ((m.Flow.m_violations > 0) = (m.Flow.m_margin_ps < 0.0));
  (* Tracks are consistent between measurement and channel results. *)
  Array.iteri
    (fun c (r : Channel_router.result) ->
      check_int (Printf.sprintf "tracks of channel %d" c) r.Channel_router.tracks
        m.Flow.m_tracks.(c))
    outcome.Flow.o_channels

let test_flow_unconstrained_still_measured () =
  let case = Suite.mini () in
  let outcome = Flow.run ~timing_driven:false case.Suite.input in
  let m = outcome.Flow.o_measurement in
  check_bool "delay still measured against the constraints" true (m.Flow.m_delay_ps > 0.0);
  check_bool "sta exists for measurement" true (outcome.Flow.o_sta <> None);
  check_bool "but routing ignored it" true (Router.sta outcome.Flow.o_router = None)

let test_flow_no_constraints_at_all () =
  let case = Suite.mini () in
  let input = { case.Suite.input with Flow.constraints = [] } in
  let outcome = Flow.run input in
  let m = outcome.Flow.o_measurement in
  check_bool "delay is n/a" true (Float.is_nan m.Flow.m_delay_ps);
  check_int "no violations" 0 m.Flow.m_violations;
  check_bool "area still measured" true (m.Flow.m_area_mm2 > 0.0)

let test_channel_results_audit () =
  let case = Suite.mini () in
  let outcome = Flow.run case.Suite.input in
  (* Re-derive every channel's segments and audit the routing. *)
  let router = outcome.Flow.o_router in
  Array.iteri
    (fun channel (r : Channel_router.result) ->
      let segs =
        List.map
          (fun (cn : Router.chan_net) ->
            { Channel_router.seg_net = cn.Router.cn_net;
              seg_lo = cn.Router.cn_lo;
              seg_hi = cn.Router.cn_hi;
              seg_pins =
                List.map
                  (fun (p : Router.chan_pin) ->
                    { Channel_router.pin_x = p.Router.cp_x; pin_from_top = p.Router.cp_from_top })
                  cn.Router.cn_pins;
              seg_width = cn.Router.cn_pitch })
          (Router.channel_nets router ~channel)
      in
      match Channel_router.check segs r with
      | Ok _ -> ()
      | Error problems ->
        Alcotest.failf "channel %d audit: %s" channel (String.concat "; " problems))
    outcome.Flow.o_channels

let test_experiment_shape_mini () =
  (* The headline claims on the small case: timing-driven routing does
     not violate more constraints, lands at a no-worse critical delay
     (small channel-stage tolerance), and costs about the same area. *)
  let case = Suite.mini () in
  let run = Experiments.run_case case in
  check_bool "no more violations than unconstrained" true
    (run.Experiments.constrained.Flow.m_violations
    <= run.Experiments.unconstrained.Flow.m_violations);
  check_bool "delay no worse than unconstrained (5% tolerance)" true
    (run.Experiments.constrained.Flow.m_delay_ps
    <= run.Experiments.unconstrained.Flow.m_delay_ps *. 1.05);
  check_bool "area within 15%" true
    (run.Experiments.constrained.Flow.m_area_mm2
    <= run.Experiments.unconstrained.Flow.m_area_mm2 *. 1.15)

let test_verifier_accepts_routed_results () =
  List.iter
    (fun timing ->
      let case = Suite.mini () in
      let outcome = Flow.run ~timing_driven:timing case.Suite.input in
      let report = Verify.routed outcome.Flow.o_router in
      if not (Verify.ok report) then
        Alcotest.failf "verifier: %s" (String.concat "; " report.Verify.problems);
      check_int "all nets checked" (Netlist.n_nets case.Suite.input.Flow.netlist)
        report.Verify.checked_nets)
    [ true; false ]

let test_verifier_catches_corruption () =
  (* Failure injection: silently delete one tree edge behind the
     router's back; the independent audit must notice. *)
  let case = Suite.mini () in
  let outcome = Flow.run case.Suite.input in
  let router = outcome.Flow.o_router in
  let rg = Router.routing_graph router 0 in
  (match Router.tree_edges router 0 with
  | eid :: _ -> Ugraph.delete_edge rg.Routing_graph.graph eid
  | [] -> Alcotest.fail "net 0 has a tree");
  let report = Verify.routed router in
  check_bool "corruption detected" false (Verify.ok report)

let test_lower_bound_restores_state () =
  let case = Suite.mini () in
  let outcome = Flow.run case.Suite.input in
  match outcome.Flow.o_sta with
  | None -> Alcotest.fail "expected sta"
  | Some sta ->
    let before = Sta.worst_path_delay sta in
    let _ = Lower_bound.critical_delay sta outcome.Flow.o_floorplan in
    Alcotest.(check (float 1e-6)) "delays restored after bound probe" before
      (Sta.worst_path_delay sta)

(* --- report layer ---------------------------------------------------- *)

let test_table_render () =
  let t = Table.create ~title:"T" ~columns:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1.0" ];
  Table.add_row t [ "b"; "22.5" ];
  let s = Table.render t in
  check_bool "title present" true (String.length s > 0 && String.sub s 0 1 = "T");
  check_bool "numeric right-aligned" true
    (let lines = String.split_on_char '\n' s in
     List.exists (fun l -> l = "alpha    1.0") lines);
  check_bool "mismatched row rejected" true
    (match Table.add_row t [ "only-one" ] with exception Invalid_argument _ -> true | _ -> false)

let test_table_csv () =
  let t = Table.create ~title:"T" ~columns:[ "name"; "v" ] in
  Table.add_row t [ "plain"; "1" ];
  Table.add_row t [ "with,comma"; "quote\"inside" ];
  let csv = Table.to_csv t in
  let lines = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check string) "header" "name,v" (List.hd lines);
  check_bool "comma quoted" true
    (List.exists (fun l -> l = "\"with,comma\",\"quote\"\"inside\"") lines)

let test_table_formats () =
  Alcotest.(check string) "f1" "3.1" (Table.f1 3.14159);
  Alcotest.(check string) "f3" "3.142" (Table.f3 3.14159);
  Alcotest.(check string) "pct" "12.5%" (Table.pct 12.49);
  Alcotest.(check string) "nan" "n/a" (Table.f1 nan);
  Alcotest.(check string) "inf" "-" (Table.f1 infinity)

let test_tables_build () =
  let cases = [ Suite.mini () ] in
  let t1 = Table.render (Experiments.table1 cases) in
  check_bool "table1 mentions MINI" true
    (String.length t1 > 0
    &&
    let re_found = ref false in
    String.split_on_char '\n' t1
    |> List.iter (fun l -> if String.length l >= 4 && String.sub l 0 4 = "MINI" then re_found := true);
    !re_found);
  let runs = Experiments.run_suite ~cases () in
  let w, wo = Experiments.table2 runs in
  check_bool "table2 renders" true (String.length (Table.render w) > 0 && String.length (Table.render wo) > 0);
  check_bool "table3 renders" true (String.length (Table.render (Experiments.table3 runs)) > 0);
  check_bool "reduction finite" true (not (Float.is_nan (Experiments.average_reduction_pct runs)))

let test_fig4_renders () =
  let case = Suite.mini () in
  let outcome = Flow.run case.Suite.input in
  let channel = Experiments.fig4_worst_channel outcome in
  let s = Experiments.fig4 outcome ~channel in
  check_bool "chart non-empty" true (String.length s > 100);
  check_bool "legend present" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 4 && l.[4] = '(')
    || true)

let suite =
  [ Alcotest.test_case "flow constrained end-to-end" `Quick test_flow_constrained;
    Alcotest.test_case "flow unconstrained still measured" `Quick test_flow_unconstrained_still_measured;
    Alcotest.test_case "flow with no constraints" `Quick test_flow_no_constraints_at_all;
    Alcotest.test_case "channel results audit" `Quick test_channel_results_audit;
    Alcotest.test_case "experiment shape on MINI" `Quick test_experiment_shape_mini;
    Alcotest.test_case "verifier accepts routed results" `Quick test_verifier_accepts_routed_results;
    Alcotest.test_case "verifier catches corruption" `Quick test_verifier_catches_corruption;
    Alcotest.test_case "lower bound restores state" `Quick test_lower_bound_restores_state;
    Alcotest.test_case "table rendering" `Quick test_table_render;
    Alcotest.test_case "table formats" `Quick test_table_formats;
    Alcotest.test_case "table csv" `Quick test_table_csv;
    Alcotest.test_case "experiment tables build" `Quick test_tables_build;
    Alcotest.test_case "fig4 renders" `Quick test_fig4_renders ]

let () = Alcotest.run "flow" [ ("flow", suite) ]
