(* The observability subsystem must observe without perturbing: unit
   tests of span nesting and the registry, golden Chrome-trace / JSONL
   / Prometheus renderings under an injected clock, a QCheck histogram
   invariant, sink-fault degradation, and the headline property — a
   run with tracing enabled produces a deletion hash byte-identical to
   the same run without it, sequentially and on four domains. *)

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)

(* dune runtest runs in test/; dune exec from the repo root. *)
let corpus_dir = if Sys.file_exists "corpus" then "corpus" else "test/corpus"

(* Hand-cranked clock (seconds).  Values are multiples of 0.5 so every
   subtraction and *1e6 below is exact in binary floating point. *)
let t_ref = ref 0.0

let with_test_clock f =
  Obs.set_clock_for_tests (Some (fun () -> !t_ref));
  t_ref := 100.0;
  Obs.enable ();
  Obs.reset ();
  (* epoch re-stamped from the test clock: 100.0s *)
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ();
      Obs.set_clock_for_tests None)
    f

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A fixed scenario used by the nesting and both trace-golden tests:
   outer [0s..2s] containing inner [0.5s..1s] (one attr at open, one
   attached later to outer) and an instant at 0.5s. *)
let record_scenario () =
  t_ref := 100.0;
  Obs.Trace.span "outer" (fun () ->
      t_ref := 100.5;
      Obs.Trace.span "inner" ~attrs:[ ("k", Obs.Trace.Int 3) ] (fun () ->
          Obs.Trace.instant "tick";
          t_ref := 101.0);
      Obs.Trace.add_attr "note" (Obs.Trace.Str "x");
      t_ref := 102.0)

(* ---- span nesting and ordering ------------------------------------- *)

let test_span_nesting () =
  with_test_clock (fun () ->
      record_scenario ();
      match Obs.Trace.completed () with
      | [ tick; inner; outer ] ->
        (* completion order: children before parents *)
        check_string "instant first" "tick" tick.Obs.Trace.sp_name;
        check_string "inner second" "inner" inner.Obs.Trace.sp_name;
        check_string "outer last" "outer" outer.Obs.Trace.sp_name;
        check_int "outer depth" 0 outer.Obs.Trace.sp_depth;
        check_int "inner depth" 1 inner.Obs.Trace.sp_depth;
        check_int "instant depth (both scopes open)" 2 tick.Obs.Trace.sp_depth;
        check_string "outer timestamps" "0 2000000"
          (Printf.sprintf "%.0f %.0f" outer.Obs.Trace.sp_start_us outer.Obs.Trace.sp_dur_us);
        check_string "inner timestamps" "500000 500000"
          (Printf.sprintf "%.0f %.0f" inner.Obs.Trace.sp_start_us inner.Obs.Trace.sp_dur_us);
        check_string "instant is zero-duration" "500000 0"
          (Printf.sprintf "%.0f %.0f" tick.Obs.Trace.sp_start_us tick.Obs.Trace.sp_dur_us);
        check_bool "inner keeps its open-time attr" true
          (inner.Obs.Trace.sp_attrs = [ ("k", Obs.Trace.Int 3) ]);
        check_bool "add_attr landed on outer" true
          (outer.Obs.Trace.sp_attrs = [ ("note", Obs.Trace.Str "x") ])
      | spans -> Alcotest.failf "expected 3 completed spans, got %d" (List.length spans))

let test_span_survives_exception () =
  with_test_clock (fun () ->
      t_ref := 10.0;
      (try
         Obs.Trace.span "doomed" (fun () ->
             t_ref := 10.5;
             failwith "boom")
       with Failure _ -> ());
      match Obs.Trace.completed () with
      | [ sp ] ->
        check_string "span recorded despite the raise" "doomed" sp.Obs.Trace.sp_name;
        check_string "duration covers up to the raise" "500000"
          (Printf.sprintf "%.0f" sp.Obs.Trace.sp_dur_us)
      | spans -> Alcotest.failf "expected 1 completed span, got %d" (List.length spans))

(* ---- cross-process stitching primitives ---------------------------- *)

let test_span_ids_and_foreign () =
  with_test_clock (fun () ->
      Obs.Trace.set_trace_id (Some "job-42");
      let captured = ref None in
      record_scenario ();
      Obs.Trace.set_trace_id None;
      Obs.Trace.span "probe" (fun () -> captured := Obs.Trace.current_span_id ());
      let spans = Obs.Trace.completed () in
      (* ids are 1-based ordinals in open order; parents link correctly *)
      let by_name n = List.find (fun s -> s.Obs.Trace.sp_name = n) spans in
      let outer = by_name "outer" and inner = by_name "inner" and tick = by_name "tick" in
      check_int "outer is span 1" 1 outer.Obs.Trace.sp_id;
      check_int "inner is span 2" 2 inner.Obs.Trace.sp_id;
      check_int "outer is a root" 0 outer.Obs.Trace.sp_parent;
      check_int "inner hangs off outer" 1 inner.Obs.Trace.sp_parent;
      check_int "the instant hangs off inner" 2 tick.Obs.Trace.sp_parent;
      check_int "default pid" 1 outer.Obs.Trace.sp_pid;
      check_bool "current_span_id sees the open span" true
        (!captured = Some (by_name "probe").Obs.Trace.sp_id);
      check_bool "ambient trace id lands in attrs" true
        (List.assoc_opt "trace_id" outer.Obs.Trace.sp_attrs = Some (Obs.Trace.Str "job-42"));
      check_bool "probe opened after the id was cleared" true
        (List.assoc_opt "trace_id" (by_name "probe").Obs.Trace.sp_attrs = None);
      (* foreign spans keep their pid/id/parent verbatim *)
      let foreign =
        { Obs.Trace.sp_name = "phase:route"; sp_start_us = 10.0; sp_dur_us = 20.0;
          sp_depth = 0; sp_id = 7; sp_parent = outer.Obs.Trace.sp_id; sp_pid = 4242;
          sp_attrs = [ ("trace_id", Obs.Trace.Str "job-42") ] }
      in
      Obs.Trace.emit_foreign foreign;
      match List.rev (Obs.Trace.completed ()) with
      | last :: _ ->
        check_string "foreign span retained" "phase:route" last.Obs.Trace.sp_name;
        check_int "foreign pid preserved" 4242 last.Obs.Trace.sp_pid;
        check_int "foreign id preserved" 7 last.Obs.Trace.sp_id;
        check_int "foreign parent preserved" outer.Obs.Trace.sp_id last.Obs.Trace.sp_parent
      | [] -> Alcotest.fail "no spans retained")

let test_parent_span_links_roots () =
  with_test_clock (fun () ->
      Obs.Trace.set_parent_span (Some 99);
      Obs.Trace.span "root" (fun () -> Obs.Trace.span "child" (fun () -> ()));
      Obs.Trace.set_parent_span None;
      Obs.Trace.span "after" (fun () -> ());
      let by_name n =
        List.find (fun s -> s.Obs.Trace.sp_name = n) (Obs.Trace.completed ())
      in
      check_int "depth-0 span adopts the foreign parent" 99 (by_name "root").Obs.Trace.sp_parent;
      check_int "nested spans keep their local parent" (by_name "root").Obs.Trace.sp_id
        (by_name "child").Obs.Trace.sp_parent;
      check_int "cleared: roots are roots again" 0 (by_name "after").Obs.Trace.sp_parent)

(* ---- metrics snapshot codec ---------------------------------------- *)

let snap_counter = Obs.Metrics.counter ~labels:[ "k" ] "test_snapshot_ops_total"
let snap_gauge = Obs.Metrics.gauge "test_snapshot_level"

let snap_hist =
  Obs.Metrics.histogram ~buckets:[| 1.0; 10.0 |] "test_snapshot_lat_seconds"

let test_snapshot_roundtrip () =
  Obs.set_clock_for_tests None;
  Obs.enable ();
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Obs.disable (); Obs.reset ())
  @@ fun () ->
  Obs.Metrics.inc ~labels:[ ("k", "a") ] ~by:3.0 snap_counter;
  Obs.Metrics.inc ~labels:[ ("k", "b") ] snap_counter;
  Obs.Metrics.set snap_gauge 17.5;
  Obs.Metrics.observe snap_hist 0.5;
  Obs.Metrics.observe snap_hist 99.0;
  let snap = Obs.Metrics.snapshot () in
  check_bool "snapshot has the magic line" true
    (String.length snap >= 13 && String.sub snap 0 13 = "bgr-metrics 1");
  (* merging a registry's own snapshot doubles counters and histogram
     tallies and leaves gauges at their (last-write) value *)
  let merged = Obs.Metrics.merge_snapshot ~source:"self" snap in
  check_bool "merged several series" true (merged >= 4);
  check_bool "counter doubled" true
    (Obs.Metrics.value ~labels:[ ("k", "a") ] snap_counter = Some 6.0);
  check_bool "other series too" true
    (Obs.Metrics.value ~labels:[ ("k", "b") ] snap_counter = Some 2.0);
  check_bool "gauge takes the snapshot value" true
    (Obs.Metrics.value snap_gauge = Some 17.5);
  (match Obs.Metrics.histogram_snapshot snap_hist with
  | Some (bounds, counts, sum, count) ->
    check_bool "bucket bounds intact" true (bounds = [| 1.0; 10.0 |]);
    check_bool "per-bucket counts doubled" true (counts = [| 2; 0; 2 |]);
    check_bool "sum doubled" true (Float.abs (sum -. 199.0) < 1e-9);
    check_int "count doubled" 4 count
  | None -> Alcotest.fail "histogram series vanished");
  (* garbage degrades to a warning, not an exception *)
  let before = List.length (Obs.warnings ()) in
  check_int "garbage merges zero series" 0
    (Obs.Metrics.merge_snapshot ~source:"junk" "not a snapshot\n");
  check_bool "and warns" true (List.length (Obs.warnings ()) > before)

(* ---- golden renderings --------------------------------------------- *)

let test_chrome_golden () =
  with_test_clock (fun () ->
      let path = Filename.temp_file "bgr_obs_chrome" ".json" in
      Obs.Trace.to_chrome_file path;
      record_scenario ();
      Obs.Trace.close_sinks ();
      let got = read_file path in
      Sys.remove path;
      let expected =
        "[\n\
         {\"name\":\"tick\",\"cat\":\"bgr\",\"ph\":\"i\",\"pid\":1,\"tid\":1,\"ts\":500000.000,\"s\":\"t\"},\n\
         {\"name\":\"inner\",\"cat\":\"bgr\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":500000.000,\"dur\":500000.000,\"args\":{\"k\":3}},\n\
         {\"name\":\"outer\",\"cat\":\"bgr\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0.000,\"dur\":2000000.000,\"args\":{\"note\":\"x\"}}\n\
         ]\n"
      in
      check_string "chrome trace_event golden" expected got)

let test_jsonl_golden () =
  with_test_clock (fun () ->
      let path = Filename.temp_file "bgr_obs_jsonl" ".jsonl" in
      Obs.Trace.to_jsonl_file path;
      record_scenario ();
      Obs.Trace.close_sinks ();
      let got = read_file path in
      Sys.remove path;
      let expected =
        "{\"name\":\"tick\",\"start_us\":500000.000,\"dur_us\":0.000,\"depth\":2,\"id\":3,\"parent\":2,\"pid\":1}\n\
         {\"name\":\"inner\",\"start_us\":500000.000,\"dur_us\":500000.000,\"depth\":1,\"id\":2,\"parent\":1,\"pid\":1,\"args\":{\"k\":3}}\n\
         {\"name\":\"outer\",\"start_us\":0.000,\"dur_us\":2000000.000,\"depth\":0,\"id\":1,\"parent\":0,\"pid\":1,\"args\":{\"note\":\"x\"}}\n"
      in
      check_string "jsonl golden" expected got)

(* The test executable links the whole pipeline, so the registry holds
   every built-in family; golden-check the rendering of families this
   test owns (contiguous per-family blocks) rather than the whole
   exposition. *)
(* Unwrapped libraries drop unreferenced modules at link time, and with
   them the module-load metric registrations; touch the persist modules
   so their catalogue entries exist, as they do in bgr_run. *)
let () = ignore Journal.magic
let () = ignore Snapshot.write

let test_prometheus_golden () =
  Obs.set_clock_for_tests None;
  Obs.enable ();
  Obs.reset ();
  let c = Obs.Metrics.counter "test_obs_requests_total" ~help:"Total requests." ~labels:[ "code" ] in
  let g = Obs.Metrics.gauge "test_obs_temperature" in
  let h = Obs.Metrics.histogram "test_obs_latency_seconds" ~buckets:[| 0.1; 1.0 |] in
  Obs.Metrics.inc c ~labels:[ ("code", "200") ] ~by:3.0;
  Obs.Metrics.inc c ~labels:[ ("code", "500") ];
  Obs.Metrics.set g 36.5;
  List.iter (Obs.Metrics.observe h) [ 0.05; 0.5; 5.0 ];
  let text = Obs.Metrics.render_prometheus () in
  let contains block =
    let bl = String.length block and tl = String.length text in
    let rec scan i = i + bl <= tl && (String.sub text i bl = block || scan (i + 1)) in
    check_bool (Printf.sprintf "exposition contains %S" block) true (scan 0)
  in
  contains
    "# HELP test_obs_requests_total Total requests.\n\
     # TYPE test_obs_requests_total counter\n\
     test_obs_requests_total{code=\"200\"} 3\n\
     test_obs_requests_total{code=\"500\"} 1\n";
  contains "# TYPE test_obs_temperature gauge\ntest_obs_temperature 36.5\n";
  contains
    "# TYPE test_obs_latency_seconds histogram\n\
     test_obs_latency_seconds_bucket{le=\"0.1\"} 1\n\
     test_obs_latency_seconds_bucket{le=\"1\"} 2\n\
     test_obs_latency_seconds_bucket{le=\"+Inf\"} 3\n\
     test_obs_latency_seconds_sum 5.55\n\
     test_obs_latency_seconds_count 3\n";
  (* promtool-ish shape check over the whole exposition *)
  let is_name_char ch =
    (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || (ch >= '0' && ch <= '9')
    || ch = '_' || ch = ':' || ch = '{' || ch = '}' || ch = '"' || ch = '=' || ch = ','
    || ch = '.' || ch = '+' || ch = '-' || ch = '/'
  in
  List.iter
    (fun line ->
      if line <> "" && not (String.length line >= 2 && String.sub line 0 2 = "# ") then begin
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "sample line has no value: %S" line
        | Some i ->
          let name = String.sub line 0 i in
          let v = String.sub line (i + 1) (String.length line - i - 1) in
          check_bool (Printf.sprintf "sample name well-formed: %S" line) true
            (name <> "" && String.for_all is_name_char name);
          check_bool (Printf.sprintf "sample value parses: %S" line) true
            (float_of_string_opt v <> None)
      end)
    (String.split_on_char '\n' text);
  (* mandatory catalogue names render even on a run that routed nothing *)
  List.iter
    (fun m -> contains (Printf.sprintf "# TYPE %s " m))
    [ "bgr_deletions_total";
      "bgr_phase_duration_seconds";
      "bgr_channel_density_peak";
      "bgr_journal_append_seconds";
      "bgr_domain_busy_seconds" ];
  Obs.disable ();
  Obs.reset ()

(* ---- QCheck: histogram bucket invariant ---------------------------- *)

(* Families persist in the process-global registry, so every property
   iteration (shrinks included) registers under a fresh name. *)
let hist_n = ref 0

let prop_histogram_counts =
  QCheck.Test.make ~name:"bucket counts sum to observation count" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 6) small_nat)
        (small_list (int_range (-200) 2000)))
    (fun (raw_bounds, raw_obs) ->
      let bounds =
        List.sort_uniq compare (List.map (fun n -> float_of_int (n + 1)) raw_bounds)
      in
      QCheck.assume (bounds <> []);
      incr hist_n;
      let fam =
        Obs.Metrics.histogram
          (Printf.sprintf "test_obs_prop_hist_%d" !hist_n)
          ~buckets:(Array.of_list bounds)
      in
      Obs.enable ();
      List.iter (fun v -> Obs.Metrics.observe fam (float_of_int v)) raw_obs;
      match Obs.Metrics.histogram_snapshot fam with
      | None -> false
      | Some (bounds', counts, sum, count) ->
        Array.length counts = Array.length bounds' + 1
        && Array.fold_left ( + ) 0 counts = count
        && count = List.length raw_obs
        (* integer-valued observations: the sum is exact *)
        && sum = List.fold_left (fun a v -> a +. float_of_int v) 0.0 raw_obs)

(* ---- sink-fault degradation ---------------------------------------- *)

let test_sink_fault_degrades () =
  Obs.set_clock_for_tests None;
  Obs.enable ();
  Obs.reset ();
  let path = Filename.temp_file "bgr_obs_fault" ".json" in
  (match Fault.parse_plan "obs.sink:n=1" with
  | Error m -> Alcotest.failf "fault plan: %s" m
  | Ok plan ->
    Fault.with_plan plan (fun () ->
        Obs.Trace.to_chrome_file path;
        Obs.Trace.span "first" (fun () -> ());
        (* the first write tripped *)
        Obs.Trace.span "second" (fun () -> ());
        (* sink gone, still no raise *)
        Obs.Trace.close_sinks ());
    check_int "both spans still retained in memory" 2 (List.length (Obs.Trace.completed ()));
    check_bool "degradation left a warning" true (Obs.warnings () <> []));
  Obs.disable ();
  Obs.reset ();
  Sys.remove path

(* ---- sink replacement warns ---------------------------------------- *)

let test_double_sink_install_warns () =
  Obs.set_clock_for_tests None;
  Obs.enable ();
  Obs.reset ();
  let p1 = Filename.temp_file "bgr_obs_dbl" ".json" in
  let p2 = Filename.temp_file "bgr_obs_dbl" ".json" in
  Obs.Trace.to_chrome_file p1;
  check_bool "first install is silent" true (Obs.warnings () = []);
  Obs.Trace.to_chrome_file p2;
  let warned =
    List.exists
      (fun w ->
        let wl = String.length w in
        let rec has i = i + 8 <= wl && (String.sub w i 8 = "reopened" || has (i + 1)) in
        has 0)
      (Obs.warnings ())
  in
  check_bool "replacing an open sink records a warning" true warned;
  Obs.Trace.span "x" (fun () -> ());
  Obs.Trace.close_sinks ();
  (* the replacement sink is the live one: it got the event stream *)
  check_bool "second sink received the events" true
    (String.length (read_file p2) > String.length (read_file p1));
  Obs.disable ();
  Obs.reset ();
  Sys.remove p1;
  Sys.remove p2

(* ---- prometheus edge cases ----------------------------------------- *)

let contains_block text block =
  let bl = String.length block and tl = String.length text in
  let rec scan i = i + bl <= tl && (String.sub text i bl = block || scan (i + 1)) in
  scan 0

let test_prom_label_escaping () =
  Obs.set_clock_for_tests None;
  Obs.enable ();
  Obs.reset ();
  let c = Obs.Metrics.counter "test_obs_escape_total" ~labels:[ "path" ] in
  Obs.Metrics.inc c ~labels:[ ("path", "a\"b\\c\nd") ];
  let text = Obs.Metrics.render_prometheus () in
  check_bool "label value is exposition-escaped" true
    (contains_block text "test_obs_escape_total{path=\"a\\\"b\\\\c\\nd\"} 1\n");
  check_bool "no raw newline leaks into the sample line" true
    (not (contains_block text "a\"b\\c\nd"));
  Obs.disable ();
  Obs.reset ()

let test_histogram_no_observations () =
  Obs.set_clock_for_tests None;
  Obs.enable ();
  Obs.reset ();
  ignore (Obs.Metrics.histogram "test_obs_empty_hist_seconds" ~buckets:[| 0.5; 2.0 |]);
  let text = Obs.Metrics.render_prometheus () in
  check_bool "zero-observation histogram renders all-zero buckets" true
    (contains_block text
       "# TYPE test_obs_empty_hist_seconds histogram\n\
        test_obs_empty_hist_seconds_bucket{le=\"0.5\"} 0\n\
        test_obs_empty_hist_seconds_bucket{le=\"2\"} 0\n\
        test_obs_empty_hist_seconds_bucket{le=\"+Inf\"} 0\n\
        test_obs_empty_hist_seconds_sum 0\n\
        test_obs_empty_hist_seconds_count 0\n");
  Obs.disable ();
  Obs.reset ()

(* ---- the flight recorder ------------------------------------------- *)

let ft_ref = ref 0.0

let with_flight_clock f =
  Flight.reset_for_tests ();
  Flight.set_clock_for_tests (Some (fun () -> !ft_ref));
  ft_ref := 0.0;
  Fun.protect
    ~finally:(fun () ->
      Flight.set_clock_for_tests None;
      Flight.set_enabled true;
      Flight.reset_for_tests ())
    f

let flight_events d =
  List.concat_map (fun rg -> rg.Flight.rg_events) d.Flight.f_rings

let test_flight_roundtrip () =
  with_flight_clock (fun () ->
      ft_ref := 0.25;
      Flight.record Flight.k_phase ~a:(Flight.phase_code "initial_route") ~b:0 ~c:0 ~d:0;
      ft_ref := 0.5;
      Flight.record Flight.k_deletion
        ~a:(Flight.phase_code "improve_delay")
        ~b:(Flight.criterion_code "delay")
        ~c:42
        ~d:((7 lsl 32) lor 10);
      ft_ref := 1.0;
      Flight.record Flight.k_heartbeat ~a:2 ~b:3 ~c:11 ~d:(Flight.margin_encode (-12.5));
      let s = Flight.dump_string ~reason:"unit" in
      check_string "magic leads the image" Flight.magic (String.sub s 0 6);
      match Flight.read_string s with
      | Error e -> Alcotest.failf "read_string: %s" (Bgr_error.to_string e)
      | Ok d -> (
        check_string "reason round-trips" "unit" d.Flight.f_reason;
        check_int "pid stamped" (Unix.getpid ()) d.Flight.f_pid;
        check_bool "not torn" false d.Flight.f_torn;
        check_bool "no warnings" true (d.Flight.f_warnings = []);
        match flight_events d with
        | [ p; del; hb ] ->
          check_int "phase kind" Flight.k_phase p.Flight.e_kind;
          check_int "phase code" (Flight.phase_code "initial_route") p.Flight.e_a;
          check_int "timestamp is µs under the test clock" 250_000 p.Flight.e_t_us;
          check_int "deletion kind" Flight.k_deletion del.Flight.e_kind;
          check_string "criterion name survives" "delay"
            (Flight.criterion_name del.Flight.e_b);
          check_int "net id" 42 del.Flight.e_c;
          check_int "edge packs the wide argument" 7 (del.Flight.e_d lsr 32);
          check_int "deletions-before packs too" 10 (del.Flight.e_d land 0xFFFFFFFF);
          check_bool "heartbeat margin decodes" true
            (Flight.margin_decode hb.Flight.e_d = -12.5)
        | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs)))

let test_flight_ring_wrap () =
  with_flight_clock (fun () ->
      let n = 5000 in
      for i = 0 to n - 1 do
        Flight.record Flight.k_deletion ~a:0 ~b:0 ~c:i ~d:0
      done;
      check_int "recorded counts every event" n (Flight.recorded ());
      match Flight.read_string (Flight.dump_string ~reason:"wrap") with
      | Error e -> Alcotest.failf "read_string: %s" (Bgr_error.to_string e)
      | Ok d ->
        let ring =
          match d.Flight.f_rings with [ r ] -> r | _ -> Alcotest.fail "expected one ring"
        in
        check_int "total survives the wrap" n ring.Flight.rg_total;
        check_int "retained = ring capacity" 4096 (List.length ring.Flight.rg_events);
        (match ring.Flight.rg_events with
        | oldest :: _ ->
          check_int "oldest retained event is n - capacity" (n - 4096) oldest.Flight.e_c
        | [] -> Alcotest.fail "no events retained");
        (match List.rev ring.Flight.rg_events with
        | newest :: _ -> check_int "newest event retained" (n - 1) newest.Flight.e_c
        | [] -> ()))

let test_flight_torn_and_corrupt () =
  with_flight_clock (fun () ->
      Flight.record Flight.k_phase ~a:0 ~b:0 ~c:0 ~d:0;
      let s = Flight.dump_string ~reason:"salvage" in
      (* a torn final frame (the dumping process died mid-write) is
         salvaged: the ring frame is dropped with a warning *)
      (match Flight.read_string (String.sub s 0 (String.length s - 3)) with
      | Error e -> Alcotest.failf "torn tail must salvage: %s" (Bgr_error.to_string e)
      | Ok d ->
        check_bool "torn flag set" true d.Flight.f_torn;
        check_bool "salvage leaves a warning" true (d.Flight.f_warnings <> []);
        check_string "header frame still read" "salvage" d.Flight.f_reason);
      (* damage before the final frame is a structured Parse error *)
      let corrupt = Bytes.of_string s in
      Bytes.set corrupt 12 (Char.chr (Char.code (Bytes.get corrupt 12) lxor 0xFF));
      match Flight.read_string (Bytes.to_string corrupt) with
      | Ok _ -> Alcotest.fail "mid-file corruption must not parse"
      | Error e -> check_bool "code is Parse" true (e.Bgr_error.code = Bgr_error.Parse))

let test_flight_margin_codec () =
  check_bool "nan survives the round trip as nan" true
    (Float.is_nan (Flight.margin_decode (Flight.margin_encode nan)));
  List.iter
    (fun v ->
      check_bool
        (Printf.sprintf "%g round-trips within a milli-ps" v)
        true
        (Float.abs (Flight.margin_decode (Flight.margin_encode v) -. v) <= 0.001))
    [ 0.0; -12.5; 110.6; -99999.0; 123456.789 ];
  check_bool "saturation stays finite and ordered" true
    (Flight.margin_decode (Flight.margin_encode 1e30)
    > Flight.margin_decode (Flight.margin_encode (-1e30)))

let test_flight_disabled () =
  with_flight_clock (fun () ->
      Flight.record Flight.k_phase ~a:0 ~b:0 ~c:0 ~d:0;
      let before = Flight.recorded () in
      Flight.set_enabled false;
      Flight.record Flight.k_phase ~a:1 ~b:0 ~c:0 ~d:0;
      check_int "disabled record is a no-op" before (Flight.recorded ());
      Flight.set_enabled true;
      Flight.record Flight.k_phase ~a:2 ~b:0 ~c:0 ~d:0;
      check_int "re-enabled records again" (before + 1) (Flight.recorded ()))

let test_flight_dump_file () =
  with_flight_clock (fun () ->
      Flight.record Flight.k_pool_round ~a:0 ~b:1 ~c:9 ~d:3;
      let path = Filename.temp_file "bgr_obs_flight" ".bgrf" in
      check_bool "dump_file succeeds" true (Flight.dump_file ~trigger:2 ~reason:"test" path);
      let d =
        match Flight.read ~path with
        | Ok d -> d
        | Error e -> Alcotest.failf "read: %s" (Bgr_error.to_string e)
      in
      Sys.remove path;
      check_bool "no temp residue" false (Sys.file_exists (path ^ ".tmp"));
      let dump_ev =
        List.find_opt (fun e -> e.Flight.e_kind = Flight.k_dump) (flight_events d)
      in
      match dump_ev with
      | Some e -> check_int "the dump records its own trigger" 2 e.Flight.e_a
      | None -> Alcotest.fail "dump_file must record a k_dump event")

(* Satellite: the recorder must keep working while the tracer's sink
   is degrading — a crashing sink and a crashing process often arrive
   together, and the flight record is the artifact of last resort. *)
let test_sink_fault_with_flight_active () =
  Obs.set_clock_for_tests None;
  Obs.enable ();
  Obs.reset ();
  Flight.reset_for_tests ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ();
      Flight.reset_for_tests ())
  @@ fun () ->
  match Fault.parse_plan "obs.sink:n=1" with
  | Error m -> Alcotest.failf "fault plan: %s" m
  | Ok plan ->
    Fault.with_plan plan (fun () ->
        let path = Filename.temp_file "bgr_obs_flightsink" ".json" in
        Obs.Trace.to_chrome_file path;
        Flight.record Flight.k_phase ~a:0 ~b:0 ~c:0 ~d:0;
        Obs.Trace.span "tripwire" (fun () -> ());
        (* the sink just died; the recorder must not have noticed *)
        Flight.record Flight.k_phase ~a:1 ~b:0 ~c:0 ~d:0;
        Obs.Trace.close_sinks ();
        Sys.remove path;
        check_bool "sink degradation warned" true (Obs.warnings () <> []);
        match Flight.read_string (Flight.dump_string ~reason:"degraded-sink") with
        | Error e -> Alcotest.failf "flight dump: %s" (Bgr_error.to_string e)
        | Ok d ->
          check_int "both events recorded across the sink failure" 2
            (List.length (flight_events d)))

(* Satellite: the --metrics scrape target is rewritten atomically and
   durably (temp + fsync + rename) — a scraper or a post-crash boot
   must never observe a half-written exposition. *)
let test_metrics_atomic_rewrite () =
  let path = Filename.temp_file "bgr_obs_atomic" ".prom" in
  Obs.write_file_atomic path "first exposition\n";
  check_string "content lands" "first exposition\n" (read_file path);
  Obs.write_file_atomic path "second exposition, longer than the first\n";
  check_string "rewrite replaces wholesale" "second exposition, longer than the first\n"
    (read_file path);
  check_bool "no temp-file residue" false (Sys.file_exists (path ^ ".tmp"));
  (* failure leaves the previous content untouched *)
  (match Obs.write_file_atomic (Filename.concat path "not-a-dir") "x" with
  | () -> Alcotest.fail "writing under a file must fail"
  | exception Sys_error _ -> ());
  check_string "failed write leaves the target intact"
    "second exposition, longer than the first\n" (read_file path);
  Sys.remove path

(* ---- the deprecation shim ------------------------------------------ *)

let mini_input () = (Suite.mini ()).Suite.input

let test_trace_shim () =
  Obs.set_clock_for_tests None;
  Obs.disable ();
  Obs.reset ();
  (* legacy callback keeps working with observability off... *)
  let lines = ref 0 in
  let options = { Router.default_options with Router.trace = Some (fun _ -> incr lines) } in
  ignore (Flow.run ~options (mini_input ()));
  check_bool "legacy options.trace callback still fires" true (!lines > 0);
  (* ...and with it on, every line is mirrored as a router.log instant *)
  Obs.enable ();
  Obs.reset ();
  let lines2 = ref 0 in
  let options2 = { Router.default_options with Router.trace = Some (fun _ -> incr lines2) } in
  ignore (Flow.run ~options:options2 (mini_input ()));
  let logs =
    List.filter (fun sp -> sp.Obs.Trace.sp_name = "router.log") (Obs.Trace.completed ())
  in
  check_bool "router.log instants recorded" true (logs <> []);
  check_int "one instant per legacy line" !lines2 (List.length logs);
  Obs.disable ();
  Obs.reset ()

(* ---- bit-identity: observability never changes a routing decision -- *)

let load_corpus name =
  let path = Filename.concat corpus_dir name in
  match
    Result.bind (Design_io.read_result path) Design_check.validate
    |> Result.map_error (Bgr_error.with_file path)
  with
  | Ok bundle -> Design_io.to_flow_input bundle
  | Error e -> Alcotest.failf "%s: %s" name (Bgr_error.to_string e)

(* Exact fingerprint: floats as hex so the comparison is bitwise, plus
   the order-sensitive deletion hash (same idiom as test_parallel). *)
let fingerprint (outcome : Flow.outcome) =
  let m = outcome.Flow.o_measurement in
  Printf.sprintf "delay=%h area=%h len=%h viol=%d del=%d tracks=[%s] hash=%d"
    m.Flow.m_delay_ps m.Flow.m_area_mm2 m.Flow.m_length_mm m.Flow.m_violations
    m.Flow.m_deletions
    (String.concat ";" (Array.to_list (Array.map string_of_int m.Flow.m_tracks)))
    (Router.deletion_hash outcome.Flow.o_router)

let test_bit_identity () =
  Obs.set_clock_for_tests None;
  List.iter
    (fun (name, domains) ->
      let input = load_corpus name in
      let options = { Router.default_options with Router.domains } in
      Obs.disable ();
      Obs.reset ();
      let plain = fingerprint (Flow.run ~options input) in
      let trace_path = Filename.temp_file "bgr_obs_id" ".json" in
      let jsonl_path = Filename.temp_file "bgr_obs_id" ".jsonl" in
      Obs.enable ();
      Obs.Trace.to_chrome_file trace_path;
      Obs.Trace.to_jsonl_file jsonl_path;
      let traced = fingerprint (Flow.run ~options input) in
      Obs.Trace.close_sinks ();
      check_bool (name ^ ": the traced run actually wrote a trace") true
        (read_file trace_path <> "");
      Obs.disable ();
      Obs.reset ();
      Sys.remove trace_path;
      Sys.remove jsonl_path;
      check_string
        (Printf.sprintf "%s, %d domain(s): tracing on = tracing off" name domains)
        plain traced)
    [ ("valid_mini.bgr", 1); ("valid_mini.bgr", 4); ("valid_gen.bgr", 1); ("valid_gen.bgr", 4) ]

let () =
  Alcotest.run "obs"
    [ ( "trace",
        [ Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting;
          Alcotest.test_case "span recorded on exception" `Quick test_span_survives_exception;
          Alcotest.test_case "chrome trace_event golden" `Quick test_chrome_golden;
          Alcotest.test_case "jsonl golden" `Quick test_jsonl_golden;
          Alcotest.test_case "span ids, trace ids, foreign spans" `Quick
            test_span_ids_and_foreign;
          Alcotest.test_case "foreign parent links depth-0 spans" `Quick
            test_parent_span_links_roots ] );
      ( "metrics",
        [ Alcotest.test_case "prometheus golden + shape" `Quick test_prometheus_golden;
          Alcotest.test_case "snapshot codec round trip + merge" `Quick
            test_snapshot_roundtrip;
          Alcotest.test_case "label-value escaping" `Quick test_prom_label_escaping;
          Alcotest.test_case "histogram with zero observations" `Quick
            test_histogram_no_observations;
          QCheck_alcotest.to_alcotest prop_histogram_counts ] );
      ( "flight",
        [ Alcotest.test_case "record/dump/read round trip" `Quick test_flight_roundtrip;
          Alcotest.test_case "ring wrap keeps the newest events" `Quick test_flight_ring_wrap;
          Alcotest.test_case "torn tail salvages, corruption rejects" `Quick
            test_flight_torn_and_corrupt;
          Alcotest.test_case "margin codec (nan round trip)" `Quick test_flight_margin_codec;
          Alcotest.test_case "disabled recorder is a no-op" `Quick test_flight_disabled;
          Alcotest.test_case "dump_file records its trigger" `Quick test_flight_dump_file ] );
      ( "resilience",
        [ Alcotest.test_case "sink fault degrades to warning" `Quick test_sink_fault_degrades;
          Alcotest.test_case "sink fault with the recorder active" `Quick
            test_sink_fault_with_flight_active;
          Alcotest.test_case "metrics rewrite is atomic + durable" `Quick
            test_metrics_atomic_rewrite;
          Alcotest.test_case "double sink install warns" `Quick test_double_sink_install_warns;
          Alcotest.test_case "options.trace deprecation shim" `Quick test_trace_shim ] );
      ( "determinism",
        [ Alcotest.test_case "deletion hash identical with tracing on" `Slow test_bit_identity ]
      ) ]
