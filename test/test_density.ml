(* Tests for the channel density charts and the eight parameters of
   Sec. 3.3 (Fig. 4). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_add_remove () =
  let d = Density.create ~n_channels:2 ~width:10 in
  Density.add_trunk d ~channel:0 ~span:(Interval.span 2 6) ~w:1 ~bridge:false;
  Density.add_trunk d ~channel:0 ~span:(Interval.span 4 8) ~w:1 ~bridge:true;
  check_int "d_M stacks" 2 (Density.dM_at d ~channel:0 ~x:4);
  check_int "d_M single" 1 (Density.dM_at d ~channel:0 ~x:2);
  check_int "d_m only bridges" 1 (Density.dm_at d ~channel:0 ~x:4);
  check_int "d_m zero off-bridge" 0 (Density.dm_at d ~channel:0 ~x:2);
  check_int "C_M" 2 (Density.cM d ~channel:0);
  check_int "NC_M counts peak columns" 2 (Density.ncM d ~channel:0);
  check_int "C_m" 1 (Density.cm d ~channel:0);
  check_int "NC_m" 4 (Density.ncm d ~channel:0);
  check_int "other channel untouched" 0 (Density.cM d ~channel:1);
  Density.remove_trunk d ~channel:0 ~span:(Interval.span 4 8) ~w:1 ~bridge:true;
  check_int "removal restores d_M" 1 (Density.dM_at d ~channel:0 ~x:4);
  check_int "removal restores d_m" 0 (Density.dm_at d ~channel:0 ~x:4)

let test_multipitch_weight () =
  let d = Density.create ~n_channels:1 ~width:8 in
  Density.add_trunk d ~channel:0 ~span:(Interval.span 1 4) ~w:3 ~bridge:false;
  check_int "w-pitch counts w" 3 (Density.dM_at d ~channel:0 ~x:2);
  check_int "C_M reflects width" 3 (Density.cM d ~channel:0)

let test_set_bridge () =
  let d = Density.create ~n_channels:1 ~width:8 in
  Density.add_trunk d ~channel:0 ~span:(Interval.span 0 5) ~w:1 ~bridge:false;
  check_int "not a bridge yet" 0 (Density.cm d ~channel:0);
  Density.set_bridge d ~channel:0 ~span:(Interval.span 0 5) ~w:1 true;
  check_int "promoted to bridge" 1 (Density.cm d ~channel:0);
  Density.set_bridge d ~channel:0 ~span:(Interval.span 0 5) ~w:1 false;
  check_int "demoted again" 0 (Density.cm d ~channel:0)

let test_revision_and_cache () =
  let d = Density.create ~n_channels:2 ~width:8 in
  let r0 = Density.revision d ~channel:0 in
  Density.add_trunk d ~channel:0 ~span:(Interval.span 0 3) ~w:1 ~bridge:false;
  check_bool "mutation bumps revision" true (Density.revision d ~channel:0 > r0);
  let r1 = Density.revision d ~channel:1 in
  ignore (Density.cM d ~channel:0);
  check_int "reads do not bump" r1 (Density.revision d ~channel:1);
  Density.add_trunk d ~channel:1 ~span:Interval.empty ~w:1 ~bridge:false;
  check_int "empty span is a no-op" r1 (Density.revision d ~channel:1)

let test_edge_params () =
  let d = Density.create ~n_channels:1 ~width:10 in
  Density.add_trunk d ~channel:0 ~span:(Interval.span 0 10) ~w:1 ~bridge:true;
  Density.add_trunk d ~channel:0 ~span:(Interval.span 3 7) ~w:1 ~bridge:false;
  Density.add_trunk d ~channel:0 ~span:(Interval.span 5 7) ~w:1 ~bridge:false;
  (* chart d_M: 1 1 1 2 2 3 3 1 1 1 ; d_m: all 1 *)
  let d_max, nd_max, d_min, nd_min = Density.edge_params d ~channel:0 ~span:(Interval.span 0 10) in
  check_int "D_M over all" 3 d_max;
  check_int "ND_M over all" 2 nd_max;
  check_int "D_m over all" 1 d_min;
  check_int "ND_m over all" 10 nd_min;
  let d_max, nd_max, _, _ = Density.edge_params d ~channel:0 ~span:(Interval.span 0 4) in
  check_int "D_M restricted" 2 d_max;
  check_int "ND_M restricted" 1 nd_max;
  let all_zero = Density.edge_params d ~channel:0 ~span:Interval.empty in
  check_bool "empty span params" true (all_zero = (0, 0, 0, 0))

let test_tracks_and_chart () =
  let d = Density.create ~n_channels:3 ~width:6 in
  Density.add_trunk d ~channel:1 ~span:(Interval.span 0 6) ~w:2 ~bridge:false;
  Alcotest.(check (array int)) "tracks estimate" [| 0; 2; 0 |] (Density.tracks_estimate d);
  let chart = Density.chart d ~channel:1 in
  check_int "chart width" 6 (Array.length chart);
  check_bool "chart values" true (Array.for_all (fun (m, b) -> m = 2 && b = 0) chart)

(* Property: random add/remove/set_bridge sequences leave the chart
   equal to a naive recount. *)
let op_gen =
  QCheck.Gen.(
    let* channel = int_range 0 1 in
    let* a = int_range 0 11 in
    let* b = int_range 0 11 in
    let* w = int_range 1 3 in
    let* bridge = bool in
    return (channel, min a b, max a b, w, bridge))

let prop_incremental_vs_recount =
  QCheck.Test.make ~name:"density: incremental chart equals recount" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 0 20) op_gen))
    (fun ops ->
      let d = Density.create ~n_channels:2 ~width:12 in
      (* maintain the reference chart *)
      let reference = Array.init 2 (fun _ -> Array.make 12 (0, 0)) in
      List.iter
        (fun (c, lo, hi, w, bridge) ->
          Density.add_trunk d ~channel:c ~span:(Interval.span lo hi) ~w ~bridge;
          for x = lo to hi - 1 do
            let m, b = reference.(c).(x) in
            reference.(c).(x) <- (m + w, if bridge then b + w else b)
          done)
        ops;
      let ok = ref true in
      for c = 0 to 1 do
        for x = 0 to 11 do
          let m, b = reference.(c).(x) in
          if Density.dM_at d ~channel:c ~x <> m || Density.dm_at d ~channel:c ~x <> b then ok := false
        done
      done;
      !ok)

let suite =
  [ Alcotest.test_case "add/remove trunks" `Quick test_add_remove;
    Alcotest.test_case "multi-pitch weight" `Quick test_multipitch_weight;
    Alcotest.test_case "set_bridge" `Quick test_set_bridge;
    Alcotest.test_case "revision and cache" `Quick test_revision_and_cache;
    Alcotest.test_case "edge params (D/ND)" `Quick test_edge_params;
    Alcotest.test_case "tracks and chart" `Quick test_tracks_and_chart;
    QCheck_alcotest.to_alcotest prop_incremental_vs_recount ]

let () = Alcotest.run "density" [ ("density", suite) ]
