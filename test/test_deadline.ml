(* Deadline-aware routing: a budget-capped [Router.run] always leaves
   every net with a verifiable spanning tree, reports an honest stop
   reason, and stops at a deterministic program point — the zero-budget
   result is bit-identical across domain counts. *)

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let run ?(domains = 1) ?(budget = Budget.unlimited) () =
  let case = Suite.mini () in
  let outcome =
    Flow.run
      ~options:{ Router.default_options with Router.domains }
      ~timing_driven:true ~budget case.Suite.input
  in
  (outcome.Flow.o_router, outcome.Flow.o_run_report, outcome.Flow.o_measurement)

let fingerprint router (m : Flow.measurement) =
  Printf.sprintf "delay=%h area=%h len=%h viol=%d del=%d hash=%d stopped=%s" m.Flow.m_delay_ps
    m.Flow.m_area_mm2 m.Flow.m_length_mm m.Flow.m_violations m.Flow.m_deletions
    (Router.deletion_hash router)
    m.Flow.m_stopped_because

let test_zero_budget_still_routes () =
  let router, report, _ = run ~budget:(Budget.make ~wall_ms:0.0 ()) () in
  check_bool "every net has a spanning tree" true (Router.is_routed router);
  check_bool "initial route completed" true
    (List.mem "initial_route" report.Router.completed_phases);
  (match report.Router.stopped_because with
  | Router.Deadline _ -> ()
  | r -> Alcotest.failf "expected Deadline, got %s" (Router.stop_reason_string r));
  check_bool "stop reason names the phase" true
    (let s = Router.stop_reason_string report.Router.stopped_because in
     String.length s > String.length "deadline during "
     && String.sub s 0 16 = "deadline during ")

let test_zero_budget_deterministic_across_domains () =
  let fp domains =
    let router, _, m = run ~domains ~budget:(Budget.make ~wall_ms:0.0 ()) () in
    fingerprint router m
  in
  check_string "zero budget: 1 domain = 4 domains" (fp 1) (fp 4)

let test_unlimited_finishes () =
  let router, report, _ = run () in
  check_bool "routed" true (Router.is_routed router);
  check_string "finished" "finished" (Router.stop_reason_string report.Router.stopped_because);
  check_bool "all phases completed" true
    (List.for_all
       (fun p -> List.mem p report.Router.completed_phases)
       [ "initial_route"; "recover_violations"; "improve_delay"; "improve_area" ]);
  check_bool "nothing rolled back" false report.Router.rolled_back

(* A fake clock expiring mid-run: the router must roll partial passes
   back to the last checkpoint and say so. *)
let test_fake_clock_midrun () =
  let ticks = ref 0 in
  (* Each budget consultation advances the clock; expiry lands inside
     an improvement phase rather than before the first one. *)
  let clock () =
    incr ticks;
    float_of_int !ticks *. 0.01
  in
  let budget = Budget.make ~wall_ms:200.0 ~clock () in
  let router, report, _ = run ~budget () in
  check_bool "still fully routed after mid-run stop" true (Router.is_routed router);
  match report.Router.stopped_because with
  | Router.Deadline _ -> ()
  | Router.Finished ->
    (* mini is small enough that the run may beat 20 consultations;
       finishing is an acceptable honest outcome. *)
    check_bool "finished runs are not rolled back" false report.Router.rolled_back
  | r -> Alcotest.failf "expected Deadline or Finished, got %s" (Router.stop_reason_string r)

let test_phase_pass_ceiling () =
  let router, report, _ = run ~budget:(Budget.make ~phase_passes:1 ()) () in
  check_bool "routed under a pass ceiling" true (Router.is_routed router);
  check_string "pass ceilings alone never trigger a deadline stop" "finished"
    (Router.stop_reason_string report.Router.stopped_because)

let test_injected_router_fault () =
  match Fault.parse_plan "router.improve:n=1" with
  | Error m -> Alcotest.failf "plan: %s" m
  | Ok plan ->
    let router, report, _ = Fault.with_plan plan (fun () -> run ()) in
    check_bool "routed despite the injected fault" true (Router.is_routed router);
    (match report.Router.stopped_because with
    | Router.Fault_stop { error; _ } ->
      check_bool "fault error carries the Fault code" true
        (error.Bgr_error.code = Bgr_error.Fault)
    | r -> Alcotest.failf "expected Fault_stop, got %s" (Router.stop_reason_string r))

let suite =
  [ Alcotest.test_case "zero budget still yields trees" `Quick test_zero_budget_still_routes;
    Alcotest.test_case "zero budget bit-identical across domains" `Quick
      test_zero_budget_deterministic_across_domains;
    Alcotest.test_case "unlimited budget finishes" `Quick test_unlimited_finishes;
    Alcotest.test_case "fake clock mid-run stop" `Quick test_fake_clock_midrun;
    Alcotest.test_case "phase pass ceiling" `Quick test_phase_pass_ceiling;
    Alcotest.test_case "injected fault stops honestly" `Quick test_injected_router_fault ]

let () = Alcotest.run "deadline" [ ("deadline", suite) ]
