(* Tests for bgr_netlist: construction, validation, lookups, stats. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let pin inst term = Netlist.Pin { Netlist.inst; term }

(* inv chain: IN -> i1 -> i2 -> OUT *)
let build_chain () =
  let b = Netlist.builder ~library:Cell_lib.ecl_default in
  let p_in = Netlist.add_port b ~name:"IN" ~side:Netlist.South () in
  let p_out = Netlist.add_port b ~name:"OUT" ~side:Netlist.North () in
  let i1 = Netlist.add_instance b ~name:"i1" ~cell:"INV1" in
  let i2 = Netlist.add_instance b ~name:"i2" ~cell:"INV1" in
  let n0 = Netlist.add_net b ~name:"n0" ~driver:(Netlist.Port p_in) ~sinks:[ pin i1 "A" ] () in
  let n1 = Netlist.add_net b ~name:"n1" ~driver:(pin i1 "Z") ~sinks:[ pin i2 "A" ] () in
  let n2 = Netlist.add_net b ~name:"n2" ~driver:(pin i2 "Z") ~sinks:[ Netlist.Port p_out ] () in
  (b, (p_in, p_out, i1, i2, n0, n1, n2))

let test_freeze_ok () =
  let b, (p_in, _, i1, i2, n0, n1, _) = build_chain () in
  let t = Netlist.freeze b in
  check_int "instances" 2 (Netlist.n_instances t);
  check_int "nets" 3 (Netlist.n_nets t);
  check_int "ports" 2 (Netlist.n_ports t);
  check_int "fanout of n0" 1 (Netlist.fanout t n0);
  check_bool "net_of_pin driver" true (Netlist.net_of_pin t { Netlist.inst = i1; term = "Z" } = Some n1);
  check_bool "net_of_pin sink" true (Netlist.net_of_pin t { Netlist.inst = i2; term = "A" } = Some n1);
  check_int "net_of_port" n0 (Netlist.net_of_port t p_in);
  Alcotest.(check (list (pair string int)))
    "pins_on_instance i1" [ ("A", n0); ("Z", n1) ] (Netlist.pins_on_instance t i1)

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Netlist.Invalid" name
  | exception Netlist.Invalid _ -> ()

let test_builder_errors () =
  expect_invalid "unknown master" (fun () ->
      let b = Netlist.builder ~library:Cell_lib.ecl_default in
      Netlist.add_instance b ~name:"x" ~cell:"NAND97");
  expect_invalid "duplicate instance name" (fun () ->
      let b = Netlist.builder ~library:Cell_lib.ecl_default in
      let _ = Netlist.add_instance b ~name:"x" ~cell:"INV1" in
      Netlist.add_instance b ~name:"x" ~cell:"INV1");
  expect_invalid "driver must be an output" (fun () ->
      let b = Netlist.builder ~library:Cell_lib.ecl_default in
      let i = Netlist.add_instance b ~name:"x" ~cell:"INV1" in
      Netlist.add_net b ~name:"n" ~driver:(pin i "A") ~sinks:[ pin i "A" ] ());
  expect_invalid "sink must be an input" (fun () ->
      let b = Netlist.builder ~library:Cell_lib.ecl_default in
      let i = Netlist.add_instance b ~name:"x" ~cell:"INV1" in
      Netlist.add_net b ~name:"n" ~driver:(pin i "Z") ~sinks:[ pin i "Z" ] ());
  expect_invalid "no empty sink list" (fun () ->
      let b = Netlist.builder ~library:Cell_lib.ecl_default in
      let i = Netlist.add_instance b ~name:"x" ~cell:"INV1" in
      Netlist.add_net b ~name:"n" ~driver:(pin i "Z") ~sinks:[] ());
  expect_invalid "sink pin used twice" (fun () ->
      let b = Netlist.builder ~library:Cell_lib.ecl_default in
      let i = Netlist.add_instance b ~name:"x" ~cell:"INV1" in
      let j = Netlist.add_instance b ~name:"y" ~cell:"INV1" in
      let _ = Netlist.add_net b ~name:"n1" ~driver:(pin i "Z") ~sinks:[ pin j "A" ] () in
      Netlist.add_net b ~name:"n2" ~driver:(pin j "Z") ~sinks:[ pin j "A" ] ());
  expect_invalid "bad pitch" (fun () ->
      let b = Netlist.builder ~library:Cell_lib.ecl_default in
      let i = Netlist.add_instance b ~name:"x" ~cell:"INV1" in
      let j = Netlist.add_instance b ~name:"y" ~cell:"INV1" in
      Netlist.add_net b ~name:"n" ~driver:(pin i "Z") ~sinks:[ pin j "A" ] ~pitch:0 ())

let test_freeze_errors () =
  expect_invalid "unconnected input" (fun () ->
      let b = Netlist.builder ~library:Cell_lib.ecl_default in
      let _ = Netlist.add_instance b ~name:"x" ~cell:"INV1" in
      Netlist.freeze b);
  expect_invalid "unconnected port" (fun () ->
      let b, _ = build_chain () in
      let _ = Netlist.add_port b ~name:"SPARE" ~side:Netlist.South () in
      Netlist.freeze b)

let build_pair ?(mismatched = false) () =
  let b = Netlist.builder ~library:Cell_lib.ecl_default in
  let p = Netlist.add_port b ~name:"A" ~side:Netlist.South () in
  let d = Netlist.add_instance b ~name:"d" ~cell:"DDRV" in
  let r = Netlist.add_instance b ~name:"r" ~cell:"OR2" in
  let r2 = Netlist.add_instance b ~name:"r2" ~cell:"OR2" in
  let q = Netlist.add_port b ~name:"Q" ~side:Netlist.North () in
  let _ = Netlist.add_net b ~name:"n0" ~driver:(Netlist.Port p) ~sinks:[ pin d "A" ] () in
  let z = Netlist.add_net b ~name:"z" ~driver:(pin d "Z") ~sinks:[ pin r "A"; pin r2 "A" ] () in
  let zn_sinks = if mismatched then [ pin r "B" ] else [ pin r "B"; pin r2 "B" ] in
  let zn = Netlist.add_net b ~name:"zn" ~driver:(pin d "ZN") ~sinks:zn_sinks () in
  (if mismatched then
     let _ = Netlist.add_net b ~name:"fill" ~driver:(pin r2 "Z") ~sinks:[ pin r2 "B" ] () in
     ());
  let _ = Netlist.add_net b ~name:"n1" ~driver:(pin r "Z") ~sinks:[ Netlist.Port q ] () in
  (b, z, zn, r2)

let test_differential_pairs () =
  let b, z, zn, r2 = build_pair () in
  ignore r2 (* its output legitimately stays open *);
  Netlist.pair_differential b z zn;
  let t = Netlist.freeze b in
  check_bool "z paired with zn" true ((Netlist.net t z).Netlist.diff_partner = Some zn);
  check_bool "zn paired with z" true ((Netlist.net t zn).Netlist.diff_partner = Some z);
  let s = Netlist.stats t in
  check_int "one pair in stats" 1 s.Netlist.n_diff_pairs

let test_differential_errors () =
  expect_invalid "pair with itself" (fun () ->
      let b, z, _, _ = build_pair () in
      Netlist.pair_differential b z z);
  expect_invalid "pair twice" (fun () ->
      let b, z, zn, _ = build_pair () in
      Netlist.pair_differential b z zn;
      Netlist.pair_differential b z zn);
  expect_invalid "mismatched sink sets" (fun () ->
      let b, z, zn, _ = build_pair ~mismatched:true () in
      Netlist.pair_differential b z zn;
      Netlist.freeze b)

let test_multi_pitch_and_stats () =
  let b = Netlist.builder ~library:Cell_lib.ecl_default in
  let p = Netlist.add_port b ~name:"CK" ~side:Netlist.South () in
  let buf = Netlist.add_instance b ~name:"cb" ~cell:"CLKBUF" in
  let ffs = List.init 3 (fun i -> Netlist.add_instance b ~name:(Printf.sprintf "f%d" i) ~cell:"DFF") in
  let _ = Netlist.add_net b ~name:"n0" ~driver:(Netlist.Port p) ~sinks:[ pin buf "A" ] () in
  let _ =
    Netlist.add_net b ~name:"ck" ~pitch:3 ~driver:(pin buf "Z")
      ~sinks:(List.map (fun f -> pin f "CK") ffs)
      ()
  in
  let out = Netlist.add_port b ~name:"O" ~side:Netlist.North () in
  (* ff0.Q fans out to both other D inputs and the port; the others
     feed their own D back (harmless for this structural test). *)
  let _ =
    Netlist.add_net b ~name:"q0"
      ~driver:(pin (List.nth ffs 0) "Q")
      ~sinks:[ pin (List.nth ffs 1) "D"; pin (List.nth ffs 2) "D"; Netlist.Port out ]
      ()
  in
  let _ =
    Netlist.add_net b ~name:"q1"
      ~driver:(pin (List.nth ffs 1) "Q")
      ~sinks:[ pin (List.nth ffs 0) "D" ]
      ()
  in
  let t = Netlist.freeze b in
  let s = Netlist.stats t in
  check_int "multi-pitch nets" 1 s.Netlist.n_multi_pitch;
  check_int "max fanout" 3 s.Netlist.max_fanout;
  check_int "cells" 4 s.Netlist.n_cells

let suite =
  [ Alcotest.test_case "freeze well-formed chain" `Quick test_freeze_ok;
    Alcotest.test_case "builder rejects bad nets" `Quick test_builder_errors;
    Alcotest.test_case "freeze rejects dangling" `Quick test_freeze_errors;
    Alcotest.test_case "differential pairs" `Quick test_differential_pairs;
    Alcotest.test_case "differential pair errors" `Quick test_differential_errors;
    Alcotest.test_case "multi-pitch and stats" `Quick test_multi_pitch_and_stats ]

let () = Alcotest.run "netlist" [ ("netlist", suite) ]
