(* Unit tests for the lib/par domain pool: exact index coverage under
   every chunking, exception propagation through the barrier, nested
   calls degrading to sequential instead of deadlocking, and the
   environment-driven default domain count. *)

let with_pool ~domains f =
  let pool = Par.create ~domains () in
  Fun.protect ~finally:(fun () -> Par.shutdown pool) (fun () -> f pool)

(* Every index in [0, n) is visited exactly once, whatever the chunk
   size — the atomic work counter must neither skip nor repeat. *)
let test_iter_covers_each_index_once () =
  with_pool ~domains:4 (fun pool ->
      List.iter
        (fun n ->
          List.iter
            (fun chunk ->
              let hits = Array.init n (fun _ -> Atomic.make 0) in
              (match chunk with
              | None -> Par.parallel_iter pool (fun i -> Atomic.incr hits.(i)) n
              | Some chunk -> Par.parallel_iter ~chunk pool (fun i -> Atomic.incr hits.(i)) n);
              Array.iteri
                (fun i c ->
                  Alcotest.(check int)
                    (Printf.sprintf "n=%d chunk=%s i=%d" n
                       (match chunk with None -> "auto" | Some c -> string_of_int c)
                       i)
                    1 (Atomic.get c))
                hits)
            [ None; Some 1; Some 3; Some (n + 10) ])
        [ 0; 1; 2; 7; 64; 100; 1000 ])

let test_init_and_map_preserve_order () =
  with_pool ~domains:4 (fun pool ->
      let squares = Par.parallel_init pool 257 (fun i -> i * i) in
      Alcotest.(check (array int)) "init order" (Array.init 257 (fun i -> i * i)) squares;
      let doubled = Par.parallel_map pool (fun x -> 2 * x) squares in
      Alcotest.(check (array int)) "map order" (Array.map (fun x -> 2 * x) squares) doubled;
      Alcotest.(check (list int))
        "list map order"
        [ 2; 4; 6; 8 ]
        (Par.parallel_list_map pool (fun x -> 2 * x) [ 1; 2; 3; 4 ]))

let test_reduce () =
  with_pool ~domains:3 (fun pool ->
      Alcotest.(check int) "sum 0..999" 499500
        (Par.parallel_reduce pool ~map:Fun.id ~combine:( + ) ~init:0 1000);
      Alcotest.(check int) "empty reduce" 42
        (Par.parallel_reduce pool ~map:Fun.id ~combine:( + ) ~init:42 0))

(* A worker exception must surface at the barrier on the caller, and
   the pool must stay usable afterwards. *)
let test_exception_propagates () =
  with_pool ~domains:4 (fun pool ->
      Alcotest.check_raises "raises Failure" (Failure "boom") (fun () ->
          Par.parallel_iter pool (fun i -> if i = 37 then failwith "boom") 100);
      Alcotest.(check int) "pool survives a failed round" 4950
        (Par.parallel_reduce pool ~map:Fun.id ~combine:( + ) ~init:0 100))

(* Nested parallel calls — both from helper domains (in_worker) and
   re-entrantly from the caller's own chunk (in_round) — must fall back
   to sequential execution instead of deadlocking on busy mailboxes. *)
let test_nested_falls_back_sequentially () =
  with_pool ~domains:3 (fun pool ->
      let out =
        Par.parallel_init pool 8 (fun i ->
            Par.parallel_reduce pool ~map:(fun j -> i * j) ~combine:( + ) ~init:0 50)
      in
      Alcotest.(check (array int))
        "nested results"
        (Array.init 8 (fun i -> i * 1225))
        out)

let test_single_domain_pool_is_sequential () =
  with_pool ~domains:1 (fun pool ->
      Alcotest.(check int) "one domain" 1 (Par.domains pool);
      let seen = ref [] in
      Par.parallel_iter pool (fun i -> seen := i :: !seen) 5;
      Alcotest.(check (list int)) "in order (sequential path)" [ 4; 3; 2; 1; 0 ] !seen)

let test_shutdown_idempotent () =
  let pool = Par.create ~domains:3 () in
  Par.shutdown pool;
  Par.shutdown pool;
  (* a dead pool still computes, just sequentially *)
  Par.parallel_iter pool (fun _ -> ()) 10;
  Alcotest.(check pass) "no deadlock after double shutdown" () ()

let test_default_domains_env () =
  Unix.putenv "BGR_DOMAINS" "3";
  Alcotest.(check int) "BGR_DOMAINS honoured" 3 (Par.default_domains ());
  Unix.putenv "BGR_DOMAINS" "not-a-number";
  Alcotest.(check int) "garbage falls back to cores" (Par.available_domains ())
    (Par.default_domains ());
  Unix.putenv "BGR_DOMAINS" "0";
  Alcotest.(check int) "non-positive falls back to cores" (Par.available_domains ())
    (Par.default_domains ());
  Unix.putenv "BGR_DOMAINS" ""

let suite =
  [ Alcotest.test_case "iter covers each index exactly once" `Quick
      test_iter_covers_each_index_once;
    Alcotest.test_case "init/map preserve order" `Quick test_init_and_map_preserve_order;
    Alcotest.test_case "reduce" `Quick test_reduce;
    Alcotest.test_case "worker exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "nested calls fall back sequentially" `Quick
      test_nested_falls_back_sequentially;
    Alcotest.test_case "domains:1 pool is sequential" `Quick
      test_single_domain_pool_is_sequential;
    Alcotest.test_case "shutdown is idempotent" `Quick test_shutdown_idempotent;
    Alcotest.test_case "BGR_DOMAINS drives the default" `Quick test_default_domains_env ]

let () = Alcotest.run "par" [ ("par", suite) ]
