(* Paper-fidelity details that the themed suites do not check
   directly. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Sec. 3.1: "For nets that need to go through two or more cell rows,
   feedthrough positions are assigned in the same x coordinates if
   possible." *)
let test_feedthrough_column_alignment () =
  let b = Netlist.builder ~library:Cell_lib.ecl_default in
  let p = Netlist.add_port b ~name:"IN" ~side:Netlist.South () in
  let d = Netlist.add_instance b ~name:"d" ~cell:"BUF2" in
  let s = Netlist.add_instance b ~name:"s" ~cell:"INV1" in
  let q = Netlist.add_port b ~name:"OUT" ~side:Netlist.North () in
  let _ = Netlist.add_net b ~name:"n0" ~driver:(Netlist.Port p) ~sinks:[ Util.pin d "A" ] () in
  let far = Netlist.add_net b ~name:"far" ~driver:(Util.pin d "Z") ~sinks:[ Util.pin s "A" ] () in
  let _ = Netlist.add_net b ~name:"n1" ~driver:(Util.pin s "Z") ~sinks:[ Netlist.Port q ] () in
  let netlist = Netlist.freeze b in
  (* Driver in row 0, sink in row 3: rows 1 and 2 must be crossed.  Row
     1 offers slots at columns 2 and 8; row 2 at 2 and 5.  The terminals
     sit near column 1, so row 1 takes column 2 — and row 2 must align
     at column 2 even though 5 is also free. *)
  let cells = [ { Floorplan.inst = d; row = 0; x = 0 }; { Floorplan.inst = s; row = 3; x = 0 } ] in
  let slots = [ (1, 2, 0); (1, 8, 0); (2, 5, 0); (2, 2, 0) ] in
  let fp = Floorplan.make ~netlist ~dims:Dims.default ~n_rows:4 ~width:12 ~cells ~slots () in
  let assignment, failures = Feedthrough.assign fp ~order:(Util.id_order netlist) in
  Alcotest.(check bool) "assigned" true (failures = []);
  (match Feedthrough.slots_of_net assignment far with
  | [ (1, [ s1 ]); (2, [ s2 ]) ] ->
    check_int "row 1 near the terminals" 2 s1.Floorplan.slot_x;
    check_int "row 2 aligned with row 1" 2 s2.Floorplan.slot_x
  | _ -> Alcotest.fail "expected grants in rows 1 and 2");
  (* Take the aligned slot away: the net settles for column 5. *)
  let fp2 =
    Floorplan.make ~netlist ~dims:Dims.default ~n_rows:4 ~width:12 ~cells
      ~slots:[ (1, 2, 0); (1, 8, 0); (2, 5, 0) ] ()
  in
  let assignment2, failures2 = Feedthrough.assign fp2 ~order:(Util.id_order netlist) in
  Alcotest.(check bool) "assigned without alignment" true (failures2 = []);
  match Feedthrough.slots_of_net assignment2 far with
  | [ (1, _); (2, [ s2 ]) ] -> check_int "fallback column" 5 s2.Floorplan.slot_x
  | _ -> Alcotest.fail "expected grants"

(* Sec. 3.1: the feedthrough order comes from static slacks — a tighter
   constraint must push its nets forward in the order. *)
let test_slack_order_prioritizes_tight_paths () =
  let netlist, constraints = Circuit_gen.generate Circuit_gen.default_params in
  let dg = Delay_graph.build netlist in
  (* Tighten the first constraint drastically relative to the rest. *)
  let tightened =
    List.mapi
      (fun i (pc : Path_constraint.t) ->
        if i = 0 then
          Path_constraint.make ~name:pc.Path_constraint.cname
            ~sources:pc.Path_constraint.sources ~sinks:pc.Path_constraint.sinks
            ~limit_ps:(pc.Path_constraint.limit_ps /. 10.0)
        else pc)
      constraints
  in
  let order = Sta.static_net_order dg tightened in
  let sta = Sta.create dg tightened in
  let critical = Sta.critical_nets sta 0 in
  (* The tight constraint's critical nets must all appear in the first
     half of the order. *)
  let n = Netlist.n_nets netlist in
  let position net = Option.get (List.find_index (Int.equal net) order) in
  List.iter
    (fun net ->
      check_bool
        (Printf.sprintf "critical net %d ordered early" net)
        true
        (position net < n / 2))
    critical

(* Generator locality: raising the locality knob must shrink the placed
   total HPWL (the knob exists to make circuits placeable at all). *)
let test_locality_shrinks_wirelength () =
  let hpwl locality =
    let params =
      { Circuit_gen.default_params with Circuit_gen.seed = 77L; n_comb = 80; locality }
    in
    let netlist, _ = Circuit_gen.generate params in
    let placed = Placement.place ~netlist ~n_rows:4 Placement.P1 in
    let fp =
      Floorplan.make ~netlist ~dims:Dims.default ~n_rows:4 ~width:placed.Placement.r_width
        ~cells:placed.Placement.r_cells ~slots:placed.Placement.r_slots ()
    in
    let total = ref 0 in
    for net = 0 to Netlist.n_nets netlist - 1 do
      total := !total + Rect.half_perimeter (Floorplan.net_bbox fp net)
    done;
    !total
  in
  check_bool "local circuits place shorter" true (hpwl 0.9 < hpwl 0.0)

(* Dijkstra distances against a Bellman-Ford reference. *)
let prop_dijkstra_vs_bellman =
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 8 in
      let* m = int_range 1 16 in
      let* pairs =
        list_repeat m (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (float_range 0.1 10.0))
      in
      return (n, pairs))
  in
  QCheck.Test.make ~name:"dijkstra: equals Bellman-Ford distances" ~count:300 (QCheck.make gen)
    (fun (n, pairs) ->
      let g = Ugraph.create () in
      for _ = 1 to n do
        ignore (Ugraph.add_vertex g)
      done;
      List.iter (fun (u, v, w) -> if u <> v then ignore (Ugraph.add_edge g ~u ~v ~weight:w)) pairs;
      let r = Dijkstra.shortest_paths g ~source:0 in
      (* Bellman-Ford over the undirected edges. *)
      let dist = Array.make n infinity in
      dist.(0) <- 0.0;
      for _ = 1 to n do
        Ugraph.iter_edges g (fun e ->
            if dist.(e.Ugraph.u) +. e.Ugraph.weight < dist.(e.Ugraph.v) then
              dist.(e.Ugraph.v) <- dist.(e.Ugraph.u) +. e.Ugraph.weight;
            if dist.(e.Ugraph.v) +. e.Ugraph.weight < dist.(e.Ugraph.u) then
              dist.(e.Ugraph.u) <- dist.(e.Ugraph.v) +. e.Ugraph.weight)
      done;
      let ok = ref true in
      for v = 0 to n - 1 do
        if dist.(v) = infinity then begin
          if r.Dijkstra.dist.(v) <> infinity then ok := false
        end
        else if abs_float (dist.(v) -. r.Dijkstra.dist.(v)) > 1e-9 then ok := false
      done;
      !ok)

(* Arrival times are monotone in any net's capacitance. *)
let prop_arrival_monotone_in_caps =
  let case = lazy (Suite.mini ()) in
  QCheck.Test.make ~name:"sta: arrivals monotone in wiring capacitance" ~count:30
    QCheck.(pair (make Gen.(int_range 0 50)) (make Gen.(float_range 1.0 100.0)))
    (fun (net_salt, extra) ->
      let case = Lazy.force case in
      let netlist = case.Suite.input.Flow.netlist in
      let dg = Delay_graph.build netlist in
      let sta = Sta.create dg case.Suite.input.Flow.constraints in
      let net = net_salt mod Netlist.n_nets netlist in
      let before = Array.init (Sta.n_constraints sta) (fun ci -> Sta.critical_delay sta ci) in
      Delay_graph.set_net_cap dg ~net ~cap_ff:extra;
      Sta.refresh sta;
      let ok = ref true in
      Array.iteri
        (fun ci b -> if Sta.critical_delay sta ci < b -. 1e-9 then ok := false)
        before;
      !ok)

(* The suite's extra placement (C3P2) exists even though the paper only
   tabulates C3P1. *)
let test_c3p2_available () =
  let case = Suite.make_case ~circuit:"C3" ~placement:Placement.P2 in
  check_bool "constructible" true (case.Suite.case_name = "C3P2")

let suite =
  [ Alcotest.test_case "feedthrough column alignment (Sec. 3.1)" `Quick
      test_feedthrough_column_alignment;
    Alcotest.test_case "slack order prioritizes tight paths" `Quick
      test_slack_order_prioritizes_tight_paths;
    Alcotest.test_case "generator locality shrinks wirelength" `Quick
      test_locality_shrinks_wirelength;
    QCheck_alcotest.to_alcotest prop_dijkstra_vs_bellman;
    QCheck_alcotest.to_alcotest prop_arrival_monotone_in_caps;
    Alcotest.test_case "C3P2 constructible" `Quick test_c3p2_available ]

let () = Alcotest.run "fidelity" [ ("fidelity", suite) ]
