(* Tests for the left-edge channel router: track packing, vertical
   constraints, doglegs, and randomized structural audits. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let seg ?(w = 1) net lo hi pins =
  { Channel_router.seg_net = net;
    seg_lo = lo;
    seg_hi = hi;
    seg_pins = List.map (fun (x, top) -> { Channel_router.pin_x = x; pin_from_top = top }) pins;
    seg_width = w }

let test_disjoint_share_track () =
  let r = Channel_router.route [ seg 0 0 4 [ (0, true) ]; seg 1 6 9 [ (7, true) ] ] in
  check_int "one track suffices" 1 r.Channel_router.tracks;
  check_int "no doglegs" 0 r.Channel_router.doglegs;
  check_int "no violations" 0 r.Channel_router.violations;
  match Channel_router.check [ seg 0 0 4 [ (0, true) ]; seg 1 6 9 [ (7, true) ] ] r with
  | Ok _ -> ()
  | Error problems -> Alcotest.failf "audit failed: %s" (String.concat "; " problems)

let test_overlapping_stack () =
  let segs = [ seg 0 0 5 []; seg 1 3 8 []; seg 2 4 6 [] ] in
  let r = Channel_router.route segs in
  check_int "three overlapping nets need three tracks" 3 r.Channel_router.tracks

let test_vertical_constraint_order () =
  (* At column 3, net 0 pins from the top and net 1 from the bottom:
     net 0 must take a higher track. *)
  let segs = [ seg 1 0 6 [ (3, false) ]; seg 0 2 8 [ (3, true) ] ] in
  let r = Channel_router.route segs in
  let track_of net =
    List.find (fun p -> p.Channel_router.pc_net = net) r.Channel_router.pieces
  in
  check_bool "top-pinned net above bottom-pinned net" true
    ((track_of 0).Channel_router.pc_track < (track_of 1).Channel_router.pc_track)

let test_vcg_chain () =
  (* a above b at x=2, b above c at x=5: three tracks in order. *)
  let segs =
    [ seg 2 0 9 [ (5, false) ];
      seg 1 0 9 [ (2, false); (5, true) ];
      seg 0 0 9 [ (2, true) ] ]
  in
  let r = Channel_router.route segs in
  let track_of net =
    (List.find (fun p -> p.Channel_router.pc_net = net) r.Channel_router.pieces).Channel_router.pc_track
  in
  check_bool "chain stacks in order" true (track_of 0 < track_of 1 && track_of 1 < track_of 2)

let test_cycle_dogleg () =
  (* Classic 2-net VCG cycle: a above b at x=2, b above a at x=7.
     Requires a dogleg. *)
  let segs = [ seg 0 0 9 [ (2, true); (7, false) ]; seg 1 0 9 [ (2, false); (7, true) ] ] in
  let r = Channel_router.route segs in
  check_bool "cycle resolved" true (r.Channel_router.doglegs >= 1 || r.Channel_router.violations >= 1);
  match Channel_router.check segs r with
  | Ok _ -> ()
  | Error problems -> Alcotest.failf "audit failed: %s" (String.concat "; " problems)

let test_multipitch_tracks () =
  let segs = [ seg ~w:3 0 0 9 [ (1, true) ]; seg 1 0 9 [] ] in
  let r = Channel_router.route segs in
  check_int "wide net + thin net need 4 tracks" 4 r.Channel_router.tracks

let test_vertical_lengths () =
  (* One net alone on one track: its pin descends half a track from the
     top, (tracks - 0 - 1 + 0.5) from the bottom. *)
  let segs = [ seg 0 0 5 [ (1, true); (4, false) ] ] in
  let r = Channel_router.route segs in
  check_int "single track" 1 r.Channel_router.tracks;
  (match r.Channel_router.net_vertical_tracks with
  | [ (0, v) ] -> Alcotest.(check (float 1e-9)) "0.5 down + 0.5 up" 1.0 v
  | _ -> Alcotest.fail "expected one net's verticals");
  Alcotest.(check (float 1e-9)) "um scaling" 8.0 (Channel_router.vertical_um ~track_um:8.0 r)

let test_degenerate_point_segment () =
  let segs = [ seg 0 3 3 [ (3, true) ] ] in
  let r = Channel_router.route segs in
  check_int "a point still gets a track" 1 r.Channel_router.tracks

(* Random segments: the audit must pass, tracks must be at least the
   column density, and every net's verticals must be accounted for. *)
let random_segs_gen =
  QCheck.Gen.(
    let* n = int_range 1 10 in
    let mk net =
      let* a = int_range 0 19 in
      let* b = int_range 0 19 in
      let lo = min a b and hi = max a b in
      let* top_pin = int_range lo hi in
      let* bot_pin = int_range lo hi in
      let* with_top = bool in
      let* with_bot = bool in
      let pins =
        (if with_top then [ (top_pin, true) ] else []) @ if with_bot then [ (bot_pin, false) ] else []
      in
      return (seg net lo hi pins)
    in
    let rec build k acc =
      if k >= n then return (List.rev acc)
      else
        let* s = mk k in
        build (k + 1) (s :: acc)
    in
    build 0 [])

let prop_random_channels =
  QCheck.Test.make ~name:"channel: random inputs route and audit clean" ~count:200
    (QCheck.make random_segs_gen)
    (fun segs ->
      let r = Channel_router.route segs in
      let audit = match Channel_router.check segs r with Ok _ -> true | Error _ -> false in
      (* density lower bound on tracks *)
      let density =
        let max_col = 20 in
        let best = ref 0 in
        for x = 0 to max_col do
          let d =
            List.fold_left
              (fun acc s ->
                if s.Channel_router.seg_lo <= x && x <= s.Channel_router.seg_hi then
                  acc + s.Channel_router.seg_width
                else acc)
              0 segs
          in
          if d > !best then best := d
        done;
        !best
      in
      audit && r.Channel_router.tracks >= density)

(* --- greedy router ----------------------------------------------------- *)

let test_greedy_basics () =
  let segs = [ seg 0 0 4 [ (0, true); (4, false) ]; seg 1 6 9 [ (7, true) ] ] in
  let r = Greedy_router.route segs in
  check_int "disjoint nets share a track" 1 r.Channel_router.tracks;
  check_int "no violations" 0 r.Channel_router.violations;
  (match Channel_router.check segs r with
  | Ok _ -> ()
  | Error problems -> Alcotest.failf "greedy audit: %s" (String.concat "; " problems))

let test_greedy_vcg_order () =
  (* Top pin and bottom pin of different nets at one column: greedy
     serves them with verticals that cannot overlap, so both route. *)
  let segs = [ seg 1 0 6 [ (3, false) ]; seg 0 2 8 [ (3, true) ] ] in
  let r = Greedy_router.route segs in
  check_int "no violations" 0 r.Channel_router.violations;
  match Channel_router.check segs r with
  | Ok _ -> ()
  | Error problems -> Alcotest.failf "greedy audit: %s" (String.concat "; " problems)

let test_greedy_cycle () =
  (* The VCG cycle that forces the left-edge router to dogleg is routed
     naturally by per-column verticals. *)
  let segs = [ seg 0 0 9 [ (2, true); (7, false) ]; seg 1 0 9 [ (2, false); (7, true) ] ] in
  let r = Greedy_router.route segs in
  check_int "no violations" 0 r.Channel_router.violations;
  match Channel_router.check segs r with
  | Ok _ -> ()
  | Error problems -> Alcotest.failf "greedy audit: %s" (String.concat "; " problems)

let test_greedy_multipitch () =
  let segs = [ seg ~w:3 0 0 9 [ (1, true) ]; seg 1 0 9 [ (5, false) ] ] in
  let r = Greedy_router.route segs in
  check_int "wide + thin tracks" 4 r.Channel_router.tracks;
  match Channel_router.check segs r with
  | Ok _ -> ()
  | Error problems -> Alcotest.failf "greedy audit: %s" (String.concat "; " problems)

let prop_greedy_random =
  QCheck.Test.make ~name:"greedy: random inputs route and audit clean" ~count:200
    (QCheck.make random_segs_gen)
    (fun segs ->
      let r = Greedy_router.route segs in
      match Channel_router.check segs r with Ok _ -> true | Error _ -> false)

let prop_routers_agree_on_density_bound =
  QCheck.Test.make ~name:"greedy and left-edge both respect the density bound" ~count:100
    (QCheck.make random_segs_gen)
    (fun segs ->
      let density =
        let best = ref 0 in
        for x = 0 to 20 do
          let d =
            List.fold_left
              (fun acc s ->
                if s.Channel_router.seg_lo <= x && x <= s.Channel_router.seg_hi then
                  acc + s.Channel_router.seg_width
                else acc)
              0 segs
          in
          if d > !best then best := d
        done;
        !best
      in
      let le = Channel_router.route segs in
      let gr = Greedy_router.route segs in
      le.Channel_router.tracks >= density && gr.Channel_router.tracks >= density)

let prop_pin_bias_preserves_structure =
  QCheck.Test.make ~name:"pin bias: same tracks, clean audit, permuted pieces" ~count:200
    (QCheck.make random_segs_gen)
    (fun segs ->
      let plain = Channel_router.route segs in
      let biased = Channel_router.route ~pin_bias:true segs in
      let audit r = match Channel_router.check segs r with Ok _ -> true | Error _ -> false in
      let spans r =
        List.map
          (fun (p : Channel_router.piece) -> (p.Channel_router.pc_net, p.Channel_router.pc_lo, p.Channel_router.pc_hi))
          r.Channel_router.pieces
        |> List.sort compare
      in
      plain.Channel_router.tracks = biased.Channel_router.tracks
      && audit biased
      && spans plain = spans biased)

let test_pin_bias_moves_top_heavy_up () =
  (* Two independent nets: one all-top pins, one all-bottom; with the
     bias the top-heavy one must take the upper track. *)
  let segs = [ seg 0 0 9 [ (2, false); (7, false) ]; seg 1 0 9 [ (3, true); (6, true) ] ] in
  let r = Channel_router.route ~pin_bias:true segs in
  let track_of net =
    (List.find (fun p -> p.Channel_router.pc_net = net) r.Channel_router.pieces).Channel_router.pc_track
  in
  check_bool "top-heavy above bottom-heavy" true (track_of 1 < track_of 0)

let suite =
  [ Alcotest.test_case "disjoint nets share a track" `Quick test_disjoint_share_track;
    QCheck_alcotest.to_alcotest prop_pin_bias_preserves_structure;
    Alcotest.test_case "pin bias moves top-heavy nets up" `Quick test_pin_bias_moves_top_heavy_up;
    Alcotest.test_case "greedy basics" `Quick test_greedy_basics;
    Alcotest.test_case "greedy vcg order" `Quick test_greedy_vcg_order;
    Alcotest.test_case "greedy handles the vcg cycle" `Quick test_greedy_cycle;
    Alcotest.test_case "greedy multi-pitch" `Quick test_greedy_multipitch;
    QCheck_alcotest.to_alcotest prop_greedy_random;
    QCheck_alcotest.to_alcotest prop_routers_agree_on_density_bound;
    Alcotest.test_case "overlapping nets stack" `Quick test_overlapping_stack;
    Alcotest.test_case "vertical constraint order" `Quick test_vertical_constraint_order;
    Alcotest.test_case "vcg chain" `Quick test_vcg_chain;
    Alcotest.test_case "vcg cycle dogleg" `Quick test_cycle_dogleg;
    Alcotest.test_case "multi-pitch tracks" `Quick test_multipitch_tracks;
    Alcotest.test_case "vertical lengths" `Quick test_vertical_lengths;
    Alcotest.test_case "degenerate point" `Quick test_degenerate_point_segment;
    QCheck_alcotest.to_alcotest prop_random_channels ]

let () = Alcotest.run "channel" [ ("channel", suite) ]
