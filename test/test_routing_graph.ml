(* Tests for Routing_graph: Fig.-3 construction, pruning, tentative
   trees, jog costing. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))

(* A same-row two-terminal net: driver and sink each reach channels 0
   and 1, trunks in both channels form one cycle. *)
let same_row_case () =
  let fp, netlist, invs = Util.small_floorplan () in
  (* net n0-chain between i0 (row 0) and i1 (row 0): i0.Z -> i1.A. *)
  let net = Option.get (Netlist.net_of_pin netlist { Netlist.inst = invs.(0); term = "Z" }) in
  let assignment, failures = Feedthrough.assign fp ~order:(Util.id_order netlist) in
  Alcotest.(check bool) "assignable" true (failures = []);
  (fp, assignment, net)

let test_build_same_row () =
  let fp, assignment, net = same_row_case () in
  let rg = Routing_graph.build fp assignment ~net in
  (* 2 terminals + 4 positions; 4 correspondences + 2 trunks. *)
  check_int "vertices" 6 (Ugraph.n_vertices rg.Routing_graph.graph);
  check_int "edges" 6 (Ugraph.n_edges_live rg.Routing_graph.graph);
  let trunks = ref 0 and corr = ref 0 and branch = ref 0 in
  Ugraph.iter_edges rg.Routing_graph.graph (fun e ->
      match Routing_graph.edge_kind rg e.Ugraph.id with
      | Routing_graph.Trunk _ -> incr trunks
      | Routing_graph.Correspondence _ -> incr corr
      | Routing_graph.Branch _ -> incr branch);
  check_int "two trunk alternatives" 2 !trunks;
  check_int "four correspondences" 4 !corr;
  check_int "no branches needed" 0 !branch;
  check_bool "driver is a terminal" true (List.mem rg.Routing_graph.driver rg.Routing_graph.terminals)

let test_trunk_weights_and_geometry () =
  let fp, assignment, net = same_row_case () in
  let rg = Routing_graph.build fp assignment ~net in
  let d = Dims.default in
  Ugraph.iter_edges rg.Routing_graph.graph (fun e ->
      match Routing_graph.edge_kind rg e.Ugraph.id with
      | Routing_graph.Trunk { span; _ } ->
        check_float "trunk weight = pitch * span"
          (float_of_int (Interval.length span) *. d.Dims.pitch_um)
          e.Ugraph.weight;
        check_float "geometry equals weight without jogs" e.Ugraph.weight
          (Routing_graph.geometric_length_um rg ~edge_ids:[ e.Ugraph.id ])
      | Routing_graph.Correspondence _ ->
        check_float "correspondence weight 0 without jog costing" 0.0 e.Ugraph.weight
      | Routing_graph.Branch _ -> ())

let test_jog_costing () =
  let fp, assignment, net = same_row_case () in
  let jog = function 0 -> 11.0 | 1 -> 22.0 | _ -> 33.0 in
  let rg = Routing_graph.build ~jog_cost:jog fp assignment ~net in
  Ugraph.iter_edges rg.Routing_graph.graph (fun e ->
      match Routing_graph.edge_kind rg e.Ugraph.id with
      | Routing_graph.Correspondence p ->
        check_float "correspondence priced by its channel"
          (jog p.Routing_graph.channel) e.Ugraph.weight;
        check_float "geometry stays zero" 0.0
          (Routing_graph.geometric_length_um rg ~edge_ids:[ e.Ugraph.id ])
      | Routing_graph.Trunk _ | Routing_graph.Branch _ -> ())

let test_tentative_tree_and_capacitance () =
  let fp, assignment, net = same_row_case () in
  let rg = Routing_graph.build fp assignment ~net in
  match Routing_graph.tentative_tree rg with
  | None -> Alcotest.fail "tree expected"
  | Some edges ->
    (* Shortest connection: one trunk + two correspondences. *)
    check_int "tree edges" 3 (List.length edges);
    let d = Dims.default in
    let um = Routing_graph.geometric_length_um rg ~edge_ids:edges in
    check_float "capacitance from weights" (um *. d.Dims.cap_per_um)
      (Routing_graph.tree_capacitance rg ~edge_ids:edges)

let test_exclude_reroutes () =
  let fp, assignment, net = same_row_case () in
  let rg = Routing_graph.build fp assignment ~net in
  let tree = Option.get (Routing_graph.tentative_tree rg) in
  let trunk_in_tree =
    List.find (fun eid -> Routing_graph.is_trunk rg eid) tree
  in
  match Routing_graph.tentative_tree ~exclude_edge:trunk_in_tree rg with
  | None -> Alcotest.fail "the other channel should still connect"
  | Some other ->
    check_bool "rerouted avoiding the edge" true (not (List.mem trunk_in_tree other))

let test_prune_dangling () =
  let fp, assignment, net = same_row_case () in
  let rg = Routing_graph.build fp assignment ~net in
  (* Delete one trunk; its two flanking correspondences become dead
     ends and must be pruned. *)
  let doomed =
    let found = ref (-1) in
    Ugraph.iter_edges rg.Routing_graph.graph (fun e ->
        if !found = -1 && Routing_graph.is_trunk rg e.Ugraph.id then found := e.Ugraph.id);
    !found
  in
  Ugraph.delete_edge rg.Routing_graph.graph doomed;
  let pruned = ref 0 in
  Routing_graph.prune_dangling rg ~on_delete:(fun _ -> incr pruned);
  check_int "two stubs pruned" 2 !pruned;
  check_bool "terminals still connected" true
    (Ugraph.connected_within rg.Routing_graph.graph rg.Routing_graph.terminals);
  (* Now everything is a bridge: the tree. *)
  check_int "no non-bridges remain" 0
    (List.length (Bridges.non_bridge_ids rg.Routing_graph.graph))

let test_multi_row_branch () =
  (* Reuse layout test's three-row circuit: net must use the assigned
     feedthrough as a Branch edge. *)
  let b = Netlist.builder ~library:Cell_lib.ecl_default in
  let p = Netlist.add_port b ~name:"IN" ~side:Netlist.South () in
  let d = Netlist.add_instance b ~name:"d" ~cell:"BUF2" in
  let s = Netlist.add_instance b ~name:"s" ~cell:"INV1" in
  let q = Netlist.add_port b ~name:"OUT" ~side:Netlist.North () in
  let _ = Netlist.add_net b ~name:"n0" ~driver:(Netlist.Port p) ~sinks:[ Util.pin d "A" ] () in
  let far = Netlist.add_net b ~name:"far" ~driver:(Util.pin d "Z") ~sinks:[ Util.pin s "A" ] () in
  let _ = Netlist.add_net b ~name:"n1" ~driver:(Util.pin s "Z") ~sinks:[ Netlist.Port q ] () in
  let netlist = Netlist.freeze b in
  let cells = [ { Floorplan.inst = d; row = 0; x = 0 }; { Floorplan.inst = s; row = 2; x = 0 } ] in
  let fp =
    Floorplan.make ~netlist ~dims:Dims.default ~n_rows:3 ~width:10 ~cells ~slots:[ (1, 4, 0) ] ()
  in
  let assignment, failures = Feedthrough.assign fp ~order:(Util.id_order netlist) in
  Alcotest.(check bool) "assigned" true (failures = []);
  let rg = Routing_graph.build fp assignment ~net:far in
  let branches = ref [] in
  Ugraph.iter_edges rg.Routing_graph.graph (fun e ->
      match Routing_graph.edge_kind rg e.Ugraph.id with
      | Routing_graph.Branch { row; x } -> branches := (row, x) :: !branches
      | Routing_graph.Trunk _ | Routing_graph.Correspondence _ -> ());
  Alcotest.(check (list (pair int int))) "one branch at the granted slot" [ (1, 4) ] !branches;
  (* Tree must cross the row: it includes the branch. *)
  let tree = Option.get (Routing_graph.tentative_tree rg) in
  check_bool "tree crosses via the branch" true
    (List.exists
       (fun eid ->
         match Routing_graph.edge_kind rg eid with
         | Routing_graph.Branch _ -> true
         | Routing_graph.Trunk _ | Routing_graph.Correspondence _ -> false)
       tree);
  let d_dims = Dims.default in
  check_bool "tree length includes the row crossing" true
    (Routing_graph.geometric_length_um rg ~edge_ids:tree >= d_dims.Dims.row_height_um)

let test_density_locus () =
  let fp, assignment, net = same_row_case () in
  let rg = Routing_graph.build fp assignment ~net in
  Ugraph.iter_edges rg.Routing_graph.graph (fun e ->
      let channel, span = Routing_graph.density_locus rg e.Ugraph.id in
      match Routing_graph.edge_kind rg e.Ugraph.id with
      | Routing_graph.Trunk { channel = c; span = s } ->
        check_int "trunk channel" c channel;
        check_bool "trunk span" true (Interval.equal s span)
      | Routing_graph.Correspondence p ->
        check_int "correspondence channel" p.Routing_graph.channel channel;
        check_int "point interval" 1 (Interval.length span)
      | Routing_graph.Branch _ -> ())

let suite =
  [ Alcotest.test_case "build same-row net" `Quick test_build_same_row;
    Alcotest.test_case "trunk weights and geometry" `Quick test_trunk_weights_and_geometry;
    Alcotest.test_case "jog costing" `Quick test_jog_costing;
    Alcotest.test_case "tentative tree and CL" `Quick test_tentative_tree_and_capacitance;
    Alcotest.test_case "exclude-edge reroute" `Quick test_exclude_reroutes;
    Alcotest.test_case "prune dangling stubs" `Quick test_prune_dangling;
    Alcotest.test_case "multi-row branch" `Quick test_multi_row_branch;
    Alcotest.test_case "density locus" `Quick test_density_locus ]

let () = Alcotest.run "routing-graph" [ ("routing-graph", suite) ]
