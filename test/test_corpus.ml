(* The malformed-design corpus: every file under corpus/ must come
   back as [Error _] from the Result-returning load-and-validate path —
   never as an escaping exception — with a structured, renderable
   [Bgr_error.t] carrying the file, a line number and a documented exit
   code.  Plus a QCheck round trip: generated designs survive
   to_string/of_string_result/validate. *)

let check_bool = Alcotest.(check bool)
(* dune runtest runs in test/; dune exec from the repo root. *)
let corpus_dir = if Sys.file_exists "corpus" then "corpus" else "test/corpus"

let corpus_files () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".bgr")
  |> List.sort compare

(* valid_*.bgr are the corpus's well-formed bundles: they must load,
   route and pass the full state-invariant audit; everything else must
   come back as a structured Error. *)
let is_valid name = String.length name >= 6 && String.sub name 0 6 = "valid_"
let malformed_files () = List.filter (fun n -> not (is_valid n)) (corpus_files ())
let valid_files () = List.filter is_valid (corpus_files ())

let is_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

(* "file:LINE: [code] message" — the shape bgr_run prints to stderr. *)
let well_formed_rendering ~path s =
  let prefix = path ^ ":" in
  String.length s > String.length prefix
  && String.sub s 0 (String.length prefix) = prefix
  &&
  let rest = String.sub s (String.length prefix) (String.length s - String.length prefix) in
  match String.index_opt rest ':' with
  | None -> false
  | Some i ->
    is_digits (String.sub rest 0 i)
    && String.length rest > i + 3
    && String.sub rest (i + 1) 2 = " ["

let check_corpus_file name () =
  let path = Filename.concat corpus_dir name in
  match
    Result.bind (Design_io.read_result path) Design_check.validate
    |> Result.map_error (Bgr_error.with_file path)
  with
  | Ok _ -> Alcotest.failf "%s: expected Error, parsed and validated fine" name
  | Error e ->
    let rendered = Bgr_error.to_string e in
    check_bool
      (Printf.sprintf "%s renders as file:line: [code] (got %S)" name rendered)
      true
      (well_formed_rendering ~path rendered);
    let ec = Bgr_error.exit_code e.Bgr_error.code in
    check_bool
      (Printf.sprintf "%s exit code %d is documented (2..10)" name ec)
      true
      (ec >= 2 && ec <= 10)
  | exception e ->
    Alcotest.failf "%s: exception escaped the Result path: %s" name (Printexc.to_string e)

let check_valid_file name () =
  let path = Filename.concat corpus_dir name in
  match
    Result.bind (Design_io.read_result path) Design_check.validate
    |> Result.map_error (Bgr_error.with_file path)
  with
  | Error e -> Alcotest.failf "%s: well-formed bundle rejected: %s" name (Bgr_error.to_string e)
  | Ok bundle ->
    let outcome = Flow.run (Design_io.to_flow_input bundle) in
    let a = Verify.audit ~measured_caps:true outcome.Flow.o_router in
    check_bool
      (Printf.sprintf "%s: routed state passes the invariant audit (%s)" name
         (Format.asprintf "%a" Verify.pp_audit a))
      true (Verify.audit_ok a)

let test_corpus_is_nonempty () =
  check_bool "corpus has at least 20 malformed files" true (List.length (malformed_files ()) >= 20);
  check_bool "corpus has at least one valid bundle" true (valid_files () <> [])

(* Every corpus file also stays harmless when handed to the legacy
   raising reader wrapped in the protect boundary directly. *)
let test_protect_totality () =
  List.iter
    (fun name ->
      let path = Filename.concat corpus_dir name in
      match Lineio.protect ~file:path (fun () -> Design_io.read path) with
      | Ok _ | Error _ -> ()
      | exception e ->
        Alcotest.failf "%s: protect let an exception through: %s" name (Printexc.to_string e))
    (corpus_files ())

(* QCheck: generated designs round-trip through the bundle format and
   pass semantic validation. *)
let params_of seed =
  { Circuit_gen.default_params with
    Circuit_gen.seed;
    n_comb = 20;
    n_ff = 4;
    n_inputs = 4;
    n_outputs = 4;
    n_levels = 3;
    n_diff_pairs = 1;
    n_constraints = 3 }

let arb_seed = QCheck.make ~print:Int64.to_string QCheck.Gen.(map Int64.of_int (int_range 1 100000))

let prop_roundtrip =
  QCheck.Test.make ~name:"generated bundles round-trip and validate" ~count:10 arb_seed
    (fun seed ->
      let netlist, constraints = Circuit_gen.generate (params_of seed) in
      let placed = Placement.place ~netlist ~n_rows:3 Placement.P1 in
      let input = Placement.to_flow_input ~netlist ~dims:Dims.default ~constraints placed in
      let fp = Flow.floorplan_of_input input in
      let text = Design_io.to_string ~floorplan:fp ~constraints netlist in
      match Result.bind (Design_io.of_string_result text) Design_check.validate with
      | Error e -> QCheck.Test.fail_reportf "rejected: %s" (Bgr_error.to_string e)
      | Ok bundle ->
        (* Idempotence: re-serializing the reread bundle is stable. *)
        let fp = Option.get bundle.Design_io.d_floorplan in
        let text' =
          Design_io.to_string ~floorplan:fp ~constraints:bundle.Design_io.d_constraints
            bundle.Design_io.d_netlist
        in
        text = text')

let () =
  let per_file =
    List.map
      (fun name -> Alcotest.test_case name `Quick (check_corpus_file name))
      (malformed_files ())
  and per_valid =
    List.map
      (fun name -> Alcotest.test_case name `Slow (check_valid_file name))
      (valid_files ())
  in
  Alcotest.run "corpus"
    [ ("malformed designs", per_file);
      ("valid designs route and audit clean", per_valid);
      ( "totality",
        [ Alcotest.test_case "corpus size floor" `Quick test_corpus_is_nonempty;
          Alcotest.test_case "protect never leaks exceptions" `Quick test_protect_totality ] );
      ("roundtrip", [ QCheck_alcotest.to_alcotest prop_roundtrip ]) ]
