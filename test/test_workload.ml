(* Tests for the workload generators: Prng, Circuit_gen, Placement,
   Calibrate, Suite. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Prng --------------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42L and b = Prng.create ~seed:42L in
  for _ = 1 to 100 do
    check_bool "same stream" true (Prng.next64 a = Prng.next64 b)
  done;
  let c = Prng.create ~seed:43L in
  check_bool "different seed, different stream" true (Prng.next64 a <> Prng.next64 c)

let test_prng_ranges () =
  let r = Prng.create ~seed:7L in
  for _ = 1 to 1000 do
    let v = Prng.int r 10 in
    check_bool "int in range" true (v >= 0 && v < 10);
    let f = Prng.float r 2.5 in
    check_bool "float in range" true (f >= 0.0 && f < 2.5)
  done;
  check_bool "int rejects bad bound" true
    (match Prng.int r 0 with exception Invalid_argument _ -> true | _ -> false)

let test_prng_pick_shuffle () =
  let r = Prng.create ~seed:5L in
  check_int "pick singleton" 9 (Prng.pick r [ 9 ]);
  let arr = Array.init 20 Fun.id in
  Prng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 20 Fun.id) sorted

(* --- Circuit_gen --------------------------------------------------------- *)

let small_params =
  { Circuit_gen.default_params with
    Circuit_gen.seed = 11L;
    n_comb = 30;
    n_ff = 6;
    n_inputs = 4;
    n_outputs = 4;
    n_levels = 3;
    n_diff_pairs = 2;
    n_constraints = 3 }

let test_generate_wellformed () =
  let netlist, constraints = Circuit_gen.generate small_params in
  (* freeze already validated; sanity-check the shape. *)
  let s = Netlist.stats netlist in
  check_bool "enough cells" true (s.Netlist.n_cells >= 30);
  check_int "requested pairs" 2 s.Netlist.n_diff_pairs;
  check_int "clock is multi-pitch" 1 s.Netlist.n_multi_pitch;
  check_int "constraints" 3 (List.length constraints);
  (* The delay graph must be acyclic and analyzable. *)
  let dg = Delay_graph.build netlist in
  let sta = Sta.create dg constraints in
  check_bool "finite critical delay" true (Sta.worst_path_delay sta > 0.0)

let test_generate_deterministic () =
  let a, _ = Circuit_gen.generate small_params in
  let b, _ = Circuit_gen.generate small_params in
  check_int "same nets" (Netlist.n_nets a) (Netlist.n_nets b);
  for net = 0 to Netlist.n_nets a - 1 do
    check_bool "identical net structure" true ((Netlist.net a net) = (Netlist.net b net))
  done;
  let c, _ = Circuit_gen.generate { small_params with Circuit_gen.seed = 12L } in
  check_bool "different seed differs" true
    (Netlist.n_nets a <> Netlist.n_nets c
    || (let differs = ref false in
        for net = 0 to Netlist.n_nets a - 1 do
          if Netlist.net a net <> Netlist.net c net then differs := true
        done;
        !differs))

let test_constraints_have_paths () =
  let netlist, constraints = Circuit_gen.generate small_params in
  let dg = Delay_graph.build netlist in
  let sta = Sta.create dg constraints in
  for ci = 0 to Sta.n_constraints sta - 1 do
    check_bool
      (Printf.sprintf "constraint %d has a path" ci)
      true
      (Sta.critical_delay sta ci > neg_infinity)
  done

(* --- Placement ------------------------------------------------------------ *)

let test_placement_legal () =
  let netlist, _ = Circuit_gen.generate small_params in
  List.iter
    (fun style ->
      let r = Placement.place ~netlist ~n_rows:3 style in
      (* Floorplan.make performs full legality checking. *)
      let fp =
        Floorplan.make ~netlist ~dims:Dims.default ~n_rows:3 ~width:r.Placement.r_width
          ~cells:r.Placement.r_cells ~slots:r.Placement.r_slots ()
      in
      check_int "rows as asked" 3 (Floorplan.n_rows fp);
      check_bool "has feed slots" true (Floorplan.n_slots fp > 0))
    [ Placement.P1; Placement.P2 ]

let test_placement_styles_differ () =
  let netlist, _ = Circuit_gen.generate small_params in
  let p1 = Placement.place ~netlist ~n_rows:3 Placement.P1 in
  let p2 = Placement.place ~netlist ~n_rows:3 Placement.P2 in
  check_int "same width" p1.Placement.r_width p2.Placement.r_width;
  check_int "same slot count" (List.length p1.Placement.r_slots) (List.length p2.Placement.r_slots);
  (* P2 sweeps all slots to the right end of each row: its mean slot
     column is strictly larger. *)
  let mean slots =
    let sum = List.fold_left (fun acc (_, x, _) -> acc + x) 0 slots in
    float_of_int sum /. float_of_int (List.length slots)
  in
  check_bool "P2 slots pushed aside" true (mean p2.Placement.r_slots > mean p1.Placement.r_slots)

let test_placement_hpwl_sanity () =
  (* The barycenter placement should beat a pessimal reversed-order
     placement on total HPWL. *)
  let netlist, _ = Circuit_gen.generate small_params in
  let hpwl_of placed =
    let fp =
      Floorplan.make ~netlist ~dims:Dims.default ~n_rows:3 ~width:placed.Placement.r_width
        ~cells:placed.Placement.r_cells ~slots:placed.Placement.r_slots ()
    in
    let total = ref 0.0 in
    for net = 0 to Netlist.n_nets netlist - 1 do
      let bbox = Floorplan.net_bbox fp net in
      total := !total +. float_of_int (Rect.half_perimeter bbox)
    done;
    !total
  in
  let good = Placement.place ~netlist ~n_rows:3 Placement.P1 in
  let bad = Placement.place ~barycenter_passes:0 ~netlist ~n_rows:3 Placement.P1 in
  check_bool "refinement does not hurt" true (hpwl_of good <= hpwl_of bad)

(* --- Calibrate / Suite ------------------------------------------------------ *)

let test_calibrate_tightens_to_bound () =
  let case = Suite.mini () in
  let input = case.Suite.input in
  let dg = Delay_graph.build input.Flow.netlist in
  let sta = Sta.create dg input.Flow.constraints in
  let fp = Flow.floorplan_of_input input in
  let bounds = Lower_bound.per_constraint sta fp in
  List.iteri
    (fun ci (pc : Path_constraint.t) ->
      if bounds.(ci) > neg_infinity then
        check_bool
          (Printf.sprintf "limit %d above its row-only bound" ci)
          true
          (pc.Path_constraint.limit_ps > bounds.(ci)))
    input.Flow.constraints

let test_suite_cases () =
  let cases = Suite.all () in
  check_int "five cases as in Table 1" 5 (List.length cases);
  Alcotest.(check (list string))
    "case names"
    [ "C1P1"; "C1P2"; "C2P1"; "C2P2"; "C3P1" ]
    (List.map (fun (c : Suite.case) -> c.Suite.case_name) cases);
  (* Both placements of one circuit share the same netlist value. *)
  match cases with
  | a :: b :: _ ->
    check_bool "C1P1/C1P2 share the circuit" true
      (a.Suite.input.Flow.netlist == b.Suite.input.Flow.netlist)
  | _ -> Alcotest.fail "unexpected suite"

let suite =
  [ Alcotest.test_case "prng determinism" `Quick test_prng_deterministic;
    Alcotest.test_case "prng ranges" `Quick test_prng_ranges;
    Alcotest.test_case "prng pick/shuffle" `Quick test_prng_pick_shuffle;
    Alcotest.test_case "generator well-formed" `Quick test_generate_wellformed;
    Alcotest.test_case "generator deterministic" `Quick test_generate_deterministic;
    Alcotest.test_case "constraints have paths" `Quick test_constraints_have_paths;
    Alcotest.test_case "placement legal (P1/P2)" `Quick test_placement_legal;
    Alcotest.test_case "placement styles differ" `Quick test_placement_styles_differ;
    Alcotest.test_case "placement refinement sanity" `Quick test_placement_hpwl_sanity;
    Alcotest.test_case "calibration above bound" `Quick test_calibrate_tightens_to_bound;
    Alcotest.test_case "suite cases" `Quick test_suite_cases ]

let () = Alcotest.run "workload" [ ("workload", suite) ]
