(* QCheck property tests for the edge-deletion core on random
   Circuit_gen instances:

   - the router never deletes a bridge.  Witness: deletion is
     permanent, and after the initial prune every leaf of a candidate
     graph is a terminal, so any bridge separates two terminals —
     deleting one would leave the terminals disconnected forever.
     Terminal connectivity at the end therefore proves no bridge was
     ever deleted.
   - every net ends with its candidate graph G_r(n) reduced to a
     spanning tree of the net's terminals (connected + acyclic);
   - the incrementally maintained density charts d_M/d_m equal a
     from-scratch recount over the live trunks. *)

let params_of seed ~n_comb ~n_ff ~n_levels ~n_diff_pairs =
  { Circuit_gen.default_params with
    Circuit_gen.seed;
    n_comb;
    n_ff;
    n_inputs = 4;
    n_outputs = 4;
    n_levels;
    n_diff_pairs;
    n_constraints = 3 }

let gen_params =
  QCheck.Gen.(
    let* seed = int_range 1 100000 in
    let* n_comb = int_range 15 50 in
    let* n_ff = int_range 3 8 in
    let* n_levels = int_range 2 4 in
    let* n_diff_pairs = int_range 0 2 in
    return (params_of (Int64.of_int seed) ~n_comb ~n_ff ~n_levels ~n_diff_pairs))

let arb_params =
  QCheck.make
    ~print:(fun p ->
      Printf.sprintf "seed=%Ld comb=%d ff=%d" p.Circuit_gen.seed p.Circuit_gen.n_comb
        p.Circuit_gen.n_ff)
    gen_params

let flow_input p =
  let netlist, constraints = Circuit_gen.generate p in
  let placed = Placement.place ~netlist ~n_rows:3 Placement.P1 in
  Placement.to_flow_input ~netlist ~dims:Dims.default ~constraints placed

(* A bare router over the input, bypassing Flow so the properties can
   inspect the state right after [initial_route]. *)
let build_router ?(timing = true) input =
  let fp0 = Flow.floorplan_of_input input in
  let dg = Delay_graph.build input.Flow.netlist in
  let order =
    if timing then Sta.static_net_order dg input.Flow.constraints
    else List.init (Netlist.n_nets input.Flow.netlist) Fun.id
  in
  let fp, assignment, _ = Feed_insert.assign_with_insertion fp0 ~order in
  let sta = if timing then Some (Sta.create dg input.Flow.constraints) else None in
  (Router.create fp assignment sta, fp)

(* The net's final wiring is a spanning tree of its terminals: adding
   its edges to a DSU never closes a cycle, and afterwards all
   terminals share one component. *)
let spanning_tree_of_terminals (rg : Routing_graph.t) tree =
  let g = rg.Routing_graph.graph in
  let d = Dsu.create (Ugraph.n_vertices g) in
  let acyclic =
    List.for_all
      (fun eid ->
        let e = Ugraph.edge g eid in
        Dsu.union d e.Ugraph.u e.Ugraph.v)
      tree
  in
  acyclic
  &&
  match rg.Routing_graph.terminals with
  | [] | [ _ ] -> true
  | t0 :: rest -> List.for_all (fun t -> Dsu.same d t0 t) rest

let audit_router router fp netlist =
  let ok = ref true in
  for net = 0 to Netlist.n_nets netlist - 1 do
    let rg = Router.routing_graph router net in
    (* no bridge was ever deleted (see the header comment) *)
    if not (Ugraph.connected_within rg.Routing_graph.graph rg.Routing_graph.terminals) then
      ok := false;
    (* fully reduced: nothing deletable remains *)
    if Bridges.non_bridge_ids rg.Routing_graph.graph <> [] then ok := false;
    if not (spanning_tree_of_terminals rg (Router.tree_edges router net)) then ok := false
  done;
  !ok
  && Util.densities_equal (Router.density router)
       (Util.recount_density router fp)
       ~n_channels:(Floorplan.n_channels fp) ~width:(Floorplan.width fp)

let prop_initial_route =
  QCheck.Test.make
    ~name:"initial route: spanning trees, no bridge deleted, densities recount" ~count:8
    arb_params
    (fun p ->
      let input = flow_input p in
      let router, fp = build_router input in
      Router.initial_route router;
      Router.is_routed router && audit_router router fp input.Flow.netlist)

let prop_initial_route_area_only =
  QCheck.Test.make ~name:"initial route (area-only) keeps the same invariants" ~count:5
    arb_params
    (fun p ->
      let input = flow_input p in
      let router, fp = build_router ~timing:false input in
      Router.initial_route router;
      Router.is_routed router && audit_router router fp input.Flow.netlist)

let prop_full_flow =
  QCheck.Test.make ~name:"full flow keeps the invariants through the rip-up phases"
    ~count:5 arb_params
    (fun p ->
      let input = flow_input p in
      let outcome = Flow.run input in
      audit_router outcome.Flow.o_router outcome.Flow.o_floorplan input.Flow.netlist)

let suite =
  [ QCheck_alcotest.to_alcotest prop_initial_route;
    QCheck_alcotest.to_alcotest prop_initial_route_area_only;
    QCheck_alcotest.to_alcotest prop_full_flow ]

let () = Alcotest.run "properties" [ ("properties", suite) ]
