let () =
  Alcotest.run "bgr"
    [ ("geom", Test_geom.suite);
      ("graph", Test_graph.suite);
      ("cell", Test_cell.suite);
      ("netlist", Test_netlist.suite);
      ("layout", Test_layout.suite);
      ("timing", Test_timing.suite);
      ("density", Test_density.suite);
      ("routing-graph", Test_routing_graph.suite);
      ("diff-pair", Test_diff_pair.suite);
      ("router", Test_router.suite);
      ("channel", Test_channel.suite);
      ("workload", Test_workload.suite);
      ("flow", Test_flow.suite);
      ("elmore", Test_elmore.suite);
      ("io", Test_io.suite);
      ("blockage", Test_blockage.suite);
      ("report", Test_report.suite);
      ("skew", Test_skew.suite);
      ("random-e2e", Test_random_e2e.suite);
      ("misc", Test_misc.suite);
      ("fidelity", Test_fidelity.suite) ]
