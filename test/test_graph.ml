(* Tests for bgr_graph: Dsu, Heap, Ugraph, Bridges, Dijkstra, Dag. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* --- Dsu ------------------------------------------------------------- *)

let test_dsu () =
  let d = Dsu.create 6 in
  check_bool "initially distinct" false (Dsu.same d 0 1);
  check_bool "union merges" true (Dsu.union d 0 1);
  check_bool "re-union is false" false (Dsu.union d 1 0);
  ignore (Dsu.union d 2 3);
  ignore (Dsu.union d 1 2);
  check_bool "transitivity" true (Dsu.same d 0 3);
  check_int "distinct count" 3 (Dsu.count_distinct d [ 0; 1; 2; 3; 4; 5 ])

let prop_dsu_vs_naive =
  (* Compare against a naive labelling after random unions. *)
  let gen = QCheck.(list_of_size (QCheck.Gen.int_range 0 40) (pair (int_range 0 14) (int_range 0 14))) in
  QCheck.Test.make ~name:"dsu: agrees with naive relabelling" ~count:200 gen (fun unions ->
      let d = Dsu.create 15 in
      let label = Array.init 15 Fun.id in
      let relabel a b =
        let la = label.(a) and lb = label.(b) in
        if la <> lb then Array.iteri (fun i l -> if l = lb then label.(i) <- la) label
      in
      List.iter
        (fun (a, b) ->
          ignore (Dsu.union d a b);
          relabel a b)
        unions;
      let ok = ref true in
      for i = 0 to 14 do
        for j = 0 to 14 do
          if Dsu.same d i j <> (label.(i) = label.(j)) then ok := false
        done
      done;
      !ok)

(* --- Heap ------------------------------------------------------------ *)

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun (k, v) -> Heap.push h k v) [ (3.0, 3); (1.0, 1); (2.0, 2); (0.5, 0); (2.5, 25) ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (_, v) ->
      order := v :: !order;
      drain ()
  in
  drain ();
  Alcotest.(check (list int)) "pops ascending" [ 0; 1; 2; 25; 3 ] (List.rev !order)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap: drains keys in nondecreasing order" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 0 100) (float_range (-100.) 100.))
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h k i) keys;
      let rec drain last =
        match Heap.pop h with
        | None -> true
        | Some (k, _) -> k >= last && drain k
      in
      drain neg_infinity)

(* --- Ugraph ----------------------------------------------------------- *)

let path_graph n =
  let g = Ugraph.create () in
  let vs = Array.init n (fun _ -> Ugraph.add_vertex g) in
  let es =
    Array.init (n - 1) (fun i -> Ugraph.add_edge g ~u:vs.(i) ~v:vs.(i + 1) ~weight:1.0)
  in
  (g, vs, es)

let test_ugraph_basics () =
  let g, vs, es = path_graph 4 in
  check_int "vertices" 4 (Ugraph.n_vertices g);
  check_int "live edges" 3 (Ugraph.n_edges_live g);
  check_int "degree middle" 2 (Ugraph.degree g vs.(1));
  check_int "degree end" 1 (Ugraph.degree g vs.(0));
  Ugraph.delete_edge g es.(1);
  check_int "live after delete" 2 (Ugraph.n_edges_live g);
  check_bool "deleted is dead" false (Ugraph.is_live g es.(1));
  Ugraph.delete_edge g es.(1) (* idempotent *);
  check_int "double delete harmless" 2 (Ugraph.n_edges_live g);
  check_int "degree drops" 1 (Ugraph.degree g vs.(1))

let test_ugraph_connectivity () =
  let g, vs, es = path_graph 5 in
  check_bool "path connected" true (Ugraph.connected_within g (Array.to_list vs));
  Ugraph.delete_edge g es.(2);
  check_bool "split" false (Ugraph.connected_within g (Array.to_list vs));
  check_bool "left half connected" true (Ugraph.connected_within g [ vs.(0); vs.(1); vs.(2) ]);
  check_bool "singleton vacuous" true (Ugraph.connected_within g [ vs.(4) ]);
  check_bool "empty vacuous" true (Ugraph.connected_within g [])

let test_ugraph_parallel_edges () =
  let g = Ugraph.create () in
  let a = Ugraph.add_vertex g and b = Ugraph.add_vertex g in
  let e1 = Ugraph.add_edge g ~u:a ~v:b ~weight:1.0 in
  let _e2 = Ugraph.add_edge g ~u:a ~v:b ~weight:2.0 in
  check_int "parallel degree" 2 (Ugraph.degree g a);
  Ugraph.delete_edge g e1;
  check_bool "still connected via the twin" true (Ugraph.connected_within g [ a; b ])

let test_ugraph_other_endpoint () =
  let g, vs, es = path_graph 2 in
  let e = Ugraph.edge g es.(0) in
  check_int "other of u" vs.(1) (Ugraph.other_endpoint e vs.(0));
  check_int "other of v" vs.(0) (Ugraph.other_endpoint e vs.(1));
  check_bool "stranger rejected" true
    (let w = Ugraph.add_vertex g in
     match Ugraph.other_endpoint e w with
     | exception Bgr_error.Error { Bgr_error.code = Bgr_error.Internal; _ } -> true
     | _ -> false)

(* Random connected-ish multigraph for property tests. *)
let random_graph_gen =
  QCheck.Gen.(
    let* n = int_range 2 10 in
    let* m = int_range 1 20 in
    let* pairs = list_repeat m (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
    return (n, pairs))

let build_graph (n, pairs) =
  let g = Ugraph.create () in
  for _ = 1 to n do
    ignore (Ugraph.add_vertex g)
  done;
  List.iter
    (fun (u, v) -> if u <> v then ignore (Ugraph.add_edge g ~u ~v ~weight:1.0))
    pairs;
  g

(* --- Bridges ----------------------------------------------------------- *)

(* Naive bridge check: rebuild the graph without one edge and compare
   component counts. *)
let graph_without (n, pairs) skip_index =
  let g = Ugraph.create () in
  for _ = 1 to n do
    ignore (Ugraph.add_vertex g)
  done;
  List.iteri
    (fun i (u, v) -> if i <> skip_index then ignore (Ugraph.add_edge g ~u ~v ~weight:1.0))
    pairs;
  g

let n_components g =
  let label = Ugraph.components g in
  let seen = Hashtbl.create 8 in
  Array.iter (fun l -> Hashtbl.replace seen l ()) label;
  Hashtbl.length seen

let prop_bridges_vs_naive =
  QCheck.Test.make ~name:"bridges: agree with delete-and-recount" ~count:300
    (QCheck.make random_graph_gen)
    (fun (n, pairs) ->
      let pairs = List.filter (fun (u, v) -> u <> v) pairs in
      let g = build_graph (n, pairs) in
      let flags = Bridges.bridges g in
      let base = n_components g in
      List.for_all
        (fun i ->
          let without = graph_without (n, pairs) i in
          flags.(i) = (n_components without > base))
        (List.init (List.length pairs) Fun.id))

let test_bridges_path_and_cycle () =
  let g, _, es = path_graph 4 in
  let flags = Bridges.bridges g in
  Array.iter (fun e -> check_bool "path edges are bridges" true flags.(e)) es;
  (* Close the cycle: no bridges remain. *)
  let g2 = Ugraph.create () in
  let vs = Array.init 4 (fun _ -> Ugraph.add_vertex g2) in
  let es2 = Array.init 4 (fun i -> Ugraph.add_edge g2 ~u:vs.(i) ~v:vs.((i + 1) mod 4) ~weight:1.0) in
  let flags2 = Bridges.bridges g2 in
  Array.iter (fun e -> check_bool "cycle has no bridges" false flags2.(e)) es2;
  check_int "non_bridge_ids counts the cycle" 4 (List.length (Bridges.non_bridge_ids g2))

let test_bridges_parallel () =
  let g = Ugraph.create () in
  let a = Ugraph.add_vertex g and b = Ugraph.add_vertex g in
  let e1 = Ugraph.add_edge g ~u:a ~v:b ~weight:1.0 in
  let e2 = Ugraph.add_edge g ~u:a ~v:b ~weight:1.0 in
  let flags = Bridges.bridges g in
  check_bool "parallel edge 1 not a bridge" false flags.(e1);
  check_bool "parallel edge 2 not a bridge" false flags.(e2);
  Ugraph.delete_edge g e2;
  let flags = Bridges.bridges g in
  check_bool "survivor becomes a bridge" true flags.(e1)

(* --- Dijkstra ----------------------------------------------------------- *)

let test_dijkstra_distances () =
  (* diamond with a shortcut *)
  let g = Ugraph.create () in
  let v = Array.init 4 (fun _ -> Ugraph.add_vertex g) in
  let _ = Ugraph.add_edge g ~u:v.(0) ~v:v.(1) ~weight:1.0 in
  let _ = Ugraph.add_edge g ~u:v.(1) ~v:v.(3) ~weight:1.0 in
  let _ = Ugraph.add_edge g ~u:v.(0) ~v:v.(2) ~weight:2.5 in
  let _ = Ugraph.add_edge g ~u:v.(2) ~v:v.(3) ~weight:0.1 in
  let r = Dijkstra.shortest_paths g ~source:v.(0) in
  check_float "direct" 1.0 r.Dijkstra.dist.(v.(1));
  check_float "via shortcut" 2.0 r.Dijkstra.dist.(v.(3));
  check_float "long way" 2.1 r.Dijkstra.dist.(v.(2))

let test_dijkstra_exclude () =
  let g, vs, es = path_graph 3 in
  let r = Dijkstra.shortest_paths ~exclude_edge:es.(0) g ~source:vs.(0) in
  check_bool "excluded edge disconnects" true (r.Dijkstra.dist.(vs.(2)) = infinity);
  check_bool "tentative tree signals it" true
    (Dijkstra.tentative_tree ~exclude_edge:es.(0) g ~source:vs.(0) ~targets:[ vs.(2) ] = None)

let test_tentative_tree_union () =
  (* Y-shaped graph: tree is the union of the two shortest paths. *)
  let g = Ugraph.create () in
  let v = Array.init 4 (fun _ -> Ugraph.add_vertex g) in
  let e0 = Ugraph.add_edge g ~u:v.(0) ~v:v.(1) ~weight:1.0 in
  let e1 = Ugraph.add_edge g ~u:v.(1) ~v:v.(2) ~weight:1.0 in
  let e2 = Ugraph.add_edge g ~u:v.(1) ~v:v.(3) ~weight:1.0 in
  match Dijkstra.tentative_tree g ~source:v.(0) ~targets:[ v.(2); v.(3) ] with
  | None -> Alcotest.fail "expected a tree"
  | Some edges ->
    Alcotest.(check (list int)) "tree edges" [ e0; e1; e2 ] edges;
    check_float "length" 3.0 (Dijkstra.edges_length g edges)

let prop_dijkstra_triangle =
  (* Distances satisfy the triangle inequality along any live edge. *)
  QCheck.Test.make ~name:"dijkstra: relaxed along every edge" ~count:200
    (QCheck.make random_graph_gen)
    (fun (n, pairs) ->
      let g = build_graph (n, pairs) in
      let r = Dijkstra.shortest_paths g ~source:0 in
      let ok = ref true in
      Ugraph.iter_edges g (fun e ->
          let du = r.Dijkstra.dist.(e.Ugraph.u) and dv = r.Dijkstra.dist.(e.Ugraph.v) in
          if du < infinity && dv > du +. e.Ugraph.weight +. 1e-9 then ok := false;
          if dv < infinity && du > dv +. e.Ugraph.weight +. 1e-9 then ok := false);
      ignore n;
      !ok)

(* --- Dag ----------------------------------------------------------------- *)

let chain_dag n =
  let d = Dag.create () in
  let vs = Array.init n (fun _ -> Dag.add_vertex d) in
  let es =
    Array.init (n - 1) (fun i -> Dag.add_edge d ~src:vs.(i) ~dst:vs.(i + 1) ~weight:(float_of_int (i + 1)))
  in
  (d, vs, es)

let test_dag_topo () =
  let d, vs, _ = chain_dag 4 in
  let order = Dag.topo_order d in
  let pos = Array.make 4 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  for i = 0 to 2 do
    check_bool "topological" true (pos.(vs.(i)) < pos.(vs.(i + 1)))
  done

let test_dag_cycle () =
  let d = Dag.create () in
  let a = Dag.add_vertex d and b = Dag.add_vertex d in
  let _ = Dag.add_edge d ~src:a ~dst:b ~weight:1.0 in
  let _ = Dag.add_edge d ~src:b ~dst:a ~weight:1.0 in
  check_bool "cycle detected" true
    (match Dag.topo_order d with exception Dag.Cycle _ -> true | _ -> false)

let test_dag_longest () =
  let d, vs, _ = chain_dag 4 in
  let dist = Dag.longest_from d ~sources:[ (vs.(0), 0.0) ] in
  check_float "1+2+3" 6.0 dist.(vs.(3));
  let dist = Dag.longest_from d ~sources:[ (vs.(0), 10.0) ] in
  check_float "offset carried" 16.0 dist.(vs.(3));
  let back = Dag.longest_to d ~sinks:[ (vs.(3), 0.0) ] in
  check_float "backward" 6.0 back.(vs.(0));
  let unreachable = (Dag.longest_from d ~sources:[ (vs.(3), 0.0) ]).(vs.(0)) in
  check_bool "unreachable is -inf" true (unreachable = neg_infinity)

let test_dag_longest_diamond () =
  let d = Dag.create () in
  let v = Array.init 4 (fun _ -> Dag.add_vertex d) in
  let _ = Dag.add_edge d ~src:v.(0) ~dst:v.(1) ~weight:1.0 in
  let _ = Dag.add_edge d ~src:v.(0) ~dst:v.(2) ~weight:5.0 in
  let _ = Dag.add_edge d ~src:v.(1) ~dst:v.(3) ~weight:1.0 in
  let e = Dag.add_edge d ~src:v.(2) ~dst:v.(3) ~weight:1.0 in
  (match Dag.longest_path d ~sources:[ (v.(0), 0.0) ] ~sinks:[ v.(3) ] with
  | Some (len, path) ->
    check_float "longest goes the heavy way" 6.0 len;
    Alcotest.(check (list int)) "path" [ v.(0); v.(2); v.(3) ] path
  | None -> Alcotest.fail "expected a path");
  (* Mutate the weight: longest path flips. *)
  Dag.set_weight d e 0.0;
  Dag.set_weight d e 0.0;
  let dist = Dag.longest_from d ~sources:[ (v.(0), 0.0) ] in
  check_float "after set_weight" 5.0 dist.(v.(3))

let test_dag_reachability () =
  let d, vs, _ = chain_dag 4 in
  let extra = Dag.add_vertex d in
  let fwd = Dag.reachable_from d [ vs.(1) ] in
  check_bool "downstream" true fwd.(vs.(3));
  check_bool "not upstream" false fwd.(vs.(0));
  check_bool "island" false fwd.(extra);
  let bwd = Dag.coreachable_to d [ vs.(2) ] in
  check_bool "upstream co" true bwd.(vs.(0));
  check_bool "not downstream co" false bwd.(vs.(3))

let suite =
  [ Alcotest.test_case "dsu basics" `Quick test_dsu;
    QCheck_alcotest.to_alcotest prop_dsu_vs_naive;
    Alcotest.test_case "heap order" `Quick test_heap_order;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    Alcotest.test_case "ugraph basics" `Quick test_ugraph_basics;
    Alcotest.test_case "ugraph connectivity" `Quick test_ugraph_connectivity;
    Alcotest.test_case "ugraph parallel edges" `Quick test_ugraph_parallel_edges;
    Alcotest.test_case "ugraph other endpoint" `Quick test_ugraph_other_endpoint;
    QCheck_alcotest.to_alcotest prop_bridges_vs_naive;
    Alcotest.test_case "bridges on path and cycle" `Quick test_bridges_path_and_cycle;
    Alcotest.test_case "bridges with parallel edges" `Quick test_bridges_parallel;
    Alcotest.test_case "dijkstra distances" `Quick test_dijkstra_distances;
    Alcotest.test_case "dijkstra exclude edge" `Quick test_dijkstra_exclude;
    Alcotest.test_case "tentative tree union" `Quick test_tentative_tree_union;
    QCheck_alcotest.to_alcotest prop_dijkstra_triangle;
    Alcotest.test_case "dag topo order" `Quick test_dag_topo;
    Alcotest.test_case "dag cycle detection" `Quick test_dag_cycle;
    Alcotest.test_case "dag longest path (chain)" `Quick test_dag_longest;
    Alcotest.test_case "dag longest path (diamond)" `Quick test_dag_longest_diamond;
    Alcotest.test_case "dag reachability" `Quick test_dag_reachability ]

let () = Alcotest.run "graph" [ ("graph", suite) ]
