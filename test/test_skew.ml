(* Tests for the clock-skew measurement and the Sec. 4.2 width-vs-skew
   trade (ablation A7's machinery). *)

let check_bool = Alcotest.(check bool)

let routed_mini () =
  let case = Suite.mini () in
  let outcome = Flow.run case.Suite.input in
  (case.Suite.input.Flow.netlist, outcome)

let test_widest_net_is_clock () =
  let netlist, _ = routed_mini () in
  match Skew.widest_net netlist with
  | None -> Alcotest.fail "expected a widest net"
  | Some net ->
    Alcotest.(check int) "the clock has pitch 2" 2 (Netlist.net netlist net).Netlist.pitch;
    Alcotest.(check string) "named clk" "clk" (Netlist.net netlist net).Netlist.net_name

let test_skew_nonnegative_and_zero_for_two_terminal () =
  let netlist, outcome = routed_mini () in
  let router = outcome.Flow.o_router in
  for net = 0 to Netlist.n_nets netlist - 1 do
    let skew = Skew.router_net_skew_ps router net in
    check_bool (Printf.sprintf "net %d skew >= 0" net) true (skew >= 0.0);
    if Netlist.fanout netlist net = 1 then
      Alcotest.(check (float 1e-9)) (Printf.sprintf "net %d single-sink skew" net) 0.0 skew
  done

let test_width_reduces_skew () =
  (* The fringe-capacitance model makes wire RC fall with width, so the
     same routed clock tree has monotonically smaller Elmore skew at
     larger effective widths (Sec. 4.2's claim). *)
  let netlist, outcome = routed_mini () in
  let router = outcome.Flow.o_router in
  match Skew.widest_net netlist with
  | None -> Alcotest.fail "no clock"
  | Some clk ->
    let fp = outcome.Flow.o_floorplan in
    let rg = Router.routing_graph router clk in
    let tree = Router.tree_edges router clk in
    let skew_at scale =
      let r =
        Elmore.analyze ~width_scale:scale ~dims:(Floorplan.dims fp) ~netlist ~rg ~tree ()
      in
      match List.map snd r.Elmore.delay_ps with
      | [] | [ _ ] -> 0.0
      | vs -> List.fold_left max neg_infinity vs -. List.fold_left min infinity vs
    in
    let s1 = skew_at 0.5 (* effective 1-pitch *) in
    let s2 = skew_at 1.0 in
    let s4 = skew_at 2.0 in
    check_bool "2-pitch skew below 1-pitch" true (s2 < s1);
    check_bool "4-pitch skew below 2-pitch" true (s4 < s2)

let test_cap_model_monotone () =
  let d = Dims.default in
  check_bool "cap grows with width" true
    (Dims.cap_per_um_at d ~width:2.0 > Dims.cap_per_um_at d ~width:1.0);
  check_bool "cap grows sublinearly (fringe)" true
    (Dims.cap_per_um_at d ~width:2.0 < 2.0 *. Dims.cap_per_um_at d ~width:1.0);
  check_bool "resistance falls with width" true
    (Dims.res_kohm_per_um_at d ~width:2.0 < Dims.res_kohm_per_um_at d ~width:1.0);
  Alcotest.(check (float 1e-12))
    "width 1 matches the headline figure" d.Dims.cap_per_um
    (Dims.cap_per_um_at d ~width:1.0);
  (* RC product per um falls with width thanks to the fringe term. *)
  let rc w = Dims.cap_per_um_at d ~width:w *. Dims.res_kohm_per_um_at d ~width:w in
  check_bool "RC falls with width" true (rc 2.0 < rc 1.0)

let suite =
  [ Alcotest.test_case "widest net is the clock" `Quick test_widest_net_is_clock;
    Alcotest.test_case "skew bounds" `Quick test_skew_nonnegative_and_zero_for_two_terminal;
    Alcotest.test_case "width reduces clock skew" `Quick test_width_reduces_skew;
    Alcotest.test_case "capacitance model monotone" `Quick test_cap_model_monotone ]

let () = Alcotest.run "skew" [ ("skew", suite) ]
