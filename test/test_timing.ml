(* Tests for bgr_timing: Delay_graph (Eq. 1), Path_constraint, Sta. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))

let pin = Util.pin

(* IN -> INV1(i) -> OR3(o, all three inputs) -> OUT, as in Fig. 1's
   style: one net with fanout 3 whose stage delay we can compute by
   hand. *)
let fanout_circuit () =
  let b = Netlist.builder ~library:Cell_lib.ecl_default in
  let a = Netlist.add_port b ~name:"A" ~side:Netlist.South () in
  let y = Netlist.add_port b ~name:"Y" ~side:Netlist.North () in
  let inv = Netlist.add_instance b ~name:"i" ~cell:"INV1" in
  let or3 = Netlist.add_instance b ~name:"o" ~cell:"OR3" in
  let n0 = Netlist.add_net b ~name:"n0" ~driver:(Netlist.Port a) ~sinks:[ pin inv "A" ] () in
  let n1 =
    Netlist.add_net b ~name:"n1" ~driver:(pin inv "Z")
      ~sinks:[ pin or3 "A"; pin or3 "B"; pin or3 "C" ]
      ()
  in
  let n2 = Netlist.add_net b ~name:"n2" ~driver:(pin or3 "Z") ~sinks:[ Netlist.Port y ] () in
  (Netlist.freeze b, inv, or3, n0, n1, n2)

let lib_values () =
  let lib = Cell_lib.ecl_default in
  let inv = Cell_lib.find lib "INV1" and or3 = Cell_lib.find lib "OR3" in
  let z = Cell.terminal inv "Z" in
  let fanin t = (Cell.terminal or3 t).Cell.fanin_ff in
  (z.Cell.tf_ps_per_ff, z.Cell.td_ps_per_ff, fanin "A" +. fanin "B" +. fanin "C")

let test_eq1_stage_delay () =
  let netlist, _, or3, _, n1, _ = fanout_circuit () in
  let dg = Delay_graph.build netlist in
  let tf, td, fanin_sum = lib_values () in
  let cl = 37.5 in
  Delay_graph.set_net_cap dg ~net:n1 ~cap_ff:cl;
  check_float "net cap stored" cl (Delay_graph.net_cap dg n1);
  check_float "driver td" td (Delay_graph.driver_td dg n1);
  let dag = Delay_graph.dag dg in
  let arcs = Cell.arcs_to (Netlist.instance netlist or3).Netlist.master ~output:"Z" in
  let expected =
    List.map (fun (a : Cell.arc) -> a.Cell.intrinsic_ps +. (fanin_sum *. tf) +. (cl *. td)) arcs
    |> List.sort Float.compare
  in
  let weights =
    List.map (fun e -> Dag.weight dag e) (Delay_graph.edges_of_net dg n1) |> List.sort Float.compare
  in
  check_int "one edge per arc" (List.length expected) (List.length weights);
  List.iter2 (fun e w -> check_float "Eq. 1 weight" e w) expected weights

let test_set_net_cap_updates_all_edges () =
  let netlist, _, _, _, n1, _ = fanout_circuit () in
  let dg = Delay_graph.build netlist in
  let dag = Delay_graph.dag dg in
  let before = List.map (Dag.weight dag) (Delay_graph.edges_of_net dg n1) in
  Delay_graph.set_net_cap dg ~net:n1 ~cap_ff:100.0;
  let after = List.map (Dag.weight dag) (Delay_graph.edges_of_net dg n1) in
  let td = Delay_graph.driver_td dg n1 in
  List.iter2 (fun b a -> check_float "each edge gained 100*td" (b +. (100.0 *. td)) a) before after;
  (* Setting back to zero restores. *)
  Delay_graph.set_net_cap dg ~net:n1 ~cap_ff:0.0;
  let restored = List.map (Dag.weight dag) (Delay_graph.edges_of_net dg n1) in
  List.iter2 (fun b r -> check_float "restored" b r) before restored

let test_nodes_and_sources () =
  let netlist, inv, _, _, _, _ = fanout_circuit () in
  let dg = Delay_graph.build netlist in
  check_bool "inv output has a vertex" true
    (match Delay_graph.vertex dg (Delay_graph.Out { Netlist.inst = inv; term = "Z" }) with
    | (_ : int) -> true
    | exception Not_found -> false);
  check_int "one natural source (port A)" 1 (List.length (Delay_graph.natural_sources dg));
  check_int "one natural sink (port Y)" 1 (List.length (Delay_graph.natural_sinks dg))

(* Flip-flop boundaries: paths end at D/CK, restart at Q with the
   clock-to-output intrinsic as launch offset. *)
let ff_circuit () =
  let b = Netlist.builder ~library:Cell_lib.ecl_default in
  let a = Netlist.add_port b ~name:"A" ~side:Netlist.South () in
  let ck = Netlist.add_port b ~name:"CK" ~side:Netlist.South () in
  let y = Netlist.add_port b ~name:"Y" ~side:Netlist.North () in
  let ff = Netlist.add_instance b ~name:"f" ~cell:"DFF" in
  let inv = Netlist.add_instance b ~name:"i" ~cell:"INV1" in
  let _ = Netlist.add_net b ~name:"nd" ~driver:(Netlist.Port a) ~sinks:[ pin ff "D" ] () in
  let _ = Netlist.add_net b ~name:"nc" ~driver:(Netlist.Port ck) ~sinks:[ pin ff "CK" ] () in
  let _ = Netlist.add_net b ~name:"nq" ~driver:(pin ff "Q") ~sinks:[ pin inv "A" ] () in
  let _ = Netlist.add_net b ~name:"ny" ~driver:(pin inv "Z") ~sinks:[ Netlist.Port y ] () in
  (Netlist.freeze b, ff, inv)

let test_ff_boundary () =
  let netlist, ff, _ = ff_circuit () in
  let dg = Delay_graph.build netlist in
  let q = Delay_graph.vertex dg (Delay_graph.Out { Netlist.inst = ff; term = "Q" }) in
  let d = Delay_graph.vertex dg (Delay_graph.Seq_in { Netlist.inst = ff; term = "D" }) in
  let dag = Delay_graph.dag dg in
  (* No edge from D to Q: the flip-flop cuts combinational paths. *)
  let reachable = Dag.reachable_from dag [ d ] in
  check_bool "D does not reach Q" false reachable.(q);
  (* Q is a natural source with the CK->Q intrinsic as launch offset. *)
  check_bool "Q is a source" true (List.mem q (Delay_graph.natural_sources dg));
  let dff = Cell_lib.find Cell_lib.ecl_default "DFF" in
  let t0 =
    match Cell.arcs_to dff ~output:"Q" with [ a ] -> a.Cell.intrinsic_ps | _ -> nan
  in
  check_float "launch offset = clock-to-Q" t0 (Delay_graph.launch_offset dg q)

(* --- Sta ---------------------------------------------------------------- *)

let test_sta_margin_and_critical_path () =
  let netlist, _, _, _, n1, _ = fanout_circuit () in
  let dg = Delay_graph.build netlist in
  let pc = Util.blanket_constraint ~limit_ps:400.0 dg in
  let sta = Sta.create dg [ pc ] in
  let base = Sta.critical_delay sta 0 in
  check_bool "zero-cap delay positive" true (base > 0.0);
  check_float "margin" (400.0 -. base) (Sta.margin sta 0);
  (* Raising CL(n1) increases the delay by exactly td * dCL. *)
  Delay_graph.set_net_cap dg ~net:n1 ~cap_ff:50.0;
  Sta.refresh sta;
  let td = Delay_graph.driver_td dg n1 in
  check_float "delay shifts by cap" (base +. (50.0 *. td)) (Sta.critical_delay sta 0);
  (* Critical path runs port -> inv -> or3 -> port: 4 vertices. *)
  check_int "critical path length" 4 (List.length (Sta.critical_path sta 0));
  (* The nets along the path. *)
  let nets = Sta.critical_nets sta 0 in
  check_int "three stage nets" 3 (List.length nets)

let test_sta_violations_order () =
  let netlist, _, _, _, _, _ = fanout_circuit () in
  let dg = Delay_graph.build netlist in
  let base =
    let sta = Sta.create dg [ Util.blanket_constraint dg ] in
    Sta.critical_delay sta 0
  in
  let tight = Util.blanket_constraint ~limit_ps:(base /. 2.0) dg in
  let loose = Util.blanket_constraint ~limit_ps:(base *. 2.0) dg in
  let sta = Sta.create dg [ loose; tight ] in
  Alcotest.(check (list int)) "only the tight one violated" [ 1 ] (Sta.violations sta);
  (match Sta.worst sta with
  | Some (ci, m) ->
    check_int "worst is the tight one" 1 ci;
    check_bool "negative margin" true (m < 0.0)
  | None -> Alcotest.fail "expected a worst constraint");
  check_float "worst path delay" base (Sta.worst_path_delay sta)

let test_sta_gd_membership () =
  let netlist, ff, inv = ff_circuit () in
  let dg = Delay_graph.build netlist in
  (* Constraint restricted to the Q->Y half of the circuit. *)
  let pc =
    Path_constraint.make ~name:"q2y"
      ~sources:[ Delay_graph.Out { Netlist.inst = ff; term = "Q" } ]
      ~sinks:
        [ (let ports = Netlist.ports netlist in
           let y =
             Array.to_list ports
             |> List.find (fun (p : Netlist.port) -> p.Netlist.port_name = "Y")
           in
           Delay_graph.Port_out y.Netlist.port_id) ]
      ~limit_ps:1000.0
  in
  let sta = Sta.create dg [ pc ] in
  let nq = Option.get (Netlist.net_of_pin netlist { Netlist.inst = inv; term = "A" }) in
  let nd = Option.get (Netlist.net_of_pin netlist { Netlist.inst = ff; term = "D" }) in
  Alcotest.(check (list int)) "net nq under the constraint" [ 0 ] (Sta.constraints_of_net sta nq);
  Alcotest.(check (list int)) "net nd outside G_d(P)" [] (Sta.constraints_of_net sta nd);
  check_bool "gd edges of nq nonempty" true (Sta.gd_edges_of_net sta ~ci:0 ~net:nq <> []);
  check_bool "gd edges of nd empty" true (Sta.gd_edges_of_net sta ~ci:0 ~net:nd = [])

let test_static_net_order () =
  let netlist, ff, inv = ff_circuit () in
  let dg = Delay_graph.build netlist in
  (* Tight constraint on the Q->Y path only: its nets must sort before
     unconstrained nets. *)
  let y =
    Array.to_list (Netlist.ports netlist)
    |> List.find (fun (p : Netlist.port) -> p.Netlist.port_name = "Y")
  in
  let pc =
    Path_constraint.make ~name:"q2y"
      ~sources:[ Delay_graph.Out { Netlist.inst = ff; term = "Q" } ]
      ~sinks:[ Delay_graph.Port_out y.Netlist.port_id ]
      ~limit_ps:200.0
  in
  let order = Sta.static_net_order dg [ pc ] in
  check_int "every net ordered once" (Netlist.n_nets netlist) (List.length order);
  let nq = Option.get (Netlist.net_of_pin netlist { Netlist.inst = inv; term = "A" }) in
  let nd = Option.get (Netlist.net_of_pin netlist { Netlist.inst = ff; term = "D" }) in
  let position n = Option.get (List.find_index (Int.equal n) order) in
  check_bool "constrained net first" true (position nq < position nd);
  (* Slacks restore the capacitances they touched. *)
  check_float "caps untouched" 0.0 (Delay_graph.net_cap dg nq)

let test_unknown_node () =
  let netlist, _, _, _, _, _ = fanout_circuit () in
  let dg = Delay_graph.build netlist in
  let pc =
    Path_constraint.make ~name:"bad"
      ~sources:[ Delay_graph.Port_in 99 ]
      ~sinks:[ Delay_graph.Port_out 99 ]
      ~limit_ps:1.0
  in
  check_bool "unknown node rejected" true
    (match Sta.create dg [ pc ] with
    | exception Sta.Unknown_node _ -> true
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_path_constraint_validation () =
  let expect name f =
    match f () with
    | (_ : Path_constraint.t) -> Alcotest.failf "%s: expected Bad_constraint" name
    | exception Path_constraint.Bad_constraint _ -> ()
  in
  expect "no sources" (fun () ->
      Path_constraint.make ~name:"x" ~sources:[] ~sinks:[ Delay_graph.Port_out 0 ] ~limit_ps:1.0);
  expect "no sinks" (fun () ->
      Path_constraint.make ~name:"x" ~sources:[ Delay_graph.Port_in 0 ] ~sinks:[] ~limit_ps:1.0);
  expect "bad limit" (fun () ->
      Path_constraint.make ~name:"x" ~sources:[ Delay_graph.Port_in 0 ]
        ~sinks:[ Delay_graph.Port_out 0 ] ~limit_ps:0.0)

let test_refresh_for_nets () =
  let netlist, _, _, _, n1, _ = fanout_circuit () in
  let dg = Delay_graph.build netlist in
  let sta = Sta.create dg [ Util.blanket_constraint ~limit_ps:500.0 dg ] in
  let rev0 = Sta.timing_revision sta in
  Sta.refresh_for_nets sta [ n1 ];
  check_bool "revision bumped for an affected net" true (Sta.timing_revision sta > rev0);
  (* A net under no constraint leaves the revision alone. *)
  let rev1 = Sta.timing_revision sta in
  Sta.refresh_for_nets sta [];
  check_int "empty list is a no-op" rev1 (Sta.timing_revision sta)

let test_required_and_slack () =
  let netlist, _, _, _, _, _ = fanout_circuit () in
  let dg = Delay_graph.build netlist in
  let pc = Util.blanket_constraint ~limit_ps:400.0 dg in
  let sta = Sta.create dg [ pc ] in
  let slack = Sta.vertex_slack sta 0 in
  let required = Sta.required sta 0 in
  (* The minimum slack over G_d(P) vertices equals the margin. *)
  let min_slack = ref infinity in
  for v = 0 to Delay_graph.n_vertices dg - 1 do
    if Sta.in_gd sta 0 v && slack.(v) < !min_slack then min_slack := slack.(v)
  done;
  check_float "min slack = margin" (Sta.margin sta 0) !min_slack;
  (* Required time at a sink equals the limit. *)
  List.iter
    (fun sink -> check_float "sink required = limit" 400.0 required.(sink))
    (Delay_graph.natural_sinks dg);
  (* Every vertex on the critical path has the same (minimal) slack. *)
  List.iter
    (fun v -> check_float "critical path slack uniform" (Sta.margin sta 0) slack.(v))
    (Sta.critical_path sta 0)

let test_endpoint_reports () =
  let netlist, _, _, _, _, _ = fanout_circuit () in
  let dg = Delay_graph.build netlist in
  let pc = Util.blanket_constraint ~limit_ps:400.0 dg in
  let sta = Sta.create dg [ pc ] in
  let reports = Sta.endpoint_reports sta 0 in
  check_int "one reachable endpoint" 1 (List.length reports);
  (match reports with
  | [ r ] ->
    check_float "worst slack is the margin" (Sta.margin sta 0) r.Sta.ep_slack_ps;
    check_float "delay matches" (Sta.critical_delay sta 0) r.Sta.ep_delay_ps;
    check_bool "path ends at the endpoint" true
      (match List.rev r.Sta.ep_path with v :: _ -> v = r.Sta.ep_vertex | [] -> false);
    check_bool "path starts at a source" true
      (match r.Sta.ep_path with
      | v :: _ -> List.mem v (Delay_graph.natural_sources dg)
      | [] -> false)
  | _ -> Alcotest.fail "unexpected report shape");
  (* Sorted worst-first on a multi-endpoint circuit. *)
  let netlist2, _ = Circuit_gen.generate Circuit_gen.default_params in
  let dg2 = Delay_graph.build netlist2 in
  let pc2 = Util.blanket_constraint ~limit_ps:2000.0 dg2 in
  let sta2 = Sta.create dg2 [ pc2 ] in
  let reports = Sta.endpoint_reports sta2 0 in
  check_bool "several endpoints" true (List.length reports > 3);
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Sta.ep_slack_ps <= b.Sta.ep_slack_ps && sorted rest
    | _ -> true
  in
  check_bool "worst first" true (sorted reports)

let suite =
  [ Alcotest.test_case "Eq.1 stage delay" `Quick test_eq1_stage_delay;
    Alcotest.test_case "required and slack arrays" `Quick test_required_and_slack;
    Alcotest.test_case "endpoint timing reports" `Quick test_endpoint_reports;
    Alcotest.test_case "set_net_cap updates edges" `Quick test_set_net_cap_updates_all_edges;
    Alcotest.test_case "nodes and sources" `Quick test_nodes_and_sources;
    Alcotest.test_case "flip-flop boundary" `Quick test_ff_boundary;
    Alcotest.test_case "sta margin and critical path" `Quick test_sta_margin_and_critical_path;
    Alcotest.test_case "sta violations and worst" `Quick test_sta_violations_order;
    Alcotest.test_case "G_d membership" `Quick test_sta_gd_membership;
    Alcotest.test_case "static net order" `Quick test_static_net_order;
    Alcotest.test_case "unknown node" `Quick test_unknown_node;
    Alcotest.test_case "path constraint validation" `Quick test_path_constraint_validation;
    Alcotest.test_case "refresh_for_nets" `Quick test_refresh_for_nets ]

let () = Alcotest.run "timing" [ ("timing", suite) ]
