(* Determinism of the parallel engine: routing with [~domains:4] must
   be bit-identical to [~domains:1] — same Table-2 metrics, same
   channel heights, and the same deleted-edge sequence (order-sensitive
   hash) — on every case of the synthetic suite, and repeated parallel
   runs must agree with themselves. *)

let route ?(timing = true) ~domains (case : Suite.case) =
  Flow.run
    ~options:{ Router.default_options with Router.domains }
    ~timing_driven:timing case.Suite.input

(* Exact fingerprint of an outcome: floats rendered as hex (%h) so the
   comparison is bitwise, plus the order-sensitive deletion hash. *)
let fingerprint (outcome : Flow.outcome) =
  let m = outcome.Flow.o_measurement in
  Printf.sprintf "delay=%h area=%h len=%h viol=%d del=%d tracks=[%s] hash=%d"
    m.Flow.m_delay_ps m.Flow.m_area_mm2 m.Flow.m_length_mm m.Flow.m_violations
    m.Flow.m_deletions
    (String.concat ";" (Array.to_list (Array.map string_of_int m.Flow.m_tracks)))
    (Router.deletion_hash outcome.Flow.o_router)

let test_full_suite_constrained () =
  List.iter
    (fun (case : Suite.case) ->
      Alcotest.(check string)
        (case.Suite.case_name ^ " constrained: 1 domain = 4 domains")
        (fingerprint (route ~domains:1 case))
        (fingerprint (route ~domains:4 case)))
    (Suite.all ())

let test_unconstrained () =
  let case = Suite.make_case ~circuit:"C1" ~placement:Placement.P1 in
  Alcotest.(check string) "C1P1 unconstrained: 1 domain = 4 domains"
    (fingerprint (route ~timing:false ~domains:1 case))
    (fingerprint (route ~timing:false ~domains:4 case))

let test_repeated_runs_stable () =
  let case = Suite.make_case ~circuit:"C1" ~placement:Placement.P1 in
  Alcotest.(check string) "C1P1: two 4-domain runs agree"
    (fingerprint (route ~domains:4 case))
    (fingerprint (route ~domains:4 case))

(* The suite-level parallel runner (independent cases routed on
   separate domains) must reproduce the sequential runner's Table-2
   measurements exactly. *)
let test_suite_runner_equivalent () =
  let cases = [ Suite.mini (); Suite.make_case ~circuit:"C1" ~placement:Placement.P1 ] in
  let fp_run (r : Experiments.run) =
    let fp_m (m : Flow.measurement) =
      Printf.sprintf "delay=%h area=%h len=%h viol=%d del=%d" m.Flow.m_delay_ps
        m.Flow.m_area_mm2 m.Flow.m_length_mm m.Flow.m_violations m.Flow.m_deletions
    in
    Printf.sprintf "%s: with=[%s] without=[%s]" r.Experiments.case.Suite.case_name
      (fp_m r.Experiments.constrained)
      (fp_m r.Experiments.unconstrained)
  in
  let seq = List.map fp_run (Experiments.run_suite ~cases ~domains:1 ()) in
  let par = List.map fp_run (Experiments.run_suite ~cases ~domains:4 ()) in
  Alcotest.(check (list string)) "run_suite: 1 domain = 4 domains" seq par

let suite =
  [ Alcotest.test_case "full suite constrained: seq = par" `Slow test_full_suite_constrained;
    Alcotest.test_case "unconstrained: seq = par" `Slow test_unconstrained;
    Alcotest.test_case "repeated parallel runs stable" `Slow test_repeated_runs_stable;
    Alcotest.test_case "parallel suite runner = sequential" `Slow test_suite_runner_equivalent ]

let () = Alcotest.run "parallel" [ ("parallel", suite) ]
