type params = {
  seed : int64;
  n_comb : int;
  n_ff : int;
  n_inputs : int;
  n_outputs : int;
  n_levels : int;
  n_diff_pairs : int;
  clock_pitch : int;
  max_fanout : int;
  n_constraints : int;
  wire_budget : float;
  n_clusters : int;
  locality : float;
}

let default_params =
  { seed = 1L;
    n_comb = 160;
    n_ff = 24;
    n_inputs = 12;
    n_outputs = 12;
    n_levels = 5;
    n_diff_pairs = 3;
    clock_pitch = 2;
    max_fanout = 6;
    n_constraints = 6;
    wire_budget = 0.35;
    n_clusters = 8;
    locality = 0.85 }

type source = {
  s_ep : Netlist.endpoint;
  s_level : int;
  s_cluster : int;
  mutable s_uses : int;
  s_index : int;  (* creation order, for deterministic net emission *)
}

(* Power-of-two-choices pick among sources below a level bound: probe a
   few random candidates and keep the least-used, spreading fanout.
   With probability [locality] only same-cluster sources are eligible —
   the Rent-style modularity that makes circuits placeable. *)
let pick_source rng pool ~below_level ~cluster ~locality =
  let local = Prng.bool rng locality in
  let eligible =
    let in_level s = s.s_level < below_level in
    let primary =
      List.filter (fun s -> in_level s && (not local || s.s_cluster = cluster)) pool
    in
    if primary <> [] then primary else List.filter in_level pool
  in
  match eligible with
  | [] -> invalid_arg "Circuit_gen: no eligible source (empty level 0?)"
  | _ ->
    let arr = Array.of_list eligible in
    let best = ref (Prng.pick_arr rng arr) in
    for _ = 1 to 5 do
      let c = Prng.pick_arr rng arr in
      if c.s_uses < !best.s_uses then best := c
    done;
    !best

let comb_masters = [| "INV1"; "BUF2"; "OR2"; "OR3"; "OR4"; "OR5"; "SEL2"; "XOR2" |]

let generate p =
  if p.n_ff + p.n_inputs = 0 then invalid_arg "Circuit_gen: need flip-flops or inputs";
  let rng = Prng.create ~seed:p.seed in
  let library = Cell_lib.ecl_default in
  let b = Netlist.builder ~library in
  (* Ports. *)
  let clk_port = Netlist.add_port b ~name:"CLK" ~side:Netlist.South () in
  let side i = if i mod 2 = 0 then Netlist.South else Netlist.North in
  let in_ports = List.init p.n_inputs (fun i -> Netlist.add_port b ~name:(Printf.sprintf "IN%d" i) ~side:(side i) ()) in
  let out_ports = List.init p.n_outputs (fun i -> Netlist.add_port b ~name:(Printf.sprintf "OUT%d" i) ~side:(side (i + 1)) ()) in
  (* Instances. *)
  let clkbuf = Netlist.add_instance b ~name:"clkbuf" ~cell:"CLKBUF" in
  let ffs = List.init p.n_ff (fun i -> Netlist.add_instance b ~name:(Printf.sprintf "ff%d" i) ~cell:"DFF") in
  let comb =
    List.init p.n_comb (fun i ->
        let master = comb_masters.(Prng.int rng (Array.length comb_masters)) in
        (Netlist.add_instance b ~name:(Printf.sprintf "g%d" i) ~cell:master, master, 1 + (i mod p.n_levels)))
  in
  (* Source pool and sink accumulation. *)
  let pool = ref [] in
  let n_sources = ref 0 in
  let sinks = Hashtbl.create 256 in
  let n_clusters = max 1 p.n_clusters in
  let add_source ep level cluster =
    incr n_sources;
    pool :=
      { s_ep = ep; s_level = level; s_cluster = cluster; s_uses = 0; s_index = !n_sources }
      :: !pool
  in
  let connect source sink_ep =
    source.s_uses <- source.s_uses + 1;
    let prev = Option.value (Hashtbl.find_opt sinks source.s_index) ~default:[] in
    Hashtbl.replace sinks source.s_index (sink_ep :: prev)
  in
  (* Cluster assignment: contiguous id blocks so clusters are coherent. *)
  let cluster_of_index i total = if total <= 0 then 0 else i * n_clusters / total in
  let ff_cluster = Hashtbl.create 32 and comb_cluster = Hashtbl.create 256 in
  List.iteri (fun i ff -> Hashtbl.replace ff_cluster ff (cluster_of_index i p.n_ff)) ffs;
  List.iteri
    (fun i (inst, _, _) -> Hashtbl.replace comb_cluster inst (cluster_of_index i p.n_comb))
    comb;
  (* Level 0: flip-flop outputs and input ports. *)
  List.iter
    (fun ff ->
      add_source (Netlist.Pin { Netlist.inst = ff; term = "Q" }) 0 (Hashtbl.find ff_cluster ff))
    ffs;
  List.iteri
    (fun i q -> add_source (Netlist.Port q) 0 (cluster_of_index i p.n_inputs))
    in_ports;
  (* Wire combinational levels in order. *)
  let wire_cell (inst, master, level) =
    let cell = Cell_lib.find library master in
    let cluster = Hashtbl.find comb_cluster inst in
    let on_input (term : Cell.terminal) =
      if term.Cell.dir = Cell.Input then begin
        let s = pick_source rng !pool ~below_level:level ~cluster ~locality:p.locality in
        connect s (Netlist.Pin { Netlist.inst; term = term.Cell.t_name })
      end
    in
    Array.iter on_input cell.Cell.terminals;
    let on_output (term : Cell.terminal) =
      if term.Cell.dir = Cell.Output then
        add_source (Netlist.Pin { Netlist.inst; term = term.Cell.t_name }) level cluster
    in
    Array.iter on_output cell.Cell.terminals
  in
  let by_level = List.stable_sort (fun (_, _, l1) (_, _, l2) -> Int.compare l1 l2) comb in
  List.iter wire_cell by_level;
  (* Differential pairs: a DDRV feeding 1-2 OR2 receivers (Sec. 4.1). *)
  let diff_nets = ref [] in
  for d = 0 to p.n_diff_pairs - 1 do
    let drv = Netlist.add_instance b ~name:(Printf.sprintf "ddrv%d" d) ~cell:"DDRV" in
    let cluster = cluster_of_index d (max 1 p.n_diff_pairs) in
    let s = pick_source rng !pool ~below_level:(p.n_levels + 1) ~cluster ~locality:p.locality in
    connect s (Netlist.Pin { Netlist.inst = drv; term = "A" });
    let n_recv = 1 + Prng.int rng 2 in
    let receivers =
      List.init n_recv (fun r ->
          Netlist.add_instance b ~name:(Printf.sprintf "rcv%d_%d" d r) ~cell:"OR2")
    in
    let z_sinks = List.map (fun r -> Netlist.Pin { Netlist.inst = r; term = "A" }) receivers in
    let zn_sinks = List.map (fun r -> Netlist.Pin { Netlist.inst = r; term = "B" }) receivers in
    diff_nets := (drv, z_sinks, zn_sinks) :: !diff_nets;
    List.iter
      (fun r -> add_source (Netlist.Pin { Netlist.inst = r; term = "Z" }) (p.n_levels + 1) cluster)
      receivers
  done;
  (* Flip-flop data inputs and output ports consume deep sources. *)
  List.iter
    (fun ff ->
      let cluster = Hashtbl.find ff_cluster ff in
      let s = pick_source rng !pool ~below_level:(p.n_levels + 2) ~cluster ~locality:p.locality in
      connect s (Netlist.Pin { Netlist.inst = ff; term = "D" }))
    ffs;
  List.iteri
    (fun i q ->
      let cluster = cluster_of_index i p.n_outputs in
      let s = pick_source rng !pool ~below_level:(p.n_levels + 2) ~cluster ~locality:p.locality in
      connect s (Netlist.Port q))
    out_ports;
  (* Emit ordinary nets in source-creation order. *)
  let ordered_sources = List.rev !pool in
  let net_counter = ref 0 in
  List.iter
    (fun s ->
      match Hashtbl.find_opt sinks s.s_index with
      | None -> ()
      | Some sink_list ->
        incr net_counter;
        ignore
          (Netlist.add_net b
             ~name:(Printf.sprintf "n%d" !net_counter)
             ~driver:s.s_ep ~sinks:(List.rev sink_list) ()))
    ordered_sources;
  (* Differential nets (created after the pool nets; ids contiguous). *)
  List.iter
    (fun (drv, z_sinks, zn_sinks) ->
      let z =
        Netlist.add_net b
          ~name:(Printf.sprintf "diff%d_p" drv)
          ~driver:(Netlist.Pin { Netlist.inst = drv; term = "Z" })
          ~sinks:z_sinks ()
      in
      let zn =
        Netlist.add_net b
          ~name:(Printf.sprintf "diff%d_n" drv)
          ~driver:(Netlist.Pin { Netlist.inst = drv; term = "ZN" })
          ~sinks:zn_sinks ()
      in
      Netlist.pair_differential b z zn)
    (List.rev !diff_nets);
  (* Clock tree: CLK port -> clock buffer -> every flip-flop CK, on a
     multi-pitch net (Sec. 4.2). *)
  ignore
    (Netlist.add_net b ~name:"clk_root" ~driver:(Netlist.Port clk_port)
       ~sinks:[ Netlist.Pin { Netlist.inst = clkbuf; term = "A" } ]
       ());
  ignore
    (Netlist.add_net b ~name:"clk" ~pitch:p.clock_pitch
       ~driver:(Netlist.Pin { Netlist.inst = clkbuf; term = "Z" })
       ~sinks:(List.map (fun ff -> Netlist.Pin { Netlist.inst = ff; term = "CK" }) ffs)
       ());
  let netlist = Netlist.freeze b in
  (* Path constraints: sinks split into groups; limits granted a wire
     budget above the zero-wire static critical delay. *)
  let dg = Delay_graph.build netlist in
  let sources = List.map (Delay_graph.node dg) (Delay_graph.natural_sources dg) in
  let sink_nodes = Array.of_list (List.map (Delay_graph.node dg) (Delay_graph.natural_sinks dg)) in
  Prng.shuffle rng sink_nodes;
  let n_groups = max 1 (min p.n_constraints (Array.length sink_nodes)) in
  let groups = Array.make n_groups [] in
  Array.iteri (fun i node -> groups.(i mod n_groups) <- node :: groups.(i mod n_groups)) sink_nodes;
  let probes =
    Array.to_list groups
    |> List.filter (fun g -> g <> [])
    |> List.mapi (fun i g ->
           Path_constraint.make
             ~name:(Printf.sprintf "P%d" i)
             ~sources ~sinks:g ~limit_ps:1.0e9)
  in
  let sta = Sta.create dg probes in
  let constraints =
    List.mapi
      (fun i pc ->
        let static = Sta.critical_delay sta i in
        let limit =
          if static = neg_infinity then 1.0e6
          else static *. (1.0 +. p.wire_budget)
        in
        Path_constraint.make ~name:pc.Path_constraint.cname
          ~sources:pc.Path_constraint.sources ~sinks:pc.Path_constraint.sinks ~limit_ps:limit)
      probes
  in
  (netlist, constraints)
