type style = P1 | P2

let style_name = function P1 -> "P1" | P2 -> "P2"

type result = {
  r_width : int;
  r_n_rows : int;
  r_cells : Floorplan.placed list;
  r_slots : (int * int * int) list;
}

(* Instance adjacency via shared nets, for the BFS ordering. *)
let adjacency netlist =
  let n = Netlist.n_instances netlist in
  let adj = Array.make n [] in
  let on_net (net : Netlist.net) =
    let insts =
      List.filter_map
        (function Netlist.Pin p -> Some p.Netlist.inst | Netlist.Port _ -> None)
        (net.Netlist.driver :: net.Netlist.sinks)
      |> List.sort_uniq Int.compare
    in
    let rec link = function
      | a :: (b :: _ as rest) ->
        adj.(a) <- b :: adj.(a);
        adj.(b) <- a :: adj.(b);
        link rest
      | [] | [ _ ] -> ()
    in
    link insts
  in
  Array.iter on_net (Netlist.nets netlist);
  adj

(* BFS over connectivity, seeded by instance 0 then any unvisited, so
   strongly connected logic ends up contiguous in the linear order. *)
let bfs_order netlist =
  let n = Netlist.n_instances netlist in
  let adj = adjacency netlist in
  let seen = Array.make n false in
  let order = ref [] in
  let queue = Queue.create () in
  let push v =
    if not seen.(v) then begin
      seen.(v) <- true;
      Queue.add v queue
    end
  in
  for seed = 0 to n - 1 do
    push seed;
    while not (Queue.is_empty queue) do
      let v = Queue.take queue in
      order := v :: !order;
      List.iter push (List.sort Int.compare adj.(v))
    done
  done;
  List.rev !order

(* Anchor coordinates of the ports pulling on connected cells: ports
   live on the chip's south (row -1) and north (row n_rows) edges. *)
let port_anchors netlist ~n_rows ~est_width =
  let ports = Netlist.ports netlist in
  let n = Array.length ports in
  Array.mapi
    (fun k (p : Netlist.port) ->
      let x =
        match p.Netlist.column_hint with
        | Some c -> float_of_int c
        | None -> float_of_int (est_width * (k + 1)) /. float_of_int (n + 1)
      in
      let y =
        match p.Netlist.side with
        | Netlist.South -> -1.0
        | Netlist.North -> float_of_int n_rows
      in
      (x, y))
    ports

let place ?(utilization = 0.8) ?(barycenter_passes = 12) ~netlist ~n_rows style =
  if n_rows <= 0 then invalid_arg "Placement.place: n_rows must be positive";
  let placeable =
    bfs_order netlist
    |> List.filter (fun i ->
           (Netlist.instance netlist i).Netlist.master.Cell.kind <> Cell.Feed_through)
  in
  let width_of i = (Netlist.instance netlist i).Netlist.master.Cell.width in
  let total_width = List.fold_left (fun acc i -> acc + width_of i) 0 placeable in
  let per_row = (total_width + n_rows - 1) / n_rows in
  let est_width = max 1 (int_of_float (ceil (float_of_int per_row /. utilization))) in
  (* Initial snake fill of the BFS chain. *)
  let rows = Array.make n_rows [] in
  let row = ref 0 and used = ref 0 in
  List.iter
    (fun i ->
      if !used + width_of i > per_row && !row < n_rows - 1 then begin
        incr row;
        used := 0
      end;
      rows.(!row) <- i :: rows.(!row);
      used := !used + width_of i)
    placeable;
  Array.iteri (fun r l -> rows.(r) <- (if r mod 2 = 0 then List.rev l else l)) rows;
  (* Global barycenter refinement over (row, x): every pass computes
     each cell's desired coordinates as the mean of its connected
     neighbours (including port anchors on the chip edges), then
     re-partitions rows by desired y (capacity-balanced) and re-orders
     columns by desired x. *)
  let n = Netlist.n_instances netlist in
  let adj = adjacency netlist in
  let anchors = port_anchors netlist ~n_rows ~est_width in
  let port_pull = Array.make n [] in
  Array.iter
    (fun (net : Netlist.net) ->
      let ports, pins =
        List.partition_map
          (function
            | Netlist.Port q -> Left q
            | Netlist.Pin p -> Right p.Netlist.inst)
          (net.Netlist.driver :: net.Netlist.sinks)
      in
      List.iter
        (fun inst -> List.iter (fun q -> port_pull.(inst) <- q :: port_pull.(inst)) ports)
        (List.sort_uniq Int.compare pins))
    (Netlist.nets netlist);
  let pos_x = Array.make n 0.0 and pos_y = Array.make n 0.0 in
  let refresh_positions () =
    Array.iteri
      (fun r l ->
        let x = ref 0 in
        List.iter
          (fun i ->
            pos_x.(i) <- float_of_int !x +. (float_of_int (width_of i) /. 2.0);
            pos_y.(i) <- float_of_int r;
            x := !x + width_of i + max 0 ((est_width - per_row) / max 1 (List.length l)))
          l)
      rows
  in
  refresh_positions ();
  for _pass = 1 to barycenter_passes do
    let want_x = Array.make n 0.0 and want_y = Array.make n 0.0 in
    for i = 0 to n - 1 do
      let sx = ref 0.0 and sy = ref 0.0 and k = ref 0 in
      List.iter
        (fun j ->
          sx := !sx +. pos_x.(j);
          sy := !sy +. pos_y.(j);
          incr k)
        adj.(i);
      List.iter
        (fun q ->
          let ax, ay = anchors.(q) in
          sx := !sx +. ax;
          sy := !sy +. ay;
          incr k)
        port_pull.(i);
      if !k = 0 then begin
        want_x.(i) <- pos_x.(i);
        want_y.(i) <- pos_y.(i)
      end
      else begin
        want_x.(i) <- !sx /. float_of_int !k;
        want_y.(i) <- !sy /. float_of_int !k
      end
    done;
    (* Re-partition into rows by desired y, balanced by cell width. *)
    let by_y =
      List.stable_sort
        (fun a b ->
          let c = Float.compare want_y.(a) want_y.(b) in
          if c <> 0 then c else Float.compare want_x.(a) want_x.(b))
        placeable
    in
    Array.fill rows 0 n_rows [];
    let row = ref 0 and used = ref 0 in
    List.iter
      (fun i ->
        if !used + width_of i > per_row && !row < n_rows - 1 then begin
          incr row;
          used := 0
        end;
        rows.(!row) <- i :: rows.(!row);
        used := !used + width_of i)
      by_y;
    Array.iteri
      (fun r l ->
        rows.(r) <- List.stable_sort (fun a b -> Float.compare want_x.(a) want_x.(b)) (List.rev l))
      rows;
    refresh_positions ()
  done;
  (* Physical row layout: logic plus spare (feed) columns. *)
  let row_widths = Array.map (fun l -> List.fold_left (fun acc i -> acc + width_of i) 0 l) rows in
  let max_row_width = Array.fold_left max 1 row_widths in
  let chip_width = max max_row_width (int_of_float (ceil (float_of_int max_row_width /. utilization))) in
  let cells = ref [] and slots = ref [] in
  Array.iteri
    (fun r l ->
      let spare = chip_width - row_widths.(r) in
      let k = List.length l in
      (match style with
      | P2 ->
        (* Cells packed left; all spare columns at the row end. *)
        let x = ref 0 in
        List.iter
          (fun i ->
            cells := { Floorplan.inst = i; row = r; x = !x } :: !cells;
            x := !x + width_of i)
          l;
        for s = 0 to spare - 1 do
          slots := (r, !x + s, 0) :: !slots
        done
      | P1 ->
        (* Spare columns spread over the k+1 gaps between cells. *)
        let gaps = k + 1 in
        let gap_size g = (spare * (g + 1) / gaps) - (spare * g / gaps) in
        let x = ref 0 in
        let emit_gap g =
          for _ = 1 to gap_size g do
            slots := (r, !x, 0) :: !slots;
            incr x
          done
        in
        List.iteri
          (fun g i ->
            emit_gap g;
            cells := { Floorplan.inst = i; row = r; x = !x } :: !cells;
            x := !x + width_of i)
          l;
        emit_gap k))
    rows;
  { r_width = chip_width; r_n_rows = n_rows; r_cells = !cells; r_slots = !slots }

let to_flow_input ~netlist ~dims ~constraints r =
  { Flow.netlist;
    dims;
    n_rows = r.r_n_rows;
    width = r.r_width;
    cells = r.r_cells;
    slots = r.r_slots;
    blockages = [];
    constraints }
