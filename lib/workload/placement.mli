(** Constructive row placement with the paper's P1/P2 feed-cell knob.

    The paper's placements were designer-provided; P1 had feed cells
    inserted "by automatic feed-cell insertion" (evenly spaced), P2 was
    "given by moving the feed cells aside in the cell rows in order to
    test the even spacing effect".  Here the logic placement is a
    deterministic connectivity-driven construction (BFS order, snake
    row fill, barycenter refinement); the style only decides where each
    row's spare columns — the designer feed slots — end up. *)

type style =
  | P1  (** spare columns distributed evenly between cells *)
  | P2  (** cells packed left, all spare columns swept to the row end *)

val style_name : style -> string

type result = {
  r_width : int;
  r_n_rows : int;
  r_cells : Floorplan.placed list;
  r_slots : (int * int * int) list;  (** (row, x, width_flag = 0) *)
}

val place :
  ?utilization:float ->
  ?barycenter_passes:int ->
  netlist:Netlist.t ->
  n_rows:int ->
  style ->
  result
(** [utilization] (default 0.8) is the fraction of row width occupied
    by logic; the rest becomes feed slots. *)

val to_flow_input :
  netlist:Netlist.t ->
  dims:Dims.t ->
  constraints:Path_constraint.t list ->
  result ->
  Flow.input
