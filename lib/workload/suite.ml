type case = {
  case_name : string;
  circuit : string;
  placement : Placement.style;
  input : Flow.input;
}

let circuit_params = function
  | "C1" ->
    { Circuit_gen.default_params with
      Circuit_gen.seed = 101L;
      n_comb = 150;
      n_ff = 22;
      n_inputs = 10;
      n_outputs = 10;
      n_levels = 5;
      n_diff_pairs = 3;
      n_constraints = 6 }
  | "C2" ->
    { Circuit_gen.default_params with
      Circuit_gen.seed = 202L;
      n_comb = 300;
      n_ff = 40;
      n_inputs = 14;
      n_outputs = 14;
      n_levels = 6;
      n_diff_pairs = 5;
      n_constraints = 8 }
  | "C3" ->
    { Circuit_gen.default_params with
      Circuit_gen.seed = 303L;
      n_comb = 520;
      n_ff = 64;
      n_inputs = 18;
      n_outputs = 18;
      n_levels = 7;
      n_diff_pairs = 8;
      n_constraints = 10 }
  | "MINI" ->
    { Circuit_gen.default_params with
      Circuit_gen.seed = 7L;
      n_comb = 40;
      n_ff = 8;
      n_inputs = 6;
      n_outputs = 6;
      n_levels = 3;
      n_diff_pairs = 1;
      n_constraints = 3 }
  | _ -> raise Not_found

let rows_of_circuit = function
  | "C1" -> 8
  | "C2" -> 10
  | "C3" -> 12
  | "MINI" -> 4
  | _ -> raise Not_found

(* Generated circuits are cached: the same netlist value backs both
   placements of a circuit, as in the paper.  The mutex keeps the cache
   sound when cases are built from several domains (the parallel suite
   runner constructs its cases up front, but API users need not). *)
let cache : (string, Netlist.t * Path_constraint.t list) Hashtbl.t = Hashtbl.create 4
let cache_mutex = Mutex.create ()

(* Constraint limits are calibrated against an unconstrained reference
   routing of the P1 layout: 10% headroom over each constraint's
   physical half-perimeter delay bound (see Calibrate). *)
let calibration_headroom = 0.18

let circuit name =
  Mutex.lock cache_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_mutex) (fun () ->
      match Hashtbl.find_opt cache name with
      | Some c -> c
      | None ->
        let netlist, raw_constraints = Circuit_gen.generate (circuit_params name) in
        let placed = Placement.place ~netlist ~n_rows:(rows_of_circuit name) Placement.P1 in
        let input =
          Placement.to_flow_input ~netlist ~dims:Dims.default ~constraints:raw_constraints placed
        in
        let constraints =
          Calibrate.against_reference_route ~input ~headroom:calibration_headroom
        in
        let c = (netlist, constraints) in
        Hashtbl.replace cache name c;
        c)

let make_case ~circuit:name ~placement =
  let netlist, constraints = circuit name in
  let placed = Placement.place ~netlist ~n_rows:(rows_of_circuit name) placement in
  { case_name = name ^ Placement.style_name placement;
    circuit = name;
    placement;
    input = Placement.to_flow_input ~netlist ~dims:Dims.default ~constraints placed }

let all () =
  [ make_case ~circuit:"C1" ~placement:Placement.P1;
    make_case ~circuit:"C1" ~placement:Placement.P2;
    make_case ~circuit:"C2" ~placement:Placement.P1;
    make_case ~circuit:"C2" ~placement:Placement.P2;
    make_case ~circuit:"C3" ~placement:Placement.P1 ]

let mini () =
  let case = make_case ~circuit:"MINI" ~placement:Placement.P1 in
  { case with case_name = "MINI" }
