(** Layout-informed constraint calibration.

    The paper's C3 constraints were "improved according to the layout
    data analysis from the initial constraints provided from logic
    information": purely logic-derived limits can sit below what any
    wiring could achieve.  Calibration tightens each limit to
    [headroom] above the constraint's half-perimeter (lower-bound)
    delay — tight enough that timing-driven routing matters, loose
    enough to be meetable. *)

val against_layout :
  ?channel_tracks:int array ->
  netlist:Netlist.t ->
  constraints:Path_constraint.t list ->
  fp:Floorplan.t ->
  headroom:float ->
  unit ->
  Path_constraint.t list
(** Each limit becomes [hpwl_delay * (1 + headroom)]; constraints with
    no feasible path keep their original limit.  [channel_tracks]
    switches the bound to physical terminal rectangles (channel heights
    included). *)

val against_reference_route : input:Flow.input -> headroom:float -> Path_constraint.t list
(** Calibrate against an unconstrained reference routing of [input]:
    bounds use that run's floorplan and channel heights — the
    "layout data analysis" of the paper's C3 constraints. *)
