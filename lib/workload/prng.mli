(** Deterministic splitmix64 PRNG.

    All workload randomness flows through an explicit seed so every
    generated circuit, placement and experiment is bit-reproducible
    across runs and machines (DESIGN.md Sec. 5, "Determinism"). *)

type t

val create : seed:int64 -> t

val next64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  @raise Invalid_argument
    when [bound <= 0]. *)

val float : t -> float -> float
(** Uniform in [0, bound). *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val pick : t -> 'a list -> 'a
(** Uniform element.  @raise Invalid_argument on []. *)

val pick_arr : t -> 'a array -> 'a

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates. *)
