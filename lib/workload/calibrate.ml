let against_layout ?channel_tracks ~netlist ~constraints ~fp ~headroom () =
  let dg = Delay_graph.build netlist in
  let sta = Sta.create dg constraints in
  let bounds = Lower_bound.per_constraint ?channel_tracks sta fp in
  List.mapi
    (fun i (pc : Path_constraint.t) ->
      if bounds.(i) = neg_infinity then pc
      else
        Path_constraint.make ~name:pc.Path_constraint.cname ~sources:pc.Path_constraint.sources
          ~sinks:pc.Path_constraint.sinks
          ~limit_ps:(bounds.(i) *. (1.0 +. headroom)))
    constraints

let against_reference_route ~input ~headroom =
  let unconstrained = Flow.run ~timing_driven:false input in
  let m = unconstrained.Flow.o_measurement in
  against_layout ~channel_tracks:m.Flow.m_tracks ~netlist:input.Flow.netlist
    ~constraints:input.Flow.constraints ~fp:unconstrained.Flow.o_floorplan ~headroom ()
