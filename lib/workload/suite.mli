(** The benchmark suite mirroring Table 1: three circuits C1..C3 at two
    placements.

    The paper's circuits were proprietary NTT transmission-system chips
    (C1 = the 10-Gbit/s regenerator-section overhead processor) whose
    exact cell/net counts are unreadable in the available transcription;
    the synthetic stand-ins below use fixed seeds and 1994-plausible
    sizes (DESIGN.md Sec. 2).  C1P1/C1P2 and C2P1/C2P2 share circuits
    and differ only in feed-cell spacing; C3 appears at P1 only, as in
    the paper. *)

type case = {
  case_name : string;  (** e.g. "C1P1" *)
  circuit : string;  (** "C1" .. "C3" *)
  placement : Placement.style;
  input : Flow.input;
}

val circuit_params : string -> Circuit_gen.params
(** Generation parameters of "C1", "C2" or "C3".
    @raise Not_found otherwise. *)

val rows_of_circuit : string -> int

val make_case : circuit:string -> placement:Placement.style -> case

val all : unit -> case list
(** C1P1, C1P2, C2P1, C2P2, C3P1 — the Table 1/2/3 rows. *)

val mini : unit -> case
(** A small circuit for tests and the quickstart example. *)
