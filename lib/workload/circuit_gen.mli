(** Synthetic ECL standard-cell circuits standing in for the paper's
    proprietary NTT transmission-system chips C1..C3 (DESIGN.md Sec. 2).

    Circuits are levelized DAGs of combinational gates between flip-flop
    ranks, with a wide multi-pitch clock net, differential-drive pairs
    feeding dedicated receiver gates, and path constraints derived from
    the zero-wire static delays (limit = static delay * (1 + wire
    budget)), which yields tight-but-meetable constraints — the regime
    the paper evaluates. *)

type params = {
  seed : int64;
  n_comb : int;  (** combinational gate count *)
  n_ff : int;
  n_inputs : int;
  n_outputs : int;
  n_levels : int;  (** logic depth between flip-flop ranks *)
  n_diff_pairs : int;
  clock_pitch : int;  (** width of the clock net (Sec. 4.2) *)
  max_fanout : int;
  n_constraints : int;
  wire_budget : float;  (** fraction of static delay granted to wiring *)
  n_clusters : int;  (** locality clusters (Rent-style modularity) *)
  locality : float;  (** probability that a sink picks a same-cluster source *)
}

val default_params : params

val generate : params -> Netlist.t * Path_constraint.t list
(** Deterministic in [params.seed]. *)
