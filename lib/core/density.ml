type channel_state = {
  d_max : int array;  (* d_M chart *)
  d_min : int array;  (* d_m chart *)
  mutable rev : int;
  mutable cache : (int * int * int * int) option;  (* C_M, NC_M, C_m, NC_m *)
}

type t = { channels : channel_state array; width : int }

let create ~n_channels ~width =
  if n_channels <= 0 || width <= 0 then
    Bgr_error.raise_error Bgr_error.Internal
      "Density.create: needs positive dimensions, got %d channels x width %d" n_channels width;
  let mk _ = { d_max = Array.make width 0; d_min = Array.make width 0; rev = 0; cache = None } in
  { channels = Array.init n_channels mk; width }

let width t = t.width
let n_channels t = Array.length t.channels

let channel t c =
  if c < 0 || c >= Array.length t.channels then
    Bgr_error.raise_error Bgr_error.Internal "Density: unknown channel %d (have %d)" c
      (Array.length t.channels);
  t.channels.(c)

let touch ch =
  ch.rev <- ch.rev + 1;
  ch.cache <- None

let bump arr span delta =
  Interval.iter
    (fun x ->
      arr.(x) <- arr.(x) + delta;
      assert (arr.(x) >= 0))
    span

let add_trunk t ~channel:c ~span ~w ~bridge =
  if not (Interval.is_empty span) then begin
    let ch = channel t c in
    bump ch.d_max span w;
    if bridge then bump ch.d_min span w;
    touch ch
  end

let remove_trunk t ~channel:c ~span ~w ~bridge =
  if not (Interval.is_empty span) then begin
    let ch = channel t c in
    bump ch.d_max span (-w);
    if bridge then bump ch.d_min span (-w);
    touch ch
  end

let set_bridge t ~channel:c ~span ~w bridge =
  if not (Interval.is_empty span) then begin
    let ch = channel t c in
    bump ch.d_min span (if bridge then w else -w);
    touch ch
  end

let clear t =
  Array.iter
    (fun ch ->
      Array.fill ch.d_max 0 (Array.length ch.d_max) 0;
      Array.fill ch.d_min 0 (Array.length ch.d_min) 0;
      touch ch)
    t.channels

let max_and_count arr lo hi =
  (* Maximum over columns [lo, hi) and how many columns attain it. *)
  let best = ref 0 and count = ref 0 in
  for x = lo to hi - 1 do
    if arr.(x) > !best then begin
      best := arr.(x);
      count := 1
    end
    else if arr.(x) = !best then incr count
  done;
  (!best, !count)

let aggregates t c =
  let ch = channel t c in
  match ch.cache with
  | Some a -> a
  | None ->
    let c_max, nc_max = max_and_count ch.d_max 0 t.width in
    let c_min, nc_min = max_and_count ch.d_min 0 t.width in
    let a = (c_max, nc_max, c_min, nc_min) in
    ch.cache <- Some a;
    a

let cM t ~channel:c =
  let v, _, _, _ = aggregates t c in
  v

let ncM t ~channel:c =
  let _, v, _, _ = aggregates t c in
  v

let cm t ~channel:c =
  let _, _, v, _ = aggregates t c in
  v

let ncm t ~channel:c =
  let _, _, _, v = aggregates t c in
  v

let revision t ~channel:c = (channel t c).rev

let edge_params t ~channel:c ~span =
  if Interval.is_empty span then (0, 0, 0, 0)
  else begin
    let ch = channel t c in
    let lo = max 0 (Interval.lo span) and hi = min t.width (Interval.hi span) in
    let d_max, nd_max = max_and_count ch.d_max lo hi in
    let d_min, nd_min = max_and_count ch.d_min lo hi in
    (d_max, nd_max, d_min, nd_min)
  end

let dM_at t ~channel:c ~x = (channel t c).d_max.(x)
let dm_at t ~channel:c ~x = (channel t c).d_min.(x)
let tracks_estimate t = Array.init (n_channels t) (fun c -> cM t ~channel:c)

let chart t ~channel:c =
  let ch = channel t c in
  Array.init t.width (fun x -> (ch.d_max.(x), ch.d_min.(x)))
