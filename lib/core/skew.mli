(** Clock-skew measurement over routed trees.

    Sec. 4.2 motivates multi-pitch wires: "Multi-pitch wires are
    required to reduce wire resistance and skews for very large fan-out
    nets like a clock."  Skew here is the spread (max - min) of the
    per-sink Elmore delays through the routed tree — wider wires cut
    the resistive term, pulling the far sinks toward the near ones. *)

val net_skew_ps :
  dims:Dims.t -> netlist:Netlist.t -> rg:Routing_graph.t -> tree:int list -> float
(** [max - min] Elmore sink delay; 0 for single-sink nets. *)

val router_net_skew_ps : Router.t -> int -> float
(** Skew of a net's current tree inside a router. *)

val widest_net : Netlist.t -> int option
(** The net with the largest pitch (ties broken by fanout) — the clock
    in the generated workloads. *)
