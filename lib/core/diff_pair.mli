(** Differential-drive pair recognition (Sec. 4.1).

    "The one-to-one correspondence of edges in each routing graph is
    recognized by searching both graphs from driving terminal vertices.
    The correspondence is established if, and only if, routing graphs
    G_r(n1) and G_r(n2) are homogeneous and the relative positions of
    all adjacent vertices in G_r(n1) are the same as the corresponding
    ones in G_r(n2)."

    The two nets of a pair run at adjacent feedthrough columns and at
    nearby pin columns of the same cells, so corresponding vertices sit
    at identical channels and columns differing by at most a small
    offset ({!column_tolerance}).  Recognition performs a paired BFS
    from the driver terminals, matching incident edges by sorted
    (kind, channel, column) signatures. *)

val column_tolerance : int
(** Maximum per-vertex column offset between the two graphs (4). *)

val recognize : Routing_graph.t -> Routing_graph.t -> int array option
(** [recognize a b] is the live-edge map from [a]'s edge ids to [b]'s
    (entries for dead ids are [-1]), or [None] when the graphs are not
    homologous — the pair then falls back to independent routing. *)

val mirror_problems : Routing_graph.t -> Routing_graph.t -> map:int array -> string list
(** Audit an established recognition: [map] must send every live edge
    of the first graph to a distinct live edge of the second of
    homologous kind (same tag and channel/row), covering all of it.
    Returns the violations as human-readable strings; empty means the
    mirroring invariant holds ({!Verify.audit} uses this on resumed
    state). *)
