(** Elmore RC delays through a routed wiring tree — the "extension to
    the RC delay model" the paper allows (Sec. 2.1, citing
    Prasitjutrakul & Kubitz for RC-aware tentative trees).

    Each tree edge is a distributed RC segment: resistance
    [res_ohm_per_um * geo_um / pitch] (wider wires are proportionally
    less resistive), capacitance [cap_per_um * pitch * geo_um].  Sink
    terminals load the tree with their [F_in]; the driver's [Td] factor
    plays the source-resistance role (it is exactly the ps/fF the
    lumped model charges the total capacitance with, so both models
    coincide as wire resistance goes to zero).

    Bipolar wires are wide and short, so these delays exceed the lumped
    [CL * Td] by only a few percent — which is why the paper could
    adopt the capacitance model, and what ablation A4 verifies. *)

type result = {
  delay_ps : (Netlist.endpoint * float) list;  (** per sink terminal *)
  total_cap_ff : float;  (** tree + sink load capacitance *)
  worst_ps : float;  (** max over sinks; 0 for a sink-free tree *)
}

val driver_td : Netlist.t -> Routing_graph.t -> float
(** The net driver's [Td] factor (ps/fF), used as the source
    resistance. *)

val analyze :
  ?width_scale:float ->
  dims:Dims.t ->
  netlist:Netlist.t ->
  rg:Routing_graph.t ->
  tree:int list ->
  unit ->
  result
(** Elmore delays from the net's driver through the given tree edges.
    Edges must form a connected subgraph containing all terminals (the
    router's tentative tree always does).  [width_scale] (default 1.0)
    is an electrical what-if: the wire behaves as if [scale] times
    wider — capacitance scaled up, resistance scaled down — without
    touching the tree, isolating the Sec. 4.2 width-vs-skew trade.
    @raise Invalid_argument when the tree does not reach every sink. *)
