type report = {
  problems : string list;
  warnings : string list;
  checked_nets : int;
}

let ok r = r.problems = []

let routed router =
  let fp = Router.floorplan router in
  let netlist = Floorplan.netlist fp in
  let assignment = Router.assignment router in
  let n_nets = Netlist.n_nets netlist in
  let problems = ref [] and warnings = ref [] in
  let problem fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  let warn fmt = Format.kasprintf (fun s -> warnings := s :: !warnings) fmt in
  let width = Floorplan.width fp and n_channels = Floorplan.n_channels fp in
  (* Recounted densities, filled as we walk the nets. *)
  let recount = Density.create ~n_channels ~width in
  (* Feedthrough occupancy: slot id -> net. *)
  let slot_claims = Hashtbl.create 64 in
  for net = 0 to n_nets - 1 do
    let rg = Router.routing_graph router net in
    let g = rg.Routing_graph.graph in
    (* Tree structure. *)
    if not (Ugraph.connected_within g rg.Routing_graph.terminals) then
      problem "net %d: terminals disconnected" net;
    if Bridges.non_bridge_ids g <> [] then problem "net %d: not yet a tree" net;
    for v = 0 to Ugraph.n_vertices g - 1 do
      match rg.Routing_graph.vkind.(v) with
      | Routing_graph.Terminal _ -> ()
      | Routing_graph.Position _ ->
        if Ugraph.degree g v = 1 then problem "net %d: dangling stub at vertex %d" net v
    done;
    (* Geometry per live edge. *)
    let bridge = Bridges.bridges g in
    let granted = Feedthrough.slots_of_net assignment net in
    Ugraph.iter_edges g (fun e ->
        match Routing_graph.edge_kind rg e.Ugraph.id with
        | Routing_graph.Trunk { channel; span } ->
          if channel < 0 || channel >= n_channels then
            problem "net %d: trunk in unknown channel %d" net channel
          else begin
            if Interval.lo span < 0 || Interval.hi span > width then
              problem "net %d: trunk outside the chip" net;
            if
              Floorplan.trunk_blocked fp ~channel ~x1:(Interval.lo span)
                ~x2:(Interval.hi span - 1)
            then problem "net %d: trunk crosses a blockage in channel %d" net channel;
            Density.add_trunk recount ~channel ~span ~w:rg.Routing_graph.pitch
              ~bridge:bridge.(e.Ugraph.id)
          end
        | Routing_graph.Branch { row; x } -> begin
          match
            List.find_opt
              (fun (r, slots) ->
                r = row
                && List.exists (fun (s : Floorplan.slot) -> s.Floorplan.slot_x = x) slots)
              granted
          with
          | None -> problem "net %d: branch at row %d x %d without a granted feedthrough" net row x
          | Some (_, slots) ->
            List.iter
              (fun (s : Floorplan.slot) ->
                match Hashtbl.find_opt slot_claims s.Floorplan.slot_id with
                | Some other when other <> net ->
                  problem "feedthrough slot %d claimed by nets %d and %d" s.Floorplan.slot_id other
                    net
                | Some _ | None -> Hashtbl.replace slot_claims s.Floorplan.slot_id net)
              slots
        end
        | Routing_graph.Correspondence p ->
          if p.Routing_graph.channel < 0 || p.Routing_graph.channel >= n_channels then
            problem "net %d: connection in unknown channel %d" net p.Routing_graph.channel);
    (* Capacitance bookkeeping (lumped model only). *)
    (match (Router.options router).Router.cl_estimator with
    | Router.Star_bbox -> ()
    | Router.Tentative_tree ->
      if (Router.options router).Router.delay_model = Router.Lumped_c then begin
        let expected =
          Routing_graph.tree_capacitance rg ~edge_ids:(Router.tree_edges router net)
        in
        let recorded = (Router.wire_caps router).(net) in
        if abs_float (expected -. recorded) > 1e-6 then
          problem "net %d: recorded CL %.3f differs from tree capacitance %.3f" net recorded
            expected
      end);
    (* Differential pair shape. *)
    match (Netlist.net netlist net).Netlist.diff_partner with
    | Some p when p > net ->
      if Router.n_recognized_pairs router = 0 then
        warn "pair %d/%d routed without mirroring" net p
      else begin
        let shape m =
          let rgm = Router.routing_graph router m in
          Router.tree_edges router m
          |> List.filter_map (fun eid ->
                 match Routing_graph.edge_kind rgm eid with
                 | Routing_graph.Trunk { channel; span } ->
                   Some (`T (channel, Interval.length span))
                 | Routing_graph.Branch { row; _ } -> Some (`B row)
                 | Routing_graph.Correspondence _ -> None)
          |> List.sort compare
        in
        if shape net <> shape p then warn "pair %d/%d trees differ in shape" net p
      end
    | Some _ | None -> ()
  done;
  (* Density charts. *)
  let live = Router.density router in
  (try
     for c = 0 to n_channels - 1 do
       for x = 0 to width - 1 do
         if Density.dM_at live ~channel:c ~x <> Density.dM_at recount ~channel:c ~x then
           problem "density d_M mismatch at channel %d column %d" c x;
         if Density.dm_at live ~channel:c ~x <> Density.dm_at recount ~channel:c ~x then
           problem "density d_m mismatch at channel %d column %d" c x
       done
     done
   with e -> problem "density recount failed: %s" (Printexc.to_string e));
  { problems = List.rev !problems; warnings = List.rev !warnings; checked_nets = n_nets }

let pp ppf r =
  if ok r then
    Format.fprintf ppf "verify: OK (%d nets checked, %d warnings)@." r.checked_nets
      (List.length r.warnings)
  else
    Format.fprintf ppf "verify: %d problems over %d nets@." (List.length r.problems)
      r.checked_nets;
  List.iter (fun p -> Format.fprintf ppf "  problem: %s@." p) r.problems;
  List.iter (fun w -> Format.fprintf ppf "  warning: %s@." w) r.warnings
