type report = {
  problems : string list;
  warnings : string list;
  checked_nets : int;
}

let ok r = r.problems = []

let routed router =
  let fp = Router.floorplan router in
  let netlist = Floorplan.netlist fp in
  let assignment = Router.assignment router in
  let n_nets = Netlist.n_nets netlist in
  let problems = ref [] and warnings = ref [] in
  let problem fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  let warn fmt = Format.kasprintf (fun s -> warnings := s :: !warnings) fmt in
  let width = Floorplan.width fp and n_channels = Floorplan.n_channels fp in
  (* Recounted densities, filled as we walk the nets. *)
  let recount = Density.create ~n_channels ~width in
  (* Feedthrough occupancy: slot id -> net. *)
  let slot_claims = Hashtbl.create 64 in
  for net = 0 to n_nets - 1 do
    let rg = Router.routing_graph router net in
    let g = rg.Routing_graph.graph in
    (* Tree structure. *)
    if not (Ugraph.connected_within g rg.Routing_graph.terminals) then
      problem "net %d: terminals disconnected" net;
    if Bridges.non_bridge_ids g <> [] then problem "net %d: not yet a tree" net;
    for v = 0 to Ugraph.n_vertices g - 1 do
      match rg.Routing_graph.vkind.(v) with
      | Routing_graph.Terminal _ -> ()
      | Routing_graph.Position _ ->
        if Ugraph.degree g v = 1 then problem "net %d: dangling stub at vertex %d" net v
    done;
    (* Geometry per live edge. *)
    let bridge = Bridges.bridges g in
    let granted = Feedthrough.slots_of_net assignment net in
    Ugraph.iter_edges g (fun e ->
        match Routing_graph.edge_kind rg e.Ugraph.id with
        | Routing_graph.Trunk { channel; span } ->
          if channel < 0 || channel >= n_channels then
            problem "net %d: trunk in unknown channel %d" net channel
          else begin
            if Interval.lo span < 0 || Interval.hi span > width then
              problem "net %d: trunk outside the chip" net;
            if
              Floorplan.trunk_blocked fp ~channel ~x1:(Interval.lo span)
                ~x2:(Interval.hi span - 1)
            then problem "net %d: trunk crosses a blockage in channel %d" net channel;
            Density.add_trunk recount ~channel ~span ~w:rg.Routing_graph.pitch
              ~bridge:bridge.(e.Ugraph.id)
          end
        | Routing_graph.Branch { row; x } -> begin
          match
            List.find_opt
              (fun (r, slots) ->
                r = row
                && List.exists (fun (s : Floorplan.slot) -> s.Floorplan.slot_x = x) slots)
              granted
          with
          | None -> problem "net %d: branch at row %d x %d without a granted feedthrough" net row x
          | Some (_, slots) ->
            List.iter
              (fun (s : Floorplan.slot) ->
                match Hashtbl.find_opt slot_claims s.Floorplan.slot_id with
                | Some other when other <> net ->
                  problem "feedthrough slot %d claimed by nets %d and %d" s.Floorplan.slot_id other
                    net
                | Some _ | None -> Hashtbl.replace slot_claims s.Floorplan.slot_id net)
              slots
        end
        | Routing_graph.Correspondence p ->
          if p.Routing_graph.channel < 0 || p.Routing_graph.channel >= n_channels then
            problem "net %d: connection in unknown channel %d" net p.Routing_graph.channel);
    (* Capacitance bookkeeping (lumped model only). *)
    (match (Router.options router).Router.cl_estimator with
    | Router.Star_bbox -> ()
    | Router.Tentative_tree ->
      if (Router.options router).Router.delay_model = Router.Lumped_c then begin
        let expected =
          Routing_graph.tree_capacitance rg ~edge_ids:(Router.tree_edges router net)
        in
        let recorded = (Router.wire_caps router).(net) in
        if abs_float (expected -. recorded) > 1e-6 then
          problem "net %d: recorded CL %.3f differs from tree capacitance %.3f" net recorded
            expected
      end);
    (* Differential pair shape. *)
    match (Netlist.net netlist net).Netlist.diff_partner with
    | Some p when p > net ->
      if Router.n_recognized_pairs router = 0 then
        warn "pair %d/%d routed without mirroring" net p
      else begin
        let shape m =
          let rgm = Router.routing_graph router m in
          Router.tree_edges router m
          |> List.filter_map (fun eid ->
                 match Routing_graph.edge_kind rgm eid with
                 | Routing_graph.Trunk { channel; span } ->
                   Some (`T (channel, Interval.length span))
                 | Routing_graph.Branch { row; _ } -> Some (`B row)
                 | Routing_graph.Correspondence _ -> None)
          |> List.sort compare
        in
        if shape net <> shape p then warn "pair %d/%d trees differ in shape" net p
      end
    | Some _ | None -> ()
  done;
  (* Density charts. *)
  let live = Router.density router in
  (try
     for c = 0 to n_channels - 1 do
       for x = 0 to width - 1 do
         if Density.dM_at live ~channel:c ~x <> Density.dM_at recount ~channel:c ~x then
           problem "density d_M mismatch at channel %d column %d" c x;
         if Density.dm_at live ~channel:c ~x <> Density.dm_at recount ~channel:c ~x then
           problem "density d_m mismatch at channel %d column %d" c x
       done
     done
   with e -> problem "density recount failed: %s" (Printexc.to_string e));
  { problems = List.rev !problems; warnings = List.rev !warnings; checked_nets = n_nets }

(* --- state audit (crash-safety invariant sweep) ---------------------- *)

type audit = {
  findings : Bgr_error.t list;
  audited_nets : int;
  repairs : string list;
}

let audit_ok a = a.findings = []

(* The invariant sweep behind resume: unlike {!routed} it accepts any
   consistent routing state (candidate edges may remain mid-run) and
   checks that every piece of *derived* state agrees with the primal
   live graphs it was incrementally maintained from. *)
let rec audit ?(repair = false) ?(measured_caps = false) router =
  let fp = Router.floorplan router in
  let netlist = Floorplan.netlist fp in
  let n_nets = Netlist.n_nets netlist in
  let findings = ref [] in
  let finding fmt =
    Format.kasprintf
      (fun s -> findings := Bgr_error.make ~phase:"audit" Bgr_error.Internal "%s" s :: !findings)
      fmt
  in
  let derived_damage = ref false in
  let broken_pairs = ref [] in
  let width = Floorplan.width fp and n_channels = Floorplan.n_channels fp in
  let opts = Router.options router in
  (* 1. Channel densities: a from-scratch recount over the live graphs
     must equal the incrementally maintained charts, column by column,
     on both the d_M and the (bridge-only) d_m chart. *)
  let recount = Density.create ~n_channels ~width in
  for net = 0 to n_nets - 1 do
    let rg = Router.routing_graph router net in
    let g = rg.Routing_graph.graph in
    let bridge = Bridges.bridges g in
    Ugraph.iter_edges g (fun e ->
        match Routing_graph.edge_kind rg e.Ugraph.id with
        | Routing_graph.Trunk { channel; span } ->
          Density.add_trunk recount ~channel ~span ~w:rg.Routing_graph.pitch
            ~bridge:bridge.(e.Ugraph.id)
        | Routing_graph.Branch _ | Routing_graph.Correspondence _ -> ())
  done;
  let live = Router.density router in
  for c = 0 to n_channels - 1 do
    let bad_max = ref 0 and bad_min = ref 0 in
    for x = 0 to width - 1 do
      if Density.dM_at live ~channel:c ~x <> Density.dM_at recount ~channel:c ~x then
        incr bad_max;
      if Density.dm_at live ~channel:c ~x <> Density.dm_at recount ~channel:c ~x then
        incr bad_min
    done;
    if !bad_max > 0 || !bad_min > 0 then begin
      derived_damage := true;
      finding "channel %d: density charts diverge from a recount (%d d_M and %d d_m columns)" c
        !bad_max !bad_min
    end
  done;
  for net = 0 to n_nets - 1 do
    let rg = Router.routing_graph router net in
    let g = rg.Routing_graph.graph in
    (* 2. Primal connectivity: deletions only ever remove non-bridge
       edges, so every net graph must still span its terminals. *)
    if not (Ugraph.connected_within g rg.Routing_graph.terminals) then
      finding "net %d: terminals disconnected — a bridge edge was deleted" net;
    (* 3. The tentative tree must consist of live edges, and under the
       lumped model the recorded CL(n) must equal its capacitance. *)
    let tree = Router.tree_edges router net in
    let dead = List.filter (fun eid -> not (Ugraph.is_live g eid)) tree in
    if dead <> [] then begin
      derived_damage := true;
      finding "net %d: %d tentative-tree edges are dead" net (List.length dead)
    end
    else if opts.Router.cl_estimator = Router.Tentative_tree && opts.Router.delay_model = Router.Lumped_c
    then begin
      let expected = Routing_graph.tree_capacitance rg ~edge_ids:tree in
      let recorded = (Router.wire_caps router).(net) in
      if abs_float (expected -. recorded) > 1e-6 then begin
        derived_damage := true;
        finding "net %d: recorded CL %.3f fF differs from tree capacitance %.3f fF" net recorded
          expected
      end
    end;
    (* 6. Mirrored pairs: the recognition map must still be a live
       kind-preserving bijection. *)
    match (Netlist.net netlist net).Netlist.diff_partner with
    | Some p when p > net && Router.mirrored router net ->
      let problems =
        Diff_pair.mirror_problems rg
          (Router.routing_graph router p)
          ~map:(Router.partner_map_copy router net)
      in
      if problems <> [] then begin
        broken_pairs := (net, p) :: !broken_pairs;
        List.iter (fun s -> finding "%s" s) problems
      end
    | Some _ | None -> ()
  done;
  (* 4 & 5. Timing: the delay graph's lumped caps must match the
     recorded CL(n), and the cached margins must survive a refresh
     (margins are a pure function of the weights — a divergence means
     a stale incremental update).  The refresh is a healing side
     effect: a clean audit leaves the state exactly as found. *)
  (match Router.sta router with
  | None -> ()
  | Some sta ->
    let dg = Sta.delay_graph sta in
    if opts.Router.delay_model = Router.Lumped_c && not measured_caps then
      for net = 0 to n_nets - 1 do
        let cap = Delay_graph.net_cap dg net in
        let recorded = (Router.wire_caps router).(net) in
        if
          (not (Float.is_nan cap))
          && recorded >= 0.0
          && abs_float (cap -. recorded) > 1e-6
        then begin
          derived_damage := true;
          finding "net %d: delay-graph CL %.3f fF differs from the router's %.3f fF" net cap
            recorded
        end
      done;
    let n_cons = Sta.n_constraints sta in
    let before = Array.init n_cons (fun ci -> Sta.margin sta ci) in
    Sta.refresh sta;
    for ci = 0 to n_cons - 1 do
      let after = Sta.margin sta ci in
      let same =
        before.(ci) = after
        || (Float.is_nan before.(ci) && Float.is_nan after)
        || abs_float (before.(ci) -. after) <= 1e-6
      in
      if not same then begin
        derived_damage := true;
        finding "constraint %d: margin stale (%.3f ps cached, %.3f ps recomputed)" ci before.(ci)
          after
      end
    done);
  let result = { findings = List.rev !findings; audited_nets = n_nets; repairs = [] } in
  if (not repair) || audit_ok result then result
  else begin
    (* Repair what can be rebuilt from the primal graphs, then re-audit
       so the caller sees what remains (primal damage is beyond help). *)
    let repairs = ref [] in
    List.iter
      (fun (n, p) ->
        Router.drop_pair_recognition router n;
        repairs := Printf.sprintf "dropped broken pair recognition of nets %d/%d" n p :: !repairs)
      (List.rev !broken_pairs);
    if !derived_damage then begin
      Router.rebuild_derived router;
      repairs :=
        "rebuilt densities, trees, wire caps and timing from the primal graphs" :: !repairs
    end;
    let again = audit ~repair:false ~measured_caps router in
    { again with repairs = List.rev !repairs }
  end

let pp ppf r =
  if ok r then
    Format.fprintf ppf "verify: OK (%d nets checked, %d warnings)@." r.checked_nets
      (List.length r.warnings)
  else
    Format.fprintf ppf "verify: %d problems over %d nets@." (List.length r.problems)
      r.checked_nets;
  List.iter (fun p -> Format.fprintf ppf "  problem: %s@." p) r.problems;
  List.iter (fun w -> Format.fprintf ppf "  warning: %s@." w) r.warnings

let pp_audit ppf a =
  if audit_ok a then Format.fprintf ppf "audit: OK (%d nets)@." a.audited_nets
  else
    Format.fprintf ppf "audit: %d findings over %d nets@." (List.length a.findings)
      a.audited_nets;
  List.iter (fun f -> Format.fprintf ppf "  finding: %s@." (Bgr_error.to_string f)) a.findings;
  List.iter (fun r -> Format.fprintf ppf "  repaired: %s@." r) a.repairs
