type result = {
  delay_ps : (Netlist.endpoint * float) list;
  total_cap_ff : float;
  worst_ps : float;
}

(* Default loads/drives for chip ports, matching Delay_graph.build. *)
let port_load_ff = 1.5
let port_td = 0.5

let endpoint_load netlist = function
  | Netlist.Pin p ->
    let master = (Netlist.instance netlist p.Netlist.inst).Netlist.master in
    (Cell.terminal master p.Netlist.term).Cell.fanin_ff
  | Netlist.Port _ -> port_load_ff

let driver_td netlist (rg : Routing_graph.t) =
  let net = Netlist.net netlist rg.Routing_graph.net_id in
  match net.Netlist.driver with
  | Netlist.Pin p ->
    let master = (Netlist.instance netlist p.Netlist.inst).Netlist.master in
    (Cell.terminal master p.Netlist.term).Cell.td_ps_per_ff
  | Netlist.Port _ -> port_td

let analyze ?(width_scale = 1.0) ~dims ~netlist ~rg ~tree () =
  if width_scale <= 0.0 then invalid_arg "Elmore.analyze: width_scale must be positive";
  let g = rg.Routing_graph.graph in
  let driver = rg.Routing_graph.driver in
  (* Tree adjacency restricted to the given edges. *)
  let adj = Hashtbl.create 32 in
  let link v entry = Hashtbl.replace adj v (entry :: Option.value (Hashtbl.find_opt adj v) ~default:[]) in
  List.iter
    (fun eid ->
      let e = Ugraph.edge g eid in
      link e.Ugraph.u (eid, e.Ugraph.v);
      link e.Ugraph.v (eid, e.Ugraph.u))
    tree;
  (* Edge electrical values from the effective length (edge weight, jog
     surcharges included): capacitance scales with pitch, resistance
     inversely. *)
  let eff_width = float_of_int rg.Routing_graph.pitch *. width_scale in
  let c_edge eid = (Ugraph.edge g eid).Ugraph.weight *. Dims.cap_per_um_at dims ~width:eff_width in
  let r_edge eid =
    (Ugraph.edge g eid).Ugraph.weight *. Dims.res_kohm_per_um_at dims ~width:eff_width
  in
  let load v =
    if v = driver then 0.0
    else
      match rg.Routing_graph.vkind.(v) with
      | Routing_graph.Terminal ep -> endpoint_load netlist ep
      | Routing_graph.Position _ -> 0.0
  in
  (* BFS order from the driver, recording entering edges. *)
  let n = Ugraph.n_vertices g in
  let parent_edge = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let visited = Array.make n false in
  let order = ref [] in
  let queue = Queue.create () in
  visited.(driver) <- true;
  Queue.add driver queue;
  while not (Queue.is_empty queue) do
    let v = Queue.take queue in
    order := v :: !order;
    List.iter
      (fun (eid, w) ->
        if not visited.(w) then begin
          visited.(w) <- true;
          parent_edge.(w) <- eid;
          parent.(w) <- v;
          Queue.add w queue
        end)
      (Option.value (Hashtbl.find_opt adj v) ~default:[])
  done;
  let reverse_order = !order (* deepest first *) in
  (* Subtree capacitances: wire-only (charged by the driver's Td, as in
     Eq. 1) and full (wire + sink loads, seen by wire resistance). *)
  let c_wire = Array.make n 0.0 and c_full = Array.make n 0.0 in
  List.iter
    (fun v ->
      c_wire.(v) <- 0.0;
      c_full.(v) <- load v;
      List.iter
        (fun (eid, w) ->
          if parent.(w) = v then begin
            c_wire.(v) <- c_wire.(v) +. c_edge eid +. c_wire.(w);
            c_full.(v) <- c_full.(v) +. c_edge eid +. c_full.(w)
          end)
        (Option.value (Hashtbl.find_opt adj v) ~default:[]))
    reverse_order;
  (* Downstream accumulation of Elmore delays. *)
  let delay = Array.make n 0.0 in
  let td = driver_td netlist rg in
  delay.(driver) <- td *. c_wire.(driver);
  List.iter
    (fun v ->
      if v <> driver && parent.(v) >= 0 then begin
        let eid = parent_edge.(v) in
        delay.(v) <- delay.(parent.(v)) +. (r_edge eid *. ((c_edge eid /. 2.0) +. c_full.(v)))
      end)
    (List.rev reverse_order);
  (* Collect sink terminals. *)
  let delays = ref [] and worst = ref 0.0 in
  List.iter
    (fun v ->
      if v <> driver then begin
        match rg.Routing_graph.vkind.(v) with
        | Routing_graph.Terminal ep ->
          if not visited.(v) then
            invalid_arg "Elmore.analyze: tree does not reach every sink";
          delays := (ep, delay.(v)) :: !delays;
          if delay.(v) > !worst then worst := delay.(v)
        | Routing_graph.Position _ -> ()
      end)
    rg.Routing_graph.terminals;
  { delay_ps = List.rev !delays;
    total_cap_ff = c_full.(driver);
    worst_ps = !worst }
