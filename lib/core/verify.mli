(** Independent verification of a routed design — the DRC/LVS analogue
    for the global-routing level.

    Everything here is recomputed from first principles (fresh bridge
    finding, fresh density recount, direct geometry checks) so it can
    catch bookkeeping bugs in the router itself; the test suite runs it
    on every end-to-end result, and `bgr_run verify` exposes it on the
    command line. *)

type report = {
  problems : string list;  (** hard failures: the result is not a legal routing *)
  warnings : string list;  (** suspicious but legal conditions *)
  checked_nets : int;
}

val ok : report -> bool
(** No problems. *)

val routed : Router.t -> report
(** Audit a routed (post-{!Router.run}) state:
    - every net's live graph is a tree spanning its terminals, with no
      dangling non-terminal stubs;
    - every trunk lies inside the chip, in a real channel, and crosses
      no blockage;
    - every branch sits on a feedthrough slot granted to that net, and
      no slot serves two nets;
    - the incremental density charts equal a from-scratch recount;
    - under the lumped delay model, every recorded [CL(n)] equals the
      tree capacitance;
    - recognized differential pairs have shape-identical trees
      (warning when recognition was dropped). *)

val pp : Format.formatter -> report -> unit
