(** Independent verification of a routed design — the DRC/LVS analogue
    for the global-routing level.

    Everything here is recomputed from first principles (fresh bridge
    finding, fresh density recount, direct geometry checks) so it can
    catch bookkeeping bugs in the router itself; the test suite runs it
    on every end-to-end result, and `bgr_run verify` exposes it on the
    command line. *)

type report = {
  problems : string list;  (** hard failures: the result is not a legal routing *)
  warnings : string list;  (** suspicious but legal conditions *)
  checked_nets : int;
}

val ok : report -> bool
(** No problems. *)

val routed : Router.t -> report
(** Audit a routed (post-{!Router.run}) state:
    - every net's live graph is a tree spanning its terminals, with no
      dangling non-terminal stubs;
    - every trunk lies inside the chip, in a real channel, and crosses
      no blockage;
    - every branch sits on a feedthrough slot granted to that net, and
      no slot serves two nets;
    - the incremental density charts equal a from-scratch recount;
    - under the lumped delay model, every recorded [CL(n)] equals the
      tree capacitance;
    - recognized differential pairs have shape-identical trees
      (warning when recognition was dropped). *)

val pp : Format.formatter -> report -> unit

(** {1 State audit}

    {!routed} checks that a {e finished} result is a legal routing;
    {!audit} checks that {e any} routing state — mid-run, restored from
    a snapshot, or replayed from a journal — is internally consistent:
    every piece of derived state must agree with the primal live graphs
    it was incrementally maintained from. *)

type audit = {
  findings : Bgr_error.t list;
      (** one structured error per violated invariant (code [Internal],
          phase ["audit"]) *)
  audited_nets : int;
  repairs : string list;  (** what a [~repair:true] pass rebuilt *)
}

val audit_ok : audit -> bool

val audit : ?repair:bool -> ?measured_caps:bool -> Router.t -> audit
(** Invariants checked:
    - the incremental density charts ([d_M] and [d_m]) equal a
      from-scratch recount over the live graphs;
    - every net graph still spans its terminals (no bridge was ever
      deleted);
    - every tentative-tree edge is live, and (lumped model) the
      recorded [CL(n)] equals the tree capacitance;
    - the delay graph's lumped caps match the recorded [CL(n)], and
      cached constraint margins survive an [Sta.refresh] (margin
      staleness);
    - every recognized differential pair's edge map is a live,
      kind-preserving bijection.

    [measured_caps] (default false) says the state already went through
    {!Flow.finish}, which deliberately replaces the delay graph's caps
    with the {e measured} post-channel-routing capacitances — the
    cap-vs-[CL(n)] comparison is skipped there (margin staleness is
    still enforced).  Pass it when auditing a finished outcome; leave
    it off for mid-run or restored router states.

    The margin check refreshes the STA — a healing side effect; on a
    clean state the audit changes nothing.  With [~repair:true],
    derived-state damage is repaired via {!Router.rebuild_derived} and
    broken recognitions dropped via {!Router.drop_pair_recognition},
    then the audit reruns: the returned [findings] are what {e remains}
    (primal damage cannot be rebuilt), and [repairs] says what was
    done. *)

val pp_audit : Format.formatter -> audit -> unit
