type input = {
  netlist : Netlist.t;
  dims : Dims.t;
  n_rows : int;
  width : int;
  cells : Floorplan.placed list;
  slots : (int * int * int) list;
  blockages : (int * int * int) list;
  constraints : Path_constraint.t list;
}

type measurement = {
  m_delay_ps : float;
  m_area_mm2 : float;
  m_length_mm : float;
  m_cpu_s : float;
  m_violations : int;
  m_margin_ps : float;
  m_lower_bound_ps : float;
  m_chip_width : int;
  m_tracks : int array;
  m_insert_rounds : int;
  m_deletions : int;
  m_recognized_pairs : int;
  m_channel_doglegs : int;
  m_channel_violations : int;
  m_stopped_because : string;  (* Router.stop_reason_string of the run *)
  m_domains : int;
  m_par_warnings : string list;
  m_deletion_hash : int;
}

type outcome = {
  o_router : Router.t;
  o_floorplan : Floorplan.t;
  o_sta : Sta.t option;
  o_channels : Channel_router.result array;
  o_measurement : measurement;
  o_run_report : Router.run_report;
}

let floorplan_of_input input =
  Floorplan.make ~netlist:input.netlist ~dims:input.dims ~n_rows:input.n_rows ~width:input.width
    ~cells:input.cells ~slots:input.slots ~blockages:input.blockages ()

let channel_segments router ~channel =
  let to_seg (cn : Router.chan_net) =
    { Channel_router.seg_net = cn.Router.cn_net;
      seg_lo = cn.Router.cn_lo;
      seg_hi = cn.Router.cn_hi;
      seg_pins =
        List.map
          (fun (p : Router.chan_pin) ->
            { Channel_router.pin_x = p.Router.cp_x; pin_from_top = p.Router.cp_from_top })
          cn.Router.cn_pins;
      seg_width = cn.Router.cn_pitch }
  in
  List.map to_seg (Router.channel_nets router ~channel)

type algorithm = Concurrent_edge_deletion | Sequential_net_at_a_time
type channel_algorithm = Left_edge | Left_edge_biased | Greedy

type prepared = {
  p_input : input;
  p_fp : Floorplan.t;
  p_dg : Delay_graph.t;
  p_sta : Sta.t option;
  p_order : int list;
  p_insert_rounds : int;
  p_t0 : float;
}

(* Everything up to (and including) building the router — shared by
   [run] and the crash-recovery path, which must construct a router
   over the identical floorplan/assignment before restoring state into
   it. *)
let m_density_peak =
  Obs.Metrics.gauge "bgr_channel_density_peak" ~labels:[ "channel" ]
    ~help:"Peak bridge density C_M (tracks) per channel after routing"

let prepare ?(options = Router.default_options) ?(timing_driven = true) input =
  Obs.Trace.span "flow:prepare" @@ fun () ->
  let fp0 = floorplan_of_input input in
  let t0 = Sys.time () in
  let dg = Delay_graph.build input.netlist in
  let have_constraints = input.constraints <> [] in
  let order =
    if timing_driven && have_constraints then Sta.static_net_order dg input.constraints
    else List.init (Netlist.n_nets input.netlist) Fun.id
  in
  let fp, assignment, insert_rounds = Feed_insert.assign_with_insertion fp0 ~order in
  let sta = if have_constraints then Some (Sta.create dg input.constraints) else None in
  let routing_sta = if timing_driven then sta else None in
  let router = Router.create ~options fp assignment routing_sta in
  ( { p_input = input;
      p_fp = fp;
      p_dg = dg;
      p_sta = sta;
      p_order = order;
      p_insert_rounds = insert_rounds;
      p_t0 = t0 },
    router )

(* Channel routing and final metrology over whatever trees the router
   holds.  [on_quality] receives one final post-metrology sample (phase
   "metrology") built against the measured timing state, so the quality
   log's last record matches the signoff margins exactly. *)
let finish ?(channel_algorithm = Left_edge) ?on_quality prep router run_report =
  let input = prep.p_input in
  let fp = prep.p_fp in
  let dg = prep.p_dg in
  let sta = prep.p_sta in
  let insert_rounds = prep.p_insert_rounds in
  let t0 = prep.p_t0 in
  let n_channels = Floorplan.n_channels fp in
  let route_channel =
    match channel_algorithm with
    | Left_edge -> fun segs -> Channel_router.route segs
    | Left_edge_biased -> fun segs -> Channel_router.route ~pin_bias:true segs
    | Greedy -> fun segs -> Greedy_router.route segs
  in
  let channels =
    Obs.Trace.span "flow:channel_route"
      ~attrs:[ ("channels", Obs.Trace.Int n_channels) ]
      (fun () ->
        Array.init n_channels (fun channel -> route_channel (channel_segments router ~channel)))
  in
  (let dens = Router.density router in
   for channel = 0 to n_channels - 1 do
     Obs.Metrics.set m_density_peak
       ~labels:[ ("channel", string_of_int channel) ]
       (float_of_int (Density.cM dens ~channel))
   done);
  let tracks = Array.map (fun (r : Channel_router.result) -> r.Channel_router.tracks) channels in
  let dims = Floorplan.dims fp in
  (* Final net lengths: global trunks and branches plus channel-internal
     vertical jogs. *)
  let n_nets = Netlist.n_nets input.netlist in
  let vertical_by_net = Array.make n_nets 0.0 in
  Array.iter
    (fun (r : Channel_router.result) ->
      List.iter
        (fun (net, um) -> vertical_by_net.(net) <- vertical_by_net.(net) +. um)
        (Channel_router.net_vertical_um ~track_um:dims.Dims.track_um r))
    channels;
  let final_length_um net = Router.net_length_um router net +. vertical_by_net.(net) in
  let total_length_mm =
    let sum = ref 0.0 in
    for net = 0 to n_nets - 1 do
      sum := !sum +. final_length_um net
    done;
    Dims.mm_of_um !sum
  in
  let delay_ps, margin_ps, violations, lower_bound_ps =
    Obs.Trace.span "flow:metrology" @@ fun () ->
    match sta with
    | None -> (nan, infinity, 0, nan)
    | Some sta ->
      for net = 0 to n_nets - 1 do
        let pitch = (Netlist.net input.netlist net).Netlist.pitch in
        let cap = final_length_um net *. Dims.cap_per_um_at dims ~width:(float_of_int pitch) in
        Delay_graph.set_net_cap dg ~net ~cap_ff:cap
      done;
      Sta.refresh sta;
      let delay = Sta.worst_path_delay sta in
      let margin = match Sta.worst sta with Some (_, m) -> m | None -> infinity in
      let violations = List.length (Sta.violations sta) in
      let bound = Lower_bound.critical_delay ~channel_tracks:tracks sta fp in
      (* Restore the measured (post-channel-routing) capacitances that
         Lower_bound reset to the router's estimates. *)
      for net = 0 to n_nets - 1 do
        let pitch = (Netlist.net input.netlist net).Netlist.pitch in
        let cap = final_length_um net *. Dims.cap_per_um_at dims ~width:(float_of_int pitch) in
        Delay_graph.set_net_cap dg ~net ~cap_ff:cap
      done;
      Sta.refresh sta;
      (delay, margin, violations, bound)
  in
  (match on_quality with
  | None -> ()
  | Some emit -> (
    try emit (Router.sample_quality ?sta router ~phase:"metrology")
    with _ -> () (* degrade like the in-router hook: never fail the run *)));
  let cpu_s = Sys.time () -. t0 in
  let measurement =
    { m_delay_ps = delay_ps;
      m_area_mm2 = Floorplan.chip_area_mm2 fp ~channel_tracks:tracks;
      m_length_mm = total_length_mm;
      m_cpu_s = cpu_s;
      m_violations = violations;
      m_margin_ps = margin_ps;
      m_lower_bound_ps = lower_bound_ps;
      m_chip_width = Floorplan.width fp;
      m_tracks = tracks;
      m_insert_rounds = insert_rounds;
      m_deletions = Router.n_deletions router;
      m_recognized_pairs = Router.n_recognized_pairs router;
      m_channel_doglegs =
        Array.fold_left (fun acc (r : Channel_router.result) -> acc + r.Channel_router.doglegs) 0 channels;
      m_channel_violations =
        Array.fold_left
          (fun acc (r : Channel_router.result) -> acc + r.Channel_router.violations)
          0 channels;
      m_stopped_because = Router.stop_reason_string run_report.Router.stopped_because;
      m_domains = Router.n_domains router;
      m_par_warnings = Router.pool_warnings router;
      m_deletion_hash = Router.deletion_hash router }
  in
  { o_router = router;
    o_floorplan = fp;
    o_sta = sta;
    o_channels = channels;
    o_measurement = measurement;
    o_run_report = run_report }

let run ?options ?timing_driven ?(algorithm = Concurrent_edge_deletion)
    ?(channel_algorithm = Left_edge) ?(budget = Budget.unlimited) ?on_quality input =
  let prep, router = prepare ?options ?timing_driven input in
  Router.set_quality_hook router on_quality;
  let run_report =
    Fun.protect
      ~finally:(fun () -> Router.set_quality_hook router None)
      (fun () ->
        match algorithm with
        | Concurrent_edge_deletion -> Router.run ~budget router
        | Sequential_net_at_a_time ->
          Router.route_sequential ~order:prep.p_order router;
          { Router.completed_phases = [ "route_sequential" ];
            stopped_because = Router.Finished;
            rolled_back = false })
  in
  finish ~channel_algorithm ?on_quality prep router run_report
