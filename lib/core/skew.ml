let net_skew_ps ~dims ~netlist ~rg ~tree =
  let r = Elmore.analyze ~dims ~netlist ~rg ~tree () in
  match r.Elmore.delay_ps with
  | [] | [ _ ] -> 0.0
  | delays ->
    let values = List.map snd delays in
    let lo = List.fold_left min infinity values and hi = List.fold_left max neg_infinity values in
    hi -. lo

let router_net_skew_ps router net =
  let fp = Router.floorplan router in
  net_skew_ps ~dims:(Floorplan.dims fp) ~netlist:(Floorplan.netlist fp)
    ~rg:(Router.routing_graph router net) ~tree:(Router.tree_edges router net)

let widest_net netlist =
  let best = ref None in
  Array.iter
    (fun (n : Netlist.net) ->
      let fanout = List.length n.Netlist.sinks in
      match !best with
      | Some (p, f, _) when (p, f) >= (n.Netlist.pitch, fanout) -> ()
      | _ -> best := Some (n.Netlist.pitch, fanout, n.Netlist.net_id))
    (Netlist.nets netlist);
  Option.map (fun (_, _, id) -> id) !best
