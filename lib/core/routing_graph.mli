(** The per-net routing graph [G_r(n)] of Fig. 3.

    Vertices are circuit terminals or physical points; edges are

    - {e correspondence} edges (zero weight) tying a terminal to each of
      its candidate physical positions (two channels for a cell pin,
      several columns for an external terminal);
    - {e trunk} edges: horizontal channel segments between consecutive
      net positions in one channel;
    - {e branch} edges: the assigned feedthrough crossing a cell row.

    The graph is built maximally redundant and handed to the
    edge-deletion router; dangling non-terminal stubs are pruned at
    build time so that, once every remaining edge is a bridge, the
    graph is exactly a Steiner tree over the net's terminals. *)

type position = { channel : int; x : int }

type vertex_kind =
  | Terminal of Netlist.endpoint
  | Position of position

type edge_kind =
  | Trunk of { channel : int; span : Interval.t }
  | Branch of { row : int; x : int }
  | Correspondence of position

type t = {
  net_id : int;
  pitch : int;
  graph : Ugraph.t;
  mutable vkind : vertex_kind array;
  mutable ekind : edge_kind array;
  mutable geo_um : float array;  (** geometric length per edge id *)
  terminals : int list;  (** terminal vertex ids *)
  driver : int;  (** the driving endpoint's terminal vertex *)
  cap_per_um : float;  (** capacitance per um at this net's width *)
}

exception Unroutable of string

val build : ?jog_cost:(int -> float) -> Floorplan.t -> Feedthrough.assignment -> net:int -> t
(** [jog_cost channel] (default 0) is the expected in-channel vertical
    descent, in micrometres, of a connection point entering that
    channel.  It is added to the {e weight} (routing cost / effective
    length) of correspondence edges (one pin) and branch edges (a pin
    in each adjacent channel), so tentative trees price channel entry
    like the post-channel-routing metrology does; the {e geometric}
    length of those edges excludes it.
    @raise Unroutable when the candidate graph cannot connect all
    terminals (a feedthrough assignment bug). *)

val edge_kind : t -> int -> edge_kind

val is_trunk : t -> int -> bool

val density_locus : t -> int -> int * Interval.t
(** [(channel, interval)] used for the density parameters of any edge:
    a trunk's own channel and span; a branch or correspondence edge
    gets a single-column interval at its attachment (a branch uses its
    row's lower channel). *)

val prune_dangling : t -> on_delete:(Ugraph.edge -> unit) -> unit
(** Repeatedly delete the last edge of any degree-<=1 non-terminal
    vertex, invoking the callback on each deletion (for density
    bookkeeping). *)

val tree_capacitance : t -> edge_ids:int list -> float
(** Effective wiring capacitance [CL(n)] (fF) of a set of edges at the
    net's pitch width, computed from edge weights (jog surcharges
    included). *)

val geometric_length_um : t -> edge_ids:int list -> float
(** Physical length of the edges (trunks, row crossings), jog
    surcharges excluded. *)

val tentative_tree :
  ?exclude_edge:int -> ?cost:(Ugraph.edge -> float) -> t -> int list option
(** Shortest-path union from the driving terminal to all terminals
    (Sec. 3.2); [None] when [exclude_edge] would disconnect them.
    [cost] overrides the edge weights (e.g. to price congestion for the
    sequential baseline). *)

val pp : Floorplan.t -> Format.formatter -> t -> unit
(** Render the graph structure (for the Fig. 3 example). *)
