let hpwl_cap ?channel_tracks fp net_id =
  let dims = Floorplan.dims fp in
  let net = Netlist.net (Floorplan.netlist fp) net_id in
  let bbox = Floorplan.net_bbox fp net_id in
  let v_um =
    match channel_tracks with
    | None -> Dims.v_um dims ~rows:(Rect.height bbox)
    | Some channel_tracks ->
      (* Physical vertical extent between the outermost channels the
         net touches, routed channel heights included. *)
      Floorplan.channel_mid_y_um fp ~channel_tracks bbox.Rect.y_hi
      -. Floorplan.channel_mid_y_um fp ~channel_tracks bbox.Rect.y_lo
  in
  let um = Dims.h_um dims (Rect.width bbox) +. v_um in
  um *. Dims.cap_per_um_at dims ~width:(float_of_int net.Netlist.pitch)

let with_hpwl_caps ?channel_tracks sta fp f =
  let dg = Sta.delay_graph sta in
  let n_nets = Netlist.n_nets (Floorplan.netlist fp) in
  (* Save raw weights, not capacitances: some nets may carry per-sink
     Elmore delays whose lumped capacitance is undefined. *)
  let saved = Delay_graph.snapshot_weights dg in
  for net = 0 to n_nets - 1 do
    Delay_graph.set_net_cap dg ~net ~cap_ff:(hpwl_cap ?channel_tracks fp net)
  done;
  Sta.refresh sta;
  let result = f () in
  Delay_graph.restore_weights dg saved;
  Sta.refresh sta;
  result

let critical_delay ?channel_tracks sta fp =
  with_hpwl_caps ?channel_tracks sta fp (fun () -> Sta.worst_path_delay sta)

let per_constraint ?channel_tracks sta fp =
  with_hpwl_caps ?channel_tracks sta fp (fun () ->
      Array.init (Sta.n_constraints sta) (fun ci -> Sta.critical_delay sta ci))

let gap_percent ~delay_ps ~bound_ps =
  if bound_ps <= 0.0 then nan else (delay_ps -. bound_ps) /. bound_ps *. 100.0
