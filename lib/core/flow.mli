(** End-to-end flow: floorplan -> feedthrough assignment (with feed-cell
    insertion) -> global routing -> channel routing -> measurement —
    the whole of Fig. 2 plus the Table 2 metrology.

    [timing_driven = false] reproduces the paper's "without
    constraints" baseline: net ordering falls back to net ids, the
    router sees no STA, and the constraints are used only to {e
    measure} the resulting delays. *)

type input = {
  netlist : Netlist.t;
  dims : Dims.t;
  n_rows : int;
  width : int;
  cells : Floorplan.placed list;
  slots : (int * int * int) list;  (** initial (designer) feed slots *)
  blockages : (int * int * int) list;  (** (channel, x_lo, x_hi) closed ranges *)
  constraints : Path_constraint.t list;
}

type measurement = {
  m_delay_ps : float;  (** worst critical-path delay after channel routing; [nan] with no constraints *)
  m_area_mm2 : float;
  m_length_mm : float;  (** total wiring (horizontal + vertical) *)
  m_cpu_s : float;  (** assignment + routing + channel routing CPU time *)
  m_violations : int;  (** constraints still violated at the end *)
  m_margin_ps : float;  (** worst final margin; [infinity] with no constraints *)
  m_lower_bound_ps : float;  (** HPWL delay lower bound; [nan] with no constraints *)
  m_chip_width : int;  (** pitches, after feed-cell insertion *)
  m_tracks : int array;  (** channel heights *)
  m_insert_rounds : int;
  m_deletions : int;
  m_recognized_pairs : int;
  m_channel_doglegs : int;
  m_channel_violations : int;
  m_stopped_because : string;
      (** {!Router.stop_reason_string} of the run — ["finished"] unless
          a budget or an injected fault cut the router short *)
  m_domains : int;  (** effective scoring-domain count ([1] = sequential) *)
  m_par_warnings : string list;
      (** pool degradation warnings (worker deaths, spawn failures) *)
  m_deletion_hash : int;
      (** {!Router.deletion_hash} of the final state — the determinism
          fingerprint the crash-recovery CI compares *)
}

type outcome = {
  o_router : Router.t;
  o_floorplan : Floorplan.t;
  o_sta : Sta.t option;
  o_channels : Channel_router.result array;
  o_measurement : measurement;
  o_run_report : Router.run_report;
}

type algorithm =
  | Concurrent_edge_deletion  (** the paper's scheme (Fig. 2) *)
  | Sequential_net_at_a_time
      (** baseline: congestion-priced Dijkstra per net in static-slack
          order, no improvement phases — the router class the paper's
          related work routes with *)

type channel_algorithm =
  | Left_edge  (** constrained left-edge with doglegs (default) *)
  | Left_edge_biased  (** left-edge with pin-side track bias (extension) *)
  | Greedy  (** Rivest-Fiduccia-style column scan *)

val run :
  ?options:Router.options ->
  ?timing_driven:bool ->
  ?algorithm:algorithm ->
  ?channel_algorithm:channel_algorithm ->
  ?budget:Budget.t ->
  ?on_quality:(Router.quality_sample -> unit) ->
  input ->
  outcome
(** [timing_driven] defaults to [true], [algorithm] to
    [Concurrent_edge_deletion], [channel_algorithm] to [Left_edge].
    [budget] (default unlimited) caps the global-routing improvement
    phases; whatever happens, channel routing and metrology always run
    on a complete set of net trees (see {!Router.run}).  [on_quality]
    is installed as the router's quality hook for the duration of the
    run and additionally receives one final post-metrology sample
    (phase ["metrology"], measured capacitances) — recording never
    changes the routing result (see {!Router.set_quality_hook}). *)

val floorplan_of_input : input -> Floorplan.t
(** The pre-insertion floorplan (for inspection and examples). *)

(** {1 Split entry points}

    {!run} = {!prepare} + [Router.run] + {!finish}.  The split exists
    for the crash-recovery path ([lib/persist]): a resume must build
    the router over the identical floorplan and feedthrough assignment
    ({!prepare} is deterministic), restore the journaled state into it,
    continue the run, and only then do channel routing and metrology. *)

type prepared
(** Everything {!prepare} computed besides the router: the
    post-insertion floorplan, the delay graph and measurement STA, the
    net order and the CPU-clock origin. *)

val prepare :
  ?options:Router.options -> ?timing_driven:bool -> input -> prepared * Router.t
(** Floorplan, delay graph, net ordering, feed insertion, STA and
    router construction — everything before the first deletion. *)

val finish :
  ?channel_algorithm:channel_algorithm ->
  ?on_quality:(Router.quality_sample -> unit) ->
  prepared ->
  Router.t ->
  Router.run_report ->
  outcome
(** Channel routing and final metrology over the router's current
    trees.  [on_quality] receives the final post-metrology quality
    sample (phase ["metrology"]); a raising callback is swallowed. *)
