(** The edge-deletion global router (Fig. 2) with the selection
    heuristics of Sec. 3.4 and the improvement phases of Sec. 3.5.

    Lifecycle:
    {ol
    {- {!create} builds every net's routing graph over an already
       feedthrough-assigned floorplan, registers channel densities and
       seeds the timing state;}
    {- {!initial_route} repeatedly selects one non-bridge edge across
       {e all} nets and deletes it ("the interconnection wiring of all
       nets is determined concurrently") until every net graph is a
       tree;}
    {- {!recover_violations}, {!improve_delay} and {!improve_area}
       rip up and reroute nets one by one;}
    {- {!run} chains all of the above.}}

    Pass [sta = None] (or a constraint-free STA) for the paper's
    "without constraints" baseline: all delay criteria tie and the
    selection degenerates to the pure density heuristics. *)

type cl_estimator =
  | Tentative_tree  (** Dijkstra shortest-path union (Sec. 3.2) *)
  | Star_bbox  (** half-perimeter estimate — ablation A3 *)

type delay_model =
  | Lumped_c  (** the paper's capacitance model, Eq. 1 *)
  | Elmore_rc
      (** per-sink Elmore RC delays through the tentative tree — the
          Sec. 2.1 extension; the selection heuristics still use the
          capacitive first-order term for [LM(e,P)], exactly as the
          paper notes ("the routing flow and the heuristic criteria ...
          are not influenced by this delay model change") *)

type options = {
  cl_estimator : cl_estimator;
  delay_model : delay_model;
  area_first_ordering : bool;
      (** use the area-improvement criterion ordering ([C_d] first,
          then density, [Gl]/[LD] last) from the start — ablation A1 *)
  max_recover_passes : int;
  max_delay_passes : int;
  max_area_passes : int;
  trace : (string -> unit) option;
      (** Deprecated: the untyped pre-[Obs] trace hook.  Still honoured
          (every message reaches the callback unchanged), and each
          message is also forwarded into {!Obs.Trace} as a
          ["router.log"] instant event when observability is enabled.
          New code should enable [Obs] and read the span stream
          instead; this field will eventually be removed. *)
  domains : int;
      (** domain count of the parallel scoring engine: [0] (the
          default) resolves to the [BGR_DOMAINS] environment variable
          or the available cores; [1] forces the strictly sequential
          engine; [n > 1] scores candidate edges on [n] domains.  The
          routing result is bit-identical for every value: candidates
          are {e scored} in parallel (each deletable edge's [C_d],
          [Gl], [LD], tentative-tree [CL] and density parameters are
          pure functions of the routing state, cached per edge) while
          the winning deletion is selected and {e applied}
          sequentially. *)
}

val default_options : options

type t

type phase_report = {
  reroutes : int;  (** nets ripped up and rerouted *)
  passes : int;
}

val create :
  ?options:options ->
  Floorplan.t ->
  Feedthrough.assignment ->
  Sta.t option ->
  t

val floorplan : t -> Floorplan.t
val assignment : t -> Feedthrough.assignment
val sta : t -> Sta.t option
val density : t -> Density.t
val options : t -> options

val n_deletions : t -> int
(** Edge deletions performed so far (including pruned stubs). *)

val deletion_hash : t -> int
(** Order-sensitive hash of the whole [(net, edge)] deletion sequence,
    cascaded prunes included — the fingerprint the determinism tests
    compare across domain counts: equal hashes mean the parallel and
    sequential engines deleted exactly the same edges in exactly the
    same order. *)

val n_domains : t -> int
(** Domains the scoring engine actually runs on ([1] = sequential). *)

val pool_warnings : t -> string list
(** Degradation warnings recorded by the scoring pool (worker deaths,
    spawn failures); empty for the sequential engine. *)

val n_recognized_pairs : t -> int
(** Differential pairs routed with mirrored deletions. *)

val initial_route : t -> unit

val route_sequential : ?congestion_weight:float -> ?order:int list -> t -> unit
(** Baseline: route nets one at a time, as the sequential timing-driven
    routers the paper compares its concurrent scheme against ([6][7][8]
    in its references).  Each net in [order] (default: the netlist
    order) picks its tree by a congestion-priced Dijkstra — a trunk's
    cost grows by [congestion_weight] (default 0.5) track-heights per
    unit of current channel density over its span — and then every
    other candidate edge of that net is deleted before the next net is
    considered.  Unlike {!initial_route}, the result depends on the net
    ordering; recognized differential pairs still mirror. *)

val recover_violations : ?guard:(unit -> unit) -> ?max_passes:int -> t -> phase_report
val improve_delay : ?guard:(unit -> unit) -> ?max_passes:int -> t -> phase_report
val improve_area : ?guard:(unit -> unit) -> ?max_passes:int -> t -> phase_report
(** The improvement phases.  [guard] is called before every pass (it
    may raise to abandon the phase); [max_passes] caps the pass count
    below the configured maximum. *)

type stop_reason =
  | Finished
  | Deadline of { phase : string }  (** budget ran out while this phase was due *)
  | Fault_stop of { phase : string; error : Bgr_error.t }
      (** an injected fault (site ["router.improve"]) fired *)

type run_report = {
  completed_phases : string list;  (** in execution order *)
  stopped_because : stop_reason;
  rolled_back : bool;
      (** a mid-phase stop discarded partial reroutes and restored the
          last checkpoint *)
}

val stop_reason_string : stop_reason -> string

(** {1 Checkpoints and crash safety}

    The hooks below are the router side of the write-ahead persistence
    subsystem ([lib/persist]): the commit hook observes every primary
    deletion {e before} it is applied, and the checkpoint hook fires at
    each phase boundary with the consistent state to snapshot. *)

type checkpoint
(** Consistent routing state: each net's live candidate-edge set plus
    the deletion counters.  Edge ids are stable across router rebuilds
    because routing graphs are constructed deterministically. *)

val checkpoint : t -> checkpoint

val checkpoint_make : deletions:int -> del_hash:int -> live:int list array -> checkpoint
(** Reassemble a checkpoint from its serialized parts (snapshot load). *)

val checkpoint_stats : checkpoint -> int * int
(** [(deletions, deletion hash)] recorded in the checkpoint. *)

val checkpoint_live : checkpoint -> int list array
(** Per-net live edge ids (a copy). *)

val restore : t -> checkpoint -> unit
(** Bring the router back to the checkpointed state: every net's
    candidate graph is rebuilt and reduced to the recorded live set,
    pairs are re-recognized, timing is refreshed, and the deletion
    counters are rewound to the checkpoint's — so a restored run
    continues the same deletion-hash chain.  No-op when the state
    already matches. *)

type deletion_commit = {
  dc_phase : string;  (** phase the selection ran in *)
  dc_area_mode : bool;  (** heuristic ordering in force *)
  dc_net : int;
  dc_edge : int;
  dc_deletions_before : int;  (** {!n_deletions} before this deletion *)
  dc_hash_before : int;  (** {!deletion_hash} before this deletion *)
}
(** One committed primary deletion as seen by the write-ahead hook.
    Cascaded prunes and the mirrored partner deletion are deterministic
    consequences and are {e not} separately committed — a mirrored pair
    costs one record. *)

val set_commit_hook : t -> (deletion_commit -> unit) option -> unit
(** Install (or clear) the write-ahead hook, called before each
    committed deletion is applied. *)

val set_checkpoint_hook :
  t -> (phase:string -> completed:string list -> checkpoint -> unit) option -> unit
(** Install (or clear) the phase-boundary hook {!run} fires after each
    completed phase, with the full completed list so far. *)

(** {1 Solution-quality telemetry}

    The quality hook is the router side of [lib/analyze]: the
    orchestrator installs it (never a pool worker), the router pushes
    {!quality_sample} records through it — every {e quality_cadence}
    committed deletions, at the end of every improvement pass, and at
    every phase boundary — and the subscriber persists them (the
    [.bgrq] event log).  Recording is observational only: building a
    sample reads warm caches and O(channels + sinks) aggregates, so the
    deletion sequence (and {!deletion_hash}) is byte-identical with the
    hook on or off, at any domain count.  A raising hook is disabled
    with an [Obs] warning, like a failed trace sink. *)

type quality_kind =
  | Q_cadence  (** bounded-cadence sample inside a phase *)
  | Q_pass  (** end of one improvement pass *)
  | Q_phase  (** phase boundary (carries per-constraint margins) *)

type quality_sample = {
  qs_kind : quality_kind;
  qs_phase : string;  (** same names as the journal and the span stream *)
  qs_pass : int;  (** pass number ([0] outside improvement passes) *)
  qs_deletions : int;
      (** {!n_deletions} at sample time — correlates with the journal's
          [deletions_before] chain *)
  qs_worst_margin_ps : float;  (** [nan] without timing state *)
  qs_worst_constraint : int;  (** id of the worst constraint; [-1] none *)
  qs_total_negative_ps : float;  (** sum of negative margins *)
  qs_violations : int;
  qs_ep_slack_min_ps : float;  (** endpoint-slack extremes; [nan] without sinks *)
  qs_ep_slack_max_ps : float;
  qs_density : int array;  (** bridge density [C_M] per channel *)
  qs_criteria : (string * int) list;
      (** committed deletions since the previous sample, by the
          criterion that separated winner from runner-up (the
          [bgr_deletions_total] label vocabulary) *)
  qs_margins : float array;  (** per-constraint margins; [Q_phase] only *)
}

val set_quality_hook : t -> (quality_sample -> unit) option -> unit
(** Install (or clear) the quality hook; resets the criterion
    accumulator. *)

val sample_quality : ?sta:Sta.t -> t -> phase:string -> quality_sample
(** Build one [Q_phase] sample of the current state without draining
    the criterion counts — the orchestrator's probe for out-of-router
    boundaries (e.g. the post-metrology final sample, where [sta]
    overrides the router's timing state with the measured one). *)

val apply_deletion : t -> net:int -> edge:int -> unit
(** Replay one journaled primary deletion (cascades and mirroring
    included) without invoking the commit hook.  Raises a structured
    [Bgr_error.Error] ([Internal]) when the record does not name a live
    deletable candidate — a corrupt journal must never crash. *)

val run : ?budget:Budget.t -> ?completed:string list -> t -> run_report
(** [initial_route] + the three improvement phases + a final timing
    cleanup, with a checkpoint after each phase.  The initial routing
    always completes — every net has a verifiable tree in any outcome —
    and from then on the budget is consulted between phases and before
    every improvement pass.  On budget exhaustion (or an injected
    fault) the router stops at the last consistent state: partial
    passes are rolled back to the previous checkpoint, and the report
    says which phases completed and why the run stopped.  The stop
    point is a deterministic program point, so with a zero wall-clock
    budget the result is bit-identical across domain counts.

    [completed] lists phases already done (a resumed run): they are
    skipped, the current state is taken as the initial rollback
    checkpoint, and the returned [completed_phases] includes them.
    Because every phase is deterministic, a resumed run finishes with
    the same {!deletion_hash} as an uninterrupted one. *)

val is_routed : t -> bool
(** No non-bridge edge remains anywhere. *)

(** {1 Results} *)

val tree_edges : t -> int -> int list
(** Final (or current tentative) wiring tree of a net, as edge ids into
    {!routing_graph}. *)

val routing_graph : t -> int -> Routing_graph.t

val net_length_um : t -> int -> float

val total_length_mm : t -> float

val wire_caps : t -> float array
(** Current [CL(n)] per net, fF. *)

(** {1 Audit and repair access} *)

val mirrored : t -> int -> bool
(** The net currently routes as half of a recognized mirrored pair. *)

val partner_map_copy : t -> int -> int array
(** Copy of the net's partner edge map ([[||]] when not mirrored) —
    input to {!Diff_pair.mirror_problems}. *)

val drop_pair_recognition : t -> int -> unit
(** Forget the recognition of this net's pair (both sides): the repair
    for a broken mirroring invariant — the nets route independently
    from here on. *)

val rebuild_derived : t -> unit
(** Rebuild all derived state — bridge sets, candidate lists, density
    charts, tentative trees, wire caps, timing weights — from the
    primal live graphs.  The repair step of [Verify.audit]: fixes any
    corruption of derived state; primal damage (a disconnected net) is
    left for the audit to report. *)

type chan_pin = { cp_x : int; cp_from_top : bool }

type chan_net = {
  cn_net : int;
  cn_lo : int;  (** leftmost connection column (closed) *)
  cn_hi : int;  (** rightmost connection column (closed) *)
  cn_pins : chan_pin list;
  cn_pitch : int;
}

val channel_nets : t -> channel:int -> chan_net list
(** Per-channel net segments (with their vertical connection points)
    derived from the final trees — the channel router's input. *)

val reroute_net : t -> int -> unit
(** Rip up and reroute one net (and its recognized differential
    partner) with the current heuristics — exposed for experiments. *)

val set_area_mode : t -> bool -> unit
(** Toggle the area-improvement criterion ordering: delay count first,
    then density conditions, with [Gl]/[LD] last (Sec. 3.5). *)

val penalty : float -> float -> float
(** The penalty function of Eq. 4:
    [pen x limit = 1 - x/limit] when [x >= 0], [exp (-x/limit)]
    otherwise (clamped against overflow) — exposed for testing and for
    external cost models. *)
