type cl_estimator = Tentative_tree | Star_bbox
type delay_model = Lumped_c | Elmore_rc

type options = {
  cl_estimator : cl_estimator;
  delay_model : delay_model;
  area_first_ordering : bool;
  max_recover_passes : int;
  max_delay_passes : int;
  max_area_passes : int;
  trace : (string -> unit) option;
  domains : int;
}

let default_options =
  { cl_estimator = Tentative_tree;
    delay_model = Lumped_c;
    area_first_ordering = false;
    max_recover_passes = 4;
    max_delay_passes = 3;
    max_area_passes = 3;
    trace = None;
    domains = 0 }

type phase_report = { reroutes : int; passes : int }

(* Per-edge lazily refreshed heuristic values.  Each group carries the
   revision(s) it was computed at. *)
type eval = {
  mutable ev_cl_rev : int;
  mutable ev_cl_without : float;
  mutable ev_key_sta_rev : int;
  mutable ev_key_net_rev : int;
  mutable ev_cd : int;
  mutable ev_gl : float;
  mutable ev_ld : float;
  mutable ev_lm_min : float;
      (* Worst local margin LM(e,P) across the net's constraints,
         computed alongside ev_cd/ev_gl/ev_ld.  Deterministic and never
         read by any comparator — it only feeds the local-margin
         histogram at commit time. *)
  mutable ev_dens_rev : int;
  mutable ev_d_max : int;
  mutable ev_nd_max : int;
  mutable ev_d_min : int;
  mutable ev_nd_min : int;
}

let fresh_eval () =
  { ev_cl_rev = -1;
    ev_cl_without = 0.0;
    ev_key_sta_rev = -1;
    ev_key_net_rev = -1;
    ev_cd = 0;
    ev_gl = 0.0;
    ev_ld = 0.0;
    ev_lm_min = infinity;
    ev_dens_rev = -1;
    ev_d_max = 0;
    ev_nd_max = 0;
    ev_d_min = 0;
    ev_nd_min = 0 }

(* A checkpoint is each net's live candidate-graph edge set plus the
   deletion counters; edge ids are stable because init_net_state
   rebuilds a net's graph deterministically. *)
type checkpoint = { ck_deletions : int; ck_del_hash : int; ck_live : int list array }

(* One committed primary deletion, as observed by the write-ahead
   journal hook *before* the cascade runs: the counters are the state
   the deletion starts from, so a replay can verify the chain. *)
type deletion_commit = {
  dc_phase : string;
  dc_area_mode : bool;
  dc_net : int;
  dc_edge : int;
  dc_deletions_before : int;
  dc_hash_before : int;
}

(* Solution-quality telemetry (lib/analyze).  A sample is a snapshot of
   the quality state — margins, violations, per-channel density, the
   winning-criterion mix since the previous sample — emitted through
   the orchestrator-installed quality hook at a bounded cadence, at the
   end of every improvement pass, and at every phase boundary. *)
type quality_kind = Q_cadence | Q_pass | Q_phase

type quality_sample = {
  qs_kind : quality_kind;
  qs_phase : string;
  qs_pass : int;
  qs_deletions : int;
      (* n_deletions at sample time — correlates with the journal's
         deletions_before chain *)
  qs_worst_margin_ps : float;  (* nan without timing state *)
  qs_worst_constraint : int;  (* -1 when none *)
  qs_total_negative_ps : float;
  qs_violations : int;
  qs_ep_slack_min_ps : float;  (* endpoint-slack extremes; nan without sinks *)
  qs_ep_slack_max_ps : float;
  qs_density : int array;  (* C_M per channel *)
  qs_criteria : (string * int) list;
      (* deletions since the previous sample, by winning criterion *)
  qs_margins : float array;  (* per-constraint margins; Q_phase only *)
}

type net_state = {
  mutable rg : Routing_graph.t;
  mutable bridge : bool array;
  mutable candidates : int list;
  mutable tree : int list;
  mutable tree_set : bool array;
  mutable cl_ff : float;
  mutable rev : int;
  mutable evals : eval array;
  mutable partner_map : int array;  (* -1 entries; [||] when not mirrored *)
}

type t = {
  fp : Floorplan.t;
  assignment : Feedthrough.assignment;
  sta : Sta.t option;
  dens : Density.t;
  mutable nets : net_state array;
  opts : options;
  hpwl_cap : float array;
  mutable jog_um : float array;
      (* Expected in-channel vertical jog per connection point, per
         channel.  The global router cannot see detailed track
         positions, but the delay measured after channel routing
         includes every pin's descent to its track; pricing that
         surcharge into CL(n) keeps the margins the selection
         heuristics work with commensurate with the final metrology. *)
  mutable deletions : int;
  mutable del_hash : int;
      (* Running hash of the (net, edge) deletion sequence, cascades
         included — the equivalence tests' fingerprint that parallel
         scoring leaves the algorithm bit-for-bit unchanged. *)
  mutable area_mode : bool;
  par : Par.t option;  (* None: strictly sequential scoring *)
  mutable cur_phase : string;  (* phase tag stamped on journaled deletions *)
  mutable on_commit : (deletion_commit -> unit) option;
  mutable on_checkpoint : (phase:string -> completed:string list -> checkpoint -> unit) option;
  mutable on_quality : (quality_sample -> unit) option;
  q_crit : (string, int) Hashtbl.t;
      (* committed deletions since the last quality sample, by winning
         criterion — drained into each sample's qs_criteria *)
  mutable q_unsampled : int;  (* committed deletions since the last sample *)
}

let floorplan t = t.fp
let assignment t = t.assignment
let sta t = t.sta
let density t = t.dens
let options t = t.opts
let n_deletions t = t.deletions
let deletion_hash t = t.del_hash
let n_domains t = match t.par with None -> 1 | Some pool -> Par.domains pool
let pool_warnings t = match t.par with None -> [] | Some pool -> Par.warnings pool
let set_commit_hook t hook = t.on_commit <- hook
let set_checkpoint_hook t hook = t.on_checkpoint <- hook

let set_quality_hook t hook =
  t.on_quality <- hook;
  Hashtbl.reset t.q_crit;
  t.q_unsampled <- 0

let n_recognized_pairs t =
  Array.fold_left (fun acc ns -> if Array.length ns.partner_map > 0 then acc + 1 else acc) 0 t.nets
  / 2
let set_area_mode t flag = t.area_mode <- flag

(* --- observability (read-only; must never steer a routing decision) -- *)

let m_deletions =
  Obs.Metrics.counter "bgr_deletions_total" ~labels:[ "criterion"; "phase" ]
    ~help:
      "Committed primary deletions by routing phase and by the selection criterion that \
       separated the winner from the runner-up"

let m_cascade =
  Obs.Metrics.counter "bgr_cascade_deletions_total" ~labels:[ "phase" ]
    ~help:"Secondary deletions (dangling prunes, mirrored partner) per primary deletion"

let m_bridge_rej =
  Obs.Metrics.counter "bgr_bridge_rejections_total"
    ~help:"Mirrored-pair candidates rejected because the partner image was dead or a bridge"

let m_rollbacks =
  Obs.Metrics.counter "bgr_rollbacks_total"
    ~help:"Checkpoint rollbacks after a deadline or an injected fault"

let m_phase_dur =
  Obs.Metrics.gauge "bgr_phase_duration_seconds" ~labels:[ "phase" ]
    ~help:"Wall seconds of the most recent execution of each phase"

let m_phase_total =
  Obs.Metrics.counter "bgr_phase_seconds_total" ~labels:[ "phase" ]
    ~help:"Cumulative wall seconds per phase across runs"

let m_headroom =
  Obs.Metrics.gauge "bgr_budget_headroom_ms"
    ~help:"Remaining deadline budget in milliseconds at the last guard check"

let m_batch =
  Obs.Metrics.histogram "bgr_scoring_batch_seconds"
    ~help:"Latency of one candidate-scoring + selection batch (warm caches + best scan)"

let m_lm =
  Obs.Metrics.histogram "bgr_local_margin_ps"
    ~buckets:[| -1000.; -300.; -100.; -30.; -10.; 0.; 10.; 30.; 100.; 300.; 1000.; 3000. |]
    ~help:
      "Worst local margin LM(e,P) in picoseconds of each committed deletion (negative = \
       constraint-violating at selection time)"

(* Hot-path records are dropped on pool workers (the parallel suite
   runner routes whole cases inside workers); this is the single gate. *)
let observing () = Obs.enabled () && not (Par.in_worker ())

(* Deprecation shim: [options.trace] predates the Obs subsystem.  Every
   message still reaches the raw callback, so existing callers keep
   working unchanged, but each one is also forwarded into the trace
   stream as a "router.log" instant event; new code should use
   [Obs.Trace] instead of this hook. *)
let trace t fmt =
  let inactive =
    (match t.opts.trace with None -> true | Some _ -> false) && not (observing ())
  in
  if inactive then Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt
  else
    Format.kasprintf
      (fun s ->
        if observing () then Obs.Trace.instant "router.log" ~attrs:[ ("msg", Obs.Trace.Str s) ];
        match t.opts.trace with None -> () | Some emit -> emit s)
      fmt

(* --- solution-quality telemetry -------------------------------------- *)

(* Quality recording is hook-driven (no global flag): the orchestrator
   installs the hook, workers never emit.  Everything a sample reads is
   a warm-cache or O(channels + sinks) aggregate — building one must
   never steer a routing decision or change the deletion sequence. *)
let quality_on t = t.on_quality <> None && not (Par.in_worker ())

(* Committed primary deletions between cadence samples.  Low enough to
   resolve the initial-route convergence curve, high enough that a
   sample costs a vanishing fraction of a selection round. *)
let quality_cadence = 64

let build_quality_sample ?sta_override t ~kind ~phase ~pass ~drain =
  let density =
    Array.init (Density.n_channels t.dens) (fun channel -> Density.cM t.dens ~channel)
  in
  let sta = match sta_override with Some _ -> sta_override | None -> t.sta in
  let worst_margin, worst_ci, total_negative, violations, ep_min, ep_max, margins =
    match sta with
    | None -> (nan, -1, 0.0, 0, nan, nan, [||])
    | Some sta ->
      let margins = Sta.margins sta in
      let worst_ci = ref (-1) and worst = ref infinity in
      let total = ref 0.0 and viol = ref 0 in
      Array.iteri
        (fun ci m ->
          if m < !worst then begin
            worst := m;
            worst_ci := ci
          end;
          if m < 0.0 then begin
            total := !total +. m;
            incr viol
          end)
        margins;
      let ep_min, ep_max =
        match Sta.endpoint_slack_extremes sta with
        | Some (lo, hi) -> (lo, hi)
        | None -> (nan, nan)
      in
      ( (if Array.length margins = 0 then nan else !worst),
        !worst_ci,
        !total,
        !viol,
        ep_min,
        ep_max,
        (* Per-constraint margins only on phase records: they feed the
           slack waterfall, and per-cadence copies would bloat the log. *)
        (match kind with Q_phase -> margins | Q_cadence | Q_pass -> [||]) )
  in
  let criteria =
    if drain then begin
      let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.q_crit [] in
      Hashtbl.reset t.q_crit;
      t.q_unsampled <- 0;
      List.sort compare l
    end
    else []
  in
  { qs_kind = kind;
    qs_phase = phase;
    qs_pass = pass;
    qs_deletions = t.deletions;
    qs_worst_margin_ps = worst_margin;
    qs_worst_constraint = worst_ci;
    qs_total_negative_ps = total_negative;
    qs_violations = violations;
    qs_ep_slack_min_ps = ep_min;
    qs_ep_slack_max_ps = ep_max;
    qs_density = density;
    qs_criteria = criteria;
    qs_margins = margins }

(* Public probe for the orchestrator (Flow emits a final post-metrology
   sample through it).  Does not drain the criterion counts. *)
let sample_quality ?sta t ~phase =
  build_quality_sample ?sta_override:sta t ~kind:Q_phase ~phase ~pass:0 ~drain:false

(* A raising hook degrades to a warning and is disabled, like an Obs
   sink: quality telemetry must never fail (or alter) the run. *)
let emit_quality t ~kind ~phase ~pass =
  (* Pass boundaries reach the flight recorder even when no quality
     hook is installed: the black box must not depend on telemetry
     being asked for. *)
  (match kind with
  | Q_pass ->
    Flight.record Flight.k_pass ~a:(Flight.phase_code phase) ~b:pass ~c:0 ~d:t.deletions
  | Q_cadence | Q_phase -> ());
  match t.on_quality with
  | None -> ()
  | Some _ when Par.in_worker () -> ()
  | Some hook -> (
    let s = build_quality_sample t ~kind ~phase ~pass ~drain:true in
    try hook s
    with e ->
      t.on_quality <- None;
      Obs.warn "quality hook failed and was disabled: %s"
        (match e with
        | Bgr_error.Error err -> err.Bgr_error.message
        | Sys_error m -> m
        | e -> Printexc.to_string e))

(* Per-committed-deletion bookkeeping: count the winning criterion and
   emit a cadence sample every [quality_cadence] commits. *)
let note_quality_deletion t crit =
  Hashtbl.replace t.q_crit crit
    (1 + Option.value (Hashtbl.find_opt t.q_crit crit) ~default:0);
  t.q_unsampled <- t.q_unsampled + 1;
  if t.q_unsampled >= quality_cadence then
    emit_quality t ~kind:Q_cadence ~phase:t.cur_phase ~pass:0

(* --- density bookkeeping ------------------------------------------- *)

let register_edge_density t ns (e : Ugraph.edge) =
  match Routing_graph.edge_kind ns.rg e.Ugraph.id with
  | Routing_graph.Trunk { channel; span } ->
    Density.add_trunk t.dens ~channel ~span ~w:ns.rg.Routing_graph.pitch
      ~bridge:ns.bridge.(e.Ugraph.id)
  | Routing_graph.Branch _ | Routing_graph.Correspondence _ -> ()

let unregister_edge_density t ns (e : Ugraph.edge) =
  match Routing_graph.edge_kind ns.rg e.Ugraph.id with
  | Routing_graph.Trunk { channel; span } ->
    Density.remove_trunk t.dens ~channel ~span ~w:ns.rg.Routing_graph.pitch
      ~bridge:ns.bridge.(e.Ugraph.id)
  | Routing_graph.Branch _ | Routing_graph.Correspondence _ -> ()

let register_net_density t ns = Ugraph.iter_edges ns.rg.Routing_graph.graph (register_edge_density t ns)
let unregister_net_density t ns = Ugraph.iter_edges ns.rg.Routing_graph.graph (unregister_edge_density t ns)

(* Recompute the bridge set; reflect status flips of live trunks in the
   d_m chart and refresh the candidate list. *)
let refresh_bridges t ns =
  let g = ns.rg.Routing_graph.graph in
  let nb = Bridges.bridges g in
  Ugraph.iter_edges g (fun e ->
      let id = e.Ugraph.id in
      if nb.(id) <> ns.bridge.(id) then begin
        match Routing_graph.edge_kind ns.rg id with
        | Routing_graph.Trunk { channel; span } ->
          Density.set_bridge t.dens ~channel ~span ~w:ns.rg.Routing_graph.pitch nb.(id)
        | Routing_graph.Branch _ | Routing_graph.Correspondence _ -> ()
      end);
  ns.bridge <- nb;
  ns.candidates <-
    List.rev
      (Ugraph.fold_edges g
         (fun acc (e : Ugraph.edge) -> if nb.(e.Ugraph.id) then acc else e.Ugraph.id :: acc)
         [])

(* --- wire-length estimation ---------------------------------------- *)

let hpwl_cap_of_net fp net_id =
  let dims = Floorplan.dims fp in
  let net = Netlist.net (Floorplan.netlist fp) net_id in
  let bbox = Floorplan.net_bbox fp net_id in
  let um = Dims.h_um dims (Rect.width bbox) +. Dims.v_um dims ~rows:(Rect.height bbox) in
  um *. Dims.cap_per_um_at dims ~width:(float_of_int net.Netlist.pitch)

let current_cl t ns =
  match t.opts.cl_estimator with
  | Tentative_tree -> Routing_graph.tree_capacitance ns.rg ~edge_ids:ns.tree
  | Star_bbox -> t.hpwl_cap.(ns.rg.Routing_graph.net_id)

(* Push the net's wiring delay into the timing state under the chosen
   delay model. *)
let apply_net_timing t ns =
  match t.sta with
  | None -> ()
  | Some sta ->
    let net = ns.rg.Routing_graph.net_id in
    let dg = Sta.delay_graph sta in
    (match t.opts.delay_model with
    | Lumped_c -> Delay_graph.set_net_cap dg ~net ~cap_ff:ns.cl_ff
    | Elmore_rc ->
      let netlist = Floorplan.netlist t.fp in
      let r = Elmore.analyze ~dims:(Floorplan.dims t.fp) ~netlist ~rg:ns.rg ~tree:ns.tree () in
      let lookup = Hashtbl.create 8 in
      List.iter (fun (ep, ps) -> Hashtbl.replace lookup ep ps) r.Elmore.delay_ps;
      Delay_graph.set_net_sink_delays dg ~net ~delay_of:(fun ep ->
          Option.value (Hashtbl.find_opt lookup ep) ~default:0.0));
    Sta.refresh_for_nets sta [ net ]

let refresh_tree t ns =
  match Routing_graph.tentative_tree ns.rg with
  | None ->
    raise
      (Routing_graph.Unroutable
         (Printf.sprintf "net %d lost terminal connectivity" ns.rg.Routing_graph.net_id))
  | Some edges ->
    ns.tree <- edges;
    let set = Array.make (Ugraph.n_edges_total ns.rg.Routing_graph.graph) false in
    List.iter (fun e -> set.(e) <- true) edges;
    ns.tree_set <- set;
    let cl = current_cl t ns in
    (* Under the lumped model an unchanged CL means unchanged weights;
       under Elmore the per-sink split can shift even then, so any tree
       refresh re-applies. *)
    if cl <> ns.cl_ff || t.opts.delay_model = Elmore_rc then begin
      ns.cl_ff <- cl;
      apply_net_timing t ns
    end

(* --- per-edge heuristic values -------------------------------------- *)

let ensure_eval ns eid =
  if eid >= Array.length ns.evals then begin
    let bigger = Array.init (max 8 (2 * (eid + 1))) (fun _ -> fresh_eval ()) in
    Array.blit ns.evals 0 bigger 0 (Array.length ns.evals);
    ns.evals <- bigger
  end;
  ns.evals.(eid)

let cl_without t ns eid =
  let ev = ensure_eval ns eid in
  if ev.ev_cl_rev <> ns.rev then begin
    ev.ev_cl_rev <- ns.rev;
    ev.ev_cl_without <-
      (if not (eid < Array.length ns.tree_set && ns.tree_set.(eid)) then ns.cl_ff
       else begin
         match t.opts.cl_estimator with
         | Star_bbox -> ns.cl_ff
         | Tentative_tree -> (
           match Routing_graph.tentative_tree ~exclude_edge:eid ns.rg with
           | Some edges -> Routing_graph.tree_capacitance ns.rg ~edge_ids:edges
           | None -> infinity (* cannot happen for non-bridge edges *))
       end)
  end;
  ev.ev_cl_without

(* Penalty function of Eq. 4; the exponent is clamped against overflow
   on grossly violated constraints. *)
let penalty x limit =
  if x >= 0.0 then 1.0 -. (x /. limit) else exp (Float.min 50.0 (-.x /. limit))

let delay_key t ns eid =
  let ev = ensure_eval ns eid in
  let sta_rev = match t.sta with None -> 0 | Some sta -> Sta.timing_revision sta in
  if ev.ev_key_sta_rev <> sta_rev || ev.ev_key_net_rev <> ns.rev then begin
    ev.ev_key_sta_rev <- sta_rev;
    ev.ev_key_net_rev <- ns.rev;
    match t.sta with
    | None ->
      ev.ev_cd <- 0;
      ev.ev_gl <- 0.0;
      ev.ev_ld <- 0.0;
      ev.ev_lm_min <- infinity
    | Some sta ->
      let net = ns.rg.Routing_graph.net_id in
      let cons = Sta.constraints_of_net sta net in
      if cons = [] then begin
        ev.ev_cd <- 0;
        ev.ev_gl <- 0.0;
        ev.ev_ld <- 0.0;
        ev.ev_lm_min <- infinity
      end
      else begin
        let dg = Sta.delay_graph sta in
        let dag = Delay_graph.dag dg in
        let td = Delay_graph.driver_td dg net in
        let dcl = cl_without t ns eid -. ns.cl_ff in
        let cd = ref 0 and gl = ref 0.0 and ld = ref 0.0 and lm_min = ref infinity in
        let on_constraint ci =
          let pc = Sta.constraint_ sta ci in
          let m = Sta.margin sta ci in
          let lp = Sta.arrival sta ci in
          let worst = ref 0.0 in
          let on_edge de =
            let v, w = Dag.endpoints dag de in
            if lp.(v) > neg_infinity && lp.(w) > neg_infinity then begin
              let d' = Dag.weight dag de +. (dcl *. td) in
              let diff = lp.(v) +. d' -. lp.(w) in
              if diff > !worst then worst := diff;
              ld := !ld +. Float.max 0.0 (dcl *. td)
            end
          in
          List.iter on_edge (Sta.gd_edges_of_net sta ~ci ~net);
          let lm = m -. !worst in
          if lm < !lm_min then lm_min := lm;
          if lm <= 0.0 then incr cd;
          gl := !gl +. penalty lm pc.Path_constraint.limit_ps -. penalty m pc.Path_constraint.limit_ps
        in
        List.iter on_constraint cons;
        ev.ev_cd <- !cd;
        ev.ev_gl <- !gl;
        ev.ev_ld <- !ld;
        ev.ev_lm_min <- !lm_min
      end
  end;
  ev

let density_params t ns eid =
  let ev = ensure_eval ns eid in
  let channel, span = Routing_graph.density_locus ns.rg eid in
  let rev = Density.revision t.dens ~channel in
  if ev.ev_dens_rev <> rev then begin
    ev.ev_dens_rev <- rev;
    let d_max, nd_max, d_min, nd_min = Density.edge_params t.dens ~channel ~span in
    ev.ev_d_max <- d_max;
    ev.ev_nd_max <- nd_max;
    ev.ev_d_min <- d_min;
    ev.ev_nd_min <- nd_min
  end;
  (channel, ev)

(* --- candidate comparison (Sec. 3.4) -------------------------------- *)

let float_cmp a b =
  let eps = 1e-9 in
  if a < b -. eps then -1 else if a > b +. eps then 1 else 0

let compare_delay t (n1, e1) (n2, e2) =
  let k1 = delay_key t t.nets.(n1) e1 and k2 = delay_key t t.nets.(n2) e2 in
  let c = Int.compare k1.ev_cd k2.ev_cd in
  if c <> 0 then c
  else begin
    let c = float_cmp k1.ev_gl k2.ev_gl in
    if c <> 0 then c else float_cmp k1.ev_ld k2.ev_ld
  end

let compare_cd_only t (n1, e1) (n2, e2) =
  let k1 = delay_key t t.nets.(n1) e1 and k2 = delay_key t t.nets.(n2) e2 in
  Int.compare k1.ev_cd k2.ev_cd

let compare_gl_ld t (n1, e1) (n2, e2) =
  let k1 = delay_key t t.nets.(n1) e1 and k2 = delay_key t t.nets.(n2) e2 in
  let c = float_cmp k1.ev_gl k2.ev_gl in
  if c <> 0 then c else float_cmp k1.ev_ld k2.ev_ld

let compare_density t (n1, e1) (n2, e2) =
  let ns1 = t.nets.(n1) and ns2 = t.nets.(n2) in
  let t1 = Routing_graph.is_trunk ns1.rg e1 and t2 = Routing_graph.is_trunk ns2.rg e2 in
  if t1 && not t2 then -1
  else if t2 && not t1 then 1
  else begin
    let c1, p1 = density_params t ns1 e1 and c2, p2 = density_params t ns2 e2 in
    let cmp f = Int.compare (f c1 p1) (f c2 p2) in
    let f_m c p = Density.cm t.dens ~channel:c - p.ev_d_min in
    let n_m c p = Density.ncm t.dens ~channel:c - p.ev_nd_min in
    let f_big c p = Density.cM t.dens ~channel:c - p.ev_d_max in
    let n_big c p = Density.ncM t.dens ~channel:c - p.ev_nd_max in
    let c = cmp f_m in
    if c <> 0 then c
    else begin
      let c = cmp n_m in
      if c <> 0 then c
      else begin
        let c = cmp f_big in
        if c <> 0 then c else cmp n_big
      end
    end
  end

let compare_length t (n1, e1) (n2, e2) =
  let w1 = (Ugraph.edge t.nets.(n1).rg.Routing_graph.graph e1).Ugraph.weight in
  let w2 = (Ugraph.edge t.nets.(n2).rg.Routing_graph.graph e2).Ugraph.weight in
  (* Longer edge preferred. *)
  float_cmp w2 w1

(* The two Sec. 3.4 comparison chains, with the criterion names the
   deletions-by-criterion counter reports. *)
let delay_chain =
  [ ("delay", compare_delay); ("density", compare_density); ("length", compare_length) ]

let area_chain =
  [ ("delay_count", compare_cd_only);
    ("density", compare_density);
    ("gl_ld", compare_gl_ld);
    ("length", compare_length) ]

let active_chain t = if t.area_mode then area_chain else delay_chain

let compare_candidates t a b =
  let rec go = function
    | [] -> compare a b (* deterministic final tie-break on ids *)
    | (_, cmp) :: rest ->
      let c = cmp t a b in
      if c <> 0 then c else go rest
  in
  go (active_chain t)

(* Name of the first criterion that separates winner [a] from runner-up
   [b].  Pure cache reads (every comparator is memoized and already
   warm after the selection scan), used only to label the deletion
   counter — never to choose a candidate. *)
let criterion_between t a b =
  let rec go = function
    | [] -> "id_tie_break"
    | (name, cmp) :: rest -> if cmp t a b <> 0 then name else go rest
  in
  go (active_chain t)

(* A candidate of a mirrored pair is admissible only when its partner
   image is alive and itself deletable. *)
let admissible t n eid =
  let ns = t.nets.(n) in
  if Array.length ns.partner_map = 0 then true
  else begin
    match (Netlist.net (Floorplan.netlist t.fp) n).Netlist.diff_partner with
    | None -> true
    | Some p ->
      let peid = if eid < Array.length ns.partner_map then ns.partner_map.(eid) else -1 in
      let ok =
        peid >= 0
        && Ugraph.is_live t.nets.(p).rg.Routing_graph.graph peid
        && not t.nets.(p).bridge.(peid)
      in
      if (not ok) && observing () then Obs.Metrics.inc m_bridge_rej;
      ok
  end

(* All admissible candidates of [net_ids], in the exact order the
   sequential selection would visit them. *)
let admissible_candidates t net_ids =
  let acc = ref [] and count = ref 0 in
  List.iter
    (fun n ->
      let ns = t.nets.(n) in
      List.iter
        (fun eid ->
          if admissible t n eid then begin
            acc := (n, eid) :: !acc;
            incr count
          end)
        ns.candidates)
    net_ids;
  let out = Array.make !count (0, 0) in
  List.iter
    (fun c ->
      decr count;
      out.(!count) <- c)
    !acc;
  out

(* Parallel pre-computation of every candidate's heuristic values
   (C_d, Gl, LD via delay_key — including the tentative-tree CL(n)
   without the edge — and the density interval parameters).

   Scoring is read-only with respect to everything shared: each
   candidate's values land in its own [eval] record, written by exactly
   one domain, and all values are deterministic functions of the
   routing state.  The only lazily mutated shared caches on the read
   path (the per-channel density aggregates) are warmed on the calling
   domain first.  The sequential selection that follows then finds
   every cache fresh and compares exactly the numbers the sequential
   engine would have computed — which is the determinism argument for
   the whole parallel engine (see DESIGN.md): parallel score,
   sequential apply, bit-identical result. *)
let warm_selection_caches t cands =
  match t.par with
  | None -> ()
  | Some pool ->
    let sta_rev = match t.sta with None -> 0 | Some sta -> Sta.timing_revision sta in
    (* Only candidates whose caches are stale under the exact revision
       checks the lazy accessors use: after the first selection round a
       deletion dirties one net and a couple of channels, so the
       parallel work list stays proportional to the damage. *)
    let stale = Array.make (Array.length cands) (0, 0) in
    let n_stale = ref 0 in
    Array.iter
      (fun ((net, eid) as c) ->
        let ns = t.nets.(net) in
        let ev = ensure_eval ns eid in
        if
          ev.ev_key_sta_rev <> sta_rev
          || ev.ev_key_net_rev <> ns.rev
          ||
          let channel, _ = Routing_graph.density_locus ns.rg eid in
          ev.ev_dens_rev <> Density.revision t.dens ~channel
        then begin
          stale.(!n_stale) <- c;
          incr n_stale
        end)
      cands;
    let n = !n_stale in
    (* Under ~8 stale candidates the dispatch overhead outweighs the
       win and the sequential selection warms them up anyway. *)
    if n >= 8 then begin
      for c = 0 to Density.n_channels t.dens - 1 do
        ignore (Density.cM t.dens ~channel:c);
        ignore (Density.ncM t.dens ~channel:c);
        ignore (Density.cm t.dens ~channel:c);
        ignore (Density.ncm t.dens ~channel:c)
      done;
      Par.parallel_iter pool
        (fun i ->
          let net, eid = stale.(i) in
          let ns = t.nets.(net) in
          ignore (delay_key t ns eid);
          ignore (density_params t ns eid))
        n
    end

let select_plain t cands =
  let best = ref None in
  Array.iter
    (fun c ->
      match !best with
      | None -> best := Some c
      | Some b -> if compare_candidates t c b < 0 then best := Some c)
    cands;
  !best

(* Same best as [select_plain] (the update condition is identical; the
   runner-up tracking is a pure bystander), but also reports which
   criterion made the winner win. *)
let select_observed t cands =
  let best = ref None and second = ref None in
  Array.iter
    (fun c ->
      match !best with
      | None -> best := Some c
      | Some b ->
        if compare_candidates t c b < 0 then begin
          second := Some b;
          best := Some c
        end
        else begin
          match !second with
          | None -> second := Some c
          | Some s -> if compare_candidates t c s < 0 then second := Some c
        end)
    cands;
  match !best with
  | None -> None
  | Some b ->
    let crit =
      match !second with None -> "only_candidate" | Some s -> criterion_between t b s
    in
    Some (b, crit)

(* Returns the chosen candidate plus the criterion label for the
   deletion counter and the quality log ("" when neither observability
   nor quality recording is on: nobody reads it).  [select_observed]
   picks the identical winner as [select_plain] — the runner-up
   tracking and the criterion naming are pure warm-cache reads — so
   turning either consumer on leaves the deletion hash unchanged. *)
let select_among t net_ids =
  let cands = admissible_candidates t net_ids in
  if observing () || quality_on t then begin
    let t0 = if observing () then Obs.now_s () else 0.0 in
    warm_selection_caches t cands;
    let r = select_observed t cands in
    if observing () then Obs.Metrics.observe m_batch (Obs.now_s () -. t0);
    r
  end
  else begin
    warm_selection_caches t cands;
    match select_plain t cands with None -> None | Some c -> Some (c, "")
  end

(* --- deletion with cascade ------------------------------------------ *)

let mix_hash h v = ((h * 1000003) + v) land max_int

let record_deletion t n eid = t.del_hash <- mix_hash (mix_hash t.del_hash n) eid

let rec delete_cascade t n eid ~mirror =
  let ns = t.nets.(n) in
  let g = ns.rg.Routing_graph.graph in
  assert (Ugraph.is_live g eid && not ns.bridge.(eid));
  let touched_tree = ref (eid < Array.length ns.tree_set && ns.tree_set.(eid)) in
  unregister_edge_density t ns (Ugraph.edge g eid);
  Ugraph.delete_edge g eid;
  t.deletions <- t.deletions + 1;
  record_deletion t n eid;
  Routing_graph.prune_dangling ns.rg ~on_delete:(fun e ->
      unregister_edge_density t ns e;
      t.deletions <- t.deletions + 1;
      record_deletion t n e.Ugraph.id;
      if e.Ugraph.id < Array.length ns.tree_set && ns.tree_set.(e.Ugraph.id) then
        touched_tree := true);
  refresh_bridges t ns;
  ns.rev <- ns.rev + 1;
  if !touched_tree then refresh_tree t ns;
  if mirror && Array.length ns.partner_map > 0 then begin
    match (Netlist.net (Floorplan.netlist t.fp) n).Netlist.diff_partner with
    | None -> ()
    | Some p ->
      let peid = if eid < Array.length ns.partner_map then ns.partner_map.(eid) else -1 in
      let pns = t.nets.(p) in
      if peid >= 0 && Ugraph.is_live pns.rg.Routing_graph.graph peid then begin
        if pns.bridge.(peid) then begin
          (* Homology broke (should not happen under mirrored
             deletions); fall back to independent routing. *)
          ns.partner_map <- [||];
          pns.partner_map <- [||];
          trace t "pair %d/%d: homology lost, falling back to independent routing" n p
        end
        else delete_cascade t p peid ~mirror:false
      end
  end

(* A *committed* deletion — one the selection loop chose — goes through
   the write-ahead hook first, so the journal record is durable before
   any state changes.  Cascaded prunes and the mirrored partner
   deletion are deterministic consequences of the primary deletion and
   are regenerated on replay, which is why a mirrored pair costs one
   journal record, not two. *)
let commit_deletion t n eid =
  (match t.on_commit with
  | None -> ()
  | Some hook ->
    hook
      { dc_phase = t.cur_phase;
        dc_area_mode = t.area_mode;
        dc_net = n;
        dc_edge = eid;
        dc_deletions_before = t.deletions;
        dc_hash_before = t.del_hash });
  delete_cascade t n eid ~mirror:true

(* Replay entry for the journal: apply a recorded primary deletion
   without re-journaling it.  Validates instead of asserting — a
   corrupt (but CRC-clean) record must surface as a structured error,
   not a crash. *)
let apply_deletion t ~net ~edge =
  if net < 0 || net >= Array.length t.nets then
    Bgr_error.raise_error ~phase:"resume" Bgr_error.Internal "journal replay: unknown net %d" net;
  let ns = t.nets.(net) in
  let g = ns.rg.Routing_graph.graph in
  if edge < 0 || edge >= Ugraph.n_edges_total g || not (Ugraph.is_live g edge) || ns.bridge.(edge)
  then
    Bgr_error.raise_error ~phase:"resume" Bgr_error.Internal
      "journal replay: edge %d of net %d is not a deletable candidate" edge net;
  delete_cascade t net edge ~mirror:true

(* --- construction ---------------------------------------------------- *)

(* Graph-only part of a net state (no density/timing side effects). *)
let fresh_net_state ?jog_cost fp assignment net_id =
  let rg = Routing_graph.build ?jog_cost fp assignment ~net:net_id in
  Routing_graph.prune_dangling rg ~on_delete:(fun _ -> ());
  let bridge = Bridges.bridges rg.Routing_graph.graph in
  let candidates =
    List.rev
      (Ugraph.fold_edges rg.Routing_graph.graph
         (fun acc (e : Ugraph.edge) -> if bridge.(e.Ugraph.id) then acc else e.Ugraph.id :: acc)
         [])
  in
  { rg;
    bridge;
    candidates;
    tree = [];
    tree_set = [||];
    cl_ff = -1.0;
    rev = 0;
    evals = Array.init (Ugraph.n_edges_total rg.Routing_graph.graph) (fun _ -> fresh_eval ());
    partner_map = [||] }

let jog_cost_of t channel = t.jog_um.(channel)

let init_net_state t net_id =
  let ns = fresh_net_state ~jog_cost:(jog_cost_of t) t.fp t.assignment net_id in
  t.nets.(net_id) <- ns;
  register_net_density t ns;
  refresh_tree t ns

let recognize_pair t n p =
  let ns = t.nets.(n) and pns = t.nets.(p) in
  match Diff_pair.recognize ns.rg pns.rg with
  | None ->
    ns.partner_map <- [||];
    pns.partner_map <- [||]
  | Some emap ->
    ns.partner_map <- emap;
    let rev = Array.make (Ugraph.n_edges_total pns.rg.Routing_graph.graph) (-1) in
    Array.iteri (fun ea eb -> if eb >= 0 then rev.(eb) <- ea) emap;
    pns.partner_map <- rev

let create ?(options = default_options) fp assignment sta =
  let netlist = Floorplan.netlist fp in
  let n_nets = Netlist.n_nets netlist in
  (* [domains = 0] means auto (BGR_DOMAINS or the available cores);
     [<= 1] selects the strictly sequential engine.  A router built
     inside a pool worker (a parallel suite run) scores sequentially
     too, instead of nesting pools. *)
  let requested =
    if options.domains = 0 then Par.default_domains () else max 1 options.domains
  in
  let par =
    if requested <= 1 || Par.in_worker () then None else Some (Par.get ~domains:requested ())
  in
  let t =
    { fp;
      assignment;
      sta;
      dens = Density.create ~n_channels:(Floorplan.n_channels fp) ~width:(Floorplan.width fp);
      nets = Array.init n_nets (fun net -> fresh_net_state fp assignment net);
      opts = options;
      hpwl_cap = Array.init n_nets (fun net -> hpwl_cap_of_net fp net);
      jog_um = Array.make (Floorplan.n_channels fp) 0.0;
      deletions = 0;
      del_hash = 0;
      area_mode = options.area_first_ordering;
      par;
      cur_phase = "initial_route";
      on_commit = None;
      on_checkpoint = None;
      on_quality = None;
      q_crit = Hashtbl.create 8;
      q_unsampled = 0 }
  in
  Array.iter (fun ns -> register_net_density t ns) t.nets;
  (* Expected final channel depth is roughly half the candidate-graph
     density (about half of all candidate trunks get deleted); a pin's
     expected descent is half of that again.  The estimate is derived
     from a zero-jog candidate pass, then every routing graph is
     rebuilt with the jog surcharge priced into its correspondence and
     branch edge weights. *)
  t.jog_um <-
    Array.init (Floorplan.n_channels fp) (fun c ->
        0.25 *. float_of_int (Density.cM t.dens ~channel:c) *. (Floorplan.dims fp).Dims.track_um);
  Array.iter (fun ns -> unregister_net_density t ns) t.nets;
  for net = 0 to n_nets - 1 do
    init_net_state t net
  done;
  (match sta with Some sta -> Sta.refresh sta | None -> ());
  for net = 0 to n_nets - 1 do
    match (Netlist.net netlist net).Netlist.diff_partner with
    | Some p when p > net -> recognize_pair t net p
    | Some _ | None -> ()
  done;
  t

(* --- phases ----------------------------------------------------------- *)

let all_net_ids t = List.init (Array.length t.nets) Fun.id

let route_among t net_ids =
  let rec loop () =
    match select_among t net_ids with
    | None -> ()
    | Some ((n, eid), crit) ->
      let before = t.deletions in
      if observing () then begin
        (* delay_key only re-reads the eval cache the selection scan
           just warmed; the LM(e,P) value was computed either way. *)
        let ev = delay_key t t.nets.(n) eid in
        if ev.ev_lm_min < infinity then Obs.Metrics.observe m_lm ev.ev_lm_min;
        commit_deletion t n eid;
        Obs.Metrics.inc m_deletions ~labels:[ ("criterion", crit); ("phase", t.cur_phase) ];
        let cascade = t.deletions - before - 1 in
        if cascade > 0 then
          Obs.Metrics.inc m_cascade ~labels:[ ("phase", t.cur_phase) ]
            ~by:(float_of_int cascade)
      end
      else commit_deletion t n eid;
      Flight.record Flight.k_deletion ~a:(Flight.phase_code t.cur_phase)
        ~b:(Flight.criterion_code crit) ~c:n
        ~d:((eid lsl 32) lor (before land 0xFFFFFFFF));
      if quality_on t then note_quality_deletion t crit;
      loop ()
  in
  loop ()

let initial_route t =
  t.cur_phase <- "initial_route";
  trace t "initial routing: %d nets" (Array.length t.nets);
  route_among t (all_net_ids t);
  trace t "initial routing done after %d deletions" t.deletions

(* --- sequential baseline (net-at-a-time, congestion-priced) --------- *)

(* Reduce one net's graph to exactly [wanted] by deleting non-bridge
   edges outside it; mirrored partners follow through delete_cascade. *)
let reduce_to_tree t n ~wanted =
  let ns = t.nets.(n) in
  let in_tree = Hashtbl.create 32 in
  List.iter (fun eid -> Hashtbl.replace in_tree eid ()) wanted;
  let rec loop () =
    match List.find_opt (fun eid -> not (Hashtbl.mem in_tree eid)) ns.candidates with
    | Some eid ->
      delete_cascade t n eid ~mirror:true;
      loop ()
    | None -> ()
  in
  loop ()

let route_sequential ?(congestion_weight = 0.5) ?order t =
  let order = match order with Some o -> o | None -> all_net_ids t in
  trace t "sequential baseline: %d nets" (List.length order);
  let track_um = (Floorplan.dims t.fp).Dims.track_um in
  let congestion_cost ns (e : Ugraph.edge) =
    match Routing_graph.edge_kind ns.rg e.Ugraph.id with
    | Routing_graph.Trunk { channel; span } ->
      let d_max, _, _, _ = Density.edge_params t.dens ~channel ~span in
      e.Ugraph.weight +. (congestion_weight *. track_um *. float_of_int d_max)
    | Routing_graph.Branch _ | Routing_graph.Correspondence _ -> e.Ugraph.weight
  in
  let netlist = Floorplan.netlist t.fp in
  let routed = Array.make (Array.length t.nets) false in
  let route_one n =
    if not routed.(n) then begin
      let ns = t.nets.(n) in
      match Routing_graph.tentative_tree ~cost:(congestion_cost ns) ns.rg with
      | None -> () (* cannot happen: the candidate graph is connected *)
      | Some wanted ->
        routed.(n) <- true;
        (match (Netlist.net netlist n).Netlist.diff_partner with
        | Some p -> routed.(p) <- true
        | None -> ());
        reduce_to_tree t n ~wanted;
        (* Mirroring may leave deletable leftovers in an unrecognized
           partner or in this net; fall back to plain edge deletion so
           both end as trees. *)
        let members =
          match (Netlist.net netlist n).Netlist.diff_partner with
          | Some p -> [ n; p ]
          | None -> [ n ]
        in
        route_among t members
    end
  in
  List.iter route_one order;
  trace t "sequential baseline done after %d deletions" t.deletions

let is_routed t = Array.for_all (fun ns -> ns.candidates = []) t.nets

let reroute_net t n =
  let netlist = Floorplan.netlist t.fp in
  let members =
    match (Netlist.net netlist n).Netlist.diff_partner with
    | Some p -> [ min n p; max n p ]
    | None -> [ n ]
  in
  List.iter (fun m -> unregister_net_density t t.nets.(m)) members;
  List.iter (fun m -> init_net_state t m) members;
  (match members with
  | [ a; b ] -> recognize_pair t a b
  | [ _ ] -> ()
  | _ -> assert false);
  (match t.sta with Some sta -> Sta.refresh_for_nets sta members | None -> ());
  route_among t members

let no_guard () = ()

let recover_violations ?(guard = no_guard) ?max_passes t =
  let limit = min t.opts.max_recover_passes (Option.value max_passes ~default:max_int) in
  match t.sta with
  | None -> { reroutes = 0; passes = 0 }
  | Some sta ->
    (* The recovery phase always weighs delay first, whatever ordering
       the initial routing used (Sec. 3.5 reserves the density-first
       ordering for the area phase). *)
    let saved_mode = t.area_mode in
    set_area_mode t false;
    let reroutes = ref 0 and passes = ref 0 in
    let rec loop () =
      if !passes >= limit then ()
      else begin
        guard ();
        match Sta.violations sta with
        | [] -> ()
        | violated ->
          incr passes;
          let before = Sta.worst_path_delay sta in
          let on_constraint ci =
            let nets = List.sort_uniq Int.compare (Sta.critical_nets sta ci) in
            List.iter
              (fun n ->
                if Sta.margin sta ci < 0.0 then begin
                  reroute_net t n;
                  incr reroutes
                end)
              nets
          in
          Obs.Trace.span "pass:recover_violations"
            ~attrs:[ ("pass", Obs.Trace.Int !passes) ]
            (fun () -> List.iter on_constraint violated);
          let after = Sta.worst_path_delay sta in
          trace t "recover pass %d: worst delay %.1f -> %.1f ps" !passes before after;
          emit_quality t ~kind:Q_pass ~phase:t.cur_phase ~pass:!passes;
          if after < before -. 1e-6 || Sta.violations sta = [] then loop ()
      end
    in
    loop ();
    set_area_mode t saved_mode;
    { reroutes = !reroutes; passes = !passes }

let improve_delay ?(guard = no_guard) ?max_passes t =
  let limit = min t.opts.max_delay_passes (Option.value max_passes ~default:max_int) in
  match t.sta with
  | None -> { reroutes = 0; passes = 0 }
  | Some sta ->
    let saved_mode = t.area_mode in
    set_area_mode t false;
    let reroutes = ref 0 and passes = ref 0 in
    let rec loop () =
      if !passes >= limit then ()
      else begin
        guard ();
        incr passes;
        let before = Sta.worst_path_delay sta in
        (* Constraints by ascending margin; their critical nets first. *)
        let order =
          List.init (Sta.n_constraints sta) Fun.id
          |> List.stable_sort (fun a b -> Float.compare (Sta.margin sta a) (Sta.margin sta b))
        in
        let seen = Hashtbl.create 64 in
        let on_constraint ci =
          List.iter
            (fun n ->
              if not (Hashtbl.mem seen n) then begin
                Hashtbl.replace seen n ();
                reroute_net t n;
                incr reroutes
              end)
            (Sta.critical_nets sta ci)
        in
        Obs.Trace.span "pass:improve_delay"
          ~attrs:[ ("pass", Obs.Trace.Int !passes) ]
          (fun () -> List.iter on_constraint order);
        let after = Sta.worst_path_delay sta in
        trace t "delay pass %d: worst delay %.1f -> %.1f ps" !passes before after;
        emit_quality t ~kind:Q_pass ~phase:t.cur_phase ~pass:!passes;
        if after < before -. 1e-6 then loop ()
      end
    in
    loop ();
    set_area_mode t saved_mode;
    { reroutes = !reroutes; passes = !passes }

let total_tracks t = Array.fold_left ( + ) 0 (Density.tracks_estimate t.dens)

(* Nets with a trunk covering a maximum-density column of the most
   congested channel. *)
let congested_nets t =
  let worst_channel = ref 0 and worst = ref (-1) in
  for c = 0 to Density.n_channels t.dens - 1 do
    let v = Density.cM t.dens ~channel:c in
    if v > !worst then begin
      worst := v;
      worst_channel := c
    end
  done;
  let c = !worst_channel in
  let peak = !worst in
  let hot x = Density.dM_at t.dens ~channel:c ~x = peak in
  let result = ref [] in
  Array.iteri
    (fun n ns ->
      let covers_hot = ref false in
      Ugraph.iter_edges ns.rg.Routing_graph.graph (fun e ->
          match Routing_graph.edge_kind ns.rg e.Ugraph.id with
          | Routing_graph.Trunk { channel; span } when channel = c ->
            Interval.iter (fun x -> if hot x then covers_hot := true) span
          | Routing_graph.Trunk _ | Routing_graph.Branch _ | Routing_graph.Correspondence _ -> ())
        ;
      if !covers_hot then result := n :: !result)
    t.nets;
  List.rev !result

let improve_area ?(guard = no_guard) ?max_passes t =
  let limit = min t.opts.max_area_passes (Option.value max_passes ~default:max_int) in
  let reroutes = ref 0 and passes = ref 0 in
  let saved_mode = t.area_mode in
  set_area_mode t true;
  let rec loop () =
    if !passes >= limit then ()
    else begin
      guard ();
      incr passes;
      let before = total_tracks t in
      let nets = congested_nets t in
      Obs.Trace.span "pass:improve_area"
        ~attrs:[ ("pass", Obs.Trace.Int !passes); ("nets", Obs.Trace.Int (List.length nets)) ]
        (fun () ->
          List.iter
            (fun n ->
              reroute_net t n;
              incr reroutes)
            nets);
      let after = total_tracks t in
      trace t "area pass %d: total tracks %d -> %d (%d nets)" !passes before after
        (List.length nets);
      emit_quality t ~kind:Q_pass ~phase:t.cur_phase ~pass:!passes;
      if after < before then loop ()
    end
  in
  loop ();
  set_area_mode t saved_mode;
  { reroutes = !reroutes; passes = !passes }

(* --- checkpoints and the deadline-aware driver ----------------------- *)

type stop_reason =
  | Finished
  | Deadline of { phase : string }
  | Fault_stop of { phase : string; error : Bgr_error.t }

type run_report = {
  completed_phases : string list;
  stopped_because : stop_reason;
  rolled_back : bool;
}

let stop_reason_string = function
  | Finished -> "finished"
  | Deadline { phase } -> Printf.sprintf "deadline during %s" phase
  | Fault_stop { phase; _ } -> Printf.sprintf "injected fault during %s" phase

exception Stop_run of stop_reason

let checkpoint t =
  { ck_deletions = t.deletions;
    ck_del_hash = t.del_hash;
    ck_live =
      Array.map
        (fun ns ->
          List.map (fun (e : Ugraph.edge) -> e.Ugraph.id)
            (Ugraph.live_edges ns.rg.Routing_graph.graph))
        t.nets }

let checkpoint_make ~deletions ~del_hash ~live =
  { ck_deletions = deletions; ck_del_hash = del_hash; ck_live = Array.copy live }

let checkpoint_stats ck = (ck.ck_deletions, ck.ck_del_hash)
let checkpoint_live ck = Array.copy ck.ck_live

(* Bring every net back to the checkpointed state, following the proven
   reroute pattern: rebuild the full candidate graph, then delete
   everything outside the recorded live set.  The deletion counters are
   then rewound to the checkpoint's, so a restored run continues the
   same deletion-hash chain as the run the checkpoint was taken from.
   No-op when the state already matches the checkpoint. *)
let restore t ck =
  if t.deletions <> ck.ck_deletions || t.del_hash <> ck.ck_del_hash then begin
    let netlist = Floorplan.netlist t.fp in
    Array.iter (fun ns -> unregister_net_density t ns) t.nets;
    for n = 0 to Array.length t.nets - 1 do
      init_net_state t n
    done;
    for net = 0 to Array.length t.nets - 1 do
      match (Netlist.net netlist net).Netlist.diff_partner with
      | Some p when p > net -> recognize_pair t net p
      | Some _ | None -> ()
    done;
    (match t.sta with Some sta -> Sta.refresh sta | None -> ());
    for n = 0 to Array.length t.nets - 1 do
      let keep = Hashtbl.create 64 in
      List.iter (fun eid -> Hashtbl.replace keep eid ()) ck.ck_live.(n);
      let ns = t.nets.(n) in
      let rec loop () =
        match List.find_opt (fun eid -> not (Hashtbl.mem keep eid)) ns.candidates with
        | Some eid ->
          delete_cascade t n eid ~mirror:false;
          loop ()
        | None -> ()
      in
      loop ()
    done;
    t.deletions <- ck.ck_deletions;
    t.del_hash <- ck.ck_del_hash
  end

(* Phase wrapper: a "phase:<name>" trace span plus the duration gauge
   (last execution) and the cumulative per-phase counter.  The gauge is
   set even when the phase aborts (deadline, fault): the time was spent
   either way. *)
let timed_phase phase f =
  if not (observing ()) then f ()
  else begin
    let t0 = Obs.now_s () in
    Fun.protect
      ~finally:(fun () ->
        let d = Obs.now_s () -. t0 in
        Obs.Metrics.set m_phase_dur ~labels:[ ("phase", phase) ] d;
        Obs.Metrics.inc m_phase_total ~labels:[ ("phase", phase) ] ~by:d)
      (fun () -> Obs.Trace.span ("phase:" ^ phase) f)
  end

let run ?(budget = Budget.unlimited) ?(completed = []) t =
  let already_done = completed in
  let skip phase = List.mem phase already_done in
  let completed = ref (List.rev already_done) in
  (* On a resume the current state *is* the last durable checkpoint, so
     a mid-phase stop in the continued run rolls back to it. *)
  let last_ck = ref (match already_done with [] -> None | _ :: _ -> Some (checkpoint t)) in
  let rolled_back = ref false in
  let mark phase =
    completed := phase :: !completed;
    Flight.record Flight.k_phase ~a:(Flight.phase_code phase) ~b:1 ~c:0 ~d:t.deletions;
    emit_quality t ~kind:Q_phase ~phase ~pass:0;
    let ck = checkpoint t in
    last_ck := Some ck;
    match t.on_checkpoint with
    | None -> ()
    | Some hook -> hook ~phase ~completed:(List.rev !completed) ck
  in
  let guard ~phase () =
    if observing () then (
      match Budget.remaining_ms budget with
      | Some ms -> Obs.Metrics.set m_headroom ms
      | None -> ());
    if Fault.trip "router.improve" then
      raise
        (Stop_run
           (Fault_stop
              { phase;
                error = Bgr_error.make ~phase Bgr_error.Fault "injected fault at site router.improve"
              }));
    if Budget.expired budget then raise (Stop_run (Deadline { phase }))
  in
  let saved_mode = t.area_mode in
  let stopped_because =
    try
      (* The initial routing always runs to completion: it is what
         guarantees a verifiable spanning tree for every net, so the
         budget is only consulted from the first checkpoint on. *)
      if not (skip "initial_route") then begin
        Flight.record Flight.k_phase ~a:(Flight.phase_code "initial_route") ~b:0 ~c:0
          ~d:t.deletions;
        timed_phase "initial_route" (fun () -> initial_route t);
        mark "initial_route"
      end;
      let limit d = Budget.phase_pass_limit budget ~default:d in
      let improvement phase default_limit f =
        if not (skip phase) then begin
          t.cur_phase <- phase;
          Flight.record Flight.k_phase ~a:(Flight.phase_code phase) ~b:0 ~c:0 ~d:t.deletions;
          guard ~phase ();
          let r =
            timed_phase phase (fun () ->
                let r = f ~guard:(guard ~phase) ~max_passes:(limit default_limit) t in
                Obs.Trace.add_attr "reroutes" (Obs.Trace.Int r.reroutes);
                Obs.Trace.add_attr "passes" (Obs.Trace.Int r.passes);
                r)
          in
          trace t "%s: %d reroutes in %d passes" phase r.reroutes r.passes;
          mark phase
        end
      in
      improvement "recover_violations" t.opts.max_recover_passes (fun ~guard ~max_passes t ->
          recover_violations ~guard ~max_passes t);
      improvement "improve_delay" t.opts.max_delay_passes (fun ~guard ~max_passes t ->
          improve_delay ~guard ~max_passes t);
      improvement "improve_area" t.opts.max_area_passes (fun ~guard ~max_passes t ->
          improve_area ~guard ~max_passes t);
      (* The area phase may lengthen critical nets inside still-met
         constraints; a final timing cleanup (an extra turn of the
         Sec. 3.5 rip-up loops) undoes that at negligible area cost. *)
      (match t.sta with
      | None -> ()
      | Some _ ->
        improvement "final_recovery" t.opts.max_recover_passes (fun ~guard ~max_passes t ->
            recover_violations ~guard ~max_passes t);
        improvement "final_delay" t.opts.max_delay_passes (fun ~guard ~max_passes t ->
            improve_delay ~guard ~max_passes t));
      Finished
    with Stop_run reason ->
      (match reason with
      | Deadline { phase } ->
        Flight.record Flight.k_stop ~a:(Flight.phase_code phase) ~b:1 ~c:0 ~d:t.deletions
      | Fault_stop { phase; _ } ->
        Flight.record Flight.k_stop ~a:(Flight.phase_code phase) ~b:2 ~c:0 ~d:t.deletions
      | Finished -> ());
      set_area_mode t saved_mode;
      (match !last_ck with
      | Some ck when t.deletions <> ck.ck_deletions ->
        trace t "%s: rolling back to the last checkpoint" (stop_reason_string reason);
        if observing () then Obs.Metrics.inc m_rollbacks;
        restore t ck;
        rolled_back := true
      | Some _ | None -> ());
      reason
  in
  { completed_phases = List.rev !completed; stopped_because; rolled_back = !rolled_back }

(* --- results ----------------------------------------------------------- *)

let tree_edges t n = t.nets.(n).tree
let routing_graph t n = t.nets.(n).rg

let net_length_um t n =
  let ns = t.nets.(n) in
  Routing_graph.geometric_length_um ns.rg ~edge_ids:ns.tree

let total_length_mm t =
  let total = ref 0.0 in
  Array.iteri (fun n _ -> total := !total +. net_length_um t n) t.nets;
  Dims.mm_of_um !total

let wire_caps t = Array.map (fun ns -> ns.cl_ff) t.nets

(* --- audit/repair access --------------------------------------------- *)

let mirrored t n = Array.length t.nets.(n).partner_map > 0
let partner_map_copy t n = Array.copy t.nets.(n).partner_map

let drop_pair_recognition t n =
  t.nets.(n).partner_map <- [||];
  match (Netlist.net (Floorplan.netlist t.fp) n).Netlist.diff_partner with
  | Some p -> t.nets.(p).partner_map <- [||]
  | None -> ()

(* Rebuild every piece of derived state — bridge sets, candidate lists,
   density charts, tentative trees, wire caps and timing weights — from
   the primal live graphs, which are the only source of truth after a
   resume or a detected corruption.  Primal damage (a disconnected net)
   is left alone: there is nothing to rebuild it from. *)
let rebuild_derived t =
  Density.clear t.dens;
  Array.iter
    (fun ns ->
      let g = ns.rg.Routing_graph.graph in
      ns.bridge <- Bridges.bridges g;
      ns.candidates <-
        List.rev
          (Ugraph.fold_edges g
             (fun acc (e : Ugraph.edge) ->
               if ns.bridge.(e.Ugraph.id) then acc else e.Ugraph.id :: acc)
             []);
      ns.rev <- ns.rev + 1;
      register_net_density t ns)
    t.nets;
  Array.iter
    (fun ns ->
      match Routing_graph.tentative_tree ns.rg with
      | None -> ()
      | Some edges ->
        ns.tree <- edges;
        let set = Array.make (Ugraph.n_edges_total ns.rg.Routing_graph.graph) false in
        List.iter (fun e -> set.(e) <- true) edges;
        ns.tree_set <- set;
        ns.cl_ff <- current_cl t ns;
        apply_net_timing t ns)
    t.nets;
  match t.sta with Some sta -> Sta.refresh sta | None -> ()

type chan_pin = { cp_x : int; cp_from_top : bool }

type chan_net = {
  cn_net : int;
  cn_lo : int;
  cn_hi : int;
  cn_pins : chan_pin list;
  cn_pitch : int;
}

let channel_nets t ~channel =
  let netlist = Floorplan.netlist t.fp in
  let out = ref [] in
  let on_net n ns =
    let lo = ref max_int and hi = ref min_int in
    let pins = ref [] in
    let touch x =
      if x < !lo then lo := x;
      if x > !hi then hi := x
    in
    let add_pin x from_top =
      touch x;
      pins := { cp_x = x; cp_from_top = from_top } :: !pins
    in
    let on_edge eid =
      match Routing_graph.edge_kind ns.rg eid with
      | Routing_graph.Trunk { channel = c; span } when c = channel ->
        touch (Interval.lo span);
        touch (Interval.hi span)
      | Routing_graph.Branch { row; x } ->
        (* Row r sits above channel r: its feedthrough enters channel r
           from the top, channel r+1 from the bottom. *)
        if row = channel then add_pin x true
        else if row + 1 = channel then add_pin x false
      | Routing_graph.Correspondence p when p.Routing_graph.channel = channel -> begin
        (* Find which terminal this correspondence serves. *)
        let e = Ugraph.edge ns.rg.Routing_graph.graph eid in
        let term_vertex =
          match ns.rg.Routing_graph.vkind.(e.Ugraph.u) with
          | Routing_graph.Terminal _ -> e.Ugraph.u
          | Routing_graph.Position _ -> e.Ugraph.v
        in
        match ns.rg.Routing_graph.vkind.(term_vertex) with
        | Routing_graph.Terminal (Netlist.Pin pin) ->
          let row = Floorplan.terminal_row t.fp pin in
          add_pin p.Routing_graph.x (row = channel)
        | Routing_graph.Terminal (Netlist.Port q) ->
          let from_top =
            match (Netlist.port netlist q).Netlist.side with
            | Netlist.North -> true
            | Netlist.South -> false
          in
          add_pin p.Routing_graph.x from_top
        | Routing_graph.Position _ -> assert false
      end
      | Routing_graph.Trunk _ | Routing_graph.Correspondence _ -> ()
    in
    List.iter on_edge ns.tree;
    if !pins <> [] || !lo <= !hi then
      out :=
        { cn_net = n;
          cn_lo = !lo;
          cn_hi = !hi;
          cn_pins = List.rev !pins;
          cn_pitch = ns.rg.Routing_graph.pitch }
        :: !out
  in
  Array.iteri on_net t.nets;
  List.rev !out
