(** Critical-path-delay lower bounds (Table 3).

    "The lower bounds could be obtained by assuming the wire length for
    each net to be half the perimeter of the rectangle containing the
    net terminals." — every net's capacitance is set to its
    half-perimeter estimate, the worst critical delay is read off, and
    the previous capacitances are restored. *)

val hpwl_cap : ?channel_tracks:int array -> Floorplan.t -> int -> float
(** Half-perimeter wiring-capacitance estimate of a net (fF).  When
    [channel_tracks] is given, the terminal rectangle is measured in
    physical coordinates — vertical spans include the routed channel
    heights, as they do in the paper's post-layout terminal rectangles.
    Without it, vertical spans count cell rows only. *)

val critical_delay : ?channel_tracks:int array -> Sta.t -> Floorplan.t -> float
(** Worst critical-path delay over all constraints with HPWL wiring. *)

val per_constraint : ?channel_tracks:int array -> Sta.t -> Floorplan.t -> float array
(** HPWL-wiring critical delay of each constraint. *)

val gap_percent : delay_ps:float -> bound_ps:float -> float
(** [(delay - bound) / bound * 100] — the "Difference (%)" column. *)
