type position = { channel : int; x : int }
type vertex_kind = Terminal of Netlist.endpoint | Position of position

type edge_kind =
  | Trunk of { channel : int; span : Interval.t }
  | Branch of { row : int; x : int }
  | Correspondence of position

type t = {
  net_id : int;
  pitch : int;
  graph : Ugraph.t;
  mutable vkind : vertex_kind array;
  mutable ekind : edge_kind array;
  mutable geo_um : float array;
  terminals : int list;
  driver : int;
  cap_per_um : float;
}

exception Unroutable of string

let edge_kind t eid = t.ekind.(eid)

let is_trunk t eid = match t.ekind.(eid) with Trunk _ -> true | Branch _ | Correspondence _ -> false

let density_locus t eid =
  match t.ekind.(eid) with
  | Trunk { channel; span } -> (channel, span)
  | Branch { row; x } -> (row, Interval.point x)
  | Correspondence { channel; x } -> (channel, Interval.point x)

(* Growable-array helpers: vkind/ekind are appended in step with the
   graph's vertex/edge allocation. *)
let push_vkind t k =
  let n = Ugraph.n_vertices t.graph in
  if n > Array.length t.vkind then begin
    let bigger = Array.make (max 8 (2 * n)) k in
    Array.blit t.vkind 0 bigger 0 (Array.length t.vkind);
    t.vkind <- bigger
  end;
  t.vkind.(n - 1) <- k

let push_ekind t k ~geo =
  let n = Ugraph.n_edges_total t.graph in
  if n > Array.length t.ekind then begin
    let bigger = Array.make (max 8 (2 * n)) k in
    Array.blit t.ekind 0 bigger 0 (Array.length t.ekind);
    t.ekind <- bigger;
    let bigger_geo = Array.make (max 8 (2 * n)) 0.0 in
    Array.blit t.geo_um 0 bigger_geo 0 (Array.length t.geo_um);
    t.geo_um <- bigger_geo
  end;
  t.ekind.(n - 1) <- k;
  t.geo_um.(n - 1) <- geo

let build ?(jog_cost = fun _ -> 0.0) fp assignment ~net =
  let netlist = Floorplan.netlist fp in
  let n = Netlist.net netlist net in
  let dims = Floorplan.dims fp in
  let graph = Ugraph.create ~vertex_hint:16 ~edge_hint:32 () in
  let t =
    { net_id = net;
      pitch = n.Netlist.pitch;
      graph;
      vkind = Array.make 8 (Position { channel = -1; x = -1 });
      ekind = Array.make 8 (Correspondence { channel = -1; x = -1 });
      geo_um = Array.make 8 0.0;
      terminals = [];
      driver = -1;
      cap_per_um = Dims.cap_per_um_at dims ~width:(float_of_int n.Netlist.pitch) }
  in
  let positions = Hashtbl.create 32 in
  let position_vertex (p : position) =
    match Hashtbl.find_opt positions (p.channel, p.x) with
    | Some v -> v
    | None ->
      let v = Ugraph.add_vertex graph in
      push_vkind t (Position p);
      Hashtbl.replace positions (p.channel, p.x) v;
      v
  in
  let add_terminal ep =
    let v = Ugraph.add_vertex graph in
    push_vkind t (Terminal ep);
    let cols =
      match ep with
      | Netlist.Pin _ -> [ Floorplan.endpoint_column fp ep ]
      | Netlist.Port q -> Floorplan.port_candidates fp q
    in
    let link channel x =
      let p = { channel; x } in
      let pv = position_vertex p in
      ignore (Ugraph.add_edge graph ~u:v ~v:pv ~weight:(jog_cost channel));
      push_ekind t (Correspondence p) ~geo:0.0
    in
    List.iter
      (fun channel -> List.iter (fun x -> link channel x) cols)
      (Floorplan.endpoint_channels fp ep);
    v
  in
  let endpoints = n.Netlist.driver :: n.Netlist.sinks in
  let terminal_vertices = List.map add_terminal endpoints in
  let driver = List.hd terminal_vertices in
  (* Branch edges for every granted feedthrough group (one crossing per
     row; a multi-pitch group is represented at its leftmost column). *)
  let add_branch (row, slots) =
    match slots with
    | [] -> ()
    | (s : Floorplan.slot) :: _ ->
      let x = s.Floorplan.slot_x in
      let below = position_vertex { channel = row; x } in
      let above = position_vertex { channel = row + 1; x } in
      let weight = dims.Dims.row_height_um +. jog_cost row +. jog_cost (row + 1) in
      ignore (Ugraph.add_edge graph ~u:below ~v:above ~weight);
      push_ekind t (Branch { row; x }) ~geo:dims.Dims.row_height_um
  in
  List.iter add_branch (Feedthrough.slots_of_net assignment net);
  (* Trunk edges between consecutive positions of each channel. *)
  let by_channel = Hashtbl.create 8 in
  Hashtbl.iter
    (fun (channel, x) v ->
      Hashtbl.replace by_channel channel ((x, v) :: Option.value (Hashtbl.find_opt by_channel channel) ~default:[]))
    positions;
  let add_trunks channel points =
    let sorted = List.sort (fun (x1, _) (x2, _) -> Int.compare x1 x2) points in
    let rec link = function
      | (x1, v1) :: ((x2, v2) :: _ as rest) ->
        (* A blocked channel span gets no trunk: the route must detour
           through another channel (paper input "blockages on the
           routing layers"). *)
        if not (Floorplan.trunk_blocked fp ~channel ~x1 ~x2) then begin
          let weight = Dims.h_um dims (x2 - x1) in
          ignore (Ugraph.add_edge graph ~u:v1 ~v:v2 ~weight);
          (* Half-open span [x1, x2): chained trunks of one net never
             double-count a column in the density charts. *)
          push_ekind t (Trunk { channel; span = Interval.span x1 x2 }) ~geo:weight
        end;
        link rest
      | [] | [ _ ] -> ()
    in
    link sorted
  in
  Hashtbl.iter add_trunks by_channel;
  let t = { t with terminals = terminal_vertices; driver } in
  if not (Ugraph.connected_within graph terminal_vertices) then
    raise
      (Unroutable
         (Printf.sprintf "net %d (%s): candidate graph does not connect its terminals" net
            n.Netlist.net_name));
  t

let prune_dangling t ~on_delete =
  let is_terminal v = match t.vkind.(v) with Terminal _ -> true | Position _ -> false in
  (* Worklist of vertices to examine; a deletion re-enqueues the other
     endpoint. *)
  let queue = Queue.create () in
  for v = 0 to Ugraph.n_vertices t.graph - 1 do
    Queue.add v queue
  done;
  while not (Queue.is_empty queue) do
    let v = Queue.take queue in
    if not (is_terminal v) && Ugraph.degree t.graph v = 1 then begin
      let doomed = ref None in
      Ugraph.iter_incident t.graph v (fun e -> doomed := Some e);
      match !doomed with
      | None -> ()
      | Some e ->
        Ugraph.delete_edge t.graph e.Ugraph.id;
        on_delete e;
        Queue.add (Ugraph.other_endpoint e v) queue
    end
  done

let tree_capacitance t ~edge_ids =
  let um = Dijkstra.edges_length t.graph edge_ids in
  um *. t.cap_per_um

let geometric_length_um t ~edge_ids =
  List.fold_left (fun acc eid -> acc +. t.geo_um.(eid)) 0.0 edge_ids

let tentative_tree ?exclude_edge ?cost t =
  let targets = List.filter (fun v -> v <> t.driver) t.terminals in
  match exclude_edge with
  | None -> Dijkstra.tentative_tree ?cost t.graph ~source:t.driver ~targets
  | Some e -> Dijkstra.tentative_tree ~exclude_edge:e ?cost t.graph ~source:t.driver ~targets

let pp fp ppf t =
  let netlist = Floorplan.netlist fp in
  Format.fprintf ppf "@[<v>G_r(net %d), %d vertices, %d live edges@," t.net_id
    (Ugraph.n_vertices t.graph) (Ugraph.n_edges_live t.graph);
  Ugraph.iter_edges t.graph (fun e ->
      let describe v =
        match t.vkind.(v) with
        | Terminal ep -> Format.asprintf "T(%a)" (Netlist.pp_endpoint netlist) ep
        | Position p -> Printf.sprintf "P(c%d,x%d)" p.channel p.x
      in
      let kind =
        match t.ekind.(e.Ugraph.id) with
        | Trunk { channel; span } -> Format.asprintf "trunk c%d %a" channel Interval.pp span
        | Branch { row; x } -> Printf.sprintf "branch row%d x%d" row x
        | Correspondence _ -> "corr"
      in
      Format.fprintf ppf "  e%d: %s -- %s  (%s, %.1f um)@," e.Ugraph.id (describe e.Ugraph.u)
        (describe e.Ugraph.v) kind e.Ugraph.weight);
  Format.fprintf ppf "@]"
