(** Channel density charts and the eight density parameters of Sec. 3.3
    (Fig. 4).

    Per channel [c] and column [x] the router tracks

    - [d_M(c,x)]: pitch-weighted count of {e all} live trunk edges
      covering [x] — an upper bound on the local density;
    - [d_m(c,x)]: the same count restricted to {e bridge} trunks, whose
      deletion is impossible — a lower bound that "cannot be
      recovered".

    Channel aggregates [C_M, NC_M, C_m, NC_m] are cached and
    recomputed lazily; every mutation bumps the channel's revision so
    per-edge caches elsewhere can invalidate.  Per-edge interval
    parameters [D_M, ND_M, D_m, ND_m] take the maximum (and the count
    of columns attaining it) of the chart over the edge's interval. *)

type t

val create : n_channels:int -> width:int -> t

val width : t -> int

val n_channels : t -> int

val add_trunk : t -> channel:int -> span:Interval.t -> w:int -> bridge:bool -> unit
(** Record a live trunk of pitch width [w]; [bridge] adds it to the
    [d_m] chart as well. *)

val remove_trunk : t -> channel:int -> span:Interval.t -> w:int -> bridge:bool -> unit

val set_bridge : t -> channel:int -> span:Interval.t -> w:int -> bool -> unit
(** Flip only the bridge ([d_m]) contribution of an already-recorded
    trunk. *)

val clear : t -> unit
(** Zero both charts of every channel (bumping each revision) — the
    first step of rebuilding the density state from the net graphs
    ({!Router.rebuild_derived} / [Verify.audit ~repair]). *)

val cM : t -> channel:int -> int
(** Maximum of [d_M] over the channel — the track upper bound. *)

val ncM : t -> channel:int -> int
(** Number of columns attaining [cM]. *)

val cm : t -> channel:int -> int

val ncm : t -> channel:int -> int

val revision : t -> channel:int -> int

val edge_params : t -> channel:int -> span:Interval.t -> int * int * int * int
(** [(D_M, ND_M, D_m, ND_m)] over the interval: the chart maxima
    restricted to the span and the counts of span columns attaining
    them.  All zero on an empty span. *)

val dM_at : t -> channel:int -> x:int -> int

val dm_at : t -> channel:int -> x:int -> int

val tracks_estimate : t -> int array
(** [C_M] per channel — the channel-height estimate before detailed
    routing. *)

val chart : t -> channel:int -> (int * int) array
(** [(d_M, d_m)] per column, for Fig.-4-style rendering. *)
