let column_tolerance = 4

(* Edge signature for matching incident edge lists: kind tag, channel,
   then column for deterministic ordering inside each graph. *)
let signature rg (e : Ugraph.edge) =
  match Routing_graph.edge_kind rg e.Ugraph.id with
  | Routing_graph.Trunk { channel; span } -> (0, channel, Interval.lo span)
  | Routing_graph.Branch { row; x } -> (1, row, x)
  | Routing_graph.Correspondence p -> (2, p.Routing_graph.channel, p.Routing_graph.x)

let compatible rg_a rg_b (ea : Ugraph.edge) (eb : Ugraph.edge) =
  let ka, ca, xa = signature rg_a ea in
  let kb, cb, xb = signature rg_b eb in
  ka = kb && ca = cb && abs (xa - xb) <= column_tolerance

let recognize (a : Routing_graph.t) (b : Routing_graph.t) =
  let ga = a.Routing_graph.graph and gb = b.Routing_graph.graph in
  let exception Mismatch in
  let vmap = Array.make (Ugraph.n_vertices ga) (-1) in
  let vmap_rev = Array.make (Ugraph.n_vertices gb) (-1) in
  let emap = Array.make (Ugraph.n_edges_total ga) (-1) in
  let queue = Queue.create () in
  let pair_vertices va vb =
    if vmap.(va) = -1 && vmap_rev.(vb) = -1 then begin
      vmap.(va) <- vb;
      vmap_rev.(vb) <- va;
      Queue.add (va, vb) queue
    end
    else if vmap.(va) <> vb then raise Mismatch
  in
  let incident g rg v =
    let edges = Ugraph.fold_incident g v (fun acc e -> e :: acc) [] in
    List.sort (fun e1 e2 -> compare (signature rg e1) (signature rg e2)) edges
  in
  match
    pair_vertices a.Routing_graph.driver b.Routing_graph.driver;
    while not (Queue.is_empty queue) do
      let va, vb = Queue.take queue in
      let ea = incident ga a va and eb = incident gb b vb in
      if List.length ea <> List.length eb then raise Mismatch;
      List.iter2
        (fun (e1 : Ugraph.edge) (e2 : Ugraph.edge) ->
          if not (compatible a b e1 e2) then raise Mismatch;
          if emap.(e1.Ugraph.id) = -1 then begin
            emap.(e1.Ugraph.id) <- e2.Ugraph.id;
            pair_vertices (Ugraph.other_endpoint e1 va) (Ugraph.other_endpoint e2 vb)
          end
          else if emap.(e1.Ugraph.id) <> e2.Ugraph.id then raise Mismatch)
        ea eb
    done;
    (* Every live edge of both graphs must be covered. *)
    Ugraph.iter_edges ga (fun e -> if emap.(e.Ugraph.id) = -1 then raise Mismatch);
    let covered = Array.fold_left (fun acc e2 -> if e2 >= 0 then acc + 1 else acc) 0 emap in
    if covered <> Ugraph.n_edges_live gb then raise Mismatch
  with
  | () -> Some emap
  | exception Mismatch -> None

(* Audit-time consistency check of an established recognition: the map
   must send every live edge of [a] to a distinct live edge of [b] of
   homologous kind, covering all of [b].  Returns human-readable
   problems (empty = consistent). *)
let mirror_problems (a : Routing_graph.t) (b : Routing_graph.t) ~map =
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let na = a.Routing_graph.net_id and nb = b.Routing_graph.net_id in
  let ga = a.Routing_graph.graph and gb = b.Routing_graph.graph in
  let seen = Hashtbl.create 64 in
  Ugraph.iter_edges ga (fun e ->
      let id = e.Ugraph.id in
      let img = if id < Array.length map then map.(id) else -1 in
      if img < 0 then add "pair %d/%d: live edge %d of net %d has no partner image" na nb id na
      else if img >= Ugraph.n_edges_total gb || not (Ugraph.is_live gb img) then
        add "pair %d/%d: edge %d of net %d maps to dead partner edge %d" na nb id na img
      else begin
        if Hashtbl.mem seen img then
          add "pair %d/%d: partner edge %d is the image of two edges" na nb img
        else Hashtbl.replace seen img ();
        let homologous =
          match (Routing_graph.edge_kind a id, Routing_graph.edge_kind b img) with
          | Routing_graph.Trunk { channel = c1; _ }, Routing_graph.Trunk { channel = c2; _ } ->
            c1 = c2
          | Routing_graph.Branch { row = r1; _ }, Routing_graph.Branch { row = r2; _ } -> r1 = r2
          | Routing_graph.Correspondence p1, Routing_graph.Correspondence p2 ->
            p1.Routing_graph.channel = p2.Routing_graph.channel
          | _ -> false
        in
        if not homologous then
          add "pair %d/%d: edge %d of net %d and its image %d differ in kind or channel" na nb id
            na img
      end);
  if Ugraph.n_edges_live ga <> Ugraph.n_edges_live gb then
    add "pair %d/%d: live edge counts differ (%d vs %d)" na nb (Ugraph.n_edges_live ga)
      (Ugraph.n_edges_live gb);
  List.rev !problems
