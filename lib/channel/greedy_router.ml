let overhang_columns = 16

type track = {
  id : int;
  mutable owner : int;  (* net id, -1 when free *)
  mutable since : int;  (* column where the current ownership began *)
  mutable free_from : int;  (* first column a new owner may claim *)
  locked : bool;  (* multi-pitch reservation: never collapsed/released *)
}

type endpoint = Top_edge | Bottom_edge | On of int  (* track id *)

type vertical = { v_net : int; v_a : endpoint; v_b : endpoint }

type state = {
  mutable tracks : track list;  (* top to bottom *)
  mutable next_id : int;
  mutable pieces : (int * int * int * int) list;  (* net, track id, x0, x1 *)
  mutable events : (int * endpoint * endpoint) list;  (* vertical runs, for length accounting *)
  mutable doglegs : int;
  mutable violations : int;
  preoccupied : (int, vertical list) Hashtbl.t;  (* column -> wide-net verticals *)
}

let new_track st ~at_top ~owner ~since ~locked =
  let t = { id = st.next_id; owner; since; free_from = since; locked } in
  st.next_id <- st.next_id + 1;
  st.tracks <- (if at_top then t :: st.tracks else st.tracks @ [ t ]);
  t

let index_of st id =
  let rec go i = function
    | [] -> invalid_arg "Greedy_router: unknown track id"
    | t :: rest -> if t.id = id then i else go (i + 1) rest
  in
  go 0 st.tracks

(* Expand a vertical to an (inclusive) index range in the current
   order; edges sit just outside the track indices. *)
let range st (a, b) =
  let pos = function
    | Top_edge -> -1
    | Bottom_edge -> List.length st.tracks
    | On id -> index_of st id
  in
  let pa = pos a and pb = pos b in
  (min pa pb, max pa pb)

let overlaps (a_lo, a_hi) (b_lo, b_hi) = a_lo <= b_hi && b_lo <= a_hi

(* Verticals of the same net may merge; only foreign overlaps conflict. *)
let conflicts st column_verticals ~net span =
  List.exists
    (fun v -> v.v_net <> net && overlaps span (range st (v.v_a, v.v_b)))
    column_verticals

let add_vertical st column_verticals ~net a b =
  st.events <- (net, a, b) :: st.events;
  { v_net = net; v_a = a; v_b = b } :: column_verticals

let release st t ~x =
  st.pieces <- (t.owner, t.id, t.since, x) :: st.pieces;
  t.owner <- -1;
  t.free_from <- x + 1

(* Rule 1: bring a pin onto its net's nearest reachable track, claiming
   a free one when the net holds none; widen the channel when the
   column's verticals block every candidate. *)
let connect_pin st column_verticals ~net ~from_top ~x =
  let edge = if from_top then Top_edge else Bottom_edge in
  let ordered = if from_top then st.tracks else List.rev st.tracks in
  let rec scan = function
    | [] -> None
    | t :: rest ->
      let span = range st (edge, On t.id) in
      if conflicts st column_verticals ~net span then None (* deeper is a superset: give up *)
      else if t.owner = net && not t.locked then Some t
      else if t.owner = -1 && t.free_from <= x then begin
        t.owner <- net;
        t.since <- x;
        Some t
      end
      else scan rest
  in
  match scan ordered with
  | Some t -> add_vertical st column_verticals ~net edge (On t.id)
  | None ->
    let t = new_track st ~at_top:from_top ~owner:net ~since:x ~locked:false in
    add_vertical st column_verticals ~net edge (On t.id)

(* Rule 2: join a split net's two closest tracks when the vertical
   between them is free, releasing one track. *)
let try_collapse st column_verticals ~net ~x =
  let owned =
    List.filteri (fun _ t -> t.owner = net && not t.locked) st.tracks
  in
  match owned with
  | a :: b :: _ ->
    let span = range st (On a.id, On b.id) in
    if conflicts st column_verticals ~net span then column_verticals
    else begin
      st.doglegs <- st.doglegs + 1;
      let cv = add_vertical st column_verticals ~net (On a.id) (On b.id) in
      release st b ~x;
      cv
    end
  | [ _ ] | [] -> column_verticals

let route segs =
  let st =
    { tracks = [];
      next_id = 0;
      pieces = [];
      events = [];
      doglegs = 0;
      violations = 0;
      preoccupied = Hashtbl.create 16 }
  in
  let wide, thin = List.partition (fun s -> s.Channel_router.seg_width > 1) segs in
  (* Multi-pitch reservations: a contiguous group of locked tracks over
     the whole span, pins dropping to the group edge. *)
  List.iter
    (fun (s : Channel_router.seg) ->
      let group =
        List.init s.Channel_router.seg_width (fun _ ->
            new_track st ~at_top:false ~owner:s.Channel_router.seg_net
              ~since:s.Channel_router.seg_lo ~locked:true)
      in
      List.iter
        (fun (p : Channel_router.pin) ->
          let target = if p.Channel_router.pin_from_top then List.hd group else List.nth group (List.length group - 1) in
          let edge = if p.Channel_router.pin_from_top then Top_edge else Bottom_edge in
          st.events <- (s.Channel_router.seg_net, edge, On target.id) :: st.events;
          let v = { v_net = s.Channel_router.seg_net; v_a = edge; v_b = On target.id } in
          Hashtbl.replace st.preoccupied p.Channel_router.pin_x
            (v :: Option.value (Hashtbl.find_opt st.preoccupied p.Channel_router.pin_x) ~default:[]))
        s.Channel_router.seg_pins;
      List.iter
        (fun t ->
          st.pieces <-
            (s.Channel_router.seg_net, t.id, s.Channel_router.seg_lo, s.Channel_router.seg_hi)
            :: st.pieces)
        group)
    wide;
  (* Column scan bounds, per-column pin table, and per-net span
     bounds: a net must own a track over its whole [lo, hi] span (the
     trunk exists there even between pins). *)
  let pins_at = Hashtbl.create 64 in
  let starts_at = Hashtbl.create 16 in
  let span_end = Hashtbl.create 16 in
  let lo = ref max_int and hi = ref min_int in
  List.iter
    (fun (s : Channel_router.seg) ->
      lo := min !lo s.Channel_router.seg_lo;
      hi := max !hi s.Channel_router.seg_hi;
      Hashtbl.replace starts_at s.Channel_router.seg_lo
        (s.Channel_router.seg_net
        :: Option.value (Hashtbl.find_opt starts_at s.Channel_router.seg_lo) ~default:[]);
      Hashtbl.replace span_end s.Channel_router.seg_net s.Channel_router.seg_hi;
      List.iter
        (fun (p : Channel_router.pin) ->
          Hashtbl.replace pins_at p.Channel_router.pin_x
            ((s.Channel_router.seg_net, p.Channel_router.pin_from_top)
            :: Option.value (Hashtbl.find_opt pins_at p.Channel_router.pin_x) ~default:[]))
        s.Channel_router.seg_pins)
    thin;
  let active_nets () =
    List.filter_map (fun t -> if t.owner >= 0 && not t.locked then Some t.owner else None) st.tracks
    |> List.sort_uniq Int.compare
  in
  let process_column x ~with_pins =
    let column_verticals = ref (Option.value (Hashtbl.find_opt st.preoccupied x) ~default:[]) in
    if with_pins then begin
      (* Spans opening here claim a track even before their first pin:
         the trunk physically starts at the span edge. *)
      List.iter
        (fun net ->
          let owns = List.exists (fun t -> t.owner = net && not t.locked) st.tracks in
          if not owns then begin
            match List.find_opt (fun t -> t.owner = -1 && t.free_from <= x) st.tracks with
            | Some t ->
              t.owner <- net;
              t.since <- x
            | None -> ignore (new_track st ~at_top:true ~owner:net ~since:x ~locked:false)
          end)
        (Option.value (Hashtbl.find_opt starts_at x) ~default:[]);
      let pins =
        Option.value (Hashtbl.find_opt pins_at x) ~default:[]
        |> List.sort (fun (_, t1) (_, t2) -> Bool.compare t2 t1 (* top pins first *))
      in
      List.iter
        (fun (net, from_top) ->
          column_verticals := connect_pin st !column_verticals ~net ~from_top ~x)
        pins
    end;
    (* Collapse every split net once, then release finished nets. *)
    List.iter
      (fun net -> column_verticals := try_collapse st !column_verticals ~net ~x)
      (active_nets ());
    List.iter
      (fun t ->
        if t.owner >= 0 && not t.locked then begin
          let last = Option.value (Hashtbl.find_opt span_end t.owner) ~default:min_int in
          let still_split =
            List.length (List.filter (fun u -> u.owner = t.owner && not u.locked) st.tracks) > 1
          in
          if x >= last && not still_split then release st t ~x
        end)
      st.tracks
  in
  if !lo <= !hi then begin
    for x = !lo to !hi do
      process_column x ~with_pins:true
    done;
    (* Overhang: chase nets still split past the pin range. *)
    let x = ref !hi in
    while active_nets () <> [] && !x < !hi + overhang_columns do
      incr x;
      process_column !x ~with_pins:false
    done;
    (* Force-join whatever remains. *)
    List.iter
      (fun net ->
        st.violations <- st.violations + 1;
        let owned = List.filter (fun t -> t.owner = net && not t.locked) st.tracks in
        (match owned with
        | first :: rest ->
          List.iter
            (fun t ->
              st.events <- (net, On first.id, On t.id) :: st.events;
              release st t ~x:!x)
            rest;
          release st first ~x:!x
        | [] -> ()))
      (active_nets ())
  end;
  (* Assemble the shared result type: final track indices, pieces,
     vertical lengths. *)
  let order = Array.of_list st.tracks in
  let n_tracks = Array.length order in
  let final_index = Hashtbl.create 16 in
  Array.iteri (fun i t -> Hashtbl.replace final_index t.id i) order;
  let pieces =
    List.rev_map
      (fun (net, tid, x0, x1) ->
        { Channel_router.pc_net = net;
          pc_lo = x0;
          pc_hi = x1;
          pc_track = Hashtbl.find final_index tid;
          pc_width = 1 })
      st.pieces
  in
  let pos = function
    | Top_edge -> -0.5
    | Bottom_edge -> float_of_int n_tracks -. 0.5
    | On id -> float_of_int (Hashtbl.find final_index id)
  in
  let verticals = Hashtbl.create 16 in
  List.iter
    (fun (net, a, b) ->
      let len = abs_float (pos a -. pos b) in
      Hashtbl.replace verticals net (len +. Option.value (Hashtbl.find_opt verticals net) ~default:0.0))
    st.events;
  { Channel_router.tracks = n_tracks;
    pieces;
    doglegs = st.doglegs;
    violations = st.violations;
    net_vertical_tracks = Hashtbl.fold (fun net v acc -> (net, v) :: acc) verticals [] }
