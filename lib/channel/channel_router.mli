(** Detailed channel routing — the measurement substrate for Table 2.

    The paper obtains final critical-path delays "from routing lengths
    after channel routing in the same delay model" and chip area from
    the resulting channel heights.  This module implements the classic
    constrained left-edge algorithm: horizontal net segments are packed
    onto tracks top-down subject to the vertical constraint graph (a
    net with a pin from the top row and a net with a pin from the
    bottom row at the same column must stack in that order); cyclic or
    blocking constraints are broken by dogleg splits.  Multi-pitch nets
    occupy [pitch] adjacent tracks (Sec. 4.2).

    Track 0 is the topmost track of the channel. *)

type pin = { pin_x : int; pin_from_top : bool }

type seg = {
  seg_net : int;  (** caller's net id (opaque here) *)
  seg_lo : int;  (** leftmost column, closed *)
  seg_hi : int;  (** rightmost column, closed *)
  seg_pins : pin list;
  seg_width : int;  (** tracks occupied (pitch) *)
}

type piece = {
  pc_net : int;
  pc_lo : int;
  pc_hi : int;
  pc_track : int;  (** top track of the piece *)
  pc_width : int;
}

type result = {
  tracks : int;  (** channel height in tracks *)
  pieces : piece list;
  doglegs : int;  (** splits introduced *)
  violations : int;  (** vertical constraints force-broken (should be 0) *)
  net_vertical_tracks : (int * float) list;
      (** per net: vertical wiring inside the channel, in track units —
          each pin descends from its channel edge to its piece's track
          and each dogleg jogs between its two pieces' tracks *)
}

val route : ?pin_bias:bool -> seg list -> result
(** Route one channel.  Pin-free degenerate segments (single points)
    are still given a track so their vertical connection exists.

    With [pin_bias] (default false), candidates for early (upper)
    tracks are ordered so nets pinned mostly from the top row fill the
    top of the channel and bottom-heavy nets sink — shortening the
    vertical pin jogs at identical track counts (an extension beyond
    the paper; ablation A8 quantifies it). *)

val vertical_um : track_um:float -> result -> float
(** Total vertical wiring inside the channel, micrometres. *)

val net_vertical_um : track_um:float -> result -> (int * float) list
(** [vertical_um] broken down per net id. *)

val check : seg list -> result -> (string list, string list) Stdlib.result
(** Structural audit: every segment covered by its pieces, no two
    pieces overlap on a track, all pins inside their net's pieces.
    [Ok warnings] or [Error problems]. *)
