type pin = { pin_x : int; pin_from_top : bool }

type seg = {
  seg_net : int;
  seg_lo : int;
  seg_hi : int;
  seg_pins : pin list;
  seg_width : int;
}

type piece = {
  pc_net : int;
  pc_lo : int;
  pc_hi : int;
  pc_track : int;
  pc_width : int;
}

type result = {
  tracks : int;
  pieces : piece list;
  doglegs : int;
  violations : int;
  net_vertical_tracks : (int * float) list;
}

(* Working piece: a (possibly dogleg-split) horizontal fragment. *)
type work = {
  w_id : int;
  w_net : int;
  w_lo : int;
  w_hi : int;
  w_pins : pin list;
  w_width : int;
  mutable w_track : int;  (* -1 while unplaced *)
}

type junction = { j_left : int; j_right : int }  (* work ids of a dogleg pair *)

type state = {
  mutable works : work list;  (* all pieces, placed or not *)
  mutable next_id : int;
  mutable junctions : junction list;
  mutable ignored : (int * int) list;  (* force-broken VCG edges (above, below ids) *)
  mutable violations : int;
  occupancy : (int, (int * int) list) Hashtbl.t;  (* track -> closed intervals *)
}

let overlap (a_lo, a_hi) (b_lo, b_hi) = a_lo <= b_hi && b_lo <= a_hi

let track_free st ~track ~lo ~hi =
  let taken = Option.value (Hashtbl.find_opt st.occupancy track) ~default:[] in
  not (List.exists (overlap (lo, hi)) taken)

let reserve st ~track ~lo ~hi =
  let taken = Option.value (Hashtbl.find_opt st.occupancy track) ~default:[] in
  Hashtbl.replace st.occupancy track ((lo, hi) :: taken)

(* Vertical constraint edges among unplaced pieces: at each column, the
   piece pinned from the top must lie above the piece pinned from the
   bottom.  Conflicting same-side claims at one column are counted as
   violations once, at routing end via [check]. *)
let vcg_edges st =
  let tops = Hashtbl.create 64 and bottoms = Hashtbl.create 64 in
  let note w =
    let on_pin p =
      let table = if p.pin_from_top then tops else bottoms in
      if not (Hashtbl.mem table p.pin_x) then Hashtbl.add table p.pin_x w
    in
    List.iter on_pin w.w_pins
  in
  List.iter note st.works;
  let edges = ref [] in
  Hashtbl.iter
    (fun x (above : work) ->
      match Hashtbl.find_opt bottoms x with
      | Some below when below.w_net <> above.w_net ->
        if not (List.mem (above.w_id, below.w_id) st.ignored) then
          edges := (above, below) :: !edges
      | Some _ | None -> ())
    tops;
  !edges

let unplaced st = List.filter (fun w -> w.w_track < 0) st.works

(* Pieces whose every VCG predecessor is already placed wholly above
   the given track. *)
let eligible st ~track =
  let edges = vcg_edges st in
  let blocked w =
    List.exists
      (fun (above, below) ->
        below.w_id = w.w_id && (above.w_track < 0 || above.w_track + above.w_width > track))
      edges
  in
  List.filter (fun w -> not (blocked w)) (unplaced st)

let place_on_track st ~track =
  let candidates = List.sort (fun a b -> compare (a.w_lo, a.w_id) (b.w_lo, b.w_id)) (eligible st ~track) in
  let placed_any = ref false in
  let try_place w =
    let free = ref true in
    for k = 0 to w.w_width - 1 do
      if not (track_free st ~track:(track + k) ~lo:w.w_lo ~hi:w.w_hi) then free := false
    done;
    if !free then begin
      for k = 0 to w.w_width - 1 do
        reserve st ~track:(track + k) ~lo:w.w_lo ~hi:w.w_hi
      done;
      w.w_track <- track;
      placed_any := true
    end
  in
  List.iter try_place candidates;
  !placed_any

(* Find one VCG cycle among unplaced pieces (DFS); [] when acyclic. *)
let find_cycle st =
  let edges = vcg_edges st in
  let succ w = List.filter_map (fun (a, b) -> if a.w_id = w.w_id && b.w_track < 0 then Some b else None) edges in
  let state = Hashtbl.create 16 in
  (* 0 = visiting, 1 = done *)
  let exception Found of work list in
  let rec dfs path w =
    match Hashtbl.find_opt state w.w_id with
    | Some 1 -> ()
    | Some _ ->
      (* back edge: extract the cycle from the path *)
      let rec cut acc = function
        | [] -> acc
        | x :: rest -> if x.w_id = w.w_id then x :: acc else cut (x :: acc) rest
      in
      raise (Found (cut [] path))
    | None ->
      Hashtbl.add state w.w_id 0;
      List.iter (dfs (w :: path)) (succ w);
      Hashtbl.replace state w.w_id 1
  in
  match List.iter (fun w -> if not (Hashtbl.mem state w.w_id) then dfs [] w) (unplaced st) with
  | () -> []
  | exception Found cycle -> cycle

(* Columns of a piece that participate in unresolved VCG constraints. *)
let constraint_columns st w =
  let edges = vcg_edges st in
  let involves x =
    List.exists
      (fun (a, b) ->
        (a.w_id = w.w_id || b.w_id = w.w_id)
        && List.exists (fun p -> p.pin_x = x) (if a.w_id = w.w_id then a.w_pins else b.w_pins))
      edges
  in
  List.filter_map (fun p -> if involves p.pin_x then Some p.pin_x else None) w.w_pins
  |> List.sort_uniq Int.compare

let split_piece st w ~at =
  st.works <- List.filter (fun x -> x.w_id <> w.w_id) st.works;
  let left_pins = List.filter (fun p -> p.pin_x <= at) w.w_pins in
  let right_pins = List.filter (fun p -> p.pin_x > at) w.w_pins in
  let left =
    { w_id = st.next_id; w_net = w.w_net; w_lo = w.w_lo; w_hi = at; w_pins = left_pins;
      w_width = w.w_width; w_track = -1 }
  in
  let right =
    { w_id = st.next_id + 1; w_net = w.w_net; w_lo = at; w_hi = w.w_hi; w_pins = right_pins;
      w_width = w.w_width; w_track = -1 }
  in
  st.next_id <- st.next_id + 2;
  st.works <- left :: right :: st.works;
  st.junctions <- { j_left = left.w_id; j_right = right.w_id } :: st.junctions

(* Break a VCG cycle: dogleg-split the widest splittable piece in the
   cycle between two of its constraint columns; if none is splittable,
   force-ignore one edge of the cycle. *)
let break_cycle st cycle =
  let splittable =
    List.filter_map
      (fun w ->
        match constraint_columns st w with
        | c1 :: (_ :: _ as rest) ->
          let c2 = List.nth rest (List.length rest - 1) in
          if c2 > c1 then Some (w, c1) else None
        | [] | [ _ ] -> None)
      cycle
  in
  match List.sort (fun (a, _) (b, _) -> compare (b.w_hi - b.w_lo) (a.w_hi - a.w_lo)) splittable with
  | (w, c1) :: _ -> split_piece st w ~at:c1
  | [] -> begin
    match cycle with
    | a :: _ ->
      let edges = vcg_edges st in
      (match List.find_opt (fun (x, _) -> x.w_id = a.w_id) edges with
      | Some (x, y) ->
        st.ignored <- (x.w_id, y.w_id) :: st.ignored;
        st.violations <- st.violations + 1
      | None -> st.violations <- st.violations + 1)
    | [] -> ()
  end

(* Fraction of a segment's pins entering from the top, in [-1, 1]:
   +1 all-top, -1 all-bottom, 0 balanced or pin-free. *)
let top_bias s =
  let top = List.length (List.filter (fun p -> p.pin_from_top) s.seg_pins) in
  let bottom = List.length s.seg_pins - top in
  if top + bottom = 0 then 0.0
  else float_of_int (top - bottom) /. float_of_int (top + bottom)

(* Post-pass for ~pin_bias: permute whole tracks (which preserves
   non-overlap by construction and the track count trivially) into a
   VCG-respecting order that floats top-heavy nets up and sinks
   bottom-heavy ones, shortening the pin jogs.  Skipped when any piece
   is wider than one track (groups would need to stay contiguous). *)
let permute_tracks st ~bias_of =
  let works = st.works in
  if List.exists (fun w -> w.w_width > 1) works then ()
  else begin
    let n_tracks = List.fold_left (fun acc w -> max acc (w.w_track + 1)) 0 works in
    if n_tracks > 1 then begin
      (* Track-level precedence from the placed pieces' VCG edges. *)
      let edges = vcg_edges st in
      let succs = Array.make n_tracks [] in
      let indeg = Array.make n_tracks 0 in
      List.iter
        (fun (above, below) ->
          if above.w_track >= 0 && below.w_track >= 0 && above.w_track <> below.w_track then begin
            succs.(above.w_track) <- below.w_track :: succs.(above.w_track);
            indeg.(below.w_track) <- indeg.(below.w_track) + 1
          end)
        edges;
      (* Average pin bias per track (+1 = wants the top). *)
      let score = Array.make n_tracks 0.0 and members = Array.make n_tracks 0 in
      List.iter
        (fun w ->
          if w.w_track >= 0 then begin
            score.(w.w_track) <-
              score.(w.w_track) +. Option.value (Hashtbl.find_opt bias_of w.w_net) ~default:0.0;
            members.(w.w_track) <- members.(w.w_track) + 1
          end)
        works;
      for i = 0 to n_tracks - 1 do
        if members.(i) > 0 then score.(i) <- score.(i) /. float_of_int members.(i)
      done;
      (* Kahn order, always taking the most top-hungry available track. *)
      let remaining = Array.copy indeg in
      let placed = Array.make n_tracks (-1) in
      let emitted = ref 0 in
      (try
         while !emitted < n_tracks do
           let best = ref (-1) in
           for i = 0 to n_tracks - 1 do
             if remaining.(i) = 0 && placed.(i) = -1 then
               if !best = -1 || score.(i) > score.(!best) then best := i
           done;
           if !best = -1 then raise Exit (* cycle from a force-broken edge: keep identity *);
           placed.(!best) <- !emitted;
           incr emitted;
           List.iter (fun j -> remaining.(j) <- remaining.(j) - 1) succs.(!best)
         done;
         List.iter (fun w -> if w.w_track >= 0 then w.w_track <- placed.(w.w_track)) works
       with Exit -> ())
    end
  end

let route ?(pin_bias = false) segs =
  let st =
    { works = [];
      next_id = 0;
      junctions = [];
      ignored = [];
      violations = 0;
      occupancy = Hashtbl.create 32 }
  in
  List.iter
    (fun s ->
      if s.seg_width < 1 || s.seg_hi < s.seg_lo then invalid_arg "Channel_router.route: bad segment";
      st.works <-
        { w_id = st.next_id; w_net = s.seg_net; w_lo = s.seg_lo; w_hi = s.seg_hi;
          w_pins = s.seg_pins; w_width = s.seg_width; w_track = -1 }
        :: st.works;
      st.next_id <- st.next_id + 1)
    segs;
  let budget = ref ((3 * List.length segs * 4) + 64) in
  let track = ref 0 in
  while unplaced st <> [] && !budget > 0 do
    decr budget;
    let placed = place_on_track st ~track:!track in
    if placed then incr track
    else begin
      match find_cycle st with
      | [] ->
        (* Progress is possible on a later track (predecessors placed at
           or below the current one). *)
        incr track
      | cycle -> break_cycle st cycle
    end
  done;
  if unplaced st <> [] then
    Bgr_error.raise_error Bgr_error.Internal
      "Channel_router.route: did not converge (%d of %d segments unplaced)"
      (List.length (unplaced st)) (List.length segs);
  if pin_bias then begin
    let bias_of = Hashtbl.create 16 in
    List.iter (fun s -> Hashtbl.replace bias_of s.seg_net (top_bias s)) segs;
    permute_tracks st ~bias_of
  end;
  let tracks =
    List.fold_left (fun acc w -> max acc (w.w_track + w.w_width)) 0 st.works
  in
  let pieces =
    List.rev_map
      (fun w ->
        { pc_net = w.w_net; pc_lo = w.w_lo; pc_hi = w.w_hi; pc_track = w.w_track;
          pc_width = w.w_width })
      st.works
  in
  (* Vertical wiring per net, in track units. *)
  let verticals = Hashtbl.create 16 in
  let add net v =
    Hashtbl.replace verticals net (v +. Option.value (Hashtbl.find_opt verticals net) ~default:0.0)
  in
  let on_work w =
    let on_pin p =
      let depth =
        if p.pin_from_top then float_of_int w.w_track +. 0.5
        else float_of_int (tracks - w.w_track - w.w_width) +. 0.5
      in
      add w.w_net depth
    in
    List.iter on_pin w.w_pins
  in
  List.iter on_work st.works;
  let by_id = Hashtbl.create 32 in
  List.iter (fun w -> Hashtbl.replace by_id w.w_id w) st.works;
  List.iter
    (fun j ->
      match (Hashtbl.find_opt by_id j.j_left, Hashtbl.find_opt by_id j.j_right) with
      | Some l, Some r -> add l.w_net (float_of_int (abs (l.w_track - r.w_track)))
      | _, _ -> ())
    st.junctions;
  { tracks;
    pieces;
    doglegs = List.length st.junctions;
    violations = st.violations;
    net_vertical_tracks = Hashtbl.fold (fun net v acc -> (net, v) :: acc) verticals [] }

let vertical_um ~track_um r =
  List.fold_left (fun acc (_, v) -> acc +. (v *. track_um)) 0.0 r.net_vertical_tracks

let net_vertical_um ~track_um r = List.map (fun (net, v) -> (net, v *. track_um)) r.net_vertical_tracks

let check segs r =
  let problems = ref [] and warnings = ref [] in
  let say acc fmt = Format.kasprintf (fun s -> acc := s :: !acc) fmt in
  (* Coverage: each segment's span must be covered by its net's pieces. *)
  let on_seg s =
    let mine = List.filter (fun p -> p.pc_net = s.seg_net) r.pieces in
    let covered x = List.exists (fun p -> p.pc_lo <= x && x <= p.pc_hi) mine in
    let rec scan x = if x > s.seg_hi then () else if covered x then scan (x + 1) else
        say problems "net %d: column %d uncovered" s.seg_net x
    in
    scan s.seg_lo
  in
  List.iter on_seg segs;
  (* No two pieces of different nets may overlap on a track. *)
  let expanded =
    List.concat_map
      (fun p -> List.init p.pc_width (fun k -> (p.pc_track + k, p)))
      r.pieces
  in
  let rec pairs = function
    | [] -> ()
    | (tr1, p1) :: rest ->
      List.iter
        (fun (tr2, p2) ->
          if tr1 = tr2 && p1.pc_net <> p2.pc_net && overlap (p1.pc_lo, p1.pc_hi) (p2.pc_lo, p2.pc_hi)
          then say problems "track %d: nets %d and %d overlap" tr1 p1.pc_net p2.pc_net)
        rest;
      pairs rest
  in
  pairs expanded;
  if r.violations > 0 then say warnings "%d vertical constraints force-broken" r.violations;
  if !problems = [] then Ok !warnings else Error !problems
