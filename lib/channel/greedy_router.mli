(** A greedy channel router in the Rivest-Fiduccia style — the second
    detailed-routing substrate, for cross-checking the left-edge router
    and for the channel-height comparison bench.

    The channel is scanned column by column.  At each column the router
    (1) brings every pin onto the nearest reachable track of its net —
    an empty track is claimed when the net has none — using vertical
    segments that may cross foreign {e tracks} but never overlap other
    {e verticals} of the same column; (2) collapses nets split over
    several tracks whenever the joining vertical is free, releasing a
    track; (3) releases nets past their last pin.  When a pin cannot
    reach any track the channel is widened by a fresh track at the
    pin's side.  Split nets that outlive the pin range are chased for a
    bounded overhang to the right; a forced join past that bound counts
    as a violation.

    Results reuse {!Channel_router.result}, so {!Channel_router.check}
    audits both routers identically.  Doglegs count the track-to-track
    joins. *)

val route : Channel_router.seg list -> Channel_router.result

val overhang_columns : int
(** How far past the last pin column split nets are chased (16). *)
