(** The black-box flight recorder: a fixed-size, preallocated
    per-domain ring buffer of compact binary events, always on, meant
    to capture the {e last moments} before an abnormal exit.

    Unlike the tracer and the metrics registry ({!Obs}), the recorder
    is {e not} gated on [Obs.enable]: it records from process start, in
    every domain, so a crash that never asked for observability still
    leaves evidence.  The cost contract is strict:

    {ul
    {- {b no allocation per event} — {!record} takes only immediate
       ints and writes into a preallocated byte arena;}
    {- {b no locks on record} — each domain owns its ring (via
       [Domain.DLS]); the global ring registry is only touched once per
       domain (lock-free CAS) and at dump time;}
    {- {b no influence on routing} — the recorder never reads or
       writes routing state; [deletion_hash] is bit-identical with the
       recorder on or off (asserted by the bench gate).}}

    A {e dump} serializes every ring as a CRC-framed [BGRF1] file (see
    docs/FORMATS.md), written on abnormal exits ([Bgr_error]
    escalation, deadline stop, fatal signal, watchdog kill) and on
    demand (SIGQUIT, the daemon's [dump] opcode).  Dumping is
    best-effort and never raises: a failed dump must not turn a crash
    report into a second crash.

    The postmortem reader follows the journal's salvage rules: a
    damaged final frame is a torn tail (truncated away with a
    warning); damage anywhere earlier is a structured [Parse] error. *)

val magic : string
(** ["BGRF1\n"] — file magic and format version. *)

val default_filename : string
(** ["flight.bgrf"] — the conventional dump name inside a run
    directory. *)

val attempt_filename : attempt:int -> string
(** ["flight-aN.bgrf"] — per-attempt dump name inside a spool job
    directory, keyed like the other worker artifacts. *)

(** {1 Event vocabulary}

    Every event is 24 bytes: a kind byte, three small integer
    arguments [a] (u8), [b] (u16), [c] (u32), one wide argument [d]
    (i64) and a timestamp (µs since the recorder epoch).  Field
    semantics per kind: *)

val k_deletion : int
(** [1] — a committed deletion: [a] phase, [b] winning criterion,
    [c] net, [d] = [(edge lsl 32) lor (deletions_before land 0xFFFFFFFF)]. *)

val k_phase : int
(** [2] — phase transition: [a] phase, [b] 0 = enter, 1 = mark
    (checkpointed boundary), [d] cumulative deletions. *)

val k_pass : int
(** [3] — improvement-pass boundary: [a] phase, [b] pass ordinal,
    [d] cumulative deletions. *)

val k_journal_sync : int
(** [4] — journal fsync barrier: [d] bytes on disk after the sync. *)

val k_snapshot : int
(** [5] — atomic snapshot replace: [d] snapshot bytes written. *)

val k_pool_round : int
(** [6] — pool round boundary: [b] 0 = begin, 1 = end, [c] round
    ordinal, [d] chunk count. *)

val k_serve_op : int
(** [7] — daemon request decoded: [a] wire opcode. *)

val k_heartbeat : int
(** [8] — worker heartbeat observed: [a] phase, [b] pass,
    [c] deletions, [d] worst margin via {!margin_encode}. *)

val k_retry : int
(** [9] — retry decision: [a] attempt ordinal, [c] backoff ms. *)

val k_stop : int
(** [10] — router stop: [a] phase, [b] 1 = deadline, 2 = injected
    fault. *)

val k_error : int
(** [11] — [Bgr_error] escalation: [a] exit code. *)

val k_dump : int
(** [12] — a dump was requested: [a] 1 = signal, 2 = wire opcode,
    3 = supervisor, 4 = error exit. *)

val k_worker_spawn : int
(** [13] — worker subprocess spawned: [c] pid. *)

val k_worker_kill : int
(** [14] — worker killed: [a] reason (1 hang, 2 hard-deadline,
    3 canceled, 4 signaled, 5 oom), [b] signal number when signaled,
    [c] pid. *)

val kind_name : int -> string

val phase_code : string -> int
val phase_name : int -> string
(** The deletion journal's fixed phase numbering (0..5, 255 unknown). *)

val criterion_code : string -> int
val criterion_name : int -> string
(** The router's fixed winning-criterion vocabulary (Sec. 3.4 chains);
    0 is unknown. *)

val margin_encode : float -> int
val margin_decode : int -> float
(** Worst-margin picoseconds packed as an int (milli-ps, saturating);
    [nan] survives the round trip as [nan]. *)

(** {1 Recording} *)

val enabled : unit -> bool
(** True unless {!set_enabled}[ false] — the recorder is on by
    default, before and independent of [Obs.enable]. *)

val set_enabled : bool -> unit
(** The off switch exists for the overhead benchmark and for tests;
    production paths never turn the recorder off. *)

val record : int -> a:int -> b:int -> c:int -> d:int -> unit
(** Record one event into the calling domain's ring.  Never raises,
    never locks, never allocates; a handful of nanoseconds when
    enabled, one load when disabled. *)

val recorded : unit -> int
(** Events ever recorded by the calling domain (diagnostic). *)

val reset_for_tests : unit -> unit
(** Forget every ring and restart the epoch (orchestrator-only test
    hook; concurrent recorders in flight would re-register). *)

val set_clock_for_tests : (unit -> float) option -> unit
(** Replace the event clock (seconds; the epoch becomes 0) with a
    deterministic one; [None] restores the real clock. *)

(** {1 Dumping} *)

val dump_string : reason:string -> string
(** The complete [BGRF1] image of every ring: magic, a header frame
    (pid, epoch, [reason]), then one frame per domain ring, all
    CRC-framed.  Rings of other domains are read without
    synchronization — a torn slot from a mid-write race is acceptable
    in a crash report and detectable by its timestamp. *)

val dump_file : ?trigger:int -> reason:string -> string -> bool
(** Write {!dump_string} to a path (temp + fsync + rename when
    possible, direct write as fallback).  Records a {!k_dump} event
    first, with [a] = [trigger] (the {!k_dump} vocabulary; default 4,
    error exit).  Never raises; false when the file could not be
    written. *)

val install_sigquit_dump : path:(unit -> string) -> ?after:(string -> unit) -> unit -> unit
(** Install a SIGQUIT handler that dumps to [path ()] and continues
    running — the on-demand flight-record snapshot, and the hook the
    worker supervisor uses to request a dump before SIGKILL.  [after]
    runs post-dump with the path (the worker sends its BGRW1 [dump]
    frame there).  The handler is minimal: it calls only {!dump_file}
    and [after], catches everything, and never exits. *)

(** {1 Reading (postmortem side)} *)

type event = {
  e_kind : int;
  e_a : int;
  e_b : int;
  e_c : int;
  e_d : int;
  e_t_us : int;  (** microseconds since the recorder epoch *)
}

type ring = {
  rg_domain : int;  (** recording domain ordinal *)
  rg_total : int;  (** events ever recorded (dropped = total - retained) *)
  rg_events : event list;  (** retained events, oldest first *)
}

type dump = {
  f_pid : int;
  f_reason : string;
  f_epoch_s : float;  (** absolute wall-clock seconds of the recorder epoch *)
  f_rings : ring list;
  f_torn : bool;
  f_warnings : string list;
}

val read_string : ?file:string -> string -> (dump, Bgr_error.t) result
val read : path:string -> (dump, Bgr_error.t) result
