(** CRC-32 (IEEE 802.3, the zlib polynomial) over strings — the
    integrity check of journal records and snapshot files.  Pure OCaml,
    table-driven, no dependencies. *)

val string : string -> int
(** CRC-32 of the whole string, in [0, 0xFFFFFFFF]. *)

val update : int -> string -> int -> int -> int
(** [update crc s pos len] extends [crc] with [len] bytes of [s] from
    [pos]; [update 0 s 0 (String.length s) = string s]. *)
