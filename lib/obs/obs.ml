(* Process-global tracer + metrics registry.  See obs.mli for the
   ownership and failure-policy contract.  The one invariant that
   matters: nothing in here may influence a routing decision. *)

(* ------------------------------------------------------------------ *)
(* Clock                                                              *)
(* ------------------------------------------------------------------ *)

let test_clock : (unit -> float) option ref = ref None

let clock_mutex = Mutex.create ()

let last_now = ref neg_infinity

let now_s () =
  match !test_clock with
  | Some f -> f ()
  | None ->
      (* Monotonicize: gettimeofday can step backwards under NTP; a
         negative span duration would corrupt trace files. *)
      Mutex.lock clock_mutex;
      let t = Unix.gettimeofday () in
      let t = if t > !last_now then ( last_now := t; t ) else !last_now in
      Mutex.unlock clock_mutex;
      t

let set_clock_for_tests c = test_clock := c

(* ------------------------------------------------------------------ *)
(* Global switches                                                    *)
(* ------------------------------------------------------------------ *)

let enabled_flag = ref false

let enabled () = !enabled_flag

let worker_probe = ref (fun () -> false)

let set_worker_probe f = worker_probe := f

let in_worker () = !worker_probe ()

(* Drop hot-path records while disabled or on a pool worker. *)
let skip_record () = (not !enabled_flag) || in_worker ()

(* The serving daemon records metrics from two domains (the socket
   event loop and the job executor), so the warning list and the
   metrics registry serialize on one coarse mutex.  The tracer's scope
   stack stays single-domain property of whoever emits spans (the
   orchestrator / job executor) — only its sink writes run under the
   lock via [emit]'s caller. *)
let reg_mutex = Mutex.create ()

let locked f =
  Mutex.lock reg_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_mutex) f

let warnings_rev = ref []

let warnings () = locked (fun () -> List.rev !warnings_rev)

let warn fmt =
  Printf.ksprintf (fun s -> locked (fun () -> warnings_rev := s :: !warnings_rev)) fmt

(* Atomic durable rewrite (temp + fsync + rename): a scrape target or
   a flight-record dump must never be observable as zero-length, even
   across a power loss — the fsync of the temp file *before* the
   rename is what makes the rename a real commit point. *)
let write_file_atomic path s =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (match
     output_string oc s;
     flush oc;
     try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ()
   with
  | () -> close_out oc
  | exception e ->
    close_out_noerr oc;
    raise e);
  Sys.rename tmp path

let assert_orchestrator ~what =
  if in_worker () then
    Bgr_error.raise_error Internal
      "Obs.%s called from inside a pool worker; the tracer and registry belong to the orchestrator"
      what

(* ------------------------------------------------------------------ *)
(* JSON helpers (shared by both sinks and the metrics JSON summary)   *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

(* ------------------------------------------------------------------ *)
(* Tracer                                                             *)
(* ------------------------------------------------------------------ *)

module Trace = struct
  type attr = Str of string | Int of int | Float of float | Bool of bool

  let attr_to_string = function
    | Str s -> s
    | Int i -> string_of_int i
    | Float f -> json_float f
    | Bool b -> string_of_bool b

  type span = {
    sp_name : string;
    sp_start_us : float;
    sp_dur_us : float;
    sp_depth : int;
    sp_id : int;
    sp_parent : int;
    sp_pid : int;
    sp_attrs : (string * attr) list;
  }

  (* Trace epoch: fixed by the first [enable] after a reset. *)
  let epoch = ref nan

  let epoch_s () = !epoch

  type scope = {
    sc_name : string;
    sc_start : float;  (* absolute seconds *)
    sc_id : int;
    mutable sc_attrs : (string * attr) list;
  }

  let stack : scope list ref = ref []

  (* Span ids are process-local ordinals; a merged multi-process
     timeline keys spans by (pid, id).  [foreign_parent] links a
     process's depth-0 spans under a span of another process (the
     supervisor hands its serve.worker span id to the worker). *)
  let span_seq = ref 0

  let process_pid = ref 1

  let set_pid pid = process_pid := pid

  let trace_ident : string option ref = ref None

  let set_trace_id tid = trace_ident := tid

  let trace_id () = !trace_ident

  let foreign_parent : int option ref = ref None

  let set_parent_span p = foreign_parent := p

  let current_span_id () =
    match !stack with top :: _ -> Some top.sc_id | [] -> None

  let parent_of_stack () =
    match !stack with
    | top :: _ -> top.sc_id
    | [] -> ( match !foreign_parent with Some p -> p | None -> 0 )

  let retained_cap = 100_000

  let completed_rev = ref []

  let completed_n = ref 0

  let completed () = List.rev !completed_rev

  (* ---- sinks ---- *)

  type sink = {
    sk_what : string;  (* "chrome" | "jsonl" *)
    sk_oc : out_channel;
    mutable sk_first : bool;  (* chrome: no comma before first event *)
  }

  let chrome_sink : sink option ref = ref None

  let jsonl_sink : sink option ref = ref None

  (* Any failure inside [f] kills the sink: close quietly, warn once,
     keep routing.  The obs.sink fault plugs in here so the degradation
     path is testable. *)
  let sink_guard slot f =
    match !slot with
    | None -> ()
    | Some sk -> (
        try
          Fault.check ~phase:"obs" "obs.sink";
          f sk
        with e ->
          slot := None;
          (try close_out_noerr sk.sk_oc with _ -> ());
          warn "trace sink (%s) failed and was disabled: %s" sk.sk_what
            (match e with
            | Bgr_error.Error err -> err.Bgr_error.message
            | Sys_error m -> m
            | e -> Printexc.to_string e))

  let open_sink slot ~what ~path ~header =
    assert_orchestrator ~what:"Trace.open_sink";
    (match !slot with
    | Some sk ->
        warn "%s trace sink reopened at %s; the previous sink was closed and its tail may be incomplete"
          what path;
        (try close_out_noerr sk.sk_oc with _ -> ());
        slot := None
    | None -> ());
    match open_out path with
    | oc ->
        output_string oc header;
        slot := Some { sk_what = what; sk_oc = oc; sk_first = true }
    | exception Sys_error m -> warn "cannot open %s trace sink %s: %s" what path m

  let to_chrome_file path = open_sink chrome_sink ~what:"chrome" ~path ~header:"[\n"

  let to_jsonl_file path = open_sink jsonl_sink ~what:"jsonl" ~path ~header:""

  let close_sinks () =
    (match !chrome_sink with
    | Some sk ->
        sink_guard chrome_sink (fun sk -> output_string sk.sk_oc "\n]\n");
        (match !chrome_sink with
        | Some _ ->
            (try close_out sk.sk_oc
             with Sys_error m -> warn "closing chrome trace sink: %s" m);
            chrome_sink := None
        | None -> ())
    | None -> ());
    match !jsonl_sink with
    | Some sk ->
        (try close_out sk.sk_oc
         with Sys_error m -> warn "closing jsonl trace sink: %s" m);
        jsonl_sink := None
    | None -> ()

  (* ---- event emission ---- *)

  let attr_json (k, v) =
    Printf.sprintf "\"%s\":%s" (json_escape k)
      (match v with
      | Str s -> "\"" ^ json_escape s ^ "\""
      | Int i -> string_of_int i
      | Float f -> json_float f
      | Bool b -> string_of_bool b)

  let args_json attrs =
    match attrs with
    | [] -> ""
    | attrs ->
        Printf.sprintf ",\"args\":{%s}" (String.concat "," (List.map attr_json attrs))

  let chrome_event ~ph ~extra sp =
    Printf.sprintf
      "{\"name\":\"%s\",\"cat\":\"bgr\",\"ph\":\"%s\",\"pid\":%d,\"tid\":1,\"ts\":%.3f%s%s}"
      (json_escape sp.sp_name) ph sp.sp_pid sp.sp_start_us extra (args_json sp.sp_attrs)

  let jsonl_line sp =
    Printf.sprintf
      "{\"name\":\"%s\",\"start_us\":%.3f,\"dur_us\":%.3f,\"depth\":%d,\"id\":%d,\"parent\":%d,\"pid\":%d%s}\n"
      (json_escape sp.sp_name) sp.sp_start_us sp.sp_dur_us sp.sp_depth sp.sp_id
      sp.sp_parent sp.sp_pid
      (args_json sp.sp_attrs)

  let emit sp =
    if !completed_n < retained_cap then begin
      completed_rev := sp :: !completed_rev;
      incr completed_n
    end;
    sink_guard chrome_sink (fun sk ->
        let ev =
          if sp.sp_dur_us = 0.0 then chrome_event ~ph:"i" ~extra:",\"s\":\"t\"" sp
          else chrome_event ~ph:"X" ~extra:(Printf.sprintf ",\"dur\":%.3f" sp.sp_dur_us) sp
        in
        if sk.sk_first then sk.sk_first <- false else output_string sk.sk_oc ",\n";
        output_string sk.sk_oc ev);
    sink_guard jsonl_sink (fun sk -> output_string sk.sk_oc (jsonl_line sp))

  let rel_us t = (t -. !epoch) *. 1e6

  (* Bake the ambient trace id into the span's attributes so every
     sink (and the retained list) carries the correlation key. *)
  let with_trace_id attrs =
    match !trace_ident with
    | None -> attrs
    | Some tid ->
        if List.mem_assoc "trace_id" attrs then attrs
        else attrs @ [ ("trace_id", Str tid) ]

  let span ?(attrs = []) name f =
    if skip_record () then f ()
    else begin
      let parent = parent_of_stack () in
      incr span_seq;
      let sc = { sc_name = name; sc_start = now_s (); sc_id = !span_seq; sc_attrs = attrs } in
      let depth = List.length !stack in
      stack := sc :: !stack;
      Fun.protect
        ~finally:(fun () ->
          (match !stack with top :: rest when top == sc -> stack := rest | _ -> ());
          let stop = now_s () in
          emit
            {
              sp_name = name;
              sp_start_us = rel_us sc.sc_start;
              sp_dur_us = (stop -. sc.sc_start) *. 1e6;
              sp_depth = depth;
              sp_id = sc.sc_id;
              sp_parent = parent;
              sp_pid = !process_pid;
              sp_attrs = with_trace_id sc.sc_attrs;
            })
        f
    end

  let instant ?(attrs = []) name =
    if not (skip_record ()) then begin
      let parent = parent_of_stack () in
      incr span_seq;
      emit
        {
          sp_name = name;
          sp_start_us = rel_us (now_s ());
          sp_dur_us = 0.0;
          sp_depth = List.length !stack;
          sp_id = !span_seq;
          sp_parent = parent;
          sp_pid = !process_pid;
          sp_attrs = with_trace_id attrs;
        }
    end

  (* A span recorded by another process (already carrying its own id,
     parent and pid), re-emitted into this process's retained list and
     sinks.  Timestamps must already be re-based onto this process's
     epoch by the caller.  No-op while disabled. *)
  let emit_foreign sp = if !enabled_flag then emit sp

  let add_attr k v =
    if not (skip_record ()) then
      match !stack with
      | top :: _ -> top.sc_attrs <- top.sc_attrs @ [ (k, v) ]
      | [] -> ()

  let reset () =
    stack := [];
    completed_rev := [];
    completed_n := 0;
    span_seq := 0;
    trace_ident := None;
    foreign_parent := None;
    epoch := nan
end

let enable () =
  enabled_flag := true;
  if Float.is_nan !Trace.epoch then Trace.epoch := now_s ()

let disable () = enabled_flag := false

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

module Metrics = struct
  type kind = Counter | Gauge | Histogram of float array

  type series = {
    se_labels : (string * string) list;  (* sorted by key *)
    mutable se_value : float;  (* counter/gauge value; histogram sum *)
    se_buckets : int array;  (* per-bucket counts, last = +Inf; [||] otherwise *)
    mutable se_count : int;  (* histogram observation count *)
  }

  type family = {
    f_name : string;
    f_help : string;
    f_kind : kind;
    f_labelnames : string list;  (* sorted *)
    mutable f_series_rev : series list;
  }

  let registry : (string, family) Hashtbl.t = Hashtbl.create 32

  let order_rev : string list ref = ref []

  let default_buckets =
    [| 1e-4; 2.5e-4; 5e-4; 1e-3; 2.5e-3; 5e-3; 1e-2; 2.5e-2; 5e-2; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0 |]

  let valid_name n =
    String.length n > 0
    && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
    && String.for_all
         (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
         n

  let kind_name = function
    | Counter -> "counter"
    | Gauge -> "gauge"
    | Histogram _ -> "histogram"

  let same_kind a b =
    match (a, b) with
    | Counter, Counter | Gauge, Gauge -> true
    | Histogram x, Histogram y -> x = y
    | _ -> false

  let register ~help ~labels name kind =
    if not (valid_name name) then
      Bgr_error.raise_error Internal "invalid metric name %S" name;
    let sorted_labels = List.sort compare labels in
    let labels = List.sort_uniq compare labels in
    if List.length labels <> List.length sorted_labels then
      Bgr_error.raise_error Internal "duplicate label names on metric %s" name;
    (match kind with
    | Histogram bounds ->
        let rec strictly i =
          i + 1 >= Array.length bounds || (bounds.(i) < bounds.(i + 1) && strictly (i + 1))
        in
        if Array.length bounds = 0 || not (strictly 0) then
          Bgr_error.raise_error Internal
            "histogram %s needs strictly increasing, non-empty bucket bounds" name
    | Counter | Gauge -> ());
    locked @@ fun () ->
    match Hashtbl.find_opt registry name with
    | Some f ->
        if not (same_kind f.f_kind kind) then
          Bgr_error.raise_error Internal "metric %s re-registered as %s, was %s" name
            (kind_name kind) (kind_name f.f_kind);
        if f.f_labelnames <> labels then
          Bgr_error.raise_error Internal "metric %s re-registered with different labels" name;
        f
    | None ->
        let f = { f_name = name; f_help = help; f_kind = kind; f_labelnames = labels; f_series_rev = [] } in
        (* Unlabelled families pre-create their single series so a
           registered-but-quiet metric still renders a zero sample. *)
        if labels = [] then begin
          let buckets =
            match kind with Histogram b -> Array.make (Array.length b + 1) 0 | _ -> [||]
          in
          f.f_series_rev <- [ { se_labels = []; se_value = 0.0; se_buckets = buckets; se_count = 0 } ]
        end;
        Hashtbl.add registry name f;
        order_rev := name :: !order_rev;
        f

  let counter ?(help = "") ?(labels = []) name = register ~help ~labels name Counter

  let gauge ?(help = "") ?(labels = []) name = register ~help ~labels name Gauge

  let histogram ?(help = "") ?(labels = []) ?(buckets = default_buckets) name =
    register ~help ~labels name (Histogram (Array.copy buckets))

  let find_series f labels =
    let labels = List.sort compare labels in
    match List.find_opt (fun s -> s.se_labels = labels) f.f_series_rev with
    | Some s -> Some s
    | None -> None

  let get_series f labels =
    let labels = List.sort compare labels in
    match List.find_opt (fun s -> s.se_labels = labels) f.f_series_rev with
    | Some s -> s
    | None ->
        if List.map fst labels <> f.f_labelnames then
          Bgr_error.raise_error Internal "metric %s expects labels {%s}, got {%s}" f.f_name
            (String.concat "," f.f_labelnames)
            (String.concat "," (List.map fst labels));
        let buckets =
          match f.f_kind with Histogram b -> Array.make (Array.length b + 1) 0 | _ -> [||]
        in
        let s = { se_labels = labels; se_value = 0.0; se_buckets = buckets; se_count = 0 } in
        f.f_series_rev <- s :: f.f_series_rev;
        s

  let inc ?(labels = []) ?(by = 1.0) f =
    if not (skip_record ()) then begin
      (match f.f_kind with
      | Counter -> ()
      | k -> Bgr_error.raise_error Internal "inc on %s metric %s" (kind_name k) f.f_name);
      if by < 0.0 then
        Bgr_error.raise_error Internal "counter %s incremented by negative %g" f.f_name by;
      locked @@ fun () ->
      let s = get_series f labels in
      s.se_value <- s.se_value +. by
    end

  let set ?(labels = []) f v =
    if not (skip_record ()) then begin
      (match f.f_kind with
      | Gauge -> ()
      | k -> Bgr_error.raise_error Internal "set on %s metric %s" (kind_name k) f.f_name);
      locked @@ fun () ->
      let s = get_series f labels in
      s.se_value <- v
    end

  let observe ?(labels = []) f v =
    if not (skip_record ()) then begin
      let bounds =
        match f.f_kind with
        | Histogram b -> b
        | k -> Bgr_error.raise_error Internal "observe on %s metric %s" (kind_name k) f.f_name
      in
      locked @@ fun () ->
      let s = get_series f labels in
      let n = Array.length bounds in
      let i =
        let rec find i = if i >= n then n else if v <= bounds.(i) then i else find (i + 1) in
        find 0
      in
      s.se_buckets.(i) <- s.se_buckets.(i) + 1;
      s.se_value <- s.se_value +. v;
      s.se_count <- s.se_count + 1
    end

  let value ?(labels = []) f =
    locked (fun () ->
        match find_series f labels with Some s -> Some s.se_value | None -> None)

  let histogram_snapshot ?(labels = []) f =
    locked @@ fun () ->
    match (f.f_kind, find_series f labels) with
    | Histogram bounds, Some s -> Some (Array.copy bounds, Array.copy s.se_buckets, s.se_value, s.se_count)
    | _ -> None

  let series f =
    locked (fun () -> List.rev_map (fun s -> (s.se_labels, s.se_value)) f.f_series_rev)

  let reset_values () =
    locked @@ fun () ->
    Hashtbl.iter
      (fun _ f ->
        let keep_empty = f.f_labelnames = [] in
        f.f_series_rev <-
          (if keep_empty then
             let buckets =
               match f.f_kind with Histogram b -> Array.make (Array.length b + 1) 0 | _ -> [||]
             in
             [ { se_labels = []; se_value = 0.0; se_buckets = buckets; se_count = 0 } ]
           else []))
      registry

  (* ---- rendering ---- *)

  let prom_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let label_block ?extra labels =
    let pairs =
      List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v)) labels
      @ match extra with None -> [] | Some kv -> [ kv ]
    in
    match pairs with [] -> "" | pairs -> "{" ^ String.concat "," pairs ^ "}"

  (* first-registration order *)
  let families () = List.rev !order_rev |> List.map (Hashtbl.find registry)

  let render_prometheus () =
    assert_orchestrator ~what:"Metrics.render_prometheus";
    locked @@ fun () ->
    let b = Buffer.create 4096 in
    List.iter
      (fun f ->
        if f.f_help <> "" then
          Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" f.f_name (prom_escape f.f_help));
        Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" f.f_name (kind_name f.f_kind));
        let rows = List.rev f.f_series_rev in
        List.iter
          (fun s ->
            match f.f_kind with
            | Counter | Gauge ->
                Buffer.add_string b
                  (Printf.sprintf "%s%s %s\n" f.f_name (label_block s.se_labels)
                     (json_float s.se_value))
            | Histogram bounds ->
                let cum = ref 0 in
                Array.iteri
                  (fun i le ->
                    cum := !cum + s.se_buckets.(i);
                    Buffer.add_string b
                      (Printf.sprintf "%s_bucket%s %d\n" f.f_name
                         (label_block ~extra:(Printf.sprintf "le=\"%s\"" (json_float le)) s.se_labels)
                         !cum))
                  bounds;
                Buffer.add_string b
                  (Printf.sprintf "%s_bucket%s %d\n" f.f_name
                     (label_block ~extra:"le=\"+Inf\"" s.se_labels)
                     s.se_count);
                Buffer.add_string b
                  (Printf.sprintf "%s_sum%s %s\n" f.f_name (label_block s.se_labels)
                     (json_float s.se_value));
                Buffer.add_string b
                  (Printf.sprintf "%s_count%s %d\n" f.f_name (label_block s.se_labels) s.se_count))
          rows)
      (families ());
    Buffer.contents b

  let render_json () =
    assert_orchestrator ~what:"Metrics.render_json";
    locked @@ fun () ->
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\"metrics\":[";
    let first_f = ref true in
    List.iter
      (fun f ->
        if !first_f then first_f := false else Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf "{\"name\":\"%s\",\"kind\":\"%s\",\"series\":[" (json_escape f.f_name)
             (kind_name f.f_kind));
        let first_s = ref true in
        List.iter
          (fun s ->
            if !first_s then first_s := false else Buffer.add_char b ',';
            let labels =
              "{"
              ^ String.concat ","
                  (List.map
                     (fun (k, v) ->
                       Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
                     s.se_labels)
              ^ "}"
            in
            match f.f_kind with
            | Counter | Gauge ->
                Buffer.add_string b
                  (Printf.sprintf "{\"labels\":%s,\"value\":%s}" labels (json_float s.se_value))
            | Histogram bounds ->
                let buckets =
                  String.concat ","
                    (List.init (Array.length bounds) (fun i ->
                         Printf.sprintf "[%s,%d]" (json_float bounds.(i)) s.se_buckets.(i)))
                in
                Buffer.add_string b
                  (Printf.sprintf
                     "{\"labels\":%s,\"count\":%d,\"sum\":%s,\"buckets\":[%s],\"overflow\":%d}"
                     labels s.se_count (json_float s.se_value) buckets
                     s.se_buckets.(Array.length bounds)))
          (List.rev f.f_series_rev);
        Buffer.add_string b "]}")
      (families ());
    Buffer.add_string b "]}";
    Buffer.contents b

  (* ---- snapshot codec (`bgr-metrics 1`) ----

     A line-oriented dump of the whole registry, written by a worker
     process just before it exits and merged back into the supervising
     daemon's registry (counters/histograms add, gauges last-write).
     Values use %.17g so a snapshot → merge round trip is exact. *)

  let snap_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | ',' -> Buffer.add_string b "\\c"
        | '=' -> Buffer.add_string b "\\e"
        | ' ' -> Buffer.add_string b "\\s"
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let snap_unescape s =
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let rec go i =
      if i < n then
        if s.[i] = '\\' && i + 1 < n then begin
          (match s.[i + 1] with
          | '\\' -> Buffer.add_char b '\\'
          | 'c' -> Buffer.add_char b ','
          | 'e' -> Buffer.add_char b '='
          | 's' -> Buffer.add_char b ' '
          | 'n' -> Buffer.add_char b '\n'
          | c -> Buffer.add_char b c);
          go (i + 2)
        end
        else begin
          Buffer.add_char b s.[i];
          go (i + 1)
        end
    in
    go 0;
    Buffer.contents b

  let snap_float v = Printf.sprintf "%.17g" v

  let snap_labelblock labels =
    match labels with
    | [] -> "-"
    | labels ->
        String.concat ","
          (List.map (fun (k, v) -> snap_escape k ^ "=" ^ snap_escape v) labels)

  let snapshot () =
    assert_orchestrator ~what:"Metrics.snapshot";
    locked @@ fun () ->
    let b = Buffer.create 4096 in
    Buffer.add_string b "bgr-metrics 1\n";
    List.iter
      (fun f ->
        Buffer.add_string b
          (Printf.sprintf "family %s %s\n" (kind_name f.f_kind) f.f_name);
        if f.f_help <> "" then
          Buffer.add_string b ("help " ^ snap_escape f.f_help ^ "\n");
        if f.f_labelnames <> [] then
          Buffer.add_string b
            ("labels " ^ String.concat "," (List.map snap_escape f.f_labelnames) ^ "\n");
        (match f.f_kind with
        | Histogram bounds ->
            Buffer.add_string b
              ("buckets "
              ^ String.concat "," (Array.to_list (Array.map snap_float bounds))
              ^ "\n")
        | Counter | Gauge -> ());
        List.iter
          (fun s ->
            match f.f_kind with
            | Counter | Gauge ->
                Buffer.add_string b
                  (Printf.sprintf "series %s %s\n" (snap_labelblock s.se_labels)
                     (snap_float s.se_value))
            | Histogram _ ->
                Buffer.add_string b
                  (Printf.sprintf "hseries %s %d %s %s\n" (snap_labelblock s.se_labels)
                     s.se_count (snap_float s.se_value)
                     (String.concat " "
                        (Array.to_list (Array.map string_of_int s.se_buckets)))))
          (List.rev f.f_series_rev))
      (families ());
    Buffer.add_string b "end\n";
    Buffer.contents b

  (* Parsed form of one family block of a snapshot. *)
  type snap_family = {
    sn_kind : string;
    sn_name : string;
    mutable sn_help : string;
    mutable sn_labels : string list;
    mutable sn_buckets : float array;
    mutable sn_series_rev : ((string * string) list * float * int * int array) list;
        (* labels, value/sum, count, buckets *)
  }

  let parse_labelblock s =
    if s = "-" then Some []
    else
      let pairs = String.split_on_char ',' s in
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | p :: rest -> (
            (* split on the first unescaped '=' *)
            let n = String.length p in
            let rec find i =
              if i >= n then None
              else if p.[i] = '\\' then find (i + 2)
              else if p.[i] = '=' then Some i
              else find (i + 1)
            in
            match find 0 with
            | None -> None
            | Some i ->
                go
                  ((snap_unescape (String.sub p 0 i),
                    snap_unescape (String.sub p (i + 1) (n - i - 1)))
                  :: acc)
                  rest)
      in
      go [] pairs

  let merge_snapshot ?(source = "worker") text =
    assert_orchestrator ~what:"Metrics.merge_snapshot";
    let bad fmt = Printf.ksprintf (fun m -> warn "metrics merge (%s): %s" source m) fmt in
    let lines = String.split_on_char '\n' text in
    match lines with
    | first :: rest when String.trim first = "bgr-metrics 1" ->
        let fams_rev = ref [] in
        let cur : snap_family option ref = ref None in
        let flush () =
          match !cur with
          | Some f ->
              fams_rev := f :: !fams_rev;
              cur := None
          | None -> ()
        in
        let ok = ref true in
        List.iter
          (fun line ->
            if !ok && String.trim line <> "" && String.trim line <> "end" then
              let words = String.split_on_char ' ' line in
              match (words, !cur) with
              | "family" :: kind :: name :: [], _ ->
                  flush ();
                  cur :=
                    Some
                      {
                        sn_kind = kind;
                        sn_name = name;
                        sn_help = "";
                        sn_labels = [];
                        sn_buckets = [||];
                        sn_series_rev = [];
                      }
              | "help" :: _, Some f ->
                  f.sn_help <-
                    snap_unescape (String.sub line 5 (String.length line - 5))
              | [ "labels"; ls ], Some f ->
                  f.sn_labels <- List.map snap_unescape (String.split_on_char ',' ls)
              | [ "buckets"; bs ], Some f -> (
                  let floats =
                    List.fold_left
                      (fun acc x ->
                        match (acc, float_of_string_opt x) with
                        | Some acc, Some v -> Some (v :: acc)
                        | _ -> None)
                      (Some []) (String.split_on_char ',' bs)
                  in
                  match floats with
                  | Some fs -> f.sn_buckets <- Array.of_list (List.rev fs)
                  | None ->
                      bad "unparsable bucket bounds for %s" f.sn_name;
                      ok := false)
              | [ "series"; lb; v ], Some f -> (
                  match (parse_labelblock lb, float_of_string_opt v) with
                  | Some labels, Some v ->
                      f.sn_series_rev <- (labels, v, 0, [||]) :: f.sn_series_rev
                  | _ ->
                      bad "unparsable series line for %s" f.sn_name;
                      ok := false)
              | "hseries" :: lb :: count :: sum :: buckets, Some f -> (
                  let bk =
                    List.fold_left
                      (fun acc x ->
                        match (acc, int_of_string_opt x) with
                        | Some acc, Some v -> Some (v :: acc)
                        | _ -> None)
                      (Some []) buckets
                  in
                  match
                    (parse_labelblock lb, int_of_string_opt count, float_of_string_opt sum, bk)
                  with
                  | Some labels, Some c, Some s, Some bk ->
                      f.sn_series_rev <-
                        (labels, s, c, Array.of_list (List.rev bk)) :: f.sn_series_rev
                  | _ ->
                      bad "unparsable hseries line for %s" f.sn_name;
                      ok := false)
              | _ ->
                  bad "unrecognized line %S" line;
                  ok := false)
          rest;
        flush ();
        if not !ok then 0
        else begin
          let merged = ref 0 in
          List.iter
            (fun sn ->
              let fam =
                try
                  match sn.sn_kind with
                  | "counter" ->
                      Some (counter ~help:sn.sn_help ~labels:sn.sn_labels sn.sn_name)
                  | "gauge" ->
                      Some (gauge ~help:sn.sn_help ~labels:sn.sn_labels sn.sn_name)
                  | "histogram" ->
                      Some
                        (histogram ~help:sn.sn_help ~labels:sn.sn_labels
                           ~buckets:sn.sn_buckets sn.sn_name)
                  | k ->
                      bad "unknown family kind %S for %s" k sn.sn_name;
                      None
                with Bgr_error.Error e ->
                  bad "family %s incompatible with registry: %s" sn.sn_name
                    e.Bgr_error.message;
                  None
              in
              match fam with
              | None -> ()
              | Some f ->
                  List.iter
                    (fun (labels, v, count, bk) ->
                      let applied =
                        locked @@ fun () ->
                        match
                          if List.sort compare (List.map fst labels) <> f.f_labelnames
                          then None
                          else Some (get_series f labels)
                        with
                        | None -> false
                        | Some s -> (
                            match f.f_kind with
                            | Counter ->
                                s.se_value <- s.se_value +. v;
                                true
                            | Gauge ->
                                s.se_value <- v;
                                true
                            | Histogram _ ->
                                if Array.length bk <> Array.length s.se_buckets then
                                  false
                                else begin
                                  Array.iteri
                                    (fun i c -> s.se_buckets.(i) <- s.se_buckets.(i) + c)
                                    bk;
                                  s.se_value <- s.se_value +. v;
                                  s.se_count <- s.se_count + count;
                                  true
                                end)
                      in
                      if applied then incr merged
                      else bad "series of %s skipped (label or bucket mismatch)" sn.sn_name)
                    (List.rev sn.sn_series_rev))
            (List.rev !fams_rev);
          !merged
        end
    | _ ->
        bad "missing bgr-metrics 1 header";
        0
end

let reset () =
  assert_orchestrator ~what:"reset";
  Trace.close_sinks ();
  Trace.reset ();
  Metrics.reset_values ();
  warnings_rev := [];
  if !enabled_flag then Trace.epoch := now_s ()
