(* The black-box flight recorder.  See flight.mli for the cost
   contract; the short version: [record] is a few unsafe byte stores
   into a preallocated per-domain arena, everything else (dumping,
   reading) is cold. *)

let magic = "BGRF1\n"
let header_bytes = String.length magic
let default_filename = "flight.bgrf"
let attempt_filename ~attempt = Printf.sprintf "flight-a%d.bgrf" attempt

(* --- event vocabulary ------------------------------------------------- *)

let k_deletion = 1
let k_phase = 2
let k_pass = 3
let k_journal_sync = 4
let k_snapshot = 5
let k_pool_round = 6
let k_serve_op = 7
let k_heartbeat = 8
let k_retry = 9
let k_stop = 10
let k_error = 11
let k_dump = 12
let k_worker_spawn = 13
let k_worker_kill = 14

let kind_name = function
  | 1 -> "deletion"
  | 2 -> "phase"
  | 3 -> "pass"
  | 4 -> "journal_sync"
  | 5 -> "snapshot"
  | 6 -> "pool_round"
  | 7 -> "serve_op"
  | 8 -> "heartbeat"
  | 9 -> "retry"
  | 10 -> "stop"
  | 11 -> "error"
  | 12 -> "dump"
  | 13 -> "worker_spawn"
  | 14 -> "worker_kill"
  | k -> Printf.sprintf "kind_%d" k

(* The journal's phase numbering, duplicated here because the recorder
   must not depend on bgr_persist (which depends on this library). *)
let phase_code = function
  | "initial_route" -> 0
  | "recover_violations" -> 1
  | "improve_delay" -> 2
  | "improve_area" -> 3
  | "final_recovery" -> 4
  | "final_delay" -> 5
  | _ -> 255

let phase_name = function
  | 0 -> "initial_route"
  | 1 -> "recover_violations"
  | 2 -> "improve_delay"
  | 3 -> "improve_area"
  | 4 -> "final_recovery"
  | 5 -> "final_delay"
  | _ -> "unknown"

let criterion_code = function
  | "delay" -> 1
  | "density" -> 2
  | "length" -> 3
  | "delay_count" -> 4
  | "gl_ld" -> 5
  | "only_candidate" -> 6
  | "id_tie_break" -> 7
  | _ -> 0

let criterion_name = function
  | 1 -> "delay"
  | 2 -> "density"
  | 3 -> "length"
  | 4 -> "delay_count"
  | 5 -> "gl_ld"
  | 6 -> "only_candidate"
  | 7 -> "id_tie_break"
  | _ -> "unknown"

(* Worst margins ride in the int-typed [d] field as milli-ps so the
   record path never boxes a float.  min_int is the nan sentinel and
   the magnitude saturates two steps short of it, so decode is
   unambiguous. *)
let margin_nan_sentinel = min_int
let margin_cap = max_int - 1

let margin_encode ps =
  if Float.is_nan ps then margin_nan_sentinel
  else
    let v = ps *. 1000.0 in
    if v >= float_of_int margin_cap then margin_cap
    else if v <= float_of_int (-margin_cap) then -margin_cap
    else int_of_float v

let margin_decode d = if d = margin_nan_sentinel then Float.nan else float_of_int d /. 1000.0

(* --- per-domain rings ------------------------------------------------- *)

let slot_bytes = 24
let ring_slots = 4096

type live_ring = {
  r_buf : Bytes.t;  (* ring_slots * slot_bytes, oldest overwritten first *)
  mutable r_next : int;  (* events ever recorded by this domain *)
  r_domain : int;
}

(* The registry of every ring ever created, for dump time.  Lock-free:
   a new domain CAS-prepends its ring once; readers just [Atomic.get].
   No mutex anywhere near this module — a dump triggered from a signal
   handler must never deadlock on a lock the interrupted code holds. *)
let registry : live_ring list Atomic.t = Atomic.make []

let register r =
  let rec go () =
    let old = Atomic.get registry in
    if not (Atomic.compare_and_set registry old (r :: old)) then go ()
  in
  go ()

let ring_key =
  Domain.DLS.new_key (fun () ->
      let r =
        { r_buf = Bytes.make (ring_slots * slot_bytes) '\000';
          r_next = 0;
          r_domain = (Domain.self () :> int) }
      in
      register r;
      r)

let enabled_flag = ref true
let enabled () = !enabled_flag
let set_enabled v = enabled_flag := v

(* Epoch and clock.  The raw clock is deliberately not monotonicized:
   that would need shared mutable state and a lock, and a rare
   backwards step only perturbs forensic timestamps, never routing. *)
let real_epoch = ref (Unix.gettimeofday ())
let test_clock : (unit -> float) option ref = ref None

let set_clock_for_tests c =
  test_clock := c;
  real_epoch := (match c with Some _ -> 0.0 | None -> Unix.gettimeofday ())

let epoch_s () = !real_epoch

let now_us () =
  match !test_clock with
  | Some f -> int_of_float (f () *. 1e6)
  | None -> int_of_float ((Unix.gettimeofday () -. !real_epoch) *. 1e6)

let reset_for_tests () =
  Atomic.set registry [];
  Domain.DLS.set ring_key
    { r_buf = Bytes.make (ring_slots * slot_bytes) '\000';
      r_next = 0;
      r_domain = (Domain.self () :> int) };
  register (Domain.DLS.get ring_key);
  real_epoch := (match !test_clock with Some _ -> 0.0 | None -> Unix.gettimeofday ())

(* Slot layout: kind u8 | a u8 | b u16 | c u32 | d i64 | t_us i64, all
   big-endian, written with unsafe char stores — no Int32/Int64 boxing
   on the hot path. *)
let put8 buf off v = Bytes.unsafe_set buf off (Char.unsafe_chr (v land 0xFF))

let put16 buf off v =
  put8 buf off (v lsr 8);
  put8 buf (off + 1) v

let put32 buf off v =
  put16 buf off (v lsr 16);
  put16 buf (off + 2) v

let put64 buf off v =
  (* OCaml ints are 63-bit; the top byte carries the sign extension. *)
  put8 buf off (v asr 56);
  put8 buf (off + 1) (v asr 48);
  put8 buf (off + 2) (v asr 40);
  put8 buf (off + 3) (v asr 32);
  put32 buf (off + 4) v

let record kind ~a ~b ~c ~d =
  if !enabled_flag then begin
    let r = Domain.DLS.get ring_key in
    let off = r.r_next mod ring_slots * slot_bytes in
    let buf = r.r_buf in
    put8 buf off kind;
    put8 buf (off + 1) a;
    put16 buf (off + 2) b;
    put32 buf (off + 4) c;
    put64 buf (off + 8) d;
    put64 buf (off + 16) (now_us ());
    r.r_next <- r.r_next + 1
  end

let recorded () = (Domain.DLS.get ring_key).r_next

(* --- dumping ---------------------------------------------------------- *)

(* Frame kinds inside a BGRF1 file. *)
let fr_header = 0x01
let fr_ring = 0x02

let add_u32 b v = Buffer.add_int32_be b (Int32.of_int v)

let add_frame b payload =
  add_u32 b (String.length payload);
  Buffer.add_string b payload;
  add_u32 b (Crc32.string payload)

let header_payload ~reason =
  let b = Buffer.create (32 + String.length reason) in
  Buffer.add_uint8 b fr_header;
  Buffer.add_uint8 b 1 (* codec version *);
  add_u32 b (Unix.getpid ());
  Buffer.add_int64_be b (Int64.bits_of_float (epoch_s ()));
  add_u32 b (String.length reason);
  Buffer.add_string b reason;
  Buffer.contents b

let ring_payload r =
  (* Copy the arena first: the owner domain may still be writing.  A
     slot torn by that race decodes to a nonsense event, it cannot
     damage the framing. *)
  let total = r.r_next in
  let retained = min total ring_slots in
  let b = Buffer.create ((retained * slot_bytes) + 32) in
  Buffer.add_uint8 b fr_ring;
  add_u32 b r.r_domain;
  Buffer.add_int64_be b (Int64.of_int total);
  add_u32 b retained;
  (* Oldest first: when the ring has wrapped the oldest slot is the one
     [r_next] would overwrite next. *)
  let first = if total <= ring_slots then 0 else total mod ring_slots in
  for i = 0 to retained - 1 do
    let slot = (first + i) mod ring_slots in
    Buffer.add_subbytes b r.r_buf (slot * slot_bytes) slot_bytes
  done;
  Buffer.contents b

let dump_string ~reason =
  let rings = List.rev (Atomic.get registry) in
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  add_frame b (header_payload ~reason);
  List.iter (fun r -> add_frame b (ring_payload r)) rings;
  Buffer.contents b

let dump_file ?(trigger = 4) ~reason path =
  record k_dump ~a:trigger ~b:0 ~c:0 ~d:0;
  match
    let image = dump_string ~reason in
    try Obs.write_file_atomic path image
    with _ ->
      (* Fall back to a direct write: on a dying process a dump with a
         torn tail still beats no dump. *)
      let oc = open_out_bin path in
      output_string oc image;
      close_out oc
  with
  | () -> true
  | exception _ -> false

let install_sigquit_dump ~path ?after () =
  match
    Sys.set_signal Sys.sigquit
      (Sys.Signal_handle
         (fun _ ->
           try
             let p = path () in
             if dump_file ~trigger:1 ~reason:"sigquit" p then
               match after with Some f -> f p | None -> ()
           with _ -> ()))
  with
  | () -> ()
  | exception _ -> () (* some environments refuse handler installs *)

(* --- reading ---------------------------------------------------------- *)

type event = { e_kind : int; e_a : int; e_b : int; e_c : int; e_d : int; e_t_us : int }
type ring = { rg_domain : int; rg_total : int; rg_events : event list }

type dump = {
  f_pid : int;
  f_reason : string;
  f_epoch_s : float;
  f_rings : ring list;
  f_torn : bool;
  f_warnings : string list;
}

let get_u32 s pos = Int32.to_int (String.get_int32_be s pos) land 0xFFFFFFFF

let decode_event s pos =
  { e_kind = Char.code s.[pos];
    e_a = Char.code s.[pos + 1];
    e_b = (Char.code s.[pos + 2] lsl 8) lor Char.code s.[pos + 3];
    e_c = get_u32 s (pos + 4);
    e_d = Int64.to_int (String.get_int64_be s (pos + 8));
    e_t_us = Int64.to_int (String.get_int64_be s (pos + 16)) }

exception Bad_payload of string

let parse_header s =
  if String.length s < 18 then raise (Bad_payload "header frame too short");
  let version = Char.code s.[1] in
  if version <> 1 then raise (Bad_payload (Printf.sprintf "unknown codec version %d" version));
  let pid = get_u32 s 2 in
  let epoch = Int64.float_of_bits (String.get_int64_be s 6) in
  let rlen = get_u32 s 14 in
  if String.length s <> 18 + rlen then raise (Bad_payload "header frame length mismatch");
  (pid, epoch, String.sub s 18 rlen)

let parse_ring s =
  if String.length s < 17 then raise (Bad_payload "ring frame too short");
  let domain = get_u32 s 1 in
  let total = Int64.to_int (String.get_int64_be s 5) in
  let n = get_u32 s 13 in
  if String.length s <> 17 + (n * slot_bytes) then
    raise (Bad_payload "ring frame length mismatch");
  let events = List.init n (fun i -> decode_event s (17 + (i * slot_bytes))) in
  { rg_domain = domain; rg_total = total; rg_events = events }

let read_string ?file s =
  let len = String.length s in
  if len < header_bytes || String.sub s 0 header_bytes <> magic then
    Error (Bgr_error.make ?file ~phase:"obs" Bgr_error.Parse "not a bgr flight record")
  else begin
    let parse_err fmt = Printf.ksprintf (fun m -> Bgr_error.make ?file ~phase:"obs" Bgr_error.Parse "%s" m) fmt in
    let header = ref None and rings = ref [] in
    let result = ref None in
    let warnings = ref [] in
    let finish ~torn ~warning =
      (match warning with Some w -> warnings := w :: !warnings | None -> ());
      match !header with
      | None -> result := Some (Error (parse_err "flight record has no intact header frame"))
      | Some (pid, epoch, reason) ->
        result :=
          Some
            (Ok
               { f_pid = pid;
                 f_reason = reason;
                 f_epoch_s = epoch;
                 f_rings = List.rev !rings;
                 f_torn = torn;
                 f_warnings = List.rev !warnings })
    in
    let pos = ref header_bytes in
    while !result = None do
      let p = !pos in
      if p = len then finish ~torn:false ~warning:None
      else if len - p < 4 then
        finish ~torn:true
          ~warning:(Some (Printf.sprintf "flight record truncated at byte %d (partial length prefix)" p))
      else begin
        let l = get_u32 s p in
        let frame_end = p + 4 + l + 4 in
        if l < 1 || l > 0xFFFFFF then
          result := Some (Error (parse_err "flight record corrupt at byte %d: implausible frame length %d" p l))
        else if frame_end > len then
          finish ~torn:true
            ~warning:(Some (Printf.sprintf "flight record truncated at byte %d (torn frame discarded)" p))
        else begin
          let crc = get_u32 s (p + 4 + l) in
          if Crc32.update 0 s (p + 4) l <> crc then begin
            if frame_end = len then
              finish ~torn:true
                ~warning:(Some (Printf.sprintf "flight record truncated at byte %d (bad CRC on the final frame)" p))
            else
              result := Some (Error (parse_err "flight record corrupt at byte %d: CRC mismatch before the final frame" p))
          end
          else begin
            let payload = String.sub s (p + 4) l in
            (match
               let tag = Char.code payload.[0] in
               if tag = fr_header then header := Some (parse_header payload)
               else if tag = fr_ring then rings := parse_ring payload :: !rings
               else warnings := Printf.sprintf "skipping unknown frame tag 0x%02x at byte %d" tag p :: !warnings
             with
            | () -> pos := frame_end
            | exception Bad_payload msg ->
              result := Some (Error (parse_err "flight record corrupt at byte %d: %s" p msg)))
          end
        end
      end
    done;
    Option.get !result
  end

let read ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> read_string ~file:path s
  | exception Sys_error msg ->
    Error (Bgr_error.make ~file:path ~phase:"obs" Bgr_error.Io_error "%s" msg)
