(** First-class observability for the routing pipeline: a span-based
    tracer ({!Trace}) and a metrics registry ({!Metrics}), both
    process-global, zero-dependency, and {e off} by default.

    Everything in this module is strictly read-only with respect to
    routing state.  Turning observability on or off must never change
    a routing decision: a run with tracing enabled produces a
    [deletion_hash] byte-identical to the same run without it (this is
    asserted by [test/test_obs.ml]).

    {2 Ownership}

    The tracer and the registry belong to the {e orchestrating} domain,
    the same discipline [Par.assert_orchestrator] enforces for the
    write-ahead journal.  Hot-path record calls ({!Trace.span},
    {!Metrics.inc}, {!Metrics.observe}, ...) issued from inside a pool
    worker are {e silently dropped} rather than raised on, because
    benchmark suites legitimately route whole cases inside workers;
    rendering and configuration, however, are orchestrator-only.

    {2 Failure policy}

    Observability must never fail a run.  A sink whose write raises
    (disk full, unwritable path, injected [obs.sink] fault) is closed
    and replaced by an entry in {!warnings}; routing continues. *)

val enabled : unit -> bool
(** True between {!enable} and {!disable}.  All record calls are
    no-ops while disabled. *)

val enable : unit -> unit
(** Turn recording on.  The first call fixes the trace epoch: span
    timestamps are reported relative to it. *)

val disable : unit -> unit

val reset : unit -> unit
(** Clear all recorded spans, all metric series (registered families
    survive, their series restart from zero), all warnings, and the
    trace epoch.  Orchestrator-only.  Sinks are closed first. *)

val now_s : unit -> float
(** Monotonicized wall clock in seconds (never steps backwards), or
    the injected test clock. *)

val set_clock_for_tests : (unit -> float) option -> unit
(** Replace the clock with a deterministic one ([None] restores the
    real clock).  Golden-output tests use a step counter here. *)

val set_worker_probe : (unit -> bool) -> unit
(** Install the "am I inside a pool worker?" probe.  [Par] installs
    [Par.in_worker] at module-load time; the indirection keeps [Obs]
    free of a dependency cycle with [Par]. *)

val warnings : unit -> string list
(** Degradation warnings (failed sinks, unwritable metric files), in
    the order they occurred. *)

val write_file_atomic : string -> string -> unit
(** Atomic durable rewrite in the Persist discipline: write
    [path ^ ".tmp"], flush, [fsync] the temp file, rename.  A reader
    (or a post-power-loss boot) observes either the previous content
    or the new one, never a zero-length or partial file.  Used by the
    [--metrics] scrape-target rewrites and the flight-recorder dump.
    Raises [Sys_error] when the file cannot be written. *)

val warn : ('a, unit, string, unit) format4 -> 'a
(** Append to {!warnings}. *)

module Trace : sig
  (** Span-based tracing.  Spans nest: {!span} pushes a scope, runs the
      thunk, pops and records on the way out (exceptions included).
      Completed spans are kept in memory (capped) for {!completed} /
      report tables, and streamed to any open sinks. *)

  type attr = Str of string | Int of int | Float of float | Bool of bool

  val attr_to_string : attr -> string

  type span = {
    sp_name : string;
    sp_start_us : float;  (** microseconds since the trace epoch *)
    sp_dur_us : float;  (** 0 for instant events *)
    sp_depth : int;  (** nesting depth at the time the span opened *)
    sp_id : int;  (** process-local span ordinal, 1-based *)
    sp_parent : int;  (** enclosing span's id, 0 for roots *)
    sp_pid : int;  (** recording process, see {!set_pid} (default 1) *)
    sp_attrs : (string * attr) list;
  }

  val span : ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a
  (** [span name f] runs [f ()] inside a scope named [name].  While
      disabled or on a pool worker this is exactly [f ()]. *)

  val instant : ?attrs:(string * attr) list -> string -> unit
  (** A zero-duration event at the current time. *)

  val add_attr : string -> attr -> unit
  (** Attach an attribute to the innermost open span (no-op when there
      is none, when disabled, or on a worker). *)

  val completed : unit -> span list
  (** Completed spans and instants in completion order (a parent span
      therefore follows its children).  Capped at an internal limit;
      once full, further spans still reach the sinks but are not
      retained here. *)

  val to_chrome_file : string -> unit
  (** Open a Chrome [trace_event] JSON sink (an array of ["X"] complete
      events and ["i"] instants, loadable in Perfetto or
      [chrome://tracing]).  Failure to open degrades to a warning. *)

  val to_jsonl_file : string -> unit
  (** Open a line-oriented JSONL sink: one JSON object per completed
      span.  Failure to open degrades to a warning.  Opening a sink of
      a kind that is already open closes the previous one and records a
      warning (its file may end mid-stream). *)

  val close_sinks : unit -> unit
  (** Flush and close both sinks (writes the closing ["]"] of the
      Chrome array).  Idempotent. *)

  (** {2 Cross-process stitching}

      A merged multi-process timeline keys spans by [(pid, id)].  The
      supervising daemon hands each worker a trace id and the id of its
      own [serve.worker] span; the worker records with its real pid and
      links its roots under that parent, and the daemon re-emits the
      worker's spans through {!emit_foreign}. *)

  val set_pid : int -> unit
  (** Set the pid recorded on subsequently emitted spans.  Defaults to
      1 (deterministic for golden tests); daemons and workers set their
      real [Unix.getpid ()] when stitching is on. *)

  val set_trace_id : string option -> unit
  (** Set (or clear) the ambient trace id.  While set, every emitted
      span carries a [trace_id] attribute; the daemon scopes it per
      job, the worker inherits it via argv. *)

  val trace_id : unit -> string option

  val set_parent_span : int option -> unit
  (** Link subsequently opened depth-0 spans under a span of another
      process (by that span's id).  Nested spans are unaffected. *)

  val current_span_id : unit -> int option
  (** Id of the innermost open span, if any (the supervisor captures
      its [serve.worker] span id here to hand to the worker). *)

  val epoch_s : unit -> float
  (** Absolute wall-clock seconds of the trace epoch ([nan] before the
      first {!Obs.enable}).  Epoch deltas re-base foreign span
      timestamps during stitching. *)

  val emit_foreign : span -> unit
  (** Record a span captured by another process as-is: its id, parent,
      pid and (already re-based) timestamps are preserved.  No-op while
      disabled. *)
end

module Metrics : sig
  (** A Prometheus-flavoured registry: named families of counters,
      gauges, and fixed-bucket histograms, each family carrying
      labelled series.  Families are registered once at module load
      (registration is idempotent; re-registering with a different
      kind, bucket layout, or label set raises [Bgr_error.Error
      Internal]).  Mutations are dropped while disabled or on a pool
      worker; rendering is orchestrator-only. *)

  type family

  val counter : ?help:string -> ?labels:string list -> string -> family
  (** Monotonically increasing total.  [labels] declares the exact
      label-name set every series of this family must carry. *)

  val gauge : ?help:string -> ?labels:string list -> string -> family

  val histogram :
    ?help:string -> ?labels:string list -> ?buckets:float array -> string -> family
  (** [buckets] are the finite upper bounds, strictly increasing; a
      [+Inf] bucket is implicit.  The default layout suits latencies
      in seconds (100µs .. 10s, roughly logarithmic). *)

  val inc : ?labels:(string * string) list -> ?by:float -> family -> unit
  (** Counter only; [by] defaults to 1 and must be >= 0. *)

  val set : ?labels:(string * string) list -> family -> float -> unit
  (** Gauge only. *)

  val observe : ?labels:(string * string) list -> family -> float -> unit
  (** Histogram only. *)

  val value : ?labels:(string * string) list -> family -> float option
  (** Current value of a counter/gauge series; [None] if the series
      has never been touched. *)

  val histogram_snapshot :
    ?labels:(string * string) list -> family -> (float array * int array * float * int) option
  (** [(bounds, per-bucket counts incl. +Inf, sum, count)] of a
      histogram series.  [counts] are per-bucket (not cumulative). *)

  val series : family -> ((string * string) list * float) list
  (** Label-set/value pairs of every live series of a counter or gauge
      family, in first-use order.  Histograms yield their [_sum]. *)

  val render_prometheus : unit -> string
  (** Text-exposition format: [# HELP] / [# TYPE] per family, then one
      sample per series; histograms render cumulative [le] buckets plus
      [_sum] and [_count].  Families registered but never touched still
      render their header lines, so the catalogue is greppable even on
      runs that never exercise a subsystem. *)

  val render_json : unit -> string
  (** The whole registry as one compact JSON object (single line),
      suitable for embedding in benchmark trajectory files. *)

  val snapshot : unit -> string
  (** The whole registry in the line-oriented [bgr-metrics 1] snapshot
      format (see docs/FORMATS.md): every family with its kind, help,
      label names and bucket bounds, then one line per live series.
      Written by a worker just before exit; exact under
      {!merge_snapshot} (values carry full float precision). *)

  val merge_snapshot : ?source:string -> string -> int
  (** Merge a [bgr-metrics 1] snapshot into this registry: counter
      series and histogram buckets/sums/counts {e add}, gauges take the
      snapshot's value, unknown families are registered on the fly.
      Returns the number of series merged.  Never raises: malformed
      input, kind/label/bucket mismatches degrade to {!Obs.warnings}
      (tagged with [source]) and the offending part is skipped. *)
end
