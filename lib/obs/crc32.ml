let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc s pos len =
  let t = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code s.[i]) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let string s = update 0 s 0 (String.length s)
