type t = { fd : Unix.file_descr; mutable rbuf : string; mutable open_ : bool }

let io_error fmt =
  Printf.ksprintf (fun m -> Error (Bgr_error.make ~phase:"serve" Bgr_error.Io_error "%s" m)) fmt

let close c =
  if c.open_ then begin
    c.open_ <- false;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let write_all fd s =
  let n = String.length s in
  let rec go pos =
    if pos >= n then Ok ()
    else
      match Unix.write_substring fd s pos (n - pos) with
      | written -> go (pos + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
      | exception Unix.Unix_error (e, _, _) -> io_error "write: %s" (Unix.error_message e)
  in
  go 0

(* Read until [want c.rbuf] yields, honouring the optional deadline. *)
let read_until ?timeout_s c want =
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout_s in
  let buf = Bytes.create 65536 in
  let rec go () =
    match want () with
    | Some v -> Ok v
    | None ->
      let wait =
        match deadline with
        | None -> Ok (-1.0)
        | Some d ->
          let left = d -. Unix.gettimeofday () in
          if left <= 0.0 then
            Error (Bgr_error.make ~phase:"serve" Bgr_error.Deadline "reply timed out")
          else Ok left
      in
      Result.bind wait @@ fun wait ->
      let ready =
        match Unix.select [ c.fd ] [] [] wait with
        | [], _, _ -> false
        | _ -> true
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
      in
      if not ready then go ()
      else begin
        match Unix.read c.fd buf 0 (Bytes.length buf) with
        | 0 -> io_error "connection closed by the daemon"
        | n ->
          c.rbuf <- c.rbuf ^ Bytes.sub_string buf 0 n;
          go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error (e, _, _) -> io_error "read: %s" (Unix.error_message e)
      end
  in
  go ()

let connect path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Bgr_error.make ~phase:"serve" ~file:path Bgr_error.Io_error "cannot connect: %s"
         (Unix.error_message e))
  | () -> (
    let c = { fd; rbuf = ""; open_ = true } in
    let magic_len = String.length Wire.magic in
    let banner =
      Result.bind (write_all fd Wire.magic) @@ fun () ->
      read_until ~timeout_s:10.0 c (fun () ->
          if String.length c.rbuf >= magic_len then Some (String.sub c.rbuf 0 magic_len)
          else None)
    in
    match banner with
    | Error e ->
      close c;
      Error e
    | Ok banner when banner <> Wire.magic ->
      close c;
      Error
        (Bgr_error.make ~phase:"serve" ~file:path Bgr_error.Parse
           "the peer is not a bgr daemon (banner %S)" banner)
    | Ok _ ->
      c.rbuf <- String.sub c.rbuf magic_len (String.length c.rbuf - magic_len);
      Ok c)

let send c req =
  if not c.open_ then io_error "connection is closed" else write_all c.fd (Wire.encode_request req)

let next_reply ?timeout_s c =
  if not c.open_ then io_error "connection is closed"
  else begin
    let frame = ref None in
    let result =
      read_until ?timeout_s c (fun () ->
          match Wire.extract_frame c.rbuf ~pos:0 with
          | Wire.Need _ -> None
          | Wire.Frame (payload, used) ->
            c.rbuf <- String.sub c.rbuf used (String.length c.rbuf - used);
            frame := Some (Ok payload);
            Some ()
          | Wire.Bad e ->
            frame := Some (Error e);
            Some ())
    in
    Result.bind result @@ fun () ->
    match !frame with
    | Some (Ok payload) -> Wire.decode_reply payload
    | Some (Error e) -> Error e
    | None -> Error (Bgr_error.make ~phase:"serve" Bgr_error.Internal "no frame after read")
  end

let request ?timeout_s c req = Result.bind (send c req) (fun () -> next_reply ?timeout_s c)
