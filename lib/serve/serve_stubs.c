/* Worker-side resource limits.  The OCaml Unix library exposes no
   setrlimit binding, so the one call the worker needs — an address
   space ceiling, turning a runaway allocation into a catchable
   Out_of_memory instead of an OOM-killer SIGKILL — lives here.
   libc only, no external dependencies. */

#include <caml/mlvalues.h>
#include <caml/memory.h>

#include <sys/resource.h>

/* Returns 0 on success, the errno on failure.  mb <= 0 is a no-op. */
CAMLprim value bgr_serve_set_mem_limit_mb(value mb)
{
  CAMLparam1(mb);
  long limit_mb = Long_val(mb);
  if (limit_mb <= 0) CAMLreturn(Val_long(0));
  struct rlimit rl;
  rl.rlim_cur = (rlim_t)limit_mb * 1024 * 1024;
  rl.rlim_max = (rlim_t)limit_mb * 1024 * 1024;
  if (setrlimit(RLIMIT_AS, &rl) != 0) CAMLreturn(Val_long(1));
  CAMLreturn(Val_long(0));
}
