(* The daemon.  Two domains: the event loop (this one) and the executor
   (spawned, the sole routing orchestrator).  Under [Workers] isolation
   the executor additionally forks one worker subprocess per routing
   attempt and supervises it ({!Worker}).  See serve.mli. *)

type isolation = In_process | Workers of string array

type config = {
  socket_path : string;
  spool_root : string;
  queue_cap : int;
  max_attempts : int;
  backoff_base_ms : float;
  backoff_max_ms : float;
  job_domains : int;
  default_deadline_ms : int option;
  install_signals : bool;
  isolation : isolation;
  heartbeat_timeout_ms : float;
  hard_deadline_grace_ms : float;
  mem_limit_mb : int;
  quarantine_kills : int;
  stitch_workers : bool;
  metrics_path : string option;
  metrics_interval_s : float;
  log : string -> unit;
}

let default_config ~socket_path ~spool_root =
  { socket_path;
    spool_root;
    queue_cap = 16;
    max_attempts = 2;
    backoff_base_ms = 250.0;
    backoff_max_ms = 30_000.0;
    job_domains = 0;
    default_deadline_ms = None;
    install_signals = false;
    isolation = In_process;
    heartbeat_timeout_ms = 10_000.0;
    hard_deadline_grace_ms = 30_000.0;
    mem_limit_mb = 0;
    quarantine_kills = 3;
    stitch_workers = false;
    metrics_path = None;
    metrics_interval_s = 0.0;
    log = ignore }

type stats = {
  s_requeued : int;
  s_accepted : int;
  s_completed : int;
  s_failed : int;
  s_retried : int;
  s_rejected : int;
  s_protocol_errors : int;
  s_canceled : int;
  s_quarantined : int;
  s_killed : int;
}

(* --- metrics ----------------------------------------------------------- *)

let m_queue_depth = Obs.Metrics.gauge ~help:"Jobs queued or running" "serve_queue_depth"

let m_jobs =
  Obs.Metrics.counter ~help:"Job admissions and outcomes" ~labels:[ "outcome" ]
    "serve_jobs_total"

let m_rejections =
  Obs.Metrics.counter ~help:"Submissions refused by admission control"
    ~labels:[ "reason" ] "serve_rejections_total"

let m_retries = Obs.Metrics.counter ~help:"Job attempt retries" "serve_retries_total"

let m_latency =
  Obs.Metrics.histogram ~help:"Queue-to-completion job latency (ms)"
    ~buckets:[| 10.; 30.; 100.; 300.; 1000.; 3000.; 10000.; 30000. |]
    "serve_job_latency_ms"

let m_protocol_errors =
  Obs.Metrics.counter ~help:"Malformed frames or requests answered with an error"
    "serve_protocol_errors_total"

let m_connections = Obs.Metrics.counter ~help:"Accepted connections" "serve_connections_total"

let m_worker_spawns =
  Obs.Metrics.counter ~help:"Routing worker subprocesses spawned" "serve_worker_spawns_total"

let m_worker_kills =
  Obs.Metrics.counter ~help:"Routing workers killed, by watchdog reason"
    ~labels:[ "reason" ] "serve_worker_kills_total"

let m_worker_heartbeats =
  Obs.Metrics.counter ~help:"Heartbeat frames received from workers"
    "serve_worker_heartbeats_total"

let m_cancels =
  Obs.Metrics.counter ~help:"Cancel requests received" "serve_cancel_requests_total"

let m_progress_frames =
  Obs.Metrics.counter ~help:"Progress frames fanned out to watch subscribers"
    "serve_progress_frames_total"

let m_watch_shed =
  Obs.Metrics.counter
    ~help:"Watch subscriptions shed because the subscriber read too slowly"
    "serve_watch_shed_total"

let m_stats_requests =
  Obs.Metrics.counter ~help:"Live stats snapshots served" "serve_stats_requests_total"

(* --- shared state between the two domains ------------------------------ *)

type completion_kind = K_done | K_failed | K_canceled | K_quarantined | K_interrupted

type completion = {
  c_id : string;
  c_kind : completion_kind;
  c_json : string;
  c_latency_ms : float;
}

type shared = {
  mutex : Mutex.t;
  cond : Condition.t;  (** work available, or [stop] *)
  queue : Spool.job Queue.t;
  mutable running : string option;
  mutable stop : bool;  (** drain: executor exits after the current job *)
  mutable executor_done : bool;
  mutable completions : completion list;  (** reversed; loop drains it *)
  mutable retried : int;
  mutable killed : int;  (** worker kills (watchdog or external) *)
  mutable cancel : string option;  (** kill this job's worker, answer canceled *)
  mutable worker_pid : int option;
      (** the running attempt's worker pid — the [dump] opcode's
          SIGQUIT target *)
  mutable progress : Worker.progress option;
      (** running job's latest heartbeat *)
  mutable progress_events : (string * Worker.progress) list;
      (** reversed; the loop fans these out to watch subscribers *)
  mutable progress_pending : int;  (** length of [progress_events] *)
  mutable progress_dropped : int;  (** events dropped at the bound *)
  wake_w : Unix.file_descr;
}

(* The executor (or an in-process quality hook) publishes one progress
   event.  Bounded: the event list is transient UI fan-out, so when
   the loop falls behind we drop rather than grow — the final result
   is never carried this way. *)
let progress_bound = 1024

let locked sh f =
  Mutex.lock sh.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock sh.mutex) f

let wake sh =
  try ignore (Unix.write_substring sh.wake_w "x" 0 1)
  with Unix.Unix_error _ -> ()

let depth_unlocked sh = Queue.length sh.queue + match sh.running with Some _ -> 1 | None -> 0

let push_progress sh id (p : Worker.progress) =
  locked sh (fun () ->
      sh.progress <- Some p;
      if sh.progress_pending >= progress_bound then
        sh.progress_dropped <- sh.progress_dropped + 1
      else begin
        sh.progress_events <- (id, p) :: sh.progress_events;
        sh.progress_pending <- sh.progress_pending + 1
      end);
  wake sh

(* --- job results ------------------------------------------------------- *)

let canceled_json id ~attempts =
  Qjson.to_string
    (Qjson.Obj
       [ ("job", Qjson.Str id);
         ("ok", Qjson.Bool false);
         ("code", Qjson.Str "canceled");
         ("error", Qjson.Str (Printf.sprintf "job %s canceled by operator request" id));
         ("attempts", Qjson.int attempts) ])

let quarantined_json id (e : Bgr_error.t) ~attempts ~kills ~last_kill =
  Qjson.to_string
    (Qjson.Obj
       [ ("job", Qjson.Str id);
         ("ok", Qjson.Bool false);
         ("code", Qjson.Str "quarantined");
         ("error", Qjson.Str (Bgr_error.to_string e));
         ("attempts", Qjson.int attempts);
         ("kills", Qjson.int kills);
         ("last_kill", Qjson.Str last_kill) ])

(* --- the executor ------------------------------------------------------ *)

let worker_args cfg dir =
  [ "--dir"; dir; "--domains"; string_of_int cfg.job_domains ]
  @ (match cfg.default_deadline_ms with
    | None -> []
    | Some ms -> [ "--default-deadline-ms"; string_of_int ms ])
  @ if cfg.mem_limit_mb > 0 then [ "--mem-limit-mb"; string_of_int cfg.mem_limit_mb ]
    else []

let supervise_attempt cfg sh prefix spool (job : Spool.job) =
  let id = job.Spool.j_id in
  let dir = Spool.job_dir spool id in
  let argv = Array.append prefix (Array.of_list (worker_args cfg dir)) in
  let hard_deadline_ms =
    match
      match job.Spool.j_deadline_ms with
      | Some ms -> Some ms
      | None -> cfg.default_deadline_ms
    with
    | None -> infinity
    | Some ms -> float_of_int ms +. cfg.hard_deadline_grace_ms
  in
  Obs.Metrics.inc m_worker_spawns;
  Obs.Trace.span ~attrs:[ ("job", Obs.Trace.Str id) ] "serve.worker" @@ fun () ->
  (* The stitch handshake is decided here, inside the serve.worker
     span, so the worker's depth-0 spans hang off exactly this span in
     the merged timeline. *)
  let stitch_args =
    if not cfg.stitch_workers then []
    else
      [ "--obs" ]
      @ (match Obs.Trace.trace_id () with
        | None -> []
        | Some tid -> [ "--trace-id"; tid ])
      @
      match Obs.Trace.current_span_id () with
      | None -> []
      | Some n -> [ "--parent-span"; string_of_int n ]
  in
  let argv = Array.append argv (Array.of_list stitch_args) in
  let obs_summary = ref None in
  let result =
    Worker.supervise ~heartbeat_timeout_ms:cfg.heartbeat_timeout_ms ~hard_deadline_ms
      ~canceled:(fun () -> locked sh (fun () -> sh.cancel = Some id))
      ~on_progress:(fun p ->
        Obs.Metrics.inc m_worker_heartbeats;
        Flight.record Flight.k_heartbeat ~a:(Flight.phase_code p.Worker.p_phase)
          ~b:p.Worker.p_pass ~c:p.Worker.p_deletions
          ~d:(Flight.margin_encode p.Worker.p_worst_margin_ps);
        push_progress sh id p)
      ~on_obs:(fun json -> obs_summary := Some json)
      ~on_spawn:(fun pid ->
        locked sh (fun () -> sh.worker_pid <- Some pid);
        cfg.log (Printf.sprintf "job %s: worker pid %d" id pid))
      ~on_dump:(fun path -> cfg.log (Printf.sprintf "job %s: flight record at %s" id path))
      ~log:cfg.log ~argv ()
  in
  locked sh (fun () -> sh.worker_pid <- None);
  (match !obs_summary with
  | Some summary_json when cfg.stitch_workers ->
    let r = Stitch.merge ~dir ~summary_json () in
    cfg.log
      (Printf.sprintf "job %s: stitched %d worker spans, %d metric series" id r.Stitch.st_spans
         r.Stitch.st_series)
  | _ -> ());
  result

let run_job cfg spool sh (job : Spool.job) =
  let id = job.Spool.j_id in
  let t0 = Unix.gettimeofday () in
  let current = ref job in
  let was_canceled = ref false in
  let quarantine = ref false in
  let giveup () = locked sh (fun () -> sh.stop || sh.cancel = Some id) in
  (* One trace id per job: the daemon's serve.job/serve.worker spans
     and (under stitching) the worker's own spans all carry it, so a
     single id query in the merged trace selects the whole job. *)
  Obs.Trace.set_trace_id (Some ("job-" ^ id));
  let outcome =
    Fun.protect ~finally:(fun () -> Obs.Trace.set_trace_id None) @@ fun () ->
    Obs.Trace.span ~attrs:[ ("job", Obs.Trace.Str id) ] "serve.job" @@ fun () ->
    Retry.run ~max_attempts:cfg.max_attempts ~base_ms:cfg.backoff_base_ms
      ~max_ms:cfg.backoff_max_ms ~jitter_seed:(Hashtbl.hash id) ~giveup
      ~on_retry:(fun ~attempt e ->
        Obs.Metrics.inc m_retries;
        Flight.record Flight.k_retry ~a:(attempt land 0xFF) ~b:0 ~c:0 ~d:0;
        locked sh (fun () -> sh.retried <- sh.retried + 1);
        cfg.log
          (Printf.sprintf "job %s: attempt %d failed (%s); retrying" id attempt
             (Bgr_error.to_string e)))
      (fun ~attempt:_ ->
        current := Spool.record_attempt spool !current;
        match Fault.check ~phase:"serve" "serve.job" with
        | exception Bgr_error.Error e -> Error e
        | () -> (
          match cfg.isolation with
          | In_process ->
            let dir = Spool.job_dir spool id in
            let budget =
              Worker.budget_of ?default_deadline_ms:cfg.default_deadline_ms !current
            in
            let on_quality, quality_finish =
              Worker.quality_sink ~log:cfg.log (Filename.concat dir Qlog.default_filename)
            in
            (* In-process attempts have no heartbeat stream; quality
               samples stand in so [watch] works under both isolations. *)
            let on_quality s =
              push_progress sh id
                { Worker.p_phase = s.Router.qs_phase;
                  p_pass = s.Router.qs_pass;
                  p_deletions = s.Router.qs_deletions;
                  p_worst_margin_ps = s.Router.qs_worst_margin_ps };
              match on_quality with Some f -> f s | None -> ()
            in
            Result.map
              (fun o ->
                Worker.result_json id o.Flow.o_measurement
                  ~attempts:(!current).Spool.j_attempts)
              (Fun.protect ~finally:quality_finish (fun () ->
                   Worker.attempt ~domains:cfg.job_domains ~budget ~on_quality ~dir
                     !current))
          | Workers prefix -> (
            match supervise_attempt cfg sh prefix spool !current with
            | Ok json -> Ok json
            | Error (Worker.Failed { code; message }) ->
              let code =
                Option.value (Bgr_error.code_of_name code) ~default:Bgr_error.Internal
              in
              Error (Bgr_error.make code "%s" message)
            | Error (Worker.Spawn_error msg) ->
              Error
                (Bgr_error.make ~phase:"serve" Bgr_error.Fault "worker spawn failed: %s"
                   msg)
            | Error (Worker.Killed { reason = Worker.Canceled; _ }) ->
              was_canceled := true;
              Error (Bgr_error.make ~phase:"serve" Bgr_error.Validate "job %s canceled" id)
            | Error (Worker.Killed { reason; detail }) ->
              let reason_s = Worker.kill_reason_string reason in
              Obs.Metrics.inc ~labels:[ ("reason", reason_s) ] m_worker_kills;
              locked sh (fun () -> sh.killed <- sh.killed + 1);
              current := Spool.record_kill spool !current ~reason:reason_s;
              cfg.log
                (Printf.sprintf "job %s: worker killed (%s): %s [kill %d, quarantine at %d]"
                   id reason_s detail (!current).Spool.j_kills cfg.quarantine_kills);
              if reason = Worker.Hard_deadline then
                Error
                  (Bgr_error.make ~phase:"serve" Bgr_error.Deadline
                     "worker exceeded the hard wall deadline (%s)" detail)
              else if (!current).Spool.j_kills >= cfg.quarantine_kills then begin
                quarantine := true;
                Error
                  (Bgr_error.make ~phase:"serve" Bgr_error.Internal
                     "quarantined after %d worker kills (last: %s)"
                     (!current).Spool.j_kills reason_s)
              end
              else
                Error
                  (Bgr_error.make ~phase:"serve" Bgr_error.Fault "worker killed (%s): %s"
                     reason_s detail))))
  in
  locked sh (fun () -> sh.progress <- None);
  let attempts = !current.Spool.j_attempts in
  let latency_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  Obs.Metrics.observe m_latency latency_ms;
  let c_kind, c_json =
    match outcome.Retry.result with
    | Ok json ->
      Spool.mark_done spool id ~json;
      Obs.Metrics.inc ~labels:[ ("outcome", "completed") ] m_jobs;
      cfg.log
        (Printf.sprintf "job %s: done in %.0f ms (%d attempt%s)" id latency_ms attempts
           (if attempts = 1 then "" else "s"));
      (K_done, json)
    | Error e ->
      if !was_canceled || (outcome.Retry.gave_up && locked sh (fun () -> sh.cancel = Some id))
      then begin
        let json = canceled_json id ~attempts in
        Spool.retire spool id ~json;
        Obs.Metrics.inc ~labels:[ ("outcome", "canceled") ] m_jobs;
        cfg.log (Printf.sprintf "job %s: canceled after %d attempt(s)" id attempts);
        (K_canceled, json)
      end
      else if outcome.Retry.gave_up then begin
        (* Drain interrupted a still-owed retry: the job is neither
           done nor dead.  Leave it spooled; the next daemon life's
           supervisor pass re-queues it. *)
        cfg.log (Printf.sprintf "job %s: drain interrupted its retry; remains spooled" id);
        (K_interrupted, "")
      end
      else if !quarantine then begin
        let json =
          quarantined_json id e ~attempts ~kills:(!current).Spool.j_kills
            ~last_kill:(!current).Spool.j_last_kill
        in
        Spool.quarantine spool id ~json;
        Obs.Metrics.inc ~labels:[ ("outcome", "quarantined") ] m_jobs;
        cfg.log
          (Printf.sprintf "job %s: QUARANTINED after %d worker kills (last: %s)" id
             (!current).Spool.j_kills (!current).Spool.j_last_kill);
        (K_quarantined, json)
      end
      else begin
        let json = Worker.error_json id e ~attempts in
        Spool.retire spool id ~json;
        Obs.Metrics.inc ~labels:[ ("outcome", "failed") ] m_jobs;
        cfg.log
          (Printf.sprintf "job %s: dead-lettered after %d attempt%s: %s" id attempts
             (if attempts = 1 then "" else "s")
             (Bgr_error.to_string e));
        (K_failed, json)
      end
  in
  locked sh (fun () ->
      sh.completions <- { c_id = id; c_kind; c_json; c_latency_ms = latency_ms } :: sh.completions);
  wake sh

let executor cfg spool sh () =
  let rec loop () =
    Mutex.lock sh.mutex;
    while Queue.is_empty sh.queue && not sh.stop do
      Condition.wait sh.cond sh.mutex
    done;
    if sh.stop then begin
      sh.executor_done <- true;
      Mutex.unlock sh.mutex;
      wake sh
    end
    else begin
      let job = Queue.pop sh.queue in
      sh.running <- Some job.Spool.j_id;
      Mutex.unlock sh.mutex;
      (try run_job cfg spool sh job
       with e ->
         (* Last-ditch containment: an unstructured exception must not
            kill the executor; the job is retired as Internal. *)
         let err =
           Bgr_error.make ~phase:"serve" Bgr_error.Internal "unexpected exception: %s"
             (Printexc.to_string e)
         in
         let json = Worker.error_json job.Spool.j_id err ~attempts:job.Spool.j_attempts in
         (try Spool.retire spool job.Spool.j_id ~json with _ -> ());
         locked sh (fun () ->
             sh.completions <-
               { c_id = job.Spool.j_id; c_kind = K_failed; c_json = json; c_latency_ms = 0.0 }
               :: sh.completions);
         wake sh);
      locked sh (fun () ->
          sh.running <- None;
          sh.progress <- None;
          if sh.cancel = Some job.Spool.j_id then sh.cancel <- None);
      loop ()
    end
  in
  loop ()

(* --- connections ------------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  mutable rbuf : string;  (** unconsumed input *)
  mutable wbuf : string;  (** unsent output *)
  mutable greeted : bool;  (** client magic verified *)
  mutable closing : bool;  (** close once [wbuf] drains *)
  mutable waits : string list;  (** job ids this connection waits on *)
}

type loop_state = {
  cfg : config;
  spool : Spool.t;
  sh : shared;
  wake_r : Unix.file_descr;
  listen_fd : Unix.file_descr;
  mutable conns : conn list;
  queued : (string, unit) Hashtbl.t;  (** ids in the queue (not yet popped) *)
  waiters : (string, conn list) Hashtbl.t;
  watchers : (string, conn list) Hashtbl.t;
      (** progress subscribers; a watcher is also a waiter, so it gets
          the final [Result] through the waiter path *)
  watch_seq : (string, int) Hashtbl.t;  (** per-job progress sequence *)
  mutable draining : bool;
  mutable accepted : int;
  mutable completed : int;
  mutable failed : int;
  mutable rejected : int;
  mutable protocol_errors : int;
  mutable canceled : int;
  mutable quarantined : int;
  requeued : int;
}

let send st conn reply =
  ignore st;
  conn.wbuf <- conn.wbuf ^ Wire.encode_reply reply

let close_conn st conn =
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  conn.waits <- [];
  st.conns <- List.filter (fun c -> c != conn) st.conns

let protocol_error st conn (e : Bgr_error.t) =
  st.protocol_errors <- st.protocol_errors + 1;
  Obs.Metrics.inc m_protocol_errors;
  st.cfg.log (Printf.sprintf "protocol error: %s" e.Bgr_error.message);
  send st conn
    (Wire.Rerror { code = Bgr_error.code_name e.Bgr_error.code; message = e.Bgr_error.message });
  conn.closing <- true

let set_depth_metric st =
  let d = locked st.sh (fun () -> depth_unlocked st.sh) in
  Obs.Metrics.set m_queue_depth (float_of_int d)

let enqueue st job =
  locked st.sh (fun () ->
      Queue.add job st.sh.queue;
      Hashtbl.replace st.queued job.Spool.j_id ();
      Condition.signal st.sh.cond);
  set_depth_metric st

let add_waiter st conn id =
  conn.waits <- id :: conn.waits;
  let l = Option.value (Hashtbl.find_opt st.waiters id) ~default:[] in
  Hashtbl.replace st.waiters id (conn :: l)

let add_watcher st conn id =
  let l = Option.value (Hashtbl.find_opt st.watchers id) ~default:[] in
  if not (List.memq conn l) then Hashtbl.replace st.watchers id (conn :: l)

(* A subscriber that stops reading must not grow the daemon's write
   buffer forever: past this bound its subscription is shed (the final
   result, carried by the waiter path, is still owed). *)
let watch_buffer_cap = 1 lsl 20

let progress_json id seq (p : Worker.progress) =
  Qjson.to_string
    (Qjson.Obj
       [ ("job", Qjson.Str id);
         ("seq", Qjson.int seq);
         ("phase", Qjson.Str p.Worker.p_phase);
         ("pass", Qjson.int p.Worker.p_pass);
         ("deletions", Qjson.int p.Worker.p_deletions);
         ("worst_margin_ps", Qjson.num p.Worker.p_worst_margin_ps) ])

(* Fan queued progress events out to each job's watchers.  Events the
   executor pushed before the completion are drained first in the same
   loop iteration, so progress frames always precede the result frame
   on the wire. *)
let deliver_progress st =
  let events, dropped =
    locked st.sh (fun () ->
        let evs = List.rev st.sh.progress_events in
        let d = st.sh.progress_dropped in
        st.sh.progress_events <- [];
        st.sh.progress_pending <- 0;
        st.sh.progress_dropped <- 0;
        (evs, d))
  in
  if dropped > 0 then
    st.cfg.log (Printf.sprintf "progress: %d events dropped (loop behind)" dropped);
  List.iter
    (fun (id, p) ->
      let seq = 1 + Option.value (Hashtbl.find_opt st.watch_seq id) ~default:0 in
      Hashtbl.replace st.watch_seq id seq;
      match Hashtbl.find_opt st.watchers id with
      | None | Some [] -> ()
      | Some conns ->
        let frame = Wire.Progress { job = id; seq; json = progress_json id seq p } in
        let keep =
          List.filter
            (fun conn ->
              if not (List.memq conn st.conns) then false
              else if String.length conn.wbuf > watch_buffer_cap then begin
                Obs.Metrics.inc m_watch_shed;
                st.cfg.log
                  (Printf.sprintf "watch: subscriber of %s reads too slowly; shedding" id);
                false
              end
              else begin
                Obs.Metrics.inc m_progress_frames;
                send st conn frame;
                true
              end)
            conns
        in
        if keep = [] then Hashtbl.remove st.watchers id
        else Hashtbl.replace st.watchers id keep)
    events

let answer_waiters st id reply =
  Hashtbl.remove st.watchers id;
  Hashtbl.remove st.watch_seq id;
  match Hashtbl.find_opt st.waiters id with
  | None -> ()
  | Some conns ->
    Hashtbl.remove st.waiters id;
    List.iter
      (fun conn ->
        if List.memq conn st.conns then begin
          conn.waits <- List.filter (fun w -> w <> id) conn.waits;
          send st conn reply
        end)
      conns

let overloaded st conn ~reason =
  st.rejected <- st.rejected + 1;
  Obs.Metrics.inc ~labels:[ ("reason", reason) ] m_rejections;
  let depth, cap = (locked st.sh (fun () -> depth_unlocked st.sh), st.cfg.queue_cap) in
  send st conn (Wire.Overloaded { reason; depth; cap })

let reply_error st conn (e : Bgr_error.t) =
  send st conn
    (Wire.Rerror { code = Bgr_error.code_name e.Bgr_error.code; message = Bgr_error.to_string e })

let status_json st =
  let depth, running, retried, killed =
    locked st.sh (fun () -> (depth_unlocked st.sh, st.sh.running, st.sh.retried, st.sh.killed))
  in
  Qjson.to_string
    (Qjson.Obj
       [ ("queue_depth", Qjson.int depth);
         ("queue_cap", Qjson.int st.cfg.queue_cap);
         ( "running",
           match running with None -> Qjson.Null | Some id -> Qjson.Str id );
         ("draining", Qjson.Bool st.draining);
         ( "isolation",
           Qjson.Str (match st.cfg.isolation with In_process -> "in-process" | Workers _ -> "workers") );
         ("requeued", Qjson.int st.requeued);
         ("accepted", Qjson.int st.accepted);
         ("completed", Qjson.int st.completed);
         ("failed", Qjson.int st.failed);
         ("canceled", Qjson.int st.canceled);
         ("quarantined", Qjson.int st.quarantined);
         ("rejected", Qjson.int st.rejected);
         ("protocol_errors", Qjson.int st.protocol_errors);
         ("retried", Qjson.int retried);
         ("worker_kills", Qjson.int killed);
         ( "obs_warnings",
           Qjson.Arr (List.map (fun w -> Qjson.Str w) (Obs.warnings ())) ) ])

let job_state_string st id =
  match Spool.state_of st.spool id with
  | None -> None
  | Some (Spool.Done _) -> Some "done"
  | Some (Spool.Dead _) -> Some "dead"
  | Some (Spool.Quarantined _) -> Some "quarantined"
  | Some (Spool.Pending _) ->
    let running = locked st.sh (fun () -> st.sh.running = Some id) in
    if running then Some "running"
    else if Hashtbl.mem st.queued id then Some "queued"
    else Some "pending"

let start_drain st reason =
  if not st.draining then begin
    st.draining <- true;
    st.cfg.log (Printf.sprintf "draining (%s)" reason);
    locked st.sh (fun () ->
        st.sh.stop <- true;
        Condition.broadcast st.sh.cond)
  end

let validation_error fmt = Printf.ksprintf (Bgr_error.make ~phase:"serve" Bgr_error.Validate "%s") fmt

let handle_route st conn ~wait ~progress ~timing_driven ~deadline_ms ~name ~design =
  if st.draining then overloaded st conn ~reason:"draining"
  else if locked st.sh (fun () -> depth_unlocked st.sh) >= st.cfg.queue_cap then
    overloaded st conn ~reason:"queue full"
  else begin
    match name with
    | Some n when not (Wire.valid_job_id n) ->
      reply_error st conn (validation_error "invalid job name %S" n)
    | Some n when Spool.exists st.spool n ->
      reply_error st conn (validation_error "job id %S is already taken" n)
    | _ -> (
      (* Reject malformed designs at admission, before spooling: the
         submitter is still connected and a parse error can never
         succeed on retry anyway. *)
      match
        Result.bind (Design_io.of_string_result ~file:"<submission>" design)
          Design_check.validate
      with
      | Error e -> reply_error st conn e
      | Ok _ ->
        let id = match name with Some n -> n | None -> Spool.fresh_id st.spool in
        let job =
          { Spool.j_id = id;
            j_timing_driven = timing_driven;
            j_deadline_ms = deadline_ms;
            j_attempts = 0;
            j_kills = 0;
            j_last_kill = "";
            j_kill_history = [] }
        in
        (* Durable acceptance before the acknowledgement. *)
        (match Spool.accept st.spool job ~design_text:design with
        | exception Bgr_error.Error e ->
          st.cfg.log (Printf.sprintf "accept of %s failed: %s" id e.Bgr_error.message);
          reply_error st conn e
        | () ->
          st.accepted <- st.accepted + 1;
          Obs.Metrics.inc ~labels:[ ("outcome", "accepted") ] m_jobs;
          enqueue st job;
          send st conn (Wire.Accepted { job = id });
          if wait then begin
            add_waiter st conn id;
            if progress then add_watcher st conn id
          end))
  end

let handle_resume st conn ~wait ~progress ~job:id =
  let subscribe conn id =
    if wait then begin
      add_waiter st conn id;
      if progress then add_watcher st conn id
    end
  in
  if not (Wire.valid_job_id id) then
    reply_error st conn (validation_error "invalid job id %S" id)
  else
    match Spool.state_of st.spool id with
    | None -> reply_error st conn (validation_error "unknown job %S" id)
    | Some (Spool.Done json) -> send st conn (Wire.Result { job = id; ok = true; json })
    | Some (Spool.Quarantined _) ->
      reply_error st conn
        (validation_error
           "job %s is quarantined (it repeatedly killed its worker); use revive with force \
            to retry anyway"
           id)
    | Some (Spool.Dead _) ->
      if st.draining then overloaded st conn ~reason:"draining"
      else if locked st.sh (fun () -> depth_unlocked st.sh) >= st.cfg.queue_cap then
        overloaded st conn ~reason:"queue full"
      else (
        match Spool.revive st.spool id with
        | Error e -> reply_error st conn e
        | Ok job ->
          st.cfg.log (Printf.sprintf "job %s: revived from the dead-letter dir" id);
          enqueue st job;
          send st conn (Wire.Accepted { job = id });
          subscribe conn id)
    | Some (Spool.Pending job) ->
      let live =
        locked st.sh (fun () -> st.sh.running = Some id) || Hashtbl.mem st.queued id
      in
      if st.draining && not live then overloaded st conn ~reason:"draining"
      else begin
        (* An accepted job bypasses the admission cap: it was admitted
           in a previous daemon life. *)
        if not live then enqueue st job;
        send st conn (Wire.Accepted { job = id });
        subscribe conn id
      end

let handle_cancel st conn ~job:id =
  if not (Wire.valid_job_id id) then
    reply_error st conn (validation_error "invalid job id %S" id)
  else begin
    Obs.Metrics.inc m_cancels;
    match Spool.state_of st.spool id with
    | None -> reply_error st conn (validation_error "unknown job %S" id)
    | Some (Spool.Done _) ->
      reply_error st conn (validation_error "job %s already completed" id)
    | Some (Spool.Dead _) ->
      reply_error st conn (validation_error "job %s is already dead-lettered" id)
    | Some (Spool.Quarantined _) ->
      reply_error st conn (validation_error "job %s is already quarantined" id)
    | Some (Spool.Pending _) -> (
      (* Decide under the lock, so the executor cannot pop the job
         between our check and the queue edit. *)
      let decision =
        locked st.sh (fun () ->
            if st.sh.running = Some id then `Running
            else begin
              let keep = Queue.create () in
              let found = ref false in
              Queue.iter
                (fun (j : Spool.job) ->
                  if j.Spool.j_id = id then found := true else Queue.add j keep)
                st.sh.queue;
              Queue.clear st.sh.queue;
              Queue.transfer keep st.sh.queue;
              if !found then `Dequeued else `Idle
            end)
      in
      match decision with
      | `Running -> (
        match st.cfg.isolation with
        | In_process ->
          reply_error st conn
            (validation_error
               "job %s is running in-process and cannot be canceled (worker isolation is \
                off)"
               id)
        | Workers _ ->
          locked st.sh (fun () -> st.sh.cancel <- Some id);
          st.cfg.log (Printf.sprintf "job %s: cancel requested; killing its worker" id);
          send st conn
            (Wire.Info
               { json =
                   Qjson.to_string
                     (Qjson.Obj
                        [ ("job", Qjson.Str id); ("cancel_requested", Qjson.Bool true) ]) }))
      | `Dequeued | `Idle -> (
        Hashtbl.remove st.queued id;
        let attempts =
          match Spool.load_job st.spool id with Ok j -> j.Spool.j_attempts | Error _ -> 0
        in
        let json = canceled_json id ~attempts in
        match Spool.retire st.spool id ~json with
        | exception Bgr_error.Error e -> reply_error st conn e
        | () ->
          st.canceled <- st.canceled + 1;
          Obs.Metrics.inc ~labels:[ ("outcome", "canceled") ] m_jobs;
          answer_waiters st id
            (Wire.Rerror
               { code = "canceled"; message = Printf.sprintf "job %s canceled" id });
          set_depth_metric st;
          st.cfg.log (Printf.sprintf "job %s: canceled before it ran" id);
          send st conn
            (Wire.Info
               { json =
                   Qjson.to_string
                     (Qjson.Obj [ ("job", Qjson.Str id); ("canceled", Qjson.Bool true) ]) }))
      )
  end

let handle_revive st conn ~wait ~force ~job:id =
  if not (Wire.valid_job_id id) then
    reply_error st conn (validation_error "invalid job id %S" id)
  else
    match Spool.state_of st.spool id with
    | None -> reply_error st conn (validation_error "unknown job %S" id)
    | Some (Spool.Done json) -> send st conn (Wire.Result { job = id; ok = true; json })
    | Some (Spool.Pending _) ->
      reply_error st conn
        (validation_error "job %s is not dead-lettered or quarantined (use resume)" id)
    | Some (Spool.Dead _ | Spool.Quarantined _) ->
      if st.draining then overloaded st conn ~reason:"draining"
      else if locked st.sh (fun () -> depth_unlocked st.sh) >= st.cfg.queue_cap then
        overloaded st conn ~reason:"queue full"
      else (
        match Spool.revive ~force st.spool id with
        | Error e -> reply_error st conn e
        | Ok job ->
          st.cfg.log
            (Printf.sprintf "job %s: revived%s" id
               (if force then " (forced out of quarantine)" else ""));
          enqueue st job;
          send st conn (Wire.Accepted { job = id });
          if wait then add_waiter st conn id)

let handle_analyze st conn ~job:id =
  if not (Wire.valid_job_id id) then
    reply_error st conn (validation_error "invalid job id %S" id)
  else begin
    let dir =
      List.find_opt Sys.file_exists
        [ Spool.job_dir st.spool id; Spool.dead_dir st.spool id;
          Spool.quarantine_dir st.spool id ]
    in
    match dir with
    | None -> reply_error st conn (validation_error "unknown job %S" id)
    | Some dir -> (
      let path = Filename.concat dir Qlog.default_filename in
      if not (Sys.file_exists path) then
        reply_error st conn
          (Bgr_error.make ~phase:"serve" ~file:path Bgr_error.Io_error
             "job %s recorded no quality log" id)
      else
        match Qlog.read ~path with
        | Error e -> reply_error st conn e
        | Ok rr ->
          List.iter (fun w -> st.cfg.log (Printf.sprintf "analyze %s: %s" id w)) rr.Qlog.warnings;
          send st conn (Wire.Info { json = Quality.to_json (Quality.summarize rr.Qlog.records) }))
  end

let handle_status st conn = function
  | None -> send st conn (Wire.Info { json = status_json st })
  | Some id -> (
    match job_state_string st id with
    | None -> reply_error st conn (validation_error "unknown job %S" id)
    | Some state ->
      let attempts, kills, last_kill, kill_history =
        match Spool.load_job st.spool id with
        | Ok j -> (j.Spool.j_attempts, j.Spool.j_kills, j.Spool.j_last_kill, j.Spool.j_kill_history)
        | Error _ -> (0, 0, "", [])
      in
      let progress =
        if state = "running" then locked st.sh (fun () -> st.sh.progress) else None
      in
      let fields =
        [ ("job", Qjson.Str id);
          ("state", Qjson.Str state);
          ("attempts", Qjson.int attempts);
          ("kills", Qjson.int kills);
          ("last_kill", Qjson.Str last_kill);
          ("kill_history", Qjson.Arr (List.map (fun r -> Qjson.Str r) kill_history)) ]
        @
        match progress with
        | None -> []
        | Some p ->
          [ ("phase", Qjson.Str p.Worker.p_phase);
            ("pass", Qjson.int p.Worker.p_pass);
            ("deletions", Qjson.int p.Worker.p_deletions);
            ("worst_margin_ps", Qjson.num p.Worker.p_worst_margin_ps) ]
      in
      send st conn (Wire.Info { json = Qjson.to_string (Qjson.Obj fields) }))

let handle_watch st conn ~job:id =
  if not (Wire.valid_job_id id) then
    reply_error st conn (validation_error "invalid job id %S" id)
  else
    match Spool.state_of st.spool id with
    | None -> reply_error st conn (validation_error "unknown job %S" id)
    | Some (Spool.Done json) -> send st conn (Wire.Result { job = id; ok = true; json })
    (* A watch asks for a future; a dead-lettered or quarantined job
       has none.  Answer with a structured error naming the state (not
       a bare stored-result frame, and never silence) so the client can
       tell "it will never progress" from "it failed". *)
    | Some (Spool.Dead _) ->
      send st conn
        (Wire.Rerror
           { code = "dead-lettered";
             message =
               Printf.sprintf
                 "job %s is dead-lettered and will not progress; resume it to retry (its \
                  stored result is available via resume or revive)"
                 id })
    | Some (Spool.Quarantined _) ->
      send st conn
        (Wire.Rerror
           { code = "quarantined";
             message =
               Printf.sprintf
                 "job %s is quarantined (it repeatedly killed its worker) and will not \
                  progress; revive it with force to retry anyway"
                 id })
    | Some (Spool.Pending _) ->
      let state = Option.value (job_state_string st id) ~default:"pending" in
      send st conn
        (Wire.Info
           { json =
               Qjson.to_string
                 (Qjson.Obj
                    [ ("job", Qjson.Str id);
                      ("watching", Qjson.Bool true);
                      ("state", Qjson.Str state) ]) });
      add_waiter st conn id;
      add_watcher st conn id

(* Served from the event loop, straight out of the live registry: no
   drain, no file, no executor involvement. *)
let handle_stats st conn ~prom =
  Obs.Metrics.inc m_stats_requests;
  let body =
    if prom then Obs.Metrics.render_prometheus () else Obs.Metrics.render_json ()
  in
  send st conn (Wire.Rstats { prom; body })

(* The on-demand forensic snapshot: dump the daemon's own rings into
   the spool root, and SIGQUIT the running worker (if any) so it dumps
   [flight-aN.bgrf] into its job directory too. *)
let handle_dump st conn =
  let path = Filename.concat st.cfg.spool_root Flight.default_filename in
  let ok = Flight.dump_file ~trigger:2 ~reason:"opcode" path in
  if not ok then st.cfg.log (Printf.sprintf "dump: cannot write %s" path);
  let worker = locked st.sh (fun () -> st.sh.worker_pid) in
  (match worker with
  | None -> ()
  | Some pid ->
    st.cfg.log (Printf.sprintf "dump: requesting a flight dump from worker %d" pid);
    (try Unix.kill pid Sys.sigquit with Unix.Unix_error _ -> ()));
  send st conn
    (Wire.Info
       { json =
           Qjson.to_string
             (Qjson.Obj
                [ ("dumped", Qjson.Bool ok);
                  ("path", Qjson.Str path);
                  ( "worker_signaled",
                    match worker with
                    | Some pid -> Qjson.int pid
                    | None -> Qjson.Bool false ) ]) })

(* The flight record's [k_serve_op] vocabulary is the wire's opcode
   byte, duplicated here as literals because [Wire] keeps its codec
   internal. *)
let request_opcode = function
  | Wire.Route _ -> 0x01
  | Wire.Resume _ -> 0x02
  | Wire.Analyze _ -> 0x03
  | Wire.Status _ -> 0x04
  | Wire.Shutdown -> 0x05
  | Wire.Cancel _ -> 0x06
  | Wire.Revive _ -> 0x07
  | Wire.Watch _ -> 0x08
  | Wire.Stats _ -> 0x09
  | Wire.Dump -> 0x0A

let handle_request st conn req =
  Flight.record Flight.k_serve_op ~a:(request_opcode req) ~b:0 ~c:0 ~d:0;
  match req with
  | Wire.Route { wait; progress; timing_driven; deadline_ms; name; design } ->
    handle_route st conn ~wait ~progress ~timing_driven ~deadline_ms ~name ~design
  | Wire.Resume { wait; progress; job } -> handle_resume st conn ~wait ~progress ~job
  | Wire.Cancel { job } -> handle_cancel st conn ~job
  | Wire.Revive { wait; force; job } -> handle_revive st conn ~wait ~force ~job
  | Wire.Analyze { job } -> handle_analyze st conn ~job
  | Wire.Status { job } -> handle_status st conn job
  | Wire.Watch { job } -> handle_watch st conn ~job
  | Wire.Stats { prom } -> handle_stats st conn ~prom
  | Wire.Dump -> handle_dump st conn
  | Wire.Shutdown ->
    start_drain st "shutdown request";
    send st conn (Wire.Info { json = "{\"draining\":true}" })

(* Parse as much of [conn.rbuf] as possible: the magic greeting first,
   then complete frames. *)
let process_input st conn =
  let magic_len = String.length Wire.magic in
  if (not conn.greeted) && String.length conn.rbuf >= magic_len then begin
    if String.sub conn.rbuf 0 magic_len = Wire.magic then begin
      conn.greeted <- true;
      conn.rbuf <- String.sub conn.rbuf magic_len (String.length conn.rbuf - magic_len)
    end
    else
      protocol_error st conn
        (Bgr_error.make ~phase:"serve" Bgr_error.Parse
           "bad magic: the peer does not speak %s" (String.trim Wire.magic))
  end;
  if conn.greeted && not conn.closing then begin
    let continue = ref true in
    while !continue do
      match Wire.extract_frame conn.rbuf ~pos:0 with
      | Wire.Need _ -> continue := false
      | Wire.Bad e ->
        protocol_error st conn e;
        continue := false
      | Wire.Frame (payload, used) -> (
        conn.rbuf <- String.sub conn.rbuf used (String.length conn.rbuf - used);
        match Wire.decode_request payload with
        | Error e ->
          protocol_error st conn e;
          continue := false
        | Ok req ->
          handle_request st conn req;
          if conn.closing then continue := false)
    done
  end

let read_conn st conn =
  if Fault.trip "serve.read" then begin
    st.cfg.log "fault: serve.read tripped; dropping connection";
    close_conn st conn
  end
  else begin
    let buf = Bytes.create 65536 in
    match Unix.read conn.fd buf 0 (Bytes.length buf) with
    | 0 -> close_conn st conn
    | n ->
      conn.rbuf <- conn.rbuf ^ Bytes.sub_string buf 0 n;
      process_input st conn
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> close_conn st conn
  end

let write_conn st conn =
  if Fault.trip "serve.write" then begin
    st.cfg.log "fault: serve.write tripped; dropping connection";
    close_conn st conn
  end
  else if conn.wbuf <> "" then begin
    match Unix.write_substring conn.fd conn.wbuf 0 (String.length conn.wbuf) with
    | n ->
      conn.wbuf <- String.sub conn.wbuf n (String.length conn.wbuf - n);
      if conn.wbuf = "" && conn.closing then close_conn st conn
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> close_conn st conn
  end

let accept_conn st =
  match Unix.accept ~cloexec:true st.listen_fd with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error (e, _, _) ->
    st.cfg.log (Printf.sprintf "accept failed: %s" (Unix.error_message e))
  | fd, _ -> (
    match Fault.check ~phase:"serve" "serve.accept" with
    | exception Bgr_error.Error e ->
      st.cfg.log (Printf.sprintf "fault: %s; connection refused" e.Bgr_error.message);
      (try Unix.close fd with Unix.Unix_error _ -> ())
    | () ->
      Unix.set_nonblock fd;
      Obs.Metrics.inc m_connections;
      (* Greet first: the server banner lets clients fail fast when
         they dialled something that is not a bgr daemon. *)
      st.conns <-
        { fd; rbuf = ""; wbuf = Wire.magic; greeted = false; closing = false; waits = [] }
        :: st.conns)

let deliver_completions st =
  let completions, executor_done =
    locked st.sh (fun () ->
        let cs = List.rev st.sh.completions in
        st.sh.completions <- [];
        (cs, st.sh.executor_done))
  in
  List.iter
    (fun c ->
      Hashtbl.remove st.queued c.c_id;
      locked st.sh (fun () -> if st.sh.cancel = Some c.c_id then st.sh.cancel <- None);
      (match c.c_kind with
      | K_done -> st.completed <- st.completed + 1
      | K_failed -> st.failed <- st.failed + 1
      | K_canceled -> st.canceled <- st.canceled + 1
      | K_quarantined -> st.quarantined <- st.quarantined + 1
      | K_interrupted -> ());
      match c.c_kind with
      | K_interrupted ->
        (* Still spooled: its waiters get the drain notice at exit. *)
        ()
      | K_done -> answer_waiters st c.c_id (Wire.Result { job = c.c_id; ok = true; json = c.c_json })
      | K_failed ->
        answer_waiters st c.c_id (Wire.Result { job = c.c_id; ok = false; json = c.c_json })
      | K_canceled ->
        answer_waiters st c.c_id
          (Wire.Rerror { code = "canceled"; message = Printf.sprintf "job %s canceled" c.c_id })
      | K_quarantined ->
        answer_waiters st c.c_id
          (Wire.Rerror
             { code = "quarantined";
               message =
                 Printf.sprintf "job %s quarantined after repeated worker kills" c.c_id }))
    completions;
  if completions <> [] then set_depth_metric st;
  executor_done

(* --- socket setup ------------------------------------------------------ *)

let bind_socket cfg =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let addr = Unix.ADDR_UNIX cfg.socket_path in
  let try_bind () = Unix.bind fd addr in
  (try
     match try_bind () with
     | () -> ()
     | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
       (* A socket file is already there: a live daemon, or a stale
          corpse after kill -9.  Probe it. *)
       let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       let live =
         match Unix.connect probe addr with
         | () -> true
         | exception Unix.Unix_error _ -> false
       in
       (try Unix.close probe with Unix.Unix_error _ -> ());
       if live then
         Bgr_error.raise_error ~phase:"serve" ~file:cfg.socket_path Bgr_error.Io_error
           "a daemon is already serving this socket";
       (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
       try_bind ()
   with
  | Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Bgr_error.raise_error ~phase:"serve" ~file:cfg.socket_path Bgr_error.Io_error
      "cannot bind: %s" (Unix.error_message e));
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

(* --- the event loop ---------------------------------------------------- *)

let sig_drain = Atomic.make false

let sig_metrics = Atomic.make false

(* Atomic rewrite of the Prometheus textfile: a scraper (or kill -9)
   sees either the previous complete snapshot or the new one, never a
   torn file. *)
let write_metrics_file cfg =
  match cfg.metrics_path with
  | None -> ()
  | Some path -> (
    match Spool.write_file_atomic path (Obs.Metrics.render_prometheus ()) with
    | () -> ()
    | exception Bgr_error.Error e ->
      cfg.log (Printf.sprintf "metrics: cannot write %s: %s" path e.Bgr_error.message))

let run cfg =
  (* A peer that vanishes mid-write must cost us an EPIPE, not the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let spool = Spool.open_root cfg.spool_root in
  let listen_fd = bind_socket cfg in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let sh =
    { mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      running = None;
      stop = false;
      executor_done = false;
      completions = [];
      retried = 0;
      killed = 0;
      cancel = None;
      worker_pid = None;
      progress = None;
      progress_events = [];
      progress_pending = 0;
      progress_dropped = 0;
      wake_w }
  in
  (* Supervisor pass: every accepted-but-unfinished job rides again.
     Quarantined jobs are deliberately absent: [Spool.scan] walks
     jobs/ only. *)
  let pending = Spool.scan spool in
  List.iter (fun w -> cfg.log (Printf.sprintf "spool: %s" w)) (Spool.scan_warnings spool);
  List.iter
    (fun (j : Spool.job) ->
      cfg.log
        (Printf.sprintf "requeueing job %s (attempts so far: %d)" j.Spool.j_id
           j.Spool.j_attempts);
      Queue.add j sh.queue)
    pending;
  let st =
    { cfg;
      spool;
      sh;
      wake_r;
      listen_fd;
      conns = [];
      queued = Hashtbl.create 16;
      waiters = Hashtbl.create 16;
      watchers = Hashtbl.create 16;
      watch_seq = Hashtbl.create 16;
      draining = false;
      accepted = 0;
      completed = 0;
      failed = 0;
      rejected = 0;
      protocol_errors = 0;
      canceled = 0;
      quarantined = 0;
      requeued = List.length pending }
  in
  List.iter (fun (j : Spool.job) -> Hashtbl.replace st.queued j.Spool.j_id ()) pending;
  set_depth_metric st;
  Atomic.set sig_drain false;
  Atomic.set sig_metrics false;
  if cfg.install_signals then begin
    let request_drain _ =
      Atomic.set sig_drain true;
      wake sh
    in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_drain);
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_drain);
    (* SIGUSR1: flush the metrics file on demand, without draining. *)
    Sys.set_signal Sys.sigusr1
      (Sys.Signal_handle
         (fun _ ->
           Atomic.set sig_metrics true;
           wake sh));
    (* SIGQUIT: dump the flight recorder and keep serving — the
       operator's kill -QUIT is the [dump] opcode without a socket. *)
    Flight.install_sigquit_dump
      ~path:(fun () -> Filename.concat cfg.spool_root Flight.default_filename)
      ()
  end;
  let exec_domain = Domain.spawn (executor cfg spool sh) in
  cfg.log
    (Printf.sprintf "serving on %s (spool %s, cap %d, %s isolation, %d requeued)"
       cfg.socket_path cfg.spool_root cfg.queue_cap
       (match cfg.isolation with In_process -> "in-process" | Workers _ -> "worker")
       st.requeued);
  write_metrics_file cfg;
  let last_metrics_write = ref (Obs.now_s ()) in
  let finished = ref false in
  while not !finished do
    if Atomic.get sig_drain then start_drain st "signal";
    if
      Atomic.compare_and_set sig_metrics true false
      || cfg.metrics_interval_s > 0.0
         && Obs.now_s () -. !last_metrics_write >= cfg.metrics_interval_s
    then begin
      write_metrics_file cfg;
      last_metrics_write := Obs.now_s ()
    end;
    let rfds = st.listen_fd :: st.wake_r :: List.map (fun c -> c.fd) st.conns in
    let wfds = List.filter_map (fun c -> if c.wbuf <> "" then Some c.fd else None) st.conns in
    let readable, writable, _ =
      match Unix.select rfds wfds [] 0.5 with
      | r -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.mem st.wake_r readable then begin
      let buf = Bytes.create 64 in
      let rec drain_pipe () =
        match Unix.read st.wake_r buf 0 64 with
        | 64 -> drain_pipe ()
        | _ -> ()
        | exception Unix.Unix_error _ -> ()
      in
      drain_pipe ()
    end;
    if List.mem st.listen_fd readable then accept_conn st;
    List.iter
      (fun conn -> if List.mem conn.fd readable then read_conn st conn)
      (List.filter (fun c -> List.memq c st.conns) st.conns);
    deliver_progress st;
    let executor_done = deliver_completions st in
    List.iter
      (fun conn -> if List.mem conn.fd writable || conn.wbuf <> "" then write_conn st conn)
      (List.filter (fun c -> List.memq c st.conns) st.conns);
    if st.draining && executor_done && locked sh (fun () -> sh.completions = []) then
      finished := true
  done;
  (* Drained: tell the waiters their jobs stay spooled, flush, leave. *)
  List.iter
    (fun conn ->
      List.iter
        (fun id ->
          send st conn
            (Wire.Rerror
               { code = "draining";
                 message =
                   Printf.sprintf "daemon draining; job %s remains spooled for the next start"
                     id }))
        (List.sort_uniq compare conn.waits))
    st.conns;
  (* Monotonic flush deadline: a wall-clock step (NTP, suspend) must
     neither cut the flush short nor wedge it. *)
  let deadline = Obs.now_s () +. 2.0 in
  while List.exists (fun c -> c.wbuf <> "") st.conns && Obs.now_s () < deadline do
    let wfds = List.filter_map (fun c -> if c.wbuf <> "" then Some c.fd else None) st.conns in
    (match Unix.select [] wfds [] 0.2 with
    | _, writable, _ ->
      List.iter
        (fun conn -> if List.mem conn.fd writable then write_conn st conn)
        (List.filter (fun c -> List.memq c st.conns) st.conns)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
  done;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) st.conns;
  (try Unix.close st.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  Domain.join exec_domain;
  (try Unix.close st.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close sh.wake_w with Unix.Unix_error _ -> ());
  (* Final flush after the executor joined: the file carries the whole
     life's counters even when nothing ever scraped the stats plane. *)
  write_metrics_file cfg;
  let left = locked sh (fun () -> Queue.length sh.queue) in
  cfg.log
    (Printf.sprintf "drained: %d completed, %d failed, %d still spooled" st.completed
       st.failed left);
  { s_requeued = st.requeued;
    s_accepted = st.accepted;
    s_completed = st.completed;
    s_failed = st.failed;
    s_retried = locked sh (fun () -> sh.retried);
    s_rejected = st.rejected;
    s_protocol_errors = st.protocol_errors;
    s_canceled = st.canceled;
    s_quarantined = st.quarantined;
    s_killed = locked sh (fun () -> sh.killed) }
