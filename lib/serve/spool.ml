let job_file = "JOB"
let result_file = "RESULT"
let error_file = "ERROR"

let ( / ) = Filename.concat

type job = {
  j_id : string;
  j_timing_driven : bool;
  j_deadline_ms : int option;
  j_attempts : int;
  j_kills : int;
  j_last_kill : string;
  j_kill_history : string list;
}

type t = { t_root : string; mutable t_scan_warnings : string list }

let io_fail path msg =
  Bgr_error.raise_error ~phase:"serve" ~file:path Bgr_error.Io_error "%s" msg

let ensure_dir dir =
  try Unix.mkdir dir 0o755 with
  | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | Unix.Unix_error (e, _, _) -> io_fail dir (Unix.error_message e)

let open_root root =
  ensure_dir root;
  ensure_dir (root / "jobs");
  ensure_dir (root / "dead");
  ensure_dir (root / "quarantine");
  { t_root = root; t_scan_warnings = [] }

let root t = t.t_root

let job_dir t id = t.t_root / "jobs" / id

let dead_dir t id = t.t_root / "dead" / id

let quarantine_dir t id = t.t_root / "quarantine" / id

(* Atomic durable write, the Persist discipline: temp file, fsync,
   rename. *)
let write_file_atomic path s =
  let tmp = path ^ ".tmp" in
  match
    let oc = open_out_bin tmp in
    output_string oc s;
    flush oc;
    (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
    close_out oc;
    Sys.rename tmp path
  with
  | () -> ()
  | exception Sys_error msg -> io_fail path msg

let read_file path =
  match Lineio.read_all path with
  | s -> Ok s
  | exception Sys_error msg ->
    Error (Bgr_error.make ~file:path ~phase:"serve" Bgr_error.Io_error "%s" msg)

let list_dir path =
  match Sys.readdir path with
  | entries ->
    let l = Array.to_list entries in
    List.sort compare l
  | exception Sys_error _ -> []

let exists t id =
  Sys.file_exists (job_dir t id)
  || Sys.file_exists (dead_dir t id)
  || Sys.file_exists (quarantine_dir t id)

let fresh_id t =
  let numeric_suffix name =
    if String.length name > 4 && String.sub name 0 4 = "job-" then
      int_of_string_opt (String.sub name 4 (String.length name - 4))
    else None
  in
  let top =
    List.fold_left
      (fun acc name -> match numeric_suffix name with Some n -> max acc n | None -> acc)
      0
      (list_dir (t.t_root / "jobs")
      @ list_dir (t.t_root / "dead")
      @ list_dir (t.t_root / "quarantine"))
  in
  Printf.sprintf "job-%06d" (top + 1)

(* --- the JOB manifest -------------------------------------------------- *)

(* [kills]/[last_kill] were added after manifests already existed on
   disk, so they are only written when meaningful and are optional on
   parse — a pre-existing JOB file still loads. *)
let job_string j =
  let base =
    Printf.sprintf "bgr-job 1\nid %s\ntiming_driven %b\ndeadline_ms %d\nattempts %d\n"
      j.j_id j.j_timing_driven
      (match j.j_deadline_ms with None -> 0 | Some ms -> ms)
      j.j_attempts
  in
  if j.j_kills = 0 && j.j_last_kill = "" then base
  else
    Printf.sprintf "%skills %d\nlast_kill %s\n%s" base j.j_kills j.j_last_kill
      (* the full reason sequence; reasons come from the kill_reason
         vocabulary (no commas or spaces), joined oldest first *)
      (match j.j_kill_history with
      | [] -> ""
      | h -> Printf.sprintf "kill_history %s\n" (String.concat "," h))

exception Bad of string

let parse_job ?file s =
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  match
    let kv =
      String.split_on_char '\n' s
      |> List.filter_map (fun l ->
             let l = String.trim l in
             if l = "" then None
             else
               match String.index_opt l ' ' with
               | None -> fail "job manifest line %S has no value" l
               | Some i ->
                 Some (String.sub l 0 i, String.trim (String.sub l i (String.length l - i))))
    in
    (match kv with
    | ("bgr-job", "1") :: _ -> ()
    | _ -> fail "not a bgr job manifest (or unsupported version)");
    let get k =
      match List.assoc_opt k kv with
      | Some v -> v
      | None -> fail "job manifest is missing the %s field" k
    in
    let int_of k =
      match int_of_string_opt (get k) with
      | Some v -> v
      | None -> fail "job manifest field %s wants an integer, got %S" k (get k)
    in
    let td =
      match get "timing_driven" with
      | "true" -> true
      | "false" -> false
      | v -> fail "job manifest field timing_driven wants a boolean, got %S" v
    in
    let deadline = int_of "deadline_ms" in
    let kills =
      match List.assoc_opt "kills" kv with
      | None -> 0
      | Some v -> (
        match int_of_string_opt v with
        | Some n -> n
        | None -> fail "job manifest field kills wants an integer, got %S" v)
    in
    { j_id = get "id";
      j_timing_driven = td;
      j_deadline_ms = (if deadline = 0 then None else Some deadline);
      j_attempts = int_of "attempts";
      j_kills = kills;
      j_last_kill = Option.value (List.assoc_opt "last_kill" kv) ~default:"";
      j_kill_history =
        (match List.assoc_opt "kill_history" kv with
        | None | Some "" -> []
        | Some h -> String.split_on_char ',' h) }
  with
  | j -> Ok j
  | exception Bad m -> Error (Bgr_error.make ?file ~phase:"serve" Bgr_error.Parse "%s" m)

let accept t j ~design_text =
  let dir = job_dir t j.j_id in
  ensure_dir dir;
  write_file_atomic (dir / Persist.design_file) design_text;
  write_file_atomic (dir / job_file) (job_string j)

let load_job t id =
  let candidates = [ job_dir t id; dead_dir t id; quarantine_dir t id ] in
  let path =
    match List.find_opt (fun d -> Sys.file_exists (d / job_file)) candidates with
    | Some d -> d / job_file
    | None -> job_dir t id / job_file
  in
  Result.bind (read_file path) (parse_job ~file:path)

let read_manifest dir = Result.bind (read_file (dir / job_file)) (parse_job ~file:(dir / job_file))

let record_attempt t j =
  let j = { j with j_attempts = j.j_attempts + 1 } in
  write_file_atomic (job_dir t j.j_id / job_file) (job_string j);
  j

let record_kill t j ~reason =
  let j =
    { j with
      j_kills = j.j_kills + 1;
      j_last_kill = reason;
      j_kill_history = j.j_kill_history @ [ reason ] }
  in
  write_file_atomic (job_dir t j.j_id / job_file) (job_string j);
  j

let mark_done t id ~json = write_file_atomic (job_dir t id / result_file) (json ^ "\n")

let retire t id ~json =
  let dir = job_dir t id in
  write_file_atomic (dir / error_file) (json ^ "\n");
  match Sys.rename dir (dead_dir t id) with
  | () -> ()
  | exception Sys_error msg -> io_fail dir msg

let quarantine t id ~json =
  let dir = job_dir t id in
  write_file_atomic (dir / error_file) (json ^ "\n");
  match Sys.rename dir (quarantine_dir t id) with
  | () -> ()
  | exception Sys_error msg -> io_fail dir msg

type state = Pending of job | Done of string | Dead of string | Quarantined of string

let state_of t id =
  let live = job_dir t id in
  let error_json dir fallback =
    match read_file (dir / error_file) with
    | Ok s -> String.trim s
    | Error _ -> fallback
  in
  if Sys.file_exists live then begin
    let result = live / result_file in
    if Sys.file_exists result then
      match read_file result with
      | Ok s -> Some (Done (String.trim s))
      | Error _ -> Some (Done "{}")
    else
      match load_job t id with
      | Ok j -> Some (Pending j)
      | Error _ -> None
  end
  else if Sys.file_exists (dead_dir t id) then
    Some (Dead (error_json (dead_dir t id) "{}"))
  else if Sys.file_exists (quarantine_dir t id) then
    Some (Quarantined (error_json (quarantine_dir t id) "{}"))
  else None

let revive ?(force = false) t id =
  let dead = dead_dir t id and quarantined = quarantine_dir t id in
  let from =
    if Sys.file_exists dead then Ok dead
    else if Sys.file_exists quarantined then
      if force then Ok quarantined
      else
        Error
          (Bgr_error.make ~phase:"serve" Bgr_error.Validate
             "job %s is quarantined (it repeatedly killed its worker); revive it with force \
              to retry anyway"
             id)
    else
      Error
        (Bgr_error.make ~phase:"serve" Bgr_error.Validate
           "job %s is not in the dead-letter or quarantine dir" id)
  in
  Result.bind from (fun src ->
      match Sys.rename src (job_dir t id) with
      | exception Sys_error msg ->
        Error (Bgr_error.make ~file:src ~phase:"serve" Bgr_error.Io_error "%s" msg)
      | () ->
        (try Sys.remove (job_dir t id / error_file) with Sys_error _ -> ());
        Result.map
          (fun j ->
            let j =
              { j with j_attempts = 0; j_kills = 0; j_last_kill = ""; j_kill_history = [] }
            in
            write_file_atomic (job_dir t id / job_file) (job_string j);
            j)
          (load_job t id))

let scan t =
  t.t_scan_warnings <- [];
  List.filter_map
    (fun id ->
      let dir = t.t_root / "jobs" / id in
      if not (Sys.is_directory dir) then None
      else if Sys.file_exists (dir / result_file) then None
      else
        match load_job t id with
        | Ok j -> Some j
        | Error e ->
          t.t_scan_warnings <-
            t.t_scan_warnings
            @ [ Printf.sprintf "skipping job %s: %s" id e.Bgr_error.message ];
          None)
    (list_dir (t.t_root / "jobs"))

let scan_warnings t = t.t_scan_warnings
