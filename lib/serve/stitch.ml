(* Cross-process trace stitching: fold one worker attempt's recorded
   observability (spans + metrics snapshot) back into the supervising
   daemon's tracer and registry.

   The worker hands the daemon an obs summary json (via the BGRW1
   [Obs_summary] frame) naming its artifact files inside the job's
   spool directory.  We re-read the JSONL span stream, re-base its
   timestamps from the worker's trace epoch onto the daemon's, and
   re-emit each span as-is — worker pid, span ids, parent links and
   the shared trace id all survive, so one Perfetto load of the
   daemon's chrome trace shows serve.job -> serve.worker -> the
   worker's own phase spans.  The metrics snapshot merges additively.

   Everything here is best-effort in the Obs failure-policy sense: a
   missing file, torn json line or incompatible metric family costs a
   warning, never the job. *)

type report = { st_spans : int; st_series : int }

let empty = { st_spans = 0; st_series = 0 }

(* One JSONL line back into a span record.  The writer is
   [Obs.Trace.jsonl_line]; attribute kinds survive as well as JSON
   allows (ints come back as Float — [attr_to_string] renders both
   identically for integral values). *)
let span_of_json j =
  let open Qjson in
  let str k = Option.bind (member k j) to_str in
  let num k = Option.bind (member k j) to_float in
  match (str "name", num "start_us", num "dur_us") with
  | Some name, Some start_us, Some dur_us ->
    let int_of k d =
      match Option.bind (member k j) to_int with Some v -> v | None -> d
    in
    let attrs =
      match Option.bind (member "args" j) to_obj with
      | None -> []
      | Some kvs ->
        List.filter_map
          (fun (k, v) ->
            match v with
            | Str s -> Some (k, Obs.Trace.Str s)
            | Num f ->
              if Float.is_integer f && Float.abs f < 1e15 then
                Some (k, Obs.Trace.Int (int_of_float f))
              else Some (k, Obs.Trace.Float f)
            | Bool b -> Some (k, Obs.Trace.Bool b)
            | Null | Arr _ | Obj _ -> None)
          kvs
    in
    Some
      { Obs.Trace.sp_name = name;
        sp_start_us = start_us;
        sp_dur_us = dur_us;
        sp_depth = int_of "depth" 0;
        sp_id = int_of "id" 0;
        sp_parent = int_of "parent" 0;
        sp_pid = int_of "pid" 0;
        sp_attrs = attrs }
  | _ -> None

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = in_channel_length ic in
        Some (really_input_string ic n))

let merge ~dir ~summary_json () =
  match Qjson.parse summary_json with
  | Error msg ->
    Obs.warn "stitch: unreadable worker obs summary: %s" msg;
    empty
  | Ok j ->
    let str k = Option.bind (Qjson.member k j) Qjson.to_str in
    let source =
      match (str "job", Option.bind (Qjson.member "pid" j) Qjson.to_int) with
      | Some job, Some pid -> Printf.sprintf "worker pid %d (job %s)" pid job
      | _ -> "worker"
    in
    (* Epoch delta re-bases the worker's relative timestamps onto the
       daemon's timeline.  Either epoch missing (obs disabled on one
       side) degrades to no shift rather than NaN timestamps. *)
    let offset_us =
      let worker_epoch =
        match Option.bind (Qjson.member "epoch_s" j) Qjson.to_float with
        | Some e -> e
        | None -> nan
      in
      let daemon_epoch = Obs.Trace.epoch_s () in
      let d = (worker_epoch -. daemon_epoch) *. 1e6 in
      if Float.is_nan d then 0.0 else d
    in
    let spans =
      match str "jsonl" with
      | None ->
        Obs.warn "stitch (%s): summary names no jsonl trace" source;
        0
      | Some file -> (
        match read_file (Filename.concat dir file) with
        | None ->
          Obs.warn "stitch (%s): cannot read %s" source file;
          0
        | Some text ->
          let n = ref 0 in
          List.iter
            (fun line ->
              if String.trim line <> "" then
                match Result.to_option (Qjson.parse line) with
                | None -> Obs.warn "stitch (%s): torn jsonl line skipped" source
                | Some lj -> (
                  match span_of_json lj with
                  | None -> Obs.warn "stitch (%s): non-span jsonl line skipped" source
                  | Some sp ->
                    Obs.Trace.emit_foreign
                      { sp with
                        Obs.Trace.sp_start_us = sp.Obs.Trace.sp_start_us +. offset_us };
                    incr n))
            (String.split_on_char '\n' text);
          !n)
    in
    let series =
      match str "metrics" with
      | None ->
        Obs.warn "stitch (%s): summary names no metrics snapshot" source;
        0
      | Some file -> (
        match read_file (Filename.concat dir file) with
        | None ->
          Obs.warn "stitch (%s): cannot read %s" source file;
          0
        | Some text -> Obs.Metrics.merge_snapshot ~source text)
    in
    { st_spans = spans; st_series = series }
