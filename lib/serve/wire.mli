(** The `bgr_serve` wire protocol: length-prefixed, CRC-framed request
    and reply messages over a Unix domain socket, in the house framing
    style of the deletion journal ([BGRJ1]) and the quality log
    ([BGRQ1]).

    A connection opens with both sides sending the 6-byte magic
    ["BGRS1\n"]; every message after that is one frame

    {v [u32 length | payload | u32 CRC-32(payload)] v}

    (integers big-endian).  The payload's first byte is the opcode;
    strings inside bodies are [u32 length | bytes].  The full frame
    spec is documented in docs/serving.md.

    Decoding is defensive: a declared length beyond {!max_payload}, a
    CRC mismatch, a truncated body, an unknown opcode or trailing
    bytes after a well-formed body all yield a structured [Parse]
    error — the daemon replies with a protocol error and closes the
    connection instead of crashing. *)

val magic : string
(** ["BGRS1\n"]. *)

val max_payload : int
(** Largest accepted payload (16 MiB) — a declared frame length above
    this is rejected before any body byte is read, so a hostile or
    corrupt length prefix cannot make the daemon buffer unbounded
    data. *)

type request =
  | Route of {
      wait : bool;  (** hold the connection and stream the result *)
      progress : bool;  (** with [wait]: also stream progress frames *)
      timing_driven : bool;
      deadline_ms : int option;  (** per-job wall-clock budget *)
      name : string option;  (** client-chosen job id *)
      design : string;  (** design-bundle text *)
    }
  | Resume of { wait : bool; progress : bool; job : string }
  | Analyze of { job : string }
  | Status of { job : string option }  (** [None] = daemon status *)
  | Shutdown
  | Cancel of { job : string }
      (** Kill the job's running worker (or drop it from the queue) and
          answer its waiters with a structured [canceled] error. *)
  | Revive of { wait : bool; force : bool; job : string }
      (** Re-queue a dead-lettered job.  A {e quarantined} job (one
          that repeatedly killed its worker) is refused unless [force]
          is set. *)
  | Watch of { job : string }
      (** Subscribe to a pending job's progress stream: an [Info] ack,
          then [Progress] frames as the job advances, then its final
          [Result].  A finished job answers with its stored result
          immediately. *)
  | Stats of { prom : bool }
      (** Snapshot the live metrics registry: Prometheus text when
          [prom], the registry JSON otherwise.  Served by the event
          loop without draining the daemon. *)
  | Dump
      (** Dump the daemon's flight recorder to a [BGRF1] file in the
          spool root (and SIGQUIT the running worker, if any, so it
          dumps too); answered with an [Info] frame naming the file.
          The on-demand forensic snapshot — see docs/observability.md. *)

type reply =
  | Accepted of { job : string }
  | Result of { job : string; ok : bool; json : string }
  | Rerror of { code : string; message : string }
  | Overloaded of { reason : string; depth : int; cap : int }
  | Info of { json : string }
  | Progress of { job : string; seq : int; json : string }
      (** One progress event.  [seq] is per-job, starts at 1 and is
          strictly increasing on a connection; frames may be dropped
          (never reordered) when a subscriber reads too slowly. *)
  | Rstats of { prom : bool; body : string }

val encode_request : request -> string
(** The complete frame (length, payload, CRC) — not the payload alone. *)

val encode_reply : reply -> string

val decode_request : ?file:string -> string -> (request, Bgr_error.t) result
(** Decode a frame {e payload} (opcode byte onward). *)

val decode_reply : ?file:string -> string -> (reply, Bgr_error.t) result

(** {1 Incremental frame extraction}

    The daemon's event loop accumulates connection bytes in a buffer
    and repeatedly asks for the next complete frame. *)

type extract =
  | Need of int  (** at least this many more bytes required *)
  | Frame of string * int  (** payload, total frame bytes consumed *)
  | Bad of Bgr_error.t  (** oversized length or CRC mismatch *)

val extract_frame : string -> pos:int -> extract
(** Examine [s] from [pos] for one complete frame. *)

val valid_job_id : string -> bool
(** Job ids are 1..64 chars of [A-Za-z0-9._-] not starting with a dot
    or dash — safe as directory names in the spool. *)
