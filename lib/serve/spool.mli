(** The daemon's crash-safe job store: one directory per accepted job.

    {v
    ROOT/jobs/<id>/JOB          job manifest (kind, options, attempts)
    ROOT/jobs/<id>/design.bgr   the submitted design bundle
    ROOT/jobs/<id>/MANIFEST, journal.bgrj, snapshot.bgrs, quality.bgrq
                                the Persist run-dir files of the attempt
    ROOT/jobs/<id>/RESULT       one JSON line, written atomically on success
    ROOT/dead/<id>/...          the whole directory, journal intact, after
                                the job is retired; plus an ERROR json
    ROOT/quarantine/<id>/...    same shape as dead/, for jobs that
                                repeatedly killed their worker process
    v}

    A job is {e accepted} once [JOB] and [design.bgr] are on disk
    (both written atomically and fsynced) — the daemon only sends the
    [accepted] reply after that, so a [kill -9] at any later moment
    loses nothing: the startup {!scan} finds every accepted job whose
    [RESULT] is missing and re-queues it. *)

type job = {
  j_id : string;
  j_timing_driven : bool;
  j_deadline_ms : int option;
  j_attempts : int;  (** attempts already started (across daemon restarts) *)
  j_kills : int;  (** worker processes killed on this job (hang/OOM/signal) *)
  j_last_kill : string;  (** latest kill reason, [""] when none *)
  j_kill_history : string list;
      (** every kill reason in order, oldest first ([j_last_kill] is
          its last element); persisted in the manifest's optional
          [kill_history] line, reset by {!revive} *)
}

val job_file : string
val result_file : string
val error_file : string
(** ["JOB"], ["RESULT"], ["ERROR"]. *)

val write_file_atomic : string -> string -> unit
(** Atomic durable write (temp file, fsync, rename) — the discipline
    every spool mutation uses, exported for the daemon's periodic
    metrics-file rewrite.  Raises a structured [Io_error] on
    failure. *)

type t

val open_root : string -> t
(** Create [ROOT], [ROOT/jobs], [ROOT/dead] and [ROOT/quarantine] as
    needed.  Structured [Io_error] when a directory cannot be
    created. *)

val root : t -> string

val job_dir : t -> string -> string
(** [ROOT/jobs/<id>] — also the Persist run directory of the job. *)

val dead_dir : t -> string -> string

val quarantine_dir : t -> string -> string

val fresh_id : t -> string
(** The next free generated id ["job-NNNNNN"], scanning [jobs/],
    [dead/] and [quarantine/] so ids never collide across restarts. *)

val exists : t -> string -> bool
(** The id names a spooled (live, dead or quarantined) job. *)

val accept : t -> job -> design_text:string -> unit
(** Durably record an accepted job: create its directory, write
    [design.bgr] and [JOB] (atomic + fsync).  Raises [Io_error] on
    failure — the caller then {e rejects} the submission, because an
    acceptance that might not survive a crash must never be
    acknowledged. *)

val load_job : t -> string -> (job, Bgr_error.t) result
(** Reads the live job's manifest, falling back to the dead-letter and
    quarantine copies, so attempt counts stay visible after
    retirement. *)

val read_manifest : string -> (job, Bgr_error.t) result
(** Read [dir/JOB] directly — how a worker subprocess, handed only a
    spool job directory, recovers the job it must run. *)

val record_attempt : t -> job -> job
(** Bump the attempt counter and rewrite [JOB] {e before} the attempt
    runs, so a crash mid-attempt still counts it — a job that crashes
    the daemon cannot crash-loop forever. *)

val record_kill : t -> job -> reason:string -> job
(** Bump the kill counter and record the reason (["hang"],
    ["hard-deadline"], ["oom"], ["signal-N"]...) in [JOB], durably,
    before the job is re-queued — a job that keeps killing its worker
    accumulates evidence toward {!quarantine} across daemon
    restarts. *)

val mark_done : t -> string -> json:string -> unit
(** Write [RESULT] atomically. *)

val retire : t -> string -> json:string -> unit
(** Dead-letter the job: write [ERROR] into its directory, then move
    the whole directory (journal and snapshot intact, for post-mortem
    resume) under [dead/]. *)

val quarantine : t -> string -> json:string -> unit
(** Like {!retire}, but into [quarantine/]: the verdict for a job that
    repeatedly killed its worker process.  Unlike dead-lettered jobs,
    the startup {!scan} never re-queues a quarantined job and
    {!revive} refuses it without [~force] — a poison job must not eat
    workers forever on the operator's behalf. *)

type state =
  | Pending of job  (** accepted, no RESULT yet *)
  | Done of string  (** RESULT json *)
  | Dead of string  (** ERROR json, directory under dead/ *)
  | Quarantined of string  (** ERROR json, directory under quarantine/ *)

val state_of : t -> string -> state option
(** Disk-level state of a job id; [None] when unknown. *)

val revive : ?force:bool -> t -> string -> (job, Bgr_error.t) result
(** Move a dead-lettered job back under [jobs/] with its attempt and
    kill counters reset — the manual [resume] path after the operator
    fixed whatever killed it.  A {e quarantined} job additionally
    requires [~force:true] (default false); without it the call
    returns a [Validate] error naming the quarantine. *)

val scan : t -> job list
(** Every accepted-but-unfinished job (no [RESULT]), oldest id first —
    the startup supervisor re-queues exactly this list.  Entries whose
    [JOB] manifest is unreadable are skipped with a warning pushed to
    [scan_warnings]. *)

val scan_warnings : t -> string list
(** Warnings of the latest {!scan} (corrupt manifests found). *)
