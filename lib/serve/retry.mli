(** Bounded retry with exponential backoff for service jobs.

    The daemon gives every job a small, fixed number of attempts.
    Between attempts it sleeps an exponentially growing backoff; which
    errors earn a retry at all is decided by {!retryable}, so a job
    that cannot possibly succeed again (malformed design, illegal
    geometry, unroutable net, exhausted budget) goes straight to the
    dead-letter directory instead of burning its attempts.

    The schedule is deterministic by default — no cap, no jitter — so
    tests can assert it exactly under an injected [sleep].  Production
    callers pass [?max_ms] (the raw [base * 2^k] is unbounded and
    would sleep for minutes within a dozen attempts) and
    [?jitter_seed] (so a thundering herd of jobs retrying the same
    transient failure decorrelates); both are pure functions of their
    inputs, so even the jittered schedule is reproducible. *)

val retryable : Bgr_error.code -> bool
(** [Fault] (injected faults stand in for any transient environmental
    failure) and [Io_error] (disk or socket hiccups) are retryable;
    [Parse], [Validate], [Geometry], [Unroutable], [Deadline] and
    [Internal] are not — re-running the identical job cannot change
    those outcomes. *)

val backoff_ms :
  ?max_ms:float -> ?jitter_seed:int -> base_ms:float -> attempt:int -> unit -> float
(** The sleep {e after} failed attempt [attempt] (1-based):
    [base_ms * 2^(attempt-1)].  So with [base_ms = 250.] the schedule
    is 250, 500, 1000, ...  With [jitter_seed] the raw value is
    stretched by a deterministic factor in [1, 1.25) drawn from
    [(seed, attempt)]; with [max_ms] the (jittered) value is clamped
    to the cap. *)

type 'a outcome = {
  result : ('a, Bgr_error.t) result;  (** last attempt's result *)
  attempts : int;  (** attempts actually made (>= 1) *)
  slept_ms : float list;  (** backoff sleeps taken, in order *)
  gave_up : bool;
      (** [giveup] fired while a retry was still owed — the error is
          {e not} final; the caller should leave the job spooled
          rather than dead-letter it. *)
}

val run :
  ?max_attempts:int ->
  ?base_ms:float ->
  ?max_ms:float ->
  ?jitter_seed:int ->
  ?sleep_ms:(float -> unit) ->
  ?giveup:(unit -> bool) ->
  ?on_retry:(attempt:int -> Bgr_error.t -> unit) ->
  (attempt:int -> ('a, Bgr_error.t) result) ->
  'a outcome
(** [run f] calls [f ~attempt:1], then — while the error is
    {!retryable} and attempts remain — sleeps the backoff and tries
    again.  [max_attempts] defaults to 2 (the daemon's "one bounded
    retry"); [base_ms] to 250; [max_ms]/[jitter_seed] shape the
    schedule as in {!backoff_ms}.  The default sleep is {e
    interruptible}: it dozes in ~50 ms slices and re-checks [giveup],
    so a daemon draining on SIGTERM is never stuck behind a multi-second
    backoff.  When [giveup] returns true before or after a backoff the
    loop stops with [gave_up = true] instead of burning the remaining
    attempts.  [sleep_ms] replaces the sleep wholesale (tests inject a
    recorder; it is called once per backoff with the full duration).
    [on_retry] fires before each backoff sleep.  An exception from [f]
    is not caught: only structured [Error] results participate in the
    policy. *)
