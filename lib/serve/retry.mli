(** Bounded retry with exponential backoff for service jobs.

    The daemon gives every job a small, fixed number of attempts.
    Between attempts it sleeps an exponentially growing backoff; which
    errors earn a retry at all is decided by {!retryable}, so a job
    that cannot possibly succeed again (malformed design, illegal
    geometry, unroutable net, exhausted budget) goes straight to the
    dead-letter directory instead of burning its attempts.

    The schedule is deterministic — no jitter — so tests can assert it
    exactly under an injected [sleep]. *)

val retryable : Bgr_error.code -> bool
(** [Fault] (injected faults stand in for any transient environmental
    failure) and [Io_error] (disk or socket hiccups) are retryable;
    [Parse], [Validate], [Geometry], [Unroutable], [Deadline] and
    [Internal] are not — re-running the identical job cannot change
    those outcomes. *)

val backoff_ms : base_ms:float -> attempt:int -> float
(** The sleep {e after} failed attempt [attempt] (1-based):
    [base_ms * 2^(attempt-1)].  So with [base_ms = 250.] the schedule
    is 250, 500, 1000, ... *)

type 'a outcome = {
  result : ('a, Bgr_error.t) result;  (** last attempt's result *)
  attempts : int;  (** attempts actually made (>= 1) *)
  slept_ms : float list;  (** backoff sleeps taken, in order *)
}

val run :
  ?max_attempts:int ->
  ?base_ms:float ->
  ?sleep_ms:(float -> unit) ->
  ?on_retry:(attempt:int -> Bgr_error.t -> unit) ->
  (attempt:int -> ('a, Bgr_error.t) result) ->
  'a outcome
(** [run f] calls [f ~attempt:1], then — while the error is
    {!retryable} and attempts remain — sleeps the backoff and tries
    again.  [max_attempts] defaults to 2 (the daemon's "one bounded
    retry"); [base_ms] to 250.  [sleep_ms] defaults to a real
    [Unix.sleepf]; tests inject a recorder.  [on_retry] fires before
    each backoff sleep.  An exception from [f] is not caught: only
    structured [Error] results participate in the policy. *)
