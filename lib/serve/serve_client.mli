(** A small blocking client for the {!Serve} daemon: connect, exchange
    the {!Wire.magic} greeting, then send requests and read framed
    replies.  One connection, one caller — there is no internal
    locking.  Used by the CLI ([bgr_serve submit] and friends), the
    load-test driver and the test suite. *)

type t

val connect : string -> (t, Bgr_error.t) result
(** Connect to the socket and verify the server banner.  [Io_error]
    when the dial fails, [Parse] when the peer is not a bgr daemon. *)

val close : t -> unit
(** Idempotent. *)

val send : t -> Wire.request -> (unit, Bgr_error.t) result
(** Frame and write one request. *)

val next_reply : ?timeout_s:float -> t -> (Wire.reply, Bgr_error.t) result
(** Block until one complete reply frame arrives.  [timeout_s]
    (default: none) bounds the wait; expiry is a [Deadline] error.
    EOF mid-frame and CRC damage are structured [Io_error]/[Parse]. *)

val request : ?timeout_s:float -> t -> Wire.request -> (Wire.reply, Bgr_error.t) result
(** {!send} then {!next_reply}. *)
