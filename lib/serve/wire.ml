let magic = "BGRS1\n"

let max_payload = 16 * 1024 * 1024

type request =
  | Route of {
      wait : bool;
      progress : bool;
      timing_driven : bool;
      deadline_ms : int option;
      name : string option;
      design : string;
    }
  | Resume of { wait : bool; progress : bool; job : string }
  | Analyze of { job : string }
  | Status of { job : string option }
  | Shutdown
  | Cancel of { job : string }
  | Revive of { wait : bool; force : bool; job : string }
  | Watch of { job : string }
  | Stats of { prom : bool }
  | Dump

type reply =
  | Accepted of { job : string }
  | Result of { job : string; ok : bool; json : string }
  | Rerror of { code : string; message : string }
  | Overloaded of { reason : string; depth : int; cap : int }
  | Info of { json : string }
  | Progress of { job : string; seq : int; json : string }
  | Rstats of { prom : bool; body : string }

(* --- primitive encoders ----------------------------------------------- *)

let u32 b v =
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr (v land 0xFF))

let lpstr b s =
  u32 b (String.length s);
  Buffer.add_string b s

let frame payload =
  let b = Buffer.create (String.length payload + 8) in
  u32 b (String.length payload);
  Buffer.add_string b payload;
  u32 b (Crc32.string payload);
  Buffer.contents b

(* --- primitive decoders ----------------------------------------------- *)

exception Short
exception Malformed of string

let get_u32 s pos =
  if pos + 4 > String.length s then raise Short;
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let get_lpstr s pos =
  let n = get_u32 s pos in
  if n > max_payload then raise (Malformed "string length exceeds the frame bound");
  if pos + 4 + n > String.length s then raise Short;
  (String.sub s (pos + 4) n, pos + 4 + n)

(* --- request bodies --------------------------------------------------- *)

let op_route = 0x01
let op_resume = 0x02
let op_analyze = 0x03
let op_status = 0x04
let op_shutdown = 0x05
let op_cancel = 0x06
let op_revive = 0x07
let op_watch = 0x08
let op_stats = 0x09
let op_dump = 0x0A

let op_accepted = 0x81
let op_result = 0x82
let op_error = 0x83
let op_overloaded = 0x84
let op_info = 0x85
let op_progress = 0x86
let op_rstats = 0x87

let flag_wait = 0x01
let flag_unconstrained = 0x02
let flag_force = 0x04
let flag_progress = 0x08
let flag_prom = 0x01

let encode_request r =
  let b = Buffer.create 256 in
  (match r with
  | Route { wait; progress; timing_driven; deadline_ms; name; design } ->
    Buffer.add_char b (Char.chr op_route);
    let flags =
      (if wait then flag_wait else 0)
      lor (if timing_driven then 0 else flag_unconstrained)
      lor if progress then flag_progress else 0
    in
    Buffer.add_char b (Char.chr flags);
    u32 b (match deadline_ms with None -> 0 | Some ms -> max 1 ms);
    lpstr b (Option.value name ~default:"");
    lpstr b design
  | Resume { wait; progress; job } ->
    Buffer.add_char b (Char.chr op_resume);
    Buffer.add_char b
      (Char.chr ((if wait then flag_wait else 0) lor if progress then flag_progress else 0));
    lpstr b job
  | Analyze { job } ->
    Buffer.add_char b (Char.chr op_analyze);
    lpstr b job
  | Status { job } ->
    Buffer.add_char b (Char.chr op_status);
    lpstr b (Option.value job ~default:"")
  | Shutdown -> Buffer.add_char b (Char.chr op_shutdown)
  | Cancel { job } ->
    Buffer.add_char b (Char.chr op_cancel);
    lpstr b job
  | Revive { wait; force; job } ->
    Buffer.add_char b (Char.chr op_revive);
    Buffer.add_char b
      (Char.chr ((if wait then flag_wait else 0) lor if force then flag_force else 0));
    lpstr b job
  | Watch { job } ->
    Buffer.add_char b (Char.chr op_watch);
    lpstr b job
  | Stats { prom } ->
    Buffer.add_char b (Char.chr op_stats);
    Buffer.add_char b (Char.chr (if prom then flag_prom else 0))
  | Dump -> Buffer.add_char b (Char.chr op_dump));
  frame (Buffer.contents b)

let encode_reply r =
  let b = Buffer.create 256 in
  (match r with
  | Accepted { job } ->
    Buffer.add_char b (Char.chr op_accepted);
    lpstr b job
  | Result { job; ok; json } ->
    Buffer.add_char b (Char.chr op_result);
    lpstr b job;
    Buffer.add_char b (if ok then '\001' else '\000');
    lpstr b json
  | Rerror { code; message } ->
    Buffer.add_char b (Char.chr op_error);
    lpstr b code;
    lpstr b message
  | Overloaded { reason; depth; cap } ->
    Buffer.add_char b (Char.chr op_overloaded);
    lpstr b reason;
    u32 b depth;
    u32 b cap
  | Info { json } ->
    Buffer.add_char b (Char.chr op_info);
    lpstr b json
  | Progress { job; seq; json } ->
    Buffer.add_char b (Char.chr op_progress);
    lpstr b job;
    u32 b seq;
    lpstr b json
  | Rstats { prom; body } ->
    Buffer.add_char b (Char.chr op_rstats);
    Buffer.add_char b (Char.chr (if prom then flag_prom else 0));
    lpstr b body);
  frame (Buffer.contents b)

(* --- payload decoding -------------------------------------------------- *)

let parse_error ?file fmt =
  Printf.ksprintf
    (fun m -> Error (Bgr_error.make ?file ~phase:"serve" Bgr_error.Parse "%s" m))
    fmt

let finish ?file ~what s pos v =
  if pos <> String.length s then
    parse_error ?file "%s message carries %d trailing bytes" what (String.length s - pos)
  else Ok v

let decode_request ?file s =
  if s = "" then parse_error ?file "empty request payload"
  else begin
    let op = Char.code s.[0] in
    match
      if op = op_route then begin
        if String.length s < 2 then raise Short;
        let flags = Char.code s.[1] in
        let deadline = get_u32 s 2 in
        let name, pos = get_lpstr s 6 in
        let design, pos = get_lpstr s pos in
        finish ?file ~what:"route" s pos
          (Route
             { wait = flags land flag_wait <> 0;
               progress = flags land flag_progress <> 0;
               timing_driven = flags land flag_unconstrained = 0;
               deadline_ms = (if deadline = 0 then None else Some deadline);
               name = (if name = "" then None else Some name);
               design })
      end
      else if op = op_resume then begin
        if String.length s < 2 then raise Short;
        let flags = Char.code s.[1] in
        let job, pos = get_lpstr s 2 in
        finish ?file ~what:"resume" s pos
          (Resume
             { wait = flags land flag_wait <> 0;
               progress = flags land flag_progress <> 0;
               job })
      end
      else if op = op_analyze then begin
        let job, pos = get_lpstr s 1 in
        finish ?file ~what:"analyze" s pos (Analyze { job })
      end
      else if op = op_status then begin
        let job, pos = get_lpstr s 1 in
        finish ?file ~what:"status" s pos
          (Status { job = (if job = "" then None else Some job) })
      end
      else if op = op_shutdown then finish ?file ~what:"shutdown" s 1 Shutdown
      else if op = op_cancel then begin
        let job, pos = get_lpstr s 1 in
        finish ?file ~what:"cancel" s pos (Cancel { job })
      end
      else if op = op_revive then begin
        if String.length s < 2 then raise Short;
        let flags = Char.code s.[1] in
        let job, pos = get_lpstr s 2 in
        finish ?file ~what:"revive" s pos
          (Revive
             { wait = flags land flag_wait <> 0; force = flags land flag_force <> 0; job })
      end
      else if op = op_watch then begin
        let job, pos = get_lpstr s 1 in
        finish ?file ~what:"watch" s pos (Watch { job })
      end
      else if op = op_stats then begin
        if String.length s < 2 then raise Short;
        let flags = Char.code s.[1] in
        finish ?file ~what:"stats" s 2 (Stats { prom = flags land flag_prom <> 0 })
      end
      else if op = op_dump then finish ?file ~what:"dump" s 1 Dump
      else parse_error ?file "unknown request opcode 0x%02x" op
    with
    | r -> r
    | exception Short -> parse_error ?file "request body is truncated (opcode 0x%02x)" op
    | exception Malformed m -> parse_error ?file "%s" m
  end

let decode_reply ?file s =
  if s = "" then parse_error ?file "empty reply payload"
  else begin
    let op = Char.code s.[0] in
    match
      if op = op_accepted then begin
        let job, pos = get_lpstr s 1 in
        finish ?file ~what:"accepted" s pos (Accepted { job })
      end
      else if op = op_result then begin
        let job, pos = get_lpstr s 1 in
        if pos >= String.length s then raise Short;
        let ok = s.[pos] <> '\000' in
        let json, pos = get_lpstr s (pos + 1) in
        finish ?file ~what:"result" s pos (Result { job; ok; json })
      end
      else if op = op_error then begin
        let code, pos = get_lpstr s 1 in
        let message, pos = get_lpstr s pos in
        finish ?file ~what:"error" s pos (Rerror { code; message })
      end
      else if op = op_overloaded then begin
        let reason, pos = get_lpstr s 1 in
        let depth = get_u32 s pos in
        let cap = get_u32 s (pos + 4) in
        finish ?file ~what:"overloaded" s (pos + 8) (Overloaded { reason; depth; cap })
      end
      else if op = op_info then begin
        let json, pos = get_lpstr s 1 in
        finish ?file ~what:"info" s pos (Info { json })
      end
      else if op = op_progress then begin
        let job, pos = get_lpstr s 1 in
        let seq = get_u32 s pos in
        let json, pos = get_lpstr s (pos + 4) in
        finish ?file ~what:"progress" s pos (Progress { job; seq; json })
      end
      else if op = op_rstats then begin
        if String.length s < 2 then raise Short;
        let flags = Char.code s.[1] in
        let body, pos = get_lpstr s 2 in
        finish ?file ~what:"stats" s pos (Rstats { prom = flags land flag_prom <> 0; body })
      end
      else parse_error ?file "unknown reply opcode 0x%02x" op
    with
    | r -> r
    | exception Short -> parse_error ?file "reply body is truncated (opcode 0x%02x)" op
    | exception Malformed m -> parse_error ?file "%s" m
  end

(* --- incremental frame extraction -------------------------------------- *)

type extract = Need of int | Frame of string * int | Bad of Bgr_error.t

let extract_frame s ~pos =
  let avail = String.length s - pos in
  if avail < 4 then Need (4 - avail)
  else begin
    let len = get_u32 s pos in
    if len > max_payload then
      Bad
        (Bgr_error.make ~phase:"serve" Bgr_error.Parse
           "frame declares a %d-byte payload; the protocol caps payloads at %d" len
           max_payload)
    else if avail < 4 + len + 4 then Need ((4 + len + 4) - avail)
    else begin
      let payload = String.sub s (pos + 4) len in
      let crc = get_u32 s (pos + 4 + len) in
      if crc <> Crc32.string payload then
        Bad
          (Bgr_error.make ~phase:"serve" Bgr_error.Parse
             "frame CRC mismatch (recorded %08x, computed %08x)" crc (Crc32.string payload))
      else Frame (payload, 4 + len + 4)
    end
  end

let valid_job_id s =
  let n = String.length s in
  n >= 1 && n <= 64
  && (match s.[0] with 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false)
  && String.for_all
       (function 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '.' | '_' | '-' -> true | _ -> false)
       s
