let retryable = function
  | Bgr_error.Fault | Bgr_error.Io_error -> true
  | Bgr_error.Parse | Bgr_error.Validate | Bgr_error.Geometry | Bgr_error.Unroutable
  | Bgr_error.Deadline | Bgr_error.Internal ->
    false

(* The jitter fraction in [0, 0.25) is a pure hash of (seed, attempt),
   so a given job's schedule is reproducible while distinct jobs
   decorrelate. *)
let jitter_frac seed attempt =
  let h = Hashtbl.hash (seed, attempt) land 0xFFFF in
  0.25 *. (float_of_int h /. 65536.0)

let backoff_ms ?max_ms ?jitter_seed ~base_ms ~attempt () =
  let ms = base_ms *. (2.0 ** float_of_int (attempt - 1)) in
  let ms =
    match jitter_seed with
    | None -> ms
    | Some seed -> ms *. (1.0 +. jitter_frac seed attempt)
  in
  match max_ms with None -> ms | Some cap -> Float.min ms cap

type 'a outcome = {
  result : ('a, Bgr_error.t) result;
  attempts : int;
  slept_ms : float list;
  gave_up : bool;
}

(* Sleep in short slices so a shutdown drain (or a cancel) interrupts
   the backoff within ~50 ms instead of blocking for its full length. *)
let interruptible_sleep ~giveup ms =
  let slice = 50.0 in
  let remaining = ref ms in
  while !remaining > 0.0 && not (giveup ()) do
    let step = Float.min slice !remaining in
    Unix.sleepf (step /. 1000.0);
    remaining := !remaining -. step
  done

let run ?(max_attempts = 2) ?(base_ms = 250.0) ?max_ms ?jitter_seed ?sleep_ms
    ?(giveup = fun () -> false) ?(on_retry = fun ~attempt:_ _ -> ()) f =
  let sleep =
    match sleep_ms with Some s -> s | None -> interruptible_sleep ~giveup
  in
  let max_attempts = max 1 max_attempts in
  let slept = ref [] in
  let rec go attempt =
    match f ~attempt with
    | Ok v -> { result = Ok v; attempts = attempt; slept_ms = List.rev !slept; gave_up = false }
    | Error e ->
      if attempt < max_attempts && retryable e.Bgr_error.code && not (giveup ()) then begin
        on_retry ~attempt e;
        let ms = backoff_ms ?max_ms ?jitter_seed ~base_ms ~attempt () in
        slept := ms :: !slept;
        sleep ms;
        if giveup () then
          { result = Error e; attempts = attempt; slept_ms = List.rev !slept; gave_up = true }
        else go (attempt + 1)
      end
      else
        { result = Error e;
          attempts = attempt;
          slept_ms = List.rev !slept;
          gave_up = (retryable e.Bgr_error.code && attempt < max_attempts && giveup ()) }
  in
  go 1
