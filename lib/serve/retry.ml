let retryable = function
  | Bgr_error.Fault | Bgr_error.Io_error -> true
  | Bgr_error.Parse | Bgr_error.Validate | Bgr_error.Geometry | Bgr_error.Unroutable
  | Bgr_error.Deadline | Bgr_error.Internal ->
    false

let backoff_ms ~base_ms ~attempt = base_ms *. (2.0 ** float_of_int (attempt - 1))

type 'a outcome = {
  result : ('a, Bgr_error.t) result;
  attempts : int;
  slept_ms : float list;
}

let default_sleep ms = if ms > 0.0 then Unix.sleepf (ms /. 1000.0)

let run ?(max_attempts = 2) ?(base_ms = 250.0) ?(sleep_ms = default_sleep)
    ?(on_retry = fun ~attempt:_ _ -> ()) f =
  let max_attempts = max 1 max_attempts in
  let slept = ref [] in
  let rec go attempt =
    match f ~attempt with
    | Ok v -> { result = Ok v; attempts = attempt; slept_ms = List.rev !slept }
    | Error e ->
      if attempt < max_attempts && retryable e.Bgr_error.code then begin
        on_retry ~attempt e;
        let ms = backoff_ms ~base_ms ~attempt in
        slept := ms :: !slept;
        sleep_ms ms;
        go (attempt + 1)
      end
      else { result = Error e; attempts = attempt; slept_ms = List.rev !slept }
  in
  go 1
