(** Process isolation for routing attempts.

    In the daemon's [Workers] isolation mode each routing attempt runs
    in a forked-and-exec'd [bgr_serve worker] subprocess, so a hung,
    OOM-killed or crashing attempt costs one child process, never the
    daemon.  The two halves meet over a pipe on the worker's stdout:

    {ul
    {- {!main} — the worker process.  Re-opens the job's spool
       directory, runs the single attempt through the ordinary
       [Persist.route]/[Persist.resume] path, and reports over the
       pipe: the ["BGRW1\n"] magic, then CRC frames ({!event})
       carrying periodic heartbeats (driven off the router's
       quality-sample cadence), and finally one [Done] or [Fail]
       frame.  Exits with the documented [Bgr_error] exit code.}
    {- {!supervise} — the daemon side.  Spawns the child with
       [Unix.create_process] (Domain-safe, unlike a bare fork),
       follows the pipe, and SIGKILLs the child on heartbeat silence,
       hard wall-deadline overrun or a cancel request.  EOF plus
       [waitpid] classify the outcome.}}

    The frame spec is documented in docs/FORMATS.md; the supervision
    semantics in docs/serving.md. *)

val magic : string
(** ["BGRW1\n"], sent by the worker before its first frame. *)

type event =
  | Heartbeat of { phase : string; pass : int; deletions : int; worst_margin_ps : float }
      (** liveness plus progress; emitted at spawn and then once per
          router quality sample.  [worst_margin_ps] is the sample's
          worst constraint margin ([nan] before the first sample or on
          unconstrained runs). *)
  | Done of { json : string }  (** the complete RESULT json *)
  | Fail of { code : string; message : string }
      (** structured failure: [code] is a {!Bgr_error.code_name} (or
          ["oom"]), [message] its rendering *)
  | Obs_summary of { json : string }
      (** the worker's observability summary (pid, trace epoch, span
          count, artifact file names — see docs/FORMATS.md), sent just
          before the terminal frame when the worker runs with [~obs];
          the daemon stitches the attempt's spans and metrics from it *)
  | Dump of { path : string }
      (** the worker wrote its flight-recorder dump ([BGRF1]) to
          [path] — in response to the supervisor's SIGQUIT dump
          request, or spontaneously just before a [Fail] frame *)

val encode_event : event -> string
(** The complete frame (length, payload, CRC). *)

val decode_event : string -> (event, Bgr_error.t) result
(** Decode a frame payload (opcode byte onward). *)

(** {1 Shared attempt machinery}

    Used by both isolation modes, so [In_process] and [Workers] runs
    produce bit-identical results and jsons. *)

val result_json : string -> Flow.measurement -> attempts:int -> string
val error_json : string -> Bgr_error.t -> attempts:int -> string

val quality_sink :
  log:(string -> unit) -> string -> (Router.quality_sample -> unit) option * (unit -> unit)
(** A quality-log emitter that degrades to a [log] warning instead of
    failing the job; returns [(emit, finish)]. *)

val budget_of : ?default_deadline_ms:int -> Spool.job -> Budget.t
(** The job's own deadline, else the daemon default, else unlimited. *)

val attempt :
  domains:int ->
  budget:Budget.t ->
  ?on_quality:(Router.quality_sample -> unit) ->
  dir:string ->
  Spool.job ->
  (Flow.outcome, Bgr_error.t) result
(** One attempt: [Persist.route] the first time, [Persist.resume] once
    a journal exists — a retry after a mid-route fault (or a killed
    worker) continues the interrupted run bit-identically. *)

(** {1 The worker process} *)

val set_mem_limit_mb : int -> bool
(** Apply an address-space ceiling ([setrlimit(RLIMIT_AS)]) to the
    calling process, so a runaway allocation surfaces as a catchable
    [Out_of_memory] instead of an OOM-killer SIGKILL.  [mb <= 0] is a
    no-op.  False when the kernel refused. *)

val oom_exit_code : int
(** [70] — the worker's exit code after [Out_of_memory], recognized by
    the supervisor even when the OOM frame itself failed to flush. *)

val trace_chrome_file : attempt:int -> string
val trace_jsonl_file : attempt:int -> string
val metrics_file : attempt:int -> string
val obs_summary_file : attempt:int -> string
(** Per-attempt observability artifact names inside the job's spool
    directory ([trace-aN.json], [trace-aN.jsonl], [metrics-aN.bgrm],
    [obs-aN.json]), keyed by the attempt ordinal so retries never
    clobber an earlier attempt's trace.  The flight-recorder dump
    rides the same convention: {!Flight.attempt_filename}
    ([flight-aN.bgrf]). *)

val main :
  ?domains:int ->
  ?default_deadline_ms:int ->
  ?mem_limit_mb:int ->
  ?trace_id:string ->
  ?parent_span:int ->
  ?obs:bool ->
  dir:string ->
  unit ->
  'a
(** Run the worker process on spool job directory [dir]; never
    returns.  With [~obs:true] the worker records its own spans and
    metrics: it adopts [trace_id], parents its root span under the
    supervisor's [parent_span], writes the four per-attempt artifact
    files into [dir], and sends an [Obs_summary] frame before the
    terminal one.  Fault sites ["serve.worker.hang"] and
    ["serve.worker.kill"] are tripped here, {e attempt-gated}: each
    site is tripped once per attempt already recorded in the manifest
    and only the last answer acts, so [SITE:n=K] means "the K-th
    attempt's worker misbehaves" even though every attempt is a fresh
    process with fresh fault counters. *)

(** {1 The supervisor (daemon side)} *)

type kill_reason =
  | Hang  (** heartbeat silence beyond the watchdog timeout *)
  | Hard_deadline  (** still running past the wall deadline plus grace *)
  | Canceled  (** an operator [cancel] request *)
  | Signaled of int  (** died by an external signal (e.g. kill -9, OOM killer) *)
  | Oom  (** the worker reported [Out_of_memory] under its memory ceiling *)

val kill_reason_string : kill_reason -> string
(** ["hang"], ["hard-deadline"], ["canceled"], ["signal-N"] (N the
    conventional POSIX number, e.g. ["signal-9"] for SIGKILL), ["oom"]
    — the vocabulary recorded in the JOB manifest and the
    [serve_worker_kills_total] metric label. *)

type failure =
  | Failed of { code : string; message : string }
      (** the worker reported a structured error (or broke protocol:
          code ["internal"]) *)
  | Killed of { reason : kill_reason; detail : string }
      (** the watchdog (or the outside world) killed the worker *)
  | Spawn_error of string  (** the child could not be started at all *)

type progress = {
  p_phase : string;
  p_pass : int;
  p_deletions : int;
  p_worst_margin_ps : float;
}

type verdict = V_ok | V_kill of kill_reason * string

val watchdog_verdict :
  now_s:float ->
  started_s:float ->
  last_beat_s:float ->
  heartbeat_timeout_ms:float ->
  hard_deadline_ms:float ->
  canceled:bool ->
  verdict
(** The supervisor's per-poll watchdog decision, pure and
    clock-injectable: cancel wins, then heartbeat silence beyond
    [heartbeat_timeout_ms] ([Hang]), then total runtime beyond
    [hard_deadline_ms] ([Hard_deadline]).  A slow-but-alive worker —
    beats arriving within the timeout, however sparse — is never
    killed before the hard deadline. *)

val supervise :
  ?heartbeat_timeout_ms:float ->
  ?hard_deadline_ms:float ->
  ?poll_ms:float ->
  ?dump_grace_ms:float ->
  ?canceled:(unit -> bool) ->
  ?on_progress:(progress -> unit) ->
  ?on_spawn:(int -> unit) ->
  ?on_obs:(string -> unit) ->
  ?on_dump:(string -> unit) ->
  log:(string -> unit) ->
  argv:string array ->
  unit ->
  (string, failure) result
(** Spawn [argv] (stdin /dev/null, stdout the report pipe, stderr
    inherited) and supervise it to completion; [Ok json] is the RESULT
    json from its [Done] frame.  [heartbeat_timeout_ms] (default
    10 000) arms the hang watchdog; [hard_deadline_ms] (default none)
    the wall ceiling; [canceled] is polled every [poll_ms] (default
    50).  [on_spawn] receives the child pid (the cancel path and the
    chaos tests need it); [on_progress] each heartbeat; [on_obs] the
    [Obs_summary] json when the worker sends one; [on_dump] the path
    from a [Dump] frame.  A watchdog kill first sends SIGQUIT — the
    dump request — and drains the pipe for up to [dump_grace_ms]
    (default 500; 0 disables) waiting for the worker's [Dump] frame
    before the SIGKILL, so the flight record survives the execution.
    Protocol-violation kills skip the grace: that pipe can no longer
    be trusted.  Trips ["serve.worker.spawn"] before forking,
    surfacing as [Spawn_error].  Never raises on child misbehavior:
    every outcome is classified into the {!failure} taxonomy. *)
