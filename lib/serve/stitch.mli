(** Cross-process trace stitching.

    Under worker isolation each attempt's spans and metrics are
    recorded by the [bgr_serve worker] child process into per-attempt
    artifact files in the job's spool directory (see {!Worker.main}
    with [~obs]).  [merge] folds one such attempt back into the
    daemon's process-global tracer and registry, guided by the
    worker's obs summary json (carried by the BGRW1 [Obs_summary]
    frame):

    {ul
    {- spans from the worker's JSONL trace are re-based from the
       worker's trace epoch onto the daemon's and re-emitted through
       {!Obs.Trace.emit_foreign}, keeping the worker's pid, span ids,
       parent links and trace id — a Perfetto load of the daemon's
       chrome trace then shows the daemon job span and the worker's
       phase spans on one timeline;}
    {- the worker's [bgr-metrics 1] snapshot merges additively through
       {!Obs.Metrics.merge_snapshot}, so worker-side counters and
       histograms reappear in the daemon's [stats] answers and [.prom]
       file.}}

    Runs on the executor domain after supervision ends, under the Obs
    failure policy: missing files, torn lines and incompatible
    families degrade to {!Obs.warnings}, never an error. *)

type report = { st_spans : int  (** spans re-emitted *); st_series : int  (** metric series merged *) }

val merge : dir:string -> summary_json:string -> unit -> report
(** [merge ~dir ~summary_json ()] stitches one worker attempt whose
    artifacts live in spool job directory [dir].  Never raises. *)
