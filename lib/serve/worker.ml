(* Process isolation for routing attempts.

   The daemon side ([supervise]) forks-and-execs a fresh [bgr_serve
   worker] subprocess per attempt and watches its report pipe; the
   worker side ([main]) re-opens the job's spool directory, runs the
   one attempt, and reports heartbeats, progress and the final verdict
   over stdout in the house CRC framing.  See docs/FORMATS.md for the
   frame spec. *)

let magic = "BGRW1\n"

type event =
  | Heartbeat of { phase : string; pass : int; deletions : int; worst_margin_ps : float }
  | Done of { json : string }
  | Fail of { code : string; message : string }
  | Obs_summary of { json : string }
  | Dump of { path : string }

(* --- framing (the BGRS1 discipline, worker-pipe opcodes) --------------- *)

let op_heartbeat = 0xC1
let op_done = 0xC2
let op_fail = 0xC3
let op_obs_summary = 0xC4
let op_dump = 0xC5

let u32 b v =
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr (v land 0xFF))

let f64 b v =
  let bits = Int64.bits_of_float v in
  for i = 7 downto 0 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (i * 8)) 0xFFL)))
  done

let lpstr b s =
  u32 b (String.length s);
  Buffer.add_string b s

let encode_event ev =
  let b = Buffer.create 64 in
  (match ev with
  | Heartbeat { phase; pass; deletions; worst_margin_ps } ->
    Buffer.add_char b (Char.chr op_heartbeat);
    lpstr b phase;
    u32 b pass;
    u32 b deletions;
    f64 b worst_margin_ps
  | Done { json } ->
    Buffer.add_char b (Char.chr op_done);
    lpstr b json
  | Fail { code; message } ->
    Buffer.add_char b (Char.chr op_fail);
    lpstr b code;
    lpstr b message
  | Obs_summary { json } ->
    Buffer.add_char b (Char.chr op_obs_summary);
    lpstr b json
  | Dump { path } ->
    Buffer.add_char b (Char.chr op_dump);
    lpstr b path);
  let payload = Buffer.contents b in
  let f = Buffer.create (String.length payload + 8) in
  u32 f (String.length payload);
  Buffer.add_string f payload;
  u32 f (Crc32.string payload);
  Buffer.contents f

exception Short
exception Malformed of string

let get_u32 s pos =
  if pos + 4 > String.length s then raise Short;
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let get_lpstr s pos =
  let n = get_u32 s pos in
  if n > Wire.max_payload then raise (Malformed "string length exceeds the frame bound");
  if pos + 4 + n > String.length s then raise Short;
  (String.sub s (pos + 4) n, pos + 4 + n)

let get_f64 s pos =
  if pos + 8 > String.length s then raise Short;
  let bits = ref 0L in
  for i = 0 to 7 do
    bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (Char.code s.[pos + i]))
  done;
  Int64.float_of_bits !bits

let parse_error fmt =
  Printf.ksprintf
    (fun m -> Error (Bgr_error.make ~phase:"serve" Bgr_error.Parse "%s" m))
    fmt

let decode_event s =
  if s = "" then parse_error "empty worker event payload"
  else begin
    let op = Char.code s.[0] in
    let finish pos v =
      if pos <> String.length s then
        parse_error "worker event carries %d trailing bytes" (String.length s - pos)
      else Ok v
    in
    match
      if op = op_heartbeat then begin
        let phase, pos = get_lpstr s 1 in
        let pass = get_u32 s pos in
        let deletions = get_u32 s (pos + 4) in
        let worst_margin_ps = get_f64 s (pos + 8) in
        finish (pos + 16) (Heartbeat { phase; pass; deletions; worst_margin_ps })
      end
      else if op = op_done then begin
        let json, pos = get_lpstr s 1 in
        finish pos (Done { json })
      end
      else if op = op_fail then begin
        let code, pos = get_lpstr s 1 in
        let message, pos = get_lpstr s pos in
        finish pos (Fail { code; message })
      end
      else if op = op_obs_summary then begin
        let json, pos = get_lpstr s 1 in
        finish pos (Obs_summary { json })
      end
      else if op = op_dump then begin
        let path, pos = get_lpstr s 1 in
        finish pos (Dump { path })
      end
      else parse_error "unknown worker event opcode 0x%02x" op
    with
    | r -> r
    | exception Short -> parse_error "worker event is truncated (opcode 0x%02x)" op
    | exception Malformed m -> parse_error "%s" m
  end

(* --- job result json (shared by daemon and worker) --------------------- *)

let result_json id (m : Flow.measurement) ~attempts =
  Qjson.to_string
    (Qjson.Obj
       [ ("job", Qjson.Str id);
         ("ok", Qjson.Bool true);
         (* as a string: the hash is a full 63-bit int, which a JSON
            double would round *)
         ("deletion_hash", Qjson.Str (string_of_int m.Flow.m_deletion_hash));
         ("delay_ps", Qjson.num m.Flow.m_delay_ps);
         ("area_mm2", Qjson.num m.Flow.m_area_mm2);
         ("length_mm", Qjson.num m.Flow.m_length_mm);
         ("violations", Qjson.int m.Flow.m_violations);
         ("stopped_because", Qjson.Str m.Flow.m_stopped_because);
         ("domains", Qjson.int m.Flow.m_domains);
         ("attempts", Qjson.int attempts) ])

let error_json id (e : Bgr_error.t) ~attempts =
  Qjson.to_string
    (Qjson.Obj
       [ ("job", Qjson.Str id);
         ("ok", Qjson.Bool false);
         ("code", Qjson.Str (Bgr_error.code_name e.Bgr_error.code));
         ("error", Qjson.Str (Bgr_error.to_string e));
         ("attempts", Qjson.int attempts) ])

(* --- one routing attempt (shared by both isolation modes) -------------- *)

(* A quality sink that degrades to a log line: telemetry must never
   fail the job (same discipline as the CLI's). *)
let quality_sink ~log path =
  match Qlog.create ~path with
  | exception Bgr_error.Error e ->
    log (Printf.sprintf "warning: quality: %s" e.Bgr_error.message);
    (None, fun () -> ())
  | w ->
    let dead = ref false in
    let emit s =
      if not !dead then
        try ignore (Qlog.append w s)
        with _ ->
          dead := true;
          Qlog.close w;
          log "warning: quality: recording stopped"
    in
    (Some emit, fun () -> if not !dead then Qlog.close w)

let budget_of ?default_deadline_ms (job : Spool.job) =
  match
    match job.Spool.j_deadline_ms with Some ms -> Some ms | None -> default_deadline_ms
  with
  | None -> Budget.unlimited
  | Some ms -> Budget.make ~wall_ms:(float_of_int ms) ()

(* [Persist.route] the first time, [Persist.resume] once a journal
   exists — so a retry after a mid-route fault (or a killed worker)
   continues the interrupted run instead of starting over. *)
let attempt ~domains ~budget ?on_quality ~dir (job : Spool.job) =
  try
    if Sys.file_exists (Filename.concat dir Persist.journal_file) then
      Result.map
        (fun rr -> rr.Persist.rr_outcome)
        (Persist.resume ~domains ~budget ?on_quality ~dir ())
    else begin
      let design_path = Filename.concat dir Persist.design_file in
      let design_text = Lineio.read_all design_path in
      match
        Result.bind (Design_io.of_string_result ~file:design_path design_text)
          Design_check.validate
      with
      | Error e -> Error e
      | Ok bundle ->
        let options = { Router.default_options with Router.domains } in
        Ok
          (Persist.route ~options ~timing_driven:job.Spool.j_timing_driven ~budget
             ?on_quality ~dir ~design_text (Design_io.to_flow_input bundle))
    end
  with
  | Bgr_error.Error e -> Error e
  | Sys_error msg -> Error (Bgr_error.make ~phase:"serve" Bgr_error.Io_error "%s" msg)

(* --- the worker process ------------------------------------------------ *)

external set_mem_limit_stub : int -> int = "bgr_serve_set_mem_limit_mb"

let set_mem_limit_mb mb = set_mem_limit_stub mb = 0

let oom_exit_code = 70

(* Per-attempt observability artifacts, named after the attempt
   ordinal so retries never clobber each other. *)
let trace_chrome_file ~attempt = Printf.sprintf "trace-a%d.json" attempt

let trace_jsonl_file ~attempt = Printf.sprintf "trace-a%d.jsonl" attempt

let metrics_file ~attempt = Printf.sprintf "metrics-a%d.bgrm" attempt

let obs_summary_file ~attempt = Printf.sprintf "obs-a%d.json" attempt

let obs_summary_json ~job ~attempt ~pid ~epoch_s ~trace_id ~spans =
  Qjson.to_string
    (Qjson.Obj
       [ ("job", Qjson.Str job);
         ("attempt", Qjson.int attempt);
         ("pid", Qjson.int pid);
         ("epoch_s", Qjson.num epoch_s);
         ("trace_id", Qjson.Str (Option.value trace_id ~default:""));
         ("chrome", Qjson.Str (trace_chrome_file ~attempt));
         ("jsonl", Qjson.Str (trace_jsonl_file ~attempt));
         ("metrics", Qjson.Str (metrics_file ~attempt));
         ("spans", Qjson.int spans);
         ("warnings", Qjson.Arr (List.map (fun w -> Qjson.Str w) (Obs.warnings ()))) ])

let main ?(domains = 0) ?default_deadline_ms ?(mem_limit_mb = 0) ?trace_id ?parent_span
    ?(obs = false) ~dir () =
  (* The supervisor may vanish (daemon kill -9): a dead report pipe
     must cost an EPIPE, not the worker. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  set_binary_mode_out stdout true;
  let send ev =
    try
      output_string stdout (encode_event ev);
      flush stdout
    with Sys_error _ -> ()
  in
  (* Built before routing starts: assembling it after [Out_of_memory]
     could itself fail. *)
  let oom_frame = encode_event (Fail { code = "oom"; message = "worker ran out of memory" }) in
  (try
     output_string stdout magic;
     flush stdout
   with Sys_error _ -> ());
  match Spool.read_manifest dir with
  | Error e ->
    send (Fail { code = Bgr_error.code_name e.Bgr_error.code; message = Bgr_error.to_string e });
    exit (Bgr_error.exit_code e.Bgr_error.code)
  | Ok job ->
    if mem_limit_mb > 0 && not (set_mem_limit_mb mem_limit_mb) then
      prerr_endline "bgr_serve worker: warning: could not apply the memory ceiling";
    (* Attempt-gated fault trips: counters are per-process and every
       attempt is a fresh process, so a plain [trip] would make [n=K]
       fire in every worker.  Tripping the site [attempts] times and
       keeping the last answer makes [SITE:n=K] mean "the K-th
       attempt's worker misbehaves" and [always] mean "every one
       does". *)
    let gate site =
      let fired = ref false in
      for _ = 1 to max 1 job.Spool.j_attempts do
        fired := Fault.trip site
      done;
      !fired
    in
    if gate "serve.worker.kill" then Unix.kill (Unix.getpid ()) Sys.sigkill;
    let hang = gate "serve.worker.hang" in
    let attempt_no = max 1 job.Spool.j_attempts in
    (* The supervisor's dump request is SIGQUIT: dump the flight
       recorder next to the job's other per-attempt artifacts and tell
       the daemon where it landed.  Installed before the hang gate so
       even the injected pathology is dumpable — the handler interrupts
       [Unix.sleep] at a safepoint, writes, and lets the loop resume
       (the SIGKILL follows from the supervisor). *)
    let flight_path () = Filename.concat dir (Flight.attempt_filename ~attempt:attempt_no) in
    Flight.install_sigquit_dump ~path:flight_path
      ~after:(fun p -> send (Dump { path = p }))
      ();
    if obs then begin
      Obs.enable ();
      Obs.Trace.set_pid (Unix.getpid ());
      Obs.Trace.set_trace_id trace_id;
      Obs.Trace.set_parent_span parent_span;
      Obs.Trace.to_chrome_file (Filename.concat dir (trace_chrome_file ~attempt:attempt_no));
      Obs.Trace.to_jsonl_file (Filename.concat dir (trace_jsonl_file ~attempt:attempt_no))
    end;
    let progress = ref ("spawn", 0, 0, nan) in
    let beat () =
      let phase, pass, deletions, worst_margin_ps = !progress in
      send (Heartbeat { phase; pass; deletions; worst_margin_ps })
    in
    beat ();
    if hang then
      (* The injected pathology the watchdog exists for: alive, silent,
         making no progress. *)
      while true do
        Unix.sleep 3600
      done;
    let log m = prerr_endline ("bgr_serve worker: " ^ m) in
    let qlog_emit, qlog_finish =
      quality_sink ~log (Filename.concat dir Qlog.default_filename)
    in
    let on_quality (s : Router.quality_sample) =
      progress :=
        (s.Router.qs_phase, s.Router.qs_pass, s.Router.qs_deletions,
         s.Router.qs_worst_margin_ps);
      (match qlog_emit with Some emit -> emit s | None -> ());
      beat ()
    in
    let budget = budget_of ?default_deadline_ms job in
    (* Close the sinks, snapshot the registry, and hand the daemon the
       obs summary *before* the terminal frame — the supervisor stops
       reading at Done/Fail.  Best-effort: a full disk must cost a
       warning, never the attempt's verdict. *)
    let finish_obs () =
      if obs then begin
        try
          Obs.Trace.close_sinks ();
          let write_file path contents =
            let oc = open_out path in
            Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
                output_string oc contents)
          in
          write_file
            (Filename.concat dir (metrics_file ~attempt:attempt_no))
            (Obs.Metrics.snapshot ());
          let summary =
            obs_summary_json ~job:job.Spool.j_id ~attempt:attempt_no
              ~pid:(Unix.getpid ()) ~epoch_s:(Obs.Trace.epoch_s ()) ~trace_id
              ~spans:(List.length (Obs.Trace.completed ()))
          in
          write_file (Filename.concat dir (obs_summary_file ~attempt:attempt_no)) summary;
          send (Obs_summary { json = summary })
        with e ->
          prerr_endline ("bgr_serve worker: warning: obs finalize: " ^ Printexc.to_string e)
      end
    in
    (match
       Fun.protect ~finally:qlog_finish (fun () ->
           let run () = attempt ~domains ~budget ~on_quality ~dir job in
           if obs then
             Obs.Trace.span
               ~attrs:
                 [ ("job", Obs.Trace.Str job.Spool.j_id);
                   ("attempt", Obs.Trace.Int attempt_no) ]
               "worker.attempt" run
           else run ())
     with
    | Ok o ->
      finish_obs ();
      send
        (Done
           { json =
               result_json job.Spool.j_id o.Flow.o_measurement
                 ~attempts:job.Spool.j_attempts });
      exit 0
    | Error e ->
      finish_obs ();
      (* The black box survives the crash: the flight record is on disk
         before the failure frame goes out. *)
      let p = flight_path () in
      if Flight.dump_file ~reason:("error:" ^ Bgr_error.code_name e.Bgr_error.code) p then
        send (Dump { path = p });
      send
        (Fail { code = Bgr_error.code_name e.Bgr_error.code; message = Bgr_error.to_string e });
      exit (Bgr_error.exit_code e.Bgr_error.code)
    | exception Out_of_memory ->
      (* Dumping allocates a buffer; after [Out_of_memory] the heap may
         have room again (the failed allocation was usually the huge
         one).  Best-effort — the prebuilt OOM frame must go out even
         when it doesn't. *)
      (try ignore (Flight.dump_file ~reason:"oom" (flight_path ())) with _ -> ());
      (try
         output_string stdout oom_frame;
         flush stdout
       with _ -> ());
      exit oom_exit_code)

(* --- the supervisor (daemon side) -------------------------------------- *)

type kill_reason = Hang | Hard_deadline | Canceled | Signaled of int | Oom

(* [waitpid] reports OCaml's internal signal numbers (negative for the
   known ones); record the conventional POSIX number instead, so the
   manifest says "signal-9", not "signal--7". *)
let os_signal_number s =
  let known =
    [ (Sys.sighup, 1); (Sys.sigint, 2); (Sys.sigquit, 3); (Sys.sigill, 4);
      (Sys.sigabrt, 6); (Sys.sigbus, 7); (Sys.sigfpe, 8); (Sys.sigkill, 9);
      (Sys.sigsegv, 11); (Sys.sigpipe, 13); (Sys.sigalrm, 14); (Sys.sigterm, 15);
      (Sys.sigxcpu, 24); (Sys.sigxfsz, 25) ]
  in
  match List.assoc_opt s known with Some n -> n | None -> abs s

let kill_reason_string = function
  | Hang -> "hang"
  | Hard_deadline -> "hard-deadline"
  | Canceled -> "canceled"
  | Signaled s -> Printf.sprintf "signal-%d" (os_signal_number s)
  | Oom -> "oom"

type failure =
  | Failed of { code : string; message : string }
  | Killed of { reason : kill_reason; detail : string }
  | Spawn_error of string

type progress = {
  p_phase : string;
  p_pass : int;
  p_deletions : int;
  p_worst_margin_ps : float;
}

type verdict = V_ok | V_kill of kill_reason * string

(* The watchdog decision, extracted pure so the silence-vs-slow
   distinction is testable under an injected clock: a worker that
   heartbeats (however slowly) within the timeout is left alone; one
   that goes silent past it is hung; one that outlives the hard wall
   deadline is killed regardless of liveness. *)
let watchdog_verdict ~now_s ~started_s ~last_beat_s ~heartbeat_timeout_ms
    ~hard_deadline_ms ~canceled =
  if canceled then V_kill (Canceled, "cancel requested")
  else if (now_s -. last_beat_s) *. 1000. > heartbeat_timeout_ms then
    V_kill
      ( Hang,
        Printf.sprintf "no heartbeat for %.0f ms" ((now_s -. last_beat_s) *. 1000.) )
  else if (now_s -. started_s) *. 1000. > hard_deadline_ms then
    V_kill
      ( Hard_deadline,
        Printf.sprintf "still running after the hard %.0f ms wall deadline"
          hard_deadline_ms )
  else V_ok

(* Flight-event reason codes for [k_worker_kill] (the [a] field). *)
let kill_reason_flight_code = function
  | Hang -> 1
  | Hard_deadline -> 2
  | Canceled -> 3
  | Signaled _ -> 4
  | Oom -> 5

let supervise ?(heartbeat_timeout_ms = 10_000.) ?(hard_deadline_ms = infinity)
    ?(poll_ms = 50.) ?(dump_grace_ms = 500.) ?(canceled = fun () -> false)
    ?(on_progress = fun (_ : progress) -> ()) ?(on_spawn = fun (_ : int) -> ())
    ?(on_obs = fun (_ : string) -> ()) ?(on_dump = fun (_ : string) -> ()) ~log ~argv () =
  match Fault.check ~phase:"serve" "serve.worker.spawn" with
  | exception Bgr_error.Error e -> Error (Spawn_error e.Bgr_error.message)
  | () -> (
    let spawn () =
      let dev_null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
      let r, w = Unix.pipe ~cloexec:false () in
      match Unix.create_process argv.(0) argv dev_null w Unix.stderr with
      | exception e ->
        List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
          [ dev_null; r; w ];
        Error (Printexc.to_string e)
      | pid ->
        (try Unix.close dev_null with Unix.Unix_error _ -> ());
        (try Unix.close w with Unix.Unix_error _ -> ());
        Ok (pid, r)
    in
    match spawn () with
    | Error msg -> Error (Spawn_error msg)
    | Ok (pid, r) ->
      on_spawn pid;
      Flight.record Flight.k_worker_spawn ~a:0 ~b:0 ~c:pid ~d:0;
      let started = Obs.now_s () in
      let last_beat = ref started in
      let rbuf = ref "" in
      let greeted = ref false in
      let result = ref None in
      let killed = ref None in
      let eof = ref false in
      let dumped = ref None in
      (* [kill] drains the pipe during the dump grace, which needs the
         frame parser — which itself calls [kill] on a protocol error
         (a no-op then, [killed] is already set).  Tie the knot with a
         forward reference. *)
      let consume = ref (fun () -> ()) in
      let kill why =
        if !killed = None then begin
          killed := Some why;
          (match why with
          | `Reason (reason, detail) ->
            Flight.record Flight.k_worker_kill
              ~a:(kill_reason_flight_code reason)
              ~b:(match reason with Signaled s -> os_signal_number s | _ -> 0)
              ~c:pid ~d:0;
            log
              (Printf.sprintf "worker %d killed (%s): %s" pid (kill_reason_string reason)
                 detail)
          | `Protocol msg ->
            Flight.record Flight.k_worker_kill ~a:0 ~b:0 ~c:pid ~d:0;
            log (Printf.sprintf "worker %d killed (protocol): %s" pid msg));
          (* Black-box protocol: SIGQUIT is the dump request.  Give the
             worker a short grace to write its flight record and report
             the path, then SIGKILL.  A protocol violation skips the
             grace — that pipe can no longer be trusted. *)
          (match why with
          | `Protocol _ -> ()
          | `Reason _ ->
            (try Unix.kill pid Sys.sigquit with Unix.Unix_error _ -> ());
            let deadline = Unix.gettimeofday () +. (dump_grace_ms /. 1000.) in
            let waiting = ref (dump_grace_ms > 0.) in
            while !waiting && !dumped = None && Unix.gettimeofday () < deadline do
              match Unix.select [ r ] [] [] 0.02 with
              | [], _, _ -> ()
              | _ :: _, _, _ -> (
                let buf = Bytes.create 65536 in
                match Unix.read r buf 0 (Bytes.length buf) with
                | 0 -> waiting := false
                | n ->
                  rbuf := !rbuf ^ Bytes.sub_string buf 0 n;
                  !consume ()
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            done);
          try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()
        end
      in
      let consume_frames () =
        if not !greeted then begin
          let ml = String.length magic in
          if String.length !rbuf >= ml then begin
            if String.sub !rbuf 0 ml = magic then begin
              greeted := true;
              rbuf := String.sub !rbuf ml (String.length !rbuf - ml)
            end
            else kill (`Protocol "bad worker-pipe magic")
          end
        end;
        if !greeted then begin
          let continue = ref true in
          while !continue do
            match Wire.extract_frame !rbuf ~pos:0 with
            | Wire.Need _ -> continue := false
            | Wire.Bad e ->
              kill (`Protocol e.Bgr_error.message);
              continue := false
            | Wire.Frame (payload, used) -> (
              rbuf := String.sub !rbuf used (String.length !rbuf - used);
              match decode_event payload with
              | Error e ->
                kill (`Protocol e.Bgr_error.message);
                continue := false
              | Ok ev ->
                last_beat := Obs.now_s ();
                (match ev with
                | Heartbeat { phase; pass; deletions; worst_margin_ps } ->
                  on_progress
                    { p_phase = phase;
                      p_pass = pass;
                      p_deletions = deletions;
                      p_worst_margin_ps = worst_margin_ps }
                | Done { json } -> result := Some (Ok json)
                | Fail { code; message } -> result := Some (Error (code, message))
                | Obs_summary { json } -> on_obs json
                | Dump { path } ->
                  dumped := Some path;
                  log (Printf.sprintf "worker %d dumped its flight record to %s" pid path);
                  on_dump path))
          done
        end
      in
      consume := consume_frames;
      while (not !eof) && !result = None && !killed = None do
        (match Unix.select [ r ] [] [] (poll_ms /. 1000.) with
        | [], _, _ -> ()
        | _ :: _, _, _ -> (
          let buf = Bytes.create 65536 in
          match Unix.read r buf 0 (Bytes.length buf) with
          | 0 -> eof := true
          | n ->
            rbuf := !rbuf ^ Bytes.sub_string buf 0 n;
            consume_frames ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        if (not !eof) && !result = None && !killed = None then
          match
            watchdog_verdict ~now_s:(Obs.now_s ()) ~started_s:started
              ~last_beat_s:!last_beat ~heartbeat_timeout_ms ~hard_deadline_ms
              ~canceled:(canceled ())
          with
          | V_ok -> ()
          | V_kill (reason, detail) -> kill (`Reason (reason, detail))
      done;
      (* A final frame or a kill ends supervision without waiting for
         EOF: a child that lingers past its last frame — or leaves an
         orphaned grandchild holding the pipe's write end open — must
         not wedge the executor until the pipe drains.  The SIGKILL is
         a no-op when the child already exited (it is not yet reaped,
         so the pid cannot have been reused). *)
      if not !eof then (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try Unix.close r with Unix.Unix_error _ -> ());
      let status =
        let rec wait () =
          match Unix.waitpid [] pid with
          | _, status -> status
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
        in
        wait ()
      in
      (match (!killed, !result, status) with
      | Some (`Protocol msg), _, _ ->
        Error (Failed { code = "internal"; message = "worker pipe protocol violation: " ^ msg })
      | Some (`Reason (reason, detail)), _, _ -> Error (Killed { reason; detail })
      | None, Some (Ok json), _ -> Ok json
      | None, Some (Error (code, message)), _ ->
        if code = "oom" then Error (Killed { reason = Oom; detail = message })
        else Error (Failed { code; message })
      | None, None, Unix.WSIGNALED s ->
        Error
          (Killed
             { reason = Signaled s;
               detail = Printf.sprintf "worker killed by signal %d" (os_signal_number s) })
      | None, None, Unix.WEXITED n when n = oom_exit_code ->
        Error (Killed { reason = Oom; detail = "worker exited with the OOM code" })
      | None, None, Unix.WEXITED n ->
        Error
          (Failed
             { code = "internal";
               message = Printf.sprintf "worker exited with code %d without a result" n })
      | None, None, Unix.WSTOPPED s ->
        Error
          (Failed
             { code = "internal";
               message = Printf.sprintf "worker stopped by signal %d unexpectedly" s })))
