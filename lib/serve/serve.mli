(** The routing daemon: a supervised, crash-safe routing-as-a-service
    loop over a Unix domain socket.

    One {!run} call is one daemon lifetime.  Inside it live exactly two
    domains:

    {ul
    {- the {e event loop} (the calling domain): [Unix.select] over the
       listening socket, the client connections and a self-pipe.  It
       frames and decodes requests ({!Wire}), answers cheap operations
       ([status], [analyze], [stats]) inline, fans worker progress out
       to [watch] subscribers, and feeds routing work to the executor
       through a bounded queue.  It never routes and never emits trace
       spans.}
    {- the {e executor}: a single spawned domain, the sole routing (and
       hence {!Par}) orchestrator.  It pops one job at a time, runs it
       under the retry policy ({!Retry}) with a fresh {!Budget} per
       attempt, and hands the completion back through the self-pipe.}}

    Crash safety is the {!Spool} contract: a submission is acknowledged
    only after its job directory is durably on disk, each attempt runs
    as a {!Persist} run inside that directory, and on startup a
    supervisor pass re-queues every accepted job that has no RESULT —
    so [kill -9] at any point loses no accepted job.

    Admission control: when the queue (plus the running job) holds
    [queue_cap] jobs, new submissions get a structured [overloaded]
    reply and are {e not} spooled.  Supervisor re-queues bypass the
    cap — they were already accepted in a previous life.

    Degradation: protocol garbage, oversized frames, bad CRCs, unknown
    opcodes and mid-request disconnects cost the offending connection
    only; injected faults at sites ["serve.accept"], ["serve.read"],
    ["serve.write"] and ["serve.job"] are contained the same way (the
    last one is retryable and feeds the retry/dead-letter machinery).

    Isolation: under [Workers] each routing attempt runs in a
    supervised worker subprocess ({!Worker}): a hang (watchdog on
    heartbeat silence), an OOM, an external [kill -9] or a hard
    wall-deadline overrun costs that child only — the kill reason is
    recorded in the job manifest, retryable kills resume the journal
    bit-identically, and a job that keeps killing its workers is
    {e quarantined} (excluded from startup re-queue; only a forced
    [revive] re-runs it).  [In_process] preserves the single-process
    behavior and keeps tests hermetic.

    Observability: a [watch] request (or [wait] with the progress
    flag) subscribes the connection to a job's live progress — worker
    heartbeats (or in-process quality samples) become [Progress] info
    frames, strictly increasing per-job sequence, until the final
    [Result]; a subscriber that stops reading is shed once the
    daemon's write buffer for it passes 1 MiB (the final result is
    still delivered).  A [stats] request answers with a live registry
    snapshot (Prometheus text or JSON) straight from the event loop.
    Under [stitch_workers] the worker's spans and counters are folded
    back into this process after every attempt, so traces and stats
    cover both sides of the fork.  None of this changes routing:
    deletion hashes are bit-identical with and without it.

    Shutdown: SIGTERM/SIGINT (when [install_signals]) or a [shutdown]
    request starts a {e drain}: no new admissions, the running job
    finishes, queued jobs stay spooled for the next start, waiters get
    a structured error, and {!run} returns.  A drain that lands during
    a backoff sleep interrupts it; the job stays spooled. *)

type isolation =
  | In_process  (** attempts run on the executor domain (the default) *)
  | Workers of string array
      (** argv {e prefix} of the worker command (e.g.
          [[| "/path/bgr_serve"; "worker" |]]); the daemon appends
          [--dir] and the per-job options *)

type config = {
  socket_path : string;
  spool_root : string;  (** the {!Spool} root directory *)
  queue_cap : int;  (** max queued + running jobs; beyond it: [overloaded] *)
  max_attempts : int;  (** attempts per job before dead-lettering *)
  backoff_base_ms : float;  (** retry backoff base (doubles per attempt) *)
  backoff_max_ms : float;  (** retry backoff cap (post-jitter) *)
  job_domains : int;  (** router scoring domains per job ([0] = auto) *)
  default_deadline_ms : int option;
      (** per-job wall budget when the submission names none *)
  install_signals : bool;
      (** install SIGTERM/SIGINT drain handlers (the CLI daemon does;
          in-process test servers must not) *)
  isolation : isolation;
  heartbeat_timeout_ms : float;
      (** watchdog: SIGKILL a worker silent this long ([Workers] only) *)
  hard_deadline_grace_ms : float;
      (** SIGKILL a worker still alive this long past its wall budget *)
  mem_limit_mb : int;  (** worker address-space ceiling; [0] = none *)
  quarantine_kills : int;  (** worker kills before the job is quarantined *)
  stitch_workers : bool;
      (** hand each worker [--obs]/[--trace-id]/[--parent-span] and
          fold its recorded spans and metrics back into this process
          ({!Stitch}) when the attempt ends ([Workers] only) *)
  metrics_path : string option;
      (** Prometheus textfile to rewrite atomically: once at startup,
          on SIGUSR1 (when [install_signals]), every
          [metrics_interval_s], and finally after the drain — so
          [kill -9] loses at most one interval of counters *)
  metrics_interval_s : float;
      (** period of the [metrics_path] rewrite; [0.] = only
          startup/SIGUSR1/drain writes *)
  log : string -> unit;  (** line logger for operational events *)
}

val default_config : socket_path:string -> spool_root:string -> config
(** [queue_cap = 16], [max_attempts = 2], [backoff_base_ms = 250.],
    [backoff_max_ms = 30_000.], [job_domains = 0], no default
    deadline, no signal handlers, [In_process] isolation (the CLI
    daemon overrides this to [Workers] on itself),
    [heartbeat_timeout_ms = 10_000.], [hard_deadline_grace_ms =
    30_000.], no memory ceiling, [quarantine_kills = 3], no worker
    stitching, no metrics file, silent log. *)

type stats = {
  s_requeued : int;  (** jobs the startup supervisor re-queued *)
  s_accepted : int;  (** new submissions durably accepted *)
  s_completed : int;  (** jobs finished with a RESULT *)
  s_failed : int;  (** jobs retired to the dead-letter dir *)
  s_retried : int;  (** attempt retries taken *)
  s_rejected : int;  (** submissions refused (overloaded or draining) *)
  s_protocol_errors : int;  (** malformed frames/requests answered *)
  s_canceled : int;  (** jobs canceled (queued or running) *)
  s_quarantined : int;  (** jobs quarantined after repeated worker kills *)
  s_killed : int;  (** worker processes killed (watchdog or external) *)
}

val run : config -> stats
(** Bind the socket, re-queue the spool, serve until drained.  Blocks
    the calling domain (spawn a [Domain] around it for an in-process
    server).  Structured [Io_error] when the socket cannot be bound.
    The socket file is unlinked on return. *)

(**/**)

val progress_json : string -> int -> Worker.progress -> string
(** Exposed for tests: the watch stream's progress-frame payload.
    Non-finite margins render as [null] ({!Qjson.num}), so a nan
    worst margin survives the wire as "no number yet". *)
