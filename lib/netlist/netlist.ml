type pin = { inst : int; term : string }
type port_side = North | South
type port = { port_id : int; port_name : string; side : port_side; column_hint : int option }
type endpoint = Pin of pin | Port of int

type net = {
  net_id : int;
  net_name : string;
  driver : endpoint;
  sinks : endpoint list;
  pitch : int;
  diff_partner : int option;
}

type instance = { inst_id : int; inst_name : string; master : Cell.t }

exception Invalid of string

let fail fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

type builder = {
  b_library : Cell_lib.t;
  mutable b_instances : instance list;  (* reversed *)
  mutable b_n_instances : int;
  b_inst_names : (string, unit) Hashtbl.t;
  mutable b_ports : port list;  (* reversed *)
  mutable b_n_ports : int;
  mutable b_nets : net list;  (* reversed *)
  mutable b_n_nets : int;
  b_driver_used : (int * string, int) Hashtbl.t;  (* output pin -> net *)
  b_sink_used : (int * string, int) Hashtbl.t;  (* input pin -> net *)
  b_port_used : (int, int) Hashtbl.t;  (* port -> net *)
  mutable b_pairs : (int * int) list;
}

type t = {
  library : Cell_lib.t;
  instances : instance array;
  nets : net array;
  ports : port array;
  pin_net : (int * string, int) Hashtbl.t;  (* any pin -> net id *)
  port_net : (int, int) Hashtbl.t;
}

let builder ~library =
  { b_library = library;
    b_instances = [];
    b_n_instances = 0;
    b_inst_names = Hashtbl.create 64;
    b_ports = [];
    b_n_ports = 0;
    b_nets = [];
    b_n_nets = 0;
    b_driver_used = Hashtbl.create 64;
    b_sink_used = Hashtbl.create 64;
    b_port_used = Hashtbl.create 16;
    b_pairs = [] }

let add_instance b ~name ~cell =
  if Hashtbl.mem b.b_inst_names name then fail "duplicate instance name %s" name;
  let master =
    match Cell_lib.find_opt b.b_library cell with
    | Some m -> m
    | None -> fail "unknown cell master %s" cell
  in
  Hashtbl.add b.b_inst_names name ();
  let inst_id = b.b_n_instances in
  b.b_instances <- { inst_id; inst_name = name; master } :: b.b_instances;
  b.b_n_instances <- inst_id + 1;
  inst_id

let add_port b ~name ~side ?column_hint () =
  let port_id = b.b_n_ports in
  b.b_ports <- { port_id; port_name = name; side; column_hint } :: b.b_ports;
  b.b_n_ports <- port_id + 1;
  port_id

let instance_of_builder b inst =
  if inst < 0 || inst >= b.b_n_instances then fail "unknown instance id %d" inst;
  List.nth b.b_instances (b.b_n_instances - 1 - inst)

let terminal_of_builder b (p : pin) =
  let i = instance_of_builder b p.inst in
  match Cell.terminal i.master p.term with
  | term -> term
  | exception Not_found -> fail "instance %s has no terminal %s" i.inst_name p.term

let check_port b port_id =
  if port_id < 0 || port_id >= b.b_n_ports then fail "unknown port id %d" port_id

let add_net b ~name ~driver ~sinks ?(pitch = 1) () =
  if pitch < 1 then fail "net %s: pitch must be >= 1" name;
  let net_id = b.b_n_nets in
  let claim table key what =
    match Hashtbl.find_opt table key with
    | Some other -> fail "net %s: %s already used by net %d" name what other
    | None -> Hashtbl.add table key net_id
  in
  (match driver with
  | Pin p ->
    let term = terminal_of_builder b p in
    if term.Cell.dir <> Cell.Output then fail "net %s: driver pin %s is not an output" name p.term;
    claim b.b_driver_used (p.inst, p.term) "driver pin"
  | Port port_id ->
    check_port b port_id;
    claim b.b_port_used port_id "port");
  let claim_sink = function
    | Pin p ->
      let term = terminal_of_builder b p in
      if term.Cell.dir <> Cell.Input then fail "net %s: sink pin %s is not an input" name p.term;
      claim b.b_sink_used (p.inst, p.term) "sink pin"
    | Port port_id ->
      check_port b port_id;
      claim b.b_port_used port_id "port"
  in
  List.iter claim_sink sinks;
  if sinks = [] then fail "net %s: no sinks" name;
  b.b_nets <- { net_id; net_name = name; driver; sinks; pitch; diff_partner = None } :: b.b_nets;
  b.b_n_nets <- net_id + 1;
  net_id

let pair_differential b n1 n2 =
  if n1 = n2 then fail "differential pair of a net with itself (%d)" n1;
  let taken n = List.exists (fun (a, c) -> a = n || c = n) b.b_pairs in
  if taken n1 || taken n2 then fail "net %d or %d already in a differential pair" n1 n2;
  if n1 < 0 || n1 >= b.b_n_nets || n2 < 0 || n2 >= b.b_n_nets then
    fail "differential pair references unknown net";
  b.b_pairs <- (n1, n2) :: b.b_pairs

let validate_pair instances nets (n1, n2) =
  let a = nets.(n1) and c = nets.(n2) in
  let driver_inst (n : net) =
    match n.driver with
    | Pin p -> p.inst
    | Port _ -> fail "differential net %s must be cell-driven" n.net_name
  in
  if driver_inst a <> driver_inst c then
    fail "differential pair %s/%s not driven by one instance" a.net_name c.net_name;
  if a.pitch <> c.pitch then fail "differential pair %s/%s pitch mismatch" a.net_name c.net_name;
  let sink_insts (n : net) =
    List.filter_map (function Pin p -> Some p.inst | Port _ -> None) n.sinks
    |> List.sort Int.compare
  in
  if List.length a.sinks <> List.length c.sinks || sink_insts a <> sink_insts c then
    fail "differential pair %s/%s sink sets not pairable" a.net_name c.net_name;
  ignore instances

let freeze b =
  let instances = Array.of_list (List.rev b.b_instances) in
  let ports = Array.of_list (List.rev b.b_ports) in
  let nets = Array.of_list (List.rev b.b_nets) in
  (* Record differential partners. *)
  let set_pair (n1, n2) =
    validate_pair instances nets (n1, n2);
    nets.(n1) <- { (nets.(n1)) with diff_partner = Some n2 };
    nets.(n2) <- { (nets.(n2)) with diff_partner = Some n1 }
  in
  List.iter set_pair b.b_pairs;
  (* Every instance input must be driven; feed cells have no terminals. *)
  let check_instance i =
    let check_input (term : Cell.terminal) =
      if term.Cell.dir = Cell.Input && not (Hashtbl.mem b.b_sink_used (i.inst_id, term.Cell.t_name))
      then fail "instance %s input %s unconnected" i.inst_name term.Cell.t_name
    in
    Array.iter check_input i.master.Cell.terminals
  in
  Array.iter check_instance instances;
  let check_port (p : port) =
    if not (Hashtbl.mem b.b_port_used p.port_id) then fail "port %s unconnected" p.port_name
  in
  Array.iter check_port ports;
  let pin_net = Hashtbl.create 256 in
  Hashtbl.iter (fun k v -> Hashtbl.replace pin_net k v) b.b_driver_used;
  Hashtbl.iter (fun k v -> Hashtbl.replace pin_net k v) b.b_sink_used;
  let port_net = Hashtbl.copy b.b_port_used in
  { library = b.b_library; instances; nets; ports; pin_net; port_net }

let library t = t.library
let instances t = t.instances
let nets t = t.nets
let ports t = t.ports
let instance t i = t.instances.(i)
let net t i = t.nets.(i)
let port t i = t.ports.(i)
let n_instances t = Array.length t.instances
let n_nets t = Array.length t.nets
let n_ports t = Array.length t.ports
let net_of_pin t (p : pin) = Hashtbl.find_opt t.pin_net (p.inst, p.term)
let net_of_port t port_id = Hashtbl.find t.port_net port_id
let fanout t net_id = List.length t.nets.(net_id).sinks

let pins_on_instance t inst =
  let master = t.instances.(inst).master in
  let collect acc (term : Cell.terminal) =
    match Hashtbl.find_opt t.pin_net (inst, term.Cell.t_name) with
    | Some net_id -> (term.Cell.t_name, net_id) :: acc
    | None -> acc
  in
  List.rev (Array.fold_left collect [] master.Cell.terminals)

let pp_endpoint t ppf = function
  | Pin p -> Format.fprintf ppf "%s.%s" t.instances.(p.inst).inst_name p.term
  | Port port_id -> Format.fprintf ppf "port:%s" t.ports.(port_id).port_name

type stats = {
  n_cells : int;
  n_nets_total : int;
  n_diff_pairs : int;
  n_multi_pitch : int;
  max_fanout : int;
  avg_fanout : float;
}

let stats t =
  let n_cells =
    Array.fold_left
      (fun acc i -> if i.master.Cell.kind = Cell.Feed_through then acc else acc + 1)
      0 t.instances
  in
  let n_diff = Array.fold_left (fun acc n -> if n.diff_partner <> None then acc + 1 else acc) 0 t.nets in
  let n_multi = Array.fold_left (fun acc n -> if n.pitch > 1 then acc + 1 else acc) 0 t.nets in
  let fanouts = Array.map (fun n -> List.length n.sinks) t.nets in
  let max_fanout = Array.fold_left max 0 fanouts in
  let total_fanout = Array.fold_left ( + ) 0 fanouts in
  let n_nets_total = Array.length t.nets in
  { n_cells;
    n_nets_total;
    n_diff_pairs = n_diff / 2;
    n_multi_pitch = n_multi;
    max_fanout;
    avg_fanout = (if n_nets_total = 0 then 0.0 else float_of_int total_fanout /. float_of_int n_nets_total) }
