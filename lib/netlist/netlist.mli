(** Flat gate-level netlists: cell instances, nets, chip ports,
    differential-pair and pitch-width net attributes (Secs. 4.1-4.2).

    A netlist is built incrementally with a {!builder} and then frozen
    into an immutable {!t}; freezing validates structural sanity (one
    driver per net, no dangling inputs, well-formed differential pairs)
    so every later stage can rely on it. *)

type pin = { inst : int; term : string }

type port_side = North | South
(** Chip boundary carrying the external terminal: [North] above the top
    cell row, [South] below the bottom row. *)

type port = {
  port_id : int;
  port_name : string;
  side : port_side;
  column_hint : int option;  (** preferred grid column, if any *)
}

type endpoint =
  | Pin of pin
  | Port of int  (** by [port_id] *)

type net = {
  net_id : int;
  net_name : string;
  driver : endpoint;
  sinks : endpoint list;
  pitch : int;  (** wire width in pitches; 1 for ordinary nets (Sec. 4.2) *)
  diff_partner : int option;  (** partner [net_id] of a differential pair (Sec. 4.1) *)
}

type instance = { inst_id : int; inst_name : string; master : Cell.t }

type t

exception Invalid of string

(** {1 Building} *)

type builder

val builder : library:Cell_lib.t -> builder

val add_instance : builder -> name:string -> cell:string -> int
(** Instantiate a master from the library; returns the instance id.
    @raise Invalid on an unknown master or duplicate instance name. *)

val add_port : builder -> name:string -> side:port_side -> ?column_hint:int -> unit -> int

val add_net :
  builder ->
  name:string ->
  driver:endpoint ->
  sinks:endpoint list ->
  ?pitch:int ->
  unit ->
  int
(** Returns the net id.  @raise Invalid when the driver is not an
    output terminal / port, a sink is not an input terminal / port, or
    [pitch < 1]. *)

val pair_differential : builder -> int -> int -> unit
(** Mark two nets as a differential pair.  Freezing validates that the
    two nets share their driving instance (complementary outputs), have
    equal pitch and pairable sink sets.  @raise Invalid on re-pairing. *)

val freeze : builder -> t
(** @raise Invalid when any instance input is unconnected, a port is
    unused or used twice, or a differential pair is malformed. *)

(** {1 Access} *)

val library : t -> Cell_lib.t
val instances : t -> instance array
val nets : t -> net array
val ports : t -> port array
val instance : t -> int -> instance
val net : t -> int -> net
val port : t -> int -> port
val n_instances : t -> int
val n_nets : t -> int
val n_ports : t -> int

val net_of_pin : t -> pin -> int option
(** The net connected to an instance terminal, if any (outputs may be
    legitimately unconnected). *)

val net_of_port : t -> int -> int
(** The net attached to a port (every port is attached after freeze). *)

val fanout : t -> int -> int
(** Number of sink endpoints of a net. *)

val pins_on_instance : t -> int -> (string * int) list
(** [(terminal name, net id)] for every connected terminal of the
    instance. *)

val pp_endpoint : t -> Format.formatter -> endpoint -> unit

(** {1 Statistics} *)

type stats = {
  n_cells : int;  (** non-feed instances *)
  n_nets_total : int;
  n_diff_pairs : int;
  n_multi_pitch : int;
  max_fanout : int;
  avg_fanout : float;
}

val stats : t -> stats
