(** Named collections of cell masters and the built-in ECL library.

    The paper used "realistic delay parameters ... for C1" obtained from
    its designers; those values are proprietary, so [ecl_default]
    carries an ECL-plausible parameter set (intrinsic delays of tens to
    ~150 ps, fan-in factors of a few ps/fF, wire-delay factors sized so
    that a few millimetres of wire contributes a significant fraction of
    a gate delay — the regime in which timing-driven routing matters).
    See DESIGN.md Sec. 2. *)

type t

val make : name:string -> cells:Cell.t list -> t
(** @raise Cell.Malformed on duplicate cell names. *)

val name : t -> string

val find : t -> string -> Cell.t
(** @raise Not_found *)

val find_opt : t -> string -> Cell.t option

val cells : t -> Cell.t list

val feed_cell : t -> Cell.t
(** The (unique) [Feed_through] master.  @raise Not_found when the
    library has none. *)

val ecl_default : t
(** Built-in ECL-style library: inverting/buffering drivers, OR/NOR
    gates of 2..5 inputs, a 2:1 selector, an XOR, a D-type master-slave
    flip-flop, a differential driver with complementary outputs, a
    high-drive clock buffer, and the 1-pitch feed cell. *)
