(** Standard-cell master definitions with the capacitance delay model of
    Eq. 1:

    {v T_pd = T0(ti,to) + (sum over fanout F_in(t)) * Tf(to) + CL(n) * Td(to) v}

    [T0] is the per-arc intrinsic delay, [F_in(t)] the input capacitance
    of a fan-out terminal, [Tf(to)] the fan-in delay factor of the
    driving output, [Td(to)] its unit (wiring) capacitance delay, and
    [CL(n)] the wiring capacitance of the driven net.

    Bipolar standard cells "normally have no space for feedthrough nets"
    (Sec. 4.3), so ordinary masters expose no feedthrough; only
    [Feed_through] masters provide vertical crossing slots. *)

type kind =
  | Combinational
  | Flipflop  (** timing paths end at D-type inputs and start at outputs *)
  | Feed_through  (** feed cell: no logic, provides feedthrough columns *)

type direction = Input | Output

type access =
  | Top_only
  | Bottom_only
  | Both_sides
      (** which channel(s) adjacent to the cell row can reach the
          terminal; [Both_sides] yields the two candidate "terminal
          positions" of Fig. 3 *)

type terminal = {
  t_name : string;
  dir : direction;
  fanin_ff : float;  (** input capacitance [F_in], fF; 0.0 for outputs *)
  tf_ps_per_ff : float;  (** output fan-in delay factor [Tf], ps/fF; 0.0 for inputs *)
  td_ps_per_ff : float;  (** output wiring-capacitance delay [Td], ps/fF; 0.0 for inputs *)
  offset : int;  (** terminal column, in pitches from the cell origin *)
  access : access;
}

type arc = {
  from_input : string;
  to_output : string;
  intrinsic_ps : float;  (** [T0(ti,to)] *)
}

type t = private {
  name : string;
  kind : kind;
  width : int;  (** pitches *)
  terminals : terminal array;
  arcs : arc list;
  sequential_inputs : string list;
      (** inputs at which combinational paths terminate (FF data/clock
          pins); empty for combinational masters *)
}

exception Malformed of string

val make :
  name:string ->
  kind:kind ->
  width:int ->
  terminals:terminal list ->
  arcs:arc list ->
  ?sequential_inputs:string list ->
  unit ->
  t
(** Validates: positive width, terminal offsets within [0, width),
    unique terminal names, arcs referring to existing input/output
    terminals, [fanin_ff > 0] on inputs, [tf/td >= 0] on outputs, feed
    cells terminal-free.  @raise Malformed *)

val input_t : name:string -> fanin_ff:float -> offset:int -> terminal
(** Input terminal accessible from both channels. *)

val output_t : name:string -> tf:float -> td:float -> offset:int -> terminal
(** Output terminal accessible from both channels. *)

val terminal : t -> string -> terminal
(** @raise Not_found *)

val has_terminal : t -> string -> bool

val inputs : t -> terminal list

val outputs : t -> terminal list

val arcs_to : t -> output:string -> arc list
(** All intrinsic arcs ending at the given output. *)

val is_sequential_input : t -> string -> bool

val pp : Format.formatter -> t -> unit
