type t = { name : string; by_name : (string, Cell.t) Hashtbl.t; ordered : Cell.t list }

let make ~name ~cells =
  let by_name = Hashtbl.create 16 in
  let add (c : Cell.t) =
    if Hashtbl.mem by_name c.Cell.name then
      raise (Cell.Malformed (Printf.sprintf "library %s: duplicate cell %s" name c.Cell.name));
    Hashtbl.add by_name c.Cell.name c
  in
  List.iter add cells;
  { name; by_name; ordered = cells }

let name t = t.name
let find t cell_name = match Hashtbl.find_opt t.by_name cell_name with
  | Some c -> c
  | None -> raise Not_found

let find_opt t cell_name = Hashtbl.find_opt t.by_name cell_name
let cells t = t.ordered

let feed_cell t =
  match List.find_opt (fun (c : Cell.t) -> c.Cell.kind = Cell.Feed_through) t.ordered with
  | Some c -> c
  | None -> raise Not_found

(* ECL-style masters.  Offsets spread terminals across the cell width;
   inputs sit left of the output so short local nets stay short. *)
let ecl_default =
  let inv =
    Cell.make ~name:"INV1" ~kind:Cell.Combinational ~width:2
      ~terminals:
        [ Cell.input_t ~name:"A" ~fanin_ff:1.0 ~offset:0;
          Cell.output_t ~name:"Z" ~tf:6.0 ~td:0.9 ~offset:1 ]
      ~arcs:[ { Cell.from_input = "A"; to_output = "Z"; intrinsic_ps = 55.0 } ]
      ()
  in
  let buf =
    Cell.make ~name:"BUF2" ~kind:Cell.Combinational ~width:2
      ~terminals:
        [ Cell.input_t ~name:"A" ~fanin_ff:1.2 ~offset:0;
          Cell.output_t ~name:"Z" ~tf:4.0 ~td:0.6 ~offset:1 ]
      ~arcs:[ { Cell.from_input = "A"; to_output = "Z"; intrinsic_ps = 70.0 } ]
      ()
  in
  let or_gate n width intrinsic =
    let letters = [| "A"; "B"; "C"; "D"; "E" |] in
    let inputs =
      List.init n (fun i -> Cell.input_t ~name:letters.(i) ~fanin_ff:1.0 ~offset:i)
    in
    let output = Cell.output_t ~name:"Z" ~tf:7.0 ~td:1.0 ~offset:(width - 1) in
    let arcs =
      List.init n (fun i ->
          { Cell.from_input = letters.(i);
            to_output = "Z";
            intrinsic_ps = intrinsic +. (4.0 *. float_of_int i) })
    in
    Cell.make ~name:(Printf.sprintf "OR%d" n) ~kind:Cell.Combinational ~width
      ~terminals:(inputs @ [ output ]) ~arcs ()
  in
  let sel2 =
    Cell.make ~name:"SEL2" ~kind:Cell.Combinational ~width:4
      ~terminals:
        [ Cell.input_t ~name:"A" ~fanin_ff:1.0 ~offset:0;
          Cell.input_t ~name:"B" ~fanin_ff:1.0 ~offset:1;
          Cell.input_t ~name:"S" ~fanin_ff:1.3 ~offset:2;
          Cell.output_t ~name:"Z" ~tf:8.0 ~td:1.1 ~offset:3 ]
      ~arcs:
        [ { Cell.from_input = "A"; to_output = "Z"; intrinsic_ps = 95.0 };
          { Cell.from_input = "B"; to_output = "Z"; intrinsic_ps = 95.0 };
          { Cell.from_input = "S"; to_output = "Z"; intrinsic_ps = 120.0 } ]
      ()
  in
  let xor2 =
    Cell.make ~name:"XOR2" ~kind:Cell.Combinational ~width:4
      ~terminals:
        [ Cell.input_t ~name:"A" ~fanin_ff:1.4 ~offset:0;
          Cell.input_t ~name:"B" ~fanin_ff:1.4 ~offset:1;
          Cell.output_t ~name:"Z" ~tf:9.0 ~td:1.2 ~offset:3 ]
      ~arcs:
        [ { Cell.from_input = "A"; to_output = "Z"; intrinsic_ps = 110.0 };
          { Cell.from_input = "B"; to_output = "Z"; intrinsic_ps = 110.0 } ]
      ()
  in
  let dff =
    Cell.make ~name:"DFF" ~kind:Cell.Flipflop ~width:6
      ~terminals:
        [ Cell.input_t ~name:"D" ~fanin_ff:1.1 ~offset:0;
          Cell.input_t ~name:"CK" ~fanin_ff:1.6 ~offset:2;
          Cell.output_t ~name:"Q" ~tf:6.0 ~td:0.9 ~offset:5 ]
      ~arcs:[ { Cell.from_input = "CK"; to_output = "Q"; intrinsic_ps = 140.0 } ]
      ~sequential_inputs:[ "D"; "CK" ] ()
  in
  let diff_drv =
    (* Complementary-output driver for differential pairs (Sec. 4.1). *)
    Cell.make ~name:"DDRV" ~kind:Cell.Combinational ~width:4
      ~terminals:
        [ Cell.input_t ~name:"A" ~fanin_ff:1.2 ~offset:0;
          Cell.output_t ~name:"Z" ~tf:4.5 ~td:0.7 ~offset:2;
          Cell.output_t ~name:"ZN" ~tf:4.5 ~td:0.7 ~offset:3 ]
      ~arcs:
        [ { Cell.from_input = "A"; to_output = "Z"; intrinsic_ps = 80.0 };
          { Cell.from_input = "A"; to_output = "ZN"; intrinsic_ps = 80.0 } ]
      ()
  in
  let clk_buf =
    Cell.make ~name:"CLKBUF" ~kind:Cell.Combinational ~width:6
      ~terminals:
        [ Cell.input_t ~name:"A" ~fanin_ff:2.0 ~offset:0;
          Cell.output_t ~name:"Z" ~tf:1.5 ~td:0.3 ~offset:5 ]
      ~arcs:[ { Cell.from_input = "A"; to_output = "Z"; intrinsic_ps = 90.0 } ]
      ()
  in
  let feed = Cell.make ~name:"FEED" ~kind:Cell.Feed_through ~width:1 ~terminals:[] ~arcs:[] () in
  make ~name:"ecl_default"
    ~cells:
      [ inv;
        buf;
        or_gate 2 3 75.0;
        or_gate 3 4 85.0;
        or_gate 4 5 95.0;
        or_gate 5 6 105.0;
        sel2;
        xor2;
        dff;
        diff_drv;
        clk_buf;
        feed ]
