type kind = Combinational | Flipflop | Feed_through
type direction = Input | Output

type access = Top_only | Bottom_only | Both_sides

type terminal = {
  t_name : string;
  dir : direction;
  fanin_ff : float;
  tf_ps_per_ff : float;
  td_ps_per_ff : float;
  offset : int;
  access : access;
}

type arc = { from_input : string; to_output : string; intrinsic_ps : float }

type t = {
  name : string;
  kind : kind;
  width : int;
  terminals : terminal array;
  arcs : arc list;
  sequential_inputs : string list;
}

exception Malformed of string

let fail fmt = Format.kasprintf (fun s -> raise (Malformed s)) fmt

let validate t =
  if t.width <= 0 then fail "%s: width must be positive" t.name;
  let seen = Hashtbl.create 8 in
  let check_terminal term =
    if Hashtbl.mem seen term.t_name then fail "%s: duplicate terminal %s" t.name term.t_name;
    Hashtbl.add seen term.t_name term;
    if term.offset < 0 || term.offset >= t.width then
      fail "%s.%s: offset %d outside [0,%d)" t.name term.t_name term.offset t.width;
    match term.dir with
    | Input ->
      if term.fanin_ff <= 0.0 then fail "%s.%s: input needs fanin_ff > 0" t.name term.t_name
    | Output ->
      if term.tf_ps_per_ff < 0.0 || term.td_ps_per_ff < 0.0 then
        fail "%s.%s: output delay factors must be >= 0" t.name term.t_name
  in
  Array.iter check_terminal t.terminals;
  let dir_of name =
    match Hashtbl.find_opt seen name with
    | Some term -> term.dir
    | None -> fail "%s: arc references unknown terminal %s" t.name name
  in
  let check_arc a =
    if dir_of a.from_input <> Input then fail "%s: arc source %s is not an input" t.name a.from_input;
    if dir_of a.to_output <> Output then fail "%s: arc target %s is not an output" t.name a.to_output;
    if a.intrinsic_ps < 0.0 then fail "%s: negative intrinsic delay on %s->%s" t.name a.from_input a.to_output
  in
  List.iter check_arc t.arcs;
  let check_seq name =
    if dir_of name <> Input then fail "%s: sequential input %s is not an input" t.name name
  in
  List.iter check_seq t.sequential_inputs;
  match t.kind with
  | Feed_through ->
    if Array.length t.terminals > 0 then fail "%s: feed cells carry no terminals" t.name
  | Combinational ->
    if t.sequential_inputs <> [] then fail "%s: combinational cell with sequential inputs" t.name
  | Flipflop ->
    if t.sequential_inputs = [] then fail "%s: flip-flop must declare sequential inputs" t.name

let make ~name ~kind ~width ~terminals ~arcs ?(sequential_inputs = []) () =
  let t = { name; kind; width; terminals = Array.of_list terminals; arcs; sequential_inputs } in
  validate t;
  t

let input_t ~name ~fanin_ff ~offset =
  { t_name = name;
    dir = Input;
    fanin_ff;
    tf_ps_per_ff = 0.0;
    td_ps_per_ff = 0.0;
    offset;
    access = Both_sides }

let output_t ~name ~tf ~td ~offset =
  { t_name = name;
    dir = Output;
    fanin_ff = 0.0;
    tf_ps_per_ff = tf;
    td_ps_per_ff = td;
    offset;
    access = Both_sides }

let terminal t name =
  let found = ref None in
  Array.iter (fun term -> if term.t_name = name then found := Some term) t.terminals;
  match !found with Some term -> term | None -> raise Not_found

let has_terminal t name =
  match terminal t name with _ -> true | exception Not_found -> false

let by_dir dir t =
  Array.to_list t.terminals |> List.filter (fun term -> term.dir = dir)

let inputs t = by_dir Input t
let outputs t = by_dir Output t
let arcs_to t ~output = List.filter (fun a -> a.to_output = output) t.arcs
let is_sequential_input t name = List.mem name t.sequential_inputs

let pp ppf t =
  let kind_name =
    match t.kind with
    | Combinational -> "comb"
    | Flipflop -> "ff"
    | Feed_through -> "feed"
  in
  Format.fprintf ppf "%s(%s,w=%d,%d terms)" t.name kind_name t.width (Array.length t.terminals)
