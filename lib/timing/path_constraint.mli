(** Critical path constraints (Sec. 2.2).

    A constraint [P] is "a trio (S_P, T_P, tau_P), where S_P and T_P are
    signal source and sink terminals, and tau_P is the delay limit".
    Sources and sinks are named as delay-graph nodes; the constraint set
    is what the VLSI designer requires of the chip. *)

type t = {
  cname : string;
  sources : Delay_graph.node list;
  sinks : Delay_graph.node list;
  limit_ps : float;
}

exception Bad_constraint of string

val make :
  name:string ->
  sources:Delay_graph.node list ->
  sinks:Delay_graph.node list ->
  limit_ps:float ->
  t
(** @raise Bad_constraint on empty endpoint sets or a non-positive
    limit. *)

val pp : Format.formatter -> t -> unit
