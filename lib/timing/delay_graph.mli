(** The global delay graph [G_D] (Sec. 2.1, Fig. 1).

    "Because most cells have only one output terminal, the simplified
    graph ... is adequate for analyzing critical paths": vertices stand
    for cell output terminals (plus chip ports and flip-flop data/clock
    inputs, where paths start and end), and an edge [u -> v] carries the
    whole stage delay of Eq. 1 —

    {v T0(ti,to) + (sum F_in over the net's fanout) * Tf(u) + CL(n) * Td(u) v}

    — where [n] is the net driven by [u], [ti] the input pin of [v]'s
    cell on [n], and [to = v].  The [CL(n) * Td(u)] term is the only one
    that changes during routing, so each edge stores its static part and
    its [Td] coefficient; {!set_net_cap} refreshes all edges "driven by"
    a net in O(fanout). *)

type node =
  | Out of Netlist.pin  (** a cell output terminal *)
  | Seq_in of Netlist.pin  (** a flip-flop data/clock input: paths end here *)
  | Port_in of int  (** input port: paths start here *)
  | Port_out of int  (** output port: paths end here *)

type t

val build :
  ?port_tf:float ->
  ?port_td:float ->
  ?port_load_ff:float ->
  Netlist.t ->
  t
(** [port_tf]/[port_td] are the drive factors assumed for input ports
    (defaults 3.0 ps/fF and 0.5 ps/fF), [port_load_ff] the input
    capacitance presented by an output port (default 1.5 fF). *)

val netlist : t -> Netlist.t

val dag : t -> Dag.t
(** The underlying DAG.  Treat as read-only; weights are managed by
    {!set_net_cap}. *)

val vertex : t -> node -> int
(** @raise Not_found when the node does not exist (e.g. an output pin
    that drives nothing still has a vertex, but a non-sequential input
    has none). *)

val node : t -> int -> node

val n_vertices : t -> int

val driver_vertex : t -> int -> int
(** The [G_D] vertex driving a net. *)

val edges_of_net : t -> int -> int list
(** Dag edge ids whose delay includes [CL(net)] — "the G_d(P) edges
    corresponding to n" of Sec. 3.2. *)

val set_net_cap : t -> net:int -> cap_ff:float -> unit
(** Update [CL(net)] and refresh the dependent edge weights — the
    paper's lumped capacitance model: every sink of the net sees the
    same wire delay [CL * Td]. *)

val set_net_sink_delays : t -> net:int -> delay_of:(Netlist.endpoint -> float) -> unit
(** RC-model extension (Sec. 2.1 allows it): give each sink endpoint
    its own wire delay in ps, e.g. an Elmore delay through the routed
    tree.  Edge weights become [static + delay_of sink]; [net_cap]
    subsequently reports [nan] for the net until {!set_net_cap}
    restores the lumped model. *)

val sink_of_edge : t -> int -> Netlist.endpoint
(** The sink endpoint a delay-graph edge feeds.
    @raise Not_found for unknown edge ids. *)

val snapshot_weights : t -> float array
(** Raw weights of every Dag edge — the model-agnostic way to save and
    {!restore_weights} the timing state around a what-if analysis
    (works even when some nets carry per-sink Elmore delays, whose
    lumped capacitance is unknown). *)

val restore_weights : t -> float array -> unit
(** @raise Invalid_argument on a length mismatch. *)

val net_cap : t -> int -> float

val driver_td : t -> int -> float
(** The [Td] factor of the net's driving terminal — the coefficient of
    [CL(net)] in every edge of {!edges_of_net}. *)

val launch_offset : t -> int -> float
(** Extra arrival offset at a vertex used as a path source: the
    clock-to-output intrinsic delay for flip-flop outputs (Fig. 1 shows
    [T0] inside the flip-flops), 0 elsewhere. *)

val natural_sources : t -> int list
(** All [Port_in] and flip-flop output vertices. *)

val natural_sinks : t -> int list
(** All [Port_out] and [Seq_in] vertices. *)

val pp_node : t -> Format.formatter -> node -> unit
