type t = {
  cname : string;
  sources : Delay_graph.node list;
  sinks : Delay_graph.node list;
  limit_ps : float;
}

exception Bad_constraint of string

let make ~name ~sources ~sinks ~limit_ps =
  if sources = [] then raise (Bad_constraint (name ^ ": no source terminals"));
  if sinks = [] then raise (Bad_constraint (name ^ ": no sink terminals"));
  if limit_ps <= 0.0 then raise (Bad_constraint (name ^ ": non-positive delay limit"));
  { cname = name; sources; sinks; limit_ps }

let pp ppf t =
  Format.fprintf ppf "%s: %d srcs -> %d sinks within %.1f ps" t.cname (List.length t.sources)
    (List.length t.sinks) t.limit_ps
