type node =
  | Out of Netlist.pin
  | Seq_in of Netlist.pin
  | Port_in of int
  | Port_out of int

type net_edge = { de_id : int; de_static : float; de_td : float; de_sink : Netlist.endpoint }

type t = {
  netlist : Netlist.t;
  dag : Dag.t;
  vertex_of : (node, int) Hashtbl.t;
  node_of : node array;
  net_edges : net_edge list array;  (* per net *)
  net_caps : float array;
  driver_vertices : int array;  (* per net *)
  launch : float array;  (* per vertex *)
}

let netlist t = t.netlist
let dag t = t.dag
let vertex t n = Hashtbl.find t.vertex_of n
let node t v = t.node_of.(v)
let n_vertices t = Array.length t.node_of
let driver_vertex t net_id = t.driver_vertices.(net_id)
let edges_of_net t net_id = List.map (fun e -> e.de_id) t.net_edges.(net_id)
let net_cap t net_id = t.net_caps.(net_id)

let driver_td t net_id =
  match t.net_edges.(net_id) with
  | e :: _ -> e.de_td
  | [] -> 0.0
let launch_offset t v = t.launch.(v)

let set_net_cap t ~net ~cap_ff =
  t.net_caps.(net) <- cap_ff;
  List.iter (fun e -> Dag.set_weight t.dag e.de_id (e.de_static +. (cap_ff *. e.de_td))) t.net_edges.(net)

let set_net_sink_delays t ~net ~delay_of =
  t.net_caps.(net) <- nan;
  List.iter
    (fun e -> Dag.set_weight t.dag e.de_id (e.de_static +. delay_of e.de_sink))
    t.net_edges.(net)

let sink_of_edge t edge_id =
  let found = ref None in
  Array.iter
    (fun edges ->
      List.iter (fun e -> if e.de_id = edge_id then found := Some e.de_sink) edges)
    t.net_edges;
  match !found with Some s -> s | None -> raise Not_found

let snapshot_weights t = Array.init (Dag.n_edges t.dag) (fun e -> Dag.weight t.dag e)

let restore_weights t weights =
  if Array.length weights <> Dag.n_edges t.dag then
    invalid_arg "Delay_graph.restore_weights: edge count mismatch";
  Array.iteri (fun e w -> Dag.set_weight t.dag e w) weights

let is_ff_output netlist (p : Netlist.pin) =
  let master = (Netlist.instance netlist p.Netlist.inst).Netlist.master in
  master.Cell.kind = Cell.Flipflop

let natural_sources t =
  let acc = ref [] in
  Array.iteri
    (fun v n ->
      match n with
      | Port_in _ -> acc := v :: !acc
      | Out p when is_ff_output t.netlist p -> acc := v :: !acc
      | Out _ | Seq_in _ | Port_out _ -> ())
    t.node_of;
  List.rev !acc

let natural_sinks t =
  let acc = ref [] in
  Array.iteri
    (fun v n ->
      match n with
      | Port_out _ | Seq_in _ -> acc := v :: !acc
      | Out _ | Port_in _ -> ())
    t.node_of;
  List.rev !acc

let pp_node t ppf = function
  | Out p ->
    Format.fprintf ppf "%s.%s" (Netlist.instance t.netlist p.Netlist.inst).Netlist.inst_name
      p.Netlist.term
  | Seq_in p ->
    Format.fprintf ppf "%s.%s(seq)" (Netlist.instance t.netlist p.Netlist.inst).Netlist.inst_name
      p.Netlist.term
  | Port_in q -> Format.fprintf ppf "in:%s" (Netlist.port t.netlist q).Netlist.port_name
  | Port_out q -> Format.fprintf ppf "out:%s" (Netlist.port t.netlist q).Netlist.port_name

let vertex_of_exn table node =
  match Hashtbl.find_opt table node with
  | Some v -> v
  | None -> invalid_arg "Delay_graph: missing vertex"

let build ?(port_tf = 3.0) ?(port_td = 0.5) ?(port_load_ff = 1.5) netlist =
  let dag = Dag.create ~vertex_hint:256 () in
  let vertex_of = Hashtbl.create 256 in
  let nodes = ref [] in
  let intern node =
    match Hashtbl.find_opt vertex_of node with
    | Some v -> v
    | None ->
      let v = Dag.add_vertex dag in
      Hashtbl.add vertex_of node v;
      nodes := node :: !nodes;
      v
  in
  (* Vertices for every instance output and every sequential input. *)
  Array.iter
    (fun (i : Netlist.instance) ->
      let master = i.Netlist.master in
      let on_terminal (term : Cell.terminal) =
        let pin = { Netlist.inst = i.Netlist.inst_id; term = term.Cell.t_name } in
        match term.Cell.dir with
        | Cell.Output -> ignore (intern (Out pin))
        | Cell.Input ->
          if Cell.is_sequential_input master term.Cell.t_name then ignore (intern (Seq_in pin))
      in
      Array.iter on_terminal master.Cell.terminals)
    (Netlist.instances netlist);
  (* Vertices for ports, by their role on the attached net. *)
  Array.iter
    (fun (n : Netlist.net) ->
      (match n.Netlist.driver with
      | Netlist.Port q -> ignore (intern (Port_in q))
      | Netlist.Pin _ -> ());
      List.iter
        (function
          | Netlist.Port q -> ignore (intern (Port_out q))
          | Netlist.Pin _ -> ())
        n.Netlist.sinks)
    (Netlist.nets netlist);
  (* Stage-delay edges per net. *)
  let n_nets = Netlist.n_nets netlist in
  let net_edges = Array.make n_nets [] in
  let driver_vertices = Array.make n_nets (-1) in
  let fanin_sum (n : Netlist.net) =
    let term_cap = function
      | Netlist.Pin p ->
        let master = (Netlist.instance netlist p.Netlist.inst).Netlist.master in
        (Cell.terminal master p.Netlist.term).Cell.fanin_ff
      | Netlist.Port _ -> port_load_ff
    in
    List.fold_left (fun acc ep -> acc +. term_cap ep) 0.0 n.Netlist.sinks
  in
  let build_net (n : Netlist.net) =
    let u, tf_u, td_u =
      match n.Netlist.driver with
      | Netlist.Pin p ->
        let master = (Netlist.instance netlist p.Netlist.inst).Netlist.master in
        let term = Cell.terminal master p.Netlist.term in
        (vertex_of_exn vertex_of (Out p), term.Cell.tf_ps_per_ff, term.Cell.td_ps_per_ff)
      | Netlist.Port q -> (vertex_of_exn vertex_of (Port_in q), port_tf, port_td)
    in
    driver_vertices.(n.Netlist.net_id) <- u;
    let load_static = fanin_sum n *. tf_u in
    let add_edge dst extra ~sink =
      let de_static = load_static +. extra in
      let de_id = Dag.add_edge dag ~src:u ~dst ~weight:de_static in
      net_edges.(n.Netlist.net_id) <-
        { de_id; de_static; de_td = td_u; de_sink = sink } :: net_edges.(n.Netlist.net_id)
    in
    let on_sink sink =
      match sink with
      | Netlist.Port q -> add_edge (vertex_of_exn vertex_of (Port_out q)) 0.0 ~sink
      | Netlist.Pin p ->
        let master = (Netlist.instance netlist p.Netlist.inst).Netlist.master in
        if Cell.is_sequential_input master p.Netlist.term then
          add_edge (vertex_of_exn vertex_of (Seq_in p)) 0.0 ~sink
        else begin
          let on_arc (a : Cell.arc) =
            if a.Cell.from_input = p.Netlist.term then
              add_edge
                (vertex_of_exn vertex_of (Out { p with Netlist.term = a.Cell.to_output }))
                a.Cell.intrinsic_ps ~sink
          in
          List.iter on_arc master.Cell.arcs
        end
    in
    List.iter on_sink n.Netlist.sinks
  in
  Array.iter build_net (Netlist.nets netlist);
  let node_of = Array.make (Dag.n_vertices dag) (Port_in (-1)) in
  List.iter (fun node -> node_of.(Hashtbl.find vertex_of node) <- node) !nodes;
  (* Launch offsets: clock-to-output intrinsic at flip-flop outputs. *)
  let launch = Array.make (Dag.n_vertices dag) 0.0 in
  Array.iteri
    (fun v n ->
      match n with
      | Out p when is_ff_output netlist p ->
        let master = (Netlist.instance netlist p.Netlist.inst).Netlist.master in
        let best =
          List.fold_left
            (fun acc (a : Cell.arc) ->
              if a.Cell.to_output = p.Netlist.term && Cell.is_sequential_input master a.Cell.from_input
              then max acc a.Cell.intrinsic_ps
              else acc)
            0.0 master.Cell.arcs
        in
        launch.(v) <- best
      | Out _ | Seq_in _ | Port_in _ | Port_out _ -> ())
    node_of;
  { netlist;
    dag;
    vertex_of;
    node_of;
    net_edges;
    net_caps = Array.make n_nets 0.0;
    driver_vertices;
    launch }
