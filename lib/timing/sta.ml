exception Unknown_node of string

type con_state = {
  mutable pc : Path_constraint.t;
  src_vertices : (int * float) list;  (* with launch offsets *)
  sink_vertices : int list;
  mask : bool array;  (* membership in G_d(P) *)
  mutable arrival : float array;
  mutable crit_delay : float;
}

type t = {
  dg : Delay_graph.t;
  cons : con_state array;
  net_constraints : int list array;  (* per net: P(e) *)
  gd_net_edges : (int * int, int list) Hashtbl.t;  (* (ci, net) -> masked edge ids *)
  net_of_driver : int array;  (* per vertex: driven net id or -1 *)
  mutable revision : int;
}

let resolve dg node =
  match Delay_graph.vertex dg node with
  | v -> v
  | exception Not_found ->
    raise (Unknown_node (Format.asprintf "%a" (Delay_graph.pp_node dg) node))

let recompute_con dg cs =
  let dag = Delay_graph.dag dg in
  cs.arrival <- Dag.longest_from dag ~sources:cs.src_vertices;
  let best = ref neg_infinity in
  List.iter (fun s -> if cs.arrival.(s) > !best then best := cs.arrival.(s)) cs.sink_vertices;
  cs.crit_delay <- !best

let create dg pcs =
  let dag = Delay_graph.dag dg in
  let make_con pc =
    let src_vertices =
      List.map
        (fun n ->
          let v = resolve dg n in
          (v, Delay_graph.launch_offset dg v))
        pc.Path_constraint.sources
    in
    let sink_vertices = List.map (resolve dg) pc.Path_constraint.sinks in
    let fwd = Dag.reachable_from dag (List.map fst src_vertices) in
    let bwd = Dag.coreachable_to dag sink_vertices in
    let mask = Array.mapi (fun i f -> f && bwd.(i)) fwd in
    let cs =
      { pc; src_vertices; sink_vertices; mask; arrival = [||]; crit_delay = neg_infinity }
    in
    recompute_con dg cs;
    cs
  in
  let cons = Array.of_list (List.map make_con pcs) in
  let netlist = Delay_graph.netlist dg in
  let n_nets = Netlist.n_nets netlist in
  let net_constraints = Array.make n_nets [] in
  let gd_net_edges = Hashtbl.create 256 in
  for net = 0 to n_nets - 1 do
    let edges = Delay_graph.edges_of_net dg net in
    Array.iteri
      (fun ci cs ->
        let masked =
          List.filter
            (fun e ->
              let src, dst = Dag.endpoints dag e in
              cs.mask.(src) && cs.mask.(dst))
            edges
        in
        if masked <> [] then begin
          Hashtbl.replace gd_net_edges (ci, net) masked;
          net_constraints.(net) <- ci :: net_constraints.(net)
        end)
      cons;
    net_constraints.(net) <- List.rev net_constraints.(net)
  done;
  let net_of_driver = Array.make (Delay_graph.n_vertices dg) (-1) in
  for net = 0 to n_nets - 1 do
    net_of_driver.(Delay_graph.driver_vertex dg net) <- net
  done;
  { dg; cons; net_constraints; gd_net_edges; net_of_driver; revision = 0 }

let delay_graph t = t.dg
let n_constraints t = Array.length t.cons
let constraint_ t ci = t.cons.(ci).pc

let refresh t =
  Array.iter (recompute_con t.dg) t.cons;
  t.revision <- t.revision + 1

let refresh_for_nets t nets =
  let affected = Hashtbl.create 8 in
  List.iter
    (fun net -> List.iter (fun ci -> Hashtbl.replace affected ci ()) t.net_constraints.(net))
    nets;
  if Hashtbl.length affected > 0 then begin
    Hashtbl.iter (fun ci () -> recompute_con t.dg t.cons.(ci)) affected;
    t.revision <- t.revision + 1
  end

let set_limit t ci limit_ps =
  let cs = t.cons.(ci) in
  cs.pc <-
    Path_constraint.make ~name:cs.pc.Path_constraint.cname ~sources:cs.pc.Path_constraint.sources
      ~sinks:cs.pc.Path_constraint.sinks ~limit_ps;
  t.revision <- t.revision + 1

let timing_revision t = t.revision

let margin t ci =
  let cs = t.cons.(ci) in
  if cs.crit_delay = neg_infinity then infinity else cs.pc.Path_constraint.limit_ps -. cs.crit_delay

let critical_delay t ci = t.cons.(ci).crit_delay
let arrival t ci = t.cons.(ci).arrival
let in_gd t ci v = t.cons.(ci).mask.(v)

let gd_edges_of_net t ~ci ~net =
  Option.value (Hashtbl.find_opt t.gd_net_edges (ci, net)) ~default:[]

let constraints_of_net t net = t.net_constraints.(net)

let critical_path t ci =
  let cs = t.cons.(ci) in
  if cs.crit_delay = neg_infinity then []
  else begin
    let dag = Delay_graph.dag t.dg in
    (* Start from the worst sink and walk arrival-realizing edges back. *)
    let best_sink =
      List.fold_left
        (fun acc s ->
          match acc with
          | None -> Some s
          | Some b -> if cs.arrival.(s) > cs.arrival.(b) then Some s else acc)
        None cs.sink_vertices
    in
    match best_sink with
    | None -> []
    | Some sink ->
      let eps = 1e-9 in
      let rec walk v acc =
        let pred = ref (-1) in
        Dag.iter_in dag v (fun ~edge_id:_ ~src ~weight ->
            if
              !pred = -1
              && cs.arrival.(src) > neg_infinity
              && abs_float (cs.arrival.(src) +. weight -. cs.arrival.(v)) < eps
            then pred := src);
        if !pred = -1 then v :: acc else walk !pred (v :: acc)
      in
      walk sink []
  end

let critical_nets t ci =
  let path = critical_path t ci in
  let rec nets = function
    | [] | [ _ ] -> []
    | v :: (_ :: _ as rest) ->
      let n = t.net_of_driver.(v) in
      if n >= 0 then n :: nets rest else nets rest
  in
  nets path

let required t ci =
  let cs = t.cons.(ci) in
  let dag = Delay_graph.dag t.dg in
  let to_sink = Dag.longest_to dag ~sinks:(List.map (fun s -> (s, 0.0)) cs.sink_vertices) in
  Array.map
    (fun d -> if d = neg_infinity then infinity else cs.pc.Path_constraint.limit_ps -. d)
    to_sink

let vertex_slack t ci =
  let cs = t.cons.(ci) in
  let req = required t ci in
  Array.mapi
    (fun v r ->
      if cs.arrival.(v) = neg_infinity then infinity else r -. cs.arrival.(v))
    req

type endpoint_report = {
  ep_vertex : int;
  ep_delay_ps : float;
  ep_slack_ps : float;
  ep_path : int list;
}

(* Walk arrival-realizing predecessors back from a sink. *)
let path_to t ci sink =
  let cs = t.cons.(ci) in
  let dag = Delay_graph.dag t.dg in
  let eps = 1e-9 in
  let rec walk v acc =
    let pred = ref (-1) in
    Dag.iter_in dag v (fun ~edge_id:_ ~src ~weight ->
        if
          !pred = -1
          && cs.arrival.(src) > neg_infinity
          && abs_float (cs.arrival.(src) +. weight -. cs.arrival.(v)) < eps
        then pred := src);
    if !pred = -1 then v :: acc else walk !pred (v :: acc)
  in
  walk sink []

let endpoint_reports t ci =
  let cs = t.cons.(ci) in
  let limit = cs.pc.Path_constraint.limit_ps in
  List.filter_map
    (fun sink ->
      if cs.arrival.(sink) = neg_infinity then None
      else
        Some
          { ep_vertex = sink;
            ep_delay_ps = cs.arrival.(sink);
            ep_slack_ps = limit -. cs.arrival.(sink);
            ep_path = path_to t ci sink })
    cs.sink_vertices
  |> List.sort (fun a b -> Float.compare a.ep_slack_ps b.ep_slack_ps)

let margins t = Array.init (Array.length t.cons) (fun ci -> margin t ci)

let total_negative_margin t =
  Array.fold_left
    (fun acc cs ->
      if cs.crit_delay = neg_infinity then acc
      else begin
        let m = cs.pc.Path_constraint.limit_ps -. cs.crit_delay in
        if m < 0.0 then acc +. m else acc
      end)
    0.0 t.cons

let endpoint_slacks t ci =
  let cs = t.cons.(ci) in
  let limit = cs.pc.Path_constraint.limit_ps in
  List.filter_map
    (fun sink ->
      if cs.arrival.(sink) = neg_infinity then None else Some (limit -. cs.arrival.(sink)))
    cs.sink_vertices

let endpoint_slack_extremes t =
  let lo = ref infinity and hi = ref neg_infinity and any = ref false in
  Array.iter
    (fun cs ->
      let limit = cs.pc.Path_constraint.limit_ps in
      List.iter
        (fun sink ->
          if cs.arrival.(sink) > neg_infinity then begin
            any := true;
            let s = limit -. cs.arrival.(sink) in
            if s < !lo then lo := s;
            if s > !hi then hi := s
          end)
        cs.sink_vertices)
    t.cons;
  if !any then Some (!lo, !hi) else None

let worst t =
  let best = ref None in
  Array.iteri
    (fun ci _ ->
      let m = margin t ci in
      match !best with
      | Some (_, bm) when bm <= m -> ()
      | _ -> best := Some (ci, m))
    t.cons;
  !best

let worst_path_delay t =
  Array.fold_left (fun acc cs -> max acc cs.crit_delay) neg_infinity t.cons

let violations t =
  let v = ref [] in
  Array.iteri (fun ci _ -> if margin t ci < 0.0 then v := (ci, margin t ci) :: !v) t.cons;
  List.sort (fun (_, m1) (_, m2) -> Float.compare m1 m2) !v |> List.map fst

let static_net_slacks dg pcs =
  let netlist = Delay_graph.netlist dg in
  let n_nets = Netlist.n_nets netlist in
  (* Raw-weight snapshot: restores exactly even under per-sink delay
     models (a capacitance snapshot would re-inject NaN there). *)
  let saved = Delay_graph.snapshot_weights dg in
  for net = 0 to n_nets - 1 do
    Delay_graph.set_net_cap dg ~net ~cap_ff:0.0
  done;
  let dag = Delay_graph.dag dg in
  let slacks = Array.make n_nets infinity in
  let apply pc =
    let srcs =
      List.map
        (fun n ->
          let v = resolve dg n in
          (v, Delay_graph.launch_offset dg v))
        pc.Path_constraint.sources
    in
    let sinks = List.map (fun n -> (resolve dg n, 0.0)) pc.Path_constraint.sinks in
    let fwd = Dag.longest_from dag ~sources:srcs in
    let bwd = Dag.longest_to dag ~sinks in
    for net = 0 to n_nets - 1 do
      let v = Delay_graph.driver_vertex dg net in
      if fwd.(v) > neg_infinity && bwd.(v) > neg_infinity then begin
        let slack = pc.Path_constraint.limit_ps -. (fwd.(v) +. bwd.(v)) in
        if slack < slacks.(net) then slacks.(net) <- slack
      end
    done
  in
  List.iter apply pcs;
  Delay_graph.restore_weights dg saved;
  slacks

let static_net_order dg pcs =
  let slacks = static_net_slacks dg pcs in
  let ids = List.init (Array.length slacks) Fun.id in
  List.stable_sort (fun a b -> Float.compare slacks.(a) slacks.(b)) ids
