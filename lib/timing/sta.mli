(** Static timing analysis over [G_D] under a constraint set.

    For each constraint [P] the delay constraint graph [G_d(P)] — the
    sub-DAG of vertices lying on some source-to-sink path — is fixed by
    topology and computed once.  Arrivals [lp(v)] (the "original longest
    path delay to v" of Eq. 2) and margins
    [M(P) = tau_P - critical delay] are recomputed by {!refresh} after
    wiring-capacitance updates; {!timing_revision} lets callers cache
    values derived from them. *)

type t

exception Unknown_node of string

val create : Delay_graph.t -> Path_constraint.t list -> t
(** @raise Unknown_node when a constraint names a node absent from the
    delay graph.
    @raise Dag.Cycle on combinational cycles. *)

val delay_graph : t -> Delay_graph.t

val n_constraints : t -> int

val constraint_ : t -> int -> Path_constraint.t

val refresh : t -> unit
(** Recompute arrivals and margins for every constraint. *)

val set_limit : t -> int -> float -> unit
(** Change a constraint's delay limit in place — the ECO entry point:
    tighten after routing, then run the router's violation-recovery
    phase.  Bumps the timing revision.
    @raise Path_constraint.Bad_constraint on a non-positive limit. *)

val refresh_for_nets : t -> int list -> unit
(** Recompute only the constraints whose [G_d(P)] contains an edge of
    one of the given nets. *)

val timing_revision : t -> int
(** Bumped by every refresh that changed at least one constraint. *)

val margin : t -> int -> float
(** [M(P)]: limit minus critical delay; negative on violation;
    [infinity] when no sink is reachable (vacuously met). *)

val critical_delay : t -> int -> float
(** Longest source-to-sink delay of the constraint ([neg_infinity] when
    no path exists). *)

val arrival : t -> int -> float array
(** Per-vertex longest-path arrival [lp(v)] from the constraint's
    sources (with flip-flop launch offsets applied). *)

val in_gd : t -> int -> int -> bool
(** [in_gd t ci v]: does vertex [v] belong to [G_d(P_ci)]? *)

val gd_edges_of_net : t -> ci:int -> net:int -> int list
(** Dag edge ids of the net that lie inside [G_d(P_ci)] (both endpoints
    in the mask) — the edges inspected by [LM(e,P)]. *)

val constraints_of_net : t -> int -> int list
(** [P(e)] for edges of this net: constraint indices whose [G_d]
    contains at least one of the net's edges (static). *)

val critical_path : t -> int -> int list
(** Vertex sequence of the constraint's current critical path ([] when
    no path). *)

val required : t -> int -> float array
(** Per-vertex required time under the constraint: the limit minus the
    longest remaining path to any of its sinks ([infinity] when the
    vertex reaches no sink). *)

val vertex_slack : t -> int -> float array
(** [required - arrival] per vertex; the minimum over [G_d(P)] vertices
    equals {!margin}. *)

type endpoint_report = {
  ep_vertex : int;  (** the sink *)
  ep_delay_ps : float;
  ep_slack_ps : float;
  ep_path : int list;  (** worst path reaching the sink *)
}

val endpoint_reports : t -> int -> endpoint_report list
(** STA-style timing report: the worst path into each reachable sink of
    the constraint, sorted worst (smallest slack) first. *)

val critical_nets : t -> int -> int list
(** Nets driven along the current critical path, in path order. *)

val margins : t -> float array
(** {!margin} of every constraint, indexed by constraint id — a cheap
    snapshot for quality telemetry (no path walks). *)

val total_negative_margin : t -> float
(** Sum of the negative margins (a TNS analogue over constraints);
    [0.0] when every constraint is met. *)

val endpoint_slacks : t -> int -> float list
(** Slack [tau_P - lp(sink)] of each reachable sink of the constraint,
    in sink order.  Same values as {!endpoint_reports} but without
    building the worst paths. *)

val endpoint_slack_extremes : t -> (float * float) option
(** [(min, max)] endpoint slack over every reachable sink of every
    constraint; [None] when no sink is reachable.  O(total sinks). *)

val worst : t -> (int * float) option
(** The constraint with the smallest margin, with that margin. *)

val worst_path_delay : t -> float
(** Maximum critical delay over all constraints ([neg_infinity] with no
    constraints). *)

val violations : t -> int list
(** Constraints with negative margin, most violated first. *)

(** {1 Static (zero-capacitance) analysis} *)

val static_net_slacks : Delay_graph.t -> Path_constraint.t list -> float array
(** Per-net slack with all wiring capacitances forced to zero: the
    minimum over constraints [P] with the net's driver in [G_d(P)] of
    [tau_P - (lp_fwd(driver) + lp_bwd(driver))]; [infinity] for nets
    under no constraint.  Restores the previous capacitances before
    returning. *)

val static_net_order : Delay_graph.t -> Path_constraint.t list -> int list
(** All net ids "arranged in ascending order" of static slack
    (Sec. 3.1) — the feedthrough assignment order. *)
