type t = {
  pitch_um : float;
  row_height_um : float;
  track_um : float;
  cap_per_um : float;
  cap_fringe_per_um : float;
  res_ohm_per_um : float;
}

let default =
  { pitch_um = 8.0;
    row_height_um = 120.0;
    track_um = 8.0;
    cap_per_um = 0.2;
    cap_fringe_per_um = 0.08;
    res_ohm_per_um = 0.02 }

let cap_per_um_at t ~width = ((t.cap_per_um -. t.cap_fringe_per_um) *. width) +. t.cap_fringe_per_um
let res_kohm_per_um_at t ~width = t.res_ohm_per_um /. width /. 1000.0

let h_um t n = float_of_int n *. t.pitch_um
let v_um t ~rows = float_of_int rows *. t.row_height_um
let wire_cap t ~um = um *. t.cap_per_um
let wire_res_kohm t ~um ~pitch = um *. t.res_ohm_per_um /. float_of_int pitch /. 1000.0
let mm_of_um um = um /. 1000.0
let mm2_of_um2 um2 = um2 /. 1.0e6
