(** Axis-aligned bounding boxes on the (column, track-row) grid.

    Used for net bounding boxes and the half-perimeter wirelength lower
    bound of Table 3 (the paper assumes "the wire length for each net to
    be half the perimeter of the rectangle containing the net
    terminals"). *)

type t = { x_lo : int; x_hi : int; y_lo : int; y_hi : int }
(** Closed bounds: the box covers [x_lo..x_hi] x [y_lo..y_hi]. *)

val of_point : x:int -> y:int -> t
(** Degenerate box containing a single point. *)

val add_point : t -> x:int -> y:int -> t
(** Grow the box to contain the point. *)

val of_points : (int * int) list -> t option
(** Bounding box of a point list ([None] on the empty list). *)

val width : t -> int
(** [x_hi - x_lo]. *)

val height : t -> int
(** [y_hi - y_lo]. *)

val half_perimeter : t -> int
(** [width + height] — the HPWL lower bound for a net confined to the
    box. *)

val union : t -> t -> t

val mem : t -> x:int -> y:int -> bool

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
