(** Physical dimensioning of the routing grid.

    The global router works on an abstract grid: columns are wiring
    pitches, vertical distance is counted in cell-row heights and channel
    tracks.  [Dims] converts grid lengths to micrometres / millimetres
    and to wiring capacitance for the delay model (Eq. 1 uses [CL(n)],
    the capacitance of net [n]'s wiring). *)

type t = {
  pitch_um : float;  (** horizontal wiring pitch, micrometres *)
  row_height_um : float;  (** height of a cell row, micrometres *)
  track_um : float;  (** height of one channel track, micrometres *)
  cap_per_um : float;  (** total wiring capacitance per micrometre at 1-pitch width, fF *)
  cap_fringe_per_um : float;
      (** the width-independent (fringe/sidewall) part of [cap_per_um];
          widening a wire scales only the remaining area component, so
          the RC product genuinely falls with width — the physics
          behind Sec. 4.2's multi-pitch wires *)
  res_ohm_per_um : float;
      (** wiring resistance per micrometre at 1-pitch width, Ohm.
          Bipolar wires "are made wider than those in CMOS circuits to
          reduce current density, [so] the wire resistance is rather
          small" (Sec. 2.1) — the default keeps the RC product an order
          of magnitude below the capacitive term, which is what lets
          the paper adopt the capacitance-only model. *)
}

val default : t
(** Bipolar-era defaults: 8 um pitch, 120 um rows, 8 um tracks,
    0.2 fF/um (of which 0.08 fringe), 0.02 Ohm/um. *)

val cap_per_um_at : t -> width:float -> float
(** Capacitance per micrometre of a wire [width] pitches wide:
    area part scaled by the width plus the constant fringe. *)

val res_kohm_per_um_at : t -> width:float -> float
(** Resistance per micrometre (kOhm) at the given width. *)

val wire_res_kohm : t -> um:float -> pitch:int -> float
(** Resistance (kOhm, so that kOhm x fF = ps) of [um] micrometres of
    wire at [pitch] times the base width. *)

val h_um : t -> int -> float
(** Physical length of a horizontal span of [n] pitches. *)

val v_um : t -> rows:int -> float
(** Physical length of a vertical run crossing [rows] cell rows. *)

val wire_cap : t -> um:float -> float
(** Capacitance (fF) of [um] micrometres of wire at 1-pitch width. *)

val mm_of_um : float -> float

val mm2_of_um2 : float -> float
