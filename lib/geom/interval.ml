type t = { lo : int; hi : int }
(* Invariant: lo < hi, except the canonical empty interval {0,0}. *)

let empty = { lo = 0; hi = 0 }

let span lo hi = if hi <= lo then empty else { lo; hi }

let make x1 x2 =
  let lo = min x1 x2 and hi = max x1 x2 in
  { lo; hi = hi + 1 }

let point x = { lo = x; hi = x + 1 }
let lo t = t.lo
let hi t = t.hi
let is_empty t = t.hi <= t.lo
let length t = if is_empty t then 0 else t.hi - t.lo
let mem x t = t.lo <= x && x < t.hi
let overlaps a b = (not (is_empty a)) && (not (is_empty b)) && a.lo < b.hi && b.lo < a.hi

let contains outer inner =
  is_empty inner || ((not (is_empty outer)) && outer.lo <= inner.lo && inner.hi <= outer.hi)

let hull a b =
  if is_empty a then b
  else if is_empty b then a
  else { lo = min a.lo b.lo; hi = max a.hi b.hi }

let inter a b = span (max a.lo b.lo) (min a.hi b.hi)
let shift dx t = if is_empty t then t else { lo = t.lo + dx; hi = t.hi + dx }

let iter f t =
  for x = t.lo to t.hi - 1 do
    f x
  done

let fold f acc t =
  let rec loop acc x = if x >= t.hi then acc else loop (f acc x) (x + 1) in
  loop acc t.lo

let equal a b = (is_empty a && is_empty b) || (a.lo = b.lo && a.hi = b.hi)

let compare a b =
  match (is_empty a, is_empty b) with
  | true, true -> 0
  | true, false -> -1
  | false, true -> 1
  | false, false ->
    let c = Int.compare a.lo b.lo in
    if c <> 0 then c else Int.compare a.hi b.hi

let pp ppf t =
  if is_empty t then Format.fprintf ppf "(empty)"
  else Format.fprintf ppf "[%d,%d)" t.lo t.hi
