type t = { x_lo : int; x_hi : int; y_lo : int; y_hi : int }

let of_point ~x ~y = { x_lo = x; x_hi = x; y_lo = y; y_hi = y }

let add_point t ~x ~y =
  { x_lo = min t.x_lo x; x_hi = max t.x_hi x; y_lo = min t.y_lo y; y_hi = max t.y_hi y }

let of_points = function
  | [] -> None
  | (x, y) :: rest ->
    let add acc (x, y) = add_point acc ~x ~y in
    Some (List.fold_left add (of_point ~x ~y) rest)

let width t = t.x_hi - t.x_lo
let height t = t.y_hi - t.y_lo
let half_perimeter t = width t + height t

let union a b =
  { x_lo = min a.x_lo b.x_lo;
    x_hi = max a.x_hi b.x_hi;
    y_lo = min a.y_lo b.y_lo;
    y_hi = max a.y_hi b.y_hi }

let mem t ~x ~y = t.x_lo <= x && x <= t.x_hi && t.y_lo <= y && y <= t.y_hi
let equal a b = a = b

let pp ppf t =
  Format.fprintf ppf "[%d..%d]x[%d..%d]" t.x_lo t.x_hi t.y_lo t.y_hi
