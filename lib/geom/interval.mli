(** Integer column intervals on the routing grid.

    A trunk segment spanning grid columns [x1] to [x2] is represented by
    the half-open interval [\[min x1 x2, max x1 x2)].  Half-open spans
    let consecutive trunk edges of one net chain without overlapping, so
    summing their column occupancies never double-counts (DESIGN.md
    Sec. 5, "Density parameters").  The empty interval (zero columns) is
    representable and behaves as a neutral element for [hull]. *)

type t

val empty : t
(** The interval covering no column. *)

val make : int -> int -> t
(** [make x1 x2] is the half-open interval from [min x1 x2] (inclusive)
    to [max x1 x2] (exclusive).  [make x x] is a single-column interval
    [\[x, x+1)] — a point attachment still occupies its column. *)

val span : int -> int -> t
(** [span lo hi] is the raw half-open interval [\[lo, hi)]; empty when
    [hi <= lo]. *)

val point : int -> t
(** [point x] = [make x x]: the single column [x]. *)

val lo : t -> int
(** Inclusive lower bound.  Unspecified for [empty]. *)

val hi : t -> int
(** Exclusive upper bound.  Unspecified for [empty]. *)

val is_empty : t -> bool

val length : t -> int
(** Number of columns covered. *)

val mem : int -> t -> bool
(** [mem x t] is true when column [x] lies inside [t]. *)

val overlaps : t -> t -> bool
(** Whether the two intervals share at least one column. *)

val contains : t -> t -> bool
(** [contains outer inner] is true when every column of [inner] lies in
    [outer].  The empty interval is contained in everything. *)

val hull : t -> t -> t
(** Smallest interval covering both arguments. *)

val inter : t -> t -> t
(** Common columns of the two intervals ([empty] when disjoint). *)

val shift : int -> t -> t
(** Translate by a column offset. *)

val iter : (int -> unit) -> t -> unit
(** Iterate over covered columns in increasing order. *)

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
(** Left fold over covered columns. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order: by lower bound, then upper bound; [empty] first. *)

val pp : Format.formatter -> t -> unit
(** Prints as [\[lo,hi)] or [(empty)]. *)
