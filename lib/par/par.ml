let available_domains () = Domain.recommended_domain_count ()

let default_domains () =
  match Sys.getenv_opt "BGR_DOMAINS" with
  | None -> available_domains ()
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> available_domains ())

(* One mailbox per helper: [job = Some _] means a round is in flight.
   The same condition serves both directions — the helper waits while
   the mailbox is empty, the submitter waits while it is full — the
   predicates are disjoint. *)
type worker = {
  m : Mutex.t;
  cv : Condition.t;
  mutable job : (unit -> unit) option;
  mutable stop : bool;
  mutable dead : bool;  (* helper domain exited; mailbox stays empty *)
  mutable respawned : bool;  (* the slot's single respawn is spent *)
  mutable retired : bool;  (* permanently out of service *)
  mutable busy_s : float;
      (* Cumulative seconds this helper spent inside jobs.  Written by
         the helper itself between rounds; the orchestrator reads it
         only after the barrier (the mailbox handshake orders the
         accesses), folding the delta since [busy_reported_s] into the
         metrics registry. *)
  mutable busy_reported_s : float;
}

type t = {
  workers : worker array;
  handles : unit Domain.t option array;
  mutable alive : bool;
  mutable in_round : bool;
      (* A round is in flight: a nested submission from the caller's
         own chunk would clobber the helpers' mailboxes, so it runs
         sequentially instead (only the orchestrating domain ever
         touches this flag). *)
  mutable warnings_rev : string list;
}

let in_worker_key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get in_worker_key

(* Obs cannot depend on this library (Par already depends on nothing
   below bgr_resilience, and Router sits on both); the probe injection
   gives the registry its "drop records from workers" discipline
   without a cycle. *)
let () = Obs.set_worker_probe in_worker

let m_busy =
  Obs.Metrics.counter "bgr_domain_busy_seconds" ~labels:[ "domain" ]
    ~help:"Seconds each domain spent executing pool chunks (domain 0 is the orchestrator)"

let m_idle =
  Obs.Metrics.counter "bgr_domain_idle_seconds" ~labels:[ "domain" ]
    ~help:"Seconds each domain sat idle inside pool rounds it participated in"

let m_rounds = Obs.Metrics.counter "bgr_par_rounds_total" ~help:"Parallel pool rounds dispatched"

let m_chunks =
  Obs.Metrics.counter "bgr_par_chunks_total" ~help:"Work chunks executed across all pool rounds"

let m_respawns =
  Obs.Metrics.counter "bgr_par_respawns_total" ~help:"Pool workers respawned after a death"

let assert_orchestrator ~what =
  if in_worker () then
    Bgr_error.raise_error Bgr_error.Internal
      "%s must run on the orchestrating domain, never a pool worker" what

(* Mark a worker dead under its lock with the mailbox cleared, so a
   barrier waiting on [job = None] can never hang on it. *)
let mark_dead w =
  Mutex.lock w.m;
  w.dead <- true;
  w.job <- None;
  Condition.broadcast w.cv;
  Mutex.unlock w.m

let worker_loop w =
  Domain.DLS.set in_worker_key true;
  let rec loop () =
    Mutex.lock w.m;
    while w.job = None && not w.stop do
      Condition.wait w.cv w.m
    done;
    match w.job with
    | None -> Mutex.unlock w.m (* stop requested *)
    | Some job ->
      Mutex.unlock w.m;
      (* Injected worker death fires after pickup but before any chunk
         is pulled: the atomic counter hands the whole round to the
         surviving participants (the caller always participates), so a
         death never loses work — it only costs parallelism. *)
      if Fault.trip "par.worker" then mark_dead w
      else begin
        (* The job wrapper traps its own exceptions into the round's
           result cell; anything escaping here would kill the helper, so
           swallow defensively. *)
        let timed = Obs.enabled () in
        let t0 = if timed then Obs.now_s () else 0.0 in
        (try job () with _ -> ());
        if timed then w.busy_s <- w.busy_s +. (Obs.now_s () -. t0);
        Mutex.lock w.m;
        w.job <- None;
        Condition.signal w.cv;
        Mutex.unlock w.m;
        loop ()
      end
  in
  try loop () with _ -> mark_dead w

(* Spawn a helper, retrying once: a failed [Domain.spawn] (resource
   exhaustion, or the injected "par.spawn" fault) is often transient. *)
let spawn_worker w =
  let attempt () =
    if Fault.trip "par.spawn" then failwith "injected spawn failure at site par.spawn";
    Domain.spawn (fun () -> worker_loop w)
  in
  match attempt () with
  | h -> Some h
  | exception _ -> ( match attempt () with h -> Some h | exception _ -> None)

let create ?domains () =
  let n = match domains with Some n -> max 1 n | None -> default_domains () in
  let workers =
    Array.init (n - 1) (fun _ ->
        { m = Mutex.create ();
          cv = Condition.create ();
          job = None;
          stop = false;
          dead = false;
          respawned = false;
          retired = false;
          busy_s = 0.0;
          busy_reported_s = 0.0 })
  in
  let warnings = ref [] in
  let handles =
    Array.map
      (fun w ->
        match spawn_worker w with
        | Some h -> Some h
        | None ->
          w.dead <- true;
          w.respawned <- true;
          w.retired <- true;
          warnings :=
            "could not spawn a pool worker (retried once); continuing with fewer domains"
            :: !warnings;
          None)
      workers
  in
  { workers; handles; alive = true; in_round = false; warnings_rev = !warnings }

let domains t = Array.length t.workers + 1

let warnings t = List.rev t.warnings_rev
let degraded t = Array.exists (fun w -> w.retired) t.workers

(* Bring dead helpers back after a round: one respawn per slot, then
   the slot is retired and the pool stays degraded (with every helper
   retired the pool degenerates to the sequential engine). *)
let heal t =
  Array.iteri
    (fun i w ->
      if w.dead && not w.retired && t.alive then begin
        (match t.handles.(i) with
        | Some h -> ( try Domain.join h with _ -> ())
        | None -> ());
        t.handles.(i) <- None;
        if w.respawned then begin
          w.retired <- true;
          t.warnings_rev <-
            "a pool worker died again after its respawn; continuing with fewer domains"
            :: t.warnings_rev
        end
        else begin
          w.respawned <- true;
          match spawn_worker w with
          | Some h ->
            w.dead <- false;
            w.stop <- false;
            t.handles.(i) <- Some h;
            Obs.Metrics.inc m_respawns;
            t.warnings_rev <- "a pool worker died mid-run; respawned it" :: t.warnings_rev
          | None ->
            w.retired <- true;
            t.warnings_rev <-
              "a pool worker died and could not be respawned; continuing with fewer domains"
              :: t.warnings_rev
        end
      end)
    t.workers

let shutdown t =
  if t.alive then begin
    t.alive <- false;
    Array.iter
      (fun w ->
        Mutex.lock w.m;
        w.stop <- true;
        Condition.broadcast w.cv;
        Mutex.unlock w.m)
      t.workers;
    Array.iter (function Some h -> ( try Domain.join h with _ -> ()) | None -> ()) t.handles
  end

(* The shared pool: grown on demand, never shrunk.  Creation and growth
   happen on the orchestrating domain only (nested requests from
   workers degrade to sequential before reaching [get]). *)
let global : t option ref = ref None

let get ?domains:want () =
  let want = match want with Some n -> max 1 n | None -> default_domains () in
  match !global with
  | Some p when p.alive && domains p >= want -> p
  | prev ->
    (match prev with Some p -> shutdown p | None -> ());
    let p = create ~domains:want () in
    global := Some p;
    p

(* Round ordinal for the flight recorder: only the orchestrating
   domain dispatches rounds, so a plain ref suffices. *)
let round_ordinal = ref 0

(* Run [n_chunks] work items, each exactly once, across the helpers and
   the caller; re-raise the first exception after the barrier. *)
let run_chunked t ~n_chunks f =
  if n_chunks > 0 then begin
    if
      Array.length t.workers = 0 || (not t.alive) || in_worker () || t.in_round
      || n_chunks = 1
    then
      for c = 0 to n_chunks - 1 do
        f c
      done
    else begin
      t.in_round <- true;
      round_ordinal := !round_ordinal + 1;
      Flight.record Flight.k_pool_round ~a:0 ~b:0 ~c:!round_ordinal ~d:n_chunks;
      let timed = Obs.enabled () in
      let t_round0 = if timed then Obs.now_s () else 0.0 in
      let next = Atomic.make 0 in
      let first_exn : exn option Atomic.t = Atomic.make None in
      let body () =
        let rec go () =
          let c = Atomic.fetch_and_add next 1 in
          if c < n_chunks then begin
            (match Atomic.get first_exn with
            | Some _ -> () (* a participant failed: abandon the rest *)
            | None -> (
              try f c
              with e -> ignore (Atomic.compare_and_set first_exn None (Some e))));
            go ()
          end
        in
        go ()
      in
      Array.iter
        (fun w ->
          Mutex.lock w.m;
          if not w.dead then begin
            w.job <- Some body;
            Condition.signal w.cv
          end;
          Mutex.unlock w.m)
        t.workers;
      let t_caller0 = if timed then Obs.now_s () else 0.0 in
      (try body ()
       with e ->
         (* [body] traps [f]'s exceptions itself; only truly unexpected
            failures land here, and the barrier must still run. *)
         ignore (Atomic.compare_and_set first_exn None (Some e)));
      let caller_busy = if timed then Obs.now_s () -. t_caller0 else 0.0 in
      Array.iter
        (fun w ->
          Mutex.lock w.m;
          while w.job <> None do
            Condition.wait w.cv w.m
          done;
          Mutex.unlock w.m)
        t.workers;
      t.in_round <- false;
      Flight.record Flight.k_pool_round ~a:0 ~b:1 ~c:!round_ordinal ~d:n_chunks;
      if timed then begin
        let round = Obs.now_s () -. t_round0 in
        Obs.Metrics.inc m_rounds;
        Obs.Metrics.inc m_chunks ~by:(float_of_int n_chunks);
        Obs.Metrics.inc m_busy ~labels:[ ("domain", "0") ] ~by:caller_busy;
        Obs.Metrics.inc m_idle ~labels:[ ("domain", "0") ]
          ~by:(Float.max 0.0 (round -. caller_busy));
        Array.iteri
          (fun i w ->
            let delta = w.busy_s -. w.busy_reported_s in
            w.busy_reported_s <- w.busy_s;
            let d = string_of_int (i + 1) in
            Obs.Metrics.inc m_busy ~labels:[ ("domain", d) ] ~by:(Float.max 0.0 delta);
            Obs.Metrics.inc m_idle ~labels:[ ("domain", d) ]
              ~by:(Float.max 0.0 (round -. delta)))
          t.workers
      end;
      heal t;
      match Atomic.get first_exn with Some e -> raise e | None -> ()
    end
  end

let parallel_iter ?chunk t f n =
  if n > 0 then begin
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 ((n + (4 * domains t) - 1) / (4 * domains t))
    in
    let n_chunks = (n + chunk - 1) / chunk in
    run_chunked t ~n_chunks (fun c ->
        let lo = c * chunk and hi = min n ((c + 1) * chunk) in
        for i = lo to hi - 1 do
          f i
        done)
  end

let parallel_init t n f =
  if n <= 0 then [||]
  else begin
    (* Element 0 is computed on the caller to seed the result array
       without an Option/Obj detour; the rest fills in parallel. *)
    let out = Array.make n (f 0) in
    parallel_iter t (fun i -> out.(i + 1) <- f (i + 1)) (n - 1);
    out
  end

let parallel_map t f arr = parallel_init t (Array.length arr) (fun i -> f arr.(i))

let parallel_list_map t f l = Array.to_list (parallel_map t f (Array.of_list l))

let parallel_reduce t ~map ~combine ~init n =
  Array.fold_left combine init (parallel_init t n map)
