(** A fixed-size domain pool with chunked data-parallel iteration —
    the execution substrate of the parallel routing engine.

    Hand-rolled over [Domain] + [Mutex]/[Condition] from the OCaml 5
    stdlib (no external dependencies).  A pool of [domains - 1] helper
    domains sits blocked on per-worker mailboxes; every parallel
    operation hands the same chunk-pulling job to each helper, runs it
    on the calling domain too, and waits for all helpers to drain.
    Work items are distributed by an atomic chunk counter, so any
    number of participating domains computes the same set of chunks.

    Guarantees relied upon by the router:

    - {b Determinism}: [parallel_map]/[parallel_init] write result [i]
      of input [i] — the output never depends on which domain computed
      which chunk or in what order.
    - {b Exceptions propagate}: the first exception raised by any
      participant (helpers included) is re-raised on the caller after
      the barrier; remaining chunks are abandoned.
    - {b Nesting is safe}: a parallel operation issued from inside a
      worker falls back to sequential execution instead of
      deadlocking, so parallel suite runs may wrap parallel routers.
    - {b Worker death degrades, never hangs or loses work}: chunks are
      handed out by an atomic counter and the caller always
      participates, so a helper that dies (or fails to spawn) only
      costs parallelism.  A dead helper is respawned once per slot;
      after that the slot is retired, the pool reports itself
      {!degraded}, and with every slot retired execution is plain
      sequential.  Fault-injection sites: ["par.worker"] (death on job
      pickup) and ["par.spawn"] (spawn failure).

    A pool is meant to be driven by a single orchestrating domain;
    concurrent submissions to the same pool from several domains are
    not supported. *)

type t

val available_domains : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val default_domains : unit -> int
(** The [BGR_DOMAINS] environment variable when set to a positive
    integer, otherwise {!available_domains}. *)

val create : ?domains:int -> unit -> t
(** A pool of [domains] participants ([domains - 1] spawned helper
    domains plus the caller).  Defaults to {!default_domains}.
    [domains <= 1] yields a helper-free pool whose operations all run
    sequentially. *)

val domains : t -> int
(** Participant count (helpers + the calling domain). *)

val shutdown : t -> unit
(** Stop and join the helper domains.  Idempotent.  Operations on a
    shut-down pool run sequentially. *)

val get : ?domains:int -> unit -> t
(** The shared global pool, created lazily and grown (never shrunk) to
    satisfy the largest [domains] requested so far.  Never shut down —
    use {!create} for pools whose lifetime a test must control. *)

val in_worker : unit -> bool
(** True when called from inside a pool helper — the condition under
    which nested parallel operations degrade to sequential. *)

val assert_orchestrator : what:string -> unit
(** Raise a structured [Internal] error when called from a pool helper.
    The write-ahead journal serializes its appends through the
    router's sequential apply step; this assertion is how the journal
    enforces that no scoring worker ever reaches the commit path. *)

val warnings : t -> string list
(** Recorded degradation events (spawn failures, worker deaths,
    respawns), oldest first. *)

val degraded : t -> bool
(** Some helper slot is permanently retired: the pool runs below its
    nominal domain count. *)

val parallel_iter : ?chunk:int -> t -> (int -> unit) -> int -> unit
(** [parallel_iter pool f n] runs [f i] for every [i] in [0..n-1],
    each index exactly once, distributed over the pool in contiguous
    chunks ([chunk] indices per work item; default [n / (4 * domains)],
    at least 1). *)

val parallel_init : t -> int -> (int -> 'a) -> 'a array
(** Parallel [Array.init]: element order matches the sequential
    result exactly. *)

val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]; index-stable. *)

val parallel_list_map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map]; order-stable. *)

val parallel_reduce : t -> map:(int -> 'a) -> combine:('a -> 'a -> 'a) -> init:'a -> int -> 'a
(** [parallel_reduce pool ~map ~combine ~init n] maps [0..n-1] in
    parallel and folds the results with [combine] on the caller in
    index order — deterministic even for non-associative [combine]. *)
