type code =
  | Parse
  | Validate
  | Geometry
  | Unroutable
  | Deadline
  | Fault
  | Io_error
  | Internal

type t = {
  code : code;
  phase : string option;
  file : string option;
  line : int option;
  message : string;
}

exception Error of t

let make ?phase ?file ?line code fmt =
  Format.kasprintf (fun message -> { code; phase; file; line; message }) fmt

let raise_error ?phase ?file ?line code fmt =
  Format.kasprintf
    (fun message -> raise (Error { code; phase; file; line; message }))
    fmt

let code_name = function
  | Parse -> "parse"
  | Validate -> "validate"
  | Geometry -> "geometry"
  | Unroutable -> "unroutable"
  | Deadline -> "deadline"
  | Fault -> "fault"
  | Io_error -> "io"
  | Internal -> "internal"

let all_codes =
  [ Parse; Validate; Geometry; Unroutable; Deadline; Fault; Io_error; Internal ]

let code_of_name name = List.find_opt (fun c -> code_name c = name) all_codes

let exit_code = function
  | Parse -> 2
  | Validate | Geometry -> 3
  | Unroutable -> 4
  | Fault -> 5
  | Deadline -> 6
  | Io_error -> 7
  | Internal -> 10

let with_file file t = match t.file with Some _ -> t | None -> { t with file = Some file }
let with_phase phase t = match t.phase with Some _ -> t | None -> { t with phase = Some phase }

let to_string t =
  let body = Printf.sprintf "[%s] %s" (code_name t.code) t.message in
  let body =
    match t.phase with None -> body | Some p -> Printf.sprintf "[%s] (%s) %s" (code_name t.code) p t.message
  in
  match t.file with
  | None -> body
  | Some f -> Printf.sprintf "%s:%d: %s" f (Option.value t.line ~default:0) body

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* Render our own exception readably in uncaught-exception reports. *)
let () =
  Printexc.register_printer (function
    | Error t -> Some (Printf.sprintf "Bgr_error.Error (%s)" (to_string t))
    | _ -> None)
