type armed = {
  clock : unit -> float;  (* seconds *)
  mutable last : float;  (* monotonic guard: highest time observed *)
  start : float;
  deadline : float option;  (* absolute, in [clock]'s timebase *)
  passes : int option;
}

type t = Unlimited | Armed of armed

let unlimited = Unlimited

let default_clock () = Unix.gettimeofday ()

let make ?wall_ms ?phase_passes ?(clock = default_clock) () =
  match (wall_ms, phase_passes) with
  | None, None -> Unlimited
  | _ ->
    let start = clock () in
    Armed
      { clock;
        last = start;
        start;
        deadline = Option.map (fun ms -> start +. (ms /. 1000.0)) wall_ms;
        passes = phase_passes }

let is_unlimited = function Unlimited -> true | Armed _ -> false

let now a =
  let t = a.clock () in
  if t > a.last then a.last <- t;
  a.last

let expired = function
  | Unlimited -> false
  | Armed a -> ( match a.deadline with None -> false | Some d -> now a >= d)

let elapsed_ms = function Unlimited -> 0.0 | Armed a -> (now a -. a.start) *. 1000.0

let remaining_ms = function
  | Unlimited -> None
  | Armed a -> (
    match a.deadline with None -> None | Some d -> Some (Float.max 0.0 ((d -. now a) *. 1000.0)))

let phase_pass_limit t ~default =
  match t with
  | Unlimited -> default
  | Armed a -> ( match a.passes with None -> default | Some p -> min p default)
