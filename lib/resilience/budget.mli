(** Wall-clock and iteration budgets for the routing pipeline.

    A budget carries an optional wall-clock deadline (relative to the
    moment the budget was armed) and an optional per-phase iteration
    ceiling.  Deadlines are measured on a monotonicized clock: the
    default clock wraps [Unix.gettimeofday] so observed time never goes
    backwards even if the system clock is stepped.  Tests can inject a
    fake clock to make expiry fully deterministic. *)

type t

val unlimited : t
(** Never expires; no phase ceiling. *)

val make : ?wall_ms:float -> ?phase_passes:int -> ?clock:(unit -> float) -> unit -> t
(** [make ~wall_ms ()] arms a deadline [wall_ms] milliseconds from now.
    [phase_passes] caps the pass count of every improvement phase (the
    effective limit is the minimum of this ceiling and the phase's own
    option).  [clock] returns seconds and defaults to a monotonicized
    [Unix.gettimeofday]; the budget records its start time by calling
    it once. *)

val is_unlimited : t -> bool

val expired : t -> bool
(** True once the armed deadline has passed.  Always false for
    {!unlimited}. *)

val elapsed_ms : t -> float
(** Milliseconds since the budget was armed (0 for {!unlimited}). *)

val remaining_ms : t -> float option
(** [None] when no deadline is armed; never negative. *)

val phase_pass_limit : t -> default:int -> int
(** The effective pass ceiling for one phase: [min ceiling default],
    or [default] when the budget carries no ceiling. *)
