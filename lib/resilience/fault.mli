(** Deterministic fault injection.

    The pipeline is sprinkled with named {e injection sites} (e.g.
    ["io.parse"], ["router.improve"], ["par.worker"], ["par.spawn"],
    ["persist.append"], ["persist.snapshot"], ["persist.fsync"], and
    ["obs.sink"] — the last one fails a trace sink write, which [Obs]
    must degrade to a warning rather than fail the run).
    Each site calls {!trip} on every pass; with no plan installed the
    call is a few nanoseconds and never fires.  A {e plan} decides
    which hits of which sites fail:

    {v
    seed=42; par.worker:n=1; io.parse:p=0.05; router.improve:always
    v}

    - [SITE:n=K] — fire on exactly the K-th hit of [SITE] (1-based);
    - [SITE:p=F] — fire each hit with probability [F], drawn from a
      seeded PRNG ([seed=N], default 1);
    - [SITE:always] — fire on every hit.

    Entries are separated by [;] or [,].  The plan is installed either
    programmatically ({!with_plan} — what the tests use) or from the
    [BGR_FAULT_PLAN] environment variable (what the CI fault job uses);
    a malformed environment plan is reported once on stderr and
    ignored, never fatal.

    Counters live in the plan installation, so [n=K] is deterministic
    for a single-threaded site.  Sites hit concurrently from pool
    workers serialize on an internal mutex; {e which} domain observes
    the fatal hit may vary, but the recovery paths under test are
    required to converge to the same result regardless. *)

type plan

val builtin_sites : string list
(** Every injection site the pipeline calls, the registry
    {!parse_plan} validates against: ["io.parse"],
    ["router.improve"], ["par.worker"], ["par.spawn"],
    ["persist.append"], ["persist.snapshot"], ["persist.fsync"],
    ["obs.sink"], ["analyze.qlog"], and the serving daemon's
    ["serve.accept"], ["serve.read"], ["serve.write"], ["serve.job"],
    ["serve.worker.spawn"] (supervisor side, before the worker process
    is forked), ["serve.worker.hang"] and ["serve.worker.kill"] (both
    tripped {e inside} the worker subprocess, attempt-gated: with
    [n=K] the K-th attempt's worker hangs / SIGKILLs itself — see
    [Worker.main]). *)

val declare_site : string -> unit
(** Register an extra site name (idempotent).  Tests exercising the
    plan machinery with synthetic sites declare them here so
    {!parse_plan} accepts them. *)

val known_site : string -> bool
(** The site is in {!builtin_sites} or was {!declare_site}d. *)

val parse_plan : string -> (plan, string) result
(** Parse the [seed=N; SITE:n=K | SITE:p=F | SITE:always] grammar.
    A plan naming the same site twice is rejected — the clauses would
    shadow each other and the plan would not test what it says.  A
    plan naming a site outside the {!builtin_sites} /
    {!declare_site} registry is rejected too: an unknown site would
    silently never fire and the plan would test nothing. *)

val with_plan : plan -> (unit -> 'a) -> 'a
(** Install [plan] with fresh counters, run the thunk, restore the
    previous installation (counters included). *)

val active : unit -> bool
(** A plan (programmatic or environment) is installed and non-empty. *)

val trip : string -> bool
(** [trip site] records a hit at [site] and reports whether the plan
    fires there now.  Always false with no plan installed. *)

val check : ?phase:string -> string -> unit
(** {!trip}, raising [Bgr_error.Error] with code [Fault] when it
    fires. *)

val fired : string -> int
(** How many times [site] has fired under the current installation. *)
