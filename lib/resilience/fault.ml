type mode = Nth of int | Prob of float | Always

type plan = { seed : int; rules : (string * mode) list }

(* --- the site registry ------------------------------------------------ *)

(* Every injection site the pipeline actually calls.  A plan naming a
   site outside this registry would silently never fire — the test it
   belongs to would pass vacuously — so parse_plan rejects it. *)
let builtin_sites =
  [ "io.parse";
    "router.improve";
    "par.worker";
    "par.spawn";
    "persist.append";
    "persist.snapshot";
    "persist.fsync";
    "obs.sink";
    "analyze.qlog";
    "serve.accept";
    "serve.read";
    "serve.write";
    "serve.job";
    "serve.worker.spawn";
    "serve.worker.hang";
    "serve.worker.kill" ]

let declared_sites : (string, unit) Hashtbl.t = Hashtbl.create 8

let declare_site s = Hashtbl.replace declared_sites s ()

let known_site s = List.mem s builtin_sites || Hashtbl.mem declared_sites s

let parse_entry s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "fault entry %S has no ':' (want SITE:n=K | SITE:p=F | SITE:always)" s)
  | Some i ->
    let site = String.trim (String.sub s 0 i) in
    let spec = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
    if site = "" then Error (Printf.sprintf "fault entry %S names no site" s)
    else begin
      match String.split_on_char '=' spec with
      | [ "always" ] -> Ok (site, Always)
      | [ "n"; k ] -> (
        match int_of_string_opt k with
        | Some k when k >= 1 -> Ok (site, Nth k)
        | Some _ | None -> Error (Printf.sprintf "fault entry %S: n wants a positive integer" s))
      | [ "p"; f ] -> (
        match float_of_string_opt f with
        | Some p when p >= 0.0 && p <= 1.0 -> Ok (site, Prob p)
        | Some _ | None -> Error (Printf.sprintf "fault entry %S: p wants a probability in [0,1]" s))
      | _ -> Error (Printf.sprintf "fault entry %S: unknown mode %S" s spec)
    end

let parse_plan text =
  let entries =
    String.split_on_char ';' text
    |> List.concat_map (String.split_on_char ',')
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go seed rules = function
    | [] -> Ok { seed; rules = List.rev rules }
    | e :: rest ->
      if String.length e > 5 && String.sub e 0 5 = "seed=" then begin
        match int_of_string_opt (String.sub e 5 (String.length e - 5)) with
        | Some s -> go s rules rest
        | None -> Error (Printf.sprintf "fault plan: bad seed in %S" e)
      end
      else begin
        match parse_entry e with
        | Ok (site, _) when List.mem_assoc site rules ->
          (* Silently taking the last (or first) clause would make a
             typo'd plan test something other than what it says. *)
          Error (Printf.sprintf "fault plan: duplicate clause for site %S" site)
        | Ok (site, _) when not (known_site site) ->
          (* An unknown site would never fire and the plan would test
             nothing; reject it at the boundary instead. *)
          Error
            (Printf.sprintf "fault plan: unknown site %S (known sites: %s)" site
               (String.concat ", " builtin_sites))
        | Ok r -> go seed (r :: rules) rest
        | Error m -> Error m
      end
  in
  go 1 [] entries

(* --- installation ---------------------------------------------------- *)

type installation = {
  i_plan : plan;
  hits : (string, int) Hashtbl.t;
  fired_tbl : (string, int) Hashtbl.t;
  mutable rng : int;
}

let mk_installation plan =
  { i_plan = plan;
    hits = Hashtbl.create 8;
    fired_tbl = Hashtbl.create 8;
    rng = (plan.seed * 2654435761) lxor 0x9e3779b9 }

(* The active installation.  Sites are hit from pool workers too, so
   all access serializes on [m]. *)
let m = Mutex.create ()
let current : installation option ref = ref None
let env_loaded = ref false

let load_env_locked () =
  if not !env_loaded then begin
    env_loaded := true;
    match Sys.getenv_opt "BGR_FAULT_PLAN" with
    | None | Some "" -> ()
    | Some text -> (
      match parse_plan text with
      | Ok plan -> current := Some (mk_installation plan)
      | Error msg -> Printf.eprintf "BGR_FAULT_PLAN ignored: %s\n%!" msg)
  end

let with_plan plan f =
  Mutex.lock m;
  load_env_locked ();
  let saved = !current in
  current := Some (mk_installation plan);
  Mutex.unlock m;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock m;
      current := saved;
      Mutex.unlock m)
    f

let active () =
  Mutex.lock m;
  load_env_locked ();
  let r = match !current with Some i -> i.i_plan.rules <> [] | None -> false in
  Mutex.unlock m;
  r

let next_unit inst =
  (* Deterministic 48-bit LCG (Java's constants); only consumed when a
     [p=] rule is hit. *)
  inst.rng <- ((inst.rng * 0x5DEECE66D) + 0xB) land 0xFFFFFFFFFFFF;
  float_of_int ((inst.rng lsr 24) land 0xFFFFFF) /. float_of_int 0x1000000

let trip site =
  Mutex.lock m;
  load_env_locked ();
  let fire =
    match !current with
    | None -> false
    | Some inst -> (
      match List.assoc_opt site inst.i_plan.rules with
      | None -> false
      | Some mode ->
        let n = 1 + Option.value (Hashtbl.find_opt inst.hits site) ~default:0 in
        Hashtbl.replace inst.hits site n;
        let fire =
          match mode with Nth k -> n = k | Always -> true | Prob p -> next_unit inst < p
        in
        if fire then
          Hashtbl.replace inst.fired_tbl site
            (1 + Option.value (Hashtbl.find_opt inst.fired_tbl site) ~default:0);
        fire)
  in
  Mutex.unlock m;
  fire

let check ?phase site =
  if trip site then
    raise (Bgr_error.Error (Bgr_error.make ?phase Bgr_error.Fault "injected fault at site %s" site))

let fired site =
  Mutex.lock m;
  let r =
    match !current with
    | None -> 0
    | Some inst -> Option.value (Hashtbl.find_opt inst.fired_tbl site) ~default:0
  in
  Mutex.unlock m;
  r
