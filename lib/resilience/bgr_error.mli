(** Structured errors for the whole routing pipeline.

    Every failure the pipeline can report — malformed design text,
    semantic validation, illegal geometry, unroutable nets, exhausted
    budgets, injected faults — is carried as one value with enough
    structure for a service (or the CLI) to render it uniformly as

    {v file:line: [code] message v}

    and to map it to a documented process exit code.  [line] is
    1-based; line [0] means "the whole file" (semantic errors with no
    single offending line). *)

type code =
  | Parse  (** malformed design text (bad token, bad arity, truncation) *)
  | Validate  (** well-formed text describing an inconsistent design *)
  | Geometry  (** illegal floorplan geometry (overlaps, out-of-chip) *)
  | Unroutable  (** a net's candidate graph cannot connect its terminals *)
  | Deadline  (** a wall-clock or iteration budget was exhausted *)
  | Fault  (** an injected fault (see {!Fault}) *)
  | Io_error  (** the file could not be read at all *)
  | Internal  (** an invariant violation inside the router *)

type t = {
  code : code;
  phase : string option;  (** pipeline phase, e.g. ["load"], ["improve_delay"] *)
  file : string option;  (** source design file, when known *)
  line : int option;  (** 1-based line in [file]; [0] = whole file *)
  message : string;
}

exception Error of t

val make :
  ?phase:string -> ?file:string -> ?line:int -> code -> ('a, Format.formatter, unit, t) format4 -> 'a
(** [make code fmt ...] builds an error value. *)

val raise_error :
  ?phase:string -> ?file:string -> ?line:int -> code -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Like {!make} but raises {!Error}. *)

val code_name : code -> string

val all_codes : code list
(** Every code, in declaration order. *)

val code_of_name : string -> code option
(** Inverse of {!code_name} — how a code round-trips a process or wire
    boundary (the daemon's worker pipe, the client CLI's exit-code
    mapping).  [None] for names outside the taxonomy (e.g. the wire's
    ["canceled"] and ["quarantined"], which are daemon verdicts, not
    pipeline errors). *)

val exit_code : code -> int
(** The documented process exit code for each failure class:
    [Parse] 2, [Validate] 3, [Geometry] 3, [Unroutable] 4, [Fault] 5,
    [Deadline] 6, [Io_error] 7, [Internal] 10. *)

val with_file : string -> t -> t
(** Attach a file name when the error does not carry one yet. *)

val with_phase : string -> t -> t
(** Attach a phase when the error does not carry one yet. *)

val to_string : t -> string
(** [file:line: [code] message]; omits the [file:line:] prefix when no
    file is known, and renders a missing line as [0]. *)

val pp : Format.formatter -> t -> unit
