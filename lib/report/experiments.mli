(** The experiment harness regenerating every table and figure of the
    paper's evaluation (DESIGN.md Sec. 4), shared by `bench/main.exe`
    and `bin/bgr_run.exe`.

    Absolute numbers differ from the paper (the circuits are synthetic
    stand-ins, the machine is not a SPARCstation 2); the {e shape} —
    who wins, by roughly what factor — is what EXPERIMENTS.md records
    against the paper's rows. *)

type run = {
  case : Suite.case;
  constrained : Flow.measurement;
  unconstrained : Flow.measurement;
}

val run_case : ?domains:int -> Suite.case -> run
(** Route the case both with and without constraints.  [domains] is
    passed to {!Router.options.domains} ([0] = auto). *)

val run_suite : ?cases:Suite.case list -> ?domains:int -> unit -> run list
(** Defaults to [Suite.all ()].  With more than one domain ([0] = auto
    resolves via [BGR_DOMAINS] / available cores) the independent
    (case, with/without-constraints) measurements are routed
    concurrently on the shared domain pool; results are identical to a
    sequential run apart from the CPU-time column. *)

val table1 : Suite.case list -> Table.t
(** "Test bipolar circuits": cells, nets, constraints per case. *)

val table2 : run list -> Table.t * Table.t
(** "Experimental results": delay / area / length / CPU, with and
    without constraints. *)

val table3 : run list -> Table.t
(** "Difference from the lower bound", plus the average reduction (the
    paper's 17.6% headline) appended as a summary row. *)

val average_reduction_pct : run list -> float
(** Mean over cases of [(unconstrained - constrained) / lower_bound],
    in percent — the headline metric. *)

val fig4 : Flow.outcome -> channel:int -> string
(** ASCII rendering of a channel's [d_M]/[d_m] chart with the
    C/NC parameters (the paper's Fig. 4). *)

val fig4_of_density : Density.t -> channel:int -> string
(** Same, from a live density state (useful mid-routing, when
    [d_M > d_m]). *)

val fig4_worst_channel : Flow.outcome -> int
(** The most congested channel — the natural Fig. 4 subject. *)

type ablation_row = {
  ab_name : string;
  ab_delay_ps : float;
  ab_area_mm2 : float;
  ab_length_mm : float;
  ab_violations : int;
}

val ablation_a1 : Suite.case -> Table.t
(** Selection-criteria ordering: paper order (delay first) vs. the
    area-phase ordering used throughout. *)

val ablation_a3 : Suite.case -> Table.t
(** CL estimator: tentative tree (Sec. 3.2) vs. star/half-perimeter. *)

val ablation_a4 : Suite.case -> Table.t
(** Delay model during routing: lumped capacitance (Eq. 1) vs. the
    Elmore RC extension. *)

val ablation_a5 : Suite.case -> Table.t
(** Routing scheme: the paper's concurrent edge deletion vs. a
    sequential congestion-priced net-at-a-time baseline (the related
    work the paper contrasts with). *)

val ablation_a6 : Suite.case -> Table.t
(** Detailed-routing substrate: left-edge vs. greedy channel router —
    how sensitive the Table 2 metrology is to the channel router
    choice. *)

val ablation_a8 : Suite.case -> Table.t
(** Pin-side track bias in the left-edge channel router (an extension
    beyond the paper): same track counts, shorter vertical jogs. *)

val ablation_a7 : unit -> Table.t
(** Clock pitch width vs. clock skew (Elmore sink-delay spread) — the
    quantitative version of Sec. 4.2's motivation for multi-pitch
    wires. *)

val rc_vs_lumped_worst : Flow.outcome -> float
(** Worst per-net ratio of Elmore wire delay over the lumped [CL*Td]
    delay on the final trees — close to 1 in the bipolar regime, which
    is the paper's justification for the capacitance-only model. *)
