type snapshot = {
  snap_trunk_um : float array;
  snap_branch_um : float array;
  snap_hpwl_um : float array;
  snap_peak_density : int array;
}

type t = {
  n_nets : int;
  mean_detour : float;
  max_detour : float;
  p95_detour : float;
  histogram : (float * float * int) list;
  total_trunk_mm : float;
  total_branch_mm : float;
  total_hpwl_mm : float;
}

let buckets =
  (* detours below 1.0 happen when a port uses a candidate column closer
     than its nominal position *)
  [ (0.0, 1.0); (1.0, 1.1); (1.1, 1.25); (1.25, 1.5); (1.5, 2.0); (2.0, 3.0); (3.0, infinity) ]

(* The one walk over all nets (and all channels).  Everything the
   reports derive — detour statistics here, the density row in
   [Signoff] — comes out of this snapshot, so a caller producing a
   combined report pays for the walk once. *)
let snapshot router =
  let fp = Router.floorplan router in
  let netlist = Floorplan.netlist fp in
  let dims = Floorplan.dims fp in
  let n_nets = Netlist.n_nets netlist in
  let trunk = Array.make n_nets 0.0 in
  let branch = Array.make n_nets 0.0 in
  let hpwl = Array.make n_nets 0.0 in
  for net = 0 to n_nets - 1 do
    let rg = Router.routing_graph router net in
    let tree = Router.tree_edges router net in
    List.iter
      (fun eid ->
        let geo = Routing_graph.geometric_length_um rg ~edge_ids:[ eid ] in
        match Routing_graph.edge_kind rg eid with
        | Routing_graph.Trunk _ -> trunk.(net) <- trunk.(net) +. geo
        | Routing_graph.Branch _ -> branch.(net) <- branch.(net) +. geo
        | Routing_graph.Correspondence _ -> ())
      tree;
    (* True geometric floor: bbox width horizontally, and only the rows
       the net *must* cross vertically (adjacent rows share a channel,
       so a row-0-to-row-1 net needs no crossing at all). *)
    let bbox = Floorplan.net_bbox fp net in
    let n = Netlist.net netlist net in
    let channel_sets =
      List.map (Floorplan.endpoint_channels fp) (n.Netlist.driver :: n.Netlist.sinks)
    in
    let lo =
      List.fold_left (fun acc cs -> min acc (List.fold_left max min_int cs)) max_int channel_sets
    in
    let hi =
      List.fold_left (fun acc cs -> max acc (List.fold_left min max_int cs)) min_int channel_sets
    in
    let crossings = max 0 (hi - lo) in
    hpwl.(net) <- Dims.h_um dims (Rect.width bbox) +. Dims.v_um dims ~rows:crossings
  done;
  let dens = Router.density router in
  { snap_trunk_um = trunk;
    snap_branch_um = branch;
    snap_hpwl_um = hpwl;
    snap_peak_density =
      Array.init (Density.n_channels dens) (fun channel -> Density.cM dens ~channel) }

let peak_density snap = Array.fold_left max 0 snap.snap_peak_density

let of_router ?snapshot:snap router =
  let snap = match snap with Some s -> s | None -> snapshot router in
  let n_nets_total = Array.length snap.snap_hpwl_um in
  let detours = ref [] in
  let trunk_um = ref 0.0 and branch_um = ref 0.0 and hpwl_um = ref 0.0 in
  for net = 0 to n_nets_total - 1 do
    let t_um = snap.snap_trunk_um.(net) and b_um = snap.snap_branch_um.(net) in
    let hp = snap.snap_hpwl_um.(net) in
    trunk_um := !trunk_um +. t_um;
    branch_um := !branch_um +. b_um;
    hpwl_um := !hpwl_um +. hp;
    if hp > 1e-9 then detours := ((t_um +. b_um) /. hp) :: !detours
  done;
  let detours = Array.of_list !detours in
  Array.sort Float.compare detours;
  let n = Array.length detours in
  let mean =
    if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 detours /. float_of_int n
  in
  let p95 = if n = 0 then 0.0 else detours.(min (n - 1) (n * 95 / 100)) in
  let histogram =
    List.map
      (fun (lo, hi) ->
        (lo, hi, Array.fold_left (fun acc d -> if d >= lo && d < hi then acc + 1 else acc) 0 detours))
      buckets
  in
  { n_nets = n;
    mean_detour = mean;
    max_detour = (if n = 0 then 0.0 else detours.(n - 1));
    p95_detour = p95;
    histogram;
    total_trunk_mm = Dims.mm_of_um !trunk_um;
    total_branch_mm = Dims.mm_of_um !branch_um;
    total_hpwl_mm = Dims.mm_of_um !hpwl_um }

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "route quality over %d nets: detour mean %.2f, p95 %.2f, max %.2f\n\
        trunks %.2f mm + row crossings %.2f mm vs HPWL %.2f mm\n"
       t.n_nets t.mean_detour t.p95_detour t.max_detour t.total_trunk_mm t.total_branch_mm
       t.total_hpwl_mm);
  let biggest = List.fold_left (fun acc (_, _, c) -> max acc c) 1 t.histogram in
  List.iter
    (fun (lo, hi, count) ->
      let bar = String.make (count * 40 / biggest) '#' in
      let label =
        if hi = infinity then Printf.sprintf ">= %.2f" lo else Printf.sprintf "%.2f-%.2f" lo hi
      in
      Buffer.add_string buf (Printf.sprintf "  %-10s %4d %s\n" label count bar))
    t.histogram;
  Buffer.contents buf
