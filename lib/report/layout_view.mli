(** ASCII rendering of floorplans and routed channels, for examples and
    debugging.

    {!floorplan} draws each cell row as a band of cell glyphs and feed
    slots, channels between them scaled to their track counts;
    {!channel_tracks} draws one routed channel track by track. *)

val floorplan : ?channel_tracks:int array -> Floorplan.t -> string
(** One text row per cell row plus channel separators.  Cells print the
    first letter of their instance name ('*' for multi-column cells'
    continuation), feed slots '+' (flagged slots print their width
    digit), empty columns '.'.  With [channel_tracks], each channel is
    annotated with its height. *)

val channel_tracks : Channel_router.result -> width:int -> string
(** The channel's tracks top-down; each piece prints the last character
    of its net id, vacant columns '.'. *)
