(** Endpoint slack distribution across a whole constraint set — the
    summary a designer reads before deciding where to spend routing
    effort. *)

type t = {
  n_endpoints : int;  (** endpoint instances counted (per constraint) *)
  worst_ps : float;
  total_negative_ps : float;  (** sum of negative slacks (TNS analogue) *)
  n_violating : int;
  buckets : (float * float * int) list;  (** (lo, hi, count), ascending *)
}

val of_sta : Sta.t -> t
(** Profile every reachable endpoint of every constraint at the current
    wiring state. *)

val render : t -> string
(** Plain-text summary with an ASCII histogram. *)

val worst_endpoints : ?n:int -> Sta.t -> Table.t
(** The [n] (default 8) worst endpoints across every constraint as a
    table — constraint id, endpoint name, slack and path delay — the
    signoff companion to the histogram. *)
