(** Route-quality statistics: how far each routed net sits above its
    half-perimeter bound, and where the wirelength went.

    The detour factor of a net is its routed geometric length (trunks +
    row crossings) divided by its HPWL; 1.0 means the tree is as short
    as any route could be. *)

type t = {
  n_nets : int;
  mean_detour : float;
  max_detour : float;
  p95_detour : float;
  histogram : (float * float * int) list;
      (** (bucket lo, bucket hi, count) over detour factors *)
  total_trunk_mm : float;
  total_branch_mm : float;  (** row crossings *)
  total_hpwl_mm : float;
}

val of_router : Router.t -> t
(** Statistics over all nets with a nonzero HPWL. *)

val render : t -> string
(** Plain-text report with an ASCII histogram. *)
