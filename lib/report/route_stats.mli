(** Route-quality statistics: how far each routed net sits above its
    half-perimeter bound, and where the wirelength went.

    The detour factor of a net is its routed geometric length (trunks +
    row crossings) divided by its HPWL; 1.0 means the tree is as short
    as any route could be. *)

type snapshot = {
  snap_trunk_um : float array;  (** per-net routed trunk length *)
  snap_branch_um : float array;  (** per-net row-crossing length *)
  snap_hpwl_um : float array;  (** per-net half-perimeter floor *)
  snap_peak_density : int array;  (** per-channel peak density C_M *)
}
(** One walk over all nets and channels; every report figure derives
    from it.  Build it once and hand it to each consumer ({!of_router},
    {!Signoff.report}) instead of letting them re-walk independently. *)

val snapshot : Router.t -> snapshot

val peak_density : snapshot -> int
(** Largest per-channel peak density. *)

type t = {
  n_nets : int;
  mean_detour : float;
  max_detour : float;
  p95_detour : float;
  histogram : (float * float * int) list;
      (** (bucket lo, bucket hi, count) over detour factors *)
  total_trunk_mm : float;
  total_branch_mm : float;  (** row crossings *)
  total_hpwl_mm : float;
}

val of_router : ?snapshot:snapshot -> Router.t -> t
(** Statistics over all nets with a nonzero HPWL.  Pass a pre-built
    [snapshot] to reuse a walk another report section already paid
    for; without one, a fresh snapshot is taken internally. *)

val render : t -> string
(** Plain-text report with an ASCII histogram. *)
