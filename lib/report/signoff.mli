(** The whole-design sign-off report: everything a tape-out review
    would ask of the routing step, in one text blob — measurement,
    independent verification, route quality, and the slack
    distribution. *)

val report : ?snapshot:Route_stats.snapshot -> Flow.outcome -> string
(** Pass a pre-built {!Route_stats.snapshot} to share one net/channel
    walk between the summary table and the route-quality section;
    without one, the snapshot is taken internally (once — the sections
    still share it). *)

val print : ?snapshot:Route_stats.snapshot -> Flow.outcome -> unit
