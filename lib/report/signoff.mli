(** The whole-design sign-off report: everything a tape-out review
    would ask of the routing step, in one text blob — measurement,
    independent verification, route quality, and the slack
    distribution. *)

val report : Flow.outcome -> string

val print : Flow.outcome -> unit
