let attrs_string attrs =
  String.concat " "
    (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (Obs.Trace.attr_to_string v)) attrs)

let slowest_spans ?(n = 10) () =
  let spans =
    List.filter (fun sp -> sp.Obs.Trace.sp_dur_us > 0.0) (Obs.Trace.completed ())
  in
  let sorted =
    List.stable_sort
      (fun a b -> Float.compare b.Obs.Trace.sp_dur_us a.Obs.Trace.sp_dur_us)
      spans
  in
  let t =
    Table.create
      ~title:(Printf.sprintf "Slowest trace spans (top %d of %d)" n (List.length spans))
      ~columns:[ "span"; "ms"; "depth"; "attributes" ]
  in
  let rec take k = function
    | sp :: rest when k > 0 ->
      Table.add_row t
        [ sp.Obs.Trace.sp_name;
          Table.f2 (sp.Obs.Trace.sp_dur_us /. 1000.0);
          Table.fint sp.Obs.Trace.sp_depth;
          attrs_string sp.Obs.Trace.sp_attrs ];
      take (k - 1) rest
    | _ -> ()
  in
  take n sorted;
  t

(* Re-registration returns the family Router registered at load time
   (kind, labels, and buckets all match); this module never creates a
   competing definition. *)
let phase_family = Obs.Metrics.gauge "bgr_phase_duration_seconds" ~labels:[ "phase" ]

let phase_durations () =
  let t = Table.create ~title:"Phase durations (last run)" ~columns:[ "phase"; "seconds" ] in
  List.iter
    (fun (labels, v) ->
      let phase = match labels with (_, p) :: _ -> p | [] -> "?" in
      Table.add_row t [ phase; Table.f3 v ])
    (Obs.Metrics.series phase_family);
  t
