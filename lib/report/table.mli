(** Plain-text table rendering for the experiment harness.

    Right-aligns numeric-looking cells, left-aligns the rest, and draws
    a header rule — enough to print Tables 1-3 the way the paper lays
    them out. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument on a column-count mismatch. *)

val render : t -> string

val to_csv : t -> string
(** Comma-separated rendering (RFC-4180-style quoting), header first;
    the title is not included. *)

val print : t -> unit
(** [render] to stdout, followed by a blank line. *)

(** {1 Cell formatting helpers} *)

val fint : int -> string
val f1 : float -> string
(** One decimal; "n/a" for nan, "-" for infinities. *)

val f2 : float -> string
val f3 : float -> string
val pct : float -> string
(** One decimal plus a percent sign. *)
