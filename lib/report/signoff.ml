let report ?snapshot (outcome : Flow.outcome) =
  let buf = Buffer.create 4096 in
  let m = outcome.Flow.o_measurement in
  (* One net/channel walk feeds both the density row and the
     route-quality section; callers that already hold a snapshot (the
     CLI view path) pass it in instead of paying for another walk. *)
  let snap =
    match snapshot with
    | Some s -> s
    | None -> Route_stats.snapshot outcome.Flow.o_router
  in
  let t = Table.create ~title:"Sign-off summary" ~columns:[ "metric"; "value" ] in
  let add k v = Table.add_row t [ k; v ] in
  add "critical-path delay (ps)" (Table.f1 m.Flow.m_delay_ps);
  add "half-perimeter bound (ps)" (Table.f1 m.Flow.m_lower_bound_ps);
  add "gap over bound"
    (Table.pct (Lower_bound.gap_percent ~delay_ps:m.Flow.m_delay_ps ~bound_ps:m.Flow.m_lower_bound_ps));
  add "worst margin (ps)" (Table.f1 m.Flow.m_margin_ps);
  add "violated constraints" (Table.fint m.Flow.m_violations);
  add "chip area (mm2)" (Table.f3 m.Flow.m_area_mm2);
  add "total wiring (mm)" (Table.f1 m.Flow.m_length_mm);
  add "chip width (pitches)" (Table.fint m.Flow.m_chip_width);
  add "channel tracks (total)" (Table.fint (Array.fold_left ( + ) 0 m.Flow.m_tracks));
  add "peak channel density (tracks)" (Table.fint (Route_stats.peak_density snap));
  add "feed-cell insertion rounds" (Table.fint m.Flow.m_insert_rounds);
  add "recognized differential pairs" (Table.fint m.Flow.m_recognized_pairs);
  add "channel doglegs / breaks"
    (Printf.sprintf "%d / %d" m.Flow.m_channel_doglegs m.Flow.m_channel_violations);
  add "CPU (s)" (Table.f2 m.Flow.m_cpu_s);
  add "router stopped because" m.Flow.m_stopped_because;
  add "worker domains" (Table.fint m.Flow.m_domains);
  add "deletion hash" (string_of_int m.Flow.m_deletion_hash);
  Buffer.add_string buf (Table.render t);
  List.iter
    (fun w -> Buffer.add_string buf (Printf.sprintf "warning: degraded scoring pool: %s\n" w))
    m.Flow.m_par_warnings;
  Buffer.add_char buf '\n';
  (* Independent verification (deliberately does its own recount: it is
     the check on everything else, including the snapshot). *)
  let v = Verify.routed outcome.Flow.o_router in
  Buffer.add_string buf (Format.asprintf "%a" Verify.pp v);
  Buffer.add_char buf '\n';
  (* Route quality, from the shared snapshot. *)
  Buffer.add_string buf
    (Route_stats.render (Route_stats.of_router ~snapshot:snap outcome.Flow.o_router));
  Buffer.add_char buf '\n';
  (* Timing profile. *)
  (match outcome.Flow.o_sta with
  | Some sta -> Buffer.add_string buf (Slack_profile.render (Slack_profile.of_sta sta))
  | None -> Buffer.add_string buf "no timing constraints attached\n");
  Buffer.contents buf

let print ?snapshot outcome = print_string (report ?snapshot outcome)
