type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;  (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: column count mismatch";
  t.rows <- row :: t.rows

let is_numeric s =
  s <> ""
  && String.for_all (fun c -> (c >= '0' && c <= '9') || List.mem c [ '.'; '-'; '+'; '%'; 'e' ]) s

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let n = List.length t.columns in
  let width j =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row j))) 0 all
  in
  let widths = List.init n width in
  let pad j s =
    let w = List.nth widths j in
    let fill = String.make (w - String.length s) ' ' in
    if is_numeric s then fill ^ s else s ^ fill
  in
  let line row = String.concat "  " (List.mapi pad row) in
  let rule = String.make (String.length (line t.columns)) '-' in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (t.title ^ "\n");
  Buffer.add_string buf (line t.columns ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (line row ^ "\n")) rows;
  Buffer.contents buf

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let line row = String.concat "," (List.map csv_cell row) in
  String.concat "\n" (List.map line (t.columns :: List.rev t.rows)) ^ "\n"

let print t =
  print_string (render t);
  print_newline ()

let fint = string_of_int

let special f =
  if Float.is_nan f then Some "n/a" else if Float.abs f = infinity then Some "-" else None

let f1 f = match special f with Some s -> s | None -> Printf.sprintf "%.1f" f
let f2 f = match special f with Some s -> s | None -> Printf.sprintf "%.2f" f
let f3 f = match special f with Some s -> s | None -> Printf.sprintf "%.3f" f
let pct f = match special f with Some s -> s | None -> Printf.sprintf "%.1f%%" f
