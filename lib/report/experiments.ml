type run = {
  case : Suite.case;
  constrained : Flow.measurement;
  unconstrained : Flow.measurement;
}

let run_case ?(domains = 0) case =
  let options = { Router.default_options with Router.domains } in
  let con = Flow.run ~options ~timing_driven:true case.Suite.input in
  let unc = Flow.run ~options ~timing_driven:false case.Suite.input in
  { case; constrained = con.Flow.o_measurement; unconstrained = unc.Flow.o_measurement }

let run_suite ?cases ?(domains = 0) () =
  let cases = match cases with Some c -> c | None -> Suite.all () in
  let n = if domains = 0 then Par.default_domains () else max 1 domains in
  if n <= 1 || Par.in_worker () then List.map (run_case ~domains:n) cases
  else begin
    (* One job per (case, constrained?) measurement — twice the
       parallel width of a per-case split.  Routing a case is
       deterministic whatever engine runs it (routers built inside pool
       workers score sequentially; see Router.options.domains), so the
       parallel suite reproduces the sequential suite's numbers
       exactly, CPU-time column aside. *)
    let pool = Par.get ~domains:n () in
    let options = { Router.default_options with Router.domains = n } in
    let jobs =
      Array.of_list (List.concat_map (fun case -> [ (case, true); (case, false) ]) cases)
    in
    let measurements =
      Par.parallel_map pool
        (fun (case, timing) ->
          (Flow.run ~options ~timing_driven:timing case.Suite.input).Flow.o_measurement)
        jobs
    in
    List.mapi
      (fun i case ->
        { case; constrained = measurements.(2 * i); unconstrained = measurements.((2 * i) + 1) })
      cases
  end

let table1 cases =
  let t =
    Table.create ~title:"Table 1: test bipolar circuits (synthetic stand-ins)"
      ~columns:[ "Data"; "Circuit"; "Placement"; "cells"; "nets"; "consts."; "diff pairs" ]
  in
  List.iter
    (fun (case : Suite.case) ->
      let stats = Netlist.stats case.Suite.input.Flow.netlist in
      Table.add_row t
        [ case.Suite.case_name;
          case.Suite.circuit;
          Placement.style_name case.Suite.placement;
          Table.fint stats.Netlist.n_cells;
          Table.fint stats.Netlist.n_nets_total;
          Table.fint (List.length case.Suite.input.Flow.constraints);
          Table.fint stats.Netlist.n_diff_pairs ])
    cases;
  t

let measurement_row name (m : Flow.measurement) =
  [ name;
    Table.f1 m.Flow.m_delay_ps;
    Table.f3 m.Flow.m_area_mm2;
    Table.f1 m.Flow.m_length_mm;
    Table.f2 m.Flow.m_cpu_s;
    Table.fint m.Flow.m_violations ]

let table2 runs =
  let columns = [ "Data"; "Delay(ps)"; "Area(mm2)"; "Length(mm)"; "CPU(s)"; "viol" ] in
  let w = Table.create ~title:"Table 2a: routing results WITH constraints" ~columns in
  let wo = Table.create ~title:"Table 2b: routing results WITHOUT constraints" ~columns in
  List.iter
    (fun r ->
      Table.add_row w (measurement_row r.case.Suite.case_name r.constrained);
      Table.add_row wo (measurement_row r.case.Suite.case_name r.unconstrained))
    runs;
  (w, wo)

let reduction_pct r =
  let lb = r.constrained.Flow.m_lower_bound_ps in
  if Float.is_nan lb || lb <= 0.0 then nan
  else (r.unconstrained.Flow.m_delay_ps -. r.constrained.Flow.m_delay_ps) /. lb *. 100.0

let average_reduction_pct runs =
  let vals = List.filter_map (fun r ->
      let v = reduction_pct r in
      if Float.is_nan v then None else Some v)
      runs
  in
  match vals with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 vals /. float_of_int (List.length vals)

let table3 runs =
  let t =
    Table.create ~title:"Table 3: difference from the lower bound"
      ~columns:
        [ "Data"; "lower bound(ps)"; "Constrained"; "Unconstrained"; "reduction (% of lb)" ]
  in
  List.iter
    (fun r ->
      let lb = r.constrained.Flow.m_lower_bound_ps in
      Table.add_row t
        [ r.case.Suite.case_name;
          Table.f1 lb;
          Table.pct
            (Lower_bound.gap_percent ~delay_ps:r.constrained.Flow.m_delay_ps ~bound_ps:lb);
          Table.pct
            (Lower_bound.gap_percent ~delay_ps:r.unconstrained.Flow.m_delay_ps ~bound_ps:lb);
          Table.pct (reduction_pct r) ])
    runs;
  Table.add_row t [ "average"; ""; ""; ""; Table.pct (average_reduction_pct runs) ];
  t

let fig4_worst_channel (outcome : Flow.outcome) =
  let dens = Router.density outcome.Flow.o_router in
  let best = ref 0 and best_v = ref (-1) in
  for c = 0 to Density.n_channels dens - 1 do
    let v = Density.cM dens ~channel:c in
    if v > !best_v then begin
      best_v := v;
      best := c
    end
  done;
  !best

let fig4_of_density dens ~channel =
  let chart = Density.chart dens ~channel in
  let c_max = Density.cM dens ~channel in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "Fig. 4: density chart of channel %d  (C_M=%d NC_M=%d  C_m=%d NC_m=%d)\n" channel c_max
       (Density.ncM dens ~channel) (Density.cm dens ~channel) (Density.ncm dens ~channel));
  (* Rows from the maximum density down to 1; '#' marks d_M, '*' marks
     columns where even the bridge chart d_m reaches the level. *)
  let width = Array.length chart in
  let step = max 1 (width / 100) in
  for level = c_max downto 1 do
    Buffer.add_string buf (Printf.sprintf "%3d |" level);
    let x = ref 0 in
    while !x < width do
      let d_max, d_min = chart.(!x) in
      Buffer.add_char buf (if d_min >= level then '*' else if d_max >= level then '#' else ' ');
      x := !x + step
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf ("    +" ^ String.make ((width + step - 1) / step) '-' ^ "> x\n");
  Buffer.add_string buf "    ('#' = d_M, '*' = d_m: bridge trunks that can no longer be deleted)\n";
  Buffer.contents buf

let fig4 (outcome : Flow.outcome) ~channel =
  fig4_of_density (Router.density outcome.Flow.o_router) ~channel

type ablation_row = {
  ab_name : string;
  ab_delay_ps : float;
  ab_area_mm2 : float;
  ab_length_mm : float;
  ab_violations : int;
}

let ablation_table ~title rows =
  let t =
    Table.create ~title ~columns:[ "variant"; "Delay(ps)"; "Area(mm2)"; "Length(mm)"; "viol" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [ r.ab_name;
          Table.f1 r.ab_delay_ps;
          Table.f3 r.ab_area_mm2;
          Table.f1 r.ab_length_mm;
          Table.fint r.ab_violations ])
    rows;
  t

let measure name (m : Flow.measurement) =
  { ab_name = name;
    ab_delay_ps = m.Flow.m_delay_ps;
    ab_area_mm2 = m.Flow.m_area_mm2;
    ab_length_mm = m.Flow.m_length_mm;
    ab_violations = m.Flow.m_violations }

let ablation_a1 (case : Suite.case) =
  let paper = Flow.run ~timing_driven:true case.Suite.input in
  let options = { Router.default_options with Router.area_first_ordering = true } in
  let area_first = Flow.run ~options ~timing_driven:true case.Suite.input in
  ablation_table
    ~title:
      (Printf.sprintf "Ablation A1 (%s): criterion ordering during selection" case.Suite.case_name)
    [ measure "delay-first (paper, Sec. 3.4)" paper.Flow.o_measurement;
      measure "density-first (area-phase order)" area_first.Flow.o_measurement ]

let ablation_a3 (case : Suite.case) =
  let tree = Flow.run ~timing_driven:true case.Suite.input in
  let options = { Router.default_options with Router.cl_estimator = Router.Star_bbox } in
  let star = Flow.run ~options ~timing_driven:true case.Suite.input in
  ablation_table
    ~title:(Printf.sprintf "Ablation A3 (%s): CL(n) estimator" case.Suite.case_name)
    [ measure "tentative tree (paper, Sec. 3.2)" tree.Flow.o_measurement;
      measure "star / half-perimeter" star.Flow.o_measurement ]

let ablation_a4 (case : Suite.case) =
  let lumped = Flow.run ~timing_driven:true case.Suite.input in
  let options = { Router.default_options with Router.delay_model = Router.Elmore_rc } in
  let rc = Flow.run ~options ~timing_driven:true case.Suite.input in
  ablation_table
    ~title:
      (Printf.sprintf "Ablation A4 (%s): delay model during routing" case.Suite.case_name)
    [ measure "lumped capacitance (paper, Eq. 1)" lumped.Flow.o_measurement;
      measure "Elmore RC (Sec. 2.1 extension)" rc.Flow.o_measurement ]

let ablation_a5 (case : Suite.case) =
  let concurrent = Flow.run case.Suite.input in
  let sequential =
    Flow.run ~algorithm:Flow.Sequential_net_at_a_time case.Suite.input
  in
  ablation_table
    ~title:
      (Printf.sprintf "Ablation A5 (%s): concurrent edge deletion vs sequential baseline"
         case.Suite.case_name)
    [ measure "concurrent edge deletion (paper)" concurrent.Flow.o_measurement;
      measure "sequential net-at-a-time" sequential.Flow.o_measurement ]

let ablation_a6 (case : Suite.case) =
  let left_edge = Flow.run case.Suite.input in
  let greedy = Flow.run ~channel_algorithm:Flow.Greedy case.Suite.input in
  ablation_table
    ~title:
      (Printf.sprintf "Ablation A6 (%s): detailed channel router" case.Suite.case_name)
    [ measure "constrained left-edge + doglegs" left_edge.Flow.o_measurement;
      measure "greedy (Rivest-Fiduccia style)" greedy.Flow.o_measurement ]

(* A7 — Sec. 4.2's motivation for multi-pitch wires, as an electrical
   what-if: the same routed clock tree analyzed at several effective
   widths.  Widening scales resistance down (and capacitance up), so
   the resistive skew across the fan-out shrinks while the lumped load
   grows — exactly the trade the paper spends feedthrough columns on. *)
let ablation_a8 (case : Suite.case) =
  let plain = Flow.run case.Suite.input in
  let biased = Flow.run ~channel_algorithm:Flow.Left_edge_biased case.Suite.input in
  ablation_table
    ~title:
      (Printf.sprintf "Ablation A8 (%s): pin-side track bias in the channel router"
         case.Suite.case_name)
    [ measure "left-edge, pure left-edge order" plain.Flow.o_measurement;
      measure "left-edge + pin-side bias (extension)" biased.Flow.o_measurement ]

let ablation_a7 () =
  let case = Suite.make_case ~circuit:"C1" ~placement:Placement.P1 in
  let netlist = case.Suite.input.Flow.netlist in
  let outcome = Flow.run case.Suite.input in
  let t =
    Table.create
      ~title:"Ablation A7 (C1 clock tree): effective wire width vs skew (Sec. 4.2)"
      ~columns:[ "effective pitch"; "clock skew (ps)"; "resistive spread vs 1-pitch" ]
  in
  (match Skew.widest_net netlist with
  | None -> ()
  | Some clk ->
    let router = outcome.Flow.o_router in
    let fp = outcome.Flow.o_floorplan in
    let rg = Router.routing_graph router clk in
    let tree = Router.tree_edges router clk in
    let base_pitch = rg.Routing_graph.pitch in
    let skew_at scale =
      let r = Elmore.analyze ~width_scale:scale ~dims:(Floorplan.dims fp) ~netlist ~rg ~tree () in
      match r.Elmore.delay_ps with
      | [] | [ _ ] -> 0.0
      | delays ->
        let values = List.map snd delays in
        List.fold_left max neg_infinity values -. List.fold_left min infinity values
    in
    let reference = skew_at (1.0 /. float_of_int base_pitch) in
    List.iter
      (fun eff ->
        let scale = float_of_int eff /. float_of_int base_pitch in
        let skew = skew_at scale in
        Table.add_row t
          [ Table.fint eff;
            Table.f3 skew;
            Table.pct (if reference > 1e-12 then skew /. reference *. 100.0 else nan) ])
      [ 1; 2; 4; 8 ]);
  t

(* Direct model comparison on one routed result: how far the Elmore
   delays sit above the lumped CL*Td wire delays on the final trees —
   the quantitative backing for the paper's "wire resistance is rather
   small" argument. *)
let rc_vs_lumped_worst (outcome : Flow.outcome) =
  let router = outcome.Flow.o_router in
  let fp = outcome.Flow.o_floorplan in
  let netlist = Floorplan.netlist fp in
  let dims = Floorplan.dims fp in
  let worst_ratio = ref 1.0 in
  for net = 0 to Netlist.n_nets netlist - 1 do
    let rg = Router.routing_graph router net in
    let tree = Router.tree_edges router net in
    let r = Elmore.analyze ~dims ~netlist ~rg ~tree () in
    let lumped =
      Routing_graph.tree_capacitance rg ~edge_ids:tree *. Elmore.driver_td netlist rg
    in
    if lumped > 1e-9 && r.Elmore.worst_ps /. lumped > !worst_ratio then
      worst_ratio := r.Elmore.worst_ps /. lumped
  done;
  !worst_ratio
