(** Human-readable tables over the [Obs] tracer and metrics registry:
    the [--obs-summary] view of a run. *)

val slowest_spans : ?n:int -> unit -> Table.t
(** The [n] (default 10) slowest completed spans (instants excluded),
    with depth and attributes. *)

val phase_durations : unit -> Table.t
(** Per-phase wall seconds of the most recent run, straight from the
    [bgr_phase_duration_seconds] gauge. *)
