let floorplan ?channel_tracks fp =
  let netlist = Floorplan.netlist fp in
  let width = Floorplan.width fp in
  let buf = Buffer.create 2048 in
  let channel_line c =
    let body = Bytes.make width '-' in
    List.iter
      (fun blocked ->
        Interval.iter (fun x -> if x >= 0 && x < width then Bytes.set body x 'X') blocked)
      (Floorplan.channel_blockages fp c);
    match channel_tracks with
    | None -> Buffer.add_string buf (Printf.sprintf "ch%-2d %s\n" c (Bytes.to_string body))
    | Some tracks ->
      Buffer.add_string buf
        (Printf.sprintf "ch%-2d %s (%d tracks)\n" c (Bytes.to_string body) tracks.(c))
  in
  (* Top channel first: row n_rows-1 is drawn first so north is up. *)
  channel_line (Floorplan.n_rows fp);
  for r = Floorplan.n_rows fp - 1 downto 0 do
    let row = Bytes.make width '.' in
    Array.iter
      (fun (p : Floorplan.placed) ->
        let inst = Netlist.instance netlist p.Floorplan.inst in
        let w = inst.Netlist.master.Cell.width in
        let initial = if inst.Netlist.inst_name = "" then '?' else inst.Netlist.inst_name.[0] in
        for k = 0 to w - 1 do
          if p.Floorplan.x + k < width then
            Bytes.set row (p.Floorplan.x + k) (if k = 0 then initial else '*')
        done)
      (Floorplan.row_cells fp r);
    Array.iter
      (fun (s : Floorplan.slot) ->
        let glyph =
          if s.Floorplan.width_flag = 0 then '+'
          else Char.chr (Char.code '0' + min 9 s.Floorplan.width_flag)
        in
        if s.Floorplan.slot_x < width then Bytes.set row s.Floorplan.slot_x glyph)
      (Floorplan.row_slots fp r);
    Buffer.add_string buf (Printf.sprintf "row%-2d%s\n" r (Bytes.to_string row));
    channel_line r
  done;
  Buffer.contents buf

let channel_tracks (r : Channel_router.result) ~width =
  let buf = Buffer.create 1024 in
  for track = 0 to r.Channel_router.tracks - 1 do
    let line = Bytes.make width '.' in
    List.iter
      (fun (p : Channel_router.piece) ->
        if track >= p.Channel_router.pc_track && track < p.Channel_router.pc_track + p.Channel_router.pc_width
        then begin
          let glyph =
            let s = string_of_int p.Channel_router.pc_net in
            s.[String.length s - 1]
          in
          for x = max 0 p.Channel_router.pc_lo to min (width - 1) p.Channel_router.pc_hi do
            Bytes.set line x glyph
          done
        end)
      r.Channel_router.pieces;
    Buffer.add_string buf (Printf.sprintf "t%-3d %s\n" track (Bytes.to_string line))
  done;
  Buffer.contents buf
