type t = {
  n_endpoints : int;
  worst_ps : float;
  total_negative_ps : float;
  n_violating : int;
  buckets : (float * float * int) list;
}

let bucket_edges = [ neg_infinity; -200.0; -50.0; 0.0; 50.0; 200.0; 500.0; infinity ]

let of_sta sta =
  let slacks = ref [] in
  for ci = 0 to Sta.n_constraints sta - 1 do
    (* endpoint_slacks gives the same values as endpoint_reports
       without building the worst path into every sink *)
    List.iter (fun s -> slacks := s :: !slacks) (Sta.endpoint_slacks sta ci)
  done;
  let slacks = !slacks in
  let worst = List.fold_left min infinity slacks in
  let negative = List.filter (fun s -> s < 0.0) slacks in
  let rec pairs = function
    | lo :: (hi :: _ as rest) -> (lo, hi) :: pairs rest
    | _ -> []
  in
  let buckets =
    List.map
      (fun (lo, hi) -> (lo, hi, List.length (List.filter (fun s -> s >= lo && s < hi) slacks)))
      (pairs bucket_edges)
  in
  { n_endpoints = List.length slacks;
    worst_ps = (if slacks = [] then nan else worst);
    total_negative_ps = List.fold_left ( +. ) 0.0 negative;
    n_violating = List.length negative;
    buckets }

let label lo hi =
  match (lo = neg_infinity, hi = infinity) with
  | true, _ -> Printf.sprintf "< %.0f" hi
  | _, true -> Printf.sprintf ">= %.0f" lo
  | _ -> Printf.sprintf "%.0f..%.0f" lo hi

let render t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "slack profile: %d endpoints, worst %.1f ps, %d violating (TNS %.1f ps)\n" t.n_endpoints
       t.worst_ps t.n_violating t.total_negative_ps);
  let biggest = List.fold_left (fun acc (_, _, c) -> max acc c) 1 t.buckets in
  List.iter
    (fun (lo, hi, count) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-12s %4d %s\n" (label lo hi) count
           (String.make (count * 40 / biggest) '#')))
    t.buckets;
  Buffer.contents buf

let worst_endpoints ?(n = 8) sta =
  let dg = Sta.delay_graph sta in
  let eps = ref [] in
  for ci = 0 to Sta.n_constraints sta - 1 do
    List.iter (fun (r : Sta.endpoint_report) -> eps := (ci, r) :: !eps) (Sta.endpoint_reports sta ci)
  done;
  let eps =
    List.sort (fun (_, a) (_, b) -> Float.compare a.Sta.ep_slack_ps b.Sta.ep_slack_ps) !eps
  in
  let tbl =
    Table.create ~title:"Worst endpoints"
      ~columns:[ "constraint"; "endpoint"; "slack (ps)"; "delay (ps)" ]
  in
  List.iteri
    (fun i (ci, (r : Sta.endpoint_report)) ->
      if i < n then
        Table.add_row tbl
          [ Printf.sprintf "P%d" ci;
            Format.asprintf "%a" (Delay_graph.pp_node dg) (Delay_graph.node dg r.Sta.ep_vertex);
            Table.f1 r.Sta.ep_slack_ps;
            Table.f1 r.Sta.ep_delay_ps ])
    eps;
  tbl
