type t = {
  n_endpoints : int;
  worst_ps : float;
  total_negative_ps : float;
  n_violating : int;
  buckets : (float * float * int) list;
}

let bucket_edges = [ neg_infinity; -200.0; -50.0; 0.0; 50.0; 200.0; 500.0; infinity ]

let of_sta sta =
  let slacks = ref [] in
  for ci = 0 to Sta.n_constraints sta - 1 do
    List.iter
      (fun (r : Sta.endpoint_report) -> slacks := r.Sta.ep_slack_ps :: !slacks)
      (Sta.endpoint_reports sta ci)
  done;
  let slacks = !slacks in
  let worst = List.fold_left min infinity slacks in
  let negative = List.filter (fun s -> s < 0.0) slacks in
  let rec pairs = function
    | lo :: (hi :: _ as rest) -> (lo, hi) :: pairs rest
    | _ -> []
  in
  let buckets =
    List.map
      (fun (lo, hi) -> (lo, hi, List.length (List.filter (fun s -> s >= lo && s < hi) slacks)))
      (pairs bucket_edges)
  in
  { n_endpoints = List.length slacks;
    worst_ps = (if slacks = [] then nan else worst);
    total_negative_ps = List.fold_left ( +. ) 0.0 negative;
    n_violating = List.length negative;
    buckets }

let label lo hi =
  match (lo = neg_infinity, hi = infinity) with
  | true, _ -> Printf.sprintf "< %.0f" hi
  | _, true -> Printf.sprintf ">= %.0f" lo
  | _ -> Printf.sprintf "%.0f..%.0f" lo hi

let render t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "slack profile: %d endpoints, worst %.1f ps, %d violating (TNS %.1f ps)\n" t.n_endpoints
       t.worst_ps t.n_violating t.total_negative_ps);
  let biggest = List.fold_left (fun acc (_, _, c) -> max acc c) 1 t.buckets in
  List.iter
    (fun (lo, hi, count) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-12s %4d %s\n" (label lo hi) count
           (String.make (count * 40 / biggest) '#')))
    t.buckets;
  Buffer.contents buf
