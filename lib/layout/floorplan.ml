type placed = { inst : int; row : int; x : int }
type slot = { slot_id : int; slot_row : int; slot_x : int; width_flag : int }

type t = {
  netlist : Netlist.t;
  dims : Dims.t;
  n_rows : int;
  width : int;
  row_cells : placed array array;
  row_slots : slot array array;
  all_slots : slot array;
  place : (int, placed) Hashtbl.t;  (* instance id -> placement *)
  port_cols : int array;  (* port id -> principal column *)
  blockages : Interval.t list array;  (* per channel *)
}

exception Overlap of Bgr_error.t

let fail fmt =
  Format.kasprintf (fun s -> raise (Overlap (Bgr_error.make Bgr_error.Geometry "%s" s))) fmt

let cell_width netlist inst = (Netlist.instance netlist inst).Netlist.master.Cell.width
let inst_name netlist inst = (Netlist.instance netlist inst).Netlist.inst_name

let make ~netlist ~dims ~n_rows ~width ~cells ~slots ?(blockages = []) () =
  if n_rows <= 0 || width <= 0 then
    fail "floorplan needs positive rows and width, got %d rows x width %d" n_rows width;
  let row_cells = Array.make n_rows [] in
  let add_cell (p : placed) =
    if p.row < 0 || p.row >= n_rows then
      fail "instance %s placed in unknown row %d (floorplan has rows 0..%d)"
        (inst_name netlist p.inst) p.row (n_rows - 1);
    let w = cell_width netlist p.inst in
    if p.x < 0 || p.x + w > width then
      fail "row %d: instance %s at x=%d width %d exceeds chip width %d" p.row
        (inst_name netlist p.inst) p.x w width;
    row_cells.(p.row) <- p :: row_cells.(p.row)
  in
  List.iter add_cell cells;
  let by_x a b = Int.compare a.x b.x in
  let row_cells =
    Array.map (fun l -> Array.of_list (List.sort by_x l)) row_cells
  in
  (* Overlap check within each row. *)
  Array.iteri
    (fun r arr ->
      let last_end = ref (-1) in
      let check (p : placed) =
        if p.x < !last_end then
          fail "row %d: instance %s at x=%d overlaps its left neighbour" r
            (inst_name netlist p.inst) p.x;
        last_end := p.x + cell_width netlist p.inst
      in
      Array.iter check arr)
    row_cells;
  (* Slots: per row, sorted; must not collide with logic cells. *)
  let slot_lists = Array.make n_rows [] in
  let add_slot (row, x, width_flag) =
    if row < 0 || row >= n_rows then
      fail "feed slot in unknown row %d (floorplan has rows 0..%d)" row (n_rows - 1);
    if x < 0 || x >= width then
      fail "row %d: feed slot at x=%d outside the chip (width %d)" row x width;
    slot_lists.(row) <- (x, width_flag) :: slot_lists.(row)
  in
  List.iter add_slot slots;
  let next_id = ref 0 in
  let row_slots =
    Array.mapi
      (fun r l ->
        let sorted = List.sort (fun (x1, _) (x2, _) -> Int.compare x1 x2) l in
        let mk (x, width_flag) =
          let slot_id = !next_id in
          incr next_id;
          { slot_id; slot_row = r; slot_x = x; width_flag }
        in
        Array.of_list (List.map mk sorted))
      slot_lists
  in
  (* Slot/cell collision and duplicate-column checks. *)
  Array.iteri
    (fun r arr ->
      let prev = ref (-1) in
      let check s =
        if s.slot_x = !prev then fail "row %d: duplicate feed-slot column %d" r s.slot_x;
        prev := s.slot_x;
        let hits (p : placed) =
          p.x <= s.slot_x && s.slot_x < p.x + cell_width netlist p.inst
        in
        if Array.exists hits row_cells.(r) then
          fail "row %d: slot at x=%d collides with a logic cell" r s.slot_x
      in
      Array.iter check arr)
    row_slots;
  let all_slots = Array.concat (Array.to_list row_slots) in
  Array.sort (fun a b -> Int.compare a.slot_id b.slot_id) all_slots;
  let place = Hashtbl.create 256 in
  Array.iter (fun arr -> Array.iter (fun p -> Hashtbl.replace place p.inst p) arr) row_cells;
  (* Every non-feed instance must be placed. *)
  Array.iter
    (fun (i : Netlist.instance) ->
      if i.Netlist.master.Cell.kind <> Cell.Feed_through && not (Hashtbl.mem place i.Netlist.inst_id)
      then fail "instance %s not placed" i.Netlist.inst_name)
    (Netlist.instances netlist);
  (* Port principal columns: hint, else evenly spread along each side. *)
  let ports = Netlist.ports netlist in
  let port_cols = Array.make (Array.length ports) 0 in
  let spread side =
    let members =
      Array.to_list ports |> List.filter (fun (p : Netlist.port) -> p.Netlist.side = side)
    in
    let n = List.length members in
    List.iteri
      (fun i (p : Netlist.port) ->
        let default = (width * (i + 1)) / (n + 1) in
        let col = Option.value p.Netlist.column_hint ~default in
        port_cols.(p.Netlist.port_id) <- max 0 (min (width - 1) col))
      members
  in
  spread Netlist.North;
  spread Netlist.South;
  let blockage_lists = Array.make (n_rows + 1) [] in
  List.iter
    (fun (channel, x_lo, x_hi) ->
      if channel < 0 || channel > n_rows then
        fail "blockage in unknown channel %d (floorplan has channels 0..%d)" channel n_rows;
      if x_lo < 0 || x_hi >= width || x_hi < x_lo then
        fail "channel %d: blockage columns [%d,%d] outside the chip (width %d)" channel x_lo x_hi
          width;
      blockage_lists.(channel) <- Interval.make x_lo x_hi :: blockage_lists.(channel))
    blockages;
  { netlist;
    dims;
    n_rows;
    width;
    row_cells;
    row_slots;
    all_slots;
    place;
    port_cols;
    blockages = Array.map List.rev blockage_lists }

let netlist t = t.netlist
let dims t = t.dims
let n_rows t = t.n_rows
let n_channels t = t.n_rows + 1
let width t = t.width
let row_cells t r = t.row_cells.(r)
let row_slots t r = t.row_slots.(r)
let slots t = t.all_slots
let n_slots t = Array.length t.all_slots

let place_of_instance t inst =
  match Hashtbl.find_opt t.place inst with
  | Some p -> p
  | None -> raise Not_found

let terminal_column t (pin : Netlist.pin) =
  let p = place_of_instance t pin.Netlist.inst in
  let master = (Netlist.instance t.netlist pin.Netlist.inst).Netlist.master in
  let term = Cell.terminal master pin.Netlist.term in
  p.x + term.Cell.offset

let terminal_row t (pin : Netlist.pin) = (place_of_instance t pin.Netlist.inst).row

let terminal_channels t (pin : Netlist.pin) =
  let r = terminal_row t pin in
  let master = (Netlist.instance t.netlist pin.Netlist.inst).Netlist.master in
  let term = Cell.terminal master pin.Netlist.term in
  match term.Cell.access with
  | Cell.Top_only -> [ r + 1 ]
  | Cell.Bottom_only -> [ r ]
  | Cell.Both_sides -> [ r; r + 1 ]

let channel_blockages t c =
  if c < 0 || c >= n_channels t then invalid_arg "Floorplan.channel_blockages";
  t.blockages.(c)

let trunk_blocked t ~channel ~x1 ~x2 =
  let span = Interval.make x1 x2 in
  List.exists (Interval.overlaps span) (channel_blockages t channel)

let blockage_triples t =
  let acc = ref [] in
  Array.iteri
    (fun c l ->
      List.iter (fun i -> acc := (c, Interval.lo i, Interval.hi i - 1) :: !acc) l)
    t.blockages;
  List.rev !acc

let port_column t port_id = t.port_cols.(port_id)

let port_candidates t port_id =
  let c = t.port_cols.(port_id) in
  let spread = max 1 (t.width / 50) in
  [ c - spread; c; c + spread ]
  |> List.filter (fun x -> 0 <= x && x < t.width)
  |> List.sort_uniq Int.compare

let port_channel t port_id =
  match (Netlist.port t.netlist port_id).Netlist.side with
  | Netlist.South -> 0
  | Netlist.North -> t.n_rows

let endpoint_column t = function
  | Netlist.Pin pin -> terminal_column t pin
  | Netlist.Port port_id -> port_column t port_id

let endpoint_channels t = function
  | Netlist.Pin pin -> terminal_channels t pin
  | Netlist.Port port_id -> [ port_channel t port_id ]

let net_bbox t net_id =
  let net = Netlist.net t.netlist net_id in
  let points =
    List.map
      (fun ep ->
        let x = endpoint_column t ep in
        (* Use the endpoint's lowest accessible channel as its y; the
           bound is insensitive to the one-channel choice. *)
        let y = List.fold_left min max_int (endpoint_channels t ep) in
        (x, y))
      (net.Netlist.driver :: net.Netlist.sinks)
  in
  match Rect.of_points points with
  | Some r -> r
  | None -> assert false (* freeze guarantees >= 2 endpoints *)

let chip_height_um t ~channel_tracks =
  if Array.length channel_tracks <> n_channels t then
    invalid_arg "chip_height_um: one track count per channel expected";
  let rows_um = float_of_int t.n_rows *. t.dims.Dims.row_height_um in
  let tracks = Array.fold_left ( + ) 0 channel_tracks in
  rows_um +. (float_of_int tracks *. t.dims.Dims.track_um)

let channel_mid_y_um t ~channel_tracks c =
  if Array.length channel_tracks <> n_channels t then
    invalid_arg "channel_mid_y_um: one track count per channel expected";
  if c < 0 || c >= n_channels t then invalid_arg "channel_mid_y_um: unknown channel";
  let y = ref (float_of_int c *. t.dims.Dims.row_height_um) in
  for c' = 0 to c - 1 do
    y := !y +. (float_of_int channel_tracks.(c') *. t.dims.Dims.track_um)
  done;
  !y +. (float_of_int channel_tracks.(c) *. t.dims.Dims.track_um /. 2.0)

let chip_area_mm2 t ~channel_tracks =
  let h = chip_height_um t ~channel_tracks in
  let w = float_of_int t.width *. t.dims.Dims.pitch_um in
  Dims.mm2_of_um2 (h *. w)

let pp_row t ppf r =
  Format.fprintf ppf "row %d:" r;
  Array.iter
    (fun (p : placed) ->
      let i = Netlist.instance t.netlist p.inst in
      Format.fprintf ppf " %s@%d" i.Netlist.inst_name p.x)
    t.row_cells.(r);
  Array.iter (fun s -> Format.fprintf ppf " feed@%d(f%d)" s.slot_x s.width_flag) t.row_slots.(r)
