type demand = {
  d_net : int;
  d_partner : int option;
  d_rows : int list;
  d_width : int;
  d_center : int;
}

let demand_of_net fp net_id =
  let netlist = Floorplan.netlist fp in
  let net = Netlist.net netlist net_id in
  match net.Netlist.diff_partner with
  | Some p when p < net_id -> None (* folded into the partner's demand *)
  | partner ->
    let endpoints (n : Netlist.net) = n.Netlist.driver :: n.Netlist.sinks in
    let members =
      net :: (match partner with Some p -> [ Netlist.net netlist p ] | None -> [])
    in
    let eps = List.concat_map endpoints members in
    let channel_sets = List.map (Floorplan.endpoint_channels fp) eps in
    (* The channel interval that must be crossed: from the lowest of the
       per-endpoint highest channels up to the highest of the
       per-endpoint lowest channels.  Moving from channel c to c+1
       crosses row c, so rows [lo .. hi-1] need a feedthrough. *)
    let lo =
      List.fold_left (fun acc cs -> min acc (List.fold_left max min_int cs)) max_int channel_sets
    in
    let hi =
      List.fold_left (fun acc cs -> max acc (List.fold_left min max_int cs)) min_int channel_sets
    in
    if hi <= lo then None
    else begin
      let cols = List.map (Floorplan.endpoint_column fp) eps in
      let cmin = List.fold_left min max_int cols and cmax = List.fold_left max min_int cols in
      let width = net.Netlist.pitch * (match partner with Some _ -> 2 | None -> 1) in
      Some
        { d_net = net_id;
          d_partner = partner;
          d_rows = List.init (hi - lo) (fun i -> lo + i);
          d_width = width;
          d_center = (cmin + cmax) / 2 }
    end

let demands fp =
  let n = Netlist.n_nets (Floorplan.netlist fp) in
  List.filter_map (demand_of_net fp) (List.init n Fun.id)

type failure = { f_net : int; f_row : int; f_width : int }

type assignment = {
  granted : (int, (int * Floorplan.slot list) list) Hashtbl.t;
  user : int array;  (* slot id -> occupying net, -1 when free *)
  complete : bool;
}

(* A slot can serve a width-w demand when unflagged or flagged w. *)
let compatible width (s : Floorplan.slot) = s.Floorplan.width_flag = 0 || s.Floorplan.width_flag = width

(* Find the best run of [width] free compatible slots at consecutive
   columns, minimizing distance of the run centre to [target]. *)
let find_group fp user ~row ~width ~target =
  let slots = Floorplan.row_slots fp row in
  let n = Array.length slots in
  let ok i =
    let s = slots.(i) in
    user.(s.Floorplan.slot_id) = -1 && compatible width s
  in
  let best = ref None in
  for i = 0 to n - width do
    let consecutive = ref true in
    for k = 0 to width - 1 do
      if
        (not (ok (i + k)))
        || slots.(i + k).Floorplan.slot_x <> slots.(i).Floorplan.slot_x + k
      then consecutive := false
    done;
    if !consecutive then begin
      let center = slots.(i).Floorplan.slot_x + ((width - 1) / 2) in
      let d = abs (center - target) in
      match !best with
      | Some (bd, _) when bd <= d -> ()
      | _ -> best := Some (d, i)
    end
  done;
  match !best with
  | None -> None
  | Some (_, i) -> Some (Array.to_list (Array.sub slots i width))

let assign fp ~order =
  let user = Array.make (Floorplan.n_slots fp) (-1) in
  let granted = Hashtbl.create 64 in
  let failures = ref [] in
  let grant net_id row slots =
    let prev = Option.value (Hashtbl.find_opt granted net_id) ~default:[] in
    Hashtbl.replace granted net_id (prev @ [ (row, slots) ])
  in
  let serve_demand d =
    let prev_x = ref None in
    let serve_row row =
      let target = Option.value !prev_x ~default:d.d_center in
      match find_group fp user ~row ~width:d.d_width ~target with
      | None -> failures := { f_net = d.d_net; f_row = row; f_width = d.d_width } :: !failures
      | Some slots ->
        prev_x := Some (List.hd slots).Floorplan.slot_x;
        (match d.d_partner with
        | None ->
          List.iter (fun (s : Floorplan.slot) -> user.(s.Floorplan.slot_id) <- d.d_net) slots;
          grant d.d_net row slots
        | Some partner ->
          (* Left half to the representative, right half to the partner. *)
          let half = d.d_width / 2 in
          let left = List.filteri (fun i _ -> i < half) slots in
          let right = List.filteri (fun i _ -> i >= half) slots in
          List.iter (fun (s : Floorplan.slot) -> user.(s.Floorplan.slot_id) <- d.d_net) left;
          List.iter (fun (s : Floorplan.slot) -> user.(s.Floorplan.slot_id) <- partner) right;
          grant d.d_net row left;
          grant partner row right)
    in
    List.iter serve_row d.d_rows
  in
  let serve_net net_id =
    match demand_of_net fp net_id with
    | None -> ()
    | Some d -> serve_demand d
  in
  List.iter serve_net order;
  let failures = List.rev !failures in
  ({ granted; user; complete = failures = [] }, failures)

let slots_of_net a net_id = Option.value (Hashtbl.find_opt a.granted net_id) ~default:[]

let slot_user a slot_id =
  let u = a.user.(slot_id) in
  if u < 0 then None else Some u

let is_complete a = a.complete

let pp_failure ppf f =
  Format.fprintf ppf "net %d: no %d-wide feedthrough in row %d" f.f_net f.f_width f.f_row
