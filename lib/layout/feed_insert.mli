(** Feed-cell insertion (Sec. 4.3).

    When feedthrough assignment fails, the chip is widened: per row [r]
    and pitch width [w], [F(w,r)] groups of [w] feed cells flagged for
    w-pitch nets are inserted "almost evenly spaced between existing
    cells"; rows short of the global maximum [F = max_r F(r)] receive
    single-pitch feed cells so every row widens by exactly [F] pitches.
    Re-running the assignment on the widened floorplan then succeeds
    (the router loops insertion until it does — see
    {!val:assign_with_insertion}). *)

val insert : Floorplan.t -> failures:Feedthrough.failure list -> Floorplan.t
(** Widened floorplan; the input floorplan when [failures] is empty. *)

exception Stuck of string
(** Raised by {!assign_with_insertion} when insertion rounds exceed the
    bound without converging — indicates a modelling bug, since each
    round adds dedicated capacity for every unmet demand. *)

val assign_with_insertion :
  ?max_rounds:int ->
  Floorplan.t ->
  order:int list ->
  Floorplan.t * Feedthrough.assignment * int
(** Assign; on failure insert feed cells and retry (default
    [max_rounds] 5).  Returns the final floorplan, its complete
    assignment, and the number of insertion rounds used.
    @raise Stuck *)
