exception Stuck of string

(* Count F(w,r): failed demands by (row, width). *)
let failure_counts ~n_rows failures =
  let counts = Hashtbl.create 16 in
  let bump (f : Feedthrough.failure) =
    if f.Feedthrough.f_row < 0 || f.Feedthrough.f_row >= n_rows then
      invalid_arg "Feed_insert: failure row outside floorplan";
    let key = (f.Feedthrough.f_row, f.Feedthrough.f_width) in
    Hashtbl.replace counts key (1 + Option.value (Hashtbl.find_opt counts key) ~default:0)
  in
  List.iter bump failures;
  counts

(* Groups of flagged slots to add in one row: wide groups first, then
   singles topping the row up to the global widening F. *)
let row_groups counts ~row ~global_f =
  let of_row = Hashtbl.fold (fun (r, w) c acc -> if r = row then (w, c) :: acc else acc) counts [] in
  let wide = List.filter (fun (w, _) -> w > 1) of_row in
  let wide = List.sort (fun (w1, _) (w2, _) -> Int.compare w2 w1) wide in
  let f_r = List.fold_left (fun acc (w, c) -> acc + (w * c)) 0 of_row in
  let singles_failed = Option.value (List.assoc_opt 1 of_row) ~default:0 in
  let n_singles = singles_failed + (global_f - f_r) in
  let groups = List.concat_map (fun (w, c) -> List.init c (fun _ -> w)) wide in
  groups @ List.init n_singles (fun _ -> 1)

let insert fp ~failures =
  if failures = [] then fp
  else begin
    let netlist = Floorplan.netlist fp in
    let n_rows = Floorplan.n_rows fp in
    let old_width = Floorplan.width fp in
    let counts = failure_counts ~n_rows failures in
    let f_of_row r =
      Hashtbl.fold (fun (row, w) c acc -> if row = r then acc + (w * c) else acc) counts 0
    in
    let global_f = ref 0 in
    for r = 0 to n_rows - 1 do
      global_f := max !global_f (f_of_row r)
    done;
    let global_f = !global_f in
    let new_cells = ref [] in
    let new_slots = ref [] in
    for r = 0 to n_rows - 1 do
      let groups = row_groups counts ~row:r ~global_f in
      let cells = Floorplan.row_cells fp r in
      let slots = Floorplan.row_slots fp r in
      (* Insertion happens at cell origins (or the row end) so existing
         slot runs are never split.  Target columns spread the groups
         evenly across the old row width. *)
      let g = List.length groups in
      let snap target =
        let best = ref old_width and best_d = ref (abs (old_width - target)) in
        Array.iter
          (fun (p : Floorplan.placed) ->
            let d = abs (p.Floorplan.x - target) in
            if d < !best_d then begin
              best := p.Floorplan.x;
              best_d := d
            end)
          cells;
        !best
      in
      let insert_points =
        List.mapi (fun i w -> (snap ((i + 1) * old_width / (g + 1)), i, w)) groups
        |> List.sort compare
      in
      (* Walk row items left to right, emitting pending groups before
         any item at or past their insertion column. *)
      let pending = ref insert_points in
      let shift = ref 0 in
      let emit_groups_upto x =
        let rec loop () =
          match !pending with
          | (at, _, w) :: rest when at <= x ->
            pending := rest;
            for k = 0 to w - 1 do
              new_slots := (r, at + !shift + k, w) :: !new_slots
            done;
            shift := !shift + w;
            loop ()
          | _ -> ()
        in
        loop ()
      in
      let items =
        let cs = Array.to_list cells |> List.map (fun p -> (p.Floorplan.x, `Cell p)) in
        let ss =
          Array.to_list slots
          |> List.map (fun (s : Floorplan.slot) -> (s.Floorplan.slot_x, `Slot s))
        in
        List.sort (fun (x1, _) (x2, _) -> Int.compare x1 x2) (cs @ ss)
      in
      let place (x, item) =
        emit_groups_upto x;
        match item with
        | `Cell (p : Floorplan.placed) ->
          new_cells := { p with Floorplan.x = x + !shift } :: !new_cells
        | `Slot (s : Floorplan.slot) ->
          new_slots := (r, x + !shift, s.Floorplan.width_flag) :: !new_slots
      in
      List.iter place items;
      emit_groups_upto old_width;
      assert (!shift = global_f && !pending = [])
    done;
    Floorplan.make ~netlist ~dims:(Floorplan.dims fp) ~n_rows ~width:(old_width + global_f)
      ~cells:!new_cells ~slots:!new_slots ~blockages:(Floorplan.blockage_triples fp) ()
  end

let assign_with_insertion ?(max_rounds = 5) fp ~order =
  let rec loop fp round =
    let assignment, failures = Feedthrough.assign fp ~order in
    if failures = [] then (fp, assignment, round)
    else if round >= max_rounds then
      raise
        (Stuck
           (Printf.sprintf "feed-cell insertion did not converge after %d rounds (%d demands unmet)"
              round (List.length failures)))
    else loop (insert fp ~failures) (round + 1)
  in
  loop fp 0
