(** Feedthrough position assignment (Sec. 3.1, Sec. 4.2-4.3).

    Every net that must cross cell rows gets exactly one feedthrough
    position per crossed row, chosen by searching outward "from the
    center of the x coordinates of the terminals" and, across
    consecutive rows, preferring "the same x coordinates if possible".
    A w-pitch net occupies [w] adjacent slot columns; a differential
    pair is treated as one demand of doubled width whose left half goes
    to the lower-id net and right half to its partner (Sec. 4.1).

    Nets are processed in a caller-supplied order — the router derives
    it from a static (zero-interconnect) slack analysis, most critical
    first. *)

type demand = {
  d_net : int;  (** representative net (lower id of a differential pair) *)
  d_partner : int option;  (** the paired net sharing the group *)
  d_rows : int list;  (** rows that must be crossed, ascending *)
  d_width : int;  (** slot columns required per row *)
  d_center : int;  (** x search origin *)
}

val demand_of_net : Floorplan.t -> int -> demand option
(** [None] when the net crosses no row, or when the net is the
    higher-id member of a differential pair (folded into its
    partner's demand). *)

val demands : Floorplan.t -> demand list
(** All demands, in net-id order. *)

type failure = { f_net : int; f_row : int; f_width : int }

type assignment

val assign : Floorplan.t -> order:int list -> assignment * failure list
(** Greedy assignment in the given net order ([order] lists every net
    id exactly once; nets without demands are skipped).  Returns the
    (partial, on failures) assignment and the unmet (net, row, width)
    demands. *)

val slots_of_net : assignment -> int -> (int * Floorplan.slot list) list
(** [(row, slots)] granted to the net, ascending rows; the slot list
    has the net's pitch many entries in column order.  Differential
    partners each see their own half. *)

val slot_user : assignment -> int -> int option
(** Which net occupies a slot id. *)

val is_complete : assignment -> bool
(** True when the paired failure list was empty (recorded at
    creation). *)

val pp_failure : Format.formatter -> failure -> unit
