(** Row-based floorplans for bipolar standard-cell chips.

    Geometry convention (grid units):
    - columns [0 .. width-1] are horizontal wiring pitches;
    - cell rows [0 .. n_rows-1] stack bottom-up;
    - channels [0 .. n_rows]: channel [c] runs {e below} row [c]
      (channel [n_rows] is above the top row).  A terminal of a row-[r]
      cell with [Both_sides] access can enter channel [r] or [r+1] —
      the two candidate "terminal positions" of Fig. 3.
    - [South] ports live in channel [0], [North] ports in channel
      [n_rows].

    Feedthrough slots are the columns contributed by [Feed_through]
    cells; a slot connects channel [r] to channel [r+1] at its column
    (ordinary bipolar cells cannot be crossed, Sec. 4.3).  Slots carry a
    width flag: [0] = free for any net, [w>0] = reserved for w-pitch
    nets (set by feed-cell insertion). *)

type placed = { inst : int; row : int; x : int }
(** A netlist instance at its row and origin column. *)

type slot = {
  slot_id : int;
  slot_row : int;
  slot_x : int;
  width_flag : int;  (** 0 = unflagged *)
}

type t

exception Overlap of Bgr_error.t
(** Raised by {!make} when two cells in a row overlap, a cell exceeds
    the chip width, or a slot collides with a logic cell.  The carried
    {!Bgr_error.t} has code [Geometry] and a message naming the
    offending instance, row or channel. *)

val make :
  netlist:Netlist.t ->
  dims:Dims.t ->
  n_rows:int ->
  width:int ->
  cells:placed list ->
  slots:(int * int * int) list ->
  ?blockages:(int * int * int) list ->
  unit ->
  t
(** [make ~netlist ~dims ~n_rows ~width ~cells ~slots ()] builds and
    validates a floorplan.  [slots] are [(row, x, width_flag)] triples;
    slot ids are assigned in (row, x) order.  Every non-feed instance of
    the netlist must be placed exactly once.  Port columns are taken
    from their [column_hint] or distributed evenly along their side.
    [blockages] are [(channel, x_lo, x_hi)] closed column ranges a
    channel cannot route through (pre-routed straps, macros) — part of
    the paper's problem formulation ("blockages on the routing
    layers"); the routing graph refuses trunks across them, forcing
    detours through other channels. *)

val netlist : t -> Netlist.t
val dims : t -> Dims.t
val n_rows : t -> int
val n_channels : t -> int
(** [n_rows + 1]. *)

val width : t -> int

val row_cells : t -> int -> placed array
(** Cells of a row, sorted by origin column. *)

val row_slots : t -> int -> slot array
(** Feedthrough slots of a row, sorted by column. *)

val slots : t -> slot array
(** All slots, indexed by [slot_id]. *)

val n_slots : t -> int

val place_of_instance : t -> int -> placed
(** @raise Not_found for unplaced (feed) instances. *)

val terminal_column : t -> Netlist.pin -> int
(** Absolute column of an instance terminal. *)

val terminal_row : t -> Netlist.pin -> int

val terminal_channels : t -> Netlist.pin -> int list
(** Channels from which the terminal is reachable, per its access
    attribute. *)

val port_column : t -> int -> int
(** Principal column of a port. *)

val port_candidates : t -> int -> int list
(** Candidate columns for the external terminal (principal column plus
    nearby alternatives inside the chip) — the multiple "external
    terminal positions" of Fig. 3. *)

val port_channel : t -> int -> int
(** Channel 0 for [South] ports, [n_rows] for [North]. *)

val channel_blockages : t -> int -> Interval.t list
(** Blocked column ranges of a channel (half-open intervals). *)

val trunk_blocked : t -> channel:int -> x1:int -> x2:int -> bool
(** Whether a horizontal segment between the two columns (inclusive)
    would cross a blockage. *)

val blockage_triples : t -> (int * int * int) list
(** All blockages as [(channel, x_lo, x_hi)] closed ranges, as given to
    {!make} — for serialization and floorplan rebuilds.  Blockages are
    chip-anchored: feed-cell insertion keeps them at their absolute
    columns. *)

val endpoint_column : t -> Netlist.endpoint -> int
val endpoint_channels : t -> Netlist.endpoint -> int list

val net_bbox : t -> int -> Rect.t
(** Bounding box of a net's endpoint positions in (column, channel)
    space — basis of the Table 3 half-perimeter lower bound. *)

val chip_height_um : t -> channel_tracks:int array -> float
(** Physical chip height given the routed track count per channel. *)

val channel_mid_y_um : t -> channel_tracks:int array -> int -> float
(** Physical y of a channel's vertical midpoint, rows and routed
    channel heights below it included.  With all-zero [channel_tracks]
    this degenerates to pure row stacking. *)

val chip_area_mm2 : t -> channel_tracks:int array -> float

val pp_row : t -> Format.formatter -> int -> unit
